file(REMOVE_RECURSE
  "CMakeFiles/bddfc_answers.dir/eval/answers.cc.o"
  "CMakeFiles/bddfc_answers.dir/eval/answers.cc.o.d"
  "libbddfc_answers.a"
  "libbddfc_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
