file(REMOVE_RECURSE
  "CMakeFiles/bddfc_eval.dir/eval/containment.cc.o"
  "CMakeFiles/bddfc_eval.dir/eval/containment.cc.o.d"
  "CMakeFiles/bddfc_eval.dir/eval/match.cc.o"
  "CMakeFiles/bddfc_eval.dir/eval/match.cc.o.d"
  "CMakeFiles/bddfc_eval.dir/eval/query_graph.cc.o"
  "CMakeFiles/bddfc_eval.dir/eval/query_graph.cc.o.d"
  "libbddfc_eval.a"
  "libbddfc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
