# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/classes_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/reductions_test[1]_include.cmake")
include("/root/repo/build/tests/guarded_test[1]_include.cmake")
include("/root/repo/build/tests/finitemodel_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/answers_test[1]_include.cmake")
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
