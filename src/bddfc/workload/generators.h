// Deterministic synthetic workload generators for tests and benchmarks.

#ifndef BDDFC_WORKLOAD_GENERATORS_H_
#define BDDFC_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// SplitMix64: tiny deterministic PRNG (seeded, reproducible across runs).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n): Lemire's debiased multiply-shift bounded sampler
  /// over the splitmix64 stream. No std distribution is involved, so a
  /// given seed yields byte-identical draws on every standard library and
  /// platform (std::uniform_int_distribution is unspecified and differs
  /// between libstdc++ and libc++).
  uint64_t Uniform(uint64_t n) {
    if (n == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * n;
    auto low = static_cast<uint64_t>(m);
    if (low < n) {
      const uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(Next()) * n;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Derives a decorrelated seed for stream `stream` of a run seeded with
  /// `seed` (one splitmix64 scramble of the pair). Used by the fuzzer so
  /// run i's scenario is reproducible from (--seed, i) alone.
  static uint64_t Mix(uint64_t seed, uint64_t stream) {
    Rng r(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    return r.Next();
  }

 private:
  uint64_t state_;
};

/// A random directed graph over `nodes` null elements with `edges` edges
/// spread across `num_relations` binary predicates e0, e1, ...
Structure RandomGraph(SignaturePtr sig, int nodes, int edges, uint64_t seed,
                      int num_relations = 1);

/// Path query e(x_0, x_1), ..., e(x_{k-1}, x_k) over predicate `pred`.
ConjunctiveQuery PathQuery(PredId pred, int k);

/// Star query e(x_0, x_1), ..., e(x_0, x_k).
ConjunctiveQuery StarQuery(PredId pred, int k);

/// Directed cycle query e(x_0, x_1), ..., e(x_{k-1}, x_0).
ConjunctiveQuery CycleQuery(PredId pred, int k);

/// A random linear Datalog∃ theory: `rules` rules A(x, y) -> ∃z B(y, z) or
/// A(x, y) -> B(y, x) over `preds` binary predicates. Always BDD (linear).
Theory RandomLinearTheory(SignaturePtr sig, int preds, int rules,
                          uint64_t seed);

/// A random guarded theory with predicates of arity up to `max_arity`.
/// Each rule has a full-width guard plus up to one side atom.
Theory RandomGuardedTheory(SignaturePtr sig, int max_arity, int rules,
                           uint64_t seed);

/// A random binary theory in (♠5)-friendly shape: existential TGDs
/// B(x, y) -> ∃z R(y, z) plus datalog rules with small bodies. Generated so
/// the TGD graph is acyclic => BDD (and weakly acyclic).
Theory RandomAcyclicBinaryTheory(SignaturePtr sig, int preds, int tgds,
                                 int datalog_rules, uint64_t seed);

}  // namespace bddfc

#endif  // BDDFC_WORKLOAD_GENERATORS_H_
