// E3 — UCQ rewriting: size, saturation depth (the k_Φ certificate) and κ
// versus query size on BDD theories. Expected shapes: on the linear
// successor theory the minimized rewriting of a k-path collapses to the
// single edge while generated-query counts grow with k; the transitivity
// theory never saturates (not BDD) and hits its budget at every k.

#include "bench_common.h"

#include "bddfc/rewrite/rewriter.h"
#include "bddfc/workload/generators.h"

namespace {

using namespace bddfc;

Program Successor() {
  return std::move(ParseProgram("e(X, Y) -> exists Z: e(Y, Z).")).ValueOrDie();
}

Program SuccessorWithSource() {
  return std::move(ParseProgram(R"(
    u(X) -> exists Z: e(X, Z).
    e(X, Y) -> u(Y).
  )")).ValueOrDie();
}

Program Transitivity() {
  return std::move(ParseProgram("e(X, Y), e(Y, Z) -> e(X, Z).")).ValueOrDie();
}

void PrintTable() {
  bddfc_bench::Banner("E3", "rewriting size / depth vs query size");
  std::printf("%-16s %-4s %-10s %-9s %-8s %-8s\n", "theory", "k",
              "generated", "minimized", "depth", "status");
  struct Row {
    const char* name;
    Program p;
  };
  Row rows[] = {{"successor", Successor()},
                {"succ+source", SuccessorWithSource()},
                {"transitivity", Transitivity()}};
  for (Row& row : rows) {
    PredId e = std::move(row.p.theory.sig().FindPredicate("e")).ValueOrDie();
    for (int k = 1; k <= 6; ++k) {
      RewriteOptions opts;
      opts.max_depth = 12;
      opts.max_queries = 3000;
      RewriteResult r = RewriteQuery(row.p.theory, PathQuery(e, k), opts);
      std::printf("%-16s %-4d %-10zu %-9zu %-8zu %-8s\n", row.name, k,
                  r.queries_generated, r.rewriting.size(), r.depth_reached,
                  r.status.ok() ? "saturated" : "budget");
    }
  }

  std::printf("\nkappa (§3.3) per theory:\n");
  for (Row& row : rows) {
    KappaResult kr = ComputeKappa(row.p.theory);
    std::printf("  %-16s kappa=%-3d (%s)\n", row.name, kr.kappa,
                kr.status.ok() ? "exact" : "budgeted");
  }
}

void BM_RewritePath(benchmark::State& state) {
  Program p = SuccessorWithSource();
  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    RewriteResult r = RewriteQuery(p.theory, q);
    benchmark::DoNotOptimize(r.rewriting.size());
  }
}
BENCHMARK(BM_RewritePath)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ProbeBddLinear(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomLinearTheory(sig, 3, static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    BddProbeResult r = ProbeBdd(t);
    benchmark::DoNotOptimize(r.certified);
  }
}
BENCHMARK(BM_ProbeBddLinear)->Arg(2)->Arg(4)->Arg(8);

void BM_DerivationDepth(benchmark::State& state) {
  Program p = std::move(ParseProgram(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )")).ValueOrDie();
  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DerivationDepth(p.theory, p.instance, q, 24));
  }
}
BENCHMARK(BM_DerivationDepth)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
