file(REMOVE_RECURSE
  "libbddfc_finitemodel.a"
)
