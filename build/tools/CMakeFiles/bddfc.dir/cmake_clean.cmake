file(REMOVE_RECURSE
  "CMakeFiles/bddfc.dir/bddfc_cli.cc.o"
  "CMakeFiles/bddfc.dir/bddfc_cli.cc.o.d"
  "bddfc"
  "bddfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
