# Empty dependencies file for bench_cq_eval.
# This may be replaced when dependencies are built.
