// E5 — Cost of deciding positive-type containment (the pattern-enumeration
// oracle of ptype.h) versus structure size and variable budget n.
// Expected shape: pattern count grows ~ |C|^(n-1) uncolored; natural
// coloring slashes the effective cost of downstream conservativity checks
// because most canonical queries fail fast on color mismatch.

#include "bench_common.h"

#include "bddfc/types/coloring.h"
#include "bddfc/types/ptype.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E5", "type-oracle pattern counts");
  std::printf("%-8s %-4s %-14s %-12s\n", "chain", "n", "patterns",
              "classes");
  for (int len : {16, 32, 64}) {
    for (int n = 2; n <= 3; ++n) {
      auto sig = std::make_shared<Signature>();
      Structure chain = MakeChain(sig, len);
      TypeOracleOptions opts;
      opts.num_variables = n;
      TypeOracle oracle(chain, chain, opts);
      // One full containment query between two interior elements.
      std::vector<TermId> dom = chain.Domain();
      oracle.TypeContained(dom[len / 2], dom[len / 2 + 1]);
      auto part = ExactPtpPartition(chain, n);
      std::printf("%-8d %-4d %-14zu %-12s\n", len, n,
                  oracle.patterns_checked(),
                  part.ok() ? std::to_string(part.value().num_classes).c_str()
                            : "(budget)");
    }
  }
}

void BM_TypeContained(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  std::vector<TermId> elems;
  Structure chain = MakeChain(sig, static_cast<int>(state.range(0)), &elems);
  TypeOracleOptions opts;
  opts.num_variables = static_cast<int>(state.range(1));
  for (auto _ : state) {
    TypeOracle oracle(chain, chain, opts);
    benchmark::DoNotOptimize(
        oracle.TypeContained(elems[elems.size() / 2],
                             elems[elems.size() / 2 + 1]));
  }
}
BENCHMARK(BM_TypeContained)
    ->Args({16, 2})
    ->Args({64, 2})
    ->Args({16, 3})
    ->Args({64, 3});

void BM_PartitionTree(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure tree = MakeBinaryTree(sig, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto p = ExactPtpPartition(tree, 2);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_PartitionTree)->Arg(3)->Arg(4)->Arg(5);

void BM_AncestorPartitionColored(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, static_cast<int>(state.range(0)));
  Result<Coloring> col = NaturalColoring(chain, 2);
  for (auto _ : state) {
    TypePartition p = AncestorPathPartition(col.value().colored, 3);
    benchmark::DoNotOptimize(p.num_classes);
  }
}
BENCHMARK(BM_AncestorPartitionColored)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
