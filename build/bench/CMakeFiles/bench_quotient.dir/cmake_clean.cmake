file(REMOVE_RECURSE
  "CMakeFiles/bench_quotient.dir/bench_quotient.cc.o"
  "CMakeFiles/bench_quotient.dir/bench_quotient.cc.o.d"
  "bench_quotient"
  "bench_quotient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quotient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
