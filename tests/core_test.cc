// Unit tests for the core data model: terms, signatures, atoms, structures,
// substitutions, queries, rules and theories.

#include <gtest/gtest.h>

#include "bddfc/core/query.h"
#include "bddfc/core/rule.h"
#include "bddfc/core/signature.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/substitution.h"
#include "bddfc/core/theory.h"

namespace bddfc {
namespace {

TEST(TermTest, VariableEncodingRoundTrips) {
  for (int k = 0; k < 100; ++k) {
    TermId v = MakeVar(k);
    EXPECT_TRUE(IsVar(v));
    EXPECT_FALSE(IsConst(v));
    EXPECT_EQ(DecodeVar(v), k);
  }
}

TEST(TermTest, ConstantsAreNonNegative) {
  EXPECT_TRUE(IsConst(0));
  EXPECT_TRUE(IsConst(42));
  EXPECT_FALSE(IsVar(0));
}

TEST(SignatureTest, AddAndFindPredicate) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  EXPECT_EQ(sig.arity(e), 2);
  EXPECT_EQ(sig.PredicateName(e), "e");
  EXPECT_EQ(std::move(sig.FindPredicate("e")).ValueOrDie(), e);
  EXPECT_FALSE(sig.FindPredicate("missing").ok());
}

TEST(SignatureTest, RedeclareSameArityIsIdempotent) {
  Signature sig;
  PredId e1 = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  PredId e2 = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(sig.num_predicates(), 1);
}

TEST(SignatureTest, RedeclareDifferentArityFails) {
  Signature sig;
  ASSERT_TRUE(sig.AddPredicate("e", 2).ok());
  Result<PredId> bad = sig.AddPredicate("e", 3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kAlreadyExists);
}

TEST(SignatureTest, ConstantsAndNullsAreDistinguished) {
  Signature sig;
  TermId a = sig.AddConstant("a");
  TermId n = sig.AddNull();
  EXPECT_FALSE(sig.IsNull(a));
  EXPECT_TRUE(sig.IsNull(n));
  EXPECT_NE(a, n);
  // Re-adding a constant is idempotent.
  EXPECT_EQ(sig.AddConstant("a"), a);
  // Nulls are always fresh.
  EXPECT_NE(sig.AddNull(), n);
}

TEST(SignatureTest, ColorPredicatesCarryHueAndLightness) {
  Signature sig;
  PredId k = sig.AddColorPredicate(3, 7);
  EXPECT_TRUE(sig.IsColor(k));
  EXPECT_EQ(sig.predicate(k).hue, 3);
  EXPECT_EQ(sig.predicate(k).lightness, 7);
  EXPECT_EQ(sig.arity(k), 1);
}

TEST(SignatureTest, IsBinaryRespectsMaxArity) {
  Signature sig;
  ASSERT_TRUE(sig.AddPredicate("u", 1).ok());
  ASSERT_TRUE(sig.AddPredicate("e", 2).ok());
  EXPECT_TRUE(sig.IsBinary());
  ASSERT_TRUE(sig.AddPredicate("t", 3).ok());
  EXPECT_FALSE(sig.IsBinary());
  EXPECT_EQ(sig.MaxArity(), 3);
}

TEST(SignatureTest, FreshPredicateNameAvoidsCollision) {
  Signature sig;
  ASSERT_TRUE(sig.AddPredicate("f", 2).ok());
  std::string fresh = sig.FreshPredicateName("f");
  EXPECT_NE(fresh, "f");
  EXPECT_FALSE(sig.FindPredicate(fresh).ok());
}

class StructureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sig_ = std::make_shared<Signature>();
    e_ = std::move(sig_->AddPredicate("e", 2)).ValueOrDie();
    u_ = std::move(sig_->AddPredicate("u", 1)).ValueOrDie();
    a_ = sig_->AddConstant("a");
    b_ = sig_->AddConstant("b");
    c_ = sig_->AddConstant("c");
  }

  SignaturePtr sig_;
  PredId e_ = -1, u_ = -1;
  TermId a_ = -1, b_ = -1, c_ = -1;
};

TEST_F(StructureTest, AddFactDeduplicates) {
  Structure s(sig_);
  EXPECT_TRUE(s.AddFact(e_, {a_, b_}));
  EXPECT_FALSE(s.AddFact(e_, {a_, b_}));
  EXPECT_EQ(s.NumFacts(), 1u);
  EXPECT_TRUE(s.Contains(e_, {a_, b_}));
  EXPECT_FALSE(s.Contains(e_, {b_, a_}));
}

TEST_F(StructureTest, DomainTracksFirstAppearance) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(u_, {c_});
  ASSERT_EQ(s.Domain().size(), 3u);
  EXPECT_EQ(s.Domain()[0], a_);
  EXPECT_EQ(s.Domain()[1], b_);
  EXPECT_EQ(s.Domain()[2], c_);
  EXPECT_TRUE(s.InDomain(a_));
}

TEST_F(StructureTest, ExplicitDomainElementWithoutFacts) {
  Structure s(sig_);
  s.AddDomainElement(c_);
  EXPECT_TRUE(s.InDomain(c_));
  EXPECT_EQ(s.NumFacts(), 0u);
}

TEST_F(StructureTest, PostingsIndexFindsRows) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(e_, {a_, c_});
  s.AddFact(e_, {b_, c_});
  const std::vector<uint32_t>* from_a = s.Postings(e_, 0, a_);
  ASSERT_NE(from_a, nullptr);
  EXPECT_EQ(from_a->size(), 2u);
  const std::vector<uint32_t>* to_c = s.Postings(e_, 1, c_);
  ASSERT_NE(to_c, nullptr);
  EXPECT_EQ(to_c->size(), 2u);
  EXPECT_EQ(s.Postings(e_, 0, c_), nullptr);
}

TEST_F(StructureTest, RestrictToPredicates) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(u_, {a_});
  Structure only_e = s.RestrictToPredicates({e_});
  EXPECT_EQ(only_e.NumFacts(), 1u);
  EXPECT_TRUE(only_e.Contains(e_, {a_, b_}));
  EXPECT_FALSE(only_e.Contains(u_, {a_}));
}

TEST_F(StructureTest, RestrictToElements) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(e_, {b_, c_});
  Structure sub = s.RestrictToElements({a_, b_});
  EXPECT_EQ(sub.NumFacts(), 1u);
  EXPECT_TRUE(sub.Contains(e_, {a_, b_}));
}

TEST_F(StructureTest, ContainsAllFactsOf) {
  Structure big(sig_), small(sig_);
  big.AddFact(e_, {a_, b_});
  big.AddFact(u_, {a_});
  small.AddFact(e_, {a_, b_});
  EXPECT_TRUE(big.ContainsAllFactsOf(small));
  EXPECT_FALSE(small.ContainsAllFactsOf(big));
}

TEST_F(StructureTest, WatermarkTracksRoundBoundaries) {
  Structure s(sig_);
  // Before any mark, every watermark is 0: everything is "delta".
  EXPECT_EQ(s.WatermarkRows(e_), 0u);
  EXPECT_EQ(s.NumFactsAtWatermark(), 0u);

  s.AddFact(e_, {a_, b_});
  s.AddFact(u_, {c_});
  s.MarkRoundBoundary();
  EXPECT_EQ(s.WatermarkRows(e_), 1u);
  EXPECT_EQ(s.WatermarkRows(u_), 1u);
  EXPECT_EQ(s.NumFactsAtWatermark(), 2u);

  // New rows land above the watermark; old ones stay below.
  s.AddFact(e_, {b_, c_});
  EXPECT_EQ(s.WatermarkRows(e_), 1u);
  EXPECT_EQ(s.NumFacts(e_), 2u);
  EXPECT_EQ(s.Rows(e_)[s.WatermarkRows(e_)], (std::vector<TermId>{b_, c_}));

  // Re-marking advances; predicates unseen at the mark report 0.
  s.MarkRoundBoundary();
  EXPECT_EQ(s.WatermarkRows(e_), 2u);
  EXPECT_EQ(s.NumFactsAtWatermark(), 3u);
  EXPECT_EQ(s.WatermarkRows(static_cast<PredId>(99)), 0u);
}

TEST(SubstitutionTest, BindAndResolveChains) {
  Substitution s;
  TermId x = MakeVar(0), y = MakeVar(1);
  EXPECT_TRUE(s.Bind(x, y));
  EXPECT_TRUE(s.Bind(y, 7));
  EXPECT_EQ(s.Resolve(x), 7);
  EXPECT_EQ(s.Resolve(y), 7);
}

TEST(SubstitutionTest, ConflictingConstantBindFails) {
  Substitution s;
  TermId x = MakeVar(0);
  EXPECT_TRUE(s.Bind(x, 3));
  EXPECT_FALSE(s.Bind(x, 4));
  EXPECT_TRUE(s.Bind(x, 3));  // same constant is fine
}

TEST(SubstitutionTest, ApplyToAtom) {
  Substitution s;
  s.Bind(MakeVar(0), 5);
  Atom a(0, {MakeVar(0), MakeVar(1)});
  Atom out = s.Apply(a);
  EXPECT_EQ(out.args[0], 5);
  EXPECT_EQ(out.args[1], MakeVar(1));
}

TEST(UnifyTest, UnifiesVariablesAndConstants) {
  // e(x, b) with e(a, y) should unify with x=a, y=b.
  Substitution mgu;
  Atom lhs(0, {MakeVar(0), 1});
  Atom rhs(0, {0, MakeVar(1)});
  ASSERT_TRUE(UnifyAtoms(lhs, rhs, &mgu));
  EXPECT_EQ(mgu.Resolve(MakeVar(0)), 0);
  EXPECT_EQ(mgu.Resolve(MakeVar(1)), 1);
}

TEST(UnifyTest, FailsOnDistinctConstants) {
  Substitution mgu;
  Atom lhs(0, {3, MakeVar(0)});
  Atom rhs(0, {4, MakeVar(1)});
  EXPECT_FALSE(UnifyAtoms(lhs, rhs, &mgu));
}

TEST(UnifyTest, FailsOnDifferentPredicates) {
  Substitution mgu;
  EXPECT_FALSE(UnifyAtoms(Atom(0, {MakeVar(0)}), Atom(1, {MakeVar(0)}), &mgu));
}

TEST(QueryTest, VariablesInFirstOccurrenceOrder) {
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(0, {MakeVar(2), MakeVar(0)}));
  q.atoms.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  std::vector<TermId> vars = q.Variables();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], MakeVar(2));
  EXPECT_EQ(vars[1], MakeVar(0));
  EXPECT_EQ(vars[2], MakeVar(1));
}

TEST(QueryTest, NormalizedIsRenamingInvariant) {
  Signature sig;
  ASSERT_TRUE(sig.AddPredicate("e", 2).ok());
  ConjunctiveQuery q1, q2;
  q1.atoms.push_back(Atom(0, {MakeVar(5), MakeVar(9)}));
  q1.atoms.push_back(Atom(0, {MakeVar(9), MakeVar(5)}));
  q2.atoms.push_back(Atom(0, {MakeVar(1), MakeVar(0)}));
  q2.atoms.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  EXPECT_EQ(q1.NormalizedKey(sig), q2.NormalizedKey(sig));
}

TEST(QueryTest, NormalizedDropsDuplicateAtoms) {
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  q.atoms.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  EXPECT_EQ(q.Normalized().atoms.size(), 1u);
}

TEST(QueryTest, RenamedApartUsesFreshVariables) {
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  int32_t next = 10;
  ConjunctiveQuery r = q.RenamedApart(&next);
  EXPECT_EQ(r.atoms[0].args[0], MakeVar(10));
  EXPECT_EQ(r.atoms[0].args[1], MakeVar(11));
  EXPECT_EQ(next, 12);
}

TEST(RuleTest, ExistentialAndFrontierVariables) {
  // e(x, y) -> ∃z e(y, z)
  Rule r;
  r.body.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  r.head.push_back(Atom(0, {MakeVar(1), MakeVar(2)}));
  EXPECT_TRUE(r.IsExistential());
  EXPECT_FALSE(r.IsDatalog());
  ASSERT_EQ(r.ExistentialVariables().size(), 1u);
  EXPECT_EQ(r.ExistentialVariables()[0], MakeVar(2));
  ASSERT_EQ(r.FrontierVariables().size(), 1u);
  EXPECT_EQ(r.FrontierVariables()[0], MakeVar(1));
}

TEST(RuleTest, DatalogRuleHasNoExistentials) {
  Rule r;
  r.body.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  r.body.push_back(Atom(0, {MakeVar(1), MakeVar(2)}));
  r.head.push_back(Atom(0, {MakeVar(0), MakeVar(2)}));
  EXPECT_TRUE(r.IsDatalog());
}

TEST(RuleTest, ValidateRejectsWrongArity) {
  Signature sig;
  ASSERT_TRUE(sig.AddPredicate("e", 2).ok());
  Rule r;
  r.body.push_back(Atom(0, {MakeVar(0)}));  // e with arity 1: invalid
  r.head.push_back(Atom(0, {MakeVar(0), MakeVar(1)}));
  EXPECT_FALSE(r.Validate(sig).ok());
}

TEST(RuleTest, ValidateRejectsEmptyHead) {
  Signature sig;
  Rule r;
  r.body.push_back(Atom(0, {MakeVar(0)}));
  EXPECT_FALSE(r.Validate(sig).ok());
}

TEST(TheoryTest, TgpCandidatesAreTgdHeadPredicates) {
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  PredId r = std::move(sig->AddPredicate("r", 2)).ValueOrDie();
  Theory t(sig);
  {
    Rule rule;
    rule.body.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
    rule.head.push_back(Atom(e, {MakeVar(1), MakeVar(2)}));
    ASSERT_TRUE(t.AddRule(rule).ok());
  }
  {
    Rule rule;  // datalog
    rule.body.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
    rule.head.push_back(Atom(r, {MakeVar(0), MakeVar(1)}));
    ASSERT_TRUE(t.AddRule(rule).ok());
  }
  auto tgps = t.TgpCandidates();
  EXPECT_EQ(tgps.size(), 1u);
  EXPECT_TRUE(tgps.count(e));
  EXPECT_FALSE(tgps.count(r));
}

TEST(TheoryTest, Spade5NormalFormDetection) {
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  PredId r = std::move(sig->AddPredicate("r", 2)).ValueOrDie();
  Theory good(sig);
  {
    Rule rule;  // e(x,y) -> ∃z r(y,z): head witness second => fine
    rule.body.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
    rule.head.push_back(Atom(r, {MakeVar(1), MakeVar(2)}));
    ASSERT_TRUE(good.AddRule(rule).ok());
  }
  EXPECT_TRUE(good.IsSpade5Normal());

  Theory bad(sig);
  {
    Rule rule;  // witness in first position => violates (♠5)
    rule.body.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
    rule.head.push_back(Atom(r, {MakeVar(2), MakeVar(1)}));
    ASSERT_TRUE(bad.AddRule(rule).ok());
  }
  EXPECT_FALSE(bad.IsSpade5Normal());

  Theory mixed(sig);
  {
    Rule rule;  // TGP r also in a datalog head => violates (♠5)
    rule.body.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
    rule.head.push_back(Atom(r, {MakeVar(1), MakeVar(2)}));
    ASSERT_TRUE(mixed.AddRule(rule).ok());
  }
  {
    Rule rule;
    rule.body.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
    rule.head.push_back(Atom(r, {MakeVar(0), MakeVar(1)}));
    ASSERT_TRUE(mixed.AddRule(rule).ok());
  }
  EXPECT_FALSE(mixed.IsSpade5Normal());
}

TEST(TheoryTest, MaxBodyVariablesCountsDistinctVars) {
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  Theory t(sig);
  Rule rule;
  rule.body.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  rule.body.push_back(Atom(e, {MakeVar(1), MakeVar(2)}));
  rule.head.push_back(Atom(e, {MakeVar(0), MakeVar(2)}));
  ASSERT_TRUE(t.AddRule(rule).ok());
  EXPECT_EQ(t.MaxBodyVariables(), 3);
}

}  // namespace
}  // namespace bddfc
