#include "bddfc/serve/protocol.h"

#include <vector>

namespace bddfc::serve {

namespace {

// Splits on single spaces; protocol tokens never contain spaces.
std::vector<std::string_view> Tokens(std::string_view line) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t next = line.find(' ', pos);
    if (next == std::string_view::npos) next = line.size();
    if (next > pos) out.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

bool ParseSize(std::string_view token, size_t* out) {
  if (token.empty() || token.size() > 9) return false;
  size_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<size_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string FormatResponse(const Response& response) {
  std::string out;
  if (response.status.ok()) {
    out = "OK ";
  } else {
    out = "ERR ";
    out += StatusCodeName(response.status.code());
    out += ' ';
  }
  out += std::to_string(response.body.size());
  out += '\n';
  out += response.body;
  return out;
}

Status ParseRequestLine(std::string_view line, Request* out,
                        size_t* payload_bytes, bool* quit) {
  *payload_bytes = 0;
  *quit = false;
  const std::vector<std::string_view> tok = Tokens(line);
  if (tok.empty()) return Status::InvalidArgument("empty request line");
  const std::string_view verb = tok[0];

  if (verb == "QUIT") {
    if (tok.size() != 1) return Status::InvalidArgument("QUIT takes no args");
    *quit = true;
    return Status::OK();
  }
  if (verb == "HEALTH") {
    if (tok.size() != 1) return Status::InvalidArgument("HEALTH takes no args");
    out->kind = Request::Kind::kHealth;
    return Status::OK();
  }
  if (verb == "METRICS") {
    if (tok.size() > 2) {
      return Status::InvalidArgument("usage: METRICS [<tenant>]");
    }
    out->kind = Request::Kind::kMetrics;
    out->tenant = tok.size() == 2 ? std::string(tok[1]) : std::string();
    return Status::OK();
  }
  if (verb == "LOAD") {
    if (tok.size() != 3 || !ParseSize(tok[2], payload_bytes)) {
      return Status::InvalidArgument("usage: LOAD <tenant> <nbytes>");
    }
    out->kind = Request::Kind::kLoad;
    out->tenant = std::string(tok[1]);
    return Status::OK();
  }
  if (verb == "QUERY" || verb == "REWRITE") {
    if (tok.size() != 4 || !KeyFromHex(tok[2], &out->key) ||
        !ParseSize(tok[3], payload_bytes)) {
      return Status::InvalidArgument(
          "usage: " + std::string(verb) + " <tenant> <key-hex> <nbytes>");
    }
    out->kind = verb == "QUERY" ? Request::Kind::kQuery
                                : Request::Kind::kRewrite;
    out->tenant = std::string(tok[1]);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown verb " + std::string(verb));
}

size_t ServeBuffer(ReasoningServer& server, std::string_view input,
                   std::string* output) {
  size_t served = 0;
  size_t pos = 0;
  while (pos < input.size()) {
    size_t eol = input.find('\n', pos);
    if (eol == std::string_view::npos) eol = input.size();
    std::string_view line = input.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    Request request;
    size_t payload_bytes = 0;
    bool quit = false;
    Status parsed = ParseRequestLine(line, &request, &payload_bytes, &quit);
    if (quit) break;
    if (!parsed.ok()) {
      *output += FormatResponse(Response{parsed, parsed.message()});
      ++served;
      continue;
    }
    if (payload_bytes > 0) {
      if (pos + payload_bytes > input.size()) {
        Status err = Status::InvalidArgument("truncated payload");
        *output += FormatResponse(Response{err, err.message()});
        ++served;
        break;
      }
      request.payload = std::string(input.substr(pos, payload_bytes));
      pos += payload_bytes;
      // An optional newline after the payload keeps hand-written scripts
      // readable; it is not part of the payload.
      if (pos < input.size() && input[pos] == '\n') ++pos;
    }
    *output += FormatResponse(server.Handle(request));
    ++served;
  }
  return served;
}

bool LooksLikeHttp(std::string_view prefix) {
  return prefix.substr(0, 4) == "GET ";
}

std::string HandleHttp(ReasoningServer& server,
                       std::string_view request_line) {
  // "GET <path> ..." — only the path matters.
  std::string_view path;
  if (const std::vector<std::string_view> tok = Tokens(request_line);
      tok.size() >= 2) {
    path = tok[1];
  }
  std::string body;
  const char* status_line = "HTTP/1.0 200 OK";
  if (path == "/metrics") {
    body = server.MetricsText();
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found\n";
  }
  std::string out = status_line;
  out += "\r\nContent-Type: text/plain\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace bddfc::serve
