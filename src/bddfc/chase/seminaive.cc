#include "bddfc/chase/seminaive.h"

#include <vector>

#include "bddfc/eval/match.h"

namespace bddfc {

namespace {

/// Unifies a body atom pattern against a ground row into `binding`.
/// Returns false on mismatch; bindings added on success stay (caller keeps
/// a fresh copy per row).
bool BindRow(const Atom& pattern, const std::vector<TermId>& row,
             Binding* binding) {
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    TermId t = pattern.args[i];
    if (IsConst(t)) {
      if (t != row[i]) return false;
      continue;
    }
    auto [it, inserted] = binding->emplace(t, row[i]);
    if (!inserted && it->second != row[i]) return false;
  }
  return true;
}

}  // namespace

SaturateResult SaturateDatalog(const Theory& theory, const Structure& instance,
                               const SaturateOptions& options) {
  SaturateResult out(instance.signature_ptr());

  std::vector<const Rule*> rules;
  for (const Rule& r : theory.rules()) {
    if (r.IsDatalog()) rules.push_back(&r);
  }

  // Full structure and the last round's delta.
  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    out.structure.AddFact(p, row);
  });
  for (TermId e : instance.Domain()) out.structure.AddDomainElement(e);

  Structure delta(instance.signature_ptr());
  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    delta.AddFact(p, row);
  });

  while (delta.NumFacts() > 0) {
    if (++out.rounds_run > options.max_rounds) {
      out.status = Status::ResourceExhausted("max_rounds exhausted");
      return out;
    }
    std::vector<Atom> additions;
    Matcher full(out.structure);

    for (const Rule* rule : rules) {
      for (size_t di = 0; di < rule->body.size(); ++di) {
        const Atom& danchor = rule->body[di];
        // Remaining atoms evaluated over the full structure.
        std::vector<Atom> rest;
        for (size_t j = 0; j < rule->body.size(); ++j) {
          if (j != di) rest.push_back(rule->body[j]);
        }
        for (const auto& row : delta.Rows(danchor.pred)) {
          Binding binding;
          if (!BindRow(danchor, row, &binding)) continue;
          full.Enumerate(rest, binding, [&](const Binding& b) {
            ++out.bindings_tried;
            for (const Atom& h : rule->head) {
              Atom g = h;
              for (TermId& t : g.args) {
                if (IsVar(t)) t = b.at(t);
              }
              if (!out.structure.Contains(g)) additions.push_back(g);
            }
            return true;
          });
        }
      }
    }

    Structure next_delta(instance.signature_ptr());
    for (const Atom& g : additions) {
      if (out.structure.AddFact(g)) {
        next_delta.AddFact(g);
        ++out.facts_derived;
      }
    }
    if (out.structure.NumFacts() > options.max_facts) {
      out.status = Status::ResourceExhausted("max_facts exhausted");
      return out;
    }
    delta = std::move(next_delta);
  }
  return out;
}

}  // namespace bddfc
