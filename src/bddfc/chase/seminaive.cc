#include "bddfc/chase/seminaive.h"

#include <unordered_set>
#include <vector>

#include "bddfc/eval/match.h"

namespace bddfc {

SaturateResult SaturateDatalog(const Theory& theory, const Structure& instance,
                               const SaturateOptions& options) {
  SaturateResult out(instance.signature_ptr());

  std::vector<const Rule*> rules;
  for (const Rule& r : theory.rules()) {
    if (r.IsDatalog()) rules.push_back(&r);
  }

  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    out.structure.AddFact(p, row);
  });
  for (TermId e : instance.Domain()) out.structure.AddDomainElement(e);

  // The delta of each round is the row range above the last watermark — no
  // copied structures. Before the first MarkRoundBoundary all watermarks
  // are 0, so round 1 sees the whole input as its delta.
  size_t facts_at_mark = 0;
  while (out.structure.NumFacts() > facts_at_mark) {
    if (++out.rounds_run > options.max_rounds) {
      out.status = Status::ResourceExhausted("max_rounds exhausted");
      return out;
    }
    std::vector<Atom> additions;
    std::unordered_set<Atom, AtomHash> buffered;
    Matcher matcher(out.structure);

    for (const Rule* rule : rules) {
      const size_t k = rule->body.size();
      std::vector<RowBand> bands(k);
      for (size_t di = 0; di < k; ++di) {
        const Atom& anchor = rule->body[di];
        const uint32_t wm = out.structure.WatermarkRows(anchor.pred);
        if (wm >= out.structure.NumFacts(anchor.pred)) {
          continue;  // empty delta for this anchor
        }
        // Old/new split: atoms before the anchor are confined to pre-round
        // rows, the anchor to the delta, atoms after it range over the full
        // relation. Each binding is derived once, at its first delta atom
        // — not once per delta anchor it happens to touch.
        for (size_t j = 0; j < k; ++j) {
          if (j < di) {
            bands[j] = {0, out.structure.WatermarkRows(rule->body[j].pred)};
          } else if (j == di) {
            bands[j] = {wm, UINT32_MAX};
          } else {
            bands[j] = RowBand::All();
          }
        }
        matcher.EnumerateBanded(rule->body, bands, {}, [&](const Binding& b) {
          ++out.bindings_tried;
          for (const Atom& h : rule->head) {
            Atom g = h;
            for (TermId& t : g.args) {
              if (IsVar(t)) t = b.at(t);
            }
            if (!out.structure.Contains(g) && buffered.insert(g).second) {
              additions.push_back(std::move(g));
            }
          }
          return true;
        });
      }
    }

    facts_at_mark = out.structure.NumFacts();
    out.structure.MarkRoundBoundary();
    for (const Atom& g : additions) {
      if (out.structure.AddFact(g)) ++out.facts_derived;
    }
    if (out.structure.NumFacts() > options.max_facts) {
      out.status = Status::ResourceExhausted("max_facts exhausted");
      return out;
    }
  }
  return out;
}

}  // namespace bddfc
