// The Theorem 2 construction, end to end, on the paper's Example 7.
//
// T: e(x, y) ⇒ ∃z e(y, z);  e(x, y), e(x', y) ⇒ r(x, x').   D = {e(a, b)}.
// The chase is an infinite chain with only reflexive r-atoms, so the query
// Q = ∃x e(x, x) is not certain. The pipeline hides Q in the theory (♠4),
// normalizes (♠5), chases to a prefix, extracts the forest skeleton
// (Lemma 3), colors it (Def. 14), quotients by ancestor-path types (§2),
// saturates with the datalog rules (Lemma 5) and certifies the result.
//
// Build & run:  ./build/examples/finite_model_demo

#include <cstdio>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/paper_examples.h"

int main() {
  using namespace bddfc;

  Program p = Example7();
  std::printf("theory:\n%s\n", p.theory.ToString().c_str());

  Result<ConjunctiveQuery> q =
      ParseQuery("e(X, X)", p.theory.signature_ptr().get());
  if (!q.ok()) return 1;
  std::printf("query: ∃x e(x, x)\n\n");

  // The chase never satisfies the query (prefix check).
  ChaseOptions copts;
  copts.max_rounds = 12;
  ChaseResult chase = RunChase(p.theory, p.instance, copts);
  std::printf("chase prefix: %zu facts, Q %s in prefix\n",
              chase.structure.NumFacts(),
              Satisfies(chase.structure, q.value()) ? "holds" : "fails");

  PipelineOptions opts;
  FiniteModelResult r =
      ConstructFiniteCounterModel(p.theory, p.instance, q.value(), opts);

  std::printf("\npipeline attempts:\n");
  for (const PipelineAttempt& a : r.attempts) {
    std::printf(
        "  chase_depth=%-3zu n=%d skeleton=%zu quotient=%d %s%s\n",
        a.chase_depth, a.n, a.skeleton_facts, a.quotient_size,
        a.certified ? "CERTIFIED" : "failed: ", a.failure.c_str());
  }

  if (!r.status.ok()) {
    std::printf("\nno model: %s\n", r.status.ToString().c_str());
    return 1;
  }
  std::printf(
      "\ncertified finite model (%zu elements, kappa=%d, n=%d, L=%zu):\n%s",
      r.model.Domain().size(), r.kappa, r.n_used, r.chase_depth_used,
      r.model.ToString().c_str());
  std::printf("\nmodel |= D: %s;  model |= T: %s;  model |= Q: %s\n",
              r.model.ContainsAllFactsOf(p.instance) ? "yes" : "no",
              CheckModel(r.model, p.theory) == std::nullopt ? "yes" : "no",
              Satisfies(r.model, q.value()) ? "yes (BUG!)" : "no");
  return 0;
}
