#include "bddfc/eval/answers.h"

#include <algorithm>
#include <cassert>

#include "bddfc/eval/exec.h"
#include "bddfc/eval/match.h"

namespace bddfc {

namespace {

/// Collects answer tuples of `query` over `s`, skipping tuples that bind a
/// labeled null. Plan-backed: the answer set is sorted and deduplicated by
/// the callers, so the executor's enumeration order is immaterial.
void CollectAnswers(const Structure& s, const ConjunctiveQuery& query,
                    std::vector<std::vector<TermId>>* out) {
  PlanEnumerate(s, query.atoms, {}, [&](const Binding& b) {
    std::vector<TermId> tuple;
    tuple.reserve(query.answer_vars.size());
    for (TermId v : query.answer_vars) {
      TermId value = IsConst(v) ? v : b.at(v);
      if (s.sig().IsNull(value)) return true;  // not a database value
      tuple.push_back(value);
    }
    out->push_back(std::move(tuple));
    return true;
  });
}

void SortUnique(std::vector<std::vector<TermId>>* answers) {
  std::sort(answers->begin(), answers->end());
  answers->erase(std::unique(answers->begin(), answers->end()),
                 answers->end());
}

}  // namespace

CertainAnswersResult CertainAnswers(const Theory& theory,
                                    const Structure& instance,
                                    const ConjunctiveQuery& query,
                                    const ChaseOptions& chase_options) {
  assert(!query.answer_vars.empty() &&
         "use Satisfies() for Boolean queries");
  CertainAnswersResult out;
  ChaseResult chase = RunChase(theory, instance, chase_options);
  CollectAnswers(chase.structure, query, &out.answers);
  SortUnique(&out.answers);
  out.complete = chase.fixpoint_reached;
  if (!chase.status.ok()) out.status = chase.status;
  return out;
}

CertainAnswersResult CertainAnswersViaRewriting(
    const Theory& theory, const Structure& instance,
    const ConjunctiveQuery& query, const RewriteOptions& options) {
  assert(!query.answer_vars.empty());
  CertainAnswersResult out;
  RewriteResult rw = RewriteQuery(theory, query, options);
  for (const ConjunctiveQuery& disjunct : rw.rewriting) {
    CollectAnswers(instance, disjunct, &out.answers);
  }
  SortUnique(&out.answers);
  out.complete = rw.status.ok();
  if (!rw.status.ok()) out.status = rw.status;
  return out;
}

}  // namespace bddfc
