#include "bddfc/classes/recognizers.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace bddfc {

bool IsBinaryTheory(const Theory& theory) {
  return theory.sig().IsBinary();
}

bool IsLinear(const Theory& theory) {
  return std::all_of(
      theory.rules().begin(), theory.rules().end(),
      [](const Rule& r) { return r.body.size() == 1; });
}

bool IsGuarded(const Theory& theory) {
  for (const Rule& r : theory.rules()) {
    std::vector<TermId> body_vars = r.BodyVariables();
    bool has_guard = std::any_of(
        r.body.begin(), r.body.end(), [&](const Atom& a) {
          return std::all_of(body_vars.begin(), body_vars.end(),
                             [&](TermId v) {
                               return std::find(a.args.begin(), a.args.end(),
                                                v) != a.args.end();
                             });
        });
    if (!has_guard) return false;
  }
  return true;
}

bool HasSingleFrontierVariableHeads(const Theory& theory) {
  for (const Rule& r : theory.rules()) {
    if (!r.IsExistential()) continue;
    std::vector<TermId> body_vars = r.BodyVariables();
    std::set<TermId> frontier_in_head;
    for (const Atom& h : r.head) {
      for (TermId t : h.args) {
        if (IsVar(t) &&
            std::find(body_vars.begin(), body_vars.end(), t) !=
                body_vars.end()) {
          frontier_in_head.insert(t);
        }
      }
    }
    if (frontier_in_head.size() > 1) return false;
  }
  return true;
}

StickyReport CheckSticky(const Theory& theory) {
  StickyReport report;

  // Marked body occurrences: (rule, body atom index, position).
  struct Occ {
    size_t rule, atom;
    int pos;
    bool operator<(const Occ& o) const {
      return std::tie(rule, atom, pos) < std::tie(o.rule, o.atom, o.pos);
    }
  };
  std::set<Occ> marked;

  auto var_at = [&](size_t ri, size_t ai, int pos) {
    return theory.rules()[ri].body[ai].args[pos];
  };

  // Marks all body occurrences of variable v in rule ri; returns true when
  // anything new was marked.
  auto mark_var = [&](size_t ri, TermId v) {
    bool any = false;
    const Rule& r = theory.rules()[ri];
    for (size_t ai = 0; ai < r.body.size(); ++ai) {
      for (int pos = 0; pos < static_cast<int>(r.body[ai].args.size());
           ++pos) {
        if (r.body[ai].args[pos] == v) {
          any |= marked.insert({ri, ai, pos}).second;
        }
      }
    }
    return any;
  };

  // Initial step: mark body occurrences of variables absent from the head.
  for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
    const Rule& r = theory.rules()[ri];
    std::vector<TermId> head_vars = r.HeadVariables();
    for (TermId v : r.BodyVariables()) {
      if (!IsVar(v)) continue;
      if (std::find(head_vars.begin(), head_vars.end(), v) ==
          head_vars.end()) {
        mark_var(ri, v);
      }
    }
  }

  // Propagation: if position (p, i) carries a marked body occurrence
  // anywhere, mark body occurrences of every variable a rule head places at
  // (p, i). Iterate to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::pair<PredId, int>> marked_positions;
    for (const Occ& o : marked) {
      const Atom& a = theory.rules()[o.rule].body[o.atom];
      (void)var_at;
      marked_positions.emplace(a.pred, o.pos);
    }
    for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
      const Rule& r = theory.rules()[ri];
      for (const Atom& h : r.head) {
        for (int pos = 0; pos < static_cast<int>(h.args.size()); ++pos) {
          if (!IsVar(h.args[pos])) continue;
          if (marked_positions.count({h.pred, pos})) {
            changed |= mark_var(ri, h.args[pos]);
          }
        }
      }
    }
  }

  for (const Occ& o : marked) {
    const Atom& a = theory.rules()[o.rule].body[o.atom];
    report.marked_positions.emplace_back(a.pred, o.pos);
  }
  std::sort(report.marked_positions.begin(), report.marked_positions.end());
  report.marked_positions.erase(
      std::unique(report.marked_positions.begin(),
                  report.marked_positions.end()),
      report.marked_positions.end());

  // Sticky iff no marked variable occurs more than once in its rule body.
  for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
    const Rule& r = theory.rules()[ri];
    std::set<TermId> marked_vars;
    for (const Occ& o : marked) {
      if (o.rule == ri) marked_vars.insert(var_at(ri, o.atom, o.pos));
    }
    for (TermId v : marked_vars) {
      int occurrences = 0;
      for (const Atom& a : r.body) {
        occurrences += static_cast<int>(
            std::count(a.args.begin(), a.args.end(), v));
      }
      if (occurrences > 1) {
        report.is_sticky = false;
        report.violation = "marked variable occurs " +
                           std::to_string(occurrences) +
                           " times in body of rule '" + r.label + "'";
        return report;
      }
    }
  }
  report.is_sticky = true;
  return report;
}

bool IsWeaklyAcyclic(const Theory& theory) {
  // Positions are (pred, index), flattened to ids.
  const Signature& sig = theory.sig();
  auto pos_id = [&](PredId p, int i) { return p * (sig.MaxArity() + 1) + i; };
  int num_pos = sig.num_predicates() * (sig.MaxArity() + 1);

  // adj[u] = {(v, special)}.
  std::vector<std::vector<std::pair<int, bool>>> adj(num_pos);

  for (const Rule& r : theory.rules()) {
    std::vector<TermId> existentials = r.ExistentialVariables();
    for (const Atom& b : r.body) {
      for (int i = 0; i < static_cast<int>(b.args.size()); ++i) {
        TermId x = b.args[i];
        if (!IsVar(x)) continue;
        int u = pos_id(b.pred, i);
        for (const Atom& h : r.head) {
          for (int j = 0; j < static_cast<int>(h.args.size()); ++j) {
            TermId y = h.args[j];
            if (!IsVar(y)) continue;
            if (y == x) {
              adj[u].emplace_back(pos_id(h.pred, j), false);
            } else if (std::find(existentials.begin(), existentials.end(),
                                 y) != existentials.end()) {
              // x is a frontier variable feeding a head that invents y.
              std::vector<TermId> head_vars = r.HeadVariables();
              if (std::find(head_vars.begin(), head_vars.end(), x) !=
                  head_vars.end()) {
                adj[u].emplace_back(pos_id(h.pred, j), true);
              }
            }
          }
        }
      }
    }
  }

  // Weakly acyclic iff no cycle goes through a special edge: for each
  // special edge (u, v), check v cannot reach u.
  auto reaches = [&](int from, int to) {
    std::vector<char> seen(num_pos, 0);
    std::vector<int> stack = {from};
    seen[from] = 1;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      if (u == to) return true;
      for (auto [v, special] : adj[u]) {
        (void)special;
        if (!seen[v]) {
          seen[v] = 1;
          stack.push_back(v);
        }
      }
    }
    return false;
  };

  for (int u = 0; u < num_pos; ++u) {
    for (auto [v, special] : adj[u]) {
      if (special && (v == u || reaches(v, u))) return false;
    }
  }
  return true;
}

}  // namespace bddfc
