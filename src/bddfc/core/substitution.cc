#include "bddfc/core/substitution.h"

namespace bddfc {

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* mgu) {
  if (a.pred != b.pred || a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    TermId x = mgu->Resolve(a.args[i]);
    TermId y = mgu->Resolve(b.args[i]);
    if (x == y) continue;
    if (IsVar(x)) {
      if (!mgu->Bind(x, y)) return false;
    } else if (IsVar(y)) {
      if (!mgu->Bind(y, x)) return false;
    } else {
      return false;  // distinct constants
    }
  }
  return true;
}

}  // namespace bddfc
