#include "bddfc/classes/vtdag.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace bddfc {

std::unordered_set<TermId> PSet(const Structure& c, TermId e) {
  std::unordered_set<TermId> out = {e};
  if (!c.sig().IsNull(e)) return out;  // constants: P(e) = {e}
  for (PredId p = 0; p < c.sig().num_predicates(); ++p) {
    if (c.sig().arity(p) != 2) continue;
    const std::vector<uint32_t>* rows = c.Postings(p, 1, e);
    if (rows == nullptr) continue;
    for (uint32_t r : *rows) {
      TermId x = c.Rows(p)[r][0];
      if (c.sig().IsNull(x)) out.insert(x);
    }
  }
  return out;
}

std::unordered_set<TermId> PkSet(const Structure& c, TermId e, int k) {
  std::unordered_set<TermId> cur = PSet(c, e);
  for (int i = 0; i < k; ++i) {
    std::unordered_set<TermId> next;
    for (TermId a : cur) {
      for (TermId b : PSet(c, a)) next.insert(b);
    }
    if (next.size() == cur.size()) return cur;  // saturated early
    cur = std::move(next);
  }
  return cur;
}

VtdagReport CheckVtdag(const Structure& c) {
  VtdagReport report;
  const Signature& sig = c.sig();

  // Condition (Def. 11, bullet 1): per binary R and non-constant e, at most
  // one non-constant d with R(d, e).
  report.unique_predecessor = true;
  std::unordered_map<TermId, std::vector<TermId>> null_children;
  for (PredId p = 0; p < sig.num_predicates(); ++p) {
    if (sig.arity(p) != 2) continue;
    std::unordered_map<TermId, int> null_preds;  // e -> count for this R
    for (const auto& row : c.Rows(p)) {
      if (sig.IsNull(row[0]) && sig.IsNull(row[1]) && row[0] != row[1]) {
        null_children[row[0]].push_back(row[1]);
        if (++null_preds[row[1]] > 1) {
          report.unique_predecessor = false;
          report.violation = "element " + sig.ConstantName(row[1]) +
                             " has two non-constant " + sig.PredicateName(p) +
                             "-predecessors";
        }
      } else if (sig.IsNull(row[0]) && row[0] == row[1]) {
        // Self-loop on a null: C_non not a DAG.
        null_children[row[0]].push_back(row[1]);
      }
    }
  }

  // C_non is a DAG (Kahn).
  std::unordered_map<TermId, int> indeg;
  std::vector<TermId> nulls;
  for (TermId e : c.Domain()) {
    if (sig.IsNull(e)) {
      nulls.push_back(e);
      indeg[e] = 0;
    }
  }
  for (auto& [from, tos] : null_children) {
    (void)from;
    for (TermId to : tos) ++indeg[to];
  }
  std::deque<TermId> queue;
  for (TermId e : nulls) {
    if (indeg[e] == 0) queue.push_back(e);
  }
  size_t visited = 0;
  while (!queue.empty()) {
    TermId e = queue.front();
    queue.pop_front();
    ++visited;
    auto it = null_children.find(e);
    if (it != null_children.end()) {
      for (TermId to : it->second) {
        if (--indeg[to] == 0) queue.push_back(to);
      }
    }
  }
  report.nulls_acyclic = visited == nulls.size();
  if (!report.nulls_acyclic && report.violation.empty()) {
    report.violation = "C_non contains a directed cycle";
  }

  // Condition (Def. 11, bullet 2): P(e) is a directed clique under P.
  report.predecessors_form_clique = true;
  for (TermId e : nulls) {
    std::unordered_set<TermId> pe = PSet(c, e);
    for (TermId d : pe) {
      std::unordered_set<TermId> pd = PSet(c, d);
      for (TermId d2 : pe) {
        if (d == d2) continue;
        if (!pd.count(d2) && !PSet(c, d2).count(d)) {
          report.predecessors_form_clique = false;
          if (report.violation.empty()) {
            report.violation = "P(" + sig.ConstantName(e) +
                               ") is not a directed clique: " +
                               sig.ConstantName(d) + " vs " +
                               sig.ConstantName(d2);
          }
        }
      }
    }
  }

  report.is_vtdag = report.nulls_acyclic && report.unique_predecessor &&
                    report.predecessors_form_clique;
  return report;
}

}  // namespace bddfc
