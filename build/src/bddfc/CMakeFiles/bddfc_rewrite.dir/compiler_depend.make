# Empty compiler generated dependencies file for bddfc_rewrite.
# This may be replaced when dependencies are built.
