file(REMOVE_RECURSE
  "libbddfc_rewrite.a"
)
