// Theories: finite sets of existential TGDs and plain datalog rules (§1.1).

#ifndef BDDFC_CORE_THEORY_H_
#define BDDFC_CORE_THEORY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/core/rule.h"
#include "bddfc/core/signature.h"

namespace bddfc {

/// A finite set of rules over a shared signature.
class Theory {
 public:
  explicit Theory(SignaturePtr sig) : sig_(std::move(sig)) {}

  const SignaturePtr& signature_ptr() const { return sig_; }
  const Signature& sig() const { return *sig_; }
  Signature& mutable_sig() { return *sig_; }

  /// Appends a rule (validated against the signature).
  Status AddRule(Rule rule);

  const std::vector<Rule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Predicates occurring in the head of at least one existential TGD.
  /// Under normalization (♠5) these are exactly the tuple generating
  /// predicates (TGPs).
  std::unordered_set<PredId> TgpCandidates() const;

  /// True iff the theory satisfies the (♠5) normal form: every existential
  /// TGD head is a single binary atom R(y, z) with y in the body and z the
  /// unique existential variable, and no TGP occurs in a datalog rule head.
  bool IsSpade5Normal() const;

  /// True iff every rule is single-head.
  bool IsSingleHead() const;

  /// Maximum number of distinct variables in any rule body.
  int MaxBodyVariables() const;

  /// The largest variable index used anywhere (for fresh renaming); 0 when
  /// no variables occur.
  int32_t MaxVariableIndex() const;

  std::string ToString() const;

 private:
  SignaturePtr sig_;
  std::vector<Rule> rules_;
};

}  // namespace bddfc

#endif  // BDDFC_CORE_THEORY_H_
