#include "bddfc/rewrite/rewriter.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_set>

#include "bddfc/chase/chase.h"
#include "bddfc/core/substitution.h"
#include "bddfc/eval/containment.h"
#include "bddfc/eval/match.h"

namespace bddfc {

namespace {

/// Splits multi-head datalog rules into single-head ones (semantically
/// equivalent) so the rewriting only sees single-head rules. Multi-head
/// existential TGDs are reported unsupported.
Result<std::vector<Rule>> PrepareRules(const Theory& theory) {
  std::vector<Rule> out;
  for (const Rule& r : theory.rules()) {
    if (r.head.size() == 1) {
      out.push_back(r);
      continue;
    }
    if (r.IsExistential()) {
      return Status::FailedPrecondition(
          "rewriting requires single-head existential TGDs; rule '" +
          r.label + "' is a multi-head TGD (apply the §5.3 reduction first)");
    }
    for (const Atom& h : r.head) {
      Rule single;
      single.body = r.body;
      single.head.push_back(h);
      single.label = r.label;
      out.push_back(std::move(single));
    }
  }
  return out;
}

/// Applies a substitution to a whole query.
ConjunctiveQuery ApplySubst(const Substitution& s, const ConjunctiveQuery& q) {
  ConjunctiveQuery out;
  out.atoms = s.Apply(q.atoms);
  out.answer_vars.reserve(q.answer_vars.size());
  for (TermId v : q.answer_vars) out.answer_vars.push_back(s.Resolve(v));
  return out;
}

/// One backward-resolution step: resolve q.atoms[i] against `rule`
/// (renamed apart). Returns the rewritten query, or nullopt when the
/// applicability conditions fail.
std::optional<ConjunctiveQuery> ResolveStep(const ConjunctiveQuery& q,
                                            size_t i, const Rule& rule) {
  Substitution mgu;
  if (!UnifyAtoms(q.atoms[i], rule.head[0], &mgu)) return std::nullopt;

  // Applicability of existential variables (Cali–Gottlob–Pieris): each
  // existential variable z must resolve to a variable that (a) is not an
  // answer variable, (b) occurs in no other atom of q, and (c) is not
  // identified with any frontier variable or other existential variable.
  std::vector<TermId> existentials = rule.ExistentialVariables();
  std::vector<TermId> frontier = rule.FrontierVariables();
  for (size_t zi = 0; zi < existentials.size(); ++zi) {
    TermId t = mgu.Resolve(existentials[zi]);
    if (!IsVar(t)) return std::nullopt;  // unified with a constant
    for (TermId av : q.answer_vars) {
      if (mgu.Resolve(av) == t) return std::nullopt;
    }
    for (size_t j = 0; j < q.atoms.size(); ++j) {
      if (j == i) continue;
      for (TermId arg : q.atoms[j].args) {
        if (IsVar(arg) && mgu.Resolve(arg) == t) return std::nullopt;
      }
    }
    for (TermId f : frontier) {
      if (mgu.Resolve(f) == t) return std::nullopt;
    }
    for (size_t zj = zi + 1; zj < existentials.size(); ++zj) {
      if (mgu.Resolve(existentials[zj]) == t) return std::nullopt;
    }
  }

  ConjunctiveQuery rest;
  rest.answer_vars = q.answer_vars;
  for (size_t j = 0; j < q.atoms.size(); ++j) {
    if (j != i) rest.atoms.push_back(q.atoms[j]);
  }
  for (const Atom& b : rule.body) rest.atoms.push_back(b);
  return ApplySubst(mgu, rest);
}

/// Factorization step: unify two same-predicate atoms that share a
/// variable. The result is contained in q (sound to add) and can unblock
/// resolution steps whose shared-variable condition failed.
void Factorizations(const ConjunctiveQuery& q,
                    std::vector<ConjunctiveQuery>* out) {
  for (size_t i = 0; i < q.atoms.size(); ++i) {
    for (size_t j = i + 1; j < q.atoms.size(); ++j) {
      if (q.atoms[i].pred != q.atoms[j].pred) continue;
      bool share = false;
      for (TermId a : q.atoms[i].args) {
        if (IsVar(a) &&
            std::find(q.atoms[j].args.begin(), q.atoms[j].args.end(), a) !=
                q.atoms[j].args.end()) {
          share = true;
          break;
        }
      }
      if (!share) continue;
      Substitution mgu;
      if (!UnifyAtoms(q.atoms[i], q.atoms[j], &mgu)) continue;
      if (mgu.empty()) continue;  // identical atoms: nothing to do
      out->push_back(ApplySubst(mgu, q));
    }
  }
}

}  // namespace

RewriteResult RewriteQuery(const Theory& theory, const ConjunctiveQuery& query,
                           const RewriteOptions& options) {
  RewriteResult result;
  Result<std::vector<Rule>> prepared = PrepareRules(theory);
  if (!prepared.ok()) {
    result.status = prepared.status();
    return result;
  }
  const std::vector<Rule>& rules = prepared.value();
  const Signature& sig = theory.sig();

  ConjunctiveQuery start = query.Normalized();
  std::unordered_set<std::string> seen = {start.NormalizedKey(sig)};
  std::vector<ConjunctiveQuery> all = {start};
  std::vector<ConjunctiveQuery> frontier = {start};
  result.queries_generated = 1;
  bool budget_hit = false;
  std::string budget_reason;

  for (size_t depth = 1; depth <= options.max_depth && !frontier.empty();
       ++depth) {
    std::vector<ConjunctiveQuery> next;
    for (const ConjunctiveQuery& q : frontier) {
      // Rename rule variables apart from q's.
      int32_t next_var = 0;
      for (TermId v : q.Variables()) {
        next_var = std::max(next_var, DecodeVar(v) + 1);
      }

      std::vector<ConjunctiveQuery> candidates;
      for (const Rule& rule : rules) {
        Rule renamed = rule.RenamedApart(&next_var);
        for (size_t i = 0; i < q.atoms.size(); ++i) {
          std::optional<ConjunctiveQuery> step = ResolveStep(q, i, renamed);
          if (step.has_value()) candidates.push_back(std::move(*step));
        }
      }
      Factorizations(q, &candidates);

      for (ConjunctiveQuery& c : candidates) {
        ConjunctiveQuery n = c.Normalized();
        if (options.max_atoms_per_query != 0 &&
            n.atoms.size() > options.max_atoms_per_query) {
          budget_hit = true;
          budget_reason = "max_atoms_per_query";
          continue;
        }
        std::string key = n.NormalizedKey(sig);
        if (!seen.insert(key).second) continue;
        ++result.queries_generated;
        all.push_back(n);
        next.push_back(std::move(n));
        if (result.queries_generated >= options.max_queries) {
          budget_hit = true;
          budget_reason = "max_queries";
          break;
        }
      }
      if (budget_hit && budget_reason == "max_queries") break;
    }
    if (budget_hit && budget_reason == "max_queries") {
      result.depth_reached = depth;
      break;
    }
    if (next.empty()) {
      result.depth_reached = depth - 1;
      frontier.clear();
      break;
    }
    result.depth_reached = depth;
    frontier = std::move(next);
  }

  if (!frontier.empty() || budget_hit) {
    result.status = Status::Unknown(
        "rewriting did not saturate (budget: " +
        (budget_reason.empty() ? std::string("max_depth") : budget_reason) +
        ")");
  }

  // Pairwise subsumption is quadratic; only minimize complete, reasonably
  // sized rewritings (an incomplete rewriting is diagnostic output anyway).
  const bool minimize =
      options.minimize && result.status.ok() && all.size() <= 1000;
  result.rewriting = minimize ? MinimizeUcq(all) : all;
  for (const ConjunctiveQuery& q : result.rewriting) {
    result.max_variables = std::max(result.max_variables, q.NumVariables());
  }
  return result;
}

KappaResult ComputeKappa(const Theory& theory, const RewriteOptions& options) {
  KappaResult out;
  for (const Rule& r : theory.rules()) {
    ConjunctiveQuery body;
    body.atoms = r.body;
    // Free variables: the frontier for TGDs (the paper's Ψ(x̄, y)), the head
    // variables for datalog rules — they must survive the rewriting.
    body.answer_vars =
        r.IsExistential() ? r.FrontierVariables() : r.HeadVariables();
    RewriteResult rr = RewriteQuery(theory, body, options);
    if (!rr.status.ok()) {
      out.status = rr.status;
    }
    out.kappa = std::max(out.kappa, rr.max_variables);
  }
  return out;
}

BddProbeResult ProbeBdd(const Theory& theory, const RewriteOptions& options) {
  BddProbeResult out;
  auto account = [&](const RewriteResult& rr) {
    if (!rr.status.ok()) out.status = rr.status;
    out.max_depth_seen = std::max(out.max_depth_seen, rr.depth_reached);
    out.total_disjuncts += rr.rewriting.size();
    out.kappa = std::max(out.kappa, rr.max_variables);
  };

  // Probe 1: every rule body.
  for (const Rule& r : theory.rules()) {
    ConjunctiveQuery body;
    body.atoms = r.body;
    body.answer_vars =
        r.IsExistential() ? r.FrontierVariables() : r.HeadVariables();
    account(RewriteQuery(theory, body, options));
    if (!out.status.ok()) break;
  }
  // Probe 2: one fresh atom per predicate.
  if (out.status.ok()) {
    for (PredId p = 0; p < theory.sig().num_predicates(); ++p) {
      if (theory.sig().IsColor(p)) continue;
      std::vector<TermId> args;
      for (int i = 0; i < theory.sig().arity(p); ++i) {
        args.push_back(MakeVar(i));
      }
      ConjunctiveQuery q;
      q.atoms.push_back(Atom(p, args));
      account(RewriteQuery(theory, q, options));
      if (!out.status.ok()) break;
    }
  }
  out.certified = out.status.ok();
  return out;
}

int DerivationDepth(const Theory& theory, const Structure& instance,
                    const ConjunctiveQuery& q, size_t max_rounds) {
  ChaseOptions copts;
  copts.max_rounds = max_rounds;
  ChaseResult chase = RunChase(theory, instance, copts);

  // Group facts by birth round, replay them into a prefix structure and
  // test the query after each round.
  std::map<int, std::vector<std::pair<PredId, std::vector<TermId>>>> by_round;
  chase.structure.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    auto it = chase.fact_round.find(FactHandle{
        p, static_cast<uint32_t>(&row - chase.structure.Rows(p).data())});
    int round = it == chase.fact_round.end() ? 0 : it->second;
    by_round[round].emplace_back(p, row);
  });

  Structure prefix(chase.structure.signature_ptr());
  int last_round = -1;
  for (auto& [round, facts] : by_round) {
    for (auto& [p, row] : facts) prefix.AddFact(p, row);
    last_round = round;
    if (Satisfies(prefix, q)) return round;
  }
  (void)last_round;
  return -1;
}

}  // namespace bddfc
