#include "bddfc/testing/oracles.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bddfc/chase/supervisor.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/eval/answers.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/parser/parser.h"
#include "bddfc/parser/printer.h"
#include "bddfc/serve/server.h"

namespace bddfc {

namespace {

template <typename T>
std::string Mismatch(const char* what, const T& a, const T& b) {
  std::ostringstream os;
  os << what << " diverged: " << a << " vs " << b;
  return os.str();
}

/// Per-predicate multiset of fact birth rounds — row-order and null-name
/// independent, so it compares chase runs without an isomorphism search.
std::map<PredId, std::vector<int>> BirthRoundsByPredicate(
    const ChaseResult& r) {
  std::map<PredId, std::vector<int>> out;
  for (const auto& [handle, round] : r.fact_round) {
    out[handle.pred].push_back(round);
  }
  for (auto& [pred, rounds] : out) {
    (void)pred;
    std::sort(rounds.begin(), rounds.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// chase-agreement: the delta and parallel round loops (restricted and
// oblivious, compiled plans on and off, every thread count) must produce
// chases identical to the naive baseline; fixpoints must satisfy the
// theory.
// ---------------------------------------------------------------------------

/// Engine configurations under test against the kNaive baseline: the delta
/// loop plus the parallel engine at each thread count of interest
/// (threads=1 exercises the serial-route fallback), each with compiled
/// plans on and off and the vectorized round sink on and off.
struct EngineConfig {
  ChaseEngine engine;
  size_t threads;
  bool plans;
  bool vsink = true;
};

std::vector<EngineConfig> DeltaFamilyConfigs() {
  std::vector<EngineConfig> out;
  for (bool vsink : {true, false}) {
    for (bool plans : {true, false}) {
      out.push_back({ChaseEngine::kDelta, 0, plans, vsink});
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        out.push_back({ChaseEngine::kParallel, threads, plans, vsink});
      }
    }
  }
  return out;
}

std::string ConfigLabel(const EngineConfig& ec) {
  std::string s = ec.engine == ChaseEngine::kDelta
                      ? std::string("delta")
                      : "parallel t" + std::to_string(ec.threads);
  s += ec.plans ? " plans" : " interp";
  s += ec.vsink ? " vsink" : " hashsink";
  return s;
}

class ChaseAgreementOracle : public Oracle {
 public:
  std::string_view name() const override { return "chase-agreement"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    for (bool oblivious : {false, true}) {
      ChaseOptions opts;
      opts.max_rounds = config.max_rounds;
      opts.max_facts = config.max_facts;
      opts.oblivious = oblivious;

      opts.engine = ChaseEngine::kNaive;
      opts.fault = ChaseFault::kNone;
      opts.paranoia = ParanoiaLevel::kOff;
      ChaseResult naive = RunChase(s.theory, s.instance, opts);

      // The injected fault (the fuzzer's self-test) rides on the engines
      // under test, never on the baseline. (kNaive keeps the hash sink, so
      // the baseline is also immune to kSinkDropDup by construction.)
      // Paranoia likewise guards only the engines under test: a corruption
      // its checks catch becomes a kInternal status divergence here.
      for (const EngineConfig& ec : DeltaFamilyConfigs()) {
        opts.engine = ec.engine;
        opts.fault = config.chase_fault;
        opts.paranoia = config.paranoia;
        opts.threads = ec.threads;
        opts.compiled_plans = ec.plans;
        opts.vectorized_sink = ec.vsink;
        ChaseResult run = RunChase(s.theory, s.instance, opts);

        std::string mode = std::string(oblivious ? "[oblivious " :
                                                   "[restricted ") +
                           ConfigLabel(ec) + "] ";
        if (run.status.code() != naive.status.code()) {
          return OracleOutcome::Fail(mode + Mismatch("status",
                                                     run.status.ToString(),
                                                     naive.status.ToString()));
        }
        if (run.structure.NumFacts() != naive.structure.NumFacts()) {
          return OracleOutcome::Fail(
              mode + Mismatch("facts", run.structure.NumFacts(),
                              naive.structure.NumFacts()));
        }
        if (run.nulls_created != naive.nulls_created) {
          return OracleOutcome::Fail(
              mode + Mismatch("nulls", run.nulls_created,
                              naive.nulls_created));
        }
        if (run.rounds_run != naive.rounds_run) {
          return OracleOutcome::Fail(
              mode + Mismatch("rounds", run.rounds_run, naive.rounds_run));
        }
        if (run.fixpoint_reached != naive.fixpoint_reached) {
          return OracleOutcome::Fail(mode + Mismatch("fixpoint",
                                                     run.fixpoint_reached,
                                                     naive.fixpoint_reached));
        }
        if (run.facts_per_round != naive.facts_per_round) {
          return OracleOutcome::Fail(mode +
                                     std::string("facts_per_round diverged"));
        }
        if (BirthRoundsByPredicate(run) != BirthRoundsByPredicate(naive)) {
          return OracleOutcome::Fail(
              mode + std::string("per-predicate birth rounds diverged"));
        }
        // A reached fixpoint must actually be a model of the theory.
        if (!oblivious && run.fixpoint_reached) {
          for (const ChaseResult* r : {&run, &naive}) {
            if (auto v = CheckModel(r->structure, s.theory)) {
              return OracleOutcome::Fail(
                  mode + std::string("fixpoint is not a model: ") +
                  v->ToString(*s.sig));
            }
          }
        }
      }
    }
    return OracleOutcome::Pass();
  }
};

// ---------------------------------------------------------------------------
// parser-roundtrip: Print ∘ Parse ∘ Print must be a fixpoint and preserve
// the program's shape.
// ---------------------------------------------------------------------------

class ParserRoundTripOracle : public Oracle {
 public:
  std::string_view name() const override { return "parser-roundtrip"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    (void)config;
    std::string text1 = ScenarioToText(s);
    Result<Scenario> reparsed = ParseScenario(text1);
    if (!reparsed.ok()) {
      return OracleOutcome::Fail("printed program does not reparse: " +
                                 reparsed.status().ToString() +
                                 "\n--- program ---\n" + text1);
    }
    const Scenario& r = reparsed.value();
    if (r.theory.size() != s.theory.size()) {
      return OracleOutcome::Fail(
          Mismatch("rule count", s.theory.size(), r.theory.size()));
    }
    if (r.instance.NumFacts() != s.instance.NumFacts()) {
      return OracleOutcome::Fail(Mismatch("fact count",
                                          s.instance.NumFacts(),
                                          r.instance.NumFacts()));
    }
    if (r.queries.size() != s.queries.size()) {
      return OracleOutcome::Fail(
          Mismatch("query count", s.queries.size(), r.queries.size()));
    }
    std::string text2 = ScenarioToText(r);
    if (text1 != text2) {
      size_t at = 0;
      while (at < text1.size() && at < text2.size() && text1[at] == text2[at]) {
        ++at;
      }
      return OracleOutcome::Fail(
          "print-parse-print is not a fixpoint (first divergence at byte " +
          std::to_string(at) + ")\n--- first ---\n" + text1 +
          "--- second ---\n" + text2);
    }
    return OracleOutcome::Pass();
  }
};

// ---------------------------------------------------------------------------
// rewrite-vs-chase: Def. 2 — on a theory whose chase terminates, a
// saturated rewriting Φ′ must satisfy Chase(D,T) ⊨ Φ ⇔ D ⊨ Φ′, and the
// two certain-answer routes must return the same tuples.
// ---------------------------------------------------------------------------

class RewriteVsChaseOracle : public Oracle {
 public:
  std::string_view name() const override { return "rewrite-vs-chase"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    if (s.queries.empty()) return OracleOutcome::Skip("no queries");
    if (!IsWeaklyAcyclic(s.theory)) {
      return OracleOutcome::Skip("not weakly acyclic");
    }
    ChaseOptions chase_opts;
    chase_opts.max_rounds = config.max_rounds;
    chase_opts.max_facts = config.max_facts;
    ChaseResult chase = RunChase(s.theory, s.instance, chase_opts);
    if (!chase.fixpoint_reached) {
      return OracleOutcome::Skip("chase budget tripped");
    }
    RewriteOptions rewrite_opts = config.rewrite;
    rewrite_opts.threads = 1;
    size_t checked = 0;
    for (size_t qi = 0; qi < s.queries.size(); ++qi) {
      const ConjunctiveQuery& q = s.queries[qi];
      RewriteResult rw = RewriteQuery(s.theory, q, rewrite_opts);
      if (!rw.status.ok()) continue;  // budgeted out: sound but incomplete
      bool chase_says = Satisfies(chase.structure, q);
      bool rewrite_says = SatisfiesUcq(s.instance, rw.rewriting);
      ++checked;
      if (chase_says != rewrite_says) {
        return OracleOutcome::Fail(
            "query " + std::to_string(qi) + " (" + q.ToString(*s.sig) +
            "): " + Mismatch("Boolean certain answer", chase_says,
                             rewrite_says));
      }
      // Non-Boolean variant: free the first variable and compare the
      // certain-answer tuple sets of the two routes.
      std::vector<TermId> vars = q.Variables();
      if (vars.empty()) continue;
      ConjunctiveQuery open = q;
      open.answer_vars = {vars[0]};
      CertainAnswersResult via_chase =
          CertainAnswers(s.theory, s.instance, open, chase_opts);
      CertainAnswersResult via_rewriting =
          CertainAnswersViaRewriting(s.theory, s.instance, open, rewrite_opts);
      if (!via_chase.complete || !via_rewriting.complete) continue;
      if (via_chase.answers != via_rewriting.answers) {
        return OracleOutcome::Fail(
            "query " + std::to_string(qi) + " (" + open.ToString(*s.sig) +
            "): " + Mismatch("certain-answer count",
                             via_chase.answers.size(),
                             via_rewriting.answers.size()));
      }
    }
    if (checked == 0) return OracleOutcome::Skip("every rewriting budgeted out");
    return OracleOutcome::Pass();
  }
};

// ---------------------------------------------------------------------------
// rewrite-determinism: ProbeBdd/ComputeKappa must return byte-identical
// aggregates for any thread count (including budget-tripped Unknown runs —
// the cutoffs are deterministic too).
// ---------------------------------------------------------------------------

class RewriteDeterminismOracle : public Oracle {
 public:
  std::string_view name() const override { return "rewrite-determinism"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    RewriteOptions base = config.rewrite;
    base.threads = 1;
    BddProbeResult serial = ProbeBdd(s.theory, base);
    KappaResult serial_kappa = ComputeKappa(s.theory, base);
    for (size_t threads : config.determinism_threads) {
      RewriteOptions opts = base;
      opts.threads = threads;
      BddProbeResult probe = ProbeBdd(s.theory, opts);
      std::string t = "threads=" + std::to_string(threads) + ": ";
      if (probe.status.code() != serial.status.code()) {
        return OracleOutcome::Fail(t + Mismatch("probe status",
                                                serial.status.ToString(),
                                                probe.status.ToString()));
      }
      if (probe.certified != serial.certified) {
        return OracleOutcome::Fail(
            t + Mismatch("certified", serial.certified, probe.certified));
      }
      if (probe.kappa != serial.kappa) {
        return OracleOutcome::Fail(
            t + Mismatch("kappa", serial.kappa, probe.kappa));
      }
      if (probe.max_depth_seen != serial.max_depth_seen) {
        return OracleOutcome::Fail(t + Mismatch("max_depth_seen",
                                                serial.max_depth_seen,
                                                probe.max_depth_seen));
      }
      if (probe.total_disjuncts != serial.total_disjuncts) {
        return OracleOutcome::Fail(t + Mismatch("total_disjuncts",
                                                serial.total_disjuncts,
                                                probe.total_disjuncts));
      }
      if (probe.queries_generated != serial.queries_generated) {
        return OracleOutcome::Fail(t + Mismatch("queries_generated",
                                                serial.queries_generated,
                                                probe.queries_generated));
      }
      if (probe.stats.hom_checks != serial.stats.hom_checks ||
          probe.stats.TotalCandidates() != serial.stats.TotalCandidates()) {
        return OracleOutcome::Fail(t + "aggregated RewriteStats diverged");
      }
      KappaResult kappa = ComputeKappa(s.theory, opts);
      if (kappa.kappa != serial_kappa.kappa ||
          kappa.status.code() != serial_kappa.status.code()) {
        return OracleOutcome::Fail(
            t + Mismatch("ComputeKappa", serial_kappa.kappa, kappa.kappa));
      }
    }
    return OracleOutcome::Pass();
  }
};

// ---------------------------------------------------------------------------
// pipeline-certify: when the chase refutes Q, the Theorem-2 pipeline's
// counter-model must *independently* re-verify M ⊇ D, M ⊨ T₀, M ⊭ Q —
// not just pass the pipeline's own certification.
// ---------------------------------------------------------------------------

class PipelineCertifyOracle : public Oracle {
 public:
  std::string_view name() const override { return "pipeline-certify"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    if (s.queries.empty()) return OracleOutcome::Skip("no queries");
    if (!IsBinaryTheory(s.theory) || !s.theory.IsSingleHead()) {
      return OracleOutcome::Skip("not binary single-head");
    }
    if (s.theory.size() > 10 || s.instance.NumFacts() > 30) {
      return OracleOutcome::Skip("scenario too large for the pipeline budget");
    }
    ChaseOptions chase_opts;
    chase_opts.max_rounds = config.max_rounds;
    chase_opts.max_facts = config.max_facts;
    ChaseResult chase = RunChase(s.theory, s.instance, chase_opts);
    if (!chase.fixpoint_reached) {
      return OracleOutcome::Skip("chase budget tripped");
    }
    size_t target = s.queries.size();
    for (size_t qi = 0; qi < s.queries.size(); ++qi) {
      if (!Satisfies(chase.structure, s.queries[qi])) {
        target = qi;
        break;
      }
    }
    if (target == s.queries.size()) {
      return OracleOutcome::Skip("every query certain — nothing to refute");
    }
    // Clone onto a fresh signature: the pipeline interns hidden/normalized/
    // color predicates and must not pollute the scenario for later oracles.
    Result<Scenario> cloned = CloneScenario(s);
    if (!cloned.ok()) {
      return OracleOutcome::Fail("clone via print+parse failed: " +
                                 cloned.status().ToString());
    }
    const Scenario& c = cloned.value();
    const ConjunctiveQuery& q = c.queries[target];
    PipelineOptions opts;
    opts.initial_chase_depth = 6;
    opts.max_chase_depth = 48;
    opts.max_chase_facts = config.max_facts;
    opts.max_n = 3;
    opts.max_m = 3;
    opts.rewrite_options = config.rewrite;
    opts.rewrite_options.threads = 1;
    opts.max_saturation_rounds = 128;
    FiniteModelResult result =
        ConstructFiniteCounterModel(c.theory, c.instance, q, opts);
    if (result.query_certainly_true) {
      // The terminated chase refuted Q; "certainly true" is a contradiction.
      // (The reductions also answer FailedPrecondition for out-of-scope
      // theories, so only this flag is the contradiction signal.)
      return OracleOutcome::Fail(
          "pipeline claims the query is certainly true, but the chase "
          "fixpoint refutes it (query " +
          std::to_string(target) + ": " + q.ToString(*c.sig) + ")");
    }
    if (!result.status.ok()) {
      return OracleOutcome::Skip("pipeline out of scope or budgeted out: " +
                                 result.status.ToString());
    }
    if (!result.model.ContainsAllFactsOf(c.instance)) {
      return OracleOutcome::Fail("certified model does not contain D");
    }
    if (auto v = CheckModel(result.model, c.theory)) {
      return OracleOutcome::Fail("certified model violates T0: " +
                                 v->ToString(*c.sig));
    }
    if (Satisfies(result.model, q)) {
      return OracleOutcome::Fail("certified model satisfies the query " +
                                 q.ToString(*c.sig));
    }
    return OracleOutcome::Pass();
  }
};

// ---------------------------------------------------------------------------
// governor-prefix: a chase interrupted by the governor (deadline / memory /
// cancel, injected deterministically after K cooperative checks) must be
// prefix-consistent with the uninterrupted run — ResourceExhausted with the
// right ResourceKind, the same facts per completed round, the same
// per-predicate birth rounds on that prefix, and no torn half-round.
// ---------------------------------------------------------------------------

class GovernorPrefixOracle : public Oracle {
 public:
  std::string_view name() const override { return "governor-prefix"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    if (config.inject_fault == InjectedFault::kNone) {
      return OracleOutcome::Skip("no fault injected (--inject-fault)");
    }
    ResourceKind expected = ResourceKind::kNone;
    switch (config.inject_fault) {
      case InjectedFault::kDeadline: expected = ResourceKind::kDeadline; break;
      case InjectedFault::kOom:      expected = ResourceKind::kMemory;   break;
      case InjectedFault::kCancel:   expected = ResourceKind::kCancelled; break;
      case InjectedFault::kNone:     break;
    }

    ChaseOptions base;
    base.max_rounds = config.max_rounds;
    base.max_facts = config.max_facts;
    ChaseResult baseline = RunChase(s.theory, s.instance, base);

    // Plans on/off changes where cooperative checks land (plan blocks vs
    // interpreter strides), so the prefix contract is probed for both; the
    // sink axis rides along because a cancellation that fires mid-round
    // must discard the vectorized sink's buffered (incomplete) round too.
    bool tripped_any = false;
    for (const EngineConfig& ec :
         {EngineConfig{ChaseEngine::kDelta, 0, true, true},
          EngineConfig{ChaseEngine::kDelta, 0, true, false},
          EngineConfig{ChaseEngine::kDelta, 0, false, true},
          EngineConfig{ChaseEngine::kDelta, 0, false, false},
          EngineConfig{ChaseEngine::kParallel, 4, true, true},
          EngineConfig{ChaseEngine::kParallel, 4, true, false},
          EngineConfig{ChaseEngine::kParallel, 4, false, true},
          EngineConfig{ChaseEngine::kParallel, 4, false, false}}) {
    for (size_t after : {size_t{1}, size_t{3}, size_t{7}}) {
      ExecutionContext ctx;
      ctx.InjectFaultAfterChecks(config.inject_fault, after);
      ChaseOptions opts = base;
      opts.context = &ctx;
      opts.engine = ec.engine;
      opts.threads = ec.threads;
      opts.compiled_plans = ec.plans;
      opts.vectorized_sink = ec.vsink;
      // kTornExhaust rides along so the torn-prefix path has a detector.
      opts.fault = config.chase_fault;
      ChaseResult run = RunChase(s.theory, s.instance, opts);
      std::string t = "[" + ConfigLabel(ec) + "] after " +
                      std::to_string(after) + " checks: ";

      if (run.status.ok() ||
          run.status.code() != StatusCode::kResourceExhausted ||
          run.report.exhausted != expected) {
        // The chase may legitimately finish (or trip a count budget) before
        // the injected fault fires; only a wrong *governed* kind is a bug.
        bool governed_kind =
            run.report.exhausted == ResourceKind::kDeadline ||
            run.report.exhausted == ResourceKind::kMemory ||
            run.report.exhausted == ResourceKind::kCancelled;
        if (governed_kind && run.report.exhausted != expected) {
          return OracleOutcome::Fail(
              t + Mismatch("exhausted kind", ResourceKindName(expected),
                           ResourceKindName(run.report.exhausted)));
        }
        continue;
      }
      tripped_any = true;

      if (run.rounds_run > baseline.rounds_run) {
        return OracleOutcome::Fail(
            t + Mismatch("rounds_run beyond baseline", baseline.rounds_run,
                         run.rounds_run));
      }
      if (run.facts_per_round.size() > baseline.facts_per_round.size()) {
        return OracleOutcome::Fail(t + "more facts_per_round entries than "
                                       "the uninterrupted run");
      }
      for (size_t i = 0; i < run.facts_per_round.size(); ++i) {
        if (run.facts_per_round[i] != baseline.facts_per_round[i]) {
          return OracleOutcome::Fail(
              t + "facts_per_round[" + std::to_string(i) + "] " +
              Mismatch("is not a baseline prefix", baseline.facts_per_round[i],
                       run.facts_per_round[i]));
        }
      }
      // No torn half-round: every fact belongs to a completed round.
      if (!run.facts_per_round.empty() &&
          run.structure.NumFacts() != run.facts_per_round.back()) {
        return OracleOutcome::Fail(
            t + Mismatch("torn structure: facts vs last complete round",
                         run.structure.NumFacts(), run.facts_per_round.back()));
      }
      // Per-predicate birth rounds on the completed prefix must agree.
      auto clip = [&](const ChaseResult& r) {
        std::map<PredId, std::vector<int>> out;
        for (auto& [pred, rounds] : BirthRoundsByPredicate(r)) {
          for (int round : rounds) {
            if (round <= static_cast<int>(run.rounds_run)) {
              out[pred].push_back(round);
            }
          }
        }
        return out;
      };
      if (clip(run) != clip(baseline)) {
        return OracleOutcome::Fail(
            t + "per-predicate birth rounds diverge on the completed prefix");
      }
    }
    }
    if (!tripped_any) {
      return OracleOutcome::Skip("chase finished before any injected fault");
    }
    return OracleOutcome::Pass();
  }
};

// ---------------------------------------------------------------------------
// chaos-recovery: a supervised chase under a random bounded fault plan
// must end byte-identical — raw TermIds, nulls, provenance, per-round
// counts — to the fault-free run. Recovery is mandatory, not best-effort.
// ---------------------------------------------------------------------------

/// Byte-exact dump of everything the recovery contract covers. Mirrors
/// chase_ab_test's ExactDump: raw TermIds (not names), so it only compares
/// runs whose signatures interned identically — which the per-run
/// CloneScenario below guarantees.
std::string ExactChaseDump(const ChaseResult& r) {
  std::string s;
  s += "status=" + r.status.ToString() + " fixpoint=";
  s += r.fixpoint_reached ? '1' : '0';
  s += " rounds=" + std::to_string(r.rounds_run);
  s += " nulls=" + std::to_string(r.nulls_created);
  s += " bindings=" + std::to_string(r.stats.match.bindings_tried);
  s += " tdedup=" + std::to_string(r.stats.triggers_deduped);
  s += " ddedup=" + std::to_string(r.stats.datalog_deduped);
  s += "\nfacts_per_round:";
  for (size_t n : r.facts_per_round) s += " " + std::to_string(n);
  s += "\n";
  for (PredId p = 0; p < r.structure.NumStoredPredicates(); ++p) {
    s += "pred " + std::to_string(p) + ":";
    for (const auto& row : r.structure.Rows(p)) {
      s += " (";
      for (TermId t : row) s += std::to_string(t) + ",";
      s += ")";
    }
    s += "\n";
  }
  std::map<TermId, NullProvenance> prov(r.null_provenance.begin(),
                                        r.null_provenance.end());
  for (const auto& [null_id, np] : prov) {
    s += "null " + std::to_string(null_id) + ": r" +
         std::to_string(np.birth_round) + " rule" +
         std::to_string(np.rule_index) + " head p" +
         std::to_string(np.head_atom.pred) + "(";
    for (TermId t : np.head_atom.args) s += std::to_string(t) + ",";
    s += ")\n";
  }
  return s;
}

class ChaosRecoveryOracle : public Oracle {
 public:
  std::string_view name() const override { return "chaos-recovery"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    if (config.chaos_plans == 0) {
      return OracleOutcome::Skip("chaos disabled (--chaos)");
    }
    // The richest configuration — every degradation rung available.
    ChaseOptions opts;
    opts.max_rounds = config.max_rounds;
    opts.max_facts = config.max_facts;
    opts.engine = ChaseEngine::kParallel;
    opts.threads = 4;
    opts.paranoia = config.paranoia;

    // Every run (reference and chaos) chases its own print+parse clone:
    // cloning interns identically, so invented nulls land on the same raw
    // TermIds in every run and the dumps compare as plain bytes.
    auto run_plan = [&](const FaultPlan* plan, std::string* dump) -> Status {
      Result<Scenario> c = CloneScenario(s);
      if (!c.ok()) return c.status();
      FaultRegistry reg;
      ExecutionContext parent;
      if (plan != nullptr) {
        reg.ArmPlan(*plan);
        parent.SetFaultRegistry(&reg);
      }
      SupervisorOptions sup;
      sup.context = &parent;
      SupervisedChase out =
          RunChaseSupervised(c.value().theory, c.value().instance, opts, sup);
      *dump = ExactChaseDump(out.result);
      return Status::OK();
    };

    std::string ref;
    if (Status st = run_plan(nullptr, &ref); !st.ok()) {
      return OracleOutcome::Skip("clone failed: " + st.ToString());
    }

    for (size_t k = 0; k < config.chaos_plans; ++k) {
      const uint64_t plan_seed =
          (config.chaos_seed ^ s.seed) + 0x9e3779b97f4a7c15ull * (k + 1);
      FaultPlan plan = RandomFaultPlan(plan_seed);
      std::string dump;
      if (Status st = run_plan(&plan, &dump); !st.ok()) {
        return OracleOutcome::Skip("clone failed: " + st.ToString());
      }
      if (dump == ref) continue;

      // ddmin the plan (greedy single-spec drops to a fixpoint) so the
      // failure names the smallest sub-plan that still breaks recovery.
      FaultPlan min = plan;
      bool shrunk = true;
      while (shrunk && min.faults.size() > 1) {
        shrunk = false;
        for (size_t i = 0; i < min.faults.size(); ++i) {
          FaultPlan cand;
          for (size_t j = 0; j < min.faults.size(); ++j) {
            if (j != i) cand.faults.push_back(min.faults[j]);
          }
          std::string d;
          if (!run_plan(&cand, &d).ok()) continue;
          if (d != ref) {
            min = std::move(cand);
            shrunk = true;
            break;
          }
        }
      }
      size_t at = 0;
      while (at < dump.size() && at < ref.size() && dump[at] == ref[at]) ++at;
      return OracleOutcome::Fail(
          "chaos plan (seed " + std::to_string(plan_seed) +
          ") did not recover byte-identically (first divergence at byte " +
          std::to_string(at) + ")\n--- minimized plan ---\n" + min.ToString() +
          "--- fault-free ---\n" + ref + "--- chaos ---\n" + dump);
    }
    return OracleOutcome::Pass();
  }
};

/// Renders one CQ as the bare body text the serve protocol's QUERY
/// payload carries ("e(V0, V1), u(V1)").
std::string QueryBodyText(const ConjunctiveQuery& q, const SignaturePtr& sig) {
  std::vector<ConjunctiveQuery> one{q};
  const Theory empty(sig);
  std::string text = ToProgramText(empty, nullptr, &one);
  // ToProgramText renders a query line as "?- <body>.\n".
  if (text.rfind("?- ", 0) == 0) text.erase(0, 3);
  while (!text.empty() && (text.back() == '\n' || text.back() == '.')) {
    text.pop_back();
  }
  return text;
}

/// Serving agreement (DESIGN.md §2.15): a ReasoningServer that LOADs the
/// scenario and answers its queries from the cached artifact must agree
/// byte-for-byte with a one-shot RunChase + Satisfies over the same
/// program. Every query is asked twice — the second ask runs against a
/// signature the first ask already marked and rolled back, so a rollback
/// leak (satellite: one Signature per artifact, copy-on-admit) diverges
/// here. Skips scenarios the compile budget rejects (serve only admits
/// saturating theories).
class ServeAgreementOracle : public Oracle {
 public:
  std::string_view name() const override { return "serve-agreement"; }

  OracleOutcome Check(const Scenario& s,
                      const OracleConfig& config) const override {
    if (s.queries.empty()) return OracleOutcome::Skip("no queries");

    ChaseOptions opts;
    opts.max_rounds = config.max_rounds;
    opts.max_facts = config.max_facts;
    const ChaseResult one_shot = RunChase(s.theory, s.instance, opts);
    if (!one_shot.status.ok() || !one_shot.fixpoint_reached) {
      return OracleOutcome::Skip("chase budget (serve admits only fixpoints)");
    }

    serve::ServerOptions sopts;
    sopts.compile.max_rounds = config.max_rounds;
    sopts.compile.max_facts = config.max_facts;
    serve::ReasoningServer server(sopts);

    serve::Request load;
    load.kind = serve::Request::Kind::kLoad;
    load.tenant = "oracle";
    load.payload = ToProgramText(s.theory, &s.instance, nullptr);
    const serve::Response loaded = server.Handle(load);
    if (!loaded.ok()) {
      return OracleOutcome::Fail("LOAD rejected a saturating theory: " +
                                 loaded.status.ToString());
    }
    uint64_t key = 0;
    if (loaded.body.rfind("key=", 0) != 0 ||
        !serve::KeyFromHex(loaded.body.substr(4, 16), &key)) {
      return OracleOutcome::Fail("unparseable LOAD response: " + loaded.body);
    }

    for (size_t i = 0; i < s.queries.size(); ++i) {
      const bool expected = Satisfies(one_shot.structure, s.queries[i]);
      serve::Request ask;
      ask.kind = serve::Request::Kind::kQuery;
      ask.tenant = "oracle";
      ask.key = key;
      ask.payload = QueryBodyText(s.queries[i], s.sig);
      for (int round = 0; round < 2; ++round) {
        const serve::Response served = server.Handle(ask);
        if (!served.ok()) {
          return OracleOutcome::Fail("QUERY failed: " +
                                     served.status.ToString());
        }
        const std::string want = expected ? "true" : "false";
        if (served.body != want) {
          return OracleOutcome::Fail(
              "query " + std::to_string(i) + " ask " + std::to_string(round) +
              " diverged: served " + served.body + ", one-shot " + want +
              " (" + ask.payload + ")");
        }
      }
    }
    return OracleOutcome::Pass();
  }
};

}  // namespace

const std::vector<const Oracle*>& AllOracles() {
  static const ChaseAgreementOracle chase_agreement;
  static const ParserRoundTripOracle parser_roundtrip;
  static const RewriteDeterminismOracle rewrite_determinism;
  static const RewriteVsChaseOracle rewrite_vs_chase;
  static const PipelineCertifyOracle pipeline_certify;
  static const GovernorPrefixOracle governor_prefix;
  static const ChaosRecoveryOracle chaos_recovery;
  static const ServeAgreementOracle serve_agreement;
  static const std::vector<const Oracle*> kAll = {
      &chase_agreement, &parser_roundtrip, &rewrite_determinism,
      &rewrite_vs_chase, &pipeline_certify, &governor_prefix,
      &chaos_recovery, &serve_agreement};
  return kAll;
}

const Oracle* FindOracle(std::string_view name) {
  for (const Oracle* o : AllOracles()) {
    if (o->name() == name) return o;
  }
  return nullptr;
}

}  // namespace bddfc
