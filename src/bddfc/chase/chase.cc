#include "bddfc/chase/chase.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <map>
#include <unordered_set>

#include "bddfc/eval/match.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

void ChaseStats::PublishTo(const char* prefix) const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.enabled()) return;
  // Registry handles are stable for the process lifetime (Reset zeroes
  // values but never erases entries), so resolve the names once: the
  // string assembly and map lookups are microsecond-scale, which is real
  // overhead against a sub-millisecond chase.
  struct Handles {
    std::string prefix;
    obs::Counter* bindings_tried;
    obs::Counter* postings_hits;
    obs::Counter* postings_misses;
    obs::Counter* triggers_deduped;
    obs::Counter* datalog_deduped;
    obs::Histogram* round_us;
  };
  auto resolve = [&reg](const char* pfx) {
    const std::string p(pfx);
    return Handles{p,
                   reg.GetCounter(p + ".bindings_tried"),
                   reg.GetCounter(p + ".postings_hits"),
                   reg.GetCounter(p + ".postings_misses"),
                   reg.GetCounter(p + ".triggers_deduped"),
                   reg.GetCounter(p + ".datalog_deduped"),
                   reg.GetHistogram(p + ".round_us")};
  };
  auto publish = [this](const Handles& h) {
    h.bindings_tried->Add(match.bindings_tried);
    h.postings_hits->Add(match.postings_hits);
    h.postings_misses->Add(match.postings_misses);
    h.triggers_deduped->Add(triggers_deduped);
    h.datalog_deduped->Add(datalog_deduped);
    for (double ms : round_ms) {
      h.round_us->Record(static_cast<uint64_t>(ms * 1000.0));
    }
  };
  static const Handles first = resolve(prefix);
  if (first.prefix == prefix) {
    publish(first);
  } else {
    publish(resolve(prefix));
  }
}

namespace {

/// Adds a fact and records its birth round. Returns true when new.
bool AddFactTracked(ChaseResult* out, PredId pred,
                    const std::vector<TermId>& args, int round) {
  uint32_t row = static_cast<uint32_t>(out->structure.NumFacts(pred));
  if (!out->structure.AddFact(pred, args)) return false;
  out->fact_round.emplace(FactHandle{pred, row}, round);
  return true;
}

/// A pending existential trigger: the rule's head with frontier variables
/// grounded and existential variables still symbolic. Keyed for per-round
/// deduplication (one witness per demanded head pattern).
struct PendingExistential {
  int rule_index;
  std::vector<Atom> head_pattern;   // grounded except existential vars
  std::vector<TermId> existentials; // the symbolic witness variables
};

/// Serializes `pattern` with variables renumbered by first occurrence.
std::string SerializeRenumbered(const std::vector<Atom>& pattern) {
  std::unordered_map<TermId, TermId> ren;
  int32_t next = 0;
  std::string s;
  for (const Atom& a : pattern) {
    s += std::to_string(a.pred);
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.find(t);
        if (it == ren.end()) it = ren.emplace(t, MakeVar(next++)).first;
        t = it->second;
      }
      s += "," + std::to_string(t);
    }
    s += "|";
  }
  return s;
}

/// Canonical key of a head pattern, invariant under existential-variable
/// renaming *and* atom reordering: the same demanded pattern gets the same
/// key no matter which rule (or head-atom order) produced it.
///
/// Renumbering variables by first occurrence before sorting (the seed
/// behavior) bakes the incoming atom order into the variable names, so
/// logically identical patterns hashed apart and spawned duplicate
/// witnesses. Instead, atoms are sorted under a name-independent local key
/// (predicate + per-position constant/within-atom variable shape); among
/// atoms whose local keys tie, every arrangement is tried and the
/// lexicographically least renumbered serialization wins. Ties are rare
/// (heads are small), but a cap falls back to the sorted order — still
/// deterministic and never merging inequivalent patterns, as the key is the
/// serialized pattern itself.
std::string PatternKey(const std::vector<Atom>& pattern) {
  auto local_key = [](const Atom& a) {
    std::unordered_map<TermId, int32_t> ren;
    std::string s = std::to_string(a.pred);
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.emplace(t, static_cast<int32_t>(ren.size())).first;
        s += ",v" + std::to_string(it->second);
      } else {
        s += ",c" + std::to_string(t);
      }
    }
    return s;
  };

  std::vector<std::pair<std::string, Atom>> keyed;
  keyed.reserve(pattern.size());
  for (const Atom& a : pattern) keyed.emplace_back(local_key(a), a);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  // Group atoms with equal local keys and bound the number of arrangements.
  std::vector<std::vector<Atom>> groups;
  size_t arrangements = 1;
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i == 0 || keyed[i].first != keyed[i - 1].first) groups.emplace_back();
    groups.back().push_back(keyed[i].second);
    arrangements *= groups.back().size();  // running product of factorials
  }

  std::vector<Atom> cand;
  cand.reserve(pattern.size());
  if (arrangements > 5040) {  // cap: fall back to the sorted order
    for (const auto& g : groups) cand.insert(cand.end(), g.begin(), g.end());
    return SerializeRenumbered(cand);
  }

  std::string best;
  std::function<void(size_t)> rec = [&](size_t gi) {
    if (gi == groups.size()) {
      cand.clear();
      for (const auto& g : groups) cand.insert(cand.end(), g.begin(), g.end());
      std::string s = SerializeRenumbered(cand);
      if (best.empty() || s < best) best = std::move(s);
      return;
    }
    auto& g = groups[gi];
    std::sort(g.begin(), g.end());
    do {
      rec(gi + 1);
    } while (std::next_permutation(g.begin(), g.end()));
  };
  rec(0);
  return best;
}

}  // namespace

ChaseResult RunChase(const Theory& theory, const Structure& instance,
                     const ChaseOptions& options) {
  assert(theory.signature_ptr().get() == instance.signature_ptr().get() &&
         "theory and instance must share one Signature object");
  ChaseResult out(instance.signature_ptr());
  obs::TraceSpan run_span(options.datalog_only ? "chase.datalog"
                                               : "chase.run");

  // Ungoverned runs get a cheap local context (no deadline, no limits, no
  // accountant attached) so the loop below has a single code path; its
  // checks are a handful of relaxed atomic loads per round.
  ExecutionContext local_ctx;
  ExecutionContext* ctx =
      options.context != nullptr ? options.context : &local_ctx;
  const bool governed = options.context != nullptr;
  if (governed) out.structure.SetAccountant(&ctx->memory());

  // Detaches the run-scoped accountant and snapshots the resource report;
  // called before every return so results never carry dangling pointers.
  auto finalize = [&] {
    out.structure.SetAccountant(nullptr);
    std::string progress =
        "round " + std::to_string(out.rounds_run) + ", " +
        std::to_string(out.structure.NumFacts()) + " facts" +
        (out.fixpoint_reached ? ", fixpoint" : "");
    run_span.set_detail(progress);
    ctx->NotePhase("chase", std::move(progress));
    out.report = ctx->report();
    out.report.partial_result =
        !out.status.ok() && out.structure.NumFacts() > 0;
    out.stats.PublishTo("bddfc.chase");
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    if (reg.enabled()) {
      struct RunMetrics {
        obs::Counter* runs;
        obs::Counter* rounds;
        obs::Counter* nulls_created;
        obs::Gauge* last_facts;
      };
      static const RunMetrics rm{
          obs::MetricsRegistry::Global().GetCounter("bddfc.chase.runs"),
          obs::MetricsRegistry::Global().GetCounter("bddfc.chase.rounds"),
          obs::MetricsRegistry::Global().GetCounter(
              "bddfc.chase.nulls_created"),
          obs::MetricsRegistry::Global().GetGauge("bddfc.chase.last_facts")};
      rm.runs->Add(1);
      rm.rounds->Add(out.rounds_run);
      rm.nulls_created->Add(out.nulls_created);
      rm.last_facts->Set(out.structure.NumFacts());
    }
  };

  // Round 0: copy the instance, tagging every fact with round 0.
  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    AddFactTracked(&out, p, row, 0);
  });
  for (TermId c : instance.Domain()) out.structure.AddDomainElement(c);
  out.facts_per_round.push_back(out.structure.NumFacts());

  // Oblivious mode: remember fired (rule, body-binding) pairs so each
  // trigger fires exactly once over the whole run (the blind chase creates
  // one witness per trigger, not one per round).
  std::unordered_set<std::string> fired;

  const bool delta_engine = options.engine == ChaseEngine::kDelta;

  for (size_t round = 1; round <= options.max_rounds; ++round) {
    // Round boundary: the structure holds exactly Chase^{round-1}, so a
    // trip here returns a clean prefix.
    Status cp = ctx->CheckPoint("chase round start");
    if (!cp.ok()) {
      out.status = std::move(cp);
      finalize();
      return out;
    }

    const auto round_start = std::chrono::steady_clock::now();
    obs::TraceSpan round_span("chase.round");
    Matcher matcher(out.structure, &out.stats.match);
    // Witness-existence probes go through a stats-less matcher so
    // bindings_tried counts rule-body bindings only.
    Matcher witness(out.structure);

    // Buffered additions, evaluated against the Chase^{i} snapshot.
    std::vector<Atom> datalog_additions;
    std::unordered_set<Atom, AtomHash> datalog_buffered;
    std::map<std::string, PendingExistential> existential_triggers;

    for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
      if (ctx->Exhausted()) break;  // a trip mid-rule skips the rest
      const Rule& rule = theory.rules()[ri];
      const bool existential = rule.IsExistential();
      if (existential && options.datalog_only) continue;

      auto on_binding = [&](const Binding& b) {
        // Strided governor probe: aborts this rule's enumeration on a
        // trip; the post-enumeration check discards the buffered round.
        if (ctx->ShouldStop("chase enumerate")) return false;
        auto ground = [&](const Atom& a) {
          Atom g = a;
          for (TermId& t : g.args) {
            if (IsVar(t)) {
              auto it = b.find(t);
              if (it != b.end()) t = it->second;
            }
          }
          return g;
        };
        if (!existential) {
          for (const Atom& h : rule.head) {
            Atom g = ground(h);
            assert(g.IsGround() && "datalog rule with unbound head variable");
            if (out.structure.Contains(g)) continue;
            if (datalog_buffered.insert(g).second) {
              datalog_additions.push_back(std::move(g));
            } else {
              ++out.stats.datalog_deduped;
            }
          }
          return true;
        }
        // Existential TGD: the non-oblivious check — is the head already
        // witnessed in Chase^i under this frontier binding?
        std::vector<Atom> pattern;
        pattern.reserve(rule.head.size());
        for (const Atom& h : rule.head) pattern.push_back(ground(h));
        std::string key;
        if (options.oblivious) {
          // Blind chase: one witness per (rule, body binding), ever.
          key = std::to_string(ri);
          for (const Atom& a : rule.body) {
            Atom g = ground(a);
            key += "|" + std::to_string(g.pred);
            for (TermId t : g.args) key += "," + std::to_string(t);
          }
          if (!fired.insert(key).second) return true;
        } else {
          if (witness.Exists(pattern, {})) return true;
          key = PatternKey(pattern);
          if (options.fault == ChaseFault::kSkipTriggerDedup) {
            // Injected bug: make every key unique so same-pattern triggers
            // stop collapsing to one witness.
            key += "#" + std::to_string(existential_triggers.size());
          }
        }
        PendingExistential pe;
        pe.rule_index = static_cast<int>(ri);
        pe.head_pattern = pattern;
        pe.existentials = rule.ExistentialVariables();
        if (!existential_triggers.emplace(std::move(key), std::move(pe))
                 .second) {
          ++out.stats.triggers_deduped;
        }
        return true;
      };

      if (delta_engine) {
        // Semi-naive: rotate a delta anchor over the body. Atoms before the
        // anchor stay on pre-round rows, the anchor ranges over the last
        // round's delta, atoms after it over the full relation — each
        // binding that touches the delta is enumerated exactly once, with
        // the anchor at its first delta atom. Before the first
        // MarkRoundBoundary (round 1) all watermarks are 0, so only anchor
        // 0 fires and it performs one full enumeration.
        const size_t k = rule.body.size();
        std::vector<RowBand> bands(k);
        for (size_t di = 0; di < k; ++di) {
          const PredId anchor_pred = rule.body[di].pred;
          const uint32_t wm = out.structure.WatermarkRows(anchor_pred);
          if (wm >= out.structure.NumFacts(anchor_pred)) {
            continue;  // this relation gained nothing last round
          }
          for (size_t j = 0; j < k; ++j) {
            if (j < di) {
              bands[j] = {0, out.structure.WatermarkRows(rule.body[j].pred)};
            } else if (j == di) {
              bands[j] = {wm, UINT32_MAX};
            } else {
              bands[j] = RowBand::All();
            }
          }
          matcher.EnumerateBanded(rule.body, bands, {}, on_binding);
        }
      } else {
        matcher.Enumerate(rule.body, {}, on_binding);
      }
    }

    auto elapsed_ms = [&round_start] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - round_start)
          .count();
    };

    if (ctx->Exhausted()) {
      // The governor tripped mid-enumeration: the buffered additions are
      // an incomplete round. Discard them so the structure stays the
      // Chase^{round-1} prefix (unless the torn-exhaust fault is injected,
      // which applies them to give the prefix oracle a bug to catch).
      if (options.fault == ChaseFault::kTornExhaust) {
        for (const Atom& g : datalog_additions) {
          AddFactTracked(&out, g.pred, g.args, static_cast<int>(round));
        }
      }
      out.status = ctx->CheckPoint("chase round abort");
      out.stats.round_ms.push_back(elapsed_ms());
      finalize();
      return out;
    }

    if (datalog_additions.empty() && existential_triggers.empty()) {
      out.stats.round_ms.push_back(elapsed_ms());
      out.fixpoint_reached = true;
      break;
    }

    // Record the round boundary *before* applying this round's additions:
    // the rows inserted below form the delta of the next round.
    out.structure.MarkRoundBoundary();

    size_t added = 0;
    for (const Atom& g : datalog_additions) {
      if (AddFactTracked(&out, g.pred, g.args, static_cast<int>(round))) {
        ++added;
      }
    }
    for (auto& [key, pe] : existential_triggers) {
      (void)key;
      // Invent one null per existential variable of this trigger.
      std::unordered_map<TermId, TermId> witness;
      for (TermId v : pe.existentials) {
        TermId null_id = out.structure.mutable_sig().AddNull();
        witness.emplace(v, null_id);
        ++out.nulls_created;
      }
      for (Atom g : pe.head_pattern) {
        for (TermId& t : g.args) {
          if (IsVar(t)) t = witness.at(t);
        }
        if (AddFactTracked(&out, g.pred, g.args, static_cast<int>(round))) {
          ++added;
        }
        // Record provenance on each fresh null (one shared head atom each).
        for (auto [v, null_id] : witness) {
          (void)v;
          auto it = out.null_provenance.find(null_id);
          if (it == out.null_provenance.end()) {
            NullProvenance np;
            np.birth_round = static_cast<int>(round);
            np.rule_index = pe.rule_index;
            np.head_atom = g;
            out.null_provenance.emplace(null_id, std::move(np));
          }
        }
      }
    }

    out.rounds_run = round;
    out.facts_per_round.push_back(out.structure.NumFacts());
    out.stats.round_ms.push_back(elapsed_ms());

    if (added == 0) {
      // Buffered additions all turned out to be duplicates: fixpoint.
      out.fixpoint_reached = true;
      break;
    }
    if (out.structure.NumFacts() > options.max_facts) {
      out.status = ctx->RecordExhaustion(
          ResourceKind::kFacts,
          "chase exceeded max_facts=" + std::to_string(options.max_facts) +
              " at round " + std::to_string(round));
      finalize();
      return out;
    }
  }

  if (!out.fixpoint_reached) {
    out.status = ctx->RecordExhaustion(
        ResourceKind::kRounds,
        "chase did not reach a fixpoint within max_rounds=" +
            std::to_string(options.max_rounds));
  }
  finalize();
  return out;
}

std::vector<std::vector<Atom>> ChaseResult::FactsByRound() const {
  std::vector<std::vector<Atom>> out;
  if (structure.NumFacts() == 0) return out;
  int max_round = 0;
  for (const auto& [handle, round] : fact_round) {
    (void)handle;
    max_round = std::max(max_round, round);
  }
  out.resize(static_cast<size_t>(max_round) + 1);
  for (PredId p = 0; p < structure.NumStoredPredicates(); ++p) {
    const auto& rows = structure.Rows(p);
    for (uint32_t row = 0; row < rows.size(); ++row) {
      auto it = fact_round.find(FactHandle{p, row});
      int round = it == fact_round.end() ? 0 : it->second;
      out[static_cast<size_t>(round)].emplace_back(p, rows[row]);
    }
  }
  return out;
}

std::string RuleViolation::ToString(const Signature& sig) const {
  std::string s = "rule #" + std::to_string(rule_index) + " violated by ";
  for (size_t i = 0; i < grounded_body.size(); ++i) {
    if (i) s += ", ";
    s += grounded_body[i].ToString(sig);
  }
  return s;
}

std::optional<RuleViolation> CheckModel(const Structure& m,
                                        const Theory& theory) {
  Matcher matcher(m);
  std::optional<RuleViolation> violation;
  for (size_t ri = 0; ri < theory.rules().size() && !violation; ++ri) {
    const Rule& rule = theory.rules()[ri];
    matcher.Enumerate(rule.body, {}, [&](const Binding& b) {
      // Check head satisfaction: grounded atoms for bound variables,
      // existential variables free for the matcher.
      std::vector<Atom> head = rule.head;
      for (Atom& a : head) {
        for (TermId& t : a.args) {
          if (IsVar(t)) {
            auto it = b.find(t);
            if (it != b.end()) t = it->second;
          }
        }
      }
      if (!matcher.Exists(head, {})) {
        RuleViolation v;
        v.rule_index = static_cast<int>(ri);
        for (const Atom& a : rule.body) {
          Atom g = a;
          for (TermId& t : g.args) {
            auto it = b.find(t);
            if (it != b.end()) t = it->second;
          }
          v.grounded_body.push_back(std::move(g));
        }
        violation = std::move(v);
        return false;
      }
      return true;
    });
  }
  return violation;
}

}  // namespace bddfc
