#include "bddfc/base/status.h"

namespace bddfc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnknown: return "Unknown";
  }
  return "InvalidCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace bddfc
