// Fixed-size thread pool for fanning out independent work items.
//
// The library is exception-free: tasks report failure through the Status
// they return, and the pool aggregates per-task statuses deterministically
// (indexed by submission order, scanned in that order by Wait), so a run's
// outcome does not depend on thread scheduling. A pool constructed with
// one thread executes tasks inline on Wait(), making `threads = 1` an
// exact serial baseline with no thread startup cost.
//
// Work distribution: each worker owns a deque. Submit(shard_hint, task)
// pins a task's home queue by hint (e.g. the chase hashes its anchor
// predicate/chunk, so one relation's scan stays on one worker while it
// lasts); the hint-less Submit round-robins. A worker drains its own queue
// first and, when empty, steals from the back of the longest victim queue
// — so one hot shard's backlog spreads instead of serializing the round.
// All queue state sits under the single pool mutex: tasks are chase-round
// scans and rewrite batches, far coarser than the lock, and the simple
// scheme is trivially TSan-clean.

#ifndef BDDFC_BASE_THREAD_POOL_H_
#define BDDFC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"

namespace bddfc {

/// A fixed set of worker threads draining per-worker work queues with
/// stealing.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (clamped to >= 1). With exactly one
  /// thread no worker is spawned; tasks run inline in Wait().
  explicit ThreadPool(size_t num_threads);

  /// Attaches a cancellation token: once it flips, queued tasks are
  /// drained without running (their slot records ResourceExhausted) while
  /// in-flight tasks keep running until their own cooperative check-points
  /// observe the same token. Call before submitting a batch.
  void SetCancelToken(CancelToken token) { cancel_ = std::move(token); }

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on the next queue round-robin. The returned Status is
  /// recorded under the task's submission index for deterministic
  /// aggregation in Wait(). When tracing is enabled, the submitting
  /// thread's innermost span id is captured here and the task runs under a
  /// "pool.task" span parented to it, so a fan-out's per-task spans nest
  /// under the span that submitted them even though they execute on worker
  /// threads.
  void Submit(std::function<Status()> task);

  /// Like Submit, but homes the task on queue `shard_hint % num_threads`:
  /// tasks sharing a hint run in submission order on one worker unless
  /// stolen, which keeps a shard's scan cache-warm while still letting
  /// idle workers steal the backlog of a skewed shard.
  void Submit(size_t shard_hint, std::function<Status()> task);

  /// Blocks until every submitted task has finished and returns the first
  /// non-OK Status in submission order (OK when all succeeded). Resets the
  /// aggregation state so the pool can be reused for another batch.
  Status Wait();

  size_t num_threads() const { return num_threads_; }

  /// Tasks executed by stealing (taken from a queue other than the
  /// runner's own) since construction. For tests and scheduling stats.
  size_t steal_count() const;

  /// A reasonable default worker count: hardware concurrency, at least 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop(size_t worker);
  /// Pops and runs one task for `worker` (own queue first, then the back
  /// of the longest victim queue); returns false when all queues are empty.
  bool RunOneLocked(std::unique_lock<std::mutex>& lock, size_t worker);

  const size_t num_threads_;
  CancelToken cancel_;  // drained tasks short-circuit once cancelled
  std::atomic<size_t> round_robin_{0};  // hint source for hint-less Submit
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  struct QueuedTask {
    size_t index;
    uint64_t parent_span;  // submitting thread's span id (0 = none)
    std::function<Status()> fn;
  };
  std::vector<std::deque<QueuedTask>> queues_;  // one per worker
  size_t queued_ = 0;                           // tasks across all queues
  size_t steals_ = 0;
  std::vector<Status> statuses_;  // indexed by submission order
  size_t next_index_ = 0;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n) on `threads` workers and returns the
/// first non-OK Status in index order. With threads <= 1 the loop runs
/// inline. Callers get determinism by writing results[i] from task i.
///
/// With a non-null `ctx`, the fan-out is governed: tasks not yet started
/// when the context trips (deadline, memory, cancellation) are skipped —
/// their slot records the context's ResourceExhausted — and in-flight
/// tasks are expected to observe the same context at their own
/// check-points. The inline (threads <= 1) path honors the same contract.
Status ParallelFor(size_t n, size_t threads,
                   const std::function<Status(size_t)>& fn,
                   ExecutionContext* ctx = nullptr);

}  // namespace bddfc

#endif  // BDDFC_BASE_THREAD_POOL_H_
