// Tests for the ♠4/♠5 transformations and the §5.1–5.3 reductions.

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/reductions/reductions.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(HideQueryTest, AddsExactlyOneRuleAndFreshPredicate) {
  Program p = Example7();
  const Signature& sig = p.theory.sig();
  auto q = std::move(ParseQuery("e(X, X)", p.theory.signature_ptr().get()))
               .ValueOrDie();
  auto hidden = HideQuery(p.theory, q);
  ASSERT_TRUE(hidden.ok()) << hidden.status().ToString();
  EXPECT_EQ(hidden.value().theory.size(), p.theory.size() + 1);
  EXPECT_EQ(sig.arity(hidden.value().f), 2);
  const Rule& hide = hidden.value().theory.rules().back();
  EXPECT_TRUE(hide.IsExistential());
  EXPECT_EQ(hide.head[0].pred, hidden.value().f);
}

TEST(HideQueryTest, FDerivedIffQueryCertain) {
  // With D making the query certain, F appears in the chase; otherwise not.
  Program p = MustParse("e(a, a).");
  auto q = std::move(ParseQuery("e(X, X)", p.theory.signature_ptr().get()))
               .ValueOrDie();
  auto hidden = HideQuery(p.theory, q);
  ASSERT_TRUE(hidden.ok());
  ChaseResult res = RunChase(hidden.value().theory, p.instance);
  EXPECT_FALSE(res.structure.Rows(hidden.value().f).empty());

  Program p2 = MustParse("e(a, b).");
  auto q2 = std::move(ParseQuery("e(X, X)", p2.theory.signature_ptr().get()))
                .ValueOrDie();
  auto hidden2 = HideQuery(p2.theory, q2);
  ASSERT_TRUE(hidden2.ok());
  ChaseResult res2 = RunChase(hidden2.value().theory, p2.instance);
  EXPECT_TRUE(res2.structure.Rows(hidden2.value().f).empty());
}

TEST(Spade5Test, NormalizesAllHeadShapes) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).      % forward head
    e(X, Y) -> exists Z: e(Z, X).      % reversed head
    e(X, Y) -> exists Z: u(Z).         % unary head, no frontier
    e(X, Y) -> exists Z: r(Z, Z).      % doubled existential
    e(X, Y) -> exists Z1, Z2: r(Z1, Z2). % two existentials
    e(X, Y), e(Y, Z) -> e(X, Z).       % datalog untouched
  )");
  auto norm = NormalizeSpade5(p.theory);
  ASSERT_TRUE(norm.ok()) << norm.status().ToString();
  EXPECT_TRUE(norm.value().IsSpade5Normal());
  // The transformed theory still only has binary-or-smaller predicates.
  EXPECT_TRUE(norm.value().sig().IsBinary());
}

TEST(Spade5Test, PreservesCertainAnswers) {
  // Certain answers over the original signature must be unchanged.
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z) -> t(X, Z).
    e(a, b).
  )");
  auto norm = NormalizeSpade5(p.theory);
  ASSERT_TRUE(norm.ok());
  const Signature& sig = p.theory.sig();
  PredId t = std::move(sig.FindPredicate("t")).ValueOrDie();
  ConjunctiveQuery q;  // ∃x t(a-successor chain of 2)
  q.atoms.push_back(Atom(t, {MakeVar(0), MakeVar(1)}));

  ChaseOptions opts;
  opts.max_rounds = 8;
  ChaseResult orig = RunChase(p.theory, p.instance, opts);
  opts.max_rounds = 16;  // normalization doubles derivation depth
  ChaseResult trans = RunChase(norm.value(), p.instance, opts);
  EXPECT_EQ(Satisfies(orig.structure, q), Satisfies(trans.structure, q));
  // And e-atoms of the original chase are reproduced.
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  EXPECT_GE(trans.structure.Rows(e).size(), orig.structure.Rows(e).size());
}

TEST(SingleHeadifyTest, SplitsDatalogAndJoinsTgds) {
  Program p = MustParse(R"(
    p(X) -> q(X), s(X).
    p(X) -> r(X, Z), u(Z).
  )");
  auto single = SingleHeadify(p.theory);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  EXPECT_TRUE(single.value().IsSingleHead());
  // Rule 1 (datalog, 2 heads) -> 2 rules; rule 2 (TGD, 2 heads) -> 1 join
  // TGD + 2 projections.
  EXPECT_EQ(single.value().size(), 5u);
  // Certain answers preserved: u(z) and s(a) derivable from p(a).
  auto d = ParseProgram("p(a).", p.theory.signature_ptr());
  ASSERT_TRUE(d.ok());
  ChaseResult chase = RunChase(single.value(), d.value().instance);
  const Signature& sig = single.value().sig();
  PredId u = std::move(sig.FindPredicate("u")).ValueOrDie();
  PredId s = std::move(sig.FindPredicate("s")).ValueOrDie();
  EXPECT_EQ(chase.structure.Rows(u).size(), 1u);
  EXPECT_EQ(chase.structure.Rows(s).size(), 1u);
}

TEST(BinarizeHeadsTest, TheoremThreeFormBecomesBinaryHeaded) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z1, Z2: t(Y, Z1, Z2).
  )");
  auto bin = BinarizeHeads(p.theory);
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  for (const Rule& r : bin.value().rules()) {
    if (r.IsExistential()) {
      EXPECT_LE(r.head[0].args.size(), 2u);
      EXPECT_EQ(r.ExistentialVariables().size(), 1u);
    }
  }
  // Chasing reassembles the ternary atom.
  auto d = ParseProgram("e(a, b).", p.theory.signature_ptr());
  ASSERT_TRUE(d.ok());
  ChaseResult chase = RunChase(bin.value(), d.value().instance);
  ASSERT_TRUE(chase.status.ok()) << chase.status.ToString();
  const Signature& sig = bin.value().sig();
  PredId t = std::move(sig.FindPredicate("t")).ValueOrDie();
  EXPECT_EQ(chase.structure.Rows(t).size(), 1u);
}

TEST(BinarizeHeadsTest, RejectsTwoFrontierVariables) {
  Program p = MustParse("e(X, Y) -> exists Z: t(X, Y, Z).");
  auto bin = BinarizeHeads(p.theory);
  EXPECT_EQ(bin.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TernarizeTest, WideAtomsBecomeChains) {
  Program p = Section54();  // has the arity-4 predicate r
  auto tern = TernarizeTheory(p.theory);
  ASSERT_TRUE(tern.ok()) << tern.status().ToString();
  // Every rule of the ternary theory uses only arity <= 3 atoms.
  for (const Rule& r : tern.value().theory.rules()) {
    for (const Atom& a : r.body) {
      EXPECT_LE(tern.value().theory.sig().arity(a.pred), 3);
    }
    for (const Atom& a : r.head) {
      EXPECT_LE(tern.value().theory.sig().arity(a.pred), 3);
    }
  }
  ASSERT_EQ(tern.value().chains.size(), 1u);
}

TEST(TernarizeTest, InstanceEncodingAndChaseAgree) {
  Program p = Section54();
  auto tern = TernarizeTheory(p.theory);
  ASSERT_TRUE(tern.ok());
  Structure d3 = TernarizeInstance(tern.value(), p.instance);
  // D has only the binary atom e(a, b): unchanged by the encoding.
  EXPECT_EQ(d3.NumFacts(), p.instance.NumFacts());

  // The original theory derives e(b, z) (via r); the ternary one must too.
  ChaseOptions opts;
  opts.max_rounds = 6;
  ChaseResult orig = RunChase(p.theory, p.instance, opts);
  opts.max_rounds = 18;
  ChaseResult trans = RunChase(tern.value().theory, d3, opts);
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  TermId b = std::move(sig.FindConstant("b")).ValueOrDie();
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(e, {b, MakeVar(0)}));
  EXPECT_TRUE(Satisfies(orig.structure, q));
  EXPECT_TRUE(Satisfies(trans.structure, q));
}

TEST(TernarizeTest, WideFactEncodesAsCells) {
  Program p = MustParse(R"(
    w(X1, X2, X3, X4, X5) -> goal.
    w(a, b, c, d, e).
  )");
  auto tern = TernarizeTheory(p.theory);
  ASSERT_TRUE(tern.ok()) << tern.status().ToString();
  Structure d3 = TernarizeInstance(tern.value(), p.instance);
  // Arity 5: 3 ternary cells + 1 final binary atom.
  EXPECT_EQ(d3.NumFacts(), 4u);
  // The chase over the encoding still derives the goal.
  ChaseResult chase = RunChase(tern.value().theory, d3);
  ASSERT_TRUE(chase.status.ok());
  const Signature& sig = tern.value().theory.sig();
  PredId goal = std::move(sig.FindPredicate("goal")).ValueOrDie();
  EXPECT_EQ(chase.structure.Rows(goal).size(), 1u);
}

}  // namespace
}  // namespace bddfc
