// Sink-level differential suite for the vectorized round sink
// (DESIGN §2.13): the sort-dedup buffers and the bulk containment probe
// must agree — on emitted tuples AND on every counter — with the
// per-occurrence hash reference, on random candidate runs, at every
// compaction threshold, split across any number of simulated shard
// tasks, and at any index staleness. The end-to-end half locks the
// keep-min winner of colliding derivations (null provenance, dedup
// counters) to the hash sink's, byte for byte.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/chase/round.h"
#include "bddfc/chase/seminaive.h"
#include "bddfc/core/structure.h"
#include "bddfc/parser/parser.h"

namespace bddfc {
namespace {

using chase_internal::DatalogSinkBuffers;
using chase_internal::DedupTriggers;
using chase_internal::MergeDatalogRuns;
using chase_internal::PendingExistential;
using chase_internal::TriggerLess;

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// Structure::ContainsSorted vs per-row Contains.
// ---------------------------------------------------------------------------

/// A structure with `facts` random tuples of `arity` over a domain of
/// `domain` constants, plus a sorted candidate batch of `queries` tuples
/// (roughly half of them present). Returns the flat sorted batch.
struct ProbeCase {
  SignaturePtr sig;
  Structure s;
  PredId pred;
  size_t arity;
  std::vector<TermId> batch;  // flat, sorted, `count` tuples
  size_t count;

  ProbeCase(size_t arity_in, size_t facts, size_t domain, size_t queries,
            uint32_t seed)
      : sig(std::make_shared<Signature>()), s(sig), arity(arity_in) {
    pred = std::move(sig->AddPredicate("p", static_cast<int>(arity)))
               .ValueOrDie();
    std::vector<TermId> consts;
    for (size_t i = 0; i < domain; ++i) {
      consts.push_back(sig->AddConstant("c" + std::to_string(i)));
    }
    std::mt19937 rng(seed);
    auto random_tuple = [&] {
      std::vector<TermId> t(arity);
      for (TermId& v : t) v = consts[rng() % consts.size()];
      return t;
    };
    std::vector<std::vector<TermId>> stored;
    for (size_t i = 0; i < facts; ++i) {
      std::vector<TermId> t = random_tuple();
      if (s.AddFact(pred, t)) stored.push_back(std::move(t));
    }
    std::vector<std::vector<TermId>> qs;
    for (size_t i = 0; i < queries; ++i) {
      if (!stored.empty() && rng() % 2 == 0) {
        qs.push_back(stored[rng() % stored.size()]);  // a present tuple
      } else {
        qs.push_back(random_tuple());  // usually absent
      }
    }
    std::sort(qs.begin(), qs.end());
    count = qs.size();
    for (const auto& t : qs) batch.insert(batch.end(), t.begin(), t.end());
  }

  /// Asserts ContainsSorted against per-tuple Contains on the batch.
  void ExpectAgree(const char* label) const {
    std::vector<char> got;
    size_t hits = s.ContainsSorted(pred, arity, batch.data(), count, &got);
    ASSERT_EQ(got.size(), count) << label;
    size_t expected_hits = 0;
    for (size_t i = 0; i < count; ++i) {
      std::vector<TermId> t(batch.begin() + i * arity,
                            batch.begin() + (i + 1) * arity);
      bool want = s.Contains(pred, t);
      EXPECT_EQ(got[i] != 0, want) << label << " tuple " << i;
      expected_hits += want;
    }
    EXPECT_EQ(hits, expected_hits) << label;
  }
};

TEST(ContainsSortedTest, AgreesWithPerRowContainsOnRandomStructures) {
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    for (size_t arity : {size_t{1}, size_t{2}, size_t{3}}) {
      ProbeCase pc(arity, /*facts=*/120, /*domain=*/12, /*queries=*/150,
                   seed * 17 + static_cast<uint32_t>(arity));
      pc.ExpectAgree("never-refreshed");  // all-hash fallback path
      pc.s.RefreshIndexes();
      pc.ExpectAgree("fresh indexes");  // the gallop path proper
    }
  }
}

TEST(ContainsSortedTest, StaysCorrectOnStaleIndexes) {
  // The round-boundary case: indexes refreshed, then facts added — the
  // gallop covers the indexed prefix, the tail must fall back to hash.
  ProbeCase pc(/*arity=*/2, /*facts=*/80, /*domain=*/10, /*queries=*/0, 7);
  pc.s.RefreshIndexes();
  std::mt19937 rng(99);
  std::vector<std::vector<TermId>> late;
  for (size_t i = 0; i < 40; ++i) {
    std::vector<TermId> t = {pc.sig->AddConstant("d" + std::to_string(i)),
                             pc.sig->AddConstant("d" + std::to_string(i))};
    if (pc.s.AddFact(pc.pred, t)) late.push_back(t);
  }
  ASSERT_LT(pc.s.IndexedRows(pc.pred), pc.s.NumFacts(pc.pred));
  std::vector<std::vector<TermId>> qs = late;  // all past the watermark
  qs.push_back({pc.sig->AddConstant("nowhere"), pc.sig->AddConstant("d0")});
  std::sort(qs.begin(), qs.end());
  std::vector<TermId> flat;
  for (const auto& t : qs) flat.insert(flat.end(), t.begin(), t.end());
  std::vector<char> got;
  size_t hits =
      pc.s.ContainsSorted(pc.pred, 2, flat.data(), qs.size(), &got);
  EXPECT_EQ(hits, late.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(got[i] != 0, pc.s.Contains(pc.pred, qs[i])) << i;
  }
}

TEST(ContainsSortedTest, WideEqualValueSlicesUseTheHashFallback) {
  // > kMaxSliceScan rows share one first-column value: the slice scan must
  // hand off to the hash probe without wrong answers.
  auto sig = std::make_shared<Signature>();
  Structure s(sig);
  PredId p = std::move(sig->AddPredicate("p", 2)).ValueOrDie();
  TermId hub = sig->AddConstant("hub");
  std::vector<TermId> spokes;
  for (int i = 0; i < 100; ++i) {
    spokes.push_back(sig->AddConstant("s" + std::to_string(i)));
    s.AddFact(p, {hub, spokes.back()});
  }
  s.RefreshIndexes();
  TermId absent = sig->AddConstant("absent");
  std::vector<std::vector<TermId>> qs;
  for (int i = 0; i < 100; i += 3) qs.push_back({hub, spokes[i]});
  qs.push_back({hub, absent});
  std::sort(qs.begin(), qs.end());
  std::vector<TermId> flat;
  for (const auto& t : qs) flat.insert(flat.end(), t.begin(), t.end());
  std::vector<char> got;
  size_t hits = s.ContainsSorted(p, 2, flat.data(), qs.size(), &got);
  EXPECT_EQ(hits, qs.size() - 1);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(got[i] != 0, s.Contains(p, qs[i])) << i;
  }
}

TEST(ContainsSortedTest, EmptyBatchAndArityZeroAndMissingRelation) {
  auto sig = std::make_shared<Signature>();
  Structure s(sig);
  PredId yes = std::move(sig->AddPredicate("yes", 0)).ValueOrDie();
  PredId no = std::move(sig->AddPredicate("no", 0)).ValueOrDie();
  PredId never = std::move(sig->AddPredicate("never", 2)).ValueOrDie();
  s.AddFact(yes, {});
  std::vector<char> got;
  EXPECT_EQ(s.ContainsSorted(yes, 0, nullptr, 0, &got), 0u);  // empty batch
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(s.ContainsSorted(yes, 0, nullptr, 3, &got), 3u);
  EXPECT_EQ(got, (std::vector<char>{1, 1, 1}));
  EXPECT_EQ(s.ContainsSorted(no, 0, nullptr, 2, &got), 0u);
  EXPECT_EQ(got, (std::vector<char>{0, 0}));
  TermId c = sig->AddConstant("c");
  std::vector<TermId> one = {c, c};
  EXPECT_EQ(s.ContainsSorted(never, 2, one.data(), 1, &got), 0u);
  EXPECT_EQ(got, (std::vector<char>{0}));
}

// ---------------------------------------------------------------------------
// DatalogSinkBuffers (sort-dedup + bulk containment) vs a hash reference.
// ---------------------------------------------------------------------------

/// What the hash sinks would compute for a run of occurrences against
/// `frozen`: the emitted set plus the contained / deduped occurrence
/// counts (the order-independent contract the counters must meet).
struct HashReference {
  std::vector<Atom> emitted;  // sorted distinct, not in frozen
  size_t candidates = 0;
  size_t contained = 0;  // occurrences of frozen-contained tuples
  size_t deduped = 0;    // extra occurrences of emitted tuples

  HashReference(const Structure& frozen, const std::vector<Atom>& occs) {
    candidates = occs.size();
    std::map<Atom, size_t> groups;
    for (const Atom& g : occs) ++groups[g];
    for (const auto& [g, k] : groups) {
      if (frozen.Contains(g)) {
        contained += k;
      } else {
        emitted.push_back(g);
        deduped += k - 1;
      }
    }
  }
};

/// Random occurrence run over two predicates; `dup_bias` > 1 draws from a
/// small tuple pool so duplicate groups are common.
std::vector<Atom> RandomOccurrences(Structure* frozen, SignaturePtr sig,
                                    PredId p2, PredId p1, size_t n,
                                    size_t pool, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<TermId> consts;
  for (size_t i = 0; i < 10; ++i) {
    consts.push_back(sig->AddConstant("k" + std::to_string(i)));
  }
  std::vector<Atom> pool_atoms;
  for (size_t i = 0; i < pool; ++i) {
    if (rng() % 2 == 0) {
      pool_atoms.emplace_back(
          p2, std::vector<TermId>{consts[rng() % consts.size()],
                                  consts[rng() % consts.size()]});
    } else {
      pool_atoms.emplace_back(
          p1, std::vector<TermId>{consts[rng() % consts.size()]});
    }
    // A third of the pool pre-exists in the frozen structure.
    if (rng() % 3 == 0) frozen->AddFact(pool_atoms.back());
  }
  std::vector<Atom> occs;
  for (size_t i = 0; i < n; ++i) {
    occs.push_back(pool_atoms[rng() % pool_atoms.size()]);
  }
  return occs;
}

TEST(SinkBuffersTest, SortDedupMatchesHashDedupOnRandomRuns) {
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    // Thresholds down to 1 force a compaction per append — the telescoping
    // dedup count must still come out exactly right.
    for (size_t threshold : {size_t{1}, size_t{2}, size_t{7}, size_t{1024}}) {
      auto sig = std::make_shared<Signature>();
      Structure frozen(sig);
      PredId p2 = std::move(sig->AddPredicate("p2", 2)).ValueOrDie();
      PredId p1 = std::move(sig->AddPredicate("p1", 1)).ValueOrDie();
      std::vector<Atom> occs = RandomOccurrences(
          &frozen, sig, p2, p1, /*n=*/200, /*pool=*/40, seed * 31);
      frozen.RefreshIndexes();
      HashReference want(frozen, occs);

      DatalogSinkBuffers sink(frozen, threshold, /*drop_dup_groups=*/false);
      for (const Atom& g : occs) sink.AppendAtom(g);
      std::vector<Atom> got;
      sink.FinishInto(&got);

      std::string label = "seed " + std::to_string(seed) + " threshold " +
                          std::to_string(threshold);
      EXPECT_EQ(got, want.emitted) << label;
      EXPECT_EQ(sink.candidates(), want.candidates) << label;
      EXPECT_EQ(sink.contained(), want.contained) << label;
      EXPECT_EQ(sink.deduped(), want.deduped) << label;
    }
  }
}

TEST(SinkBuffersTest, AllDistinctAndAllDuplicateExtremes) {
  auto sig = std::make_shared<Signature>();
  Structure frozen(sig);
  PredId p = std::move(sig->AddPredicate("p", 1)).ValueOrDie();
  std::vector<TermId> consts;
  for (int i = 0; i < 50; ++i) {
    consts.push_back(sig->AddConstant("c" + std::to_string(i)));
  }
  frozen.RefreshIndexes();

  {  // All distinct: nothing deduped, nothing contained.
    DatalogSinkBuffers sink(frozen, 8, false);
    for (TermId c : consts) sink.AppendAtom(Atom(p, {c}));
    std::vector<Atom> got;
    sink.FinishInto(&got);
    EXPECT_EQ(got.size(), consts.size());
    EXPECT_EQ(sink.deduped(), 0u);
    EXPECT_EQ(sink.contained(), 0u);
    EXPECT_EQ(sink.candidates(), consts.size());
  }
  {  // One tuple 50 times: one survivor, 49 deduped.
    DatalogSinkBuffers sink(frozen, 8, false);
    for (int i = 0; i < 50; ++i) sink.AppendAtom(Atom(p, {consts[0]}));
    std::vector<Atom> got;
    sink.FinishInto(&got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], Atom(p, {consts[0]}));
    EXPECT_EQ(sink.deduped(), 49u);
  }
  {  // Empty round and a single tuple.
    DatalogSinkBuffers sink(frozen, 8, false);
    std::vector<Atom> got;
    sink.FinishInto(&got);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(sink.candidates(), 0u);
    DatalogSinkBuffers one(frozen, 8, false);
    one.AppendAtom(Atom(p, {consts[1]}));
    one.FinishInto(&got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(one.deduped() + one.contained(), 0u);
  }
}

TEST(SinkBuffersTest, ShardedMergeMatchesSingleSinkExactly) {
  // Split the same occurrence run across 1, 2, 3 and 5 simulated shard
  // tasks: merged output and the *total* dedup count (per-task + merge)
  // must be independent of the split.
  auto sig = std::make_shared<Signature>();
  Structure frozen(sig);
  PredId p2 = std::move(sig->AddPredicate("p2", 2)).ValueOrDie();
  PredId p1 = std::move(sig->AddPredicate("p1", 1)).ValueOrDie();
  std::vector<Atom> occs =
      RandomOccurrences(&frozen, sig, p2, p1, 240, 30, 12345);
  frozen.RefreshIndexes();
  HashReference want(frozen, occs);

  for (size_t tasks : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    std::vector<DatalogSinkBuffers::Run> runs;
    size_t task_deduped = 0, task_contained = 0, task_candidates = 0;
    for (size_t t = 0; t < tasks; ++t) {
      DatalogSinkBuffers sink(frozen, 16, false);
      for (size_t i = t; i < occs.size(); i += tasks) {
        sink.AppendAtom(occs[i]);
      }
      auto part = sink.TakeRuns();
      for (auto& run : part) runs.push_back(std::move(run));
      task_deduped += sink.deduped();
      task_contained += sink.contained();
      task_candidates += sink.candidates();
    }
    std::vector<Atom> got;
    size_t merge_deduped = 0;
    MergeDatalogRuns(std::move(runs), false, &got, &merge_deduped);
    std::sort(got.begin(), got.end());

    std::string label = std::to_string(tasks) + " tasks";
    EXPECT_EQ(got, want.emitted) << label;
    EXPECT_EQ(task_candidates, want.candidates) << label;
    EXPECT_EQ(task_contained, want.contained) << label;
    EXPECT_EQ(task_deduped + merge_deduped, want.deduped) << label;
  }
}

TEST(SinkBuffersTest, DropDupGroupsFaultDropsExactlyTheDuplicatedTuples) {
  // The kSinkDropDup self-test hook: duplicated tuples vanish entirely,
  // singletons survive — both within one sink and across a merge.
  auto sig = std::make_shared<Signature>();
  Structure frozen(sig);
  PredId p = std::move(sig->AddPredicate("p", 1)).ValueOrDie();
  TermId once = sig->AddConstant("once");
  TermId twice = sig->AddConstant("twice");
  frozen.RefreshIndexes();

  DatalogSinkBuffers sink(frozen, 2, /*drop_dup_groups=*/true);
  sink.AppendAtom(Atom(p, {once}));
  sink.AppendAtom(Atom(p, {twice}));
  sink.AppendAtom(Atom(p, {twice}));
  std::vector<Atom> got;
  sink.FinishInto(&got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Atom(p, {once}));

  // Cross-run duplicates: one occurrence in each of two tasks.
  std::vector<DatalogSinkBuffers::Run> runs;
  for (int t = 0; t < 2; ++t) {
    DatalogSinkBuffers task(frozen, 16, true);
    task.AppendAtom(Atom(p, {twice}));
    if (t == 0) task.AppendAtom(Atom(p, {once}));
    for (auto& run : task.TakeRuns()) runs.push_back(std::move(run));
  }
  got.clear();
  size_t scratch = 0;
  MergeDatalogRuns(std::move(runs), true, &got, &scratch);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Atom(p, {once}));
}

// ---------------------------------------------------------------------------
// DedupTriggers: keep-min winner, order independence.
// ---------------------------------------------------------------------------

PendingExistential MakeTrigger(int rule_index, PredId pred, TermId arg) {
  PendingExistential pe;
  pe.rule_index = rule_index;
  pe.head_pattern = {Atom(pred, {arg})};
  return pe;
}

TEST(DedupTriggersTest, KeepsTheTriggerLessLeastWinnerAtAnyArrivalOrder) {
  auto sig = std::make_shared<Signature>();
  PredId p = std::move(sig->AddPredicate("p", 1)).ValueOrDie();
  TermId a = sig->AddConstant("a");
  TermId b = sig->AddConstant("b");

  std::vector<std::pair<std::string, PendingExistential>> raw;
  raw.emplace_back("k1", MakeTrigger(2, p, a));
  raw.emplace_back("k0", MakeTrigger(1, p, b));
  raw.emplace_back("k1", MakeTrigger(0, p, a));  // the k1 winner
  raw.emplace_back("k1", MakeTrigger(1, p, a));

  std::vector<std::pair<std::string, PendingExistential>> reversed(
      raw.rbegin(), raw.rend());
  for (auto* input : {&raw, &reversed}) {
    std::vector<std::pair<std::string, PendingExistential>> out;
    size_t tdedup = 0;
    DedupTriggers(*input, &out, &tdedup);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(tdedup, 2u);
    EXPECT_EQ(out[0].first, "k0");  // key order
    EXPECT_EQ(out[1].first, "k1");
    EXPECT_EQ(out[0].second.rule_index, 1);
    EXPECT_EQ(out[1].second.rule_index, 0);  // TriggerLess-least, not first
    EXPECT_TRUE(TriggerLess(out[1].second, MakeTrigger(1, p, a)));
  }
}

// ---------------------------------------------------------------------------
// End-to-end: colliding derivations, byte identity, counter parity.
// ---------------------------------------------------------------------------

/// Raw byte-identity dump: rows with raw TermIds in append order, growth
/// curve, dedup counters, null provenance.
std::string Dump(const ChaseResult& r) {
  std::ostringstream os;
  os << r.rounds_run << '|' << r.nulls_created << '|'
     << r.stats.triggers_deduped << '|' << r.stats.datalog_deduped << '\n';
  for (size_t n : r.facts_per_round) os << n << ',';
  os << '\n';
  for (PredId p = 0; p < r.structure.NumStoredPredicates(); ++p) {
    for (const auto& row : r.structure.Rows(p)) {
      os << p << ':';
      for (TermId t : row) os << t << ' ';
      os << '\n';
    }
  }
  std::vector<TermId> nulls;
  for (const auto& [t, prov] : r.null_provenance) nulls.push_back(t);
  std::sort(nulls.begin(), nulls.end());
  for (TermId t : nulls) {
    const NullProvenance& prov = r.null_provenance.at(t);
    os << t << "<-r" << prov.rule_index << "@" << prov.birth_round << '\n';
  }
  return os.str();
}

TEST(SinkEndToEndTest, CollidingExistentialsKeepTheSameWinnerEitherSink) {
  // Two rules demand the same head pattern in the same round; the keep-min
  // contract says rule 0 wins regardless of enumeration order — and the
  // sort-merge sink must reproduce exactly the hash sinks' winner.
  for (bool vsink : {true, false}) {
    for (ChaseEngine engine : {ChaseEngine::kDelta, ChaseEngine::kParallel}) {
      Program q = MustParse(R"(
        a(X) -> exists Z: w(X, Z).
        b(X) -> exists Z: w(X, Z).
        a(c).
        b(c).
      )");
      ChaseOptions opts;
      opts.engine = engine;
      opts.threads = engine == ChaseEngine::kParallel ? 4 : 0;
      opts.vectorized_sink = vsink;
      ChaseResult r = RunChase(q.theory, q.instance, opts);
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.nulls_created, 1u);
      EXPECT_EQ(r.stats.triggers_deduped, 1u);
      ASSERT_EQ(r.null_provenance.size(), 1u);
      EXPECT_EQ(r.null_provenance.begin()->second.rule_index, 0)
          << (vsink ? "vsink" : "hashsink");
    }
  }
}

TEST(SinkEndToEndTest, CollidingDatalogHeadsCountOneDedupEitherSink) {
  Program p = MustParse(R"(
    a(X) -> d(X).
    b(X) -> d(X).
    a(c).
    b(c).
  )");
  for (bool vsink : {true, false}) {
    ChaseOptions opts;
    opts.vectorized_sink = vsink;
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.stats.datalog_deduped, 1u)
        << (vsink ? "vsink" : "hashsink");
    PredId d = std::move(p.theory.sig().FindPredicate("d")).ValueOrDie();
    TermId c = std::move(p.theory.sig().FindConstant("c")).ValueOrDie();
    EXPECT_TRUE(r.structure.Contains(Atom(d, {c})));
  }
}

TEST(SinkEndToEndTest, ByteIdenticalAcrossSinksOnMixedWorkload) {
  // A fresh Program per run: runs share a Signature otherwise, and the
  // nulls the first run interns would shift the TermIds of the second.
  auto make = [] {
    return MustParse(R"(
      e(X, Y), e(Y, Z) -> e(X, Z).
      e(X, Y) -> exists W: f(Y, W).
      f(X, Y), e(Z, X) -> g(Z, Y).
      e(c0, c1).
      e(c1, c2).
      e(c2, c3).
      e(c3, c0).
      e(c1, c0).
    )");
  };
  Program ref_p = make();
  ChaseOptions base;
  base.vectorized_sink = false;
  ChaseResult ref = RunChase(ref_p.theory, ref_p.instance, base);
  ASSERT_TRUE(ref.status.ok());
  std::string want = Dump(ref);
  for (bool vsink : {true, false}) {
    for (ChaseEngine engine : {ChaseEngine::kDelta, ChaseEngine::kParallel}) {
      for (bool plans : {true, false}) {
        Program p = make();
        ChaseOptions opts;
        opts.engine = engine;
        opts.threads = engine == ChaseEngine::kParallel ? 4 : 0;
        opts.compiled_plans = plans;
        opts.vectorized_sink = vsink;
        ChaseResult r = RunChase(p.theory, p.instance, opts);
        EXPECT_EQ(Dump(r), want)
            << (vsink ? "vsink" : "hashsink") << ' '
            << (plans ? "plans" : "interp") << " engine "
            << static_cast<int>(engine);
      }
    }
  }
}

TEST(SinkEndToEndTest, SinkCountersAccountForEveryCandidate) {
  // Conservation law on a duplicate-heavy workload: every buffered
  // candidate is either contained in the frozen prefix, deduped, or a new
  // fact. (Only the vectorized sink populates sink_*.)
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(c0, c1).
    e(c1, c2).
    e(c2, c3).
    e(c3, c4).
    e(c4, c0).
  )");
  ChaseOptions opts;
  opts.vectorized_sink = true;
  ChaseResult r = RunChase(p.theory, p.instance, opts);
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.stats.sink_candidates, 0u);
  EXPECT_EQ(r.stats.sink_candidates -
                r.stats.sink_contained - r.stats.datalog_deduped,
            r.structure.NumFacts() - p.instance.NumFacts());

  opts.vectorized_sink = false;
  ChaseResult off = RunChase(p.theory, p.instance, opts);
  EXPECT_EQ(off.stats.sink_candidates, 0u);
  EXPECT_EQ(off.stats.sink_contained, 0u);
  EXPECT_EQ(off.stats.sink_probes, 0u);
  // The deterministic halves of the counters agree with the hash run's
  // facts — and the dedup counters are sink-independent.
  EXPECT_EQ(off.stats.datalog_deduped, r.stats.datalog_deduped);
  EXPECT_EQ(off.structure.NumFacts(), r.structure.NumFacts());
}

TEST(SinkEndToEndTest, SaturateClosureIsSinkAndThreadIndependent) {
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(X, Y) -> u(X).
    e(c0, c1).
    e(c1, c2).
    e(c2, c0).
    e(c2, c3).
  )");
  SaturateOptions base;
  base.vectorized_sink = false;
  SaturateResult ref = SaturateDatalog(p.theory, p.instance, base);
  ASSERT_TRUE(ref.status.ok());
  auto rows_of = [](const SaturateResult& r) {
    std::ostringstream os;
    for (PredId pr = 0; pr < r.structure.NumStoredPredicates(); ++pr) {
      for (const auto& row : r.structure.Rows(pr)) {
        os << pr << ':';
        for (TermId t : row) os << t << ' ';
        os << '\n';
      }
    }
    return os.str();
  };
  std::string want = rows_of(ref);
  for (bool vsink : {true, false}) {
    for (bool plans : {true, false}) {
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        SaturateOptions opts;
        opts.vectorized_sink = vsink;
        opts.compiled_plans = plans;
        opts.threads = threads;
        SaturateResult r = SaturateDatalog(p.theory, p.instance, opts);
        std::string label = std::string(vsink ? "vsink " : "hashsink ") +
                            (plans ? "plans" : "interp") + " t" +
                            std::to_string(threads);
        ASSERT_TRUE(r.status.ok()) << label;
        EXPECT_EQ(rows_of(r), want) << label;
        EXPECT_EQ(r.rounds_run, ref.rounds_run) << label;
        EXPECT_EQ(r.facts_derived, ref.facts_derived) << label;
        EXPECT_EQ(r.bindings_tried, ref.bindings_tried) << label;
      }
    }
  }
}

}  // namespace
}  // namespace bddfc
