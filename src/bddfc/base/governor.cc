#include "bddfc/base/governor.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace bddfc {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kNone: return "none";
    case ResourceKind::kDeadline: return "deadline";
    case ResourceKind::kMemory: return "memory";
    case ResourceKind::kCancelled: return "cancelled";
    case ResourceKind::kFacts: return "facts";
    case ResourceKind::kRounds: return "rounds";
    case ResourceKind::kQueries: return "queries";
    case ResourceKind::kAtoms: return "atoms";
    case ResourceKind::kHomChecks: return "hom-checks";
    case ResourceKind::kPatterns: return "patterns";
    case ResourceKind::kStructures: return "structures";
    case ResourceKind::kFault: return "fault";
    case ResourceKind::kInvariant: return "invariant";
  }
  return "?";
}

const char* InjectedFaultName(InjectedFault fault) {
  switch (fault) {
    case InjectedFault::kNone: return "none";
    case InjectedFault::kDeadline: return "deadline";
    case InjectedFault::kOom: return "oom";
    case InjectedFault::kCancel: return "cancel";
  }
  return "?";
}

InjectedFault InjectedFaultFromName(std::string_view name) {
  if (name == "deadline") return InjectedFault::kDeadline;
  if (name == "oom") return InjectedFault::kOom;
  if (name == "cancel") return InjectedFault::kCancel;
  return InjectedFault::kNone;
}

void MemoryAccountant::Charge(size_t bytes) {
  for (MemoryAccountant* a = this; a != nullptr; a = a->parent_) {
    size_t now =
        a->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = a->peak_.load(std::memory_order_relaxed);
    while (now > peak && !a->peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
}

void MemoryAccountant::Release(size_t bytes) {
  for (MemoryAccountant* a = this; a != nullptr; a = a->parent_) {
    a->used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

bool MemoryAccountant::OverBudget() const {
  for (const MemoryAccountant* a = this; a != nullptr; a = a->parent_) {
    size_t limit = a->limit_.load(std::memory_order_relaxed);
    if (limit != 0 && a->used_.load(std::memory_order_relaxed) > limit) {
      return true;
    }
  }
  return false;
}

std::string ResourceReport::ToString() const {
  std::string s = "exhausted=" + std::string(ResourceKindName(exhausted));
  if (!detail.empty()) s += " detail=\"" + detail + "\"";
  s += " partial=" + std::string(partial_result ? "yes" : "no");
  s += " peak_bytes=" + std::to_string(peak_bytes);
  if (limit_bytes != 0) s += " limit_bytes=" + std::to_string(limit_bytes);
  if (std::isfinite(deadline_slack_ms)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", deadline_slack_ms);
    s += " deadline_slack_ms=" + std::string(buf);
  }
  s += " cancel_checks=" + std::to_string(cancel_checks);
  for (const PhaseProgress& p : phases) {
    s += "\n  " + p.phase + ": " + p.progress;
  }
  if (!open_phases.empty()) {
    s += "\n  open:";
    for (const std::string& p : open_phases) s += " " + p;
  }
  return s;
}

std::unique_ptr<ExecutionContext> ExecutionContext::CreateChild(
    size_t memory_limit_bytes) {
  return std::unique_ptr<ExecutionContext>(
      new ExecutionContext(this, memory_limit_bytes));
}

ExecutionContext::ExecutionContext(ExecutionContext* parent,
                                   size_t memory_limit_bytes)
    : start_(parent->start_),
      has_deadline_(parent->has_deadline_),
      deadline_(parent->deadline_),
      memory_(memory_limit_bytes, &parent->memory_),
      cancel_(parent->cancel_),
      parent_(parent),
      root_(parent->parent_ == nullptr ? parent : parent->root_) {}

double ExecutionContext::RemainingMs() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(
             deadline_ - std::chrono::steady_clock::now())
      .count();
}

Status ExecutionContext::Trip(ResourceKind kind, std::string detail) {
  // Fault and invariant trips are internal errors (the run is wrong, not
  // merely out of budget); everything else keeps the exhaustion contract.
  StatusCode code =
      (kind == ResourceKind::kFault || kind == ResourceKind::kInvariant)
          ? StatusCode::kInternal
          : StatusCode::kResourceExhausted;
  std::lock_guard<std::mutex> lock(mu_);
  if (kind_ == ResourceKind::kNone) {
    kind_ = kind;
    code_ = code;
    detail_ = std::move(detail);
    tripped_.store(true, std::memory_order_release);
  }
  return Status(code_, detail_);
}

Status ExecutionContext::RecordExhaustion(ResourceKind kind,
                                          std::string detail) {
  return Trip(kind, std::move(detail));
}

void ExecutionContext::InjectFaultAfterChecks(InjectedFault fault,
                                              size_t after_checks) {
  if (fault == InjectedFault::kNone) return;
  ExecutionContext* r = root();
  r->inject_after_checks_ = after_checks;
  if (r->faults_ == nullptr) {
    if (r->owned_faults_ == nullptr) {
      r->owned_faults_ = std::make_unique<FaultRegistry>();
    }
    r->faults_ = r->owned_faults_.get();
  }
  FaultSpec spec;
  spec.site = faults::kGovernorCheck;
  spec.schedule = FaultSchedule::kAfterN;
  spec.n = after_checks;
  spec.action = InjectedFaultName(fault);
  r->faults_->Arm(std::move(spec));
}

Status ExecutionContext::CheckFault(const char* site) {
  FaultRegistry* reg = resolved_faults();
  if (reg == nullptr || !reg->enabled()) return Status::OK();
  FaultFire fire = reg->Hit(site);
  if (!fire.fired) return Status::OK();
  return Trip(ResourceKind::kFault, std::string("injected fault at ") + site);
}

Status ExecutionContext::RecordInvariantViolation(std::string detail) {
  Trip(ResourceKind::kInvariant, detail);
  // Always surface THIS violation: an earlier governed trip (say the
  // deadline that interrupted the round) must not mask the corruption the
  // paranoia check just found while unwinding it.
  return Status::Internal(std::move(detail));
}

Status ExecutionContext::CheckPoint(const char* where) {
  ExecutionContext* r = root();
  size_t check =
      r->checks_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Latched trip (here or in an ancestor): fail fast with its status.
  for (ExecutionContext* c = this; c != nullptr; c = c->parent_) {
    if (c->tripped_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(c->mu_);
      return Status(c->code_, c->detail_);
    }
  }
  (void)check;

  // Registry faults at the governor's own site. Legacy
  // InjectFaultAfterChecks arms an after-N schedule here whose action
  // names the resource to fake; a bare (empty-action) fire is a chaos
  // fail-stop and becomes a kFault → kInternal trip.
  if (FaultRegistry* freg = resolved_faults();
      freg != nullptr && freg->enabled()) {
    FaultFire fire = freg->Hit(faults::kGovernorCheck);
    if (fire.fired) {
      std::string at = "injected fault after " +
                       std::to_string(r->inject_after_checks_) +
                       " checks at " + where;
      switch (InjectedFaultFromName(fire.action)) {
        case InjectedFault::kDeadline:
          return Trip(ResourceKind::kDeadline,
                      "deadline exceeded (" + at + ")");
        case InjectedFault::kOom:
          return Trip(ResourceKind::kMemory,
                      "memory budget exceeded (" + at + ")");
        case InjectedFault::kCancel:
          return Trip(ResourceKind::kCancelled, "cancelled (" + at + ")");
        case InjectedFault::kNone:
          return Trip(ResourceKind::kFault,
                      std::string("injected fault at ") + where);
      }
    }
  }

  if (cancel_.cancelled()) {
    return Trip(ResourceKind::kCancelled,
                std::string("cancelled at ") + where);
  }
  if (has_deadline_ &&
      std::chrono::steady_clock::now() > deadline_) {
    return Trip(ResourceKind::kDeadline,
                std::string("deadline exceeded at ") + where);
  }
  if (memory_.OverBudget()) {
    return Trip(ResourceKind::kMemory,
                "memory budget exceeded at " + std::string(where) + " (" +
                    std::to_string(memory_.used()) + " bytes accounted)");
  }
  return Status::OK();
}

bool ExecutionContext::ShouldStop(const char* where) {
  if (Exhausted()) return true;
  // Strided: only every 64th probe pays for the clock read. The counter
  // races benignly across threads — the stride is a heuristic, not a
  // correctness boundary.
  size_t probe =
      root()->stride_.fetch_add(1, std::memory_order_relaxed);
  if (probe % 64 != 0) return false;
  return !CheckPoint(where).ok();
}

void ExecutionContext::NotePhase(std::string phase, std::string progress) {
  std::lock_guard<std::mutex> lock(mu_);
  phases_.push_back({std::move(phase), std::move(progress)});
}

PhaseScope::PhaseScope(ExecutionContext* ctx, const char* phase)
    : ctx_(ctx),
      phase_(phase),
      // The phase span follows the run's tracer (a session ring when a
      // RunContext is attached, the process ring otherwise).
      span_(ctx != nullptr ? &ctx->tracer() : nullptr, phase) {
  if (ctx_ != nullptr) {
    std::lock_guard<std::mutex> lock(ctx_->mu_);
    ctx_->open_phases_.emplace_back(phase);
  }
}

PhaseScope::~PhaseScope() {
  std::string note = std::move(progress_);
  if (note.empty()) {
    note = (ctx_ != nullptr && ctx_->Exhausted()) ? "aborted" : "done";
  }
  span_.set_detail(note);
  if (ctx_ != nullptr) {
    std::lock_guard<std::mutex> lock(ctx_->mu_);
    // Pop the innermost matching entry (scopes unwind LIFO per thread,
    // but sibling phases on pool threads may interleave in the vector).
    for (auto it = ctx_->open_phases_.rbegin();
         it != ctx_->open_phases_.rend(); ++it) {
      if (*it == phase_) {
        ctx_->open_phases_.erase(std::next(it).base());
        break;
      }
    }
    ctx_->phases_.push_back({phase_, std::move(note)});
  }
}

ResourceReport ExecutionContext::report() const {
  ResourceReport rep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rep.exhausted = kind_;
    rep.detail = detail_;
    rep.phases = phases_;
    rep.open_phases = open_phases_;
  }
  // A trip latched in an ancestor (e.g. the pipeline recorded a budget
  // while this child ran) shows up here too.
  if (rep.exhausted == ResourceKind::kNone && parent_ != nullptr) {
    ResourceReport up = parent_->report();
    rep.exhausted = up.exhausted;
    rep.detail = up.detail;
  }
  rep.peak_bytes = memory_.peak();
  rep.limit_bytes = memory_.limit();
  rep.deadline_slack_ms = RemainingMs();
  rep.cancel_checks = cancel_checks();
  return rep;
}

}  // namespace bddfc
