// E14 — Observability overhead.
//
// The obs substrate's promise mirrors the governor's (E13): "off by
// default, free when off, cheap when on". Disabled, a TraceSpan is one
// relaxed atomic load and metrics publication is a guarded no-op; enabled,
// spans take a mutex + clock read per round/level/stage (never per fact)
// and counters are relaxed adds on thread-private shards. This experiment
// measures the end-to-end cost on the E1 chase shapes and an E3 rewrite
// workload, two ways per rep, interleaved:
//
//   off — tracer disabled, metrics registry disabled (the default state)
//   on  — tracer enabled with the CLI's 1<<16-slot ring, registry enabled
//
// and reports the median paired thread-CPU delta (the E13 estimator: CPU
// time is robust to preemption, pairing cancels drift). The acceptance
// bar is <= 2% overhead with everything on; the micro-benchmarks below pin
// the disabled path at a few nanoseconds per would-be span. Measured
// numbers are recorded in EXPERIMENTS.md.

#include "bench_common.h"

#include <algorithm>
#include <ctime>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/chase/chase.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

double ThreadCpuMs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

void SetObs(bool on) {
  if (on) {
    obs::Tracer::Global().Enable(size_t{1} << 16);
    obs::Tracer::Global().Reset();
    obs::MetricsRegistry::Global().set_enabled(true);
  } else {
    obs::Tracer::Global().Disable();
    obs::MetricsRegistry::Global().set_enabled(false);
  }
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double MedianPairedDelta(const std::vector<double>& off,
                         const std::vector<double>& on) {
  std::vector<double> deltas(off.size());
  for (size_t i = 0; i < off.size(); ++i) deltas[i] = on[i] - off[i];
  return Median(std::move(deltas));
}

// One rep of each workload kind, instrumented end to end. Each sample
// times `block` back-to-back runs so allocator and scheduler spikes on
// the sub-millisecond workloads average out within a sample instead of
// landing on one side of a pair.

double TimeChaseMs(const Program& p, size_t max_rounds, int block) {
  ChaseOptions opts;
  opts.max_rounds = max_rounds;
  opts.max_facts = 5000000;
  double t0 = ThreadCpuMs();
  for (int i = 0; i < block; ++i) {
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
  }
  return ThreadCpuMs() - t0;
}

double TimeRewriteMs(const Program& p, const ConjunctiveQuery& q, int block) {
  RewriteOptions opts;
  opts.max_depth = 10;
  opts.max_queries = 1200;
  double t0 = ThreadCpuMs();
  for (int i = 0; i < block; ++i) {
    RewriteResult r = RewriteQuery(p.theory, q, opts);
    benchmark::DoNotOptimize(r.rewriting.size());
  }
  return ThreadCpuMs() - t0;
}

void PrintOverheadTable() {
  bddfc_bench::Banner("E14",
                      "observability overhead (obs off vs tracing+metrics)");
  std::printf("%-16s %-12s %-12s %-10s\n", "workload", "off ms", "on ms",
              "overhead");

  const int kReps = 31;

  auto run = [&](const char* name, int block, auto&& sample) {
    std::vector<double> off_ms, on_ms;
    // Warm-up pair first; interleave so frequency scaling, allocator
    // state and co-tenants hit both modes equally (E13 methodology), and
    // alternate the within-pair order (ABBA) so "runs second in its
    // pair" — with whatever cache state the first leg leaves behind —
    // does not systematically land on one mode.
    for (int rep = -1; rep < kReps; ++rep) {
      const bool off_first = (rep & 1) == 0;
      SetObs(!off_first);
      double a = sample();
      SetObs(off_first);
      double b = sample();
      if (rep < 0) continue;
      off_ms.push_back(off_first ? a : b);
      on_ms.push_back(off_first ? b : a);
    }
    SetObs(false);
    double off_med = Median(off_ms);
    double delta = MedianPairedDelta(off_ms, on_ms);
    std::printf("%-16s %-12.3f %-12.3f %+.2f%%\n", name, off_med / block,
                (off_med + delta) / block,
                100.0 * delta / std::max(off_med, 1e-9));
  };

  // E1 chase shapes: Example 9's exponential tree, Example 1's long chain.
  Program e9 = Example9();
  run("e1-example9", 1, [&] { return TimeChaseMs(e9, 12, 1); });
  Program e1 = Example1();
  run("e1-example1", 8, [&] { return TimeChaseMs(e1, 400, 8); });

  // E3 rewrite workload: path query on the successor-with-source theory
  // (saturating, hits the subsumption machinery and per-level spans).
  auto ss = ParseProgram(R"(
    u(X) -> exists Z: e(X, Z).
    e(X, Y) -> u(Y).
  )");
  Program ss_p = std::move(ss).ValueOrDie();
  PredId e_pred = std::move(ss_p.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery path = PathQuery(e_pred, 4);
  run("e3-path-k4", 64, [&] { return TimeRewriteMs(ss_p, path, 64); });

  std::printf("acceptance bar: <= 2%% overhead with tracing+metrics on\n");
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the per-operation costs behind the table.
// ---------------------------------------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::Global().Disable();
  for (auto _ : state) {
    obs::TraceSpan span("bench.disabled");
    benchmark::DoNotOptimize(span.id());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer::Global().Enable(size_t{1} << 16);
  for (auto _ : state) {
    obs::TraceSpan span("bench.enabled");
    benchmark::DoNotOptimize(span.id());
  }
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Reset();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.Add(1);
  }
  benchmark::DoNotOptimize(c.Value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  uint64_t v = 0;
  for (auto _ : state) {
    h.Record(++v & 1023);
  }
  benchmark::DoNotOptimize(h.Count());
}
BENCHMARK(BM_HistogramRecord);

void BM_DisabledPublicationGuard(benchmark::State& state) {
  // What every engine pays per run when metrics are off: one relaxed load.
  obs::MetricsRegistry::Global().set_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::MetricsRegistry::Global().enabled());
  }
}
BENCHMARK(BM_DisabledPublicationGuard);

void BM_ExportChromeJson(benchmark::State& state) {
  obs::Tracer::Global().Enable(size_t{1} << 12);
  for (int i = 0; i < 4096; ++i) {
    obs::TraceSpan span("bench.fill");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::Tracer::Global().ExportChromeJson().size());
  }
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Reset();
}
BENCHMARK(BM_ExportChromeJson);

}  // namespace

BDDFC_BENCH_MAIN(PrintOverheadTable)
