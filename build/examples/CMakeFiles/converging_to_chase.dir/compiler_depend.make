# Empty compiler generated dependencies file for converging_to_chase.
# This may be replaced when dependencies are built.
