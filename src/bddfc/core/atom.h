// Atoms: a predicate applied to a tuple of terms.

#ifndef BDDFC_CORE_ATOM_H_
#define BDDFC_CORE_ATOM_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bddfc/base/interner.h"
#include "bddfc/core/signature.h"
#include "bddfc/core/term.h"

namespace bddfc {

/// An atomic formula R(t_1, ..., t_k); terms may be variables or constants.
struct Atom {
  PredId pred = -1;
  std::vector<TermId> args;

  Atom() = default;
  Atom(PredId p, std::vector<TermId> a) : pred(p), args(std::move(a)) {}

  bool operator==(const Atom& other) const {
    return pred == other.pred && args == other.args;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }

  /// Lexicographic order; used for canonical forms of queries.
  bool operator<(const Atom& other) const {
    if (pred != other.pred) return pred < other.pred;
    return args < other.args;
  }

  /// True iff no argument is a variable.
  bool IsGround() const {
    return std::all_of(args.begin(), args.end(), IsConst);
  }

  /// Appends the distinct variables of this atom to `out` (preserving first
  /// occurrence order, skipping ones already present).
  void CollectVariables(std::vector<TermId>* out) const {
    for (TermId t : args) {
      if (IsVar(t) && std::find(out->begin(), out->end(), t) == out->end()) {
        out->push_back(t);
      }
    }
  }

  /// Renders the atom using the signature's names; variables print as ?k or
  /// the supplied namer.
  std::string ToString(const Signature& sig) const;
};

struct AtomHash {
  size_t operator()(const Atom& a) const {
    size_t seed = std::hash<int32_t>()(a.pred);
    return HashRange(a.args.begin(), a.args.end(), seed);
  }
};

/// Renders a term: constant name from the signature, or ?k for variables.
std::string TermToString(const Signature& sig, TermId t);

}  // namespace bddfc

#endif  // BDDFC_CORE_ATOM_H_
