file(REMOVE_RECURSE
  "CMakeFiles/bddfc_base.dir/base/status.cc.o"
  "CMakeFiles/bddfc_base.dir/base/status.cc.o.d"
  "libbddfc_base.a"
  "libbddfc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
