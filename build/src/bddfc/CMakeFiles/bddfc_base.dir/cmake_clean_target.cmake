file(REMOVE_RECURSE
  "libbddfc_base.a"
)
