#include "bddfc/eval/containment.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <vector>

namespace bddfc {

namespace {

/// Backtracking search for query-to-query homomorphisms.
struct QHomSearch {
  const ConjunctiveQuery& from;
  const ConjunctiveQuery& to;
  const std::function<bool(const QueryHom&)>* on_hom;
  QueryHom hom;
  bool stopped = false;
  /// Atoms of `to` grouped by predicate for candidate lookup.
  std::unordered_map<PredId, std::vector<const Atom*>> to_by_pred;

  QHomSearch(const ConjunctiveQuery& f, const ConjunctiveQuery& t,
             const std::function<bool(const QueryHom&)>* cb)
      : from(f), to(t), on_hom(cb) {
    for (const Atom& a : to.atoms) to_by_pred[a.pred].push_back(&a);
  }

  TermId Map(TermId t) const {
    if (IsConst(t)) return t;
    auto it = hom.find(t);
    return it == hom.end() ? t : it->second;
  }

  bool TryAtom(const Atom& src, const Atom& dst,
               std::vector<TermId>* newly_bound) {
    if (src.pred != dst.pred || src.args.size() != dst.args.size()) {
      return false;
    }
    for (size_t i = 0; i < src.args.size(); ++i) {
      TermId t = Map(src.args[i]);
      if (IsConst(t) || hom.count(src.args[i])) {
        if (t != dst.args[i]) return false;
      } else {
        hom.emplace(src.args[i], dst.args[i]);
        newly_bound->push_back(src.args[i]);
      }
    }
    return true;
  }

  void Search(size_t depth) {
    if (stopped) return;
    if (depth == from.atoms.size()) {
      if (!(*on_hom)(hom)) stopped = true;
      return;
    }
    const Atom& src = from.atoms[depth];
    auto it = to_by_pred.find(src.pred);
    if (it == to_by_pred.end()) return;
    std::vector<TermId> newly_bound;
    for (const Atom* dst : it->second) {
      newly_bound.clear();
      if (TryAtom(src, *dst, &newly_bound)) Search(depth + 1);
      for (TermId v : newly_bound) hom.erase(v);
      if (stopped) return;
    }
  }
};

}  // namespace

void EnumerateQueryHoms(const ConjunctiveQuery& from,
                        const ConjunctiveQuery& to,
                        const std::function<bool(const QueryHom&)>& on_hom) {
  QHomSearch search(from, to, &on_hom);
  // Pin answer variables pairwise when both queries expose them.
  if (!from.answer_vars.empty() && !to.answer_vars.empty()) {
    if (from.answer_vars.size() != to.answer_vars.size()) return;
    for (size_t i = 0; i < from.answer_vars.size(); ++i) {
      TermId src = from.answer_vars[i];
      TermId dst = to.answer_vars[i];
      if (IsVar(src)) {
        auto [it, inserted] = search.hom.emplace(src, dst);
        if (!inserted && it->second != dst) return;
      } else if (src != dst) {
        return;
      }
    }
  }
  search.Search(0);
}

bool HasQueryHom(const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  bool found = false;
  EnumerateQueryHoms(from, to, [&](const QueryHom&) {
    found = true;
    return false;
  });
  return found;
}

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return HasQueryHom(q2, q1);
}

bool AreHomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return HasQueryHom(a, b) && HasQueryHom(b, a);
}

ConjunctiveQuery CoreOf(const ConjunctiveQuery& q) {
  ConjunctiveQuery cur = q;
  // Drop duplicate atoms first.
  std::sort(cur.atoms.begin(), cur.atoms.end());
  cur.atoms.erase(std::unique(cur.atoms.begin(), cur.atoms.end()),
                  cur.atoms.end());

  bool changed = true;
  while (changed) {
    changed = false;
    // A proper retraction is a hom from cur to cur whose image misses some
    // variable; folding through it yields a smaller equivalent query.
    std::vector<TermId> vars = cur.Variables();
    std::unordered_set<TermId> answers(cur.answer_vars.begin(),
                                       cur.answer_vars.end());
    QueryHom retraction;
    bool found = false;
    EnumerateQueryHoms(cur, cur, [&](const QueryHom& h) {
      std::unordered_set<TermId> image;
      for (TermId v : vars) {
        auto it = h.find(v);
        TermId img = it == h.end() ? v : it->second;
        if (IsVar(img)) image.insert(img);
      }
      if (image.size() < vars.size()) {
        // Answer variables must be fixed by the retraction.
        for (TermId v : cur.answer_vars) {
          auto it = h.find(v);
          if (it != h.end() && it->second != v) return true;  // keep looking
        }
        retraction = h;
        found = true;
        return false;
      }
      return true;
    });
    if (found) {
      ConjunctiveQuery next;
      next.answer_vars = cur.answer_vars;
      for (const Atom& a : cur.atoms) {
        Atom b = a;
        for (TermId& t : b.args) {
          if (IsVar(t)) {
            auto it = retraction.find(t);
            if (it != retraction.end()) t = it->second;
          }
        }
        next.atoms.push_back(std::move(b));
      }
      std::sort(next.atoms.begin(), next.atoms.end());
      next.atoms.erase(std::unique(next.atoms.begin(), next.atoms.end()),
                       next.atoms.end());
      cur = std::move(next);
      changed = true;
    }
  }
  return cur;
}

bool UcqContainedIn(const UnionOfCQs& a, const UnionOfCQs& b) {
  return std::all_of(a.begin(), a.end(), [&](const ConjunctiveQuery& qa) {
    return std::any_of(b.begin(), b.end(), [&](const ConjunctiveQuery& qb) {
      return IsContainedIn(qa, qb);
    });
  });
}

UnionOfCQs MinimizeUcq(const UnionOfCQs& ucq) {
  // Core each disjunct first so equivalence classes collapse to canonical
  // minimal representatives, then drop disjuncts contained in others.
  UnionOfCQs cored;
  cored.reserve(ucq.size());
  for (const ConjunctiveQuery& q : ucq) cored.push_back(CoreOf(q));

  std::vector<bool> dead(cored.size(), false);
  for (size_t i = 0; i < cored.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < cored.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (IsContainedIn(cored[j], cored[i])) {
        // q_j ⊆ q_i: q_j is redundant, unless they are equivalent and j < i
        // (keep the earliest representative).
        if (IsContainedIn(cored[i], cored[j]) && j < i) continue;
        dead[j] = true;
      }
    }
  }
  UnionOfCQs out;
  for (size_t i = 0; i < cored.size(); ++i) {
    if (!dead[i]) out.push_back(cored[i]);
  }
  return out;
}

}  // namespace bddfc
