file(REMOVE_RECURSE
  "libbddfc_types.a"
)
