# Empty compiler generated dependencies file for bddfc.
# This may be replaced when dependencies are built.
