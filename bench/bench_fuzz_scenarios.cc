// E12 — throughput of the differential-testing subsystem: scenario
// generation rate, per-oracle check cost over a seeded batch, and the
// shrinker on an injected chase-dedup fault. Expected shape: generation is
// microseconds; parser-roundtrip and chase-agreement dominate the oracle
// mix at small scenario sizes; pipeline-certify is the long tail (it runs
// the full Theorem-2 pipeline); shrinking costs tens of oracle replays.

#include "bench_common.h"

#include "bddfc/testing/fuzzer.h"
#include "bddfc/testing/oracles.h"
#include "bddfc/testing/scenario.h"
#include "bddfc/testing/shrinker.h"
#include "bddfc/workload/generators.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E12", "differential-oracle fuzzing throughput");
  const OracleConfig config;
  std::printf("%-20s %-7s %-7s %-7s\n", "oracle", "pass", "skip", "fail");
  constexpr size_t kRuns = 40;
  for (const Oracle* oracle : AllOracles()) {
    size_t pass = 0, skip = 0, fail = 0;
    for (size_t i = 0; i < kRuns; ++i) {
      Scenario s = GenerateScenario(Rng::Mix(11, i));
      switch (oracle->Check(s, config).kind) {
        case OracleOutcome::Kind::kPass: ++pass; break;
        case OracleOutcome::Kind::kSkip: ++skip; break;
        case OracleOutcome::Kind::kFail: ++fail; break;
      }
    }
    std::printf("%-20s %-7zu %-7zu %-7zu\n",
                std::string(oracle->name()).c_str(), pass, skip, fail);
  }

  // Shrinker on the fuzzer's self-test fault: report the reduction.
  FuzzOptions opts;
  opts.seed = 1;
  opts.runs = 50;
  opts.config.chase_fault = ChaseFault::kSkipTriggerDedup;
  opts.oracle = "chase-agreement";
  FuzzReport report = RunFuzzer(opts);
  if (!report.failures.empty()) {
    const FuzzFailure& f = report.failures[0];
    std::printf("shrink: seed=%llu  ->  %zu rules + %zu facts "
                "(%zu attempts, %zu removals)\n",
                static_cast<unsigned long long>(f.scenario_seed),
                f.minimized.theory.rules().size(),
                f.minimized.instance.NumFacts(), f.shrink_stats.attempts,
                f.shrink_stats.removals);
  } else {
    std::printf("shrink: no failure within %zu runs (unexpected)\n",
                report.runs_executed);
  }
}

void BM_GenerateScenario(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    Scenario s = GenerateScenario(Rng::Mix(3, i++));
    benchmark::DoNotOptimize(s.instance.NumFacts());
  }
}
BENCHMARK(BM_GenerateScenario);

void BM_OracleCheck(benchmark::State& state) {
  const Oracle* oracle = AllOracles()[static_cast<size_t>(state.range(0))];
  const OracleConfig config;
  std::vector<Scenario> batch;
  for (size_t i = 0; i < 16; ++i) {
    batch.push_back(GenerateScenario(Rng::Mix(5, i)));
  }
  size_t i = 0;
  for (auto _ : state) {
    const OracleOutcome out = oracle->Check(batch[i++ % batch.size()], config);
    benchmark::DoNotOptimize(out.kind);
  }
  state.SetLabel(std::string(oracle->name()));
}
BENCHMARK(BM_OracleCheck)->DenseRange(0, 4);

void BM_ShrinkInjectedFault(benchmark::State& state) {
  // The first seed-1 scenario the injected chase-dedup fault fails on.
  OracleConfig config;
  config.chase_fault = ChaseFault::kSkipTriggerDedup;
  const Oracle* oracle = FindOracle("chase-agreement");
  Scenario failing;
  bool found = false;
  for (size_t i = 0; i < 50 && !found; ++i) {
    Scenario s = GenerateScenario(Rng::Mix(1, i));
    if (oracle->Check(s, config).failed()) {
      failing = s;
      found = true;
    }
  }
  for (auto _ : state) {
    if (!found) break;
    Scenario min = ShrinkScenario(failing, *oracle, config);
    benchmark::DoNotOptimize(min.instance.NumFacts());
  }
}
BENCHMARK(BM_ShrinkInjectedFault);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
