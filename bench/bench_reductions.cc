// E10 — Normalization and reduction blowups: rules and predicates before
// vs after (♠5) normalization, §5.1 head binarization, §5.3 multi-head
// elimination and the §5.2 ternary encoding. Expected shapes: (♠5) at most
// triples the TGDs; ternarization adds (arity − 2) cells per wide atom.

#include "bench_common.h"

#include "bddfc/reductions/reductions.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

void Report(const char* name, size_t rules_in, int preds_in,
            const Result<Theory>& out) {
  std::printf("%-14s %-8zu %-8d %-10s %-10s\n", name, rules_in, preds_in,
              out.ok() ? std::to_string(out.value().size()).c_str() : "-",
              out.ok() ? std::to_string(out.value().sig().num_predicates())
                             .c_str()
                       : StatusCodeName(out.status().code()));
}

void PrintTable() {
  bddfc_bench::Banner("E10", "reduction blowups (rules / predicates)");
  std::printf("%-14s %-8s %-8s %-10s %-10s\n", "transform", "rules",
              "preds", "rules'", "preds'");

  {
    Program p = Example1();
    size_t r = p.theory.size();
    int q = p.theory.sig().num_predicates();
    Report("spade5-ex1", r, q, NormalizeSpade5(p.theory));
  }
  {
    Program p = Example9();
    size_t r = p.theory.size();
    int q = p.theory.sig().num_predicates();
    Report("spade5-ex9", r, q, NormalizeSpade5(p.theory));
  }
  {
    auto p = ParseProgram("e(X, Y) -> exists Z1, Z2: t(Y, Z1, Z2).");
    size_t r = p.value().theory.size();
    int q = p.value().theory.sig().num_predicates();
    Report("binheads-t3", r, q, BinarizeHeads(p.value().theory));
  }
  {
    Program p = Section54();
    size_t r = p.theory.size();
    int q = p.theory.sig().num_predicates();
    auto tern = TernarizeTheory(p.theory);
    std::printf("%-14s %-8zu %-8d %-10s %-10s\n", "ternary-5.4", r, q,
                tern.ok() ? std::to_string(tern.value().theory.size()).c_str()
                          : "-",
                tern.ok()
                    ? std::to_string(
                          tern.value().theory.sig().num_predicates())
                          .c_str()
                    : StatusCodeName(tern.status().code()));
  }
  {
    auto p = ParseProgram(R"(
      p(X) -> q(X, Z), u(Z).
      p(X) -> s(X), v(X).
    )");
    size_t r = p.value().theory.size();
    int q = p.value().theory.sig().num_predicates();
    Report("singlehead", r, q, SingleHeadify(p.value().theory));
  }
}

void BM_NormalizeSpade5(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto sig = std::make_shared<Signature>();
    Theory t = RandomAcyclicBinaryTheory(sig, 4,
                                         static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(0)), 3);
    state.ResumeTiming();
    auto out = NormalizeSpade5(t);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_NormalizeSpade5)->Arg(4)->Arg(16)->Arg(64);

void BM_Ternarize(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = Section54();
    state.ResumeTiming();
    auto out = TernarizeTheory(p.theory);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_Ternarize);

void BM_HideQuery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = Example7();
    auto q = ParseQuery("e(X, X)", p.theory.signature_ptr().get());
    state.ResumeTiming();
    auto out = HideQuery(p.theory, q.value());
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_HideQuery);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
