# Empty dependencies file for bench_finite_model.
# This may be replaced when dependencies are built.
