// End-to-end tests of the CLI exit-code contract (tools/bddfc_cli.cc):
//
//   0  success                      2  usage / parse error
//   1  negative semantic outcome    3  resource exhausted
//
// and of the fuzzer's 0/1/2 contract plus its fault-injection flags. The
// test executes the real binaries (paths injected by CMake) and inspects
// the process exit status, so it covers argument parsing, the governor
// wiring and the report printing that unit tests cannot reach.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bddfc/base/timescale.h"

extern char** environ;

namespace {

namespace fs = std::filesystem;
using bddfc::ScaledMs;

/// Executes `binary args...` with stdout/stderr discarded; returns the exit
/// code (or -1 when the process died abnormally).
int RunBinary(const std::string& binary, const std::string& args) {
  std::string cmd = binary + " " + args + " > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

/// Writes a program under the test's scratch dir and returns its path.
std::string WriteProgram(const std::string& name, const std::string& text) {
  fs::path dir = fs::current_path() / "exit_code_scratch";
  fs::create_directories(dir);
  fs::path path = dir / name;
  std::ofstream out(path);
  out << text;
  return path.string();
}

const char* kInfiniteTc =
    "e(X, Y), e(Y, Z) -> e(X, Z).\n"
    "e(X, Y) -> exists W: e(Y, W).\n"
    "e(a, b).\n"
    "?- e(X, X).\n";

const char* kTerminating =
    "e(X, Y) -> exists Z: r(Y, Z).\n"
    "e(a, b).\n"
    "?- r(X, X).\n";

TEST(CliExitCodeTest, SuccessIsZero) {
  std::string prog = WriteProgram("terminating.dlg", kTerminating);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + prog), 0);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "rewrite " + prog), 0);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "classify " + prog), 0);
  // The chase terminates avoiding r(X, X): a counter-model exists.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "model " + prog), 0);
}

TEST(CliExitCodeTest, UsageAndParseErrorsAreTwo) {
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, ""), 2);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "frobnicate nope.dlg"), 2);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase /nonexistent/no.dlg"), 2);
  std::string bad = WriteProgram("bad.dlg", "this is not datalog (\n");
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + bad), 2);
  std::string prog = WriteProgram("tc.dlg", kInfiniteTc);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + prog + " --deadline-ms -5"), 2);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + prog + " --mem-budget-mb junk"), 2);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + prog + " --paranoia=bogus"), 2);
}

TEST(CliExitCodeTest, NegativeSemanticOutcomeIsOne) {
  // The query e(X, Y) is certainly true: no counter-model exists.
  std::string certain = WriteProgram("certain.dlg",
                                     "e(X, Y) -> exists Z: e(Y, Z).\n"
                                     "e(a, b).\n"
                                     "?- e(X, Y).\n");
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "model " + certain), 1);
  // Every finite model of transitive closure + totality has a self-loop:
  // the exhaustive search (0 extra elements) finds nothing.
  std::string tc = WriteProgram("tc.dlg", kInfiniteTc);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "search " + tc + " 0"), 1);
}

TEST(CliExitCodeTest, ResourceExhaustionIsThree) {
  std::string tc = WriteProgram("tc.dlg", kInfiniteTc);
  // Count budget (max_rounds) on a diverging chase.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + tc + " 5"), 3);
  // Wall-clock deadline.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH,
                "chase " + tc + " 1000000 --deadline-ms 20"), 3);
  // Memory budget.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH,
                "chase " + tc + " 1000000 --mem-budget-mb 1"), 3);
  // Governed pipeline under a deadline.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "model " + tc + " --deadline-ms 1"), 3);
}

// A cancellation signal mid-run flips the CancelToken: the command must
// drain at the next cooperative check and exit 3 (resource exhausted),
// not die on the signal. SIGINT (Ctrl-C) and SIGTERM (the kill(1) and
// service-manager default) share one handler and one contract. Spawns
// the diverging chase, signals it shortly after, and bounds how long the
// cooperative drain may take; delays scale under sanitizers (timescale.h).
void ExpectSignalDrainsAsExhausted(int sig, const std::string& prog_name) {
  std::string tc = WriteProgram(prog_name, kInfiniteTc);
  std::string cli = BDDFC_CLI_PATH;
  std::vector<std::string> arg_strings = {cli, "chase", tc, "1000000"};
  std::vector<char*> argv;
  for (std::string& s : arg_strings) argv.push_back(s.data());
  argv.push_back(nullptr);
  // Discard the child's output so a full pipe can never block the drain.
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, 1, "/dev/null", O_WRONLY, 0);
  posix_spawn_file_actions_addopen(&actions, 2, "/dev/null", O_WRONLY, 0);
  pid_t pid = -1;
  ASSERT_EQ(posix_spawn(&pid, cli.c_str(), &actions, nullptr, argv.data(),
                        environ),
            0);
  posix_spawn_file_actions_destroy(&actions);

  // Let it get into the chase, then signal it.
  std::this_thread::sleep_for(std::chrono::milliseconds(ScaledMs(100)));
  ASSERT_EQ(kill(pid, sig), 0);

  // The cooperative drain happens at the next round boundary; poll with a
  // generous scaled timeout rather than blocking forever on a hang.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(ScaledMs(10000));
  int status = 0;
  pid_t done = 0;
  while ((done = waitpid(pid, &status, WNOHANG)) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (done == 0) {
    kill(pid, SIGKILL);
    waitpid(pid, &status, 0);
    FAIL() << "CLI did not drain within the scaled timeout after signal "
           << sig;
  }
  ASSERT_TRUE(WIFEXITED(status))
      << "CLI died on signal " << sig
      << " instead of draining cooperatively";
  EXPECT_EQ(WEXITSTATUS(status), 3);
}

TEST(CliExitCodeTest, SigintCancelsCooperativelyAsExhausted) {
  ExpectSignalDrainsAsExhausted(SIGINT, "sigint_tc.dlg");
}

TEST(CliExitCodeTest, SigtermCancelsCooperativelyAsExhausted) {
  ExpectSignalDrainsAsExhausted(SIGTERM, "sigterm_tc.dlg");
}

TEST(CliExitCodeTest, TraceAndMetricsOutWriteValidatedFiles) {
  // --trace-out / --metrics-out must not change the exit code, and the
  // trace must satisfy the checker's contract (well-formed, monotone ts
  // per tid, balanced B/E) with the eight pipeline stage spans present.
  std::string prog = WriteProgram("obs_example7.dlg",
                                  "e(X, Y) -> exists Z: e(Y, Z).\n"
                                  "e(X, Y), e(X1, Y) -> r(X, X1).\n"
                                  "e(a, b).\n"
                                  "?- e(X, X).\n");
  fs::path dir = fs::current_path() / "exit_code_scratch";
  std::string trace = (dir / "trace.json").string();
  std::string metrics = (dir / "metrics.json").string();
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "model " + prog + " --trace-out=" +
                                          trace + " --metrics-out=" + metrics),
            0);
  EXPECT_EQ(RunBinary(BDDFC_TRACE_CHECK_PATH,
                      trace +
                          " --require=pipeline.run --require=hide"
                          " --require=normalize --require=chase.run"
                          " --require=skeleton --require=color"
                          " --require=quotient --require=saturate"
                          " --require=certify"),
            0);
  // A required span that never ran must fail the check...
  EXPECT_EQ(RunBinary(BDDFC_TRACE_CHECK_PATH,
                      trace + " --require=no.such.span"),
            1);
  // ...and non-JSON input must be rejected as malformed.
  std::string bad = WriteProgram("bad_trace.json", "this is not json\n");
  EXPECT_EQ(RunBinary(BDDFC_TRACE_CHECK_PATH, bad), 1);
  EXPECT_EQ(RunBinary(BDDFC_TRACE_CHECK_PATH, ""), 2);
  // The metrics snapshot is written and non-trivial.
  std::ifstream in(metrics);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("bddfc.chase.runs"), std::string::npos);
}

TEST(FuzzExitCodeTest, ContractIsZeroOneTwo) {
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--list-oracles"), 0);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--bogus-flag"), 2);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--inject-bug=unknown"), 2);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--inject-fault=unknown"), 2);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--oracle=no-such-oracle"), 2);
  // A small clean campaign of the governor-prefix oracle passes...
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH,
                "--runs=10 --oracle=governor-prefix --inject-fault=deadline"),
            0);
  // ...and catches the deliberately torn exhaustion path (self-test).
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH,
                "--runs=60 --oracle=governor-prefix --inject-fault=deadline "
                "--inject-bug=torn-exhaust --no-shrink"),
            1);
}

TEST(FuzzExitCodeTest, ChaosAndParanoiaFlags) {
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--paranoia=bogus"), 2);
  // A small chaos campaign: every random fault plan must recover to the
  // byte-identical fault-free result under the supervisor.
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH,
                "--runs=6 --seed=11 --oracle=chaos-recovery --chaos=3 "
                "--chaos-seed=2 --paranoia=cheap"),
            0);
  // Inverted self-test: a non-recoverable injected corruption (the sink
  // dropping duplicate-derived groups) MUST be caught when paranoia is
  // on — the campaign has to fail, or the checks are dead code.
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH,
                "--runs=60 --seed=1 --oracle=chase-agreement "
                "--inject-bug=sink-drop-dup --paranoia=cheap --no-shrink"),
            1);
}

}  // namespace
