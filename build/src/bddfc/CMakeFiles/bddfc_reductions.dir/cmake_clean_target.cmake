file(REMOVE_RECURSE
  "libbddfc_reductions.a"
)
