// E1 — Chase growth |Chase^i(D, T)| per depth, restricted (non-oblivious)
// vs oblivious, on the paper's example theories. Expected shapes: Example 1
// and Example 7 grow linearly (one chain), Example 9 exponentially (binary
// tree); the oblivious chase never reuses witnesses so it dominates the
// restricted one wherever witnesses pre-exist.

#include "bench_common.h"

#include "bddfc/chase/chase.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E1", "chase growth per depth (facts)");
  struct Row {
    const char* name;
    Program program;
  };
  // cyclic-db: witnesses pre-exist, so the restricted chase stops at once
  // while the blind chase keeps inventing (the defining difference).
  Result<Program> cyclic = ParseProgram(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b). e(b, a).
  )");
  Row rows[] = {{"example1", Example1()},
                {"example7", Example7()},
                {"example9", Example9()},
                {"section5.5", Section55()},
                {"cyclic-db", std::move(cyclic).ValueOrDie()}};
  std::printf("%-12s %-10s", "theory", "mode");
  for (int d = 2; d <= 10; d += 2) std::printf(" d=%-6d", d);
  std::printf("\n");
  for (Row& row : rows) {
    for (bool oblivious : {false, true}) {
      std::printf("%-12s %-10s", row.name,
                  oblivious ? "oblivious" : "restricted");
      for (int d = 2; d <= 10; d += 2) {
        ChaseOptions opts;
        opts.max_rounds = static_cast<size_t>(d);
        opts.max_facts = 1000000;
        opts.oblivious = oblivious;
        ChaseResult r = RunChase(row.program.theory, row.program.instance,
                                 opts);
        std::printf(" %-8zu", r.structure.NumFacts());
      }
      std::printf("\n");
    }
  }
}

void BM_RestrictedChase(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = Example9();
    state.ResumeTiming();
    ChaseOptions opts;
    opts.max_rounds = static_cast<size_t>(state.range(0));
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    state.counters["facts"] = static_cast<double>(r.structure.NumFacts());
  }
}
BENCHMARK(BM_RestrictedChase)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_ObliviousChase(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = Example9();
    state.ResumeTiming();
    ChaseOptions opts;
    opts.max_rounds = static_cast<size_t>(state.range(0));
    opts.oblivious = true;
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
  }
}
BENCHMARK(BM_ObliviousChase)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_DatalogSaturation(benchmark::State& state) {
  // Transitive closure of a path: the classic datalog saturation load.
  for (auto _ : state) {
    state.PauseTiming();
    auto parsed = ParseProgram("e(X, Y), e(Y, Z) -> e(X, Z).");
    Program& p = parsed.value();
    TermId prev = p.theory.mutable_sig().AddConstant("c0");
    PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
    for (int i = 1; i <= state.range(0); ++i) {
      TermId next = p.theory.mutable_sig().AddConstant(
          "c" + std::to_string(i));
      p.instance.AddFact(e, {prev, next});
      prev = next;
    }
    state.ResumeTiming();
    ChaseResult r = RunChase(p.theory, p.instance);
    benchmark::DoNotOptimize(r.structure.NumFacts());
  }
}
BENCHMARK(BM_DatalogSaturation)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
