#include "bddfc/types/conservativity.h"

namespace bddfc {

ConservativityReport CheckConservativeUpTo(const Structure& c,
                                           const Quotient& q, int m,
                                           const std::vector<PredId>& sigma,
                                           size_t max_positions) {
  ConservativityReport out;
  TypeOracleOptions opts;
  opts.num_variables = m;
  opts.predicates = sigma;
  opts.max_patterns = max_positions;
  TypeOracle oracle(q.structure, c, opts);
  for (TermId e : c.Domain()) {
    TermId image = q.Project(e);
    if (image < 0 || !oracle.TypeContained(image, e)) {
      if (oracle.budget_exhausted()) {
        out.status = Status::ResourceExhausted(
            "conservativity check exceeded max_patterns");
        return out;
      }
      out.failing_element = e;
      out.patterns_checked = oracle.patterns_checked();
      return out;
    }
  }
  out.patterns_checked = oracle.patterns_checked();
  out.conservative = true;
  return out;
}

ConservativityProbe ProbeConservativity(const Structure& c, int m, int n,
                                        size_t max_positions) {
  ConservativityProbe out;
  Result<Coloring> coloring = NaturalColoring(c, m);
  if (!coloring.ok()) {
    out.status = coloring.status();
    return out;
  }
  const Coloring& col = coloring.value();

  // Partition the colored structure by ≡_n over the full (colored)
  // signature: exact when the game fits the budget, ball refinement as the
  // fallback.
  TypePartition partition;
  Result<TypePartition> exact =
      ExactPtpPartition(col.colored, n, {}, max_positions);
  if (exact.ok()) {
    partition = std::move(exact).value();
    out.used_exact_partition = true;
  } else {
    partition = BallPartition(col.colored, n);
  }

  Quotient q = BuildQuotient(col.colored, partition);
  out.num_classes = partition.num_classes;
  out.quotient_size = static_cast<int>(q.structure.Domain().size());

  ConservativityReport rep = CheckConservativeUpTo(
      col.colored, q, m, col.base_predicates, max_positions);
  out.status = rep.status;
  out.conservative = rep.conservative;
  return out;
}

}  // namespace bddfc
