// Tests for the base utilities: Status, Result, Interner, hashing, the
// thread pool, and the striped concurrent tables.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bddfc/base/interner.h"
#include "bddfc/base/status.h"
#include "bddfc/base/striped_table.h"
#include "bddfc/base/thread_pool.h"

namespace bddfc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  } cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::ResourceExhausted("d"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
      {Status::Unknown("h"), StatusCode::kUnknown, "Unknown"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueTransfers) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 3);
}

Status FailThrough() { return Status::Internal("inner"); }

Status UsesReturnNotOk() {
  BDDFC_RETURN_NOT_OK(FailThrough());
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> UsesAssignOrReturn(int x) {
  BDDFC_ASSIGN_OR_RETURN(int h, Half(x));
  return h + 1;
}

TEST(ResultTest, MacrosPropagateErrors) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kInternal);
  Result<int> ok = UsesAssignOrReturn(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 3);
  EXPECT_EQ(UsesAssignOrReturn(3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InternerTest, InternIsIdempotentAndDense) {
  Interner in;
  int32_t a = in.Intern("alpha");
  int32_t b = in.Intern("beta");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.size(), 2);
  EXPECT_EQ(in.NameOf(a), "alpha");
  EXPECT_EQ(in.Find("beta"), b);
  EXPECT_EQ(in.Find("gamma"), -1);
  EXPECT_TRUE(in.Contains("alpha"));
  EXPECT_FALSE(in.Contains("gamma"));
}

TEST(InternerTest, SurvivesManyInsertions) {
  Interner in;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.Intern("s" + std::to_string(i)), i);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.Find("s" + std::to_string(i)), i);
  }
}

TEST(HashTest, HashRangeIsOrderSensitive) {
  std::vector<int> a = {1, 2, 3};
  std::vector<int> b = {3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
  EXPECT_EQ(HashRange(a.begin(), a.end()), HashRange(a.begin(), a.end()));
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(64);
    for (size_t i = 0; i < hits.size(); ++i) {
      pool.Submit([&hits, i] {
        ++hits[i];
        return Status::OK();
      });
    }
    EXPECT_TRUE(pool.Wait().ok());
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, WaitAggregatesFirstFailureInSubmissionOrder) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) {
    pool.Submit([i] {
      if (i == 7) return Status::InvalidArgument("seven");
      if (i == 21) return Status::Internal("twenty-one");
      return Status::OK();
    });
  }
  Status st = pool.Wait();
  // Deterministic regardless of completion order: the earliest submitted
  // failure wins.
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "seven");
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 3; ++batch) {
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] {
        ++count;
        return Status::OK();
      });
    }
    EXPECT_TRUE(pool.Wait().ok());
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ThreadPoolTest, WaitOnEmptyPoolIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Wait().ok());
  ThreadPool inline_pool(1);
  EXPECT_TRUE(inline_pool.Wait().ok());
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  // Work still queued when the pool is destroyed must run, not leak: the
  // destructor drains the queue before joining. Submit far more tasks
  // than threads and destroy without calling Wait().
  for (size_t threads : {2u, 8u}) {
    std::atomic<int> count{0};
    {
      ThreadPool pool(threads);
      for (int i = 0; i < 200; ++i) {
        pool.Submit([&count] {
          ++count;
          return Status::OK();
        });
      }
      // No Wait(): destruction races the workers for the queue.
    }
    EXPECT_EQ(count.load(), 200) << "threads " << threads;
  }
}

TEST(ThreadPoolTest, InlinePoolDestructionRunsQueuedWork) {
  // A 1-thread pool has no workers at all — queued tasks normally run
  // inline in Wait(), so the destructor is the only thing left to run
  // them when Wait() was never called.
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        ++count;
        return Status::OK();
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ShardHintedBacklogIsStolenByIdleWorkers) {
  // Home every task on one queue: the other workers' queues are empty,
  // so any work they do must come from stealing. Each task sleeps long
  // enough that one worker cannot drain the backlog alone before the
  // others wake up.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit(/*shard_hint=*/0, [&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++count;
      return Status::OK();
    });
  }
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 64);
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(ThreadPoolTest, ShardHintsSpreadAcrossQueuesDeterministically) {
  // Different hints land on different home queues; every task still runs
  // exactly once and statuses aggregate in submission order.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(48);
  for (size_t i = 0; i < hits.size(); ++i) {
    pool.Submit(/*shard_hint=*/i, [&hits, i] {
      ++hits[i];
      return i == 17 ? Status::Internal("seventeen") : Status::OK();
    });
  }
  Status st = pool.Wait();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(StripedSetTest, InsertReturnsTrueOnlyWhenAbsent) {
  StripedSet<int> set;
  EXPECT_TRUE(set.Insert(7));
  EXPECT_FALSE(set.Insert(7));
  EXPECT_TRUE(set.Insert(8));
  EXPECT_EQ(set.Size(), 2u);
  EXPECT_EQ(set.DrainSorted(), (std::vector<int>{7, 8}));
  EXPECT_EQ(set.Size(), 0u);  // drain moves everything out
}

TEST(StripedSetTest, ConcurrentOverlappingInsertsDedupExactly) {
  // 8 threads insert heavily overlapping ranges; the surviving key set
  // and the number of successful (first) inserts must equal the distinct
  // count — the property the parallel chase's dedup counters rely on.
  StripedSet<int> set;
  constexpr int kDistinct = 2000;
  std::atomic<size_t> fresh{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&set, &fresh, t] {
      for (int i = 0; i < kDistinct; ++i) {
        // Every thread covers all keys, in a thread-dependent order.
        int key = (i * 97 + t * 131) % kDistinct;
        if (set.Insert(key)) fresh.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(fresh.load(), static_cast<size_t>(kDistinct));
  std::vector<int> keys = set.DrainSorted();
  ASSERT_EQ(keys.size(), static_cast<size_t>(kDistinct));
  for (int i = 0; i < kDistinct; ++i) {
    EXPECT_EQ(keys[static_cast<size_t>(i)], i);
  }
}

TEST(StripedMapTest, InsertOrMinKeepsLeastValueRegardlessOfArrivalOrder) {
  auto less = [](int a, int b) { return a < b; };
  StripedMap<std::string, int> forward;
  EXPECT_TRUE(forward.InsertOrMin("k", 5, less));
  EXPECT_FALSE(forward.InsertOrMin("k", 3, less));
  EXPECT_FALSE(forward.InsertOrMin("k", 9, less));
  StripedMap<std::string, int> backward;
  EXPECT_TRUE(backward.InsertOrMin("k", 9, less));
  EXPECT_FALSE(backward.InsertOrMin("k", 3, less));
  EXPECT_FALSE(backward.InsertOrMin("k", 5, less));
  // Both arrival orders leave the Less-least value — the invariant that
  // makes the parallel trigger merge order-independent.
  auto f = forward.DrainSorted();
  auto b = backward.DrainSorted();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f, b);
  EXPECT_EQ(f[0].second, 3);
}

TEST(StripedMapTest, DrainSortedOrdersByKey) {
  auto less = [](int a, int b) { return a < b; };
  StripedMap<std::string, int> m;
  for (const char* k : {"delta", "alpha", "charlie", "bravo"}) {
    EXPECT_TRUE(m.InsertOrMin(k, 1, less));
  }
  std::vector<std::pair<std::string, int>> out = m.DrainSorted();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].first, "alpha");
  EXPECT_EQ(out[1].first, "bravo");
  EXPECT_EQ(out[2].first, "charlie");
  EXPECT_EQ(out[3].first, "delta");
}

TEST(ThreadPoolTest, ParallelForCoversTheRangeAndOrdersStatuses) {
  for (size_t threads : {1u, 4u}) {
    std::vector<int> out(100, 0);
    Status st = ParallelFor(out.size(), threads, [&out](size_t i) {
      out[i] = static_cast<int>(i) + 1;
      return i == 13 ? Status::Unknown("thirteen") : Status::OK();
    });
    EXPECT_EQ(st.code(), StatusCode::kUnknown);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) + 1);
    }
  }
}

}  // namespace
}  // namespace bddfc
