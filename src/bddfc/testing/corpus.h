// Replayable failure corpus (DESIGN.md §2.8).
//
// Every minimized reproducer the shrinker emits is a plain .dlg program
// with a small comment header naming the oracle it must satisfy:
//
//   % bddfc-corpus
//   % oracle: chase-agreement
//   % family: acyclic-binary
//   % seed: 42
//   % note: nulls diverged: 3 vs 2
//   a(X) -> exists V0: r(X, V0).
//   a(c0).
//
// The header lines are ordinary comments, so the file also loads in every
// other tool (bddfc chase/rewrite/…). tests/corpus/ is replayed under
// ctest (corpus_replay_test), turning each minimized failure into a
// permanent regression test.

#ifndef BDDFC_TESTING_CORPUS_H_
#define BDDFC_TESTING_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/testing/oracles.h"
#include "bddfc/testing/scenario.h"

namespace bddfc {

/// One corpus file: the oracle to replay plus the program text.
struct CorpusEntry {
  std::string oracle;   ///< oracle name (must resolve via FindOracle)
  std::string family;   ///< generator family the scenario came from
  uint64_t seed = 0;    ///< originating fuzzer scenario seed (0 = crafted)
  std::string fault;    ///< injected fault to arm on replay ("", "deadline",
                        ///< "oom", "cancel") — governor-prefix entries only
  size_t chaos = 0;     ///< fault plans to arm on replay (chaos-recovery
                        ///< entries only; 0 = none)
  uint64_t chaos_seed = 0;  ///< plan-stream seed recorded with `chaos`
  std::string note;     ///< free-form provenance (failure detail, PR, ...)
  std::string program;  ///< .dlg program text (no header lines)
};

/// Renders an entry as header comments + program text.
std::string CorpusEntryToText(const CorpusEntry& entry);

/// Parses header comments and program text back out of a corpus file.
/// The 'oracle:' header is required; everything else is optional.
Result<CorpusEntry> ParseCorpusText(std::string_view text);

/// Loads one corpus file from disk.
Result<CorpusEntry> LoadCorpusFile(const std::string& path);

/// All .dlg files directly under `dir`, sorted by name (empty when the
/// directory is missing).
std::vector<std::string> ListCorpusFiles(const std::string& dir);

/// Replays an entry: parses its program into a scenario and runs its
/// oracle. Unknown oracle names and parse errors report as kFail.
OracleOutcome ReplayCorpusEntry(const CorpusEntry& entry,
                                const OracleConfig& config = {});

}  // namespace bddfc

#endif  // BDDFC_TESTING_CORPUS_H_
