file(REMOVE_RECURSE
  "CMakeFiles/finitemodel_test.dir/finitemodel_test.cc.o"
  "CMakeFiles/finitemodel_test.dir/finitemodel_test.cc.o.d"
  "finitemodel_test"
  "finitemodel_test.pdb"
  "finitemodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finitemodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
