// End-to-end tests for the Theorem 2 pipeline and the brute-force model
// finder — the headline constructions of the paper.

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/model_search.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

ConjunctiveQuery MustQuery(const char* text, Program* p) {
  auto q = ParseQuery(text, p->theory.signature_ptr().get());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

/// Certifies a pipeline result independently.
void ExpectCertifiedCounterModel(const FiniteModelResult& r,
                                 const Program& p,
                                 const ConjunctiveQuery& q) {
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.model.ContainsAllFactsOf(p.instance));
  EXPECT_EQ(CheckModel(r.model, p.theory), std::nullopt);
  EXPECT_FALSE(Satisfies(r.model, q));
  EXPECT_GT(r.model.Domain().size(), 0u);
}

TEST(PipelineTest, Example7SelfLoopQuery) {
  Program p = Example7();
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  ExpectCertifiedCounterModel(r, p, q);
}

TEST(PipelineTest, Example7OffDiagonalRQuery) {
  // r holds only reflexively in the chase; in the finite model off-diagonal
  // r atoms appear (Example 8's phenomenon) — but r(x, x) ∧ e(x, x) stays
  // avoidable.
  Program p = Example7();
  ConjunctiveQuery q = MustQuery("r(X, Y), e(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  ExpectCertifiedCounterModel(r, p, q);
}

TEST(PipelineTest, SuccessorTheoryAvoidsLongOddCycleQuery) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  ExpectCertifiedCounterModel(r, p, q);
}

TEST(PipelineTest, CertainQueryIsReported) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  // ∃x, y e(x, y) is certainly true.
  ConjunctiveQuery q = MustQuery("e(X, Y)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.query_certainly_true);
}

TEST(PipelineTest, TerminatingChaseShortCircuits) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: r(Y, Z).
    e(a, b).
  )");
  ConjunctiveQuery q = MustQuery("r(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  ExpectCertifiedCounterModel(r, p, q);
  // The chase terminates, so the model is the chase itself: 3 elements.
  EXPECT_EQ(r.model.Domain().size(), 3u);
  EXPECT_EQ(r.n_used, 0);
}

TEST(PipelineTest, Example1TriangleQueryAvoided) {
  // Example 1's theory: the chase is an infinite E-chain with no triangle,
  // so a finite model avoiding the triangle (and hence never triggering the
  // u-rules) must exist.
  Program p = Example1();
  ConjunctiveQuery q = MustQuery("u(X, Y)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  ExpectCertifiedCounterModel(r, p, q);
  // In particular the model contains no E-triangle (it would derive u).
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery triangle;
  triangle.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  triangle.atoms.push_back(Atom(e, {MakeVar(1), MakeVar(2)}));
  triangle.atoms.push_back(Atom(e, {MakeVar(2), MakeVar(0)}));
  EXPECT_FALSE(Satisfies(r.model, triangle));
}

TEST(PipelineTest, RemarkThreeTheoryLoopInstance) {
  // Remark 3: D = {e(a,a), e(b,c)} under successor+transitivity. The query
  // "some element reaches itself in two hops" is true (a loops), so pick a
  // falsifiable one instead: e(c, X) — c never gains an e-successor? It
  // does (successor rule). Use u-less theory with query e(X, X), which IS
  // certain here (e(a, a) ∈ D). Check certain-query reporting.
  Program p = RemarkThreeTheory();
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  EXPECT_TRUE(r.query_certainly_true);
}

TEST(PipelineTest, TransitivityWithFalsifiableQuery) {
  // Successor + transitivity from a loop-free instance: e(X, X) is false in
  // the chase; the quotient must avoid self-loops... but transitive closure
  // over a finite cycle derives them. The pipeline is expected to report
  // Unknown here at small budgets (Remark 3 shows the chase of this theory
  // is NOT ptp-conservative; the conjecture does not promise a model via
  // THIS construction because the theory is not BDD).
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, b).
  )");
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  PipelineOptions opts;
  opts.max_chase_depth = 16;
  FiniteModelResult r =
      ConstructFiniteCounterModel(p.theory, p.instance, q, opts);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kUnknown);
  EXPECT_FALSE(r.query_certainly_true);
}

TEST(PipelineTest, Example9BranchingTheory) {
  Program p = Example9();
  ConjunctiveQuery q = MustQuery("f(X, X)", &p);
  PipelineOptions opts;
  opts.initial_chase_depth = 8;
  opts.max_chase_depth = 16;  // 2^16 facts would explode; tree is 2^d
  opts.max_chase_facts = 100000;
  FiniteModelResult r =
      ConstructFiniteCounterModel(p.theory, p.instance, q, opts);
  ExpectCertifiedCounterModel(r, p, q);
}

TEST(PipelineTest, ConservativityDiagnosticsAreRecorded) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  PipelineOptions opts;
  opts.check_conservativity = true;
  FiniteModelResult r =
      ConstructFiniteCounterModel(p.theory, p.instance, q, opts);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_FALSE(r.attempts.empty());
  // Diagnostics are recorded. Note the check runs against the chase
  // *prefix*: merging the frontier with interior elements grows the
  // frontier elements' prefix-types (their infinite-chase types are what
  // is preserved), so `conservative` is typically false here even for
  // certified attempts — certification, not this diagnostic, is the
  // soundness gate.
  EXPECT_TRUE(r.attempts.back().certified);
}

TEST(PipelineTest, TheoremThreeTernaryHeads) {
  // Theorem 3 scope: a non-binary theory whose TGD heads mention one body
  // variable. The pipeline binarizes the heads (§5.1) internally and still
  // certifies against the ORIGINAL ternary theory.
  Program p = MustParse(R"(
    u(X) -> exists Z1, Z2: t(X, Z1, Z2).
    t(X, Y, Z) -> u(Y).
    u(a).
  )");
  ConjunctiveQuery q = MustQuery("t(X, Y, Y)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  ExpectCertifiedCounterModel(r, p, q);
}

TEST(PipelineTest, MultiHeadBinaryTgd) {
  Program p = MustParse(R"(
    u(X) -> e(X, Z), u(Z).
    u(a).
  )");
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  ExpectCertifiedCounterModel(r, p, q);
}

TEST(PipelineTest, TwoFrontierHeadRejectedWithGuidance) {
  Program p = MustParse("e(X, Y) -> exists Z: t(X, Y, Z).");
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status.message().find("5.2"), std::string::npos);
}

TEST(PipelineTest, NonBinaryTheoryRejected) {
  Program p = Section54();
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(ModelSearchTest, FindsExample1Cycle) {
  // Example 1: M' = 3-cycle is a homomorphic image but NOT a model; the
  // search must find a genuine model avoiding u — and no E-triangle.
  Program p = Example1();
  ConjunctiveQuery q = MustQuery("u(X, Y)", &p);
  ModelSearchOptions opts;
  opts.max_extra_elements = 2;  // a, b + 2 fresh
  ModelSearchResult r = FindFiniteModel(p.theory, p.instance, &q, opts);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_TRUE(r.found);
  EXPECT_EQ(CheckModel(*r.model, p.theory), std::nullopt);
  EXPECT_FALSE(Satisfies(*r.model, q));
}

TEST(ModelSearchTest, Section55EveryFiniteModelSatisfiesPhi) {
  // §5.5: the theory is not FC — Φ = e(x, y) ∧ r(y, y) is false in the
  // chase but true in EVERY finite model. Verified exhaustively for
  // domains up to |D| + 1 (two binary predicates over four elements
  // already exceed the enumeration budget).
  Program p = Section55();
  ASSERT_EQ(p.queries.size(), 1u);
  ModelSearchOptions opts;
  opts.max_extra_elements = 1;
  ModelSearchResult r =
      FindFiniteModel(p.theory, p.instance, &p.queries[0], opts);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.found);
  // Sanity: dropping the avoidance constraint, finite models DO exist.
  ModelSearchResult any = FindFiniteModel(p.theory, p.instance, nullptr, opts);
  ASSERT_TRUE(any.status.ok());
  EXPECT_TRUE(any.found);
}

TEST(ModelSearchTest, Section55ChaseAvoidsPhi) {
  // The complementary half of the §5.5 argument: the chase never satisfies
  // Φ (checked on a deep prefix).
  Program p = Section55();
  ChaseOptions opts;
  opts.max_rounds = 12;
  ChaseResult chase = RunChase(p.theory, p.instance, opts);
  EXPECT_FALSE(Satisfies(chase.structure, p.queries[0]));
}

TEST(ModelSearchTest, AgreesWithPipelineOnTinyInput) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  ConjunctiveQuery q = MustQuery("e(X, X)", &p);
  ModelSearchResult search = FindFiniteModel(p.theory, p.instance, &q);
  ASSERT_TRUE(search.status.ok());
  EXPECT_TRUE(search.found);
  // Pipeline agrees that a counter-model exists.
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
  EXPECT_TRUE(r.status.ok());
  // The brute-force model is no larger than the pipeline's.
  EXPECT_LE(search.model->Domain().size(), r.model.Domain().size());
}

}  // namespace
}  // namespace bddfc
