// Vectorized plan execution: block-at-a-time joins over columnar storage.
//
// The executor runs a QueryPlan as a pipeline of steps. Intermediate
// bindings live in flat slot-value blocks (row-major, num_slots entries
// per binding, up to 1024 rows per block — DeltaChunk-aligned, scaled down
// for wide slot layouts); each step consumes a block, probes the smallest
// hash-postings list among its known positions per input row (clamped to
// the atom's band; a fully-bound step skips probing entirely and answers
// with one exact-tuple FindRow lookup), verifies and extends rows into
// its output block, and recurses per *block*, not per row. Compared
// to the interpretive Matcher this removes the per-call SelectAtom scan,
// the per-argument hash-map ResolveTerm lookups, and the per-variable
// Binding mutations from the innermost loop. Candidate rows are verified
// against the columns before anything is copied (rejects never touch the
// block), and the one Binding handed to the callback is reused across
// matches — its values are patched through stable element pointers, so
// emitting a match performs zero hash operations. PlanCountMatches goes
// further: no Binding at all, and the final step counts matches straight
// from its candidate ranges when the probe is the only constraint.
//
// Counter semantics (shared with the Matcher — see MatchStats):
//   * postings_hits  — one per atom instantiation that proceeded through a
//     chosen index probe;
//   * postings_misses — one per instantiation pruned because a probe found
//     no candidate rows in the atom's band;
//   * rows_scanned   — one per candidate row examined;
//   * bindings_tried — one per complete binding delivered to the callback.
//
// Governance: the optional abort hook is polled once per block boundary —
// the plan-stage equivalent of the engines' strided ShouldStop probes.

#ifndef BDDFC_EVAL_EXEC_H_
#define BDDFC_EVAL_EXEC_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "bddfc/core/structure.h"
#include "bddfc/eval/match.h"
#include "bddfc/eval/plan.h"

namespace bddfc {

/// Rows per intermediate block (narrow slot layouts; wide layouts shrink
/// the block so a block stays cache-sized).
inline constexpr size_t kExecBlockRows = 1024;

/// Runs `plan` against `s`, calling `on_match` with every complete binding
/// extending `partial`. `atoms` is the caller's body (alpha-equivalent to
/// the plan's — used to recover slot->variable names and band targets);
/// `bands` restricts each original atom to a row range (nullptr = all
/// rows); `prebound` must list the partial's variables in the same order
/// given to CompilePlan. The callback returning false stops enumeration
/// (not an error); the Binding it receives is reused across matches, so
/// copy out of it rather than keeping the reference (the Matcher's
/// callback contract). Returns false iff the abort hook cut execution
/// short.
bool ExecutePlan(const Structure& s, const QueryPlan& plan,
                 const std::vector<Atom>& atoms,
                 const std::vector<RowBand>* bands, const Binding& partial,
                 const std::vector<TermId>& prebound,
                 const std::function<bool(const Binding&)>& on_match,
                 MatchStats* stats = nullptr,
                 const std::function<bool()>* abort = nullptr);

/// One block of complete bindings in the executor's flat slot layout:
/// `num_rows` bindings of `width` TermIds each, row-major; slot `i` holds
/// the value of variable `slot_vars[i]` (the PlanSlotVars order for the
/// executed plan). Valid only for the duration of the callback — the
/// executor reuses the underlying buffer across flushes.
struct SlotBlock {
  const TermId* rows = nullptr;
  size_t num_rows = 0;
  size_t width = 0;
  const TermId* slot_vars = nullptr;
};

/// Block-at-a-time variant of ExecutePlan for sinks that consume whole
/// result blocks (the vectorized chase sink grounds head atoms against
/// them): instead of patching one reused Binding per match, each final
/// block is handed over once per flush, so emitting N matches costs one
/// virtual call instead of N map-pointer patch loops. bindings_tried still
/// counts one per row. `on_block` returning false stops enumeration (not
/// an error); returns false iff the abort hook cut execution short.
bool ExecutePlanBlocks(const Structure& s, const QueryPlan& plan,
                       const std::vector<Atom>& atoms,
                       const std::vector<RowBand>* bands,
                       const std::function<bool(const SlotBlock&)>& on_block,
                       MatchStats* stats = nullptr,
                       const std::function<bool()>* abort = nullptr);

/// Cached banded enumeration for the delta engines: fetches (or compiles)
/// the plan for (atoms, anchor) from `cache` and executes it with `bands`.
/// Returns false iff the abort hook cut execution short.
bool ExecuteBandedPlan(const Structure& s, PlanCache& cache,
                       const std::vector<Atom>& atoms, size_t anchor,
                       const std::vector<RowBand>& bands,
                       const std::function<bool(const Binding&)>& on_match,
                       MatchStats* stats = nullptr,
                       const std::function<bool()>* abort = nullptr);

/// Plan-backed equivalents of Matcher::Exists / Enumerate / CountMatches:
/// compile on the fly (no cache) and execute. Enumeration *order* may
/// differ from the Matcher's; the binding set never does.
bool PlanExists(const Structure& s, const std::vector<Atom>& atoms,
                const Binding& partial = {});
void PlanEnumerate(const Structure& s, const std::vector<Atom>& atoms,
                   const Binding& partial,
                   const std::function<bool(const Binding&)>& on_match,
                   MatchStats* stats = nullptr);
size_t PlanCountMatches(const Structure& s, const std::vector<Atom>& atoms,
                        const Binding& partial = {});

}  // namespace bddfc

#endif  // BDDFC_EVAL_EXEC_H_
