# Empty dependencies file for bddfc_answers.
# This may be replaced when dependencies are built.
