// Unified resource governor: one enforceable contract for deadlines,
// memory, and cooperative cancellation across every compute module.
//
// Every procedure the paper gives us is semi-decidable or worst-case
// explosive: the chase need not terminate (§1.1), the UCQ rewriting can
// blow up before the k_Φ bound (Def. 2), and positive-n-type enumeration
// is exponential in n (Def. 3). The per-engine count caps (max_facts,
// max_queries, max_patterns, ...) bound *work items* but know nothing
// about wall-clock time, memory, or each other. An ExecutionContext is
// the shared contract the engines check instead:
//
//   * a wall-clock deadline (steady_clock),
//   * a hierarchical byte-accounted memory budget (MemoryAccountant;
//     children charge their parents, so a pipeline can split its
//     allowance across chase/rewrite/type phases),
//   * a cooperative CancelToken (flipped by SIGINT handlers or other
//     threads; checked, never preempted),
//   * a structured ResourceReport: what ran out, how far the run got,
//     and whether a partial result was retained.
//
// Engines call CheckPoint() at round/level/frontier granularity and
// ShouldStop() inside hot enumeration loops (strided, so the common case
// is one relaxed atomic load). On the first trip the context latches the
// exhausted resource; every later check fails fast. Partial results are
// cut at the last completed round/level, never mid-application, so an
// interrupted run is prefix-consistent with an uninterrupted one.
//
// Determinism: wall-clock and memory trips are inherently timing
// dependent, so tests and the fuzz oracles use InjectFaultAfterChecks to
// make the context report a chosen exhaustion after a fixed number of
// checks — exercising the exact same early-exit paths deterministically.

#ifndef BDDFC_BASE_GOVERNOR_H_
#define BDDFC_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bddfc/base/faults.h"
#include "bddfc/base/run_context.h"
#include "bddfc/base/status.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

/// Which governed resource (or legacy count budget) ran out first.
enum class ResourceKind {
  kNone = 0,
  kDeadline,   ///< the wall-clock deadline passed
  kMemory,     ///< the accounted byte budget watermark was exceeded
  kCancelled,  ///< the CancelToken was flipped
  kFacts,      ///< a max_facts count cap (chase / saturation)
  kRounds,     ///< a max_rounds / max_depth round cap
  kQueries,    ///< the rewriter's max_queries cap
  kAtoms,      ///< the rewriter's max_atoms_per_query cap
  kHomChecks,  ///< a hom-search budget (subsumption probing)
  kPatterns,   ///< the type oracle's max_patterns cap
  kStructures, ///< the model search's max_structures cap
  kFault,      ///< an injected fail-stop fault fired (FaultRegistry site)
  kInvariant,  ///< a paranoia invariant check failed
};

/// Stable lowercase name ("deadline", "memory", ...).
const char* ResourceKindName(ResourceKind kind);

/// A shared cancellation flag. Copies alias the same flag, so a token
/// handed to a SIGINT handler (or another thread) cancels every context
/// that holds a copy. Cancel() is a single atomic store: safe from signal
/// handlers and concurrent threads.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Byte-accounted memory budget. Charges are approximate (engines charge
/// the estimated footprint of facts, frontier queries, indexes) and
/// propagate to the parent accountant, so a child is a *view* carving a
/// sub-allowance out of the parent's budget: the pipeline gives its chase
/// phase half the bytes and the rewriter a quarter without double
/// counting at the root. Enforcement is a watermark — engines keep
/// charging freely and CheckPoint trips once used() exceeds limit() here
/// or in any ancestor — which keeps the hot insert path to two relaxed
/// atomic ops. limit 0 = unlimited (accounting still runs, for reports).
///
/// Thread-safe. A parent must outlive its children.
class MemoryAccountant {
 public:
  explicit MemoryAccountant(size_t limit_bytes = 0,
                            MemoryAccountant* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  void Charge(size_t bytes);
  void Release(size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_.load(std::memory_order_relaxed); }
  void set_limit(size_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }

  /// True when this accountant or any ancestor exceeds its limit.
  bool OverBudget() const;

 private:
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<size_t> limit_;
  MemoryAccountant* const parent_;
};

/// One phase's progress note inside a ResourceReport ("chase" →
/// "round 17, 5120 facts").
struct PhaseProgress {
  std::string phase;
  std::string progress;
};

/// Structured account of a governed run: what ran out (kNone when
/// nothing), how far each phase got, and the live resource counters at
/// report time. Attached to every engine result so exhaustion is never a
/// bare bool or a conflated error string.
struct ResourceReport {
  ResourceKind exhausted = ResourceKind::kNone;
  /// Human-readable trip detail ("deadline exceeded at chase round 12").
  std::string detail;
  /// True when the result carries a usable partial prefix (facts up to the
  /// last complete round, the UCQ union up to the last complete level, ...).
  bool partial_result = false;
  size_t peak_bytes = 0;      ///< peak accounted bytes (0 if unaccounted)
  size_t limit_bytes = 0;     ///< byte budget (0 = unlimited)
  double deadline_slack_ms = 0;  ///< deadline minus now; negative = overshoot
  size_t cancel_checks = 0;   ///< cooperative checks performed
  /// Completed phase notes, in completion order (a PhaseScope appends one
  /// when it closes, so an early return can never leave a stale entry).
  std::vector<PhaseProgress> phases;
  /// Phases still open at report() time, outermost first. Non-empty only
  /// when the report is taken mid-run (e.g. a trip unwinding a pipeline).
  std::vector<std::string> open_phases;

  bool ok() const { return exhausted == ResourceKind::kNone; }
  /// "exhausted=deadline detail=... peak_bytes=... " one-line summary plus
  /// one indented line per phase note.
  std::string ToString() const;
};

/// Deterministic fault injection: after `after_checks` cooperative checks
/// the context behaves as if the chosen resource ran out. Used by
/// governor_test and the fuzzer's governor-prefix oracle to exercise the
/// interruption paths without real clocks or allocation pressure.
enum class InjectedFault { kNone, kDeadline, kOom, kCancel };

/// Stable lowercase name ("deadline", "oom", "cancel", "none") — the
/// spelling used by --inject-fault= flags and corpus '% fault:' headers.
const char* InjectedFaultName(InjectedFault fault);

/// Inverse of InjectedFaultName; kNone when the name is unknown or "none".
InjectedFault InjectedFaultFromName(std::string_view name);

/// The execution contract one logical request runs under. Configure
/// (deadline, memory limit, fault injection) before handing it to
/// engines; the checking side is thread-safe, so one context can govern a
/// fan-out over the ThreadPool. The first resource trip latches: every
/// subsequent CheckPoint/ShouldStop fails immediately, which is what
/// drains queued pool tasks and unwinds nested phases.
class ExecutionContext {
 public:
  ExecutionContext() : start_(std::chrono::steady_clock::now()) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // -- configuration (before the run) --------------------------------------

  void SetDeadlineAfterMs(double ms) {
    deadline_ = start_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(ms));
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  /// Milliseconds until the deadline (negative once past); +inf when none.
  double RemainingMs() const;

  /// Sets the root byte budget (0 = unlimited; accounting always runs).
  void SetMemoryLimitBytes(size_t bytes) { memory_.set_limit(bytes); }
  MemoryAccountant& memory() { return memory_; }
  const MemoryAccountant& memory() const { return memory_; }

  /// The shared cancellation flag (copy it into SIGINT handlers/threads).
  CancelToken cancel_token() const { return cancel_; }
  void RequestCancel() { cancel_.Cancel(); }

  /// Legacy deterministic fault injection, now a veneer over the fault
  /// registry: arms an after-N schedule at faults::kGovernorCheck whose
  /// action names the resource to fake, on the attached registry (or a
  /// lazily created context-owned one). kNone is a no-op.
  void InjectFaultAfterChecks(InjectedFault fault, size_t after_checks);

  /// Attaches a fault registry for this context and its descendants
  /// (resolution walks the parent chain: the nearest attachment wins, so
  /// per-request children of a shared server root can carry their own
  /// session registry without clobbering siblings). The registry must
  /// outlive the run; pass nullptr to detach this level.
  void SetFaultRegistry(FaultRegistry* registry) { faults_ = registry; }
  /// The nearest attached (or context-owned) registry up the parent
  /// chain; nullptr when chaos is off.
  FaultRegistry* fault_registry() { return resolved_faults(); }

  /// Attaches the session/run-scoped observability destinations
  /// (DESIGN.md §2.15) to this context and its descendants. Like
  /// SetFaultRegistry, resolution is nearest-ancestor-wins — the serving
  /// layer hangs every request off one server root, each with its own
  /// RunContext, and the root itself carries none. A RunContext carrying
  /// a fault registry also becomes this subtree's CheckFault registry.
  /// The RunContext and everything it points at must outlive the run;
  /// pass nullptr to detach and fall back to the process-wide singletons.
  void SetRunContext(const RunContext* rc) {
    run_ctx_ = rc;
    if (rc != nullptr && rc->faults != nullptr) faults_ = rc->faults;
  }
  const RunContext* run_context() const { return resolved_run_context(); }

  /// The metrics registry this run publishes into: the nearest attached
  /// RunContext's, else the process-wide registry. Engines resolve their
  /// publication target through this instead of MetricsRegistry::Global()
  /// so concurrent sessions never interleave counters.
  obs::MetricsRegistry& metrics_registry() const {
    const RunContext* rc = resolved_run_context();
    return rc != nullptr ? rc->metrics_or_global()
                         : obs::MetricsRegistry::Global();
  }

  /// The tracer this run's phase and run-level spans record to.
  obs::Tracer& tracer() const {
    const RunContext* rc = resolved_run_context();
    return rc != nullptr ? rc->tracer_or_global() : obs::Tracer::Global();
  }

  /// Creates a sub-context sharing this context's cancel token, deadline
  /// and trip visibility, with a child memory accountant capped at
  /// `memory_limit_bytes` — the pipeline splits its allowance across
  /// phases this way. The parent must outlive the child.
  std::unique_ptr<ExecutionContext> CreateChild(size_t memory_limit_bytes);

  // -- cooperative checking (run time, any thread) -------------------------

  /// The full check: cancellation, deadline, memory watermark, injected
  /// faults. OK, or ResourceExhausted with the trip recorded (first trip
  /// wins; later calls return the recorded trip). Call at round/level/
  /// frontier boundaries — cost is one steady_clock read when a deadline
  /// is set, a few relaxed loads otherwise.
  Status CheckPoint(const char* where);

  /// Strided probe for hot enumeration loops: a full CheckPoint every
  /// 64th call, otherwise one relaxed load of the latch. True = stop now.
  bool ShouldStop(const char* where);

  /// Fail-stop fault probe for a named registry site: when a registry is
  /// attached and a fault fires at `site`, latches a kFault trip on THIS
  /// context (not the root — a supervisor retry under a fresh child
  /// starts clean) and returns kInternal. One relaxed load when no
  /// registry is attached or it is disarmed.
  Status CheckFault(const char* site);

  /// Reports a paranoia invariant violation: latches a kInvariant trip
  /// (first trip wins) and returns kInternal carrying `detail` — always
  /// this violation's detail, even when an earlier governed trip already
  /// latched, so corruption found while unwinding a trip is never masked.
  Status RecordInvariantViolation(std::string detail);

  /// True once any governed resource (or a recorded count budget) tripped
  /// in this context or an ancestor.
  bool Exhausted() const {
    return tripped_.load(std::memory_order_acquire) ||
           (parent_ != nullptr && parent_->Exhausted());
  }

  /// Routes a legacy count-budget trip (max_facts, max_queries, ...)
  /// through the shared contract: latches the trip (unless a governed
  /// resource already tripped) and returns ResourceExhausted carrying
  /// `detail`. This is how the per-engine max_* knobs become views onto
  /// the governor without changing their call sites.
  Status RecordExhaustion(ResourceKind kind, std::string detail);

  /// Appends a progress note for the report ("chase", "round 12, 800 facts").
  /// Prefer PhaseScope, which also tracks the open-phase stack and traces
  /// the phase as a span; NotePhase remains for one-shot notes.
  void NotePhase(std::string phase, std::string progress);

  // -- reporting -----------------------------------------------------------

  /// Snapshot of the current state: trip (if any), phases, peak bytes,
  /// deadline slack, check count.
  ResourceReport report() const;

  /// Cooperative checks performed (shared with children: a child's checks
  /// count on the root, so "after N checks" fault injection is well
  /// defined across a phase-split pipeline).
  size_t cancel_checks() const {
    return root()->checks_.load(std::memory_order_relaxed);
  }

 private:
  /// Child constructor: shares the parent's cancel token, deadline, check
  /// counter and injected faults; owns a child accountant.
  ExecutionContext(ExecutionContext* parent, size_t memory_limit_bytes);

  ExecutionContext* root() { return parent_ == nullptr ? this : root_; }
  const ExecutionContext* root() const {
    return parent_ == nullptr ? this : root_;
  }

  /// Nearest fault registry up the parent chain (nullptr = none attached).
  FaultRegistry* resolved_faults() const {
    for (const ExecutionContext* c = this; c != nullptr; c = c->parent_) {
      if (c->faults_ != nullptr) return c->faults_;
    }
    return nullptr;
  }

  /// Nearest RunContext up the parent chain (nullptr = none attached).
  const RunContext* resolved_run_context() const {
    for (const ExecutionContext* c = this; c != nullptr; c = c->parent_) {
      if (c->run_ctx_ != nullptr) return c->run_ctx_;
    }
    return nullptr;
  }

  /// Latches (kind, detail) as the first trip if none is recorded yet and
  /// returns the ResourceExhausted status for the recorded trip.
  Status Trip(ResourceKind kind, std::string detail);

  const std::chrono::steady_clock::time_point start_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  MemoryAccountant memory_;
  CancelToken cancel_;
  size_t inject_after_checks_ = 0;  // legacy message formatting only
  FaultRegistry* faults_ = nullptr;  // nearest-ancestor resolution
  std::unique_ptr<FaultRegistry> owned_faults_;  // lazy legacy-veneer owner
  const RunContext* run_ctx_ = nullptr;  // nearest-ancestor resolution
  ExecutionContext* parent_ = nullptr;  // trips in ancestors are visible
  ExecutionContext* root_ = nullptr;    // topmost ancestor (nullptr = self)

  friend class PhaseScope;

  std::atomic<size_t> checks_{0};
  std::atomic<size_t> stride_{0};  // ShouldStop probe counter (root only)
  std::atomic<bool> tripped_{false};
  mutable std::mutex mu_;  // guards kind_/code_/detail_/phases_/open_phases_
  ResourceKind kind_ = ResourceKind::kNone;
  StatusCode code_ = StatusCode::kResourceExhausted;
  std::string detail_;
  std::vector<PhaseProgress> phases_;
  std::vector<std::string> open_phases_;
};

/// Resolves the metrics registry for an engine whose context pointer may
/// be null (ungoverned runs publish to the process-wide registry, exactly
/// the pre-serve behaviour).
inline obs::MetricsRegistry& ContextMetrics(const ExecutionContext* ctx) {
  return ctx != nullptr ? ctx->metrics_registry()
                        : obs::MetricsRegistry::Global();
}

/// Resolves the tracer for an engine whose context pointer may be null.
inline obs::Tracer& ContextTracer(const ExecutionContext* ctx) {
  return ctx != nullptr ? ctx->tracer() : obs::Tracer::Global();
}

/// RAII phase marker: one object is both the governor's phase bookkeeping
/// and the tracing span for the phase. Construction pushes the phase onto
/// the context's open-phase stack and opens a span; destruction pops the
/// stack and appends the PhaseProgress note — so every exit path (early
/// return, error, resource trip) unwinds the report correctly, which the
/// old NotePhase-at-the-end pattern did not guarantee.
///
/// The note defaults to "done", or "aborted" when the context tripped;
/// set_progress() overrides it ("round 12, 800 facts"). `ctx` may be
/// null: the scope still traces, and the phase bookkeeping is skipped.
class PhaseScope {
 public:
  PhaseScope(ExecutionContext* ctx, const char* phase);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  void set_progress(std::string progress) { progress_ = std::move(progress); }
  /// The underlying trace span's id (0 when tracing is disabled).
  uint64_t span_id() const { return span_.id(); }

 private:
  ExecutionContext* ctx_;
  const char* phase_;
  std::string progress_;
  obs::TraceSpan span_;
};

}  // namespace bddfc

#endif  // BDDFC_BASE_GOVERNOR_H_
