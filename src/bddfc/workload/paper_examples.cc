#include "bddfc/workload/paper_examples.h"

#include <cassert>

namespace bddfc {

namespace {

Program MustParse(const char* text) {
  Result<Program> r = ParseProgram(text);
  assert(r.ok() && "paper example must parse");
  return std::move(r).value();
}

}  // namespace

Program Example1() {
  return MustParse(R"(
    % Example 1
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z), e(Z, X) -> exists T: u(X, T).
    u(X, Y) -> exists Z: u(Y, Z).
    e(a, b).
  )");
}

Program RemarkThreeTheory() {
  return MustParse(R"(
    % Remark 3
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, a).
    e(b, c).
  )");
}

Program Example7() {
  return MustParse(R"(
    % Example 7
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(X1, Y) -> r(X, X1).
    e(a, b).
  )");
}

Program Example9() {
  return MustParse(R"(
    % Example 9
    f(X, Y) -> exists Z: f(Y, Z).
    f(X, Y) -> exists Z: g(Y, Z).
    g(X, Y) -> exists Z: f(Y, Z).
    g(X, Y) -> exists Z: g(Y, Z).
    f(a, b).
  )");
}

Program Section54() {
  return MustParse(R"(
    % Section 5.4
    r(X, X1, Y, Z) -> e(Y, Z).
    e(X, Y), e(T, Y) -> exists Z: r(X, T, Y, Z).
    e(a, b).
  )");
}

Program Section55() {
  return MustParse(R"(
    % Section 5.5: not FC, defines no ordering.
    e(X, Y) -> exists Z: e(Y, Z).
    r(X, Y), e(X, X1), e(Y, Z), e(Z, Y1) -> r(X1, Y1).
    e(a0, a1).
    r(a0, a0).
    ?- e(X, Y), r(Y, Y).
  )");
}

Program GuardedSample() {
  return MustParse(R"(
    % A guarded non-binary program: the ternary guard carries all body vars.
    p(X, Y, Z) -> exists W: q(X, Z, W).
    q(X, Z, W), s(Z) -> t(X, W).
    q(X, Z, W) -> s(Z).
    p(a, b, c).
  )");
}

namespace {

/// Builds `length` E-edges over length+1 fresh nulls.
Structure MakePath(SignaturePtr sig, int length, bool close_cycle,
                   std::vector<TermId>* elements) {
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  Structure s(sig);
  std::vector<TermId> elems;
  int n = close_cycle ? length : length + 1;
  elems.reserve(n);
  for (int i = 0; i < n; ++i) elems.push_back(sig->AddNull("c"));
  for (int i = 0; i < length; ++i) {
    s.AddFact(e, {elems[i], elems[close_cycle ? (i + 1) % n : i + 1]});
  }
  if (elements != nullptr) *elements = std::move(elems);
  return s;
}

}  // namespace

Structure MakeChain(SignaturePtr sig, int length,
                    std::vector<TermId>* elements) {
  return MakePath(std::move(sig), length, /*close_cycle=*/false, elements);
}

Structure MakeCycle(SignaturePtr sig, int length,
                    std::vector<TermId>* elements) {
  return MakePath(std::move(sig), length, /*close_cycle=*/true, elements);
}

Structure MakeBinaryTree(SignaturePtr sig, int depth,
                         std::vector<TermId>* elements) {
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  Structure s(sig);
  std::vector<TermId> elems;
  // Heap layout: node i has children 2i+1, 2i+2.
  int n = (1 << (depth + 1)) - 1;
  elems.reserve(n);
  for (int i = 0; i < n; ++i) elems.push_back(sig->AddNull("t"));
  for (int i = 0; 2 * i + 2 < n; ++i) {
    s.AddFact(e, {elems[i], elems[2 * i + 1]});
    s.AddFact(e, {elems[i], elems[2 * i + 2]});
  }
  if (n == 1) s.AddDomainElement(elems[0]);
  if (elements != nullptr) *elements = std::move(elems);
  return s;
}

}  // namespace bddfc
