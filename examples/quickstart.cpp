// Quickstart: parse a Datalog∃ program, chase it, answer a certain query,
// compute a UCQ rewriting and probe the BDD property.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"

int main() {
  using namespace bddfc;

  // A tiny ontology: every employee works somewhere; managers are
  // employees; working implies being staffed somewhere.
  const char* program_text = R"(
    employee(X) -> exists D: works_in(X, D).
    manager(X) -> employee(X).
    works_in(X, D) -> staffed(D).

    employee(alice).
    manager(bob).

    ?- staffed(D).
  )";

  Result<Program> parsed = ParseProgram(program_text);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Program& p = parsed.value();
  std::printf("parsed %zu rules, %zu facts, %zu queries\n", p.theory.size(),
              p.instance.NumFacts(), p.queries.size());

  // 1. Certain answers via the chase: Chase(D, T) |= Q iff T, D |= Q.
  ChaseResult chase = RunChase(p.theory, p.instance);
  std::printf("chase: %zu facts, %zu invented nulls, fixpoint=%s\n",
              chase.structure.NumFacts(), chase.nulls_created,
              chase.fixpoint_reached ? "yes" : "no");
  std::printf("certain answer to '?- staffed(D)': %s\n",
              Satisfies(chase.structure, p.queries[0]) ? "true" : "false");

  // 2. The same answer without chasing: rewrite the query into a UCQ Φ'
  //    and evaluate it directly on D (Definition 2 of the paper).
  RewriteResult rewriting = RewriteQuery(p.theory, p.queries[0]);
  std::printf("rewriting (%zu disjuncts): %s\n", rewriting.rewriting.size(),
              UcqToString(rewriting.rewriting, p.theory.sig()).c_str());
  std::printf("D |= rewriting: %s\n",
              SatisfiesUcq(p.instance, rewriting.rewriting) ? "true"
                                                            : "false");

  // 3. Probe the BDD property of the whole theory.
  BddProbeResult probe = ProbeBdd(p.theory);
  std::printf("BDD probe: certified=%s kappa=%d max_depth=%zu\n",
              probe.certified ? "yes" : "no", probe.kappa,
              probe.max_depth_seen);
  return 0;
}
