file(REMOVE_RECURSE
  "libbddfc_classes.a"
)
