# Empty dependencies file for bench_conservativity.
# This may be replaced when dependencies are built.
