// Signature: predicate and constant tables shared by structures and theories.

#ifndef BDDFC_CORE_SIGNATURE_H_
#define BDDFC_CORE_SIGNATURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bddfc/base/interner.h"
#include "bddfc/base/status.h"
#include "bddfc/core/term.h"

namespace bddfc {

/// Metadata for one predicate symbol.
struct PredicateInfo {
  std::string name;
  int arity = 0;
  /// True for the color predicates K_h^l introduced by colorings (Def. 6).
  bool is_color = false;
  /// Hue h and lightness l when is_color (Def. 6); -1 otherwise.
  int hue = -1;
  int lightness = -1;
};

/// Metadata for one constant (domain element).
struct ConstantInfo {
  std::string name;
  /// True when the constant is a labeled null invented by the chase
  /// (an element of C_non); named signature constants (C_con) are false.
  bool is_null = false;
};

/// A finite relational signature: predicates with arities plus constants.
///
/// Signatures are mutable (the chase invents labeled nulls; reductions and
/// colorings add predicates) and shared via shared_ptr between the theory,
/// database instances and derived structures.
class Signature {
 public:
  Signature() = default;

  /// Adds (or finds) a predicate. Returns error if it exists with a
  /// different arity.
  Result<PredId> AddPredicate(std::string_view name, int arity);

  /// Adds a fresh color predicate K_h^l. The generated name encodes (h, l).
  PredId AddColorPredicate(int hue, int lightness);

  /// Adds (or finds) a named signature constant.
  TermId AddConstant(std::string_view name);

  /// Invents a fresh labeled null. `hint` seeds the printable name.
  TermId AddNull(std::string_view hint = "n");

  /// Returns the id of predicate `name`, or error if absent.
  Result<PredId> FindPredicate(std::string_view name) const;

  /// Returns the id of constant `name`, or error if absent.
  Result<TermId> FindConstant(std::string_view name) const;

  /// Generates a fresh predicate name starting with `stem` that does not
  /// collide with any existing predicate.
  std::string FreshPredicateName(std::string_view stem) const;

  const PredicateInfo& predicate(PredId p) const { return predicates_[p]; }
  const ConstantInfo& constant(TermId c) const { return constants_[c]; }

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  int num_constants() const { return static_cast<int>(constants_.size()); }

  int arity(PredId p) const { return predicates_[p].arity; }
  const std::string& PredicateName(PredId p) const { return predicates_[p].name; }
  const std::string& ConstantName(TermId c) const { return constants_[c].name; }
  bool IsNull(TermId c) const { return constants_[c].is_null; }
  bool IsColor(PredId p) const { return predicates_[p].is_color; }

  /// Maximum arity over all predicates (0 when empty).
  int MaxArity() const;

  /// True iff every predicate has arity <= 2 (the paper's binary signatures,
  /// §2.7: binary relations, unary relations and constants).
  bool IsBinary() const;

  /// Opaque position in the predicate/constant tables, for RollbackTo.
  struct Mark {
    int num_predicates = 0;
    int num_constants = 0;
    int64_t null_counter = 0;
  };
  Mark TakeMark() const {
    return Mark{num_predicates(), num_constants(), null_counter_};
  }

  /// Forgets every predicate and constant added after `mark` and restores
  /// the null counter, so a rerun invents byte-identical ids and names.
  /// This is the supervisor's attempt-isolation hook: an aborted chase
  /// attempt's labeled nulls must not shift the retry's TermIds. Callers
  /// must have discarded every structure/atom referencing the rolled-back
  /// ids (the aborted attempt's result is dropped before the rollback).
  void RollbackTo(const Mark& mark);

 private:
  std::vector<PredicateInfo> predicates_;
  std::vector<ConstantInfo> constants_;
  Interner pred_names_;
  Interner const_names_;
  int64_t null_counter_ = 0;
};

using SignaturePtr = std::shared_ptr<Signature>;

}  // namespace bddfc

#endif  // BDDFC_CORE_SIGNATURE_H_
