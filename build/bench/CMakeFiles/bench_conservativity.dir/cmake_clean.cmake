file(REMOVE_RECURSE
  "CMakeFiles/bench_conservativity.dir/bench_conservativity.cc.o"
  "CMakeFiles/bench_conservativity.dir/bench_conservativity.cc.o.d"
  "bench_conservativity"
  "bench_conservativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conservativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
