file(REMOVE_RECURSE
  "libbddfc_guarded.a"
)
