# Empty compiler generated dependencies file for bddfc_eval.
# This may be replaced when dependencies are built.
