// The daemon's wire protocol: a framed line protocol plus a minimal HTTP
// GET fallback for scrapers.
//
// Requests (one header line, then an exact-length payload for the kinds
// that carry one):
//
//   LOAD <tenant> <nbytes>\n<nbytes of program text>
//   QUERY <tenant> <key-hex> <nbytes>\n<nbytes of CQ body text>
//   REWRITE <tenant> <key-hex> <nbytes>\n<nbytes of CQ body text>
//   METRICS [<tenant>]\n
//   HEALTH\n
//   QUIT\n
//
// Responses are uniformly framed so clients never guess lengths:
//
//   OK <nbytes>\n<nbytes of body>
//   ERR <status-code-name> <nbytes>\n<nbytes of body>
//
// HTTP fallback: a connection whose first bytes spell "GET " is answered
// with one HTTP/1.0 response and closed — "GET /metrics" returns the
// server's text exposition, "GET /healthz" returns "ok", anything else
// 404. Enough for curl and a scrape job; not an HTTP server.

#ifndef BDDFC_SERVE_PROTOCOL_H_
#define BDDFC_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>

#include "bddfc/base/status.h"
#include "bddfc/serve/server.h"

namespace bddfc::serve {

/// Renders a response in wire framing.
std::string FormatResponse(const Response& response);

/// Parses one request header line (no trailing newline). On success sets
/// *out and *payload_bytes (0 for payload-free kinds); kQuit is reported
/// via *quit. Malformed lines return InvalidArgument.
Status ParseRequestLine(std::string_view line, Request* out,
                        size_t* payload_bytes, bool* quit);

/// Serves requests from an in-memory byte stream (the protocol's pure
/// core — the socket loop and tests feed it the same bytes): consumes
/// `input`, appends every framed response to *output, stops at QUIT or
/// end of input. Returns the number of requests served.
size_t ServeBuffer(ReasoningServer& server, std::string_view input,
                   std::string* output);

/// True when `prefix` starts an HTTP GET (the fallback path).
bool LooksLikeHttp(std::string_view prefix);

/// Answers one HTTP GET request line ("GET /metrics HTTP/1.1") with a
/// complete HTTP/1.0 response.
std::string HandleHttp(ReasoningServer& server, std::string_view request_line);

}  // namespace bddfc::serve

#endif  // BDDFC_SERVE_PROTOCOL_H_
