#include "bddfc/core/signature.h"

#include <algorithm>

namespace bddfc {

Result<PredId> Signature::AddPredicate(std::string_view name, int arity) {
  int32_t existing = pred_names_.Find(name);
  if (existing >= 0) {
    if (predicates_[existing].arity != arity) {
      return Status::AlreadyExists(
          "predicate '" + std::string(name) + "' redeclared with arity " +
          std::to_string(arity) + " (was " +
          std::to_string(predicates_[existing].arity) + ")");
    }
    return existing;
  }
  if (arity < 0) {
    return Status::InvalidArgument("negative arity for predicate '" +
                                   std::string(name) + "'");
  }
  PredId id = pred_names_.Intern(name);
  PredicateInfo info;
  info.name = std::string(name);
  info.arity = arity;
  predicates_.push_back(std::move(info));
  return id;
}

PredId Signature::AddColorPredicate(int hue, int lightness) {
  std::string name = FreshPredicateName(
      "K_h" + std::to_string(hue) + "_l" + std::to_string(lightness));
  PredId id = pred_names_.Intern(name);
  PredicateInfo info;
  info.name = std::move(name);
  info.arity = 1;
  info.is_color = true;
  info.hue = hue;
  info.lightness = lightness;
  predicates_.push_back(std::move(info));
  return id;
}

TermId Signature::AddConstant(std::string_view name) {
  int32_t existing = const_names_.Find(name);
  if (existing >= 0) return existing;
  TermId id = const_names_.Intern(name);
  ConstantInfo info;
  info.name = std::string(name);
  info.is_null = false;
  constants_.push_back(std::move(info));
  return id;
}

TermId Signature::AddNull(std::string_view hint) {
  std::string name;
  do {
    name = "_" + std::string(hint) + std::to_string(null_counter_++);
  } while (const_names_.Contains(name));
  TermId id = const_names_.Intern(name);
  ConstantInfo info;
  info.name = std::move(name);
  info.is_null = true;
  constants_.push_back(std::move(info));
  return id;
}

Result<PredId> Signature::FindPredicate(std::string_view name) const {
  int32_t id = pred_names_.Find(name);
  if (id < 0) {
    return Status::NotFound("unknown predicate '" + std::string(name) + "'");
  }
  return id;
}

Result<TermId> Signature::FindConstant(std::string_view name) const {
  int32_t id = const_names_.Find(name);
  if (id < 0) {
    return Status::NotFound("unknown constant '" + std::string(name) + "'");
  }
  return id;
}

std::string Signature::FreshPredicateName(std::string_view stem) const {
  std::string name(stem);
  int suffix = 0;
  while (pred_names_.Contains(name)) {
    name = std::string(stem) + "_" + std::to_string(suffix++);
  }
  return name;
}

int Signature::MaxArity() const {
  int m = 0;
  for (const auto& p : predicates_) m = std::max(m, p.arity);
  return m;
}

void Signature::RollbackTo(const Mark& mark) {
  if (mark.num_predicates >= 0 &&
      mark.num_predicates < static_cast<int>(predicates_.size())) {
    pred_names_.TruncateTo(mark.num_predicates);
    predicates_.resize(static_cast<size_t>(mark.num_predicates));
  }
  if (mark.num_constants >= 0 &&
      mark.num_constants < static_cast<int>(constants_.size())) {
    const_names_.TruncateTo(mark.num_constants);
    constants_.resize(static_cast<size_t>(mark.num_constants));
  }
  null_counter_ = mark.null_counter;
}

bool Signature::IsBinary() const {
  return std::all_of(predicates_.begin(), predicates_.end(),
                     [](const PredicateInfo& p) { return p.arity <= 2; });
}

}  // namespace bddfc
