// Queries viewed as graphs (§4 of the paper).
//
// Over a binary signature a CQ is a directed labeled graph: vertices are the
// variables, binary atoms between two variables are edges. Unary atoms, and
// binary atoms with a constant argument, are vertex labels (the paper's
// convention after Lemma 7(iii): atoms R(a, x) with a constant act as unary
// predicates on x; atoms on two constants are irrelevant).
//
// This module provides the structural analyses the proof of Lemma 6 runs on:
// undirected-tree / directed-cycle / undirected-cycle detection (Lemmas
// 8–10), the (♥)-pattern locator, the termination measure of Lemma 11, and
// the three normalization candidates of Lemma 11.

#ifndef BDDFC_EVAL_QUERY_GRAPH_H_
#define BDDFC_EVAL_QUERY_GRAPH_H_

#include <optional>
#include <vector>

#include "bddfc/core/query.h"
#include "bddfc/core/signature.h"

namespace bddfc {

/// Structural facts about the graph of a (binary-signature) query.
struct QueryGraphAnalysis {
  int num_variables = 0;
  /// Number of variable-to-variable binary edges (multi-edges counted).
  int num_edges = 0;
  bool connected = false;          ///< as an undirected graph, over variables
  bool is_undirected_tree = false; ///< connected and acyclic (ignoring direction)
  bool has_directed_cycle = false;
  bool has_undirected_cycle = false;
};

/// Analyzes the query graph. Requires every atom to have arity <= 2.
QueryGraphAnalysis AnalyzeQueryGraph(const ConjunctiveQuery& q);

/// The (♥) pattern of §4.1: two edge atoms R1(z', z), R2(z'', z) with a
/// shared head variable z and distinct tails z' != z''. Returned as indices
/// into q.atoms (first, second).
struct CherryPattern {
  size_t atom1 = 0;  ///< index of R1(z', z)
  size_t atom2 = 0;  ///< index of R2(z'', z)
  TermId z = 0, z1 = 0, z2 = 0;  ///< z, z', z''
};

/// Finds a (♥) pattern, or nullopt if none (then the query is an undirected
/// forest or all cycles are directed).
std::optional<CherryPattern> FindCherry(const ConjunctiveQuery& q);

/// Lemma 11's termination measure:
///   Measure(Φ) = Σ_{x ∈ Var(Φ)} occ(x) · smaller(x)
/// where occ(x) counts occurrences of x and smaller(x) counts variables from
/// which x is reachable by a directed path in the query graph.
long MeasureOf(const ConjunctiveQuery& q);

/// The three normalization candidates of Lemma 11 for a given cherry:
///  (1) drop R2(z'', z) and unify z' = z'';
///  (2) drop R2(z'', z) and add P(z'', z');
///  (3) drop R1(z', z) and add P(z', z'').
/// Candidates (2) and (3) are emitted for each binary predicate P of `sig`.
std::vector<ConjunctiveQuery> NormalizationCandidates(
    const ConjunctiveQuery& q, const CherryPattern& cherry,
    const Signature& sig);

}  // namespace bddfc

#endif  // BDDFC_EVAL_QUERY_GRAPH_H_
