// Syntactic class recognizers for Datalog∃ programs.
//
// The paper's introduction situates the conjecture relative to the classes
// Linear, Guarded and Sticky Datalog∃ and to binary signatures; Theorem 3
// (§5.1) extends the main result to theories whose existential TGDs have the
// form Ψ(x̄, y) ⇒ ∃z̄ Φ(y, z̄). This module recognizes each class, plus weak
// acyclicity (a standard sufficient condition for chase termination, used to
// pick budgets in the pipeline).

#ifndef BDDFC_CLASSES_RECOGNIZERS_H_
#define BDDFC_CLASSES_RECOGNIZERS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "bddfc/core/theory.h"

namespace bddfc {

/// All predicates have arity <= 2 (binary signature, §2.7).
bool IsBinaryTheory(const Theory& theory);

/// Every rule body is a single atom (Linear Datalog∃, [8]).
bool IsLinear(const Theory& theory);

/// Every rule has a guard: one body atom containing all body variables
/// (Guarded Datalog∃, [1]).
bool IsGuarded(const Theory& theory);

/// Theorem 3 head form: every existential TGD's head atoms mention at most
/// one body variable (the same y across all head atoms).
bool HasSingleFrontierVariableHeads(const Theory& theory);

/// Outcome of the sticky marking procedure ([4], [5]).
struct StickyReport {
  bool is_sticky = false;
  /// Positions (pred, index) that carry a marked body occurrence after the
  /// propagation fixpoint.
  std::vector<std::pair<PredId, int>> marked_positions;
  /// Human-readable reason when not sticky.
  std::string violation;
};

/// Runs the sticky marking procedure.
StickyReport CheckSticky(const Theory& theory);

/// Weak acyclicity of the position dependency graph: a sufficient condition
/// for termination of the (restricted and oblivious) chase on all instances.
bool IsWeaklyAcyclic(const Theory& theory);

}  // namespace bddfc

#endif  // BDDFC_CLASSES_RECOGNIZERS_H_
