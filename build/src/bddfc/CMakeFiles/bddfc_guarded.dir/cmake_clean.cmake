file(REMOVE_RECURSE
  "CMakeFiles/bddfc_guarded.dir/guarded/binarize.cc.o"
  "CMakeFiles/bddfc_guarded.dir/guarded/binarize.cc.o.d"
  "libbddfc_guarded.a"
  "libbddfc_guarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_guarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
