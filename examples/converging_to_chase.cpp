// The "converging to the Chase" trick (§2.1, §2.3): the quotients M_n(C̄)
// form a sequence of finite structures that approximate the infinite chase
// — the bigger n, the more positive types survive. This example makes the
// convergence visible on the colored E-chain of Examples 3–5.
//
// Build & run:  ./build/examples/converging_to_chase

#include <cstdio>

#include "bddfc/eval/match.h"
#include "bddfc/types/coloring.h"
#include "bddfc/types/conservativity.h"
#include "bddfc/types/ptype.h"
#include "bddfc/types/quotient.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

int main() {
  using namespace bddfc;

  auto sig = std::make_shared<Signature>();
  const int kChain = 24;
  Structure chain = MakeChain(sig, kChain);
  PredId e = std::move(sig->FindPredicate("e")).ValueOrDie();

  std::printf("C = E-chain with %d edges (all elements anonymous nulls)\n\n",
              kChain);
  std::printf("%-4s %-10s %-12s %-10s %-14s %-12s\n", "n", "colors(m)",
              "|M_n(C)|", "loop?", "k-path k<=", "conservative");

  // For each m, color with window m and quotient by ≡_n for growing n:
  // the quotient keeps longer and longer paths correct and the self-loop
  // (Example 3's parasite query) only lives where coloring hides it.
  for (int m = 1; m <= 3; ++m) {
    Result<Coloring> col = NaturalColoring(chain, m);
    if (!col.ok()) return 1;
    for (int n = 2; n <= 4; ++n) {
      Result<TypePartition> part = ExactPtpPartition(col.value().colored, n);
      if (!part.ok()) {
        std::printf("%-4d %-10d (type partition: %s)\n", n, m,
                    part.status().ToString().c_str());
        continue;
      }
      Quotient q = BuildQuotient(col.value().colored, part.value());

      // Longest k such that the k-path query has the same truth value in C
      // and in M_n (it is always true in M_n once a cycle closes; in the
      // finite chain it fails for k > kChain).
      ConjunctiveQuery loop;
      loop.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(0)}));
      int agree_upto = 0;
      for (int k = 1; k <= kChain + 2; ++k) {
        bool in_c = Satisfies(chain, PathQuery(e, k));
        bool in_m = Satisfies(q.structure, PathQuery(e, k));
        if (in_c == in_m) {
          agree_upto = k;
        } else {
          break;
        }
      }
      ConservativityReport rep = CheckConservativeUpTo(
          col.value().colored, q, m, col.value().base_predicates);
      std::printf("%-4d %-10d %-12zu %-10s %-14d %-12s\n", n, m,
                  q.structure.Domain().size(),
                  Satisfies(q.structure, loop) ? "yes" : "no", agree_upto,
                  rep.conservative ? "yes" : "no");
    }
  }
  std::printf(
      "\nReading: more colors (m) and wider types (n) => a bigger quotient "
      "that agrees with C on longer queries — the finite structures "
      "converge to the chase (§2.1's 'converging to the Chase' trick).\n");
  return 0;
}
