// Tests for CQ evaluation, homomorphisms, containment, cores and the
// query-graph analyses of §4.

#include <gtest/gtest.h>

#include "bddfc/eval/containment.h"
#include "bddfc/eval/match.h"
#include "bddfc/eval/query_graph.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

class MatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sig_ = std::make_shared<Signature>();
    e_ = std::move(sig_->AddPredicate("e", 2)).ValueOrDie();
    u_ = std::move(sig_->AddPredicate("u", 1)).ValueOrDie();
    a_ = sig_->AddConstant("a");
    b_ = sig_->AddConstant("b");
    c_ = sig_->AddConstant("c");
  }

  SignaturePtr sig_;
  PredId e_ = -1, u_ = -1;
  TermId a_ = -1, b_ = -1, c_ = -1;
};

TEST_F(MatchTest, PathQueryMatches) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(e_, {b_, c_});
  EXPECT_TRUE(Satisfies(s, PathQuery(e_, 2)));
  EXPECT_FALSE(Satisfies(s, PathQuery(e_, 3)));
}

TEST_F(MatchTest, CycleQueryNeedsCycle) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(e_, {b_, c_});
  EXPECT_FALSE(Satisfies(s, CycleQuery(e_, 3)));
  s.AddFact(e_, {c_, a_});
  EXPECT_TRUE(Satisfies(s, CycleQuery(e_, 3)));
  // A 3-cycle also satisfies the 6-cycle query (wrap twice).
  EXPECT_TRUE(Satisfies(s, CycleQuery(e_, 6)));
}

TEST_F(MatchTest, ConstantsInQueriesArePinned) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(e_, {a_, MakeVar(0)}));
  EXPECT_TRUE(Satisfies(s, q));
  ConjunctiveQuery q2;
  q2.atoms.push_back(Atom(e_, {b_, MakeVar(0)}));
  EXPECT_FALSE(Satisfies(s, q2));
}

TEST_F(MatchTest, SatisfiesAtBindsFirstAnswerVariable) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  ConjunctiveQuery q;
  q.answer_vars.push_back(MakeVar(0));
  q.atoms.push_back(Atom(e_, {MakeVar(0), MakeVar(1)}));
  EXPECT_TRUE(SatisfiesAt(s, q, a_));
  EXPECT_FALSE(SatisfiesAt(s, q, b_));
}

TEST_F(MatchTest, CountMatchesEnumeratesAll) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(e_, {a_, c_});
  s.AddFact(e_, {b_, c_});
  Matcher m(s);
  // e(x, y): 3 matches.
  EXPECT_EQ(m.CountMatches(PathQuery(e_, 1).atoms), 3u);
  // e(x, y), e(y, z): a->b->c only.
  EXPECT_EQ(m.CountMatches(PathQuery(e_, 2).atoms), 1u);
}

TEST_F(MatchTest, EmptyQueryIsTrue) {
  Structure s(sig_);
  EXPECT_TRUE(Satisfies(s, ConjunctiveQuery{}));
}

TEST_F(MatchTest, UcqSatisfactionIsAnyDisjunct) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  UnionOfCQs ucq = {CycleQuery(e_, 2), PathQuery(e_, 1)};
  EXPECT_TRUE(SatisfiesUcq(s, ucq));
  EXPECT_FALSE(SatisfiesUcq(s, {CycleQuery(e_, 2)}));
  EXPECT_FALSE(SatisfiesUcq(s, {}));
}

TEST_F(MatchTest, HomomorphismFixesNamedConstantsOnly) {
  // a -> b (named) maps into itself trivially; nulls are flexible.
  Structure s1(sig_);
  s1.AddFact(e_, {a_, b_});
  TermId n1 = sig_->AddNull();
  Structure s2(sig_);
  s2.AddFact(e_, {a_, b_});
  s2.AddFact(e_, {b_, n1});
  // s1 -> s2: yes. s2 -> s1: the null needs an E-successor of b in s1: no.
  EXPECT_TRUE(HasHomomorphism(s1, s2));
  EXPECT_FALSE(HasHomomorphism(s2, s1));
}

TEST_F(MatchTest, ChainMapsOntoCycleButNotConversely) {
  // Example 1's phenomenon: the infinite chain maps onto a 3-cycle.
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 10);
  Structure cycle = MakeCycle(sig, 3);
  EXPECT_TRUE(HasHomomorphism(chain, cycle));
  EXPECT_FALSE(HasHomomorphism(cycle, chain));
}

TEST_F(MatchTest, BandedEnumerationRestrictsAtomsToRowRanges) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});  // row 0 ("old")
  s.MarkRoundBoundary();
  s.AddFact(e_, {b_, c_});  // row 1 (the delta)

  Matcher m(s);
  std::vector<Atom> one = {Atom(e_, {MakeVar(0), MakeVar(1)})};
  EXPECT_EQ(m.CountMatches(one), 2u);

  // Banded to the delta: only the row above the watermark matches.
  size_t n = 0;
  m.EnumerateBanded(one, {{s.WatermarkRows(e_), UINT32_MAX}}, {},
                    [&](const Binding& b) {
                      EXPECT_EQ(b.at(MakeVar(0)), b_);
                      ++n;
                      return true;
                    });
  EXPECT_EQ(n, 1u);

  // Old/delta split across a join: e(X, Y) old ⋈ e(Y, Z) delta leaves
  // exactly the a→b→c binding (the b→c row may not serve as the old atom).
  std::vector<Atom> body = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                            Atom(e_, {MakeVar(1), MakeVar(2)})};
  n = 0;
  m.EnumerateBanded(body,
                    {{0, s.WatermarkRows(e_)}, {s.WatermarkRows(e_),
                                                UINT32_MAX}},
                    {}, [&](const Binding& b) {
                      EXPECT_EQ(b.at(MakeVar(0)), a_);
                      EXPECT_EQ(b.at(MakeVar(2)), c_);
                      ++n;
                      return true;
                    });
  EXPECT_EQ(n, 1u);

  // An empty band yields no matches at all.
  n = 0;
  m.EnumerateBanded(one, {{5, 5}}, {},
                    [&](const Binding&) {
                      ++n;
                      return true;
                    });
  EXPECT_EQ(n, 0u);
}

TEST_F(MatchTest, AttachedStatsCountBindingsAndPostings) {
  Structure s(sig_);
  s.AddFact(e_, {a_, b_});
  s.AddFact(e_, {b_, c_});

  MatchStats st;
  Matcher m(s, &st);
  EXPECT_EQ(m.CountMatches({Atom(e_, {MakeVar(0), MakeVar(1)})}), 2u);
  EXPECT_EQ(st.bindings_tried, 2u);

  // A bound constant position goes through the posting index.
  EXPECT_EQ(m.CountMatches({Atom(e_, {a_, MakeVar(0)})}), 1u);
  EXPECT_GE(st.postings_hits, 1u);

  // A constant absent from the index prunes and records a miss.
  EXPECT_EQ(m.CountMatches({Atom(e_, {c_, MakeVar(0)})}), 0u);
  EXPECT_GE(st.postings_misses, 1u);
}

TEST(ContainmentTest, PathContainments) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  // Longer path queries are contained in shorter ones.
  EXPECT_TRUE(IsContainedIn(PathQuery(e, 3), PathQuery(e, 2)));
  EXPECT_FALSE(IsContainedIn(PathQuery(e, 2), PathQuery(e, 3)));
}

TEST(ContainmentTest, CycleContainedInPath) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  EXPECT_TRUE(IsContainedIn(CycleQuery(e, 3), PathQuery(e, 2)));
  EXPECT_FALSE(IsContainedIn(PathQuery(e, 2), CycleQuery(e, 3)));
}

TEST(ContainmentTest, AnswerVariablesBlockCollapse) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  // q1() = e(x, x) vs q2(y) = e(y, y): with answer vars pinned pairwise,
  // q(x)=e(x,x) maps into itself but e(x,y) (boolean) still maps anywhere.
  ConjunctiveQuery loop_at_x;
  loop_at_x.answer_vars.push_back(MakeVar(0));
  loop_at_x.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(0)}));
  ConjunctiveQuery edge_from_x;
  edge_from_x.answer_vars.push_back(MakeVar(0));
  edge_from_x.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  // loop(x) ⊆ edge(x): every x with a loop has an outgoing edge.
  EXPECT_TRUE(IsContainedIn(loop_at_x, edge_from_x));
  EXPECT_FALSE(IsContainedIn(edge_from_x, loop_at_x));
}

TEST(ContainmentTest, CoreCollapsesRedundantAtoms) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  // e(x, y) ∧ e(x, z): core is e(x, y).
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(2)}));
  ConjunctiveQuery core = CoreOf(q);
  EXPECT_EQ(core.atoms.size(), 1u);
  EXPECT_TRUE(AreHomEquivalent(q, core));
}

TEST(ContainmentTest, CoreOfCycleIsItself) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  ConjunctiveQuery c3 = CycleQuery(e, 3);
  EXPECT_EQ(CoreOf(c3).atoms.size(), 3u);
  // 6-cycle folds onto ... itself? No: C6 -> C3 needs 3-coloring argument;
  // C6 maps homomorphically onto C3 (wrap), and C3 into C6? No (C3 has odd
  // girth 3, C6 has no 3-cycle). So core of C6 is C6.
  EXPECT_EQ(CoreOf(CycleQuery(e, 6)).atoms.size(), 6u);
}

TEST(ContainmentTest, CorePreservesAnswerVariables) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  ConjunctiveQuery q;
  q.answer_vars.push_back(MakeVar(1));
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  q.atoms.push_back(Atom(e, {MakeVar(2), MakeVar(1)}));
  ConjunctiveQuery core = CoreOf(q);
  EXPECT_EQ(core.atoms.size(), 1u);
  ASSERT_EQ(core.answer_vars.size(), 1u);
  EXPECT_EQ(core.answer_vars[0], MakeVar(1));
}

TEST(ContainmentTest, MinimizeUcqDropsSubsumedDisjuncts) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  UnionOfCQs ucq = {PathQuery(e, 3), PathQuery(e, 1), PathQuery(e, 2)};
  UnionOfCQs min = MinimizeUcq(ucq);
  // Everything is contained in the 1-path query.
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(min[0].atoms.size(), 1u);
}

TEST(ContainmentTest, UcqContainment) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  UnionOfCQs a = {PathQuery(e, 3)};
  UnionOfCQs b = {PathQuery(e, 2), CycleQuery(e, 2)};
  EXPECT_TRUE(UcqContainedIn(a, b));
  EXPECT_FALSE(UcqContainedIn(b, a));
}

TEST(ContainmentTest, MismatchedAnswerInterfacesAreNonComparable) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  // q1() = ∃x,y e(x, y) and q2(x) = e(x, y): a Boolean query must never be
  // hom-related to a non-Boolean one (the old laxity let IsContainedIn
  // equate them).
  ConjunctiveQuery boolean_q;
  boolean_q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  ConjunctiveQuery unary_q;
  unary_q.answer_vars.push_back(MakeVar(0));
  unary_q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  EXPECT_FALSE(HasQueryHom(boolean_q, unary_q));
  EXPECT_FALSE(HasQueryHom(unary_q, boolean_q));
  EXPECT_FALSE(IsContainedIn(boolean_q, unary_q));
  EXPECT_FALSE(IsContainedIn(unary_q, boolean_q));
  EXPECT_FALSE(AreHomEquivalent(boolean_q, unary_q));
  // Different positive arities are equally non-comparable.
  ConjunctiveQuery binary_q;
  binary_q.answer_vars = {MakeVar(0), MakeVar(1)};
  binary_q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  EXPECT_FALSE(HasQueryHom(unary_q, binary_q));
  EXPECT_FALSE(HasQueryHom(binary_q, unary_q));
}

TEST(ContainmentTest, MinimizeUcqCollapsesEquivalentVariableOrders) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  // Three hom-equivalent 2-path disjuncts written with different variable
  // orders; minimization must keep exactly one (the earliest)
  // representative, via the canonical key where normal forms coincide and
  // via subsumption probes where they do not.
  ConjunctiveQuery p1;  // e(x0, x1), e(x1, x2)
  p1.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  p1.atoms.push_back(Atom(e, {MakeVar(1), MakeVar(2)}));
  ConjunctiveQuery p2;  // e(x10, x11), e(x11, x12): same shape, renamed
  p2.atoms.push_back(Atom(e, {MakeVar(10), MakeVar(11)}));
  p2.atoms.push_back(Atom(e, {MakeVar(11), MakeVar(12)}));
  ConjunctiveQuery p3;  // atoms listed in reverse order
  p3.atoms.push_back(Atom(e, {MakeVar(7), MakeVar(8)}));
  p3.atoms.push_back(Atom(e, {MakeVar(6), MakeVar(7)}));
  SubsumptionStats stats;
  UnionOfCQs min = MinimizeUcq({p1, p2, p3}, &stats);
  ASSERT_EQ(min.size(), 1u);
  EXPECT_TRUE(AreHomEquivalent(min[0], p1));

  // p1 and p2 have identical normal forms: they collapse via the canonical
  // key with no hom search at all.
  SubsumptionStats key_stats;
  UnionOfCQs key_min = MinimizeUcq({p1, p2}, &key_stats);
  ASSERT_EQ(key_min.size(), 1u);
  EXPECT_EQ(key_stats.hom_checks, 0u);
}

TEST(ContainmentTest, MinimizeUcqKeepsEarliestOfEquivalentPair) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  // e(x, y), e(x, z) cores to e(x, y): equivalent to the 1-path but not
  // syntactically identical before coring. The earliest disjunct survives.
  ConjunctiveQuery redundant;
  redundant.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  redundant.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(2)}));
  UnionOfCQs min = MinimizeUcq({redundant, PathQuery(e, 1)});
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(min[0].atoms.size(), 1u);
}

TEST(ContainmentTest, FilterSignatureIsNecessaryForHoms) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  PredId u = std::move(sig.AddPredicate("u", 1)).ValueOrDie();
  TermId c = sig.AddConstant("c");

  ConjunctiveQuery path = PathQuery(e, 2);
  ConjunctiveQuery with_u = PathQuery(e, 2);
  with_u.atoms.push_back(Atom(u, {MakeVar(0)}));
  ConjunctiveQuery with_const;
  with_const.atoms.push_back(Atom(e, {MakeVar(0), c}));

  CqFilterSignature s_path = MakeFilterSignature(path);
  CqFilterSignature s_with_u = MakeFilterSignature(with_u);
  CqFilterSignature s_const = MakeFilterSignature(with_const);

  // u does not occur in path: no hom from with_u into path.
  EXPECT_FALSE(HomPossible(s_with_u, s_path));
  EXPECT_FALSE(HasQueryHom(with_u, path));
  // The other direction passes the filter and indeed has a hom.
  EXPECT_TRUE(HomPossible(s_path, s_with_u));
  EXPECT_TRUE(HasQueryHom(path, with_u));
  // Constants must be present in the target.
  EXPECT_FALSE(HomPossible(s_const, s_path));
  EXPECT_TRUE(HomPossible(s_path, s_const));
  // Mismatched answer interfaces fail the filter.
  ConjunctiveQuery unary = PathQuery(e, 2);
  unary.answer_vars.push_back(MakeVar(0));
  EXPECT_FALSE(HomPossible(MakeFilterSignature(unary), s_path));
}

TEST(ContainmentTest, SubsumptionIndexPrunesAndRetires) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  PredId u = std::move(sig.AddPredicate("u", 1)).ValueOrDie();
  UcqSubsumptionIndex index;
  index.Add(PathQuery(e, 1));
  SubsumptionStats stats;
  // A 3-path is contained in the 1-path (hom the other way).
  EXPECT_TRUE(index.Subsumes(PathQuery(e, 3), &stats));
  EXPECT_GE(stats.hom_checks, 1u);
  // A u-atom query shares no predicate: the pre-filter skips the hom
  // search entirely.
  ConjunctiveQuery uq;
  uq.atoms.push_back(Atom(u, {MakeVar(0)}));
  SubsumptionStats skip_stats;
  EXPECT_FALSE(index.Subsumes(uq, &skip_stats));
  EXPECT_EQ(skip_stats.hom_checks, 0u);
  EXPECT_EQ(skip_stats.prefilter_skipped, 1u);
  // SubsumedBy finds entries a new disjunct retires; Retire removes an
  // entry from all future probes.
  size_t u_idx = index.Add(std::move(uq));
  ConjunctiveQuery two_u;  // u(x), u(y) ⊆ u(x)
  two_u.atoms.push_back(Atom(u, {MakeVar(0)}));
  two_u.atoms.push_back(Atom(u, {MakeVar(1)}));
  std::vector<size_t> victims = index.SubsumedBy(PathQuery(e, 2), nullptr);
  EXPECT_TRUE(victims.empty());  // 1-path ⊄ 2-path
  EXPECT_TRUE(index.Subsumes(two_u, nullptr));
  index.Retire(u_idx);
  EXPECT_FALSE(index.Subsumes(two_u, nullptr));
}

TEST(QueryGraphTest, TreeAndCycleDetection) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  QueryGraphAnalysis path = AnalyzeQueryGraph(PathQuery(e, 3));
  EXPECT_TRUE(path.is_undirected_tree);
  EXPECT_FALSE(path.has_directed_cycle);
  EXPECT_FALSE(path.has_undirected_cycle);

  QueryGraphAnalysis cyc = AnalyzeQueryGraph(CycleQuery(e, 3));
  EXPECT_FALSE(cyc.is_undirected_tree);
  EXPECT_TRUE(cyc.has_directed_cycle);
  EXPECT_TRUE(cyc.has_undirected_cycle);

  QueryGraphAnalysis star = AnalyzeQueryGraph(StarQuery(e, 3));
  EXPECT_TRUE(star.is_undirected_tree);
}

TEST(QueryGraphTest, UndirectedCycleWithoutDirectedOne) {
  // The Example 9 pattern: f(z1, z), g(z2, z), f(w, z1), g(w, z2) — an
  // undirected 4-cycle, no directed cycle.
  Signature sig;
  PredId f = std::move(sig.AddPredicate("f", 2)).ValueOrDie();
  PredId g = std::move(sig.AddPredicate("g", 2)).ValueOrDie();
  ConjunctiveQuery q;
  TermId z = MakeVar(0), z1 = MakeVar(1), z2 = MakeVar(2), w = MakeVar(3);
  q.atoms.push_back(Atom(f, {z1, z}));
  q.atoms.push_back(Atom(g, {z2, z}));
  q.atoms.push_back(Atom(f, {w, z1}));
  q.atoms.push_back(Atom(g, {w, z2}));
  QueryGraphAnalysis a = AnalyzeQueryGraph(q);
  EXPECT_TRUE(a.has_undirected_cycle);
  EXPECT_FALSE(a.has_directed_cycle);
  EXPECT_FALSE(a.is_undirected_tree);

  // This query contains a cherry: two edges into z.
  auto cherry = FindCherry(q);
  ASSERT_TRUE(cherry.has_value());
  EXPECT_EQ(cherry->z, z);
}

TEST(QueryGraphTest, MeasureDecreasesUnderUnifyingNormalization) {
  // The unification candidate (z' = z'') always shrinks the variable count
  // and the Lemma 11 measure.
  Signature sig;
  PredId f = std::move(sig.AddPredicate("f", 2)).ValueOrDie();
  ConjunctiveQuery q;
  TermId z = MakeVar(0), z1 = MakeVar(1), z2 = MakeVar(2), w = MakeVar(3);
  q.atoms.push_back(Atom(f, {z1, z}));
  q.atoms.push_back(Atom(f, {z2, z}));
  q.atoms.push_back(Atom(f, {w, z1}));
  q.atoms.push_back(Atom(f, {w, z2}));
  auto cherry = FindCherry(q);
  ASSERT_TRUE(cherry.has_value());
  long before = MeasureOf(q);
  ConjunctiveQuery unified = NormalizationCandidates(q, *cherry, sig)[0];
  EXPECT_LT(unified.NumVariables(), q.NumVariables());
  EXPECT_LT(MeasureOf(unified), before);
}

TEST(QueryGraphTest, PaperMeasureIsNotMonotoneForEdgeRewrites) {
  // Documents a finding of this reproduction (see DESIGN.md): the literal
  // Lemma 11 measure Σ occ(x)·smaller(x) does NOT strictly decrease for the
  // edge-rewriting candidates (2)/(3). Minimal case: Ψ = R1(z', z) ∧
  // R2(z'', z) has Measure 4, and its rewrite R1(z', z) ∧ P(z'', z') also
  // has Measure 4. The pipeline therefore bounds normalization loops
  // explicitly instead of relying on the measure.
  Signature sig;
  PredId f = std::move(sig.AddPredicate("f", 2)).ValueOrDie();
  ConjunctiveQuery q;
  TermId z = MakeVar(0), z1 = MakeVar(1), z2 = MakeVar(2);
  q.atoms.push_back(Atom(f, {z1, z}));
  q.atoms.push_back(Atom(f, {z2, z}));
  EXPECT_EQ(MeasureOf(q), 4);
  ConjunctiveQuery rewrite;
  rewrite.atoms.push_back(Atom(f, {z1, z}));
  rewrite.atoms.push_back(Atom(f, {z2, z1}));
  EXPECT_EQ(MeasureOf(rewrite), 4);  // not strictly smaller
}

TEST(QueryGraphTest, UnaryAtomsDoNotCreateEdges) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  PredId u = std::move(sig.AddPredicate("u", 1)).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, 2);
  q.atoms.push_back(Atom(u, {MakeVar(0)}));
  QueryGraphAnalysis a = AnalyzeQueryGraph(q);
  EXPECT_EQ(a.num_edges, 2);
  EXPECT_TRUE(a.is_undirected_tree);
}

TEST(QueryGraphTest, SelfLoopIsDirectedCycle) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(0)}));
  QueryGraphAnalysis a = AnalyzeQueryGraph(q);
  EXPECT_TRUE(a.has_directed_cycle);
  EXPECT_TRUE(a.has_undirected_cycle);
}

}  // namespace
}  // namespace bddfc
