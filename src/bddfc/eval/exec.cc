#include "bddfc/eval/exec.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "bddfc/obs/trace.h"

namespace bddfc {

namespace {

/// Soft budget on TermIds per block: wide slot layouts get fewer rows per
/// block so one block stays around a cache-friendly 64 KiB.
constexpr size_t kBlockBudgetTerms = 16384;

/// Per-step execution context resolved once per ExecutePlan call: column
/// pointers, the clamped band, and whether the sorted index covers it.
struct StepCtx {
  std::vector<const TermId*> cols;
  uint32_t lo = 0;
  uint32_t hi = 0;
  /// Band covers the whole relation: candidate slices need no clamping.
  bool full_band = false;
  /// Every position is already known (no kNew slot): the step is a pure
  /// existence check, answered by one exact-tuple FindRow lookup instead
  /// of a postings probe (the cycle-closing case).
  bool exists_check = false;
  /// Per position: a kBound arg whose slot is filled by *this* step (a
  /// within-atom repeat), so verification reads the scratch row, not the
  /// input slots.
  std::vector<char> bound_local;
  /// Slots this step fills, in position order.
  std::vector<uint16_t> new_slots;
  /// Count-mode shortcuts: the single probe is this step's only
  /// constraint, so every candidate row matches (count += range size) —
  /// or the step has no constraints at all (count += band size).
  bool count_range_ok = false;
  bool count_all_rows = false;
};

struct Executor {
  const Structure& s;
  const QueryPlan& plan;
  const std::function<bool(const Binding&)>& on_match;
  MatchStats* stats;
  const std::function<bool()>* abort;
  size_t* count;  // non-null: count matches, skip Binding materialization
  /// Non-null: hand final blocks over whole instead of per-row Bindings
  /// (ExecutePlanBlocks). Set between construction and Init.
  const std::function<bool(const SlotBlock&)>* on_block = nullptr;

  std::vector<TermId> slot_vars;
  size_t width = 0;
  size_t block_rows = 0;
  std::vector<StepCtx> steps;
  std::vector<std::vector<TermId>> blocks;  // output buffer per step
  std::vector<TermId> scratch;  // this step's fresh slot values, one row
  std::vector<TermId> key_buf;  // exists-check tuple, reused per row
  Binding emit_b;               // reused across Emit rows
  std::vector<TermId*> emit_vals;  // slot -> &emit_b[slot_vars[slot]]
  bool stopped = false;  // callback ended enumeration
  bool aborted = false;  // abort hook tripped

  Executor(const Structure& s_, const QueryPlan& plan_,
           const std::function<bool(const Binding&)>& cb, MatchStats* st,
           const std::function<bool()>* ab, size_t* cnt = nullptr)
      : s(s_), plan(plan_), on_match(cb), stats(st), abort(ab), count(cnt) {}

  void Init(const std::vector<Atom>& atoms, const std::vector<RowBand>* bands,
            const std::vector<TermId>& prebound) {
    slot_vars = PlanSlotVars(plan, atoms, prebound);
    width = plan.num_slots;
    block_rows = std::max<size_t>(
        1, std::min(kExecBlockRows,
                    kBlockBudgetTerms / std::max<size_t>(width, 1)));
    steps.resize(plan.steps.size());
    blocks.resize(plan.steps.size());
    scratch.resize(width, 0);
    std::vector<char> is_local(width, 0);
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const PlanStep& st = plan.steps[i];
      StepCtx& sc = steps[i];
      const uint32_t n = static_cast<uint32_t>(s.NumFacts(st.pred));
      const RowBand band =
          bands != nullptr ? (*bands)[st.atom_index] : RowBand::All();
      sc.lo = band.begin;
      sc.hi = std::min<uint32_t>(band.end, n);
      sc.full_band = sc.lo == 0 && sc.hi == n;
      sc.cols.resize(st.args.size(), nullptr);
      sc.bound_local.assign(st.args.size(), 0);
      for (size_t pos = 0; pos < st.args.size(); ++pos) {
        const std::vector<TermId>* col = s.Column(st.pred, static_cast<int>(pos));
        sc.cols[pos] = col != nullptr ? col->data() : nullptr;
        const PlanArg& a = st.args[pos];
        if (a.kind == PlanArg::kNew) {
          sc.new_slots.push_back(a.slot);
          is_local[a.slot] = 1;
        } else if (a.kind == PlanArg::kBound) {
          sc.bound_local[pos] = is_local[a.slot];
        }
      }
      for (uint16_t slot : sc.new_slots) is_local[slot] = 0;
      sc.exists_check = sc.new_slots.empty() && !st.args.empty();
      // Count-mode shortcuts: valid when nothing beyond the probe (or
      // nothing at all) constrains a candidate row.
      bool only_probe_constrains = st.probe_positions.size() == 1;
      bool nothing_constrains = st.probe_positions.empty();
      for (size_t pos = 0; pos < st.args.size(); ++pos) {
        if (st.args[pos].kind == PlanArg::kNew) continue;
        nothing_constrains = false;
        if (st.probe_positions.size() != 1 ||
            pos != st.probe_positions.front()) {
          only_probe_constrains = false;
        }
      }
      sc.count_range_ok = only_probe_constrains;
      sc.count_all_rows = nothing_constrains;
    }
    if (count == nullptr && on_block == nullptr) {
      emit_b.reserve(width);
      emit_vals.resize(width, nullptr);
      for (size_t i = 0; i < width; ++i) {
        emit_vals[i] = &emit_b[slot_vars[i]];
      }
    }
  }

  bool CheckAbort() {
    if (!aborted && abort != nullptr && (*abort)()) aborted = true;
    return aborted;
  }

  void Emit(const TermId* rows, size_t n) {
    if (count != nullptr) {
      if (stats != nullptr) stats->bindings_tried += n;
      *count += n;
      return;
    }
    if (on_block != nullptr) {
      if (stats != nullptr) stats->bindings_tried += n;
      if (!(*on_block)(SlotBlock{rows, n, width, slot_vars.data()})) {
        stopped = true;
      }
      return;
    }
    // emit_b holds every slot variable as a key already; per row only the
    // mapped values are patched through stable element pointers — no hash
    // operations in the loop.
    for (size_t r = 0; r < n && !stopped; ++r) {
      const TermId* slots = rows + r * width;
      if (stats != nullptr) ++stats->bindings_tried;
      for (size_t i = 0; i < width; ++i) *emit_vals[i] = slots[i];
      if (!on_match(emit_b)) stopped = true;
    }
  }

  /// Verifies one candidate row against the input slots without touching
  /// the output block. Constants and already-bound slots compare; fresh
  /// slots fill `scratch` — in position order, so a later within-atom
  /// occurrence of a just-filled slot compares correctly (bound_local).
  bool VerifyRow(const PlanStep& st, const StepCtx& sc, const TermId* slots,
                 uint32_t row) {
    if (stats != nullptr) ++stats->rows_scanned;
    for (size_t pos = 0; pos < st.args.size(); ++pos) {
      const PlanArg& a = st.args[pos];
      const TermId rv = sc.cols[pos][row];
      switch (a.kind) {
        case PlanArg::kConst:
          if (a.value != rv) return false;
          break;
        case PlanArg::kBound: {
          const TermId bv =
              sc.bound_local[pos] ? scratch[a.slot] : slots[a.slot];
          if (bv != rv) return false;
          break;
        }
        case PlanArg::kNew:
          scratch[a.slot] = rv;
          break;
      }
    }
    return true;
  }

  /// Appends the input slots extended with the verified row's fresh slot
  /// values (left in `scratch` by VerifyRow). Failed rows never touch the
  /// block, so there is no copy-and-roll-back on the reject path.
  void AppendRow(const StepCtx& sc, const TermId* slots,
                 std::vector<TermId>* out) {
    const size_t base = out->size();
    out->insert(out->end(), slots, slots + width);
    TermId* dst = out->data() + base;
    for (uint16_t slot : sc.new_slots) dst[slot] = scratch[slot];
  }

  void RunStep(size_t si, const TermId* in, size_t in_rows) {
    if (stopped || CheckAbort()) return;
    if (si == plan.steps.size()) {
      Emit(in, in_rows);
      return;
    }
    const PlanStep& st = plan.steps[si];
    const StepCtx& sc = steps[si];
    if (sc.lo >= sc.hi) return;  // empty band: nothing can match
    std::vector<TermId>& out = blocks[si];
    out.clear();
    size_t out_rows = 0;
    auto flush = [&] {
      if (out_rows == 0) return;
      RunStep(si + 1, out.data(), out_rows);
      out.clear();
      out_rows = 0;
    };

    for (size_t r = 0; r < in_rows; ++r) {
      if (stopped || aborted) return;
      const TermId* slots = in + r * width;

      // Fully-bound step: one exact-tuple lookup decides it. The found
      // row id is its position in the columns, so the band check is a
      // comparison — no postings probe, no scan.
      if (sc.exists_check) {
        key_buf.clear();
        for (const PlanArg& a : st.args) {
          key_buf.push_back(a.kind == PlanArg::kConst ? a.value
                                                      : slots[a.slot]);
        }
        const uint32_t row = s.FindRow(st.pred, key_buf);
        if (row == Structure::kNoRow || row < sc.lo || row >= sc.hi) {
          if (stats != nullptr) ++stats->postings_misses;
          continue;
        }
        if (stats != nullptr) {
          ++stats->postings_hits;
          ++stats->rows_scanned;
        }
        if (count != nullptr && stats == nullptr &&
            si + 1 == plan.steps.size()) {
          ++*count;
          continue;
        }
        AppendRow(sc, slots, &out);
        if (++out_rows == block_rows) {
          flush();
          if (stopped || aborted) return;
        }
        continue;
      }

      // Probe every known position through the always-current hash
      // postings (measured faster than sorted-index binary search for
      // point probes); keep the smallest candidate slice.
      const uint32_t* cand_b = nullptr;
      const uint32_t* cand_e = nullptr;
      size_t best = SIZE_MAX;
      bool pruned = false;
      for (uint8_t pos : st.probe_positions) {
        const PlanArg& a = st.args[pos];
        const TermId v = a.kind == PlanArg::kConst ? a.value : slots[a.slot];
        const std::vector<uint32_t>* p = s.Postings(st.pred, pos, v);
        if (p == nullptr) {
          pruned = true;
          break;
        }
        const uint32_t* b = p->data();
        const uint32_t* e = b + p->size();
        if (!sc.full_band) {
          // Postings list rows ascending: the band is a slice.
          b = std::lower_bound(b, e, sc.lo);
          e = std::lower_bound(b, e, sc.hi);
        }
        if (b == e) {
          pruned = true;
          break;
        }
        if (static_cast<size_t>(e - b) < best) {
          best = static_cast<size_t>(e - b);
          cand_b = b;
          cand_e = e;
        }
      }
      if (pruned) {
        if (stats != nullptr) ++stats->postings_misses;
        continue;
      }
      if (stats != nullptr && cand_b != nullptr) ++stats->postings_hits;

      // Count pushdown on the final step: matches are counted straight
      // from the candidate range — by size when the probe is the only
      // constraint, by constraint checks (no block writes) otherwise.
      // Exact counters need rows_scanned/bindings_tried per candidate, so
      // a stats sink routes through the regular block path instead.
      if (count != nullptr && stats == nullptr &&
          si + 1 == plan.steps.size()) {
        if (cand_b != nullptr) {
          if (sc.count_range_ok) {
            *count += static_cast<size_t>(cand_e - cand_b);
          } else {
            for (const uint32_t* p = cand_b; p != cand_e; ++p) {
              if (VerifyRow(st, sc, slots, *p)) ++*count;
            }
          }
        } else if (sc.count_all_rows) {
          *count += sc.hi - sc.lo;
        } else {
          for (uint32_t row = sc.lo; row < sc.hi; ++row) {
            if (VerifyRow(st, sc, slots, row)) ++*count;
          }
        }
        continue;
      }

      if (cand_b != nullptr) {
        for (const uint32_t* p = cand_b; p != cand_e; ++p) {
          if (VerifyRow(st, sc, slots, *p)) {
            AppendRow(sc, slots, &out);
            if (++out_rows == block_rows) {
              flush();
              if (stopped || aborted) return;
            }
          }
        }
      } else {
        // No probe positions: scan the band.
        for (uint32_t row = sc.lo; row < sc.hi; ++row) {
          if (VerifyRow(st, sc, slots, row)) {
            AppendRow(sc, slots, &out);
            if (++out_rows == block_rows) {
              flush();
              if (stopped || aborted) return;
            }
          }
        }
      }
    }
    flush();
  }

  bool Run(const Binding& partial, const std::vector<TermId>& prebound) {
    std::vector<TermId> seed(width, 0);
    for (size_t i = 0; i < prebound.size(); ++i) {
      auto it = partial.find(prebound[i]);
      assert(it != partial.end() && "prebound variable missing from partial");
      seed[i] = it->second;
    }
    RunStep(0, seed.data(), 1);
    return !aborted;
  }
};

std::vector<TermId> SortedKeys(const Binding& partial) {
  std::vector<TermId> keys;
  keys.reserve(partial.size());
  for (const auto& [v, c] : partial) keys.push_back(v);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

bool ExecutePlan(const Structure& s, const QueryPlan& plan,
                 const std::vector<Atom>& atoms,
                 const std::vector<RowBand>* bands, const Binding& partial,
                 const std::vector<TermId>& prebound,
                 const std::function<bool(const Binding&)>& on_match,
                 MatchStats* stats, const std::function<bool()>* abort) {
  obs::TraceSpan span("plan.exec");
  Executor ex(s, plan, on_match, stats, abort);
  ex.Init(atoms, bands, prebound);
  return ex.Run(partial, prebound);
}

bool ExecutePlanBlocks(const Structure& s, const QueryPlan& plan,
                       const std::vector<Atom>& atoms,
                       const std::vector<RowBand>* bands,
                       const std::function<bool(const SlotBlock&)>& on_block,
                       MatchStats* stats, const std::function<bool()>* abort) {
  obs::TraceSpan span("plan.exec");
  static const std::function<bool(const Binding&)> kUnused;
  Executor ex(s, plan, kUnused, stats, abort);
  ex.on_block = &on_block;
  ex.Init(atoms, bands, {});
  return ex.Run({}, {});
}

bool ExecuteBandedPlan(const Structure& s, PlanCache& cache,
                       const std::vector<Atom>& atoms, size_t anchor,
                       const std::vector<RowBand>& bands,
                       const std::function<bool(const Binding&)>& on_match,
                       MatchStats* stats, const std::function<bool()>* abort) {
  std::shared_ptr<const QueryPlan> plan = cache.Get(s, atoms, anchor);
  return ExecutePlan(s, *plan, atoms, &bands, {}, {}, on_match, stats, abort);
}

bool PlanExists(const Structure& s, const std::vector<Atom>& atoms,
                const Binding& partial) {
  const std::vector<TermId> prebound = SortedKeys(partial);
  QueryPlan plan = CompilePlan(s, atoms, kNoAnchor, prebound);
  bool found = false;
  ExecutePlan(s, plan, atoms, nullptr, partial, prebound,
              [&found](const Binding&) {
                found = true;
                return false;  // stop at first match
              });
  return found;
}

void PlanEnumerate(const Structure& s, const std::vector<Atom>& atoms,
                   const Binding& partial,
                   const std::function<bool(const Binding&)>& on_match,
                   MatchStats* stats) {
  const std::vector<TermId> prebound = SortedKeys(partial);
  QueryPlan plan = CompilePlan(s, atoms, kNoAnchor, prebound);
  ExecutePlan(s, plan, atoms, nullptr, partial, prebound, on_match, stats);
}

size_t PlanCountMatches(const Structure& s, const std::vector<Atom>& atoms,
                        const Binding& partial) {
  // Counting mode: no Binding is ever materialized, and the final step
  // counts matches directly from its candidate ranges (aggregate
  // pushdown). The count still equals the number of bindings Enumerate
  // would deliver — PlanTest pins this against the Matcher.
  const std::vector<TermId> prebound = SortedKeys(partial);
  QueryPlan plan = CompilePlan(s, atoms, kNoAnchor, prebound);
  size_t n = 0;
  static const std::function<bool(const Binding&)> kUnused;
  Executor ex(s, plan, kUnused, nullptr, nullptr, &n);
  ex.Init(atoms, nullptr, prebound);
  ex.Run(partial, prebound);
  return n;
}

}  // namespace bddfc
