// E17 — Paranoia-mode overhead.
//
// Paranoia (DESIGN §2.14) promotes the chase's test-only invariants to
// runtime checks: at kCheap an O(1)-per-round identity pass (sink
// counters, index watermark freshness, round-prefix consistency on
// trips), at kFull additionally a re-verification of the round's kept
// buffers against the frozen structure. The acceptance bar is <= 2%
// end-to-end overhead at kCheap; kFull is reported for scale (it is a
// debugging mode, not production default).
//
// Methodology is E13/E14's: interleaved ABBA pairs of blocked samples,
// median paired thread-CPU delta over the median baseline sample, on
// the E1 chase shapes (Example 9's exponential tree amortizes the
// per-round check over wide rounds; Example 1's 400-round chain is the
// adversarial granularity floor, ~6 us rounds) plus the E15b TC
// saturation family where the vectorized sink — whose counters the
// cheap identity reads — dominates.

#include "bench_common.h"

#include <algorithm>
#include <ctime>
#include <vector>

#include "bddfc/base/faults.h"
#include "bddfc/chase/chase.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

double ThreadCpuMs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double MedianPairedDelta(const std::vector<double>& off,
                         const std::vector<double>& on) {
  std::vector<double> deltas(off.size());
  for (size_t i = 0; i < off.size(); ++i) deltas[i] = on[i] - off[i];
  return Median(std::move(deltas));
}

double TimeChaseMs(const Program& p, size_t max_rounds, ParanoiaLevel level,
                   int block) {
  ChaseOptions opts;
  opts.max_rounds = max_rounds;
  opts.max_facts = 5000000;
  opts.paranoia = level;
  double t0 = ThreadCpuMs();
  for (int i = 0; i < block; ++i) {
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
  }
  return ThreadCpuMs() - t0;
}

void PrintOverheadTable() {
  bddfc_bench::Banner("E17", "paranoia overhead (off vs cheap vs full)");
  std::printf("%-16s %-10s %-20s %-20s\n", "workload", "off ms",
              "cheap ms (overhead)", "full ms (overhead)");

  const int kReps = 31;

  auto run = [&](const char* name, int block, auto&& sample) {
    std::vector<double> off_ms, cheap_ms, full_ms;
    // Interleave and alternate within-pair order (ABBA) per E13/E14 so
    // frequency scaling, allocator state and co-tenants hit every mode
    // equally; the warm-up rep is discarded.
    for (int rep = -1; rep < kReps; ++rep) {
      const bool off_first = (rep & 1) == 0;
      double a = sample(off_first ? ParanoiaLevel::kOff : ParanoiaLevel::kFull);
      double b = sample(ParanoiaLevel::kCheap);
      double c = sample(off_first ? ParanoiaLevel::kFull : ParanoiaLevel::kOff);
      if (rep < 0) continue;
      off_ms.push_back(off_first ? a : c);
      cheap_ms.push_back(b);
      full_ms.push_back(off_first ? c : a);
    }
    double off_med = Median(off_ms);
    double cheap_delta = MedianPairedDelta(off_ms, cheap_ms);
    double full_delta = MedianPairedDelta(off_ms, full_ms);
    std::printf("%-16s %-10.3f %-8.3f (%+.2f%%)    %-8.3f (%+.2f%%)\n", name,
                off_med / block, (off_med + cheap_delta) / block,
                100.0 * cheap_delta / std::max(off_med, 1e-9),
                (off_med + full_delta) / block,
                100.0 * full_delta / std::max(off_med, 1e-9));
  };

  Program e9 = Example9();
  run("e1-example9", 1,
      [&](ParanoiaLevel l) { return TimeChaseMs(e9, 12, l, 1); });
  Program e1 = Example1();
  run("e1-example1", 8,
      [&](ParanoiaLevel l) { return TimeChaseMs(e1, 400, l, 8); });

  // E15b's sink-bound TC workload: datalog closure where every round is
  // dominated by the vectorized sink whose counters kCheap audits.
  auto sig = std::make_shared<Signature>();
  Structure tc = RandomGraph(sig, /*nodes=*/48, /*edges=*/160, /*seed=*/7);
  PredId e0 = std::move(sig->FindPredicate("e0")).ValueOrDie();
  Program tc_p(sig);
  tc_p.instance = std::move(tc);
  TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
  (void)tc_p.theory.AddRule(
      Rule({Atom(e0, {x, y}), Atom(e0, {y, z})}, {Atom(e0, {x, z})}));
  run("e15b-tc-48", 4,
      [&](ParanoiaLevel l) { return TimeChaseMs(tc_p, 64, l, 4); });

  std::printf("acceptance bar: <= 2%% overhead at --paranoia=cheap\n");
}

}  // namespace

BDDFC_BENCH_MAIN(PrintOverheadTable)
