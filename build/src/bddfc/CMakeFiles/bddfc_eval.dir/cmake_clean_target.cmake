file(REMOVE_RECURSE
  "libbddfc_eval.a"
)
