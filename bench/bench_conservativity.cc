// E6 — Conservativity (Def. 8/9): the smallest n for which the naturally
// colored chain/tree quotient is n-conservative up to size m, per m.
// Expected shape (Example 5): n = m + 2 suffices on chains; without colors
// no n works even for m = 1 (Example 3's parasite self-loop).

#include "bench_common.h"

#include "bddfc/types/conservativity.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E6", "smallest conservative n per m");
  std::printf("%-14s %-4s %-14s %-14s\n", "structure", "m", "smallest n",
              "quotient size");
  struct Shape {
    const char* name;
    int chain_len;   // chain length or tree depth
    bool tree;
  } shapes[] = {{"chain16", 16, false},
                {"chain24", 24, false},
                {"tree4", 4, true}};
  for (auto& shape : shapes) {
    for (int m = 1; m <= 2; ++m) {
      int found_n = -1;
      int quot = -1;
      for (int n = 2; n <= m + 3; ++n) {
        auto sig = std::make_shared<Signature>();
        Structure c = shape.tree ? MakeBinaryTree(sig, shape.chain_len)
                                 : MakeChain(sig, shape.chain_len);
        ConservativityProbe probe = ProbeConservativity(c, m, n, 5000000);
        if (probe.status.ok() && probe.conservative) {
          found_n = n;
          quot = probe.quotient_size;
          break;
        }
      }
      std::printf("%-14s %-4d %-14s %-14s\n", shape.name, m,
                  found_n < 0 ? "none<=m+3" : std::to_string(found_n).c_str(),
                  quot < 0 ? "-" : std::to_string(quot).c_str());
    }
  }

  std::printf("\nuncolored control (Example 3): quotient of the bare chain "
              "is never conservative:\n");
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 16);
  auto part = ExactPtpPartition(chain, 3);
  if (part.ok()) {
    Quotient q = BuildQuotient(chain, part.value());
    std::vector<PredId> sigma = {
        std::move(sig->FindPredicate("e")).ValueOrDie()};
    ConservativityReport rep = CheckConservativeUpTo(chain, q, 1, sigma);
    std::printf("  n=3, m=1: conservative=%s\n",
                rep.conservative ? "yes (unexpected)" : "no (as predicted)");
  }
}

void BM_ProbeConservativity(benchmark::State& state) {
  for (auto _ : state) {
    auto sig = std::make_shared<Signature>();
    Structure chain = MakeChain(sig, static_cast<int>(state.range(0)));
    ConservativityProbe probe = ProbeConservativity(chain, 1, 3, 5000000);
    benchmark::DoNotOptimize(probe.conservative);
  }
}
BENCHMARK(BM_ProbeConservativity)->Arg(8)->Arg(16)->Arg(24);

void BM_ConservativityCheckOnly(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, static_cast<int>(state.range(0)));
  Result<Coloring> col = NaturalColoring(chain, 1);
  auto part = ExactPtpPartition(col.value().colored, 3);
  if (!part.ok()) {
    state.SkipWithError("partition budget");
    return;
  }
  Quotient q = BuildQuotient(col.value().colored, part.value());
  for (auto _ : state) {
    ConservativityReport rep = CheckConservativeUpTo(
        col.value().colored, q, 1, col.value().base_predicates);
    benchmark::DoNotOptimize(rep.conservative);
  }
}
BENCHMARK(BM_ConservativityCheckOnly)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
