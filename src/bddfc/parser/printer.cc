#include "bddfc/parser/printer.h"

#include <unordered_map>

namespace bddfc {

namespace {

/// Variable renderer: stable V<k> names per statement.
class VarNamer {
 public:
  std::string Name(TermId v) {
    auto [it, inserted] = names_.emplace(v, "V" + std::to_string(next_));
    if (inserted) ++next_;
    return it->second;
  }

 private:
  std::unordered_map<TermId, std::string> names_;
  int next_ = 0;
};

std::string AtomText(const Atom& a, const Signature& sig, VarNamer* namer) {
  std::string s = sig.PredicateName(a.pred);
  if (a.args.empty()) return s;
  s += "(";
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (i) s += ", ";
    s += IsVar(a.args[i]) ? namer->Name(a.args[i])
                          : sig.ConstantName(a.args[i]);
  }
  return s + ")";
}

std::string AtomListText(const std::vector<Atom>& atoms, const Signature& sig,
                         VarNamer* namer) {
  std::string s;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i) s += ", ";
    s += AtomText(atoms[i], sig, namer);
  }
  return s;
}

}  // namespace

std::string RuleToProgramText(const Rule& rule, const Signature& sig) {
  VarNamer namer;
  std::string s = AtomListText(rule.body, sig, &namer);
  s += " -> ";
  std::vector<TermId> ex = rule.ExistentialVariables();
  if (!ex.empty()) {
    s += "exists ";
    for (size_t i = 0; i < ex.size(); ++i) {
      if (i) s += ", ";
      s += namer.Name(ex[i]);
    }
    s += ": ";
  }
  s += AtomListText(rule.head, sig, &namer);
  return s + ".";
}

std::string ToProgramText(const Theory& theory, const Structure* instance,
                          const std::vector<ConjunctiveQuery>* queries) {
  const Signature& sig = theory.sig();
  std::string out;
  for (const Rule& r : theory.rules()) {
    out += RuleToProgramText(r, sig);
    out += "\n";
  }
  if (instance != nullptr) {
    instance->ForEachFact([&](PredId p, const std::vector<TermId>& row) {
      VarNamer namer;
      out += AtomText(Atom(p, row), sig, &namer);
      out += ".\n";
    });
  }
  if (queries != nullptr) {
    for (const ConjunctiveQuery& q : *queries) {
      VarNamer namer;
      out += "?- " + AtomListText(q.atoms, sig, &namer) + ".\n";
    }
  }
  return out;
}

}  // namespace bddfc
