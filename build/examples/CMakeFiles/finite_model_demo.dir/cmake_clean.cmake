file(REMOVE_RECURSE
  "CMakeFiles/finite_model_demo.dir/finite_model_demo.cpp.o"
  "CMakeFiles/finite_model_demo.dir/finite_model_demo.cpp.o.d"
  "finite_model_demo"
  "finite_model_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_model_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
