// Positive n-types (§2.2, Def. 3–4) and their containment/equality.
//
// ptp_n(C, e, Θ) is the set of *conjunctive queries* Ψ(x̄, y) with |x̄| < n
// (at most n variables in total) that hold at e. Note the logic is CQs, not
// n-variable existential-positive FO: a CQ is a single conjunction, so its
// variables cannot be re-quantified — an unbounded pebble game would decide
// the (strictly stronger) ∃⁺FOⁿ equivalence and is NOT what Def. 3 asks
// for. (Example: on a finite E-chain, ptp_2 cannot see the distance to the
// chain's end, but ∃⁺FO² can by re-using two variables to walk the chain.)
//
// Every CQ with ≤ n variables that holds at (A, a) factors through the
// canonical query of one "valuation pattern": a set S of at most n labeled
// nulls of A (variables mapped to named constants fold into the constant
// context, since the strongest pattern adds the x = c atoms Def. 3 allows).
// Hence
//
//   ptp_n(A, a, Θ) ⊆ ptp_n(B, b, Θ)
//     ⇔  for every S ⊆ Nulls(A) with a ∈ S, |S| ≤ n:
//          the canonical query of A ↾ (S ∪ C_con) over Θ has a
//          homomorphism into B mapping a ↦ b and fixing named constants,
//
// plus the global conditions: constant-only atoms of A hold in B, and a
// named constant a forces b = a (the equality atom y = c of Remark 1).
//
// The oracle below enumerates patterns lazily per source element and
// evaluates the canonical queries with the index-backed matcher.

#ifndef BDDFC_TYPES_PTYPE_H_
#define BDDFC_TYPES_PTYPE_H_

#include <memory>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/core/structure.h"

namespace bddfc {

/// Options for positive-type computations.
struct TypeOracleOptions {
  /// The variable budget n of Def. 3 (y included).
  int num_variables = 2;
  /// Predicates defining the type signature Θ (empty = all). Pass the base
  /// predicates (without colors) for the Σ-types of Def. 8.
  std::vector<PredId> predicates;
  /// Safety cap on (pattern, target) query evaluations per containment.
  size_t max_patterns = 5000000;
  /// Resource governor (not owned; may be null): strided deadline/memory/
  /// cancellation probes inside pattern enumeration; the oracle's incident
  /// index is charged to its accountant for the oracle's lifetime. A trip
  /// makes subsequent answers inconclusive — it is reported through
  /// budget_exhausted() exactly like a max_patterns trip.
  ExecutionContext* context = nullptr;
};

/// Decides positive-type containment between elements of A and B.
/// A and B must share the same Signature object (B may equal A).
class TypeOracle {
 public:
  TypeOracle(const Structure& a, const Structure& b,
             const TypeOracleOptions& options);
  ~TypeOracle();

  TypeOracle(TypeOracle&&) noexcept;
  TypeOracle& operator=(TypeOracle&&) noexcept;

  /// True iff ptp_n(A, ea, Θ) ⊆ ptp_n(B, eb, Θ).
  bool TypeContained(TermId ea, TermId eb) const;

  /// Number of canonical-query evaluations performed so far.
  size_t patterns_checked() const;

  /// True when some containment check tripped max_patterns *or* the
  /// attached governor tripped (deadline/memory/cancel): every `false`
  /// answer given since is inconclusive. Never silently swallowed —
  /// callers must consult this before trusting a negative answer.
  bool budget_exhausted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A partition of a structure's domain by positive-n-type equality
/// (the relation ≡_n of Def. 4).
struct TypePartition {
  int n = 0;
  /// class_id[i] = class of elements[i] (aligned with Structure::Domain()).
  std::vector<int> class_id;
  std::vector<TermId> elements;
  int num_classes = 0;

  /// Class of a given element (linear scan helper for tests).
  int ClassOf(TermId e) const;
};

/// Computes ≡_n exactly via pairwise mutual type containment against class
/// representatives. Named constants always form singleton classes
/// (Remark 1).
Result<TypePartition> ExactPtpPartition(
    const Structure& c, int n, const std::vector<PredId>& predicates = {},
    size_t max_patterns = 5000000, ExecutionContext* context = nullptr);

/// Cheap refinement of ≡_n: partition by the canonical form of each
/// element's undirected radius-(n-1) neighborhood among labeled nulls
/// (named constants act as labels). Exact tree canonization is used when
/// the neighborhood is a tree — always the case on forests, hence on
/// Lemma 3 skeletons; cyclic neighborhoods fall back to a Weisfeiler–Leman
/// hash and may over-merge (downstream certification catches this).
TypePartition BallPartition(const Structure& c, int n,
                            const std::vector<PredId>& predicates = {});

/// Partition for *chase-prefix forests*: two elements are merged when their
/// colored ancestor paths of length n-1 (element labels + edge predicates,
/// truncated at roots) coincide. In the infinite chase of a (♠5)-normalized
/// theory the subtree below an element is generated deterministically from
/// the element's creation context, so equal ancestor paths imply equal
/// positive types *in the infinite chase* — this is the partition the
/// finite-model pipeline quotients by, because it correctly merges the
/// prefix frontier with interior elements (the Example 3 self-loop) instead
/// of leaving a dangling tail. Requires the nulls of `c` to form a forest.
TypePartition AncestorPathPartition(const Structure& c, int n,
                                    const std::vector<PredId>& predicates = {});

}  // namespace bddfc

#endif  // BDDFC_TYPES_PTYPE_H_
