#include "bddfc/testing/shrinker.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

namespace bddfc {

namespace {

/// The mutable decomposition of a scenario the shrinker edits.
struct Parts {
  std::vector<Rule> rules;
  std::vector<Atom> facts;
  std::vector<ConjunctiveQuery> queries;
};

Parts Decompose(const Scenario& s) {
  Parts p;
  p.rules = s.theory.rules();
  s.instance.ForEachFact([&](PredId pred, const std::vector<TermId>& row) {
    p.facts.push_back(Atom(pred, row));
  });
  p.queries = s.queries;
  return p;
}

/// Rebuilds a scenario over the *shared* signature (removal never needs
/// new ids). nullopt when a candidate rule no longer validates.
std::optional<Scenario> Recompose(const Scenario& base, const Parts& p) {
  Scenario s(base.sig);
  s.family = base.family;
  s.seed = base.seed;
  for (const Rule& r : p.rules) {
    if (!s.theory.AddRule(r).ok()) return std::nullopt;
  }
  for (const Atom& f : p.facts) s.instance.AddFact(f);
  s.queries = p.queries;
  return s;
}

/// ddmin-style list reduction: tries dropping windows of decreasing size;
/// `fails_without` re-checks the oracle on the candidate list. Returns true
/// when anything was removed.
template <typename T, typename FailsWithout>
bool ShrinkList(std::vector<T>* items, const FailsWithout& fails_without,
                size_t max_attempts, ShrinkStats* stats) {
  bool progress = false;
  for (size_t chunk = std::max<size_t>(items->size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    for (size_t start = 0; start < items->size();) {
      if (stats->attempts >= max_attempts) return progress;
      size_t len = std::min(chunk, items->size() - start);
      std::vector<T> candidate;
      candidate.reserve(items->size() - len);
      candidate.insert(candidate.end(), items->begin(),
                       items->begin() + static_cast<ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       items->begin() + static_cast<ptrdiff_t>(start + len),
                       items->end());
      ++stats->attempts;
      if (fails_without(candidate)) {
        *items = std::move(candidate);
        stats->removals += len;
        progress = true;  // same start: the next window shifted in
      } else {
        start += len;
      }
    }
    if (chunk == 1) break;
  }
  return progress;
}

}  // namespace

Scenario ShrinkScenario(const Scenario& s, const Oracle& oracle,
                        const OracleConfig& config, size_t max_attempts,
                        ShrinkStats* stats) {
  ShrinkStats local;
  if (stats == nullptr) stats = &local;

  auto fails = [&](const Parts& parts) {
    std::optional<Scenario> candidate = Recompose(s, parts);
    return candidate.has_value() &&
           oracle.Check(*candidate, config).failed();
  };

  Parts parts = Decompose(s);
  ++stats->attempts;
  if (!fails(parts)) return s;  // precondition violated: nothing to shrink

  bool progress = true;
  while (progress && stats->attempts < max_attempts) {
    progress = false;

    progress |= ShrinkList(&parts.rules,
                           [&](const std::vector<Rule>& rules) {
                             Parts cand = parts;
                             cand.rules = rules;
                             return fails(cand);
                           },
                           max_attempts, stats);
    progress |= ShrinkList(&parts.facts,
                           [&](const std::vector<Atom>& facts) {
                             Parts cand = parts;
                             cand.facts = facts;
                             return fails(cand);
                           },
                           max_attempts, stats);
    progress |= ShrinkList(&parts.queries,
                           [&](const std::vector<ConjunctiveQuery>& queries) {
                             Parts cand = parts;
                             cand.queries = queries;
                             return fails(cand);
                           },
                           max_attempts, stats);

    // Atom-level passes: drop single body/head atoms of rules and single
    // query atoms (each list keeps at least one atom).
    for (size_t ri = 0; ri < parts.rules.size(); ++ri) {
      for (auto member : {&Rule::body, &Rule::head}) {
        for (size_t ai = 0; (parts.rules[ri].*member).size() > 1 &&
                            ai < (parts.rules[ri].*member).size();) {
          if (stats->attempts >= max_attempts) break;
          Parts cand = parts;
          auto& atoms = cand.rules[ri].*member;
          atoms.erase(atoms.begin() + static_cast<ptrdiff_t>(ai));
          ++stats->attempts;
          if (fails(cand)) {
            parts = std::move(cand);
            ++stats->removals;
            progress = true;
          } else {
            ++ai;
          }
        }
      }
    }
    for (size_t qi = 0; qi < parts.queries.size(); ++qi) {
      for (size_t ai = 0; parts.queries[qi].atoms.size() > 1 &&
                          ai < parts.queries[qi].atoms.size();) {
        if (stats->attempts >= max_attempts) break;
        Parts cand = parts;
        auto& atoms = cand.queries[qi].atoms;
        atoms.erase(atoms.begin() + static_cast<ptrdiff_t>(ai));
        ++stats->attempts;
        if (fails(cand)) {
          parts = std::move(cand);
          ++stats->removals;
          progress = true;
        } else {
          ++ai;
        }
      }
    }
  }

  std::optional<Scenario> minimized = Recompose(s, parts);
  return minimized.has_value() ? std::move(*minimized) : s;
}

}  // namespace bddfc
