// Structured tracing: RAII spans recorded into a preallocated ring
// buffer and exported as Chrome trace_event JSON (loadable in
// chrome://tracing and Perfetto).
//
// A TraceSpan opens on construction (a 'B' event) and closes on
// destruction (an 'E' event). Spans carry:
//   * a small stable thread id (assigned per OS thread on first use),
//   * a process-unique span id and the id of the enclosing span on the
//     same thread (a thread-local stack), and
//   * an optional short detail string, set any time before destruction.
// Cross-thread fan-outs stay attached: the ThreadPool captures the
// submitting span's id at Submit() and opens each task's span with that
// id as an explicit parent, so a rewrite fan-out's per-query spans nest
// under the ProbeBdd/ComputeKappa span that submitted them even though
// they run on other threads.
//
// Cost model: when tracing is disabled (the default), constructing a
// span is one relaxed atomic load and nothing else — no allocation, no
// clock read. When enabled, Begin/End take a mutex, read steady_clock
// and write one fixed-size slot in the preallocated ring; span names
// must be string literals (the recorder stores the pointer). The ring
// overwrites its oldest events when full; the exporter repairs the
// resulting orphans (an 'E' whose 'B' was overwritten is dropped, a 'B'
// still open at export gets a synthetic 'E'), so the exported JSON is
// always balanced and per-thread monotone — the contract
// tools/trace_check enforces.

#ifndef BDDFC_OBS_TRACE_H_
#define BDDFC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bddfc::obs {

/// One ring slot. `name` must point at a string literal (or memory that
/// outlives the tracer); `detail` is copied inline and truncated. The
/// slot is packed and aligned to exactly one cache line: recording is a
/// cold-slot write (the workload between events evicts the ring), so
/// every extra line per event is an extra memory stall on the hot path.
struct alignas(64) TraceEvent {
  /// Raw monotonic ticks since the tracer's epoch (TSC on x86-64, else
  /// steady_clock nanoseconds); converted to microseconds at export so
  /// the hot path pays a register read instead of a vDSO call.
  int64_t ts_ticks = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = top-level
  const char* name = "";
  uint32_t tid = 0;        ///< small stable per-thread id
  char phase = 'B';        ///< 'B' or 'E'
  char detail[27] = {};    ///< optional, NUL-terminated, may be empty
};
static_assert(sizeof(TraceEvent) == 64, "one event == one cache line");

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every span records to. Disabled until a
  /// tool opts in (--trace-out) or a test calls Enable().
  static Tracer& Global();

  /// Allocates (or re-allocates) the ring and turns recording on.
  /// `capacity_events` is clamped to >= 64; 64 bytes per slot.
  void Enable(size_t capacity_events = size_t{1} << 16);
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded event (capacity and enabled state stay).
  void Reset();

  /// The innermost span currently open on this thread (0 = none). What
  /// the ThreadPool captures at Submit() to re-parent task spans.
  static uint64_t CurrentSpanId();

  /// Spans overwritten or repaired is visible here: how many events the
  /// ring dropped by wrapping since Enable/Reset.
  uint64_t overwritten_events() const {
    return overwritten_.load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON: {"traceEvents":[...]}. Balanced B/E per
  /// tid, ts monotone per tid, stable order. Safe to call while spans
  /// are still open (they get synthetic 'E's in the export only).
  std::string ExportChromeJson() const;

  // -- used by TraceSpan -----------------------------------------------------

  uint64_t Begin(const char* name, uint64_t parent_id);
  void End(const char* name, uint64_t span_id, uint64_t parent_id,
           std::string_view detail);

 private:
  void Record(char phase, const char* name, uint64_t span_id,
              uint64_t parent_id, std::string_view detail);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> overwritten_{0};
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_{};
  uint64_t epoch_ticks_ = 0;  ///< tick-counter reading taken at epoch_
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;    // next slot to write
  size_t filled_ = 0;  // slots holding valid events (<= ring_.size())
};

/// RAII span. Construct with a string literal name; optionally
/// set_detail() before destruction (recorded on the 'E' event). The
/// (name, parent) form re-parents the span under an explicit span id
/// captured on another thread. The (tracer, name) form records to an
/// explicit tracer — a per-session ring instead of the process-wide one
/// (null falls back to Global()); span ids are process-unique across
/// tracers, so parent links stay coherent even if nested spans land in
/// different rings.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, uint64_t explicit_parent);
  TraceSpan(Tracer* tracer, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_detail(std::string detail) { detail_ = std::move(detail); }
  /// This span's id (0 when tracing is disabled).
  uint64_t id() const { return id_; }

 private:
  void Open(Tracer& tracer, const char* name, uint64_t parent);

  Tracer* tracer_ = nullptr;  // the tracer Open recorded to
  const char* name_ = "";
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  bool active_ = false;
  bool pushed_ = false;  // id_ sits on this thread's span stack
  std::string detail_;
};

}  // namespace bddfc::obs

#endif  // BDDFC_OBS_TRACE_H_
