#include "bddfc/core/structure.h"

#include <algorithm>
#include <cassert>

namespace bddfc {

namespace {
const std::vector<std::vector<TermId>> kEmptyRows;
}  // namespace

Structure::Relation& Structure::GetRelation(PredId pred) {
  if (static_cast<size_t>(pred) >= relations_.size()) {
    relations_.resize(pred + 1);
  }
  Relation& rel = relations_[pred];
  if (rel.by_pos.empty()) {
    rel.arity = sig_->arity(pred);
    rel.by_pos.resize(std::max(rel.arity, 1));
    rel.cols.resize(std::max(rel.arity, 1));
  }
  return rel;
}

const Structure::Relation* Structure::FindRelation(PredId pred) const {
  if (pred < 0 || static_cast<size_t>(pred) >= relations_.size()) {
    return nullptr;
  }
  return &relations_[pred];
}

bool Structure::AddFact(PredId pred, const std::vector<TermId>& args) {
  assert(pred >= 0 && pred < sig_->num_predicates());
  assert(static_cast<int>(args.size()) == sig_->arity(pred));
  Relation& rel = GetRelation(pred);
  auto [it, inserted] =
      rel.lookup.emplace(args, static_cast<uint32_t>(rel.rows.size()));
  if (!inserted) return false;
  uint32_t row = it->second;
  rel.rows.push_back(args);
  for (int pos = 0; pos < rel.arity; ++pos) {
    assert(IsConst(args[pos]));
    rel.by_pos[pos][args[pos]].push_back(row);
    rel.cols[pos].push_back(args[pos]);
    AddDomainElement(args[pos]);
  }
  ++num_facts_;
  if (accountant_ != nullptr) {
    accountant_->Charge(ApproxFactBytes(args.size()));
  }
  return true;
}

size_t Structure::ApproxAccountedBytes() const {
  size_t bytes = 0;
  for (const Relation& rel : relations_) {
    bytes += rel.rows.size() *
             ApproxFactBytes(static_cast<size_t>(std::max(rel.arity, 0)));
  }
  return bytes;
}

void Structure::AddDomainElement(TermId c) {
  assert(IsConst(c));
  if (static_cast<size_t>(c) >= in_domain_.size()) {
    in_domain_.resize(c + 1, 0);
  }
  if (!in_domain_[c]) {
    in_domain_[c] = 1;
    domain_.push_back(c);
  }
}

bool Structure::Contains(PredId pred, const std::vector<TermId>& args) const {
  const Relation* rel = FindRelation(pred);
  if (rel == nullptr) return false;
  return rel->lookup.find(args) != rel->lookup.end();
}

uint32_t Structure::FindRow(PredId pred,
                            const std::vector<TermId>& args) const {
  const Relation* rel = FindRelation(pred);
  if (rel == nullptr) return kNoRow;
  auto it = rel->lookup.find(args);
  return it == rel->lookup.end() ? kNoRow : it->second;
}

const std::vector<std::vector<TermId>>& Structure::Rows(PredId pred) const {
  const Relation* rel = FindRelation(pred);
  return rel == nullptr ? kEmptyRows : rel->rows;
}

PredId Structure::NumStoredPredicates() const {
  return static_cast<PredId>(relations_.size());
}

const std::vector<uint32_t>* Structure::Postings(PredId pred, int pos,
                                                 TermId value) const {
  const Relation* rel = FindRelation(pred);
  if (rel == nullptr || pos >= static_cast<int>(rel->by_pos.size())) {
    return nullptr;
  }
  auto it = rel->by_pos[pos].find(value);
  return it == rel->by_pos[pos].end() ? nullptr : &it->second;
}

const std::vector<TermId>* Structure::Column(PredId pred, int pos) const {
  const Relation* rel = FindRelation(pred);
  if (rel == nullptr || pos < 0 || pos >= static_cast<int>(rel->cols.size())) {
    return nullptr;
  }
  return &rel->cols[pos];
}

uint32_t Structure::IndexedRows(PredId pred) const {
  const Relation* rel = FindRelation(pred);
  return rel == nullptr ? 0 : rel->sorted_rows;
}

std::pair<const uint32_t*, const uint32_t*> Structure::SortedEqualRange(
    PredId pred, int pos, TermId value) const {
  const Relation* rel = FindRelation(pred);
  if (rel == nullptr || pos < 0 ||
      pos >= static_cast<int>(rel->sorted.size())) {
    return {nullptr, nullptr};
  }
  const std::vector<uint32_t>& idx = rel->sorted[pos];
  const std::vector<TermId>& col = rel->cols[pos];
  auto lo = std::lower_bound(
      idx.begin(), idx.end(), value,
      [&col](uint32_t r, TermId v) { return col[r] < v; });
  auto hi = std::upper_bound(
      lo, idx.end(), value,
      [&col](TermId v, uint32_t r) { return v < col[r]; });
  return {idx.data() + (lo - idx.begin()), idx.data() + (hi - idx.begin())};
}

size_t Structure::DistinctValues(PredId pred, int pos) const {
  const Relation* rel = FindRelation(pred);
  if (rel == nullptr || pos < 0 ||
      pos >= static_cast<int>(rel->by_pos.size())) {
    return 0;
  }
  return rel->by_pos[pos].size();
}

size_t Structure::ContainsSorted(PredId pred, size_t arity,
                                 const TermId* tuples, size_t count,
                                 std::vector<char>* contained) const {
  contained->assign(count, 0);
  const Relation* rel = FindRelation(pred);
  if (rel == nullptr || rel->rows.empty()) return 0;

  size_t found = 0;
  auto hash_probe = [&](const TermId* t, std::vector<TermId>* key) {
    key->assign(t, t + arity);
    return rel->lookup.find(*key) != rel->lookup.end();
  };

  // No first column to gallop on, or no sorted prefix at all: the hash
  // table is the only index that can answer.
  if (arity == 0 || rel->sorted_rows == 0 || rel->sorted.empty()) {
    std::vector<TermId> key;
    for (size_t i = 0; i < count; ++i) {
      if (hash_probe(tuples + i * arity, &key)) {
        (*contained)[i] = 1;
        ++found;
      }
    }
    return found;
  }

  // A value slice wider than this is cheaper to settle with one hash
  // lookup than with a linear scan of the slice's rows.
  constexpr size_t kMaxSliceScan = 32;
  const std::vector<uint32_t>& idx = rel->sorted[0];
  const std::vector<TermId>& col0 = rel->cols[0];
  const bool stale = rel->sorted_rows != rel->rows.size();
  std::vector<TermId> key;
  size_t cursor = 0;  // first index entry with col0 >= current tuple's v0
  for (size_t i = 0; i < count; ++i) {
    const TermId* t = tuples + i * arity;
    const TermId v0 = t[0];
    // Gallop from the cursor: [lo, hi) brackets the lower bound of v0.
    size_t lo = cursor;
    size_t hi = cursor;
    size_t step = 1;
    while (hi < idx.size() && col0[idx[hi]] < v0) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    hi = hi < idx.size() ? hi : idx.size();
    cursor = static_cast<size_t>(
        std::lower_bound(idx.begin() + lo, idx.begin() + hi, v0,
                         [&col0](uint32_t r, TermId v) { return col0[r] < v; }) -
        idx.begin());
    // Scan the equal-value slice, verifying the remaining positions against
    // the column mirrors. `decided` means the slice answered definitively
    // for the sorted prefix; a too-wide slice leaves it false.
    bool present = false;
    bool decided = false;
    size_t scanned = 0;
    for (size_t j = cursor; j < idx.size(); ++j) {
      const uint32_t r = idx[j];
      if (col0[r] != v0) {
        decided = true;  // slice exhausted without a match
        break;
      }
      if (++scanned > kMaxSliceScan) break;
      bool match = true;
      for (size_t pos = 1; pos < arity; ++pos) {
        if (rel->cols[pos][r] != t[pos]) {
          match = false;
          break;
        }
      }
      if (match) {
        present = true;
        decided = true;
        break;
      }
    }
    if (!present && (!decided || stale)) {
      // Wide slice, slice running off the index end, or absent from the
      // sorted prefix while unindexed tail rows exist: one exact-tuple
      // hash lookup settles it.
      present = hash_probe(t, &key);
    }
    if (present) {
      (*contained)[i] = 1;
      ++found;
    }
  }
  return found;
}

void Structure::RefreshIndexes() {
  for (Relation& rel : relations_) {
    const uint32_t n = static_cast<uint32_t>(rel.rows.size());
    if (rel.sorted_rows == n) continue;
    if (rel.sorted.empty()) rel.sorted.resize(std::max(rel.arity, 1));
    for (int pos = 0; pos < rel.arity; ++pos) {
      std::vector<uint32_t>& idx = rel.sorted[pos];
      const std::vector<TermId>& col = rel.cols[pos];
      const size_t old = idx.size();
      idx.reserve(n);
      for (uint32_t r = rel.sorted_rows; r < n; ++r) idx.push_back(r);
      auto by_value_then_row = [&col](uint32_t a, uint32_t b) {
        return col[a] != col[b] ? col[a] < col[b] : a < b;
      };
      std::sort(idx.begin() + old, idx.end(), by_value_then_row);
      std::inplace_merge(idx.begin(), idx.begin() + old, idx.end(),
                         by_value_then_row);
    }
    rel.sorted_rows = n;
  }
}

void Structure::MarkRoundBoundary() {
  watermark_.resize(relations_.size());
  for (size_t p = 0; p < relations_.size(); ++p) {
    watermark_[p] = static_cast<uint32_t>(relations_[p].rows.size());
  }
  facts_at_watermark_ = num_facts_;
}

std::vector<RowRange> Structure::DeltaChunks(PredId pred,
                                             uint32_t max_chunk_rows) const {
  std::vector<RowRange> chunks;
  const uint32_t begin = WatermarkRows(pred);
  const uint32_t end = static_cast<uint32_t>(NumFacts(pred));
  if (begin >= end) return chunks;
  if (max_chunk_rows == 0) max_chunk_rows = end - begin;
  chunks.reserve((end - begin + max_chunk_rows - 1) / max_chunk_rows);
  for (uint32_t at = begin; at < end; at += max_chunk_rows) {
    chunks.push_back({at, std::min(end, at + max_chunk_rows)});
  }
  return chunks;
}

void Structure::ForEachFact(
    const std::function<void(PredId, const std::vector<TermId>&)>& fn) const {
  for (PredId p = 0; p < static_cast<PredId>(relations_.size()); ++p) {
    for (const auto& row : relations_[p].rows) fn(p, row);
  }
}

Structure Structure::RestrictToPredicates(
    const std::unordered_set<PredId>& preds) const {
  Structure out(sig_);
  ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    if (preds.count(p)) out.AddFact(p, row);
  });
  return out;
}

Structure Structure::RestrictToElements(
    const std::unordered_set<TermId>& elements) const {
  Structure out(sig_);
  ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    bool inside = std::all_of(row.begin(), row.end(), [&](TermId t) {
      return elements.count(t) > 0;
    });
    if (inside) out.AddFact(p, row);
  });
  return out;
}

bool Structure::ContainsAllFactsOf(const Structure& other) const {
  bool all = true;
  other.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    if (!Contains(p, row)) all = false;
  });
  return all;
}

std::string Structure::ToString() const {
  std::vector<std::string> lines;
  ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    lines.push_back(Atom(p, row).ToString(*sig_));
  });
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace bddfc
