#include "bddfc/guarded/binarize.h"

#include <algorithm>
#include <string>

#include "bddfc/classes/recognizers.h"

namespace bddfc {

namespace {

/// Bound on parent-index assignment enumeration per rule.
constexpr size_t kMaxCombos = 4096;

}  // namespace

Result<GuardedBinarization> GuardedToBinary(const Theory& theory) {
  SignaturePtr sig = theory.signature_ptr();
  if (!IsGuarded(theory)) {
    return Status::FailedPrecondition("GuardedToBinary needs a guarded theory");
  }
  if (!theory.IsSingleHead()) {
    return Status::FailedPrecondition(
        "GuardedToBinary needs single-head rules (apply SingleHeadify)");
  }

  GuardedBinarization out(sig);
  std::unordered_set<PredId> tgps = theory.TgpCandidates();

  // Validate the step (i)/(iv) preconditions.
  std::unordered_map<PredId, int> tgp_rule;
  for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
    const Rule& r = theory.rules()[ri];
    const Atom& h = r.head[0];
    if (r.IsExistential()) {
      std::vector<TermId> ex = r.ExistentialVariables();
      if (ex.size() != 1 || h.args.empty() || h.args.back() != ex[0]) {
        return Status::FailedPrecondition(
            "TGD '" + r.label +
            "' must have exactly one existential variable, in the last "
            "head position");
      }
      auto [it, inserted] = tgp_rule.emplace(h.pred, static_cast<int>(ri));
      (void)it;
      if (!inserted) {
        return Status::FailedPrecondition(
            "TGP '" + sig->PredicateName(h.pred) +
            "' occurs in two TGD heads; rename (step iv) first");
      }
    } else if (tgps.count(h.pred)) {
      return Status::FailedPrecondition(
          "TGP '" + sig->PredicateName(h.pred) +
          "' occurs in a datalog head; separate (step i) first");
    }
    for (const Atom& a : r.body) {
      for (TermId t : a.args) {
        if (IsConst(t)) {
          return Status::FailedPrecondition(
              "GuardedToBinary does not support constants in rules");
        }
      }
    }
  }

  const int max_arity = sig->MaxArity();

  // Parent links F_1..F_K.
  out.parent_links.assign(max_arity + 1, -1);
  for (int i = 1; i <= max_arity; ++i) {
    BDDFC_ASSIGN_OR_RETURN(
        PredId f,
        sig->AddPredicate(sig->FreshPredicateName("f" + std::to_string(i)),
                          2));
    out.parent_links[i] = f;
  }
  // Witness edges and TGP markers.
  for (auto [pred, ri] : tgp_rule) {
    BDDFC_ASSIGN_OR_RETURN(
        PredId e, sig->AddPredicate(
                      sig->FreshPredicateName(
                          "e_" + sig->PredicateName(pred)),
                      2));
    out.witness_edge.emplace(ri, e);
    BDDFC_ASSIGN_OR_RETURN(
        PredId m, sig->AddPredicate(
                      sig->FreshPredicateName(
                          "m_" + sig->PredicateName(pred)),
                      1));
    out.tgp_marker.emplace(pred, m);
  }

  // Lazily-created monadic encodings Q_ī.
  auto monadic = [&](PredId q,
                     const std::vector<int>& idx) -> Result<PredId> {
    auto key = std::make_pair(q, idx);
    auto it = out.monadic.find(key);
    if (it != out.monadic.end()) return it->second;
    std::string name = "q_" + sig->PredicateName(q);
    for (int i : idx) name += "_" + std::to_string(i);
    BDDFC_ASSIGN_OR_RETURN(PredId p,
                           sig->AddPredicate(sig->FreshPredicateName(name), 1));
    out.monadic.emplace(key, p);
    return p;
  };

  // Translate each rule under every parent-index assignment.
  for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
    const Rule& r = theory.rules()[ri];
    std::vector<TermId> body_vars = r.BodyVariables();
    if (body_vars.empty()) {
      return Status::FailedPrecondition("rule '" + r.label +
                                        "' has no body variables");
    }
    // Guard: first body atom containing all body variables; leading
    // variable y is its rightmost variable (paper's renaming convention).
    const Atom* guard = nullptr;
    for (const Atom& a : r.body) {
      bool all = std::all_of(body_vars.begin(), body_vars.end(),
                             [&](TermId v) {
                               return std::find(a.args.begin(), a.args.end(),
                                                v) != a.args.end();
                             });
      if (all) {
        guard = &a;
        break;
      }
    }
    if (guard == nullptr) {
      return Status::Internal("guard vanished for rule '" + r.label + "'");
    }
    TermId y = guard->args.back();

    std::vector<TermId> others;
    for (TermId v : body_vars) {
      if (v != y) others.push_back(v);
    }
    size_t combos = 1;
    for (size_t i = 0; i < others.size(); ++i) {
      combos *= static_cast<size_t>(max_arity);
      if (combos > kMaxCombos) {
        return Status::ResourceExhausted(
            "too many parent-index assignments for rule '" + r.label + "'");
      }
    }

    for (size_t combo = 0; combo < combos; ++combo) {
      // Decode the assignment others[i] -> index in 1..max_arity.
      std::unordered_map<TermId, int> idx_of;
      size_t rest = combo;
      for (TermId v : others) {
        idx_of[v] = 1 + static_cast<int>(rest % max_arity);
        rest /= max_arity;
      }
      auto index_of = [&](TermId v) { return v == y ? 0 : idx_of[v]; };

      // Translated body.
      std::vector<Atom> body;
      for (TermId v : others) {
        body.push_back(Atom(out.parent_links[idx_of[v]], {v, y}));
      }
      bool combo_ok = true;
      for (const Atom& a : r.body) {
        if (tgps.count(a.pred)) {
          // TGP atom R(w_1..w_{k-1}, c): parent links + marker.
          TermId c = a.args.back();
          for (size_t p = 0; p + 1 < a.args.size(); ++p) {
            body.push_back(Atom(out.parent_links[static_cast<int>(p) + 1],
                                {a.args[p], c}));
          }
          body.push_back(Atom(out.tgp_marker.at(a.pred), {c}));
        } else if (a.args.empty()) {
          body.push_back(a);  // 0-ary atoms survive unchanged
        } else {
          std::vector<int> idx;
          for (TermId w : a.args) idx.push_back(index_of(w));
          Result<PredId> q = monadic(a.pred, idx);
          if (!q.ok()) return q.status();
          body.push_back(Atom(std::move(q).value(), {y}));
        }
        if (!combo_ok) break;
      }
      if (!combo_ok) continue;

      if (r.IsDatalog()) {
        const Atom& h = r.head[0];
        Rule nr;
        nr.body = body;
        nr.label = r.label + "@" + std::to_string(combo);
        if (h.args.empty()) {
          nr.head.push_back(h);
        } else {
          std::vector<int> idx;
          for (TermId w : h.args) idx.push_back(index_of(w));
          BDDFC_ASSIGN_OR_RETURN(PredId q, monadic(h.pred, idx));
          nr.head.push_back(Atom(q, {y}));
        }
        BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(nr)));
        continue;
      }

      // TGD head R(w_1..w_{k-1}, z).
      const Atom& h = r.head[0];
      TermId z = h.args.back();
      PredId e = out.witness_edge.at(static_cast<int>(ri));
      {
        Rule create;
        create.body = body;
        create.head.push_back(Atom(e, {y, z}));
        create.label = r.label + "@" + std::to_string(combo) + "-e";
        BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(create)));
      }
      {
        Rule mark;
        mark.body = body;
        mark.body.push_back(Atom(e, {y, z}));
        mark.head.push_back(Atom(out.tgp_marker.at(h.pred), {z}));
        mark.label = r.label + "@" + std::to_string(combo) + "-m";
        BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(mark)));
      }
      // Parent bookkeeping for the new element — the (♦) rules.
      for (size_t p = 0; p + 1 < h.args.size(); ++p) {
        TermId w = h.args[p];
        Rule link;
        if (w == y) {
          link.body.push_back(Atom(e, {y, z}));
        } else {
          link.body.push_back(Atom(out.parent_links[idx_of[w]], {w, y}));
          link.body.push_back(Atom(e, {y, z}));
        }
        link.head.push_back(
            Atom(out.parent_links[static_cast<int>(p) + 1], {w, z}));
        link.label = r.label + "@" + std::to_string(combo) + "-f" +
                     std::to_string(p + 1);
        BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(link)));
      }
    }
  }

  // Transfer rules between monadic encodings of the same predicate (step
  // vii): once Q holds of x_1..x_l, every element seeing those parents
  // knows it.
  std::vector<std::pair<std::pair<PredId, std::vector<int>>, PredId>> entries(
      out.monadic.begin(), out.monadic.end());
  for (const auto& [src_key, src_pred] : entries) {
    for (const auto& [dst_key, dst_pred] : entries) {
      if (src_key.first != dst_key.first || src_pred == dst_pred) continue;
      const std::vector<int>& si = src_key.second;
      const std::vector<int>& di = dst_key.second;
      // y = var 0, z = var 1, element p = var 2+p.
      TermId yv = MakeVar(0);
      TermId zv = MakeVar(1);
      bool z_is_y = false;
      for (size_t p = 0; p < si.size(); ++p) {
        if (si[p] == 0 && di[p] == 0) z_is_y = true;
      }
      TermId zz = z_is_y ? yv : zv;
      Rule transfer;
      transfer.body.push_back(Atom(src_pred, {yv}));
      for (size_t p = 0; p < si.size(); ++p) {
        TermId ep = MakeVar(static_cast<int32_t>(2 + p));
        if (si[p] == 0) ep = yv;
        if (di[p] == 0) ep = zz;
        if (si[p] > 0) {
          transfer.body.push_back(Atom(out.parent_links[si[p]], {ep, yv}));
        }
        if (di[p] > 0) {
          transfer.body.push_back(Atom(out.parent_links[di[p]], {ep, zz}));
        }
      }
      transfer.head.push_back(Atom(dst_pred, {zz}));
      transfer.label = "transfer";
      // Degenerate transfers whose head variable never occurs in the body
      // cannot arise: z appears in some F(e, z) or equals y.
      BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(transfer)));
    }
  }

  return out;
}

}  // namespace bddfc
