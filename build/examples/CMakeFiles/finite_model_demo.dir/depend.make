# Empty dependencies file for finite_model_demo.
# This may be replaced when dependencies are built.
