#include "bddfc/serve/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bddfc/serve/protocol.h"

namespace bddfc::serve {

namespace {

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads more bytes into *buf. Returns false on EOF/error, true otherwise
// (including a timeout, which just lets the caller re-check `stop`).
bool FillSome(int fd, std::string* buf, const std::atomic<bool>& stop,
              bool* timed_out) {
  *timed_out = false;
  char chunk[4096];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n > 0) {
    buf->append(chunk, static_cast<size_t>(n));
    return true;
  }
  if (n == 0) return false;  // peer closed
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    *timed_out = true;
    return !stop.load(std::memory_order_relaxed);
  }
  return false;
}

void ServeConnection(ReasoningServer& server, int fd,
                     const std::atomic<bool>& stop) {
  // A receive timeout bounds how long an idle connection can ignore the
  // stop flag; in-flight requests still run to completion (drain).
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buf;
  bool http_checked = false;
  for (;;) {
    // Serve every complete request already buffered.
    for (;;) {
      if (!http_checked && buf.size() >= 4) {
        http_checked = true;
        if (LooksLikeHttp(buf)) {
          // One-shot HTTP: wait for the request line, answer, close.
          size_t eol;
          while ((eol = buf.find('\n')) == std::string::npos) {
            bool timed_out;
            if (!FillSome(fd, &buf, stop, &timed_out)) {
              ::close(fd);
              return;
            }
          }
          SendAll(fd, HandleHttp(server, std::string_view(buf).substr(0, eol)));
          ::close(fd);
          return;
        }
      }
      const size_t eol = buf.find('\n');
      if (eol == std::string::npos) break;
      std::string_view line = std::string_view(buf).substr(0, eol);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.empty()) {
        buf.erase(0, eol + 1);
        continue;
      }

      Request request;
      size_t payload_bytes = 0;
      bool quit = false;
      const Status parsed =
          ParseRequestLine(line, &request, &payload_bytes, &quit);
      if (quit) {
        ::close(fd);
        return;
      }
      if (!parsed.ok()) {
        buf.erase(0, eol + 1);
        if (!SendAll(fd, FormatResponse(Response{parsed, parsed.message()}))) {
          ::close(fd);
          return;
        }
        continue;
      }
      if (buf.size() - (eol + 1) < payload_bytes) break;  // need more bytes
      request.payload = buf.substr(eol + 1, payload_bytes);
      size_t consumed = eol + 1 + payload_bytes;
      if (consumed < buf.size() && buf[consumed] == '\n') ++consumed;
      buf.erase(0, consumed);
      if (!SendAll(fd, FormatResponse(server.Handle(request)))) {
        ::close(fd);
        return;
      }
    }
    bool timed_out;
    if (!FillSome(fd, &buf, stop, &timed_out)) break;
  }
  ::close(fd);
}

}  // namespace

Status Serve(ReasoningServer& server, const DaemonOptions& options,
             std::atomic<bool>& stop) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd);
    return Status::Internal(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(listen_fd, 64) < 0) {
    const int err = errno;
    ::close(listen_fd);
    return Status::Internal(std::string("listen: ") + std::strerror(err));
  }
  if (options.bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    options.bound_port->store(ntohs(bound.sin_port),
                              std::memory_order_release);
  }

  std::mutex threads_mu;
  std::vector<std::thread> threads;
  while (!stop.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    std::lock_guard<std::mutex> lock(threads_mu);
    threads.emplace_back(
        [&server, conn_fd, &stop] { ServeConnection(server, conn_fd, stop); });
  }

  // Drain: stop accepting first, then wait for every connection — their
  // in-flight requests complete and fold into the metrics registries.
  ::close(listen_fd);
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(threads_mu);
    to_join.swap(threads);
  }
  for (std::thread& t : to_join) t.join();
  return Status::OK();
}

}  // namespace bddfc::serve
