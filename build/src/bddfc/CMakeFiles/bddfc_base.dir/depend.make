# Empty dependencies file for bddfc_base.
# This may be replaced when dependencies are built.
