// Query-to-query homomorphisms, CQ/UCQ containment and cores.

#ifndef BDDFC_EVAL_CONTAINMENT_H_
#define BDDFC_EVAL_CONTAINMENT_H_

#include <functional>
#include <unordered_map>

#include "bddfc/core/query.h"

namespace bddfc {

/// A homomorphism between queries: variable of `from` → term of `to`.
using QueryHom = std::unordered_map<TermId, TermId>;

/// Enumerates homomorphisms h from `from` into `to`: h maps each atom of
/// `from` onto some atom of `to`, fixes constants, and maps the i-th answer
/// variable of `from` to the i-th answer variable of `to` (when both have
/// answer variables). The callback returns false to stop.
void EnumerateQueryHoms(const ConjunctiveQuery& from,
                        const ConjunctiveQuery& to,
                        const std::function<bool(const QueryHom&)>& on_hom);

/// True iff some homomorphism from `from` to `to` exists.
bool HasQueryHom(const ConjunctiveQuery& from, const ConjunctiveQuery& to);

/// Chandra–Merlin: q1 ⊆ q2 (every database satisfying q1 satisfies q2)
/// iff there is a homomorphism from q2 into q1.
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Homomorphic equivalence of CQs.
bool AreHomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// The core of a CQ: a minimal homomorphically-equivalent subquery.
/// Answer variables are preserved. Deterministic for a fixed input.
ConjunctiveQuery CoreOf(const ConjunctiveQuery& q);

/// UCQ ⊆ UCQ: every disjunct of `a` is contained in some disjunct of `b`.
bool UcqContainedIn(const UnionOfCQs& a, const UnionOfCQs& b);

/// Removes disjuncts subsumed by others (q_i dropped when q_i ⊆ q_j, i≠j),
/// keeping the earliest representative of each equivalence class.
UnionOfCQs MinimizeUcq(const UnionOfCQs& ucq);

}  // namespace bddfc

#endif  // BDDFC_EVAL_CONTAINMENT_H_
