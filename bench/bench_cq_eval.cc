// E2 — CQ evaluation throughput of the index-backed backtracking matcher:
// random graphs of growing size, path/star/cycle queries of growing width.
// Expected shape: boolean satisfaction stays fast (first-match exit);
// match counting grows with the number of embeddings; cycle queries are
// the most selective.
//
// E16 — interpreter vs compiled-plan evaluation on the same workloads:
// full enumeration (CountMatches) through the interpretive Matcher and the
// vectorized plan executor, equal counts required, with the per-query
// timings exported as BENCH_eval.json (the CQ-eval perf trajectory CI
// archives next to BENCH_chase.json).

#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bddfc/eval/exec.h"
#include "bddfc/eval/match.h"
#include "bddfc/workload/generators.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E2", "CQ evaluation on random graphs");
  std::printf("%-8s %-8s %-7s %-9s %-12s\n", "nodes", "edges", "query",
              "decide", "matches");
  for (int nodes : {100, 1000, 10000}) {
    auto sig = std::make_shared<Signature>();
    Structure g = RandomGraph(sig, nodes, nodes * 4, /*seed=*/7);
    PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
    Matcher m(g);
    struct Q {
      const char* name;
      ConjunctiveQuery q;
    } queries[] = {{"path3", PathQuery(e, 3)},
                   {"star3", StarQuery(e, 3)},
                   {"cycle3", CycleQuery(e, 3)}};
    for (auto& [name, q] : queries) {
      bool sat = Satisfies(g, q);
      size_t count = nodes <= 1000 ? m.CountMatches(q.atoms) : 0;
      std::printf("%-8d %-8d %-7s %-9s %-12s\n", nodes, nodes * 4, name,
                  sat ? "true" : "false",
                  nodes <= 1000 ? std::to_string(count).c_str() : "(skipped)");
    }
  }
}

/// One measured query of E16, also a row of BENCH_eval.json.
struct EvalRow {
  int nodes;
  int edges;
  const char* query;
  size_t matches;
  double interp_ms;
  double plan_ms;
  bool equal;
};

/// Best-of-three wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(const Fn& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

/// Writes the CQ-eval perf-trajectory artifact. Defaults to
/// BENCH_eval.json in the working directory; override with
/// BDDFC_BENCH_EVAL_JSON.
void WriteEvalJson(const std::vector<EvalRow>& rows) {
  const char* path = std::getenv("BDDFC_BENCH_EVAL_JSON");
  if (path == nullptr) path = "BENCH_eval.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "E16: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"eval\",\n  \"experiment\": \"E16\",\n");
  std::fprintf(f, "  \"workload\": \"RandomGraph seed=7, edges=4n\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const EvalRow& r = rows[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"edges\": %d, \"query\": \"%s\", "
                 "\"matches\": %zu, \"interp_ms\": %.3f, \"plan_ms\": %.3f, "
                 "\"speedup\": %.2f, \"equal\": %s}%s\n",
                 r.nodes, r.edges, r.query, r.matches, r.interp_ms,
                 r.plan_ms, r.interp_ms / std::max(r.plan_ms, 1e-9),
                 r.equal ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

void PrintBackendComparison() {
  bddfc_bench::Banner(
      "E16", "interpretive matcher vs compiled-plan executor (full "
             "enumeration, equal counts required)");
  std::printf("%-8s %-8s %-7s %-10s %-10s %-9s %-8s %-6s\n", "nodes",
              "edges", "query", "matches", "interp ms", "plan ms",
              "speedup", "equal");
  std::vector<EvalRow> rows;
  for (int nodes : {300, 1000, 3000}) {
    auto sig = std::make_shared<Signature>();
    Structure g = RandomGraph(sig, nodes, nodes * 4, /*seed=*/7);
    // Sorted columnar indexes as the chase would have them at a round
    // boundary; the executor falls back to hash postings without this.
    g.RefreshIndexes();
    PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
    struct Q {
      const char* name;
      ConjunctiveQuery q;
    } queries[] = {{"path2", PathQuery(e, 2)},
                   {"path3", PathQuery(e, 3)},
                   {"star3", StarQuery(e, 3)},
                   {"cycle3", CycleQuery(e, 3)},
                   {"cycle4", CycleQuery(e, 4)}};
    for (auto& [name, q] : queries) {
      Matcher m(g);
      size_t interp_count = 0;
      const double interp_ms =
          TimeMs([&] { interp_count = m.CountMatches(q.atoms); });
      size_t plan_count = 0;
      const double plan_ms =
          TimeMs([&] { plan_count = PlanCountMatches(g, q.atoms); });
      rows.push_back({nodes, nodes * 4, name, interp_count, interp_ms,
                      plan_ms, interp_count == plan_count});
      std::printf("%-8d %-8d %-7s %-10zu %-10.2f %-9.2f %-8.2f %-6s\n",
                  nodes, nodes * 4, name, interp_count, interp_ms, plan_ms,
                  interp_ms / std::max(plan_ms, 1e-9),
                  interp_count == plan_count ? "yes" : "NO");
    }
  }
  WriteEvalJson(rows);
}

void PrintAllTables() {
  PrintTable();
  PrintBackendComparison();
}

void BM_Decide(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure g = RandomGraph(sig, static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 4, 7);
  PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Satisfies(g, q));
  }
}
BENCHMARK(BM_Decide)
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 2})
    ->Args({10000, 4});

void BM_CountMatches(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure g = RandomGraph(sig, static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 4, 7);
  PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
  Matcher m(g);
  ConjunctiveQuery q = PathQuery(e, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CountMatches(q.atoms));
  }
}
BENCHMARK(BM_CountMatches)->Arg(100)->Arg(300)->Arg(1000);

void BM_CycleDetection(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure g = RandomGraph(sig, 1000, 4000, 7);
  PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
  ConjunctiveQuery q = CycleQuery(e, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Satisfies(g, q));
  }
}
BENCHMARK(BM_CycleDetection)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_PlanCountMatches(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure g = RandomGraph(sig, static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 4, 7);
  g.RefreshIndexes();
  PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanCountMatches(g, q.atoms));
  }
}
BENCHMARK(BM_PlanCountMatches)->Arg(100)->Arg(300)->Arg(1000);

}  // namespace

BDDFC_BENCH_MAIN(PrintAllTables)
