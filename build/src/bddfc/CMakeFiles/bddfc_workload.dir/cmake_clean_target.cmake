file(REMOVE_RECURSE
  "libbddfc_workload.a"
)
