# Empty compiler generated dependencies file for bddfc_classes.
# This may be replaced when dependencies are built.
