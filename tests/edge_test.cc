// Edge cases and failure injection across modules: repeated variables in
// atoms, 0-ary predicates, empty structures, budget statuses.

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/answers.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"
#include "bddfc/types/ptype.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(EdgeTest, RepeatedVariableInAtomRequiresDiagonal) {
  Program p = MustParse("e(a, b). e(c, c).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery diag;
  diag.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(0)}));
  EXPECT_TRUE(Satisfies(p.instance, diag));
  // Remove the loop: diagonal query fails even though e is nonempty.
  Program q = MustParse("e(a, b).");
  PredId e2 = std::move(q.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery diag2;
  diag2.atoms.push_back(Atom(e2, {MakeVar(0), MakeVar(0)}));
  EXPECT_FALSE(Satisfies(q.instance, diag2));
}

TEST(EdgeTest, RepeatedVariableAcrossAtoms) {
  // e(x, y), e(y, x), u(x): needs a 2-cycle through a u-element.
  Program p = MustParse("e(a, b). e(b, a). u(b).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  PredId u = std::move(sig.FindPredicate("u")).ValueOrDie();
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  q.atoms.push_back(Atom(e, {MakeVar(1), MakeVar(0)}));
  q.atoms.push_back(Atom(u, {MakeVar(0)}));
  EXPECT_TRUE(Satisfies(p.instance, q));
  Matcher m(p.instance);
  // Exactly one match binds x to the u-element: x=b, y=a.
  EXPECT_EQ(m.CountMatches(q.atoms), 1u);
}

TEST(EdgeTest, ZeroAryPredicatesChaseAndMatch) {
  Program p = MustParse(R"(
    e(X, Y) -> goal.
    goal, e(X, Y) -> u(X).
    e(a, b).
  )");
  ChaseResult r = RunChase(p.theory, p.instance);
  ASSERT_TRUE(r.status.ok());
  const Signature& sig = p.theory.sig();
  PredId goal = std::move(sig.FindPredicate("goal")).ValueOrDie();
  PredId u = std::move(sig.FindPredicate("u")).ValueOrDie();
  EXPECT_EQ(r.structure.Rows(goal).size(), 1u);
  EXPECT_EQ(r.structure.Rows(u).size(), 1u);
}

TEST(EdgeTest, EmptyInstanceChaseIsEmpty) {
  Program p = MustParse("e(X, Y) -> exists Z: e(Y, Z).");
  ChaseResult r = RunChase(p.theory, p.instance);
  EXPECT_TRUE(r.fixpoint_reached);
  EXPECT_EQ(r.structure.NumFacts(), 0u);
}

TEST(EdgeTest, ConstantsInRuleBodies) {
  // Rules may mention constants: only b's successors get marked.
  Program p = MustParse(R"(
    e(b, X) -> marked(X).
    e(a, c). e(b, d).
  )");
  ChaseResult r = RunChase(p.theory, p.instance);
  const Signature& sig = p.theory.sig();
  PredId marked = std::move(sig.FindPredicate("marked")).ValueOrDie();
  TermId d = std::move(sig.FindConstant("d")).ValueOrDie();
  ASSERT_EQ(r.structure.Rows(marked).size(), 1u);
  EXPECT_EQ(r.structure.Rows(marked)[0][0], d);
}

TEST(EdgeTest, TypeOracleBudgetReportsExhaustion) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 30);
  auto part = ExactPtpPartition(chain, 3, {}, /*max_patterns=*/50);
  EXPECT_FALSE(part.ok());
  EXPECT_EQ(part.status().code(), StatusCode::kResourceExhausted);
}

TEST(EdgeTest, RewriteBudgetsReportUnknown) {
  Program p = MustParse("e(X, Y), e(Y, Z) -> e(X, Z).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  // Pin the answer variables: the Boolean 1-edge query is subsumption-
  // collapsible under transitivity (every k-path disjunct folds into the
  // edge), so the pruned engine would legitimately saturate instead of
  // exhausting its budget.
  RewriteOptions opts;
  opts.max_queries = 5;
  ConjunctiveQuery q;
  q.answer_vars = {MakeVar(0), MakeVar(1)};
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  RewriteResult r = RewriteQuery(p.theory, q, opts);
  EXPECT_EQ(r.status.code(), StatusCode::kUnknown);
  // The atoms cap also trips cleanly.
  RewriteOptions opts2;
  opts2.max_atoms_per_query = 2;
  opts2.max_depth = 6;
  RewriteResult r2 = RewriteQuery(p.theory, q, opts2);
  EXPECT_EQ(r2.status.code(), StatusCode::kUnknown);
}

TEST(EdgeTest, CertainAnswersIncompleteOnInfiniteChase) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q;
  q.answer_vars = {MakeVar(0), MakeVar(1)};
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  ChaseOptions copts;
  copts.max_rounds = 4;
  CertainAnswersResult r = CertainAnswers(p.theory, p.instance, q, copts);
  EXPECT_FALSE(r.complete);  // chase did not reach a fixpoint
  // Only the database edge binds constants; invented nulls are filtered.
  ASSERT_EQ(r.answers.size(), 1u);
}

TEST(EdgeTest, SelfLoopChaseTerminatesViaReuse) {
  // A loop supplies every witness: the non-oblivious chase stops at once.
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, a).
  )");
  ChaseResult r = RunChase(p.theory, p.instance);
  EXPECT_TRUE(r.fixpoint_reached);
  EXPECT_EQ(r.nulls_created, 0u);
  EXPECT_EQ(r.structure.NumFacts(), 1u);
}

TEST(EdgeTest, IsolatedDomainElementsSurviveQuotients) {
  auto sig = std::make_shared<Signature>();
  ASSERT_TRUE(sig->AddPredicate("e", 2).ok());
  Structure s(sig);
  TermId lone = sig->AddNull();
  s.AddDomainElement(lone);
  auto part = ExactPtpPartition(s, 2);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part.value().num_classes, 1);
}

}  // namespace
}  // namespace bddfc
