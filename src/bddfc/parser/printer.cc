#include "bddfc/parser/printer.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

namespace bddfc {

namespace {

/// Variable renderer: stable V<k> names per statement.
class VarNamer {
 public:
  std::string Name(TermId v) {
    auto [it, inserted] = names_.emplace(v, "V" + std::to_string(next_));
    if (inserted) ++next_;
    return it->second;
  }

 private:
  std::unordered_map<TermId, std::string> names_;
  int next_ = 0;
};

/// True iff `name` lexes back as a plain predicate/constant identifier:
/// leading lowercase letter, digit or '_', identifier characters throughout,
/// and not the 'exists' keyword.
bool IsPlainIdent(const std::string& name) {
  if (name.empty() || name == "exists") return false;
  unsigned char c0 = static_cast<unsigned char>(name[0]);
  if (!(std::islower(c0) || std::isdigit(c0) || name[0] == '_')) return false;
  for (char c : name) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (!(std::isalnum(uc) || c == '_' || c == '\'')) return false;
  }
  return true;
}

/// Renders a predicate/constant name, quoting it when its spelling would
/// otherwise lex as a variable, keyword or garbage (round-trip safety for
/// programmatically interned names like "Foo" or "exists").
std::string NameText(const std::string& name) {
  if (IsPlainIdent(name)) return name;
  std::string s = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') s += '\\';
    s += c;
  }
  return s + "\"";
}

std::string AtomText(const Atom& a, const Signature& sig, VarNamer* namer) {
  std::string s = NameText(sig.PredicateName(a.pred));
  if (a.args.empty()) return s;
  s += "(";
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (i) s += ", ";
    s += IsVar(a.args[i]) ? namer->Name(a.args[i])
                          : NameText(sig.ConstantName(a.args[i]));
  }
  return s + ")";
}

std::string AtomListText(const std::vector<Atom>& atoms, const Signature& sig,
                         VarNamer* namer) {
  std::string s;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i) s += ", ";
    s += AtomText(atoms[i], sig, namer);
  }
  return s;
}

}  // namespace

std::string RuleToProgramText(const Rule& rule, const Signature& sig) {
  VarNamer namer;
  std::string s = AtomListText(rule.body, sig, &namer);
  s += " -> ";
  std::vector<TermId> ex = rule.ExistentialVariables();
  if (!ex.empty()) {
    s += "exists ";
    for (size_t i = 0; i < ex.size(); ++i) {
      if (i) s += ", ";
      s += namer.Name(ex[i]);
    }
    s += ": ";
  }
  s += AtomListText(rule.head, sig, &namer);
  return s + ".";
}

std::string ToProgramText(const Theory& theory, const Structure* instance,
                          const std::vector<ConjunctiveQuery>* queries) {
  const Signature& sig = theory.sig();
  std::string out;
  for (const Rule& r : theory.rules()) {
    out += RuleToProgramText(r, sig);
    out += "\n";
  }
  if (instance != nullptr) {
    // Facts print in sorted rendered order, not PredId/row insertion order:
    // internal id numbering differs between a signature and its reparse, so
    // a canonical order is what makes Print ∘ Parse ∘ Print a fixpoint.
    std::vector<std::string> fact_lines;
    instance->ForEachFact([&](PredId p, const std::vector<TermId>& row) {
      VarNamer namer;
      fact_lines.push_back(AtomText(Atom(p, row), sig, &namer) + ".\n");
    });
    std::sort(fact_lines.begin(), fact_lines.end());
    for (const std::string& line : fact_lines) out += line;
  }
  if (queries != nullptr) {
    for (const ConjunctiveQuery& q : *queries) {
      VarNamer namer;
      out += "?- " + AtomListText(q.atoms, sig, &namer) + ".\n";
    }
  }
  return out;
}

}  // namespace bddfc
