// Tests for the observability substrate (obs/metrics.h, obs/trace.h) and
// its integration points: the metrics registry's sharded counters and
// snapshot determinism, the tracer's ring/export repair contract, span
// nesting across the ThreadPool, and the engines' canonical
// `bddfc.<engine>.<name>` publication.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/thread_pool.h"
#include "bddfc/chase/chase.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"
#include "bddfc/parser/parser.h"

namespace bddfc {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Tracer;
using obs::TraceSpan;

// Every test leaves the global tracer/registry the way it found them
// (disabled, empty) so test order cannot matter.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Reset();
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }
};

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterSumsAcrossThreads) {
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), 8000u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(ObsTest, GaugeSetAndMax) {
  obs::Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7u);
  g.Max(3);  // no-op: smaller
  EXPECT_EQ(g.Value(), 7u);
  g.Max(12);
  EXPECT_EQ(g.Value(), 12u);
}

TEST_F(ObsTest, HistogramBucketsByLog2) {
  // Bucket i counts samples in (2^(i-1), 2^i]; bucket 0 counts 0 and 1.
  obs::Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);    // (1,2]   -> bucket 1
  h.Record(3);    // (2,4]   -> bucket 2
  h.Record(100);  // (64,128] -> bucket 7
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 106u);
  EXPECT_EQ(h.BucketCount(0), 2u);  // 0 and 1
  EXPECT_EQ(h.BucketCount(1), 1u);  // 2
  EXPECT_EQ(h.BucketCount(2), 1u);  // 3
  EXPECT_EQ(h.BucketCount(7), 1u);  // 100
}

TEST_F(ObsTest, RegistryHandlesAreStableAndSnapshotIsSorted) {
  MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("zzz.last");
  obs::Counter* b = reg.GetCounter("aaa.first");
  EXPECT_EQ(reg.GetCounter("zzz.last"), a);  // same handle on re-resolve
  a->Add(2);
  b->Add(1);
  reg.GetGauge("mid.gauge")->Set(5);
  reg.GetHistogram("mid.hist")->Record(9);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "aaa.first");  // sorted by name
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "zzz.last");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);

  // Two snapshots of an unchanged registry export identically.
  EXPECT_EQ(snap.ToText(), reg.Snapshot().ToText());
  EXPECT_EQ(snap.ToJson(), reg.Snapshot().ToJson());

  // Reset zeroes values but keeps handles valid.
  reg.Reset();
  EXPECT_EQ(a->Value(), 0u);
  a->Add(3);
  EXPECT_EQ(reg.Snapshot().counters[1].value, 3u);
}

TEST_F(ObsTest, ExportsAreWellShaped) {
  MetricsRegistry reg;
  reg.GetCounter("c.one")->Add(4);
  reg.GetGauge("g.one")->Set(2);
  reg.GetHistogram("h.one")->Record(5);
  std::string text = reg.Snapshot().ToText();
  EXPECT_NE(text.find("c.one 4"), std::string::npos);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c.one\":4}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g.one\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"h.one\""), std::string::npos);
}

TEST_F(ObsTest, MergeFromAddsCountersAndHistogramsGaugesLastWrite) {
  // The serving layer's aggregation primitive: request registries fold
  // into session and server registries via MergeFrom, so its semantics
  // (counters/histograms add, gauges overwrite, enabled() ignored) are
  // load-bearing for the session-sums == server-totals invariant.
  MetricsRegistry req;
  req.GetCounter("c")->Add(3);
  req.GetGauge("g")->Set(5);
  req.GetHistogram("h")->Record(2);
  req.GetHistogram("h")->Record(100);
  const MetricsSnapshot snap = req.Snapshot();

  MetricsRegistry total;  // deliberately left disabled: MergeFrom ignores it
  ASSERT_FALSE(total.enabled());
  total.MergeFrom(snap);
  total.MergeFrom(snap);

  EXPECT_EQ(total.GetCounter("c")->Value(), 6u);
  EXPECT_EQ(total.GetGauge("g")->Value(), 5u);
  bool found = false;
  for (const auto& h : total.Snapshot().histograms) {
    if (h.name != "h") continue;
    found = true;
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.sum, 204u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, DisabledGlobalRegistryIsANoOpForPublishers) {
  // Engines guard publication with enabled(); the default Global() state
  // must be disabled so un-instrumented runs never pay for metrics.
  EXPECT_FALSE(MetricsRegistry::Global().enabled());
}

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledTracerRecordsNothingAndSpansAreIdZero) {
  ASSERT_FALSE(Tracer::Global().enabled());
  {
    TraceSpan span("never.recorded");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
  }
  Tracer::Global().Enable(64);
  std::string json = Tracer::Global().ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST_F(ObsTest, NestedSpansExportBalancedWithParentIds) {
  Tracer::Global().Enable(1 << 10);
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
    {
      TraceSpan inner("inner");
      inner_id = inner.id();
      inner.set_detail("round 3");
      EXPECT_EQ(Tracer::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);

  std::string json = Tracer::Global().ExportChromeJson();
  // Both spans appear, the inner one parented to the outer, the detail on
  // its 'E' event, and B/E balance (checked structurally by trace_check;
  // here just the substrings).
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":" + std::to_string(outer_id)),
            std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"round 3\""), std::string::npos);
  size_t b_count = 0, e_count = 0;
  for (size_t p = 0; (p = json.find("\"ph\":\"B\"", p)) != std::string::npos;
       ++p) {
    ++b_count;
  }
  for (size_t p = 0; (p = json.find("\"ph\":\"E\"", p)) != std::string::npos;
       ++p) {
    ++e_count;
  }
  EXPECT_EQ(b_count, 2u);
  EXPECT_EQ(e_count, 2u);
}

TEST_F(ObsTest, OpenSpansGetSyntheticEndsInTheExport) {
  Tracer::Global().Enable(1 << 10);
  TraceSpan still_open("unfinished");
  std::string json = Tracer::Global().ExportChromeJson();
  size_t b = json.find("\"ph\":\"B\"");
  size_t e = json.find("\"ph\":\"E\"");
  EXPECT_NE(b, std::string::npos);
  EXPECT_NE(e, std::string::npos);  // synthesized: the span is still open
}

TEST_F(ObsTest, RingOverflowDropsOrphansButStaysBalanced) {
  // Capacity clamps to 64; record far more spans than fit so the ring
  // wraps many times. The export must repair the wrap damage: no 'E'
  // without its 'B', per-tid monotone timestamps.
  Tracer::Global().Enable(64);
  for (int i = 0; i < 500; ++i) {
    TraceSpan span("wrapped");
    span.set_detail(std::to_string(i));
  }
  EXPECT_GT(Tracer::Global().overwritten_events(), 0u);
  std::string json = Tracer::Global().ExportChromeJson();
  size_t b_count = 0, e_count = 0;
  for (size_t p = 0; (p = json.find("\"ph\":\"B\"", p)) != std::string::npos;
       ++p) {
    ++b_count;
  }
  for (size_t p = 0; (p = json.find("\"ph\":\"E\"", p)) != std::string::npos;
       ++p) {
    ++e_count;
  }
  EXPECT_EQ(b_count, e_count);
  EXPECT_GT(b_count, 0u);
}

TEST_F(ObsTest, ThreadPoolTasksParentUnderTheSubmittingSpan) {
  Tracer::Global().Enable(1 << 10);
  uint64_t submit_id = 0;
  {
    TraceSpan fan_out("fan.out");
    submit_id = fan_out.id();
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&ran] {
        ++ran;
        return Status::OK();
      });
    }
    EXPECT_TRUE(pool.Wait().ok());
    EXPECT_EQ(ran.load(), 8);
  }
  // Every pool.task span must carry the submitting span as its parent
  // even though it ran (and recorded) on a worker thread.
  std::string json = Tracer::Global().ExportChromeJson();
  size_t tasks = 0;
  const std::string want =
      "\"name\":\"pool.task\",\"cat\":\"bddfc\",\"ph\":\"B\"";
  const std::string parent_field = "\"parent\":" + std::to_string(submit_id);
  for (size_t p = 0; (p = json.find(want, p)) != std::string::npos; ++p) {
    size_t parent = json.find("\"parent\":", p);
    ASSERT_NE(parent, std::string::npos);
    EXPECT_EQ(json.compare(parent, parent_field.size(), parent_field), 0)
        << json.substr(p, 160);
    ++tasks;
  }
  EXPECT_EQ(tasks, 8u);
}

// ---------------------------------------------------------------------------
// Engine integration: canonical publication and stage spans.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChasePublishesCanonicalMetrics) {
  MetricsRegistry::Global().set_enabled(true);
  auto parsed = ParseProgram(
      "e(X, Y) -> exists Z: e(Y, Z).\n"
      "e(a, b).\n");
  ASSERT_TRUE(parsed.ok());
  ChaseOptions opts;
  opts.max_rounds = 3;
  (void)RunChase(parsed.value().theory, parsed.value().instance, opts);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const obs::MetricPoint& p : snap.counters) {
      if (p.name == name) return p.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("bddfc.chase.runs"), 1u);
  EXPECT_GT(counter("bddfc.chase.rounds"), 0u);
  EXPECT_GT(counter("bddfc.chase.bindings_tried"), 0u);
}

TEST_F(ObsTest, PhaseScopeSpanCarriesTheTracerId) {
  Tracer::Global().Enable(1 << 10);
  ExecutionContext ctx;
  {
    PhaseScope scope(&ctx, "stage");
    EXPECT_NE(scope.span_id(), 0u);
    EXPECT_EQ(Tracer::CurrentSpanId(), scope.span_id());
  }
  std::string json = Tracer::Global().ExportChromeJson();
  EXPECT_NE(json.find("\"name\":\"stage\""), std::string::npos);
  // The default close note lands as the span detail.
  EXPECT_NE(json.find("\"detail\":\"done\""), std::string::npos);
}

}  // namespace
}  // namespace bddfc
