// A/B equivalence suite: the delta-driven chase engine must produce the
// same result as the seed naive full-re-enumeration loop — same facts,
// same per-round growth, same nulls, same fixpoint verdict — on every
// workload generator family and every paper-example program.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

/// Per-predicate multiset of fact birth rounds — a strong cheap invariant
/// that is independent of row order and null naming.
std::map<PredId, std::vector<int>> BirthRoundsByPredicate(
    const ChaseResult& r) {
  std::map<PredId, std::vector<int>> out;
  for (const auto& [handle, round] : r.fact_round) {
    out[handle.pred].push_back(round);
  }
  for (auto& [pred, rounds] : out) {
    (void)pred;
    std::sort(rounds.begin(), rounds.end());
  }
  return out;
}

/// Runs both engines with identical options and asserts equivalence.
/// `check_isomorphism` additionally requires homomorphisms both ways
/// (exact up to null renaming); keep it off for large random structures
/// where the whole-structure CQ gets expensive.
void ExpectEnginesAgree(const Theory& theory, const Structure& instance,
                        ChaseOptions options, bool check_isomorphism = true) {
  options.engine = ChaseEngine::kDelta;
  ChaseResult delta = RunChase(theory, instance, options);
  options.engine = ChaseEngine::kNaive;
  ChaseResult naive = RunChase(theory, instance, options);

  EXPECT_EQ(delta.structure.NumFacts(), naive.structure.NumFacts());
  EXPECT_EQ(delta.facts_per_round, naive.facts_per_round);
  EXPECT_EQ(delta.nulls_created, naive.nulls_created);
  EXPECT_EQ(delta.fixpoint_reached, naive.fixpoint_reached);
  EXPECT_EQ(delta.rounds_run, naive.rounds_run);
  EXPECT_EQ(delta.status.code(), naive.status.code());
  EXPECT_EQ(BirthRoundsByPredicate(delta), BirthRoundsByPredicate(naive));
  if (check_isomorphism) {
    EXPECT_TRUE(HasHomomorphism(delta.structure, naive.structure));
    EXPECT_TRUE(HasHomomorphism(naive.structure, delta.structure));
  }
}

ChaseOptions Depth(size_t rounds) {
  ChaseOptions o;
  o.max_rounds = rounds;
  return o;
}

// ---------------------------------------------------------------------------
// Paper-example programs (workload/paper_examples.cc).
// ---------------------------------------------------------------------------

TEST(ChaseAbTest, Example1) {
  Program p = Example1();  // diverges: compare bounded prefixes
  ExpectEnginesAgree(p.theory, p.instance, Depth(6));
}

TEST(ChaseAbTest, RemarkThreeTheory) {
  Program p = RemarkThreeTheory();
  ExpectEnginesAgree(p.theory, p.instance, Depth(6));
}

TEST(ChaseAbTest, Example7) {
  Program p = Example7();
  ExpectEnginesAgree(p.theory, p.instance, Depth(6));
}

TEST(ChaseAbTest, Example9) {
  Program p = Example9();  // binary tree growth
  ExpectEnginesAgree(p.theory, p.instance, Depth(5));
}

TEST(ChaseAbTest, Section54) {
  Program p = Section54();
  ExpectEnginesAgree(p.theory, p.instance, Depth(5));
}

TEST(ChaseAbTest, Section55) {
  Program p = Section55();
  ExpectEnginesAgree(p.theory, p.instance, Depth(5));
}

TEST(ChaseAbTest, GuardedSample) {
  Program p = GuardedSample();
  ExpectEnginesAgree(p.theory, p.instance, Depth(8));
}

TEST(ChaseAbTest, PaperExamplesOblivious) {
  for (Program p : {Example1(), Example7(), Example9(), Section55()}) {
    ChaseOptions o = Depth(4);
    o.oblivious = true;
    ExpectEnginesAgree(p.theory, p.instance, o);
  }
}

TEST(ChaseAbTest, CyclicWitnessReuse) {
  // Witnesses pre-exist: the restricted chase must stop immediately under
  // both engines.
  auto parsed = ParseProgram(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b). e(b, a).
  )");
  ASSERT_TRUE(parsed.ok());
  Program& p = parsed.value();
  ExpectEnginesAgree(p.theory, p.instance, Depth(8));
}

// ---------------------------------------------------------------------------
// Generator families (workload/generators.cc), swept over seeds.
// ---------------------------------------------------------------------------

class ChaseAbGenerators : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaseAbGenerators, RandomGraphTransitiveClosure) {
  auto sig = std::make_shared<Signature>();
  Structure d = RandomGraph(sig, /*nodes=*/14, /*edges=*/30, GetParam());
  PredId e0 = std::move(sig->FindPredicate("e0")).ValueOrDie();
  Theory t(sig);
  TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
  ASSERT_TRUE(t.AddRule(Rule({Atom(e0, {x, y}), Atom(e0, {y, z})},
                             {Atom(e0, {x, z})}))
                  .ok());
  ExpectEnginesAgree(t, d, Depth(64), /*check_isomorphism=*/false);
}

TEST_P(ChaseAbGenerators, RandomLinearTheory) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomLinearTheory(sig, /*preds=*/4, /*rules=*/6, GetParam());
  Structure d(sig);
  PredId p0 = std::move(sig->FindPredicate("p0")).ValueOrDie();
  PredId p1 = std::move(sig->FindPredicate("p1")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b"),
         c = sig->AddConstant("c");
  d.AddFact(p0, {a, b});
  d.AddFact(p1, {b, c});
  ExpectEnginesAgree(t, d, Depth(6));
}

TEST_P(ChaseAbGenerators, RandomGuardedTheory) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomGuardedTheory(sig, /*max_arity=*/3, /*rules=*/5,
                                 GetParam());
  Structure d(sig);
  PredId g2 = std::move(sig->FindPredicate("g2_0")).ValueOrDie();
  PredId g3 = std::move(sig->FindPredicate("g3_0")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
  d.AddFact(g2, {a, b});
  d.AddFact(g3, {b, a, a});
  ExpectEnginesAgree(t, d, Depth(5));
}

TEST_P(ChaseAbGenerators, RandomAcyclicBinaryTheory) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, /*preds=*/5, /*tgds=*/5,
                                       /*datalog_rules=*/4, GetParam());
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  Rng rng(GetParam() * 31 + 5);
  std::vector<TermId> consts;
  for (int i = 0; i < 4; ++i) {
    consts.push_back(sig->AddConstant("k" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    d.AddFact(b0, {consts[rng.Uniform(4)], consts[rng.Uniform(4)]});
  }
  // Weakly acyclic: both engines must reach the same fixpoint.
  ExpectEnginesAgree(t, d, Depth(128));
}

TEST_P(ChaseAbGenerators, RandomAcyclicBinaryTheoryDatalogOnly) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, /*preds=*/5, /*tgds=*/3,
                                       /*datalog_rules=*/6, GetParam());
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
  d.AddFact(b0, {a, b});
  d.AddFact(b0, {b, a});
  ChaseOptions o = Depth(128);
  o.datalog_only = true;
  ExpectEnginesAgree(t, d, o);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseAbGenerators,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace bddfc
