# Empty compiler generated dependencies file for bddfc_core.
# This may be replaced when dependencies are built.
