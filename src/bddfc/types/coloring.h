// Natural colorings (§2.4, Def. 6–7; §4, Def. 13–14).
//
// A coloring adds one unary color atom K_h^l(e) per element: the hue h
// separates elements that are close (within P_m) in the predecessor order,
// the lightness l records the isomorphism type of C ↾ (P(e) ∪ C_con). For
// forests — the shape of every skeleton by Lemma 3 — hue = depth mod (m+2)
// realizes Def. 14's first condition, and the lightness is computed from a
// canonical encoding of the local atoms around (e, parent(e), constants).

#ifndef BDDFC_TYPES_COLORING_H_
#define BDDFC_TYPES_COLORING_H_

#include <unordered_map>
#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/core/structure.h"

namespace bddfc {

/// A colored copy C̄ of a structure C.
struct Coloring {
  Structure colored;
  /// The base predicates Σ (everything that existed before coloring,
  /// excluding pre-existing colors).
  std::vector<PredId> base_predicates;
  /// The color predicates added by this coloring.
  std::vector<PredId> color_predicates;
  /// Color assigned to each element.
  std::unordered_map<TermId, PredId> color_of;
  int num_hues = 0;
  int num_lightnesses = 0;

  explicit Coloring(SignaturePtr sig) : colored(std::move(sig)) {}
};

/// Builds a natural coloring of `c` with hue window m (Def. 14). Requires
/// the labeled nulls of `c` to form a forest under binary atoms (Lemma 3
/// guarantees this for skeletons); fails with FailedPrecondition otherwise.
Result<Coloring> NaturalColoring(const Structure& c, int m);

/// Checks Def. 14 on an arbitrary coloring: distinct hues within each
/// P_m(e), and isomorphic C ↾ (P(e) ∪ C_con) for same-colored elements.
/// Used by tests; NaturalColoring's output satisfies it by construction.
bool IsNaturalColoring(const Coloring& coloring, const Structure& c, int m);

}  // namespace bddfc

#endif  // BDDFC_TYPES_COLORING_H_
