// Replays every minimized reproducer under tests/corpus/ against the
// oracle named in its header (DESIGN.md §2.8). Each entry was either a
// shrunk fuzzer failure or a hand-crafted regression (the PR-1 PatternKey
// and PR-2 answer-interface bugs live here); all of them must PASS on a
// healthy build, turning every past failure into a permanent test.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bddfc/testing/corpus.h"

#ifndef BDDFC_CORPUS_DIR
#error "build must define BDDFC_CORPUS_DIR"
#endif

namespace bddfc {
namespace {

TEST(CorpusReplayTest, EveryEntryPasses) {
  std::vector<std::string> files = ListCorpusFiles(BDDFC_CORPUS_DIR);
  ASSERT_GE(files.size(), 10u)
      << "tests/corpus/ must hold at least 10 minimized scenarios";
  std::set<std::string> oracles_passing;
  for (const std::string& file : files) {
    SCOPED_TRACE(file);
    Result<CorpusEntry> entry = LoadCorpusFile(file);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    OracleOutcome out = ReplayCorpusEntry(entry.value());
    // A skip is legitimate for oracle-regression entries (they fail on a
    // buggy build and land out-of-fragment on a healthy one), but a
    // failure is a reintroduced bug.
    EXPECT_FALSE(out.failed()) << out.detail;
    if (out.kind == OracleOutcome::Kind::kPass) {
      oracles_passing.insert(entry.value().oracle);
    }
  }
  // Every oracle needs at least one genuinely passing entry, so corpus rot
  // (entries degrading into skips) cannot go unnoticed.
  for (const Oracle* oracle : AllOracles()) {
    EXPECT_TRUE(oracles_passing.count(std::string(oracle->name())))
        << "no corpus entry passes oracle " << oracle->name();
  }
}

}  // namespace
}  // namespace bddfc
