// Tests for the compiled join backend: plan compilation and caching
// (eval/plan.h) and the vectorized block executor (eval/exec.h). The A/B
// agreement tests here pin the core contract — the executor and the
// interpretive Matcher enumerate the same binding *set* (order may differ)
// and account work under the same MatchStats counting contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "bddfc/eval/exec.h"
#include "bddfc/eval/match.h"
#include "bddfc/eval/plan.h"

namespace bddfc {
namespace {

/// A binding flattened to a sorted (var, value) list; a sorted list of
/// those compares binding sets across backends with different enumeration
/// orders.
using FlatBinding = std::vector<std::pair<TermId, TermId>>;

FlatBinding Flatten(const Binding& b) {
  FlatBinding flat(b.begin(), b.end());
  std::sort(flat.begin(), flat.end());
  return flat;
}

std::vector<FlatBinding> MatcherSet(const Structure& s,
                                    const std::vector<Atom>& atoms,
                                    const Binding& partial = {}) {
  std::vector<FlatBinding> out;
  Matcher(s).Enumerate(atoms, partial, [&](const Binding& b) {
    out.push_back(Flatten(b));
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FlatBinding> PlanSet(const Structure& s,
                                 const std::vector<Atom>& atoms,
                                 const Binding& partial = {}) {
  std::vector<FlatBinding> out;
  PlanEnumerate(s, atoms, partial, [&](const Binding& b) {
    out.push_back(Flatten(b));
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sig_ = std::make_shared<Signature>();
    e_ = std::move(sig_->AddPredicate("e", 2)).ValueOrDie();
    p_ = std::move(sig_->AddPredicate("p", 2)).ValueOrDie();
    u_ = std::move(sig_->AddPredicate("u", 1)).ValueOrDie();
    for (int i = 0; i < 8; ++i) {
      std::string name = "c";
      name += std::to_string(i);
      c_[i] = sig_->AddConstant(name);
    }
  }

  SignaturePtr sig_;
  PredId e_ = -1, p_ = -1, u_ = -1;
  TermId c_[8] = {};
};

TEST_F(PlanTest, AnchorIsPinnedToTheFrontOfTheJoinOrder) {
  Structure s(sig_);
  s.AddFact(e_, {c_[0], c_[1]});
  std::vector<Atom> body = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                            Atom(e_, {MakeVar(1), MakeVar(2)})};
  QueryPlan plan = CompilePlan(s, body, /*anchor=*/1);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].atom_index, 1u);
  EXPECT_EQ(plan.steps[1].atom_index, 0u);
}

TEST_F(PlanTest, SelectivityOrdersSmallRelationFirst) {
  Structure s(sig_);
  for (int i = 0; i < 6; ++i) s.AddFact(e_, {c_[i], c_[(i + 1) % 8]});
  s.AddFact(u_, {c_[2]});
  // With no anchor both atoms start with zero known positions; the
  // cardinality estimate breaks the tie toward the 1-row u relation, after
  // which e is probed with its first position bound.
  std::vector<Atom> body = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                            Atom(u_, {MakeVar(0)})};
  QueryPlan plan = CompilePlan(s, body);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].atom_index, 1u);
  ASSERT_EQ(plan.steps[1].probe_positions.size(), 1u);
  EXPECT_EQ(plan.steps[1].probe_positions[0], 0);
}

TEST_F(PlanTest, CacheKeyCanonicalizesVariableNames) {
  std::vector<Atom> b1 = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                          Atom(e_, {MakeVar(1), MakeVar(2)})};
  std::vector<Atom> b2 = {Atom(e_, {MakeVar(7), MakeVar(3)}),
                          Atom(e_, {MakeVar(3), MakeVar(9)})};
  EXPECT_EQ(PlanCacheKey(b1, kNoAnchor), PlanCacheKey(b2, kNoAnchor));
  // The anchor is part of the key: the same body compiles per anchor.
  EXPECT_NE(PlanCacheKey(b1, 0), PlanCacheKey(b1, 1));
  EXPECT_NE(PlanCacheKey(b1, 0), PlanCacheKey(b1, kNoAnchor));
  // A repeated variable is a different shape, not a renaming.
  std::vector<Atom> loop = {Atom(e_, {MakeVar(0), MakeVar(0)}),
                            Atom(e_, {MakeVar(0), MakeVar(2)})};
  EXPECT_NE(PlanCacheKey(b1, kNoAnchor), PlanCacheKey(loop, kNoAnchor));
}

TEST_F(PlanTest, CacheSharesPlansAcrossAlphaEquivalentBodies) {
  Structure s(sig_);
  s.AddFact(e_, {c_[0], c_[1]});
  s.AddFact(e_, {c_[1], c_[2]});
  std::vector<Atom> b1 = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                          Atom(e_, {MakeVar(1), MakeVar(2)})};
  std::vector<Atom> b2 = {Atom(e_, {MakeVar(5), MakeVar(4)}),
                          Atom(e_, {MakeVar(4), MakeVar(8)})};
  PlanCache cache;
  auto p1 = cache.Get(s, b1, 0);
  auto p2 = cache.Get(s, b2, 0);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.size(), 1u);
  // The shared plan still yields each caller's own variable names.
  std::vector<TermId> v1 = PlanSlotVars(*p1, b1);
  std::vector<TermId> v2 = PlanSlotVars(*p2, b2);
  std::sort(v1.begin(), v1.end());
  std::sort(v2.begin(), v2.end());
  EXPECT_EQ(v1, (std::vector<TermId>{MakeVar(2), MakeVar(1), MakeVar(0)}));
  EXPECT_EQ(v2, (std::vector<TermId>{MakeVar(8), MakeVar(5), MakeVar(4)}));
}

TEST_F(PlanTest, ExecAgreesWithMatcherOnRandomWorkloads) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    Structure s(sig_);
    std::uniform_int_distribution<int> pick(0, 7);
    for (int i = 0; i < 40; ++i) {
      s.AddFact(e_, {c_[pick(rng)], c_[pick(rng)]});
      if (i % 2 == 0) s.AddFact(p_, {c_[pick(rng)], c_[pick(rng)]});
      if (i % 5 == 0) s.AddFact(u_, {c_[pick(rng)]});
    }
    const TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2),
                 w = MakeVar(3);
    const std::vector<std::vector<Atom>> bodies = {
        {Atom(e_, {x, y})},
        {Atom(e_, {x, y}), Atom(e_, {y, z})},
        {Atom(e_, {x, y}), Atom(e_, {y, x})},
        {Atom(e_, {x, x})},
        {Atom(e_, {x, y}), Atom(p_, {y, z}), Atom(u_, {z})},
        {Atom(u_, {x}), Atom(e_, {x, y}), Atom(e_, {y, z}),
         Atom(p_, {z, w})},
        {Atom(e_, {c_[2], x}), Atom(p_, {x, y})},
        {Atom(e_, {x, c_[3]}), Atom(e_, {x, y}), Atom(u_, {x})},
    };
    for (const std::vector<Atom>& body : bodies) {
      EXPECT_EQ(MatcherSet(s, body), PlanSet(s, body));
      EXPECT_EQ(Matcher(s).Exists(body), PlanExists(s, body));
      EXPECT_EQ(Matcher(s).CountMatches(body), PlanCountMatches(s, body));
    }
  }
}

TEST_F(PlanTest, BandedExecutionAgreesWithMatcher) {
  Structure s(sig_);
  s.AddFact(e_, {c_[0], c_[1]});
  s.AddFact(e_, {c_[1], c_[2]});
  s.MarkRoundBoundary();
  s.AddFact(e_, {c_[2], c_[3]});
  s.AddFact(e_, {c_[2], c_[4]});

  const uint32_t wm = s.WatermarkRows(e_);
  std::vector<Atom> body = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                            Atom(e_, {MakeVar(1), MakeVar(2)})};
  // Old ⋈ delta: the standard semi-naive split with anchor 1.
  const std::vector<RowBand> bands = {{0, wm}, {wm, UINT32_MAX}};

  std::vector<FlatBinding> reference;
  Matcher(s).EnumerateBanded(body, bands, {}, [&](const Binding& b) {
    reference.push_back(Flatten(b));
    return true;
  });
  std::sort(reference.begin(), reference.end());

  PlanCache cache;
  std::vector<FlatBinding> compiled;
  EXPECT_TRUE(ExecuteBandedPlan(s, cache, body, /*anchor=*/1, bands,
                                [&](const Binding& b) {
                                  compiled.push_back(Flatten(b));
                                  return true;
                                }));
  std::sort(compiled.begin(), compiled.end());
  EXPECT_EQ(reference, compiled);
  EXPECT_FALSE(reference.empty());
}

// Regression (matcher bugfix sweep): an atom with a repeated variable
// whose second occurrence mismatches must roll back the partial fill —
// p(X, X) over row (c0, c1) binds X=c0 at position 0, fails at position 1,
// and X must come free again so the later row (c2, c2) can bind it. Both
// backends are pinned here.
TEST_F(PlanTest, RepeatedVariableMismatchRollsBackPartialFill) {
  Structure s(sig_);
  s.AddFact(p_, {c_[0], c_[1]});  // partial fill fails at position 1
  s.AddFact(p_, {c_[2], c_[2]});
  s.AddFact(u_, {c_[2]});
  const TermId x = MakeVar(0);
  for (const std::vector<Atom>& body :
       {std::vector<Atom>{Atom(p_, {x, x})},
        std::vector<Atom>{Atom(p_, {x, x}), Atom(u_, {x})}}) {
    const std::vector<FlatBinding> want = {{{x, c_[2]}}};
    EXPECT_EQ(MatcherSet(s, body), want);
    EXPECT_EQ(PlanSet(s, body), want);
  }
}

// Pins the reconciled MatchStats contract on a known join (see MatchStats):
// body e(X,Y), e(Y,Z) over e = {(c0,c1), (c1,c2)}. The first atom scans
// both rows (no probe, no hit/miss); the second is instantiated twice —
// once proceeding through a probe on Y=c1 (one hit, one candidate row) and
// once pruned on Y=c2 (one miss). One complete binding. Before the
// counter fix the interpreter charged a hit per *position lookup*, so the
// two backends disagreed.
TEST_F(PlanTest, CountersMatchAcrossBackendsOnKnownJoin) {
  Structure s(sig_);
  s.AddFact(e_, {c_[0], c_[1]});
  s.AddFact(e_, {c_[1], c_[2]});
  std::vector<Atom> body = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                            Atom(e_, {MakeVar(1), MakeVar(2)})};

  MatchStats interp;
  Matcher(s, &interp).Enumerate(body, {}, [](const Binding&) { return true; });
  EXPECT_EQ(interp.postings_hits, 1u);
  EXPECT_EQ(interp.postings_misses, 1u);
  EXPECT_EQ(interp.rows_scanned, 3u);
  EXPECT_EQ(interp.bindings_tried, 1u);

  MatchStats exec;
  PlanEnumerate(s, body, {}, [](const Binding&) { return true; }, &exec);
  EXPECT_EQ(exec.postings_hits, interp.postings_hits);
  EXPECT_EQ(exec.postings_misses, interp.postings_misses);
  EXPECT_EQ(exec.rows_scanned, interp.rows_scanned);
  EXPECT_EQ(exec.bindings_tried, interp.bindings_tried);
}

TEST_F(PlanTest, StaleSortedIndexFallsBackToPostings) {
  Structure s(sig_);
  s.AddFact(e_, {c_[0], c_[1]});
  s.AddFact(e_, {c_[1], c_[2]});
  std::vector<Atom> body = {Atom(e_, {MakeVar(0), MakeVar(1)}),
                            Atom(e_, {MakeVar(1), MakeVar(2)})};
  // No RefreshIndexes yet: IndexedRows is 0, every probe takes the
  // always-current hash postings.
  EXPECT_EQ(s.IndexedRows(e_), 0u);
  EXPECT_EQ(PlanCountMatches(s, body), 1u);

  // Fresh sorted indexes cover the relation: same answers.
  s.RefreshIndexes();
  EXPECT_EQ(s.IndexedRows(e_), 2u);
  EXPECT_EQ(PlanCountMatches(s, body), 1u);

  // Rows added after the refresh make the sorted index stale (IndexedRows
  // < relation size); the executor must fall back to postings and see
  // them.
  s.AddFact(e_, {c_[2], c_[3]});
  EXPECT_EQ(s.IndexedRows(e_), 2u);
  EXPECT_EQ(PlanCountMatches(s, body), 2u);
  EXPECT_EQ(MatcherSet(s, body), PlanSet(s, body));
}

TEST_F(PlanTest, PartialBindingsSeedTheExecutor) {
  Structure s(sig_);
  s.AddFact(e_, {c_[0], c_[1]});
  s.AddFact(e_, {c_[1], c_[2]});
  const TermId x = MakeVar(0), y = MakeVar(1);
  std::vector<Atom> body = {Atom(e_, {x, y})};
  EXPECT_TRUE(PlanExists(s, body, {{x, c_[0]}}));
  EXPECT_FALSE(PlanExists(s, body, {{x, c_[2]}}));
  EXPECT_EQ(MatcherSet(s, body, {{x, c_[1]}}), PlanSet(s, body, {{x, c_[1]}}));
  // Multi-variable seed over a join.
  std::vector<Atom> join = {Atom(e_, {x, y}), Atom(e_, {y, MakeVar(2)})};
  EXPECT_EQ(MatcherSet(s, join, {{x, c_[0]}}), PlanSet(s, join, {{x, c_[0]}}));
  EXPECT_EQ(PlanCountMatches(s, join, {{x, c_[1]}}), 0u);

  // SatisfiesAt funnels through the plan backend with the first answer
  // variable pinned.
  ConjunctiveQuery q;
  q.answer_vars.push_back(x);
  q.atoms = body;
  EXPECT_TRUE(SatisfiesAt(s, q, c_[0]));
  EXPECT_FALSE(SatisfiesAt(s, q, c_[2]));
}

TEST_F(PlanTest, AbortHookStopsExecutionAtBlockBoundary) {
  Structure s(sig_);
  for (int i = 0; i < 6; ++i) s.AddFact(e_, {c_[i], c_[(i + 1) % 8]});
  std::vector<Atom> body = {Atom(e_, {MakeVar(0), MakeVar(1)})};
  QueryPlan plan = CompilePlan(s, body);
  size_t n = 0;
  const std::function<bool()> abort_now = [] { return true; };
  EXPECT_FALSE(ExecutePlan(s, plan, body, nullptr, {}, {},
                           [&n](const Binding&) {
                             ++n;
                             return true;
                           },
                           nullptr, &abort_now));
  EXPECT_EQ(n, 0u);  // tripped before the first block was emitted

  const std::function<bool()> never = [] { return false; };
  EXPECT_TRUE(ExecutePlan(s, plan, body, nullptr, {}, {},
                          [&n](const Binding&) {
                            ++n;
                            return true;
                          },
                          nullptr, &never));
  EXPECT_EQ(n, 6u);
}

TEST_F(PlanTest, EmptyBodyYieldsOneEmptyBinding) {
  Structure s(sig_);
  EXPECT_EQ(PlanCountMatches(s, {}), 1u);
  EXPECT_TRUE(PlanExists(s, {}));
}

}  // namespace
}  // namespace bddfc
