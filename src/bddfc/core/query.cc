#include "bddfc/core/query.h"

#include <algorithm>
#include <unordered_map>

#include "bddfc/core/substitution.h"

namespace bddfc {

std::vector<TermId> ConjunctiveQuery::Variables() const {
  std::vector<TermId> vars;
  for (TermId v : answer_vars) {
    // The answer interface can hold constants (a rewriting step may unify
    // an answer variable with a rule constant); those are not variables.
    if (IsVar(v) && std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  for (const Atom& a : atoms) a.CollectVariables(&vars);
  return vars;
}

std::vector<TermId> ConjunctiveQuery::Constants() const {
  std::vector<TermId> consts;
  for (const Atom& a : atoms) {
    for (TermId t : a.args) {
      if (IsConst(t) &&
          std::find(consts.begin(), consts.end(), t) == consts.end()) {
        consts.push_back(t);
      }
    }
  }
  return consts;
}

ConjunctiveQuery ConjunctiveQuery::RenamedApart(int32_t* next_var) const {
  std::unordered_map<TermId, TermId> ren;
  for (TermId v : Variables()) ren[v] = MakeVar((*next_var)++);
  ConjunctiveQuery out;
  out.atoms.reserve(atoms.size());
  for (const Atom& a : atoms) {
    Atom b = a;
    for (TermId& t : b.args) {
      if (IsVar(t)) t = ren[t];
    }
    out.atoms.push_back(std::move(b));
  }
  out.answer_vars.reserve(answer_vars.size());
  for (TermId v : answer_vars) {
    out.answer_vars.push_back(IsVar(v) ? ren[v] : v);
  }
  return out;
}

ConjunctiveQuery ConjunctiveQuery::Normalized() const {
  ConjunctiveQuery cur = *this;
  for (int iter = 0; iter < 4; ++iter) {
    // Rename variables by first occurrence (answer vars first), then sort.
    std::unordered_map<TermId, TermId> ren;
    int32_t next = 0;
    auto rename = [&](TermId t) -> TermId {
      if (!IsVar(t)) return t;
      auto it = ren.find(t);
      if (it != ren.end()) return it->second;
      TermId fresh = MakeVar(next++);
      ren.emplace(t, fresh);
      return fresh;
    };
    ConjunctiveQuery out;
    for (TermId v : cur.answer_vars) out.answer_vars.push_back(rename(v));
    out.atoms.reserve(cur.atoms.size());
    for (const Atom& a : cur.atoms) {
      Atom b;
      b.pred = a.pred;
      b.args.reserve(a.args.size());
      for (TermId t : a.args) b.args.push_back(rename(t));
      out.atoms.push_back(std::move(b));
    }
    std::sort(out.atoms.begin(), out.atoms.end());
    out.atoms.erase(std::unique(out.atoms.begin(), out.atoms.end()),
                    out.atoms.end());
    if (out == cur) return out;
    cur = std::move(out);
  }
  return cur;
}

std::string ConjunctiveQuery::NormalizedKey(const Signature& sig) const {
  return Normalized().ToString(sig);
}

std::string ConjunctiveQuery::CanonicalKey() const {
  ConjunctiveQuery n = Normalized();
  std::string key;
  key.reserve(8 * (n.atoms.size() * 3 + n.answer_vars.size()));
  auto append = [&key](int64_t v) {
    key += std::to_string(v);
    key += ',';
  };
  for (TermId v : n.answer_vars) append(v);
  key += '|';
  for (const Atom& a : n.atoms) {
    append(a.pred);
    for (TermId t : a.args) append(t);
    key += ';';
  }
  return key;
}

std::string ConjunctiveQuery::ToString(const Signature& sig) const {
  std::string s;
  if (!answer_vars.empty()) {
    s += "(";
    for (size_t i = 0; i < answer_vars.size(); ++i) {
      if (i) s += ", ";
      s += TermToString(sig, answer_vars[i]);
    }
    s += ") <- ";
  }
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i) s += ", ";
    s += atoms[i].ToString(sig);
  }
  if (atoms.empty()) s += "true";
  return s;
}

std::string UcqToString(const UnionOfCQs& ucq, const Signature& sig) {
  std::string s;
  for (size_t i = 0; i < ucq.size(); ++i) {
    if (i) s += "  OR  ";
    s += ucq[i].ToString(sig);
  }
  if (ucq.empty()) s = "false";
  return s;
}

}  // namespace bddfc
