#include "bddfc/eval/query_graph.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_map>

namespace bddfc {

namespace {

/// Variable-to-variable directed edges of the query graph.
struct Edges {
  std::vector<TermId> vars;
  std::unordered_map<TermId, int> index;
  std::vector<std::pair<int, int>> edges;  // (from, to) as var indexes

  explicit Edges(const ConjunctiveQuery& q) {
    vars = q.Variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      index[vars[i]] = static_cast<int>(i);
    }
    for (const Atom& a : q.atoms) {
      assert(a.args.size() <= 2 && "query graph requires binary signature");
      if (a.args.size() == 2 && IsVar(a.args[0]) && IsVar(a.args[1])) {
        edges.emplace_back(index[a.args[0]], index[a.args[1]]);
      }
    }
  }
};

}  // namespace

QueryGraphAnalysis AnalyzeQueryGraph(const ConjunctiveQuery& q) {
  Edges g(q);
  QueryGraphAnalysis out;
  out.num_variables = static_cast<int>(g.vars.size());
  out.num_edges = static_cast<int>(g.edges.size());
  int n = out.num_variables;
  if (n == 0) {
    out.connected = true;
    out.is_undirected_tree = true;
    return out;
  }

  // Undirected connectivity and cycle detection via union-find.
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  bool undirected_cycle = false;
  for (auto [u, v] : g.edges) {
    int ru = find(u), rv = find(v);
    if (ru == rv) {
      undirected_cycle = true;  // includes self-loops and multi-edges
    } else {
      parent[ru] = rv;
    }
  }
  int components = 0;
  for (int i = 0; i < n; ++i) {
    if (find(i) == i) ++components;
  }
  out.connected = components == 1;
  out.has_undirected_cycle = undirected_cycle;
  out.is_undirected_tree = out.connected && !undirected_cycle;

  // Directed cycle via DFS coloring.
  std::vector<std::vector<int>> succ(n);
  for (auto [u, v] : g.edges) succ[u].push_back(v);
  std::vector<int> state(n, 0);  // 0 white, 1 gray, 2 black
  std::function<bool(int)> dfs = [&](int u) {
    state[u] = 1;
    for (int v : succ[u]) {
      if (state[v] == 1) return true;
      if (state[v] == 0 && dfs(v)) return true;
    }
    state[u] = 2;
    return false;
  };
  for (int i = 0; i < n && !out.has_directed_cycle; ++i) {
    if (state[i] == 0 && dfs(i)) out.has_directed_cycle = true;
  }
  return out;
}

std::optional<CherryPattern> FindCherry(const ConjunctiveQuery& q) {
  for (size_t i = 0; i < q.atoms.size(); ++i) {
    const Atom& a = q.atoms[i];
    if (a.args.size() != 2 || !IsVar(a.args[0]) || !IsVar(a.args[1])) continue;
    for (size_t j = 0; j < q.atoms.size(); ++j) {
      if (i == j) continue;
      const Atom& b = q.atoms[j];
      if (b.args.size() != 2 || !IsVar(b.args[0]) || !IsVar(b.args[1])) {
        continue;
      }
      if (a.args[1] == b.args[1] && a.args[0] != b.args[0]) {
        CherryPattern c;
        c.atom1 = i;
        c.atom2 = j;
        c.z = a.args[1];
        c.z1 = a.args[0];
        c.z2 = b.args[0];
        return c;
      }
    }
  }
  return std::nullopt;
}

long MeasureOf(const ConjunctiveQuery& q) {
  Edges g(q);
  int n = static_cast<int>(g.vars.size());
  // occ(x): occurrences of x among all atom arguments.
  std::vector<long> occ(n, 0);
  for (const Atom& a : q.atoms) {
    for (TermId t : a.args) {
      if (IsVar(t)) ++occ[g.index[t]];
    }
  }
  // smaller(x): number of variables y != x with a directed path y ->* x.
  std::vector<std::vector<int>> succ(n);
  for (auto [u, v] : g.edges) succ[u].push_back(v);
  std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
  for (int s = 0; s < n; ++s) {
    std::vector<int> stack = {s};
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int v : succ[u]) {
        if (!reach[s][v]) {
          reach[s][v] = 1;
          stack.push_back(v);
        }
      }
    }
  }
  long measure = 0;
  for (int x = 0; x < n; ++x) {
    long smaller = 0;
    for (int y = 0; y < n; ++y) {
      if (y != x && reach[y][x]) ++smaller;
    }
    measure += occ[x] * smaller;
  }
  return measure;
}

std::vector<ConjunctiveQuery> NormalizationCandidates(
    const ConjunctiveQuery& q, const CherryPattern& cherry,
    const Signature& sig) {
  std::vector<ConjunctiveQuery> out;

  auto without = [&](size_t drop) {
    ConjunctiveQuery rest;
    rest.answer_vars = q.answer_vars;
    for (size_t i = 0; i < q.atoms.size(); ++i) {
      if (i != drop) rest.atoms.push_back(q.atoms[i]);
    }
    return rest;
  };

  // Candidate (1): drop R2(z'', z), unify z' = z'' (substitute z'' by z').
  {
    ConjunctiveQuery c = without(cherry.atom2);
    for (Atom& a : c.atoms) {
      for (TermId& t : a.args) {
        if (t == cherry.z2) t = cherry.z1;
      }
    }
    for (TermId& v : c.answer_vars) {
      if (v == cherry.z2) v = cherry.z1;
    }
    out.push_back(std::move(c));
  }

  // Candidates (2) and (3) for every binary predicate P.
  for (PredId p = 0; p < sig.num_predicates(); ++p) {
    if (sig.arity(p) != 2) continue;
    {
      ConjunctiveQuery c = without(cherry.atom2);
      c.atoms.push_back(Atom(p, {cherry.z2, cherry.z1}));
      out.push_back(std::move(c));
    }
    {
      ConjunctiveQuery c = without(cherry.atom1);
      c.atoms.push_back(Atom(p, {cherry.z1, cherry.z2}));
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace bddfc
