# Empty compiler generated dependencies file for bddfc_guarded.
# This may be replaced when dependencies are built.
