#include "bddfc/chase/round.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "bddfc/eval/exec.h"
#include "bddfc/obs/trace.h"

namespace bddfc {
namespace chase_internal {

namespace {

/// Serializes `pattern` with variables renumbered by first occurrence.
std::string SerializeRenumbered(const std::vector<Atom>& pattern) {
  std::unordered_map<TermId, TermId> ren;
  int32_t next = 0;
  std::string s;
  for (const Atom& a : pattern) {
    s += std::to_string(a.pred);
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.find(t);
        if (it == ren.end()) it = ren.emplace(t, MakeVar(next++)).first;
        t = it->second;
      }
      s += "," + std::to_string(t);
    }
    s += "|";
  }
  return s;
}

}  // namespace

/// Canonical key of a head pattern, invariant under existential-variable
/// renaming *and* atom reordering: the same demanded pattern gets the same
/// key no matter which rule (or head-atom order) produced it.
///
/// Renumbering variables by first occurrence before sorting (the seed
/// behavior) bakes the incoming atom order into the variable names, so
/// logically identical patterns hashed apart and spawned duplicate
/// witnesses. Instead, atoms are sorted under a name-independent local key
/// (predicate + per-position constant/within-atom variable shape); among
/// atoms whose local keys tie, every arrangement is tried and the
/// lexicographically least renumbered serialization wins. Ties are rare
/// (heads are small), but a cap falls back to the sorted order — still
/// deterministic and never merging inequivalent patterns, as the key is the
/// serialized pattern itself.
std::string PatternKey(const std::vector<Atom>& pattern) {
  auto local_key = [](const Atom& a) {
    std::unordered_map<TermId, int32_t> ren;
    std::string s = std::to_string(a.pred);
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.emplace(t, static_cast<int32_t>(ren.size())).first;
        s += ",v" + std::to_string(it->second);
      } else {
        s += ",c" + std::to_string(t);
      }
    }
    return s;
  };

  std::vector<std::pair<std::string, Atom>> keyed;
  keyed.reserve(pattern.size());
  for (const Atom& a : pattern) keyed.emplace_back(local_key(a), a);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  // Group atoms with equal local keys and bound the number of arrangements.
  std::vector<std::vector<Atom>> groups;
  size_t arrangements = 1;
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i == 0 || keyed[i].first != keyed[i - 1].first) groups.emplace_back();
    groups.back().push_back(keyed[i].second);
    arrangements *= groups.back().size();  // running product of factorials
  }

  std::vector<Atom> cand;
  cand.reserve(pattern.size());
  if (arrangements > 5040) {  // cap: fall back to the sorted order
    for (const auto& g : groups) cand.insert(cand.end(), g.begin(), g.end());
    return SerializeRenumbered(cand);
  }

  std::string best;
  std::function<void(size_t)> rec = [&](size_t gi) {
    if (gi == groups.size()) {
      cand.clear();
      for (const auto& g : groups) cand.insert(cand.end(), g.begin(), g.end());
      std::string s = SerializeRenumbered(cand);
      if (best.empty() || s < best) best = std::move(s);
      return;
    }
    auto& g = groups[gi];
    std::sort(g.begin(), g.end());
    do {
      rec(gi + 1);
    } while (std::next_permutation(g.begin(), g.end()));
  };
  rec(0);
  return best;
}

bool AddFactTracked(ChaseResult* out, PredId pred,
                    const std::vector<TermId>& args, int round) {
  uint32_t row = static_cast<uint32_t>(out->structure.NumFacts(pred));
  if (!out->structure.AddFact(pred, args)) return false;
  out->fact_round.emplace(FactHandle{pred, row}, round);
  return true;
}

std::string ObliviousKey(size_t ri, const Rule& rule, const Binding& b) {
  std::string key = std::to_string(ri);
  for (const Atom& a : rule.body) {
    Atom g = a;
    for (TermId& t : g.args) {
      if (IsVar(t)) {
        auto it = b.find(t);
        if (it != b.end()) t = it->second;
      }
    }
    key += "|" + std::to_string(g.pred);
    for (TermId t : g.args) key += "," + std::to_string(t);
  }
  return key;
}

std::vector<RowBand> AnchorBands(const Structure& s, const Rule& rule,
                                 size_t di, uint32_t begin, uint32_t end) {
  const size_t k = rule.body.size();
  std::vector<RowBand> bands(k);
  for (size_t j = 0; j < k; ++j) {
    if (j < di) {
      bands[j] = {0, s.WatermarkRows(rule.body[j].pred)};
    } else if (j == di) {
      bands[j] = {begin, end};
    } else {
      bands[j] = RowBand::All();
    }
  }
  return bands;
}

namespace {

/// The sequential engines' buffer operations: plain containers, dedup
/// counted on the way in.
struct SerialSink {
  const RoundInputs& in;
  RoundBuffer* buf;
  std::unordered_set<Atom, AtomHash> datalog_seen;
  std::map<std::string, PendingExistential> triggers;
  size_t fault_seq = 0;

  bool BufferDatalog(Atom g) {
    if (in.frozen.Contains(g)) return false;
    if (!datalog_seen.insert(g).second) {
      ++buf->stats.datalog_deduped;
      return false;
    }
    buf->datalog.push_back(std::move(g));
    return true;
  }
  bool ObliviousPreFilter(const std::string& key) {
    return !in.fired->insert(key).second;
  }
  void BufferTrigger(std::string key, PendingExistential pe) {
    auto [it, inserted] = triggers.try_emplace(std::move(key), std::move(pe));
    if (!inserted) {
      ++buf->stats.triggers_deduped;
      if (TriggerLess(pe, it->second)) it->second = std::move(pe);
    }
  }
  size_t FaultSeq() { return fault_seq++; }
};

}  // namespace

DatalogSinkBuffers::DatalogSinkBuffers(const Structure& frozen,
                                       size_t compact_threshold,
                                       bool drop_dup_groups)
    : frozen_(frozen),
      compact_threshold_(std::max<size_t>(compact_threshold, 1)),
      drop_dup_groups_(drop_dup_groups) {}

DatalogSinkBuffers::PredBuf& DatalogSinkBuffers::Buf(PredId pred,
                                                     size_t arity) {
  if (static_cast<size_t>(pred) >= pred_slot_.size()) {
    pred_slot_.resize(pred + 1, -1);
  }
  int32_t& slot = pred_slot_[pred];
  if (slot < 0) {
    slot = static_cast<int32_t>(bufs_.size());
    bufs_.emplace_back();
    bufs_.back().pred = pred;
    bufs_.back().arity = arity;
  }
  assert(bufs_[slot].arity == arity && "predicate arity changed mid-round");
  return bufs_[slot];
}

TermId* DatalogSinkBuffers::Append(PredId pred, size_t arity) {
  PredBuf& pb = Buf(pred, arity);
  ++candidates_;
  if (pb.tail >= compact_threshold_) Compact(&pb);
  ++pb.tail;
  if (arity == 0) return nullptr;
  const size_t at = pb.data.size();
  pb.data.resize(at + arity);
  return pb.data.data() + at;
}

void DatalogSinkBuffers::AppendAtom(const Atom& g) {
  TermId* dst = Append(g.pred, g.args.size());
  if (dst != nullptr) std::copy(g.args.begin(), g.args.end(), dst);
}

void DatalogSinkBuffers::Compact(PredBuf* pb) {
  if (pb->tail == 0) return;
  const size_t arity = pb->arity;
  if (arity == 0) {
    // Nullary predicate: all occurrences are the one empty tuple.
    if (pb->kept == 1) {
      deduped_ += pb->tail;
      if (drop_dup_groups_) pb->kept_dup.assign(1, 1);
    } else {
      ++probes_;
      if (frozen_.Contains(pb->pred, {})) {
        contained_ += pb->tail;
      } else {
        deduped_ += pb->tail - 1;
        pb->kept = 1;
        if (drop_dup_groups_) pb->kept_dup.assign(1, pb->tail > 1 ? 1 : 0);
      }
    }
    pb->tail = 0;
    return;
  }

  const TermId* base = pb->data.data();
  const TermId* tail = base + pb->kept * arity;
  auto tup_less = [arity](const TermId* a, const TermId* b) {
    return std::lexicographical_compare(a, a + arity, b, b + arity);
  };
  auto tup_eq = [arity](const TermId* a, const TermId* b) {
    return std::equal(a, a + arity, b);
  };

  // Sort the raw tail by tuple value (index sort; tuples stay in place).
  std::vector<uint32_t> ord(pb->tail);
  for (uint32_t i = 0; i < pb->tail; ++i) ord[i] = i;
  std::sort(ord.begin(), ord.end(), [&](uint32_t a, uint32_t b) {
    const TermId* ta = tail + static_cast<size_t>(a) * arity;
    const TermId* tb = tail + static_cast<size_t>(b) * arity;
    return tup_less(ta, tb) || (!tup_less(tb, ta) && a < b);
  });

  // Pass 1: walk the sorted tail groups against the kept prefix with a
  // monotone cursor. Groups equal to a kept tuple collapse immediately
  // (order-independent: k more occurrences of a kept tuple count k);
  // fresh distinct tuples are gathered for one bulk containment probe.
  std::vector<TermId> fresh;
  std::vector<uint32_t> fresh_count;
  size_t pi = 0;
  for (size_t gi = 0; gi < ord.size();) {
    const TermId* t = tail + static_cast<size_t>(ord[gi]) * arity;
    size_t ge = gi + 1;
    while (ge < ord.size() &&
           tup_eq(t, tail + static_cast<size_t>(ord[ge]) * arity)) {
      ++ge;
    }
    const size_t k = ge - gi;
    while (pi < pb->kept && tup_less(base + pi * arity, t)) ++pi;
    if (pi < pb->kept && tup_eq(base + pi * arity, t)) {
      deduped_ += k;
      if (drop_dup_groups_) pb->kept_dup[pi] = 1;
    } else {
      fresh.insert(fresh.end(), t, t + arity);
      fresh_count.push_back(static_cast<uint32_t>(k));
    }
    gi = ge;
  }

  // One bulk containment probe for all fresh distinct tuples.
  const size_t fresh_tuples = fresh_count.size();
  std::vector<char> fresh_in;
  if (fresh_tuples > 0) {
    probes_ += fresh_tuples;
    frozen_.ContainsSorted(pb->pred, arity, fresh.data(), fresh_tuples,
                           &fresh_in);
  }

  // Pass 2: merge the kept prefix with the surviving fresh tuples (both
  // sorted, disjoint) into the new compacted prefix.
  std::vector<TermId> merged;
  std::vector<char> merged_dup;
  size_t merged_tuples = 0;
  merged.reserve(pb->kept * arity + fresh.size());
  size_t mi = 0;  // kept cursor
  size_t fi = 0;  // fresh cursor
  auto push_kept = [&](size_t i) {
    merged.insert(merged.end(), base + i * arity, base + (i + 1) * arity);
    if (drop_dup_groups_) merged_dup.push_back(pb->kept_dup[i]);
    ++merged_tuples;
  };
  auto push_fresh = [&](size_t i) {
    const TermId* t = fresh.data() + i * arity;
    if (fresh_in[i]) {
      contained_ += fresh_count[i];
      return;
    }
    deduped_ += fresh_count[i] - 1;
    merged.insert(merged.end(), t, t + arity);
    if (drop_dup_groups_) merged_dup.push_back(fresh_count[i] > 1 ? 1 : 0);
    ++merged_tuples;
  };
  while (mi < pb->kept && fi < fresh_tuples) {
    if (tup_less(base + mi * arity, fresh.data() + fi * arity)) {
      push_kept(mi++);
    } else {
      push_fresh(fi++);
    }
  }
  while (mi < pb->kept) push_kept(mi++);
  while (fi < fresh_tuples) push_fresh(fi++);

  pb->data = std::move(merged);
  pb->kept = merged_tuples;
  pb->tail = 0;
  if (drop_dup_groups_) pb->kept_dup = std::move(merged_dup);
}

void DatalogSinkBuffers::FinishInto(std::vector<Atom>* out) {
  std::vector<size_t> order(bufs_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return bufs_[a].pred < bufs_[b].pred;
  });
  for (size_t bi : order) {
    PredBuf& pb = bufs_[bi];
    Compact(&pb);
    for (size_t ti = 0; ti < pb.kept; ++ti) {
      if (drop_dup_groups_ && pb.kept_dup[ti]) continue;
      const TermId* t = pb.data.data() + ti * pb.arity;
      out->emplace_back(pb.pred, std::vector<TermId>(t, t + pb.arity));
    }
  }
}

std::vector<DatalogSinkBuffers::Run> DatalogSinkBuffers::TakeRuns() {
  std::sort(bufs_.begin(), bufs_.end(),
            [](const PredBuf& a, const PredBuf& b) { return a.pred < b.pred; });
  std::vector<Run> runs;
  runs.reserve(bufs_.size());
  for (PredBuf& pb : bufs_) {
    Compact(&pb);
    Run run;
    run.pred = pb.pred;
    run.arity = pb.arity;
    if (drop_dup_groups_ &&
        std::find(pb.kept_dup.begin(), pb.kept_dup.end(), 1) !=
            pb.kept_dup.end()) {
      // Fault path: rebuild the run without the flagged tuples.
      for (size_t ti = 0; ti < pb.kept; ++ti) {
        if (pb.kept_dup[ti]) continue;
        const TermId* t = pb.data.data() + ti * pb.arity;
        run.data.insert(run.data.end(), t, t + pb.arity);
        ++run.tuples;
      }
    } else {
      run.tuples = pb.kept;
      run.data = std::move(pb.data);
    }
    if (run.tuples > 0) runs.push_back(std::move(run));
  }
  bufs_.clear();
  pred_slot_.clear();
  return runs;
}

void MergeDatalogRuns(std::vector<DatalogSinkBuffers::Run> runs,
                      bool drop_dup_groups, std::vector<Atom>* out,
                      size_t* deduped) {
  std::sort(runs.begin(), runs.end(),
            [](const DatalogSinkBuffers::Run& a,
               const DatalogSinkBuffers::Run& b) { return a.pred < b.pred; });
  for (size_t i = 0; i < runs.size();) {
    size_t j = i + 1;
    while (j < runs.size() && runs[j].pred == runs[i].pred) ++j;
    const PredId pred = runs[i].pred;
    const size_t arity = runs[i].arity;
    if (arity == 0) {
      size_t total = 0;
      for (size_t r = i; r < j; ++r) total += runs[r].tuples;
      if (total > 0) {
        *deduped += total - 1;
        if (!(drop_dup_groups && total > 1)) {
          out->emplace_back(pred, std::vector<TermId>());
        }
      }
      i = j;
      continue;
    }
    // Concatenate the runs of this predicate and sort an index over all
    // tuples (each run is already sorted; a global index sort keeps the
    // merge simple and the group walk identical to the serial path).
    std::vector<TermId> flat;
    size_t total = 0;
    for (size_t r = i; r < j; ++r) {
      flat.insert(flat.end(), runs[r].data.begin(), runs[r].data.end());
      total += runs[r].tuples;
    }
    auto tup_less = [arity](const TermId* a, const TermId* b) {
      return std::lexicographical_compare(a, a + arity, b, b + arity);
    };
    std::vector<uint32_t> ord(total);
    for (uint32_t t = 0; t < total; ++t) ord[t] = t;
    std::sort(ord.begin(), ord.end(), [&](uint32_t a, uint32_t b) {
      const TermId* ta = flat.data() + static_cast<size_t>(a) * arity;
      const TermId* tb = flat.data() + static_cast<size_t>(b) * arity;
      return tup_less(ta, tb) || (!tup_less(tb, ta) && a < b);
    });
    for (size_t gi = 0; gi < ord.size();) {
      const TermId* t = flat.data() + static_cast<size_t>(ord[gi]) * arity;
      size_t ge = gi + 1;
      while (ge < ord.size() &&
             std::equal(t, t + arity,
                        flat.data() + static_cast<size_t>(ord[ge]) * arity)) {
        ++ge;
      }
      *deduped += ge - gi - 1;
      if (!(drop_dup_groups && ge - gi > 1)) {
        out->emplace_back(pred, std::vector<TermId>(t, t + arity));
      }
      gi = ge;
    }
    i = j;
  }
}

void DedupTriggers(
    std::vector<std::pair<std::string, PendingExistential>> raw,
    std::vector<std::pair<std::string, PendingExistential>>* out,
    size_t* tdedup) {
  std::sort(raw.begin(), raw.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return TriggerLess(a.second, b.second);
  });
  for (size_t i = 0; i < raw.size();) {
    size_t j = i + 1;
    while (j < raw.size() && raw[j].first == raw[i].first) ++j;
    *tdedup += j - i - 1;
    out->push_back(std::move(raw[i]));
    i = j;
  }
}

VectorSink::VectorSink(const RoundInputs& in, ChaseStats* stats,
                       size_t compact_threshold,
                       std::atomic<size_t>* shared_fault_seq,
                       bool defer_oblivious)
    : in_(in),
      stats_(stats),
      bufs_(in.frozen, compact_threshold,
            in.fault == ChaseFault::kSinkDropDup),
      shared_fault_seq_(shared_fault_seq),
      defer_oblivious_(defer_oblivious) {}

bool VectorSink::ObliviousPreFilter(const std::string& key) {
  if (defer_oblivious_) return false;
  return !in_.fired->insert(key).second;
}

size_t VectorSink::FaultSeq() {
  return shared_fault_seq_ != nullptr
             ? shared_fault_seq_->fetch_add(1, std::memory_order_relaxed)
             : local_fault_seq_++;
}

void VectorSink::FoldCounters() {
  stats_->sink_candidates += bufs_.candidates();
  stats_->sink_contained += bufs_.contained();
  stats_->sink_probes += bufs_.probes();
  stats_->datalog_deduped += bufs_.deduped();
}

void VectorSink::Finish(RoundBuffer* buf) {
  obs::TraceSpan span("chase.sink");
  // Fail-stop fault site: a fire latches the context, and the round-abort
  // path in chase.cc discards this buffer as an incomplete round.
  (void)in_.ctx->CheckFault(faults::kSinkMerge);
  bufs_.FinishInto(&buf->datalog);
  FoldCounters();
  DedupTriggers(std::move(triggers_), &buf->triggers,
                &stats_->triggers_deduped);
}

std::vector<DatalogSinkBuffers::Run> VectorSink::TakeDatalogRuns() {
  std::vector<DatalogSinkBuffers::Run> runs = bufs_.TakeRuns();
  FoldCounters();
  return runs;
}

std::vector<HeadTemplate> BuildHeadTemplates(
    const Rule& rule, const std::vector<TermId>& slot_vars) {
  std::vector<HeadTemplate> heads;
  heads.reserve(rule.head.size());
  for (const Atom& h : rule.head) {
    HeadTemplate ht;
    ht.pred = h.pred;
    ht.arity = h.args.size();
    ht.args.reserve(h.args.size());
    for (TermId t : h.args) {
      HeadTemplate::Arg a;
      if (IsVar(t)) {
        auto it = std::find(slot_vars.begin(), slot_vars.end(), t);
        assert(it != slot_vars.end() &&
               "datalog head variable missing from the body's slot layout");
        a.slot = static_cast<uint32_t>(it - slot_vars.begin());
      } else {
        a.is_const = true;
        a.value = t;
      }
      ht.args.push_back(a);
    }
    heads.push_back(std::move(ht));
  }
  return heads;
}

void EnumerateAnchorVectorized(const RoundInputs& in, size_t ri, size_t di,
                               const std::vector<RowBand>& bands,
                               const Matcher& witness, VectorSink* sink,
                               MatchStats* match_stats) {
  const Rule& rule = in.theory.rules()[ri];
  auto on_binding = [&](const Binding& b) {
    return HandleBinding(in, ri, b, witness, *sink);
  };
  if (in.plans == nullptr) {
    Matcher matcher(in.frozen, match_stats);
    matcher.EnumerateBanded(rule.body, bands, {}, on_binding);
    return;
  }
  // Fail-stop fault site at the plan boundary: a fire latches the context
  // and this anchor (and, via Exhausted, the rest of the round) is skipped;
  // the round-abort path discards the partial buffer.
  if (!in.ctx->CheckFault(faults::kPlanCompile).ok()) return;
  const std::function<bool()> block_stop = [&in] {
    return in.ctx->ShouldStop("plan block");
  };
  if (rule.IsExistential()) {
    // Existential rules keep the per-binding path: the witness-existence
    // probe and PatternKey need a Binding anyway.
    ExecuteBandedPlan(in.frozen, *in.plans, rule.body, di, bands, on_binding,
                      match_stats, &block_stop);
    return;
  }
  // Datalog rule on the compiled path: ground head blocks straight from
  // the executor's slot blocks — no Binding, no Atom per occurrence.
  std::shared_ptr<const QueryPlan> plan =
      in.plans->Get(in.frozen, rule.body, di);
  const std::vector<TermId> slot_vars = PlanSlotVars(*plan, rule.body);
  const std::vector<HeadTemplate> heads = BuildHeadTemplates(rule, slot_vars);
  auto on_block = [&](const SlotBlock& blk) {
    for (size_t r = 0; r < blk.num_rows; ++r) {
      const TermId* slots = blk.rows + r * blk.width;
      for (const HeadTemplate& h : heads) {
        TermId* dst = sink->AppendDatalogSlot(h.pred, h.arity);
        for (size_t pos = 0; pos < h.arity; ++pos) {
          const HeadTemplate::Arg& a = h.args[pos];
          dst[pos] = a.is_const ? a.value : slots[a.slot];
        }
      }
    }
    return true;
  };
  ExecutePlanBlocks(in.frozen, *plan, rule.body, &bands, on_block, match_stats,
                    &block_stop);
}

namespace {

/// The delta round loop over the vectorized sink: same anchor rotation and
/// skip rules as the hash path below, with per-(rule, anchor) enumeration
/// delegated to EnumerateAnchorVectorized and one sink finalization at the
/// end (which runs even after a governor trip — see VectorSink::Finish).
void EnumerateRoundSequentialVectorized(const RoundInputs& in,
                                        RoundBuffer* buf) {
  Matcher witness(in.frozen);
  VectorSink sink(in, &buf->stats);
  for (size_t ri = 0; ri < in.theory.rules().size(); ++ri) {
    if (in.ctx->Exhausted()) break;  // a trip mid-rule skips the rest
    const Rule& rule = in.theory.rules()[ri];
    if (rule.IsExistential() && in.options.datalog_only) continue;
    for (size_t di = 0; di < rule.body.size(); ++di) {
      const PredId anchor_pred = rule.body[di].pred;
      const uint32_t wm = in.frozen.WatermarkRows(anchor_pred);
      if (wm >= in.frozen.NumFacts(anchor_pred)) continue;
      bool empty_prefix = false;
      for (size_t j = 0; j < di; ++j) {
        if (in.frozen.WatermarkRows(rule.body[j].pred) == 0) {
          empty_prefix = true;
          break;
        }
      }
      if (empty_prefix) continue;
      const std::vector<RowBand> bands =
          AnchorBands(in.frozen, rule, di, wm, UINT32_MAX);
      EnumerateAnchorVectorized(in, ri, di, bands, witness, &sink,
                                &buf->stats.match);
    }
  }
  sink.Finish(buf);
}

}  // namespace

void EnumerateRoundSequential(const RoundInputs& in, bool delta,
                              RoundBuffer* buf) {
  if (delta && in.options.vectorized_sink) {
    EnumerateRoundSequentialVectorized(in, buf);
    return;
  }
  Matcher matcher(in.frozen, &buf->stats.match);
  // Witness-existence probes go through a stats-less matcher so
  // bindings_tried counts rule-body bindings only.
  Matcher witness(in.frozen);
  SerialSink sink{in, buf, {}, {}, 0};

  for (size_t ri = 0; ri < in.theory.rules().size(); ++ri) {
    if (in.ctx->Exhausted()) break;  // a trip mid-rule skips the rest
    const Rule& rule = in.theory.rules()[ri];
    if (rule.IsExistential() && in.options.datalog_only) continue;

    auto on_binding = [&](const Binding& b) {
      return HandleBinding(in, ri, b, witness, sink);
    };

    if (delta) {
      // Semi-naive: rotate a delta anchor over the body; each binding that
      // touches the delta is enumerated exactly once, with the anchor at
      // its first delta atom. Before the first MarkRoundBoundary (round 1)
      // all watermarks are 0, so only anchor 0 fires and it performs one
      // full enumeration.
      for (size_t di = 0; di < rule.body.size(); ++di) {
        const PredId anchor_pred = rule.body[di].pred;
        const uint32_t wm = in.frozen.WatermarkRows(anchor_pred);
        if (wm >= in.frozen.NumFacts(anchor_pred)) {
          continue;  // this relation gained nothing last round
        }
        // An anchor whose pre-watermark prefix is vacuous (some earlier
        // body atom has watermark 0) contributes no bindings. The matcher
        // discovers this for free — it enumerates in body order and the
        // empty band kills the walk before reaching the anchor — but the
        // plan executor pins the anchor first and would scan its whole
        // delta before probing the empty band. Skip it up front, matching
        // the parallel engine's shard-submission filter, so the effort
        // counters agree across all three paths.
        bool empty_prefix = false;
        for (size_t j = 0; j < di; ++j) {
          if (in.frozen.WatermarkRows(rule.body[j].pred) == 0) {
            empty_prefix = true;
            break;
          }
        }
        if (empty_prefix) continue;
        const std::vector<RowBand> bands =
            AnchorBands(in.frozen, rule, di, wm, UINT32_MAX);
        if (in.plans != nullptr) {
          if (!in.ctx->CheckFault(faults::kPlanCompile).ok()) break;
          // Compiled path: per-(body, anchor) plan from the run cache,
          // vectorized banded execution. The binding *set* matches the
          // interpreter's, which is all ApplyRound depends on.
          const std::function<bool()> block_stop = [&in] {
            return in.ctx->ShouldStop("plan block");
          };
          ExecuteBandedPlan(in.frozen, *in.plans, rule.body, di, bands,
                            on_binding, &buf->stats.match, &block_stop);
        } else {
          matcher.EnumerateBanded(rule.body, bands, {}, on_binding);
        }
      }
    } else {
      matcher.Enumerate(rule.body, {}, on_binding);
    }
  }

  // The sink's keep-min map already holds unique keys; move it out.
  buf->triggers.reserve(sink.triggers.size());
  for (auto& [key, pe] : sink.triggers) {
    buf->triggers.emplace_back(key, std::move(pe));
  }
}

size_t ApplyRound(RoundBuffer* buf, size_t round, ChaseResult* out) {
  // Canonical application order (see the header): sorted datalog atoms
  // first, then triggers in key order. Every engine funnels through this,
  // so row order and null naming are functions of the round's derivation
  // set alone.
  std::sort(buf->datalog.begin(), buf->datalog.end());
  std::sort(buf->triggers.begin(), buf->triggers.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  size_t added = 0;
  for (const Atom& g : buf->datalog) {
    if (AddFactTracked(out, g.pred, g.args, static_cast<int>(round))) {
      ++added;
    }
  }
  for (auto& [key, pe] : buf->triggers) {
    (void)key;
    // Invent one null per existential variable of this trigger.
    std::unordered_map<TermId, TermId> witness;
    for (TermId v : pe.existentials) {
      TermId null_id = out->structure.mutable_sig().AddNull();
      witness.emplace(v, null_id);
      ++out->nulls_created;
    }
    for (Atom g : pe.head_pattern) {
      for (TermId& t : g.args) {
        if (IsVar(t)) t = witness.at(t);
      }
      if (AddFactTracked(out, g.pred, g.args, static_cast<int>(round))) {
        ++added;
      }
      // Record provenance on each fresh null (one shared head atom each).
      for (auto [v, null_id] : witness) {
        (void)v;
        auto it = out->null_provenance.find(null_id);
        if (it == out->null_provenance.end()) {
          NullProvenance np;
          np.birth_round = static_cast<int>(round);
          np.rule_index = pe.rule_index;
          np.head_atom = g;
          out->null_provenance.emplace(null_id, std::move(np));
        }
      }
    }
  }
  return added;
}

}  // namespace chase_internal
}  // namespace bddfc
