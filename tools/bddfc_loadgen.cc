// bddfc_loadgen: mixed-tenant load generator and correctness harness for
// bddfc-serve (EXPERIMENTS.md E18).
//
// Replays a deterministic stream of LOAD / QUERY / REWRITE requests from
// T tenants against a ReasoningServer — in-process by default (the same
// Handle() the daemon's socket loop calls), or over TCP with --connect.
// Beyond latency (p50/p99/QPS) it CHECKS the serving contract and exits
// nonzero on any violation:
//
//   * every QUERY answer is byte-identical to a one-shot run (local
//     ParseProgram + RunChase + Satisfies oracle, computed up front);
//   * equivalent spellings of a theory land on one artifact key;
//   * cache hits skip recompilation: the compiles counter equals the
//     number of distinct theories, and with --trace the per-session
//     rings contain exactly that many serve.compile spans;
//   * per-session counter sums reconcile with the server totals — the
//     no-cross-session-leakage invariant (in-process mode).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/serve/protocol.h"
#include "bddfc/serve/server.h"
#include "bddfc/workload/generators.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using bddfc::ChaseOptions;
using bddfc::ChaseResult;
using bddfc::ConjunctiveQuery;
using bddfc::ParseProgram;
using bddfc::ParseQuery;
using bddfc::Program;
using bddfc::Result;
using bddfc::Rng;
using bddfc::RunChase;
using bddfc::Satisfies;
using bddfc::Status;
using bddfc::serve::FormatResponse;
using bddfc::serve::KeyFromHex;
using bddfc::serve::ReasoningServer;
using bddfc::serve::Request;
using bddfc::serve::Response;
using bddfc::serve::ServerOptions;

// ---------------------------------------------------------------------------
// Workload: per-tenant chain-closure theories with known certain answers.

struct TenantWorkload {
  std::string tenant;
  /// Two spellings of one theory (reordered facts, comments) — must land
  /// on the same artifact key.
  std::string theory, theory_variant;
  /// Query texts with oracle answers (computed by a one-shot local run).
  std::vector<std::pair<std::string, bool>> queries;
  std::string rewrite_query;
};

std::string Const(int t, int i) {
  return "n" + std::to_string(t) + "_" + std::to_string(i);
}

/// A chain n_0 -> ... -> n_len under transitive closure, plus a `top`
/// marker derived from the full-span edge. Tenants differ in chain length
/// and constant names, so theories (and artifact keys) differ per tenant.
TenantWorkload MakeWorkload(int t) {
  TenantWorkload w;
  w.tenant = "tenant" + std::to_string(t);
  const int len = 4 + t % 5;
  std::vector<std::string> facts;
  for (int i = 0; i < len; ++i) {
    facts.push_back("e(" + Const(t, i) + ", " + Const(t, i + 1) + ").");
  }
  const std::string rules =
      "e(X, Y), e(Y, Z) -> e(X, Z).\n"
      "e(" + Const(t, 0) + ", " + Const(t, len) + ") -> top(" +
      Const(t, 0) + ").\n";
  for (const std::string& f : facts) w.theory += f + "\n";
  w.theory += rules;
  // Same theory, different spelling: facts reversed, noise whitespace and
  // a comment. Canonicalization must collapse both to one key.
  w.theory_variant = "% tenant " + std::to_string(t) + " (variant)\n";
  for (auto it = facts.rbegin(); it != facts.rend(); ++it) {
    w.theory_variant += "  " + *it + "\n";
  }
  w.theory_variant += rules;

  // Query payloads are bare CQ bodies (what ParseQuery accepts).
  w.queries = {
      {"e(" + Const(t, 0) + ", " + Const(t, len) + ")", true},
      {"e(" + Const(t, len) + ", " + Const(t, 0) + ")", false},
      {"top(" + Const(t, 0) + ")", true},
      {"top(" + Const(t, 1) + ")", false},
      {"e(" + Const(t, 1) + ", X), e(X, " + Const(t, len) + ")", len >= 3},
  };
  w.rewrite_query = "top(X)";
  return w;
}

/// Replaces every oracle bit with the answer of a one-shot local run —
/// the independent baseline the served answers must match byte-for-byte.
bool ComputeOracle(TenantWorkload* w, const ChaseOptions& copts) {
  Result<Program> program = ParseProgram(w->theory);
  if (!program.ok()) {
    std::fprintf(stderr, "oracle parse failed for %s: %s\n",
                 w->tenant.c_str(), program.status().ToString().c_str());
    return false;
  }
  const ChaseResult chase =
      RunChase(program.value().theory, program.value().instance, copts);
  if (!chase.status.ok() || !chase.fixpoint_reached) {
    std::fprintf(stderr, "oracle chase failed for %s\n", w->tenant.c_str());
    return false;
  }
  for (auto& [text, expected] : w->queries) {
    Result<ConjunctiveQuery> q =
        ParseQuery(text, program.value().instance.signature_ptr().get());
    if (!q.ok()) {
      std::fprintf(stderr, "oracle query parse failed: %s\n", text.c_str());
      return false;
    }
    const bool sat = Satisfies(chase.structure, q.value());
    if (sat != expected) {
      // The hand-written expectation disagrees with the machine oracle —
      // trust the oracle (it IS the one-shot baseline), but say so.
      std::fprintf(stderr, "note: oracle overrides expectation for %s\n",
                   text.c_str());
      expected = sat;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Transports: in-process Handle() or a framed TCP client.

class Transport {
 public:
  virtual ~Transport() = default;
  virtual Response Roundtrip(const Request& request) = 0;
};

class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(ReasoningServer& server) : server_(server) {}
  Response Roundtrip(const Request& request) override {
    return server_.Handle(request);
  }

 private:
  ReasoningServer& server_;
};

#if !defined(_WIN32)
class SocketTransport : public Transport {
 public:
  static std::unique_ptr<SocketTransport> Connect(const std::string& host,
                                                  uint16_t port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                      &res) != 0 ||
        res == nullptr) {
      return nullptr;
    }
    const int fd = ::socket(res->ai_family, res->ai_socktype, 0);
    const bool ok =
        fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
    ::freeaddrinfo(res);
    if (!ok) {
      if (fd >= 0) ::close(fd);
      return nullptr;
    }
    return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
  }

  ~SocketTransport() override {
    (void)!::write(fd_, "QUIT\n", 5);
    ::close(fd_);
  }

  Response Roundtrip(const Request& request) override {
    std::string wire;
    switch (request.kind) {
      case Request::Kind::kLoad:
        wire = "LOAD " + request.tenant + " " +
               std::to_string(request.payload.size()) + "\n" +
               request.payload;
        break;
      case Request::Kind::kQuery:
      case Request::Kind::kRewrite:
        wire = std::string(request.kind == Request::Kind::kQuery ? "QUERY "
                                                                 : "REWRITE ") +
               request.tenant + " " + bddfc::serve::KeyToHex(request.key) +
               " " + std::to_string(request.payload.size()) + "\n" +
               request.payload;
        break;
      case Request::Kind::kMetrics:
        wire = request.tenant.empty() ? "METRICS\n"
                                      : "METRICS " + request.tenant + "\n";
        break;
      case Request::Kind::kHealth:
        wire = "HEALTH\n";
        break;
    }
    if (!SendAll(wire)) return Fail("send failed");

    // Read "OK <n>" / "ERR <code> <n>", then exactly n body bytes.
    std::string header;
    if (!ReadLine(&header)) return Fail("read failed");
    size_t nbytes = 0;
    Status status = Status::OK();
    if (header.rfind("OK ", 0) == 0) {
      nbytes = std::strtoull(header.c_str() + 3, nullptr, 10);
    } else if (header.rfind("ERR ", 0) == 0) {
      const size_t sp = header.find(' ', 4);
      if (sp == std::string::npos) return Fail("bad ERR header");
      status = Status(bddfc::StatusCode::kUnknown, header.substr(4, sp - 4));
      nbytes = std::strtoull(header.c_str() + sp + 1, nullptr, 10);
    } else {
      return Fail("bad response header: " + header);
    }
    std::string body;
    while (body.size() < nbytes) {
      const size_t want = std::min<size_t>(4096, nbytes - body.size());
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, want, 0);
      if (n <= 0) return Fail("short body");
      body.append(chunk, static_cast<size_t>(n));
    }
    return Response{status, std::move(body)};
  }

 private:
  explicit SocketTransport(int fd) : fd_(fd) {}

  static Response Fail(std::string msg) {
    return Response{Status::Internal(msg), std::move(msg)};
  }

  bool SendAll(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* out) {
    out->clear();
    char c;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return true;
      *out += c;
    }
    return false;
  }

  int fd_;
};
#endif  // !_WIN32

// ---------------------------------------------------------------------------
// The replay.

struct WorkerResult {
  std::vector<double> latencies_ms;
  size_t requests = 0;
  size_t mismatches = 0;
  size_t sheds = 0;
  size_t errors = 0;
};

void RunWorker(Transport& transport, const std::vector<TenantWorkload>& pool,
               int worker, size_t requests, uint64_t seed,
               std::map<std::string, uint64_t>* keys, std::mutex* keys_mu,
               WorkerResult* out) {
  Rng rng(Rng::Mix(seed, static_cast<uint64_t>(worker)));
  const TenantWorkload& home = pool[worker % pool.size()];

  auto timed = [&](const Request& r) {
    const auto start = std::chrono::steady_clock::now();
    Response resp = transport.Roundtrip(r);
    out->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
    ++out->requests;
    if (resp.status.code() == bddfc::StatusCode::kResourceExhausted) {
      ++out->sheds;
    } else if (!resp.ok()) {
      ++out->errors;
    }
    return resp;
  };

  auto load = [&](const TenantWorkload& w, bool variant) -> uint64_t {
    Request r;
    r.kind = Request::Kind::kLoad;
    r.tenant = home.tenant;  // the REQUESTER's session, not the theory's
    r.payload = variant ? w.theory_variant : w.theory;
    const Response resp = timed(r);
    if (!resp.ok()) return 0;
    uint64_t key = 0;
    if (resp.body.rfind("key=", 0) != 0 ||
        !KeyFromHex(resp.body.substr(4, 16), &key)) {
      ++out->mismatches;
      return 0;
    }
    std::lock_guard<std::mutex> lock(*keys_mu);
    auto [it, inserted] = keys->emplace(w.tenant, key);
    if (!inserted && it->second != key) {
      // Equivalent spellings must map to one artifact key.
      ++out->mismatches;
    }
    return key;
  };

  uint64_t home_key = load(home, false);
  size_t issued = 1;
  while (issued < requests) {
    const uint64_t dice = rng.Uniform(10);
    if (dice < 2 || home_key == 0) {
      // Re-LOAD (sometimes the variant spelling): an expected cache hit.
      home_key = load(home, rng.Uniform(2) == 1);
      ++issued;
      continue;
    }
    // Occasionally work against another tenant's theory to mix sessions.
    const TenantWorkload& target =
        dice == 9 ? pool[rng.Uniform(pool.size())] : home;
    uint64_t key = home_key;
    if (&target != &home) {
      key = load(target, false);
      ++issued;
      if (issued >= requests || key == 0) continue;
    }
    Request r;
    r.tenant = home.tenant;
    r.key = key;
    if (dice == 8) {
      r.kind = Request::Kind::kRewrite;
      r.payload = target.rewrite_query;
      timed(r);
    } else {
      const auto& [text, expected] =
          target.queries[rng.Uniform(target.queries.size())];
      r.kind = Request::Kind::kQuery;
      r.payload = text;
      const Response resp = timed(r);
      if (resp.ok() && resp.body != (expected ? "true" : "false")) {
        ++out->mismatches;
        std::fprintf(stderr, "MISMATCH %s %s: served %s, oracle %s\n",
                     home.tenant.c_str(), text.c_str(), resp.body.c_str(),
                     expected ? "true" : "false");
      }
    }
    ++issued;
  }
}

// ---------------------------------------------------------------------------

std::map<std::string, uint64_t> CounterMap(const bddfc::obs::MetricsSnapshot& s) {
  std::map<std::string, uint64_t> out;
  for (const auto& p : s.counters) out[p.name] = p.value;
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bddfc_loadgen [--tenants=N] [--workers=N] "
               "[--requests=N] [--seed=N] [--trace] [--json=PATH] "
               "[--connect=HOST:PORT]\n"
               "  --requests is per worker; total = workers * requests\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t tenants = 8;
  size_t workers = 8;
  size_t requests = 150;
  uint64_t seed = 42;
  bool trace = false;
  const char* json_out = nullptr;
  std::string connect_host;
  uint16_t connect_port = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto flag = [&](const char* name) -> const char* {
      const size_t n = std::strlen(name);
      return std::strncmp(arg, name, n) == 0 ? arg + n : nullptr;
    };
    if (const char* p = flag("--tenants=")) {
      tenants = std::strtoull(p, nullptr, 10);
    } else if (const char* p = flag("--workers=")) {
      workers = std::strtoull(p, nullptr, 10);
    } else if (const char* p = flag("--requests=")) {
      requests = std::strtoull(p, nullptr, 10);
    } else if (const char* p = flag("--seed=")) {
      seed = std::strtoull(p, nullptr, 10);
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace = true;
    } else if (const char* p = flag("--json=")) {
      json_out = p;
    } else if (const char* p = flag("--connect=")) {
      const char* colon = std::strrchr(p, ':');
      if (colon == nullptr) return Usage();
      connect_host.assign(p, colon - p);
      connect_port = static_cast<uint16_t>(std::strtoul(colon + 1, nullptr, 10));
    } else {
      return Usage();
    }
  }
  if (tenants == 0 || workers == 0 || requests == 0) return Usage();

  ServerOptions options;
  options.tracing = trace;
  // Transitive closure is not UCQ-rewritable, so REWRITE runs to its
  // budget; keep it small so rewrites measure serving overhead, not the
  // rewriter's divergence bound. (Memoized per artifact after the first.)
  options.rewrite.max_depth = 4;
  options.rewrite.max_queries = 200;
  std::vector<TenantWorkload> pool;
  ChaseOptions oracle_opts;
  oracle_opts.max_rounds = options.compile.max_rounds;
  oracle_opts.max_facts = options.compile.max_facts;
  for (size_t t = 0; t < tenants; ++t) {
    pool.push_back(MakeWorkload(static_cast<int>(t)));
    if (!ComputeOracle(&pool.back(), oracle_opts)) return 1;
  }

  const bool in_process = connect_host.empty();
  std::unique_ptr<ReasoningServer> server;
  if (in_process) server = std::make_unique<ReasoningServer>(options);

  std::vector<std::unique_ptr<Transport>> transports;
  for (size_t w = 0; w < workers; ++w) {
    if (in_process) {
      transports.push_back(std::make_unique<InProcessTransport>(*server));
    } else {
#if defined(_WIN32)
      std::fprintf(stderr, "--connect is not supported on this platform\n");
      return 1;
#else
      auto t = SocketTransport::Connect(connect_host, connect_port);
      if (t == nullptr) {
        std::fprintf(stderr, "cannot connect to %s:%u\n",
                     connect_host.c_str(), connect_port);
        return 1;
      }
      transports.push_back(std::move(t));
#endif
    }
  }

  std::map<std::string, uint64_t> keys;
  std::mutex keys_mu;
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      RunWorker(*transports[w], pool, static_cast<int>(w), requests, seed,
                &keys, &keys_mu, &results[w]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  // Latency digest.
  std::vector<double> lat;
  size_t total = 0, mismatches = 0, sheds = 0, errors = 0;
  for (const WorkerResult& r : results) {
    lat.insert(lat.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    total += r.requests;
    mismatches += r.mismatches;
    sheds += r.sheds;
    errors += r.errors;
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&](double p) {
    if (lat.empty()) return 0.0;
    return lat[std::min(lat.size() - 1,
                        static_cast<size_t>(p * (lat.size() - 1)))];
  };
  const double p50 = pct(0.50), p99 = pct(0.99);
  const double qps = wall_s > 0 ? total / wall_s : 0;

  // Contract checks (in-process mode only; a remote server's totals
  // include other clients' traffic).
  bool reconciled = true;
  uint64_t compiles = 0, cache_hits = 0;
  size_t compile_spans = 0;
  if (in_process) {
    const auto server_counters = CounterMap(server->ServerSnapshot());
    std::map<std::string, uint64_t> session_sums;
    size_t span_count = 0;
    for (const std::string& tenant : server->Tenants()) {
      for (const auto& [name, value] :
           CounterMap(server->SessionSnapshot(tenant))) {
        session_sums[name] += value;
      }
      if (trace) {
        const std::string json =
            server->GetSession(tenant).tracer.ExportChromeJson();
        static const std::string kNeedle =
            "\"name\":\"serve.compile\",\"cat\":\"bddfc\",\"ph\":\"B\"";
        for (size_t pos = json.find(kNeedle); pos != std::string::npos;
             pos = json.find(kNeedle, pos + kNeedle.size())) {
          ++span_count;
        }
      }
    }
    if (session_sums != server_counters) {
      reconciled = false;
      std::fprintf(stderr,
                   "RECONCILE FAILED: session counter sums != server "
                   "totals\n");
      for (const auto& [name, value] : server_counters) {
        const uint64_t s = session_sums.count(name) ? session_sums[name] : 0;
        if (s != value) {
          std::fprintf(stderr, "  %s: sessions=%llu server=%llu\n",
                       name.c_str(), static_cast<unsigned long long>(s),
                       static_cast<unsigned long long>(value));
        }
      }
    }
    auto counter = [&](const char* name) {
      auto it = server_counters.find(name);
      return it == server_counters.end() ? uint64_t{0} : it->second;
    };
    compiles = counter("bddfc.serve.compiles");
    cache_hits = counter("bddfc.serve.cache_hits");
    compile_spans = span_count;
    // One compile per distinct theory; every other LOAD was a cache hit.
    if (compiles != keys.size()) {
      std::fprintf(stderr,
                   "CACHE FAILED: %llu compiles for %zu distinct theories\n",
                   static_cast<unsigned long long>(compiles), keys.size());
      reconciled = false;
    }
    if (cache_hits == 0) {
      std::fprintf(stderr, "CACHE FAILED: no cache hits recorded\n");
      reconciled = false;
    }
    if (trace && compile_spans != compiles) {
      std::fprintf(stderr,
                   "TRACE FAILED: %zu serve.compile spans for %llu "
                   "compiles\n",
                   compile_spans, static_cast<unsigned long long>(compiles));
      reconciled = false;
    }
  }

  std::printf(
      "mode=%s tenants=%zu workers=%zu requests=%zu wall_s=%.3f qps=%.0f\n"
      "p50_ms=%.3f p99_ms=%.3f sheds=%zu errors=%zu mismatches=%zu\n",
      in_process ? "inprocess" : "socket", tenants, workers, total, wall_s,
      qps, p50, p99, sheds, errors, mismatches);
  if (in_process) {
    std::printf("compiles=%llu cache_hits=%llu reconciled=%s%s\n",
                static_cast<unsigned long long>(compiles),
                static_cast<unsigned long long>(cache_hits),
                reconciled ? "true" : "false",
                trace ? (" compile_spans=" + std::to_string(compile_spans))
                            .c_str()
                      : "");
  }

  if (json_out != nullptr) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_out);
      return 1;
    }
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"mode\": \"%s\", \"tenants\": %zu, \"workers\": %zu, "
        "\"requests\": %zu, \"qps\": %.0f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"sheds\": %zu, \"mismatches\": %zu, "
        "\"compiles\": %llu, \"cache_hits\": %llu, \"reconciled\": %s}",
        in_process ? "inprocess" : "socket", tenants, workers, total, qps,
        p50, p99, sheds, mismatches,
        static_cast<unsigned long long>(compiles),
        static_cast<unsigned long long>(cache_hits),
        reconciled ? "true" : "false");
    out << "{\n  \"bench\": \"serve\",\n  \"experiment\": \"E18\",\n"
        << "  \"workload\": \"chain-closure tenants=" << tenants
        << " seed=" << seed << "\",\n  \"rows\": [\n"
        << row << "\n  ]\n}\n";
  }

  return (mismatches == 0 && reconciled) ? 0 : 1;
}
