# Empty dependencies file for bench_model_search.
# This may be replaced when dependencies are built.
