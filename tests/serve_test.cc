// Tests for the multi-tenant reasoning server (serve/): artifact cache
// identity and single-flight, copy-on-admit signature stability under
// concurrent queries, per-session metrics/fault isolation and the
// session-sums == server-totals reconciliation invariant, admission
// control, the wire protocol, and the socket daemon's drain.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bddfc/base/faults.h"
#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/parser/parser.h"
#include "bddfc/serve/daemon.h"
#include "bddfc/serve/protocol.h"
#include "bddfc/serve/server.h"

namespace bddfc {
namespace {

using serve::ArtifactCache;
using serve::KeyFromHex;
using serve::KeyToHex;
using serve::ReasoningServer;
using serve::Request;
using serve::Response;
using serve::ServerOptions;

constexpr char kTheoryA[] =
    "e(a, b).\n"
    "e(b, c).\n"
    "e(c, d).\n"
    "e(X, Y), e(Y, Z) -> e(X, Z).\n"
    "e(a, d) -> top(a).\n";

// Same theory, different spelling: reordered facts, noise whitespace and
// comments. Must land on the same artifact key as kTheoryA.
constexpr char kTheoryAVariant[] =
    "% a comment\n"
    "  e(c, d).\n"
    "e(a, b).   e(b, c).\n"
    "e(X, Y), e(Y, Z) -> e(X, Z).\n"
    "e(a, d) -> top(a).\n";

constexpr char kTheoryB[] =
    "p(x, y).\n"
    "p(y, z).\n"
    "p(X, Y), p(Y, Z) -> p(X, Z).\n";

constexpr char kTheoryC[] =
    "q(m, n).\n"
    "q(X, Y) -> q(Y, X).\n";

Request Load(const std::string& tenant, const std::string& theory) {
  Request r;
  r.kind = Request::Kind::kLoad;
  r.tenant = tenant;
  r.payload = theory;
  return r;
}

Request Query(const std::string& tenant, uint64_t key,
              const std::string& body) {
  Request r;
  r.kind = Request::Kind::kQuery;
  r.tenant = tenant;
  r.key = key;
  r.payload = body;
  return r;
}

uint64_t KeyOf(const Response& load_response) {
  EXPECT_TRUE(load_response.ok()) << load_response.status.ToString();
  EXPECT_EQ(load_response.body.rfind("key=", 0), 0u) << load_response.body;
  uint64_t key = 0;
  EXPECT_TRUE(KeyFromHex(load_response.body.substr(4, 16), &key));
  return key;
}

uint64_t Counter(ReasoningServer& server, const char* name) {
  for (const auto& p : server.ServerSnapshot().counters) {
    if (p.name == name) return p.value;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Artifact cache identity, hits, eviction.
// ---------------------------------------------------------------------------

TEST(ServeCacheTest, EquivalentSpellingsHitOneArtifact) {
  ServerOptions options;
  options.tracing = true;
  ReasoningServer server(options);

  const uint64_t key1 = KeyOf(server.Handle(Load("t1", kTheoryA)));
  const uint64_t key2 = KeyOf(server.Handle(Load("t1", kTheoryAVariant)));
  EXPECT_EQ(key1, key2);
  EXPECT_EQ(server.cache().size(), 1u);

  EXPECT_EQ(Counter(server, "bddfc.serve.compiles"), 1u);
  EXPECT_EQ(Counter(server, "bddfc.serve.cache_misses"), 1u);
  EXPECT_EQ(Counter(server, "bddfc.serve.cache_hits"), 1u);

  // The trace ring proves the hit skipped recompilation: exactly one
  // serve.compile span for two LOADs.
  const std::string trace = server.GetSession("t1").tracer.ExportChromeJson();
  const std::string needle =
      "\"name\":\"serve.compile\",\"cat\":\"bddfc\",\"ph\":\"B\"";
  size_t count = 0;
  for (size_t pos = trace.find(needle); pos != std::string::npos;
       pos = trace.find(needle, pos + needle.size())) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(ServeCacheTest, QueryAnswersMatchOneShotRun) {
  ReasoningServer server{ServerOptions{}};
  const uint64_t key = KeyOf(server.Handle(Load("t1", kTheoryA)));

  // Independent one-shot baseline over the same program text.
  auto program = ParseProgram(kTheoryA);
  ASSERT_TRUE(program.ok());
  const ChaseResult chase =
      RunChase(program.value().theory, program.value().instance, {});
  ASSERT_TRUE(chase.fixpoint_reached);

  const std::vector<std::string> bodies = {"e(a, d)", "top(a)", "e(d, a)",
                                           "top(b)", "e(a, X), e(X, d)"};
  for (const std::string& body : bodies) {
    auto q = ParseQuery(body, program.value().instance.signature_ptr().get());
    ASSERT_TRUE(q.ok()) << body;
    const std::string want =
        Satisfies(chase.structure, q.value()) ? "true" : "false";
    // Ask twice: the second ask runs against a signature the first ask
    // already marked and rolled back.
    for (int round = 0; round < 2; ++round) {
      const Response r = server.Handle(Query("t1", key, body));
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      EXPECT_EQ(r.body, want) << body << " ask " << round;
    }
  }
}

TEST(ServeCacheTest, UnknownArtifactIsNotFound) {
  ReasoningServer server{ServerOptions{}};
  const Response r = server.Handle(Query("t1", 0xdeadbeef, "e(a, b)"));
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(Counter(server, "bddfc.serve.unknown_artifact"), 1u);
}

TEST(ServeCacheTest, NonSaturatingTheoryIsRejected) {
  ServerOptions options;
  options.compile.max_rounds = 3;
  ReasoningServer server(options);
  // Divergent existential chain: never saturates within 3 rounds.
  const Response r = server.Handle(
      Load("t1", "e(a, b).\ne(X, Y) -> exists Z: e(Y, Z).\n"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.cache().size(), 0u);
  EXPECT_EQ(Counter(server, "bddfc.serve.load_failures"), 1u);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  ServerOptions options;
  options.cache_capacity = 2;
  ReasoningServer server(options);

  const uint64_t key_a = KeyOf(server.Handle(Load("t1", kTheoryA)));
  const uint64_t key_b = KeyOf(server.Handle(Load("t1", kTheoryB)));
  const uint64_t key_c = KeyOf(server.Handle(Load("t1", kTheoryC)));
  EXPECT_NE(key_a, key_b);
  EXPECT_NE(key_b, key_c);
  EXPECT_EQ(server.cache().size(), 2u);
  EXPECT_EQ(Counter(server, "bddfc.serve.evictions"), 1u);

  // A was least recently used; its bytes were released with it.
  EXPECT_EQ(server.cache().Find(key_a), nullptr);
  EXPECT_NE(server.cache().Find(key_b), nullptr);
  const Response r = server.Handle(Query("t1", key_a, "e(a, d)"));
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
}

TEST(ServeCacheTest, ConcurrentLoadsSingleFlight) {
  ReasoningServer server{ServerOptions{}};
  constexpr int kThreads = 8;
  std::vector<uint64_t> keys(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      keys[t] = KeyOf(
          server.Handle(Load("t" + std::to_string(t % 2), kTheoryA)));
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(keys[t], keys[0]);
  // Exactly one chase ran no matter how the eight LOADs interleaved.
  EXPECT_EQ(Counter(server, "bddfc.serve.compiles"), 1u);
  EXPECT_EQ(server.cache().size(), 1u);
}

// ---------------------------------------------------------------------------
// Copy-on-admit: the artifact-owned signature stays byte-stable under
// concurrent queries that intern and roll back fresh names.
// ---------------------------------------------------------------------------

TEST(ServeSignatureTest, ConcurrentQueriesKeepArtifactSignatureStable) {
  ReasoningServer server{ServerOptions{}};
  const uint64_t key = KeyOf(server.Handle(Load("t1", kTheoryA)));
  auto artifact = server.cache().Find(key);
  ASSERT_NE(artifact, nullptr);
  const Signature& sig = *artifact->program.instance.signature_ptr();
  const int preds_before = sig.num_predicates();
  const int consts_before = sig.num_constants();

  constexpr int kThreads = 8;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        // Every query interns thread-unique fresh names (a predicate and
        // a constant) past the artifact's admit mark; the per-query
        // rollback must retire them for every interleaving.
        const std::string fresh = "zz" + std::to_string(t) + "_" +
                                  std::to_string(i);
        const Response neg = server.Handle(
            Query("t1", key, "e(a, " + fresh + "), " + fresh + "(a)"));
        const Response pos = server.Handle(Query("t1", key, "e(a, d)"));
        if (!neg.ok() || neg.body != "false") wrong.fetch_add(1);
        if (!pos.ok() || pos.body != "true") wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong.load(), 0);
  // The rollback regression: a leaked query name would grow the tables.
  EXPECT_EQ(sig.num_predicates(), preds_before);
  EXPECT_EQ(sig.num_constants(), consts_before);
}

TEST(ServeSignatureTest, RewriteIsMemoizedPerArtifact) {
  ServerOptions options;
  options.rewrite.max_depth = 4;
  options.rewrite.max_queries = 200;
  ReasoningServer server(options);
  const uint64_t key = KeyOf(server.Handle(Load("t1", kTheoryA)));

  Request r;
  r.kind = Request::Kind::kRewrite;
  r.tenant = "t1";
  r.key = key;
  r.payload = "top(X)";
  const Response first = server.Handle(r);
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_EQ(first.body.rfind("disjuncts=", 0), 0u) << first.body;
  const Response second = server.Handle(r);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(Counter(server, "bddfc.serve.rewrites"), 2u);
}

// ---------------------------------------------------------------------------
// Session isolation and reconciliation.
// ---------------------------------------------------------------------------

TEST(ServeSessionTest, SessionSumsEqualServerTotalsUnderConcurrency) {
  // The process-global registry must stay untouched: serving threads all
  // publish through their request-scoped registries.
  const size_t global_before =
      obs::MetricsRegistry::Global().Snapshot().counters.size();

  ReasoningServer server{ServerOptions{}};
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = "tenant" + std::to_string(t % 3);
      const char* theory = t % 2 == 0 ? kTheoryA : kTheoryB;
      const uint64_t key = KeyOf(server.Handle(Load(tenant, theory)));
      for (int i = 0; i < 20; ++i) {
        server.Handle(Query(tenant, key,
                            t % 2 == 0 ? "e(a, d)" : "p(x, z)"));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::map<std::string, uint64_t> sums;
  for (const std::string& tenant : server.Tenants()) {
    for (const auto& p : server.SessionSnapshot(tenant).counters) {
      sums[p.name] += p.value;
    }
  }
  std::map<std::string, uint64_t> totals;
  for (const auto& p : server.ServerSnapshot().counters) {
    totals[p.name] = p.value;
  }
  EXPECT_EQ(sums, totals);
  EXPECT_EQ(totals["bddfc.serve.requests"], kThreads * 21u);

  EXPECT_EQ(obs::MetricsRegistry::Global().Snapshot().counters.size(),
            global_before);
}

TEST(ServeSessionTest, ConcurrentAnswersAreByteIdenticalToSerial) {
  // The same request list, served concurrently and serially on fresh
  // servers, must produce identical response bodies.
  std::vector<Request> requests;
  for (int i = 0; i < 40; ++i) {
    requests.push_back(Query("t" + std::to_string(i % 3), 0,
                             i % 2 == 0 ? "e(a, d)" : "e(d, a)"));
  }

  auto run = [&](bool concurrent) {
    ReasoningServer server{ServerOptions{}};
    const uint64_t key = KeyOf(server.Handle(Load("t0", kTheoryA)));
    std::vector<std::string> bodies(requests.size());
    auto serve_one = [&](size_t i) {
      Request r = requests[i];
      r.key = key;
      bodies[i] = server.Handle(r).body;
    };
    if (concurrent) {
      std::vector<std::thread> threads;
      for (size_t i = 0; i < requests.size(); ++i) {
        threads.emplace_back(serve_one, i);
      }
      for (std::thread& t : threads) t.join();
    } else {
      for (size_t i = 0; i < requests.size(); ++i) serve_one(i);
    }
    return bodies;
  };

  EXPECT_EQ(run(/*concurrent=*/true), run(/*concurrent=*/false));
}

TEST(ServeSessionTest, ParserFaultPlansAreSessionScoped) {
  ReasoningServer server{ServerOptions{}};
  // Arm a parser fault in tenant A's session only.
  FaultSpec spec;
  spec.site = faults::kParserParse;
  spec.schedule = FaultSchedule::kAfterN;
  spec.n = 0;
  server.GetSession("a").faults.Arm(spec);

  const Response in_a = server.Handle(Load("a", kTheoryA));
  EXPECT_FALSE(in_a.ok());
  EXPECT_EQ(in_a.status.code(), StatusCode::kInternal);
  EXPECT_GE(server.GetSession("a").faults.FireCount(faults::kParserParse),
            1u);

  // The same LOAD from tenant B parses fine: A's chaos never leaks.
  const Response in_b = server.Handle(Load("b", kTheoryA));
  EXPECT_TRUE(in_b.ok()) << in_b.status.ToString();
  EXPECT_EQ(server.GetSession("b").faults.FireCount(faults::kParserParse),
            0u);
  // And the process-global registry saw none of it.
  EXPECT_EQ(FaultRegistry::Global().FireCount(faults::kParserParse), 0u);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(ServeAdmissionTest, ShedsWhenServerBudgetIsExhausted) {
  ServerOptions options;
  options.memory_limit_bytes = 1 << 20;
  ReasoningServer server(options);
  const uint64_t key = KeyOf(server.Handle(Load("t1", kTheoryA)));

  // Push the server accountant over budget the way a full cache would.
  server.memory().Charge(2 << 20);
  const Response shed = server.Handle(Query("t1", key, "e(a, d)"));
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Counter(server, "bddfc.serve.shed"), 1u);
  // Counted identically on the session, preserving reconciliation.
  uint64_t session_shed = 0;
  for (const auto& p : server.SessionSnapshot("t1").counters) {
    if (p.name == "bddfc.serve.shed") session_shed = p.value;
  }
  EXPECT_EQ(session_shed, 1u);

  // Health and metrics still answer while shedding.
  Request health;
  health.kind = Request::Kind::kHealth;
  EXPECT_TRUE(server.Handle(health).ok());

  server.memory().Release(2 << 20);
  const Response after = server.Handle(Query("t1", key, "e(a, d)"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.body, "true");
}

TEST(ServeAdmissionTest, RequestDeadlineTripsTheCompile) {
  ServerOptions options;
  options.request_deadline_ms = 1e-6;
  ReasoningServer server(options);
  const Response r = server.Handle(Load("t1", kTheoryA));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------------

TEST(ServeProtocolTest, ServesFramedRequestStream) {
  ReasoningServer server{ServerOptions{}};
  const std::string theory = kTheoryA;
  std::string input = "HEALTH\n";
  input += "LOAD t1 " + std::to_string(theory.size()) + "\n" + theory;
  std::string output;
  EXPECT_EQ(serve::ServeBuffer(server, input, &output), 2u);
  EXPECT_EQ(output.rfind("OK 2\nok", 0), 0u) << output;
  EXPECT_NE(output.find("key="), std::string::npos);

  // Reuse the reported key for a framed QUERY, then QUIT ends the stream.
  const size_t key_pos = output.find("key=") + 4;
  const std::string hex = output.substr(key_pos, 16);
  std::string input2 = "QUERY t1 " + hex + " 7\ne(a, d)\nQUIT\nHEALTH\n";
  std::string output2;
  EXPECT_EQ(serve::ServeBuffer(server, input2, &output2), 1u);
  EXPECT_EQ(output2, "OK 4\ntrue");

  // Malformed lines answer ERR without killing the stream.
  std::string output3;
  EXPECT_EQ(serve::ServeBuffer(server, "NONSENSE x\nHEALTH\n", &output3), 2u);
  EXPECT_EQ(output3.rfind("ERR InvalidArgument", 0), 0u) << output3;
  EXPECT_NE(output3.find("OK 2\nok"), std::string::npos);
}

TEST(ServeProtocolTest, MetricsAndHttpFallback) {
  ReasoningServer server{ServerOptions{}};
  KeyOf(server.Handle(Load("t1", kTheoryA)));

  std::string output;
  serve::ServeBuffer(server, "METRICS t1\nMETRICS\n", &output);
  EXPECT_NE(output.find("bddfc.serve.requests 1"), std::string::npos);

  EXPECT_TRUE(serve::LooksLikeHttp("GET /metrics HTTP/1.1\r\n"));
  EXPECT_FALSE(serve::LooksLikeHttp("LOAD t1 10\n"));
  const std::string health = serve::HandleHttp(server, "GET /healthz HTTP/1.0");
  EXPECT_EQ(health.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(health.find("\r\n\r\nok"), std::string::npos);
  const std::string metrics =
      serve::HandleHttp(server, "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("bddfc.serve.requests"), std::string::npos);
  const std::string missing = serve::HandleHttp(server, "GET /nope HTTP/1.0");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u);
}

// ---------------------------------------------------------------------------
// Socket daemon: bind, serve, drain.
// ---------------------------------------------------------------------------

TEST(ServeDaemonTest, SocketRoundTripAndGracefulDrain) {
  ReasoningServer server{ServerOptions{}};
  std::atomic<bool> stop{false};
  std::atomic<uint16_t> port{0};
  serve::DaemonOptions daemon;
  daemon.port = 0;
  daemon.bound_port = &port;
  std::thread loop([&] {
    const Status st = serve::Serve(server, daemon, stop);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  while (port.load(std::memory_order_acquire) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port.load());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string theory = kTheoryA;
  const std::string wire = "HEALTH\nLOAD t1 " +
                           std::to_string(theory.size()) + "\n" + theory +
                           "QUIT\n";
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::string got;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    got.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(got.rfind("OK 2\nok", 0), 0u) << got;
  EXPECT_NE(got.find("key="), std::string::npos);

  stop.store(true);
  loop.join();
  // The drained LOAD folded into the server totals before Serve returned
  // (HEALTH bypasses admission and is not an accounted request).
  EXPECT_EQ(Counter(server, "bddfc.serve.requests"), 1u);
}

}  // namespace
}  // namespace bddfc
