// The daemon's socket front-end: a loopback TCP accept loop over the
// transport-independent ReasoningServer.
//
// Design: poll()-based accept with a stop flag checked between polls, one
// detached-joinable thread per connection (connections are short: the
// loadgen and the CI smoke script open, pump a request batch, QUIT). On
// stop the listener closes first — no new connections — then every live
// connection thread is joined: a graceful drain, in-flight requests
// finish and their metrics fold before Serve() returns.

#ifndef BDDFC_SERVE_DAEMON_H_
#define BDDFC_SERVE_DAEMON_H_

#include <atomic>
#include <cstdint>

#include "bddfc/base/status.h"
#include "bddfc/serve/server.h"

namespace bddfc::serve {

struct DaemonOptions {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (reported via *bound_port).
  uint16_t port = 0;
  /// Written with the actual listening port once bound (before accepting).
  /// Optional; lets tests and the CLI use port 0 race-free.
  std::atomic<uint16_t>* bound_port = nullptr;
};

/// Binds 127.0.0.1:<port>, accepts connections, and serves each with the
/// line protocol (protocol.h) — or one HTTP GET response for connections
/// that open with "GET ". Returns after `stop` becomes true and every
/// connection has drained. Runs on the calling thread.
Status Serve(ReasoningServer& server, const DaemonOptions& options,
             std::atomic<bool>& stop);

}  // namespace bddfc::serve

#endif  // BDDFC_SERVE_DAEMON_H_
