// Terms: 32-bit tagged ids for constants and variables.
//
// Constants (named constants of the signature Σ and labeled nulls invented by
// the chase) are non-negative ids into a Signature's constant table.
// Variables are negative: variable k is encoded as -1 - k.

#ifndef BDDFC_CORE_TERM_H_
#define BDDFC_CORE_TERM_H_

#include <cstdint>

namespace bddfc {

/// A term id. >= 0: constant id; < 0: variable (index DecodeVar(t)).
using TermId = int32_t;

/// A predicate id (index into a Signature's predicate table).
using PredId = int32_t;

/// Encodes variable index `k` (k >= 0) as a TermId.
constexpr TermId MakeVar(int32_t k) { return -1 - k; }

/// True iff `t` encodes a variable.
constexpr bool IsVar(TermId t) { return t < 0; }

/// True iff `t` encodes a constant (named constant or labeled null).
constexpr bool IsConst(TermId t) { return t >= 0; }

/// Decodes the variable index from a variable TermId.
constexpr int32_t DecodeVar(TermId t) { return -1 - t; }

}  // namespace bddfc

#endif  // BDDFC_CORE_TERM_H_
