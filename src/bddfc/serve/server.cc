#include "bddfc/serve/server.h"

#include <chrono>

#include "bddfc/base/run_context.h"

namespace bddfc::serve {

ReasoningServer::ReasoningServer(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_capacity, &root_ctx_.memory()) {
  root_ctx_.SetMemoryLimitBytes(options_.memory_limit_bytes);
  metrics_.set_enabled(true);
}

Session& ReasoningServer::GetSession(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(tenant);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(tenant, std::make_unique<Session>(
                                  tenant, options_.tracing,
                                  options_.trace_capacity))
             .first;
  }
  return *it->second;
}

obs::MetricsSnapshot ReasoningServer::SessionSnapshot(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(tenant);
  return it == sessions_.end() ? obs::MetricsSnapshot{}
                               : it->second->metrics.Snapshot();
}

std::vector<std::string> ReasoningServer::Tenants() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<std::string> out;
  for (const auto& [name, s] : sessions_) out.push_back(name);
  return out;
}

Response ReasoningServer::Handle(const Request& request) {
  // Introspection requests bypass admission: they must answer even (and
  // especially) when the server is saturated.
  if (request.kind == Request::Kind::kHealth) {
    return Response{Status::OK(), "ok"};
  }
  if (request.kind == Request::Kind::kMetrics) {
    return Response{Status::OK(),
                    request.tenant.empty()
                        ? MetricsText()
                        : SessionSnapshot(request.tenant).ToText()};
  }

  Session& session = GetSession(request.tenant);

  // Admission control: shed on the concurrency cap or an over-budget
  // server accountant, counting the shed identically on the session and
  // the server so the reconciliation invariant covers sheds too.
  const size_t active = active_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const bool over_concurrency =
      options_.max_concurrent != 0 && active > options_.max_concurrent;
  const bool over_memory = root_ctx_.memory().OverBudget();
  if (over_concurrency || over_memory) {
    active_.fetch_sub(1, std::memory_order_acq_rel);
    session.metrics.GetCounter("bddfc.serve.shed")->Add(1);
    metrics_.GetCounter("bddfc.serve.shed")->Add(1);
    return Response{
        Status::ResourceExhausted(over_concurrency
                                      ? "server overloaded (concurrency cap)"
                                      : "server overloaded (memory budget)"),
        "shed"};
  }
  session.requests.fetch_add(1, std::memory_order_relaxed);

  // The request's execution contract: a child of the server root (bytes
  // carve out of the server budget; a latched trip stays on the child),
  // a request deadline, and a RunContext pointing engines at the
  // request-scoped registry, the session ring and the session's faults.
  obs::MetricsRegistry req_metrics;
  req_metrics.set_enabled(true);
  std::unique_ptr<ExecutionContext> ctx =
      root_ctx_.CreateChild(options_.request_memory_limit_bytes);
  double deadline = options_.request_deadline_ms;
  if (request.deadline_ms > 0 &&
      (deadline == 0 || request.deadline_ms < deadline)) {
    deadline = request.deadline_ms;
  }
  if (deadline > 0) ctx->SetDeadlineAfterMs(deadline);
  RunContext rc;
  rc.metrics = &req_metrics;
  rc.tracer = &session.tracer;
  rc.faults = &session.faults;
  ctx->SetRunContext(&rc);

  const auto start = std::chrono::steady_clock::now();
  Response response = Dispatch(request, session, ctx.get(), req_metrics);

  req_metrics.GetCounter("bddfc.serve.requests")->Add(1);
  if (!response.ok()) {
    req_metrics.GetCounter("bddfc.serve.errors")->Add(1);
  }
  req_metrics.GetHistogram("bddfc.serve.request_ms")
      ->Record(static_cast<uint64_t>(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count()));

  // Double-fold: the request registry flows into the session's cumulative
  // registry and the server totals. Per-session sums therefore equal the
  // server's for every counter name, by construction.
  const obs::MetricsSnapshot snap = req_metrics.Snapshot();
  session.metrics.MergeFrom(snap);
  metrics_.MergeFrom(snap);

  active_.fetch_sub(1, std::memory_order_acq_rel);
  return response;
}

Response ReasoningServer::Dispatch(const Request& request, Session& session,
                                   ExecutionContext* ctx,
                                   obs::MetricsRegistry& req_metrics) {
  (void)session;
  switch (request.kind) {
    case Request::Kind::kLoad: {
      ArtifactCache::Outcome got =
          cache_.GetOrCompile(request.payload, ctx, req_metrics,
                              options_.compile);
      req_metrics.GetCounter("bddfc.serve.loads")->Add(1);
      if (!got.status.ok()) {
        req_metrics.GetCounter("bddfc.serve.load_failures")->Add(1);
        return Response{got.status, got.status.message()};
      }
      req_metrics
          .GetCounter(got.hit ? "bddfc.serve.cache_hits"
                              : "bddfc.serve.cache_misses")
          ->Add(1);
      if (got.compiled) {
        req_metrics.GetCounter("bddfc.serve.compiles")->Add(1);
      }
      if (got.evicted != 0) {
        req_metrics.GetCounter("bddfc.serve.evictions")->Add(got.evicted);
      }
      return Response{
          Status::OK(),
          "key=" + KeyToHex(got.artifact->key) +
              " facts=" + std::to_string(got.artifact->chase.structure
                                             .NumFacts()) +
              " rounds=" + std::to_string(got.artifact->rounds) +
              (got.hit ? " cached=hit" : " cached=miss")};
    }
    case Request::Kind::kQuery: {
      std::shared_ptr<Artifact> artifact = cache_.Find(request.key);
      if (artifact == nullptr) {
        req_metrics.GetCounter("bddfc.serve.unknown_artifact")->Add(1);
        return Response{Status::NotFound("unknown artifact " +
                                         KeyToHex(request.key)),
                        "unknown artifact"};
      }
      req_metrics.GetCounter("bddfc.serve.queries")->Add(1);
      obs::TraceSpan span(&ctx->tracer(), "serve.query");
      Result<bool> answer = artifact->EvalBoolean(request.payload);
      if (!answer.ok()) {
        return Response{answer.status(), answer.status().message()};
      }
      return Response{Status::OK(), answer.value() ? "true" : "false"};
    }
    case Request::Kind::kRewrite: {
      std::shared_ptr<Artifact> artifact = cache_.Find(request.key);
      if (artifact == nullptr) {
        req_metrics.GetCounter("bddfc.serve.unknown_artifact")->Add(1);
        return Response{Status::NotFound("unknown artifact " +
                                         KeyToHex(request.key)),
                        "unknown artifact"};
      }
      req_metrics.GetCounter("bddfc.serve.rewrites")->Add(1);
      obs::TraceSpan span(&ctx->tracer(), "serve.rewrite");
      RewriteOptions opts = options_.rewrite;
      opts.context = ctx;
      Result<std::string> body = artifact->RewriteFor(request.payload, opts);
      if (!body.ok()) {
        return Response{body.status(), body.status().message()};
      }
      return Response{Status::OK(), body.value()};
    }
    case Request::Kind::kMetrics:
    case Request::Kind::kHealth:
      break;  // handled before admission
  }
  return Response{Status::InvalidArgument("unhandled request kind"),
                  "bad request"};
}

}  // namespace bddfc::serve
