// Query-to-query homomorphisms, CQ/UCQ containment and cores, plus the
// signature pre-filter and subsumption index used by the UCQ rewriter.

#ifndef BDDFC_EVAL_CONTAINMENT_H_
#define BDDFC_EVAL_CONTAINMENT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "bddfc/core/query.h"

namespace bddfc {

/// A homomorphism between queries: variable of `from` → term of `to`.
using QueryHom = std::unordered_map<TermId, TermId>;

/// Enumerates homomorphisms h from `from` into `to`: h maps each atom of
/// `from` onto some atom of `to`, fixes constants, and maps the i-th answer
/// variable of `from` to the i-th answer variable of `to`. Queries with
/// answer interfaces of different lengths are non-comparable: no
/// homomorphism exists between them (a Boolean query is never hom-related
/// to a non-Boolean one). The callback returns false to stop.
void EnumerateQueryHoms(const ConjunctiveQuery& from,
                        const ConjunctiveQuery& to,
                        const std::function<bool(const QueryHom&)>& on_hom);

/// True iff some homomorphism from `from` to `to` exists.
bool HasQueryHom(const ConjunctiveQuery& from, const ConjunctiveQuery& to);

/// Chandra–Merlin: q1 ⊆ q2 (every database satisfying q1 satisfies q2)
/// iff there is a homomorphism from q2 into q1.
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Homomorphic equivalence of CQs.
bool AreHomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// The core of a CQ: a minimal homomorphically-equivalent subquery.
/// Answer variables are preserved. Deterministic for a fixed input.
ConjunctiveQuery CoreOf(const ConjunctiveQuery& q);

/// UCQ ⊆ UCQ: every disjunct of `a` is contained in some disjunct of `b`.
bool UcqContainedIn(const UnionOfCQs& a, const UnionOfCQs& b);

/// Cheap necessary-condition summary of a CQ for homomorphism existence:
/// sorted predicate multiset, a bloom mask over predicates and constants,
/// and the answer-interface length. Computing it is O(|q| log |q|); the
/// filter check HomPossible is O(preds) with an O(1) mask fast path.
struct CqFilterSignature {
  /// (predicate, occurrence count), sorted by predicate.
  std::vector<std::pair<PredId, uint32_t>> pred_counts;
  uint64_t pred_mask = 0;   ///< bloom over predicate ids
  uint64_t const_mask = 0;  ///< bloom over constants
  size_t num_atoms = 0;
  size_t num_answer_vars = 0;
};

CqFilterSignature MakeFilterSignature(const ConjunctiveQuery& q);

/// Necessary condition for HasQueryHom(from, to): matching answer-interface
/// lengths, every predicate of `from` present in `to`, every constant of
/// `from` present in `to` (constants are fixed by homs). Returns false only
/// when no homomorphism can exist.
bool HomPossible(const CqFilterSignature& from, const CqFilterSignature& to);

/// Counters for pre-filtered containment probing.
struct SubsumptionStats {
  size_t hom_checks = 0;         ///< full HasQueryHom searches performed
  size_t prefilter_skipped = 0;  ///< candidate pairs rejected by HomPossible

  SubsumptionStats& operator+=(const SubsumptionStats& o) {
    hom_checks += o.hom_checks;
    prefilter_skipped += o.prefilter_skipped;
    return *this;
  }
};

/// A growing set of kept disjuncts supporting pre-filtered containment
/// probes — the index behind the rewriter's online subsumption pruning and
/// MinimizeUcq. Entries are addressed by insertion index; Retire marks an
/// entry dead without invalidating other indexes.
class UcqSubsumptionIndex {
 public:
  /// True iff q ⊆ d for some live entry d (a hom from d into q exists).
  /// Pairs failing the signature pre-filter skip the hom search.
  bool Subsumes(const ConjunctiveQuery& q, SubsumptionStats* stats) const;

  /// Indexes of live entries d with d ⊆ q — entries a newly kept disjunct
  /// makes redundant. Pre-filtered like Subsumes.
  std::vector<size_t> SubsumedBy(const ConjunctiveQuery& q,
                                 SubsumptionStats* stats) const;

  /// Keeps q; returns its index.
  size_t Add(ConjunctiveQuery q);

  /// Marks entry `index` dead (it no longer participates in probes).
  void Retire(size_t index) { entries_[index].dead = true; }

  size_t size() const { return entries_.size(); }
  bool dead(size_t index) const { return entries_[index].dead; }
  const ConjunctiveQuery& at(size_t index) const { return entries_[index].q; }

 private:
  struct Entry {
    ConjunctiveQuery q;
    CqFilterSignature sig;
    bool dead = false;
  };
  std::vector<Entry> entries_;
};

/// Removes disjuncts subsumed by others (q_i dropped when q_i ⊆ q_j, i≠j),
/// keeping the earliest representative of each equivalence class.
/// Disjuncts are cored, grouped by canonical key (identical normal forms
/// collapse without any hom search), then swept through a pre-filtered
/// subsumption index instead of a blind pairwise loop. `stats`, when
/// non-null, accumulates the probe counters.
UnionOfCQs MinimizeUcq(const UnionOfCQs& ucq,
                       SubsumptionStats* stats = nullptr);

}  // namespace bddfc

#endif  // BDDFC_EVAL_CONTAINMENT_H_
