file(REMOVE_RECURSE
  "CMakeFiles/bddfc_finitemodel.dir/finitemodel/model_search.cc.o"
  "CMakeFiles/bddfc_finitemodel.dir/finitemodel/model_search.cc.o.d"
  "CMakeFiles/bddfc_finitemodel.dir/finitemodel/pipeline.cc.o"
  "CMakeFiles/bddfc_finitemodel.dir/finitemodel/pipeline.cc.o.d"
  "libbddfc_finitemodel.a"
  "libbddfc_finitemodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_finitemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
