// Tests for the §5.6 guarded → binary transformation.

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/guarded/binarize.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(GuardedTest, OutputIsBinary) {
  Program p = GuardedSample();
  auto bin = GuardedToBinary(p.theory);
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  const Theory& t = bin.value().theory;
  for (const Rule& r : t.rules()) {
    for (const Atom& a : r.body) EXPECT_LE(t.sig().arity(a.pred), 2);
    for (const Atom& a : r.head) EXPECT_LE(t.sig().arity(a.pred), 2);
  }
}

TEST(GuardedTest, WitnessEdgesAndMarkersPerTgp) {
  Program p = GuardedSample();
  auto bin = GuardedToBinary(p.theory);
  ASSERT_TRUE(bin.ok());
  // One TGD (head q) => one witness edge and one marker.
  EXPECT_EQ(bin.value().witness_edge.size(), 1u);
  EXPECT_EQ(bin.value().tgp_marker.size(), 1u);
  // Parent links F_1..F_K with K = max arity (3).
  EXPECT_EQ(bin.value().parent_links.size(), 4u);  // [0] unused
}

TEST(GuardedTest, TgdHeadsAreLedByOneVariable) {
  Program p = GuardedSample();
  auto bin = GuardedToBinary(p.theory);
  ASSERT_TRUE(bin.ok());
  for (const Rule& r : bin.value().theory.rules()) {
    if (r.IsExistential()) {
      EXPECT_EQ(r.ExistentialVariables().size(), 1u);
      EXPECT_EQ(r.head[0].args.size(), 2u);
      // The witness is the second argument.
      EXPECT_EQ(r.head[0].args[1], r.ExistentialVariables()[0]);
    }
  }
}

TEST(GuardedTest, RejectsUnguardedTheory) {
  Program p = Example7();  // co-child rule is unguarded
  auto bin = GuardedToBinary(p.theory);
  EXPECT_EQ(bin.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GuardedTest, RejectsTgpInTwoHeads) {
  Program p = MustParse(R"(
    p(X, Y) -> exists Z: q(X, Z).
    p(Y, X) -> exists Z: q(Y, Z).
  )");
  auto bin = GuardedToBinary(p.theory);
  EXPECT_EQ(bin.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GuardedTest, ChaseOfBinaryProgramPropagatesMonadicKnowledge) {
  // p(X, Y, Z) -> ∃W q(X, Z, W); q(X, Z, W) -> s(Z); q(X, Z, W), s(Z) ->
  // t(X, W). Seed the binary program with the encoding of p(a, b, c) and
  // check the monadic markers/facts appear in the chase.
  Program p = GuardedSample();
  auto bin = GuardedToBinary(p.theory);
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  const Theory& t = bin.value().theory;
  SignaturePtr sig = t.signature_ptr();

  // Encode p(a, b, c): in the binarized world this is the monadic fact
  // q_p_<i1,i2,0>(c) plus parent links F_i1(a, c), F_i2(b, c).
  Structure d(sig);
  TermId a = sig->AddConstant("a");
  TermId b = sig->AddConstant("b");
  TermId c = sig->AddConstant("c");
  auto key = std::make_pair(
      std::move(sig->FindPredicate("p")).ValueOrDie(),
      std::vector<int>{1, 2, 0});
  auto it = bin.value().monadic.find(key);
  ASSERT_NE(it, bin.value().monadic.end())
      << "expected monadic encoding q_p_{1,2,0} to exist";
  d.AddFact(it->second, {c});
  d.AddFact(bin.value().parent_links[1], {a, c});
  d.AddFact(bin.value().parent_links[2], {b, c});

  ChaseOptions opts;
  opts.max_rounds = 12;
  ChaseResult chase = RunChase(t, d, opts);
  ASSERT_TRUE(chase.status.ok()) << chase.status.ToString();
  // The TGD fired: a witness-edge atom and a q-marker exist.
  PredId q = std::move(sig->FindPredicate("q")).ValueOrDie();
  PredId marker = bin.value().tgp_marker.at(q);
  EXPECT_GE(chase.structure.Rows(marker).size(), 1u);
  // The datalog rule q(X, Z, W) -> s(Z) propagated: some monadic s-fact.
  bool some_s = false;
  for (const auto& [mkey, mpred] : bin.value().monadic) {
    if (t.sig().PredicateName(mkey.first) == "s" &&
        !chase.structure.Rows(mpred).empty()) {
      some_s = true;
    }
  }
  EXPECT_TRUE(some_s);
}

TEST(GuardedTest, GeneratedGuardedTheoriesTransform) {
  // Random guarded theories (without constants) must transform and stay
  // binary; rule counts grow by the documented factors.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto sig = std::make_shared<Signature>();
    Theory t = RandomGuardedTheory(sig, 3, 4, seed);
    // Deduplicate TGP heads (the transformation wants step iv): skip seeds
    // violating it.
    auto bin = GuardedToBinary(t);
    if (!bin.ok()) {
      EXPECT_EQ(bin.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    EXPECT_TRUE(bin.value().theory.sig().IsBinary() ||
                !bin.value().theory.rules().empty());
    for (const Rule& r : bin.value().theory.rules()) {
      for (const Atom& a : r.body) {
        EXPECT_LE(bin.value().theory.sig().arity(a.pred), 2);
      }
    }
  }
}

}  // namespace
}  // namespace bddfc
