#include "bddfc/serve/artifact_cache.h"

#include <algorithm>
#include <chrono>

#include "bddfc/eval/match.h"
#include "bddfc/obs/trace.h"
#include "bddfc/parser/printer.h"

namespace bddfc::serve {

uint64_t CanonicalHash(std::string_view canonical_text) {
  // FNV-1a, 64-bit: not cryptographic, but stable, fast, and collisions
  // across a cache of tens of theories are astronomically unlikely.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : canonical_text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string KeyToHex(uint64_t key) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[key & 0xf];
    key >>= 4;
  }
  return out;
}

bool KeyFromHex(std::string_view hex, uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  uint64_t v = 0;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

Result<bool> Artifact::EvalBoolean(const std::string& query_text) {
  std::lock_guard<std::mutex> lock(mu);
  Signature& sig = *program.instance.signature_ptr();
  const Signature::Mark mark = sig.TakeMark();
  Result<ConjunctiveQuery> q = ParseQuery(query_text, &sig);
  if (!q.ok()) {
    sig.RollbackTo(mark);
    return q.status();
  }
  // Predicates/constants the query introduced are interned past the mark;
  // the chase structure simply has no rows for them, so evaluation is
  // safe, and the rollback below forgets them — the artifact signature is
  // byte-identical to its admitted state regardless of query order.
  const bool sat = Satisfies(chase.structure, q.value());
  sig.RollbackTo(mark);
  return sat;
}

Result<std::string> Artifact::RewriteFor(const std::string& query_text,
                                         const RewriteOptions& opts) {
  std::lock_guard<std::mutex> lock(mu);
  Signature& sig = *program.instance.signature_ptr();
  const Signature::Mark mark = sig.TakeMark();
  Result<ConjunctiveQuery> q = ParseQuery(query_text, &sig);
  if (!q.ok()) {
    sig.RollbackTo(mark);
    return q.status();
  }
  const std::string memo_key = q.value().CanonicalKey();
  if (auto it = rewrite_memo_.find(memo_key); it != rewrite_memo_.end()) {
    sig.RollbackTo(mark);
    return it->second;
  }
  RewriteResult rr = RewriteQuery(program.theory, q.value(), opts);
  if (!rr.status.ok() && rr.status.code() != StatusCode::kUnknown) {
    sig.RollbackTo(mark);
    return rr.status;
  }
  // Render before the rollback: printing reads names interned past the
  // mark. The rendered string owns its bytes, so it survives the rollback.
  std::string body = "disjuncts=" + std::to_string(rr.rewriting.size()) +
                     " complete=" + (rr.status.ok() ? "1" : "0");
  const Theory empty_theory(program.instance.signature_ptr());
  std::string rendered = ToProgramText(empty_theory, nullptr, &rr.rewriting);
  if (!rendered.empty()) {
    body += "\n";
    if (rendered.back() == '\n') rendered.pop_back();
    body += rendered;
  }
  sig.RollbackTo(mark);
  rewrite_memo_.emplace(memo_key, body);
  return body;
}

ArtifactCache::ArtifactCache(size_t capacity, MemoryAccountant* accountant)
    : capacity_(capacity < 1 ? 1 : capacity), accountant_(accountant) {}

ArtifactCache::~ArtifactCache() {
  if (accountant_ == nullptr) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (auto& [key, e] : entries_) accountant_->Release(e.artifact->bytes);
}

std::shared_ptr<Artifact> ArtifactCache::Find(uint64_t key) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = ++tick_;
  return it->second.artifact;
}

size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return entries_.size();
}

size_t ArtifactCache::charged_bytes() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  size_t total = 0;
  for (const auto& [key, e] : entries_) total += e.artifact->bytes;
  return total;
}

ArtifactCache::Outcome ArtifactCache::GetOrCompile(
    const std::string& program_text, ExecutionContext* ctx,
    obs::MetricsRegistry& metrics, const CompileOptions& copts) {
  Outcome out;

  // Parse the submission as-is (cheap; the chaos site routes through the
  // session registry attached to ctx) and canonicalize. Equivalent
  // spellings — reordered facts, whitespace, renamed variables — print
  // identically, so they share one key and one artifact.
  Result<Program> submitted =
      ParseProgram(program_text, nullptr,
                   ctx != nullptr ? ctx->fault_registry() : nullptr);
  if (!submitted.ok()) {
    out.status = submitted.status();
    return out;
  }
  const std::string canonical = ToProgramText(
      submitted.value().theory, &submitted.value().instance, nullptr);
  const uint64_t key = CanonicalHash(canonical);

  if (std::shared_ptr<Artifact> cached = Find(key)) {
    out.artifact = std::move(cached);
    out.hit = true;
    return out;
  }

  // Single-flight: first loser-free requester for this key compiles;
  // everyone else blocks on the inflight slot and shares the result.
  std::shared_ptr<Inflight> flight;
  bool is_leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(key, flight);
      is_leader = true;
    } else {
      flight = it->second;
    }
  }

  if (!is_leader) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    out.status = flight->status;
    out.artifact = flight->artifact;
    // A shared compile is a hit from this request's perspective: it ran
    // no chase of its own.
    out.hit = out.status.ok();
    return out;
  }

  out = Compile(key, canonical, ctx, metrics, copts);
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = out.status;
    flight->artifact = out.artifact;
    flight->done = true;
  }
  flight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  return out;
}

ArtifactCache::Outcome ArtifactCache::Compile(uint64_t key,
                                              const std::string& canonical,
                                              ExecutionContext* ctx,
                                              obs::MetricsRegistry& metrics,
                                              const CompileOptions& copts) {
  Outcome out;
  obs::TraceSpan span(&ContextTracer(ctx), "serve.compile");
  const auto start = std::chrono::steady_clock::now();

  // Copy-on-admit: re-parse the canonical text into a fresh Program with
  // an artifact-owned Signature. Interned ids become a pure function of
  // the canonical form, and no caller-visible signature is shared with
  // the artifact — the precondition for EvalBoolean's rollback safety.
  Result<Program> reparsed =
      ParseProgram(canonical, nullptr,
                   ctx != nullptr ? ctx->fault_registry() : nullptr);
  if (!reparsed.ok()) {
    out.status = reparsed.status();
    return out;
  }
  auto artifact = std::make_shared<Artifact>(std::move(reparsed).value());
  artifact->canonical_text = canonical;
  artifact->key = key;

  ChaseOptions chase_opts;
  chase_opts.max_rounds = copts.max_rounds;
  chase_opts.max_facts = copts.max_facts;
  chase_opts.threads = copts.threads;
  chase_opts.context = ctx;
  artifact->chase =
      RunChase(artifact->program.theory, artifact->program.instance,
               chase_opts);
  if (!artifact->chase.status.ok()) {
    out.status = artifact->chase.status;
    return out;
  }
  if (!artifact->chase.fixpoint_reached) {
    out.status = Status(StatusCode::kResourceExhausted,
                        "theory did not saturate within the compile budget");
    return out;
  }
  artifact->rounds = artifact->chase.rounds_run;

  // Accounted estimate: canonical bytes plus the chase structure's rows
  // (same per-fact constant the chase charges) plus fixed overhead.
  artifact->bytes = canonical.size() +
                    artifact->chase.structure.NumFacts() * 64 + 4096;
  if (accountant_ != nullptr) accountant_->Charge(artifact->bytes);

  out.evicted = Admit(key, artifact);
  out.artifact = std::move(artifact);
  out.compiled = true;
  span.set_detail("facts " +
                  std::to_string(out.artifact->chase.structure.NumFacts()));
  metrics.GetHistogram("bddfc.serve.compile_ms")
      ->Record(static_cast<uint64_t>(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count()));
  return out;
}

size_t ArtifactCache::Admit(uint64_t key, std::shared_ptr<Artifact> artifact) {
  size_t evicted = 0;
  std::lock_guard<std::mutex> lock(cache_mu_);
  entries_[key] = Entry{std::move(artifact), ++tick_};
  while (entries_.size() > capacity_) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    if (accountant_ != nullptr) {
      accountant_->Release(lru->second.artifact->bytes);
    }
    entries_.erase(lru);
    ++evicted;
  }
  return evicted;
}

}  // namespace bddfc::serve
