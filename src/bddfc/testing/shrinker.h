// Automatic scenario minimization (delta debugging, DESIGN.md §2.8).
//
// Given a scenario on which an oracle fails, the shrinker greedily removes
// rules, facts, queries and individual atoms while the failure persists,
// ddmin-style (larger chunks first, then singles, iterated to a fixpoint).
// The result is 1-minimal: removing any single remaining component makes
// the oracle pass or skip. Shrinking is fully deterministic, so a CI
// failure minimizes to the same reproducer on every machine.

#ifndef BDDFC_TESTING_SHRINKER_H_
#define BDDFC_TESTING_SHRINKER_H_

#include <cstddef>

#include "bddfc/testing/oracles.h"
#include "bddfc/testing/scenario.h"

namespace bddfc {

/// Counters of one shrink run.
struct ShrinkStats {
  size_t attempts = 0;   ///< candidate scenarios re-checked
  size_t removals = 0;   ///< accepted removals (rules/facts/queries/atoms)
};

/// Minimizes `s` with respect to `oracle` failing under `config`.
/// Precondition: oracle.Check(s, config) fails; if it does not, `s` is
/// returned unchanged. `max_attempts` bounds the number of oracle
/// re-executions (the scenario returned is the best found so far).
Scenario ShrinkScenario(const Scenario& s, const Oracle& oracle,
                        const OracleConfig& config,
                        size_t max_attempts = 4000,
                        ShrinkStats* stats = nullptr);

}  // namespace bddfc

#endif  // BDDFC_TESTING_SHRINKER_H_
