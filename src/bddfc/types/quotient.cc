#include "bddfc/types/quotient.h"

#include <cassert>
#include <vector>

namespace bddfc {

Quotient BuildQuotient(const Structure& c, const TypePartition& partition) {
  Quotient out(c.signature_ptr());
  assert(partition.elements.size() == partition.class_id.size());

  // Assign one quotient element per class: the named constant itself for
  // singleton constant classes, a fresh null otherwise.
  std::vector<TermId> class_elem(partition.num_classes, -1);
  for (size_t i = 0; i < partition.elements.size(); ++i) {
    TermId e = partition.elements[i];
    int cls = partition.class_id[i];
    if (class_elem[cls] < 0) {
      if (!c.sig().IsNull(e)) {
        class_elem[cls] = e;
      } else {
        class_elem[cls] = out.structure.mutable_sig().AddNull("q");
      }
      out.representative.emplace(class_elem[cls], e);
    } else {
      assert(c.sig().IsNull(e) &&
             "named constants must form singleton classes");
    }
    out.projection.emplace(e, class_elem[cls]);
  }

  // Relations: images of C's facts under the projection (joint witnesses).
  c.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    std::vector<TermId> image;
    image.reserve(row.size());
    for (TermId t : row) {
      auto it = out.projection.find(t);
      assert(it != out.projection.end());
      image.push_back(it->second);
    }
    out.structure.AddFact(p, image);
  });
  // Classes of isolated elements still become domain elements.
  for (TermId e : class_elem) out.structure.AddDomainElement(e);
  return out;
}

bool IsRefinementOf(const TypePartition& finer, const TypePartition& coarser) {
  if (finer.elements != coarser.elements) return false;
  std::unordered_map<int, int> image;  // finer class -> coarser class
  for (size_t i = 0; i < finer.elements.size(); ++i) {
    auto [it, inserted] =
        image.emplace(finer.class_id[i], coarser.class_id[i]);
    if (!inserted && it->second != coarser.class_id[i]) return false;
  }
  return true;
}

}  // namespace bddfc
