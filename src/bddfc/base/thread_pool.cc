#include "bddfc/base/thread_pool.h"

#include <algorithm>

namespace bddfc {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)),
      queues_(num_threads_) {
  if (num_threads_ == 1) return;  // inline mode: no workers
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) {
    // Inline mode: run queued-but-unstarted tasks here so destruction
    // drains the queue exactly like the worker shutdown path below.
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    while (RunOneLocked(lock, 0)) {
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<Status()> task) {
  // Round-robin keeps hint-less batches balanced across queues.
  Submit(round_robin_.fetch_add(1, std::memory_order_relaxed),
         std::move(task));
}

void ThreadPool::Submit(size_t shard_hint, std::function<Status()> task) {
  const uint64_t parent = obs::Tracer::CurrentSpanId();
  {
    std::unique_lock<std::mutex> lock(mu_);
    queues_[shard_hint % num_threads_].push_back(
        {next_index_++, parent, std::move(task)});
    statuses_.emplace_back();  // slot for this task's Status
    ++queued_;
    ++in_flight_;
  }
  work_ready_.notify_one();
}

bool ThreadPool::RunOneLocked(std::unique_lock<std::mutex>& lock,
                              size_t worker) {
  if (queued_ == 0) return false;
  QueuedTask qt;
  if (!queues_[worker].empty()) {
    qt = std::move(queues_[worker].front());
    queues_[worker].pop_front();
  } else {
    // Steal from the back of the longest victim queue: the victim keeps
    // its oldest (cache-warm) work, the thief takes the newest backlog.
    size_t victim = worker;
    size_t longest = 0;
    for (size_t i = 0; i < queues_.size(); ++i) {
      if (queues_[i].size() > longest) {
        longest = queues_[i].size();
        victim = i;
      }
    }
    qt = std::move(queues_[victim].back());
    queues_[victim].pop_back();
    ++steals_;
  }
  --queued_;
  if (cancel_.cancelled()) {
    // Drain without running: the batch unwinds as fast as the in-flight
    // tasks reach their own cooperative check-points.
    statuses_[qt.index] = Status::ResourceExhausted("cancelled before start");
    if (--in_flight_ == 0) batch_done_.notify_all();
    return true;
  }
  lock.unlock();
  Status st;
  {
    // Re-parent the task's spans under the span that submitted it.
    obs::TraceSpan span("pool.task", qt.parent_span);
    st = qt.fn();
  }
  lock.lock();
  statuses_[qt.index] = std::move(st);
  if (--in_flight_ == 0) batch_done_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop(size_t worker) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return shutdown_ || queued_ > 0; });
    if (queued_ == 0) {
      if (shutdown_) return;
      continue;
    }
    RunOneLocked(lock, worker);
  }
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (workers_.empty()) {
    while (RunOneLocked(lock, 0)) {
    }
  } else {
    batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  }
  Status first;
  for (Status& st : statuses_) {
    if (first.ok() && !st.ok()) first = st;
  }
  statuses_.clear();
  next_index_ = 0;
  return first;
}

size_t ThreadPool::steal_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return steals_;
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Status ParallelFor(size_t n, size_t threads,
                   const std::function<Status(size_t)>& fn,
                   ExecutionContext* ctx) {
  if (threads <= 1 || n <= 1) {
    Status first;
    for (size_t i = 0; i < n; ++i) {
      if (ctx != nullptr && ctx->Exhausted()) {
        Status st = ctx->CheckPoint("ParallelFor");
        if (first.ok() && !st.ok()) first = std::move(st);
        break;
      }
      Status st = fn(i);
      if (first.ok() && !st.ok()) first = std::move(st);
    }
    return first;
  }
  ThreadPool pool(std::min(threads, n));
  if (ctx != nullptr) pool.SetCancelToken(ctx->cancel_token());
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, ctx, i] {
      if (ctx != nullptr && ctx->Exhausted()) {
        return ctx->CheckPoint("ParallelFor");
      }
      return fn(i);
    });
  }
  return pool.Wait();
}

}  // namespace bddfc
