#include "bddfc/rewrite/rewriter.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>

#include "bddfc/base/thread_pool.h"
#include "bddfc/chase/chase.h"
#include "bddfc/core/substitution.h"
#include "bddfc/eval/containment.h"
#include "bddfc/eval/match.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

namespace {

/// Splits multi-head datalog rules into single-head ones (semantically
/// equivalent) so the rewriting only sees single-head rules. Multi-head
/// existential TGDs are reported unsupported.
Result<std::vector<Rule>> PrepareRules(const Theory& theory) {
  std::vector<Rule> out;
  for (const Rule& r : theory.rules()) {
    if (r.head.size() == 1) {
      out.push_back(r);
      continue;
    }
    if (r.IsExistential()) {
      return Status::FailedPrecondition(
          "rewriting requires single-head existential TGDs; rule '" +
          r.label + "' is a multi-head TGD (apply the §5.3 reduction first)");
    }
    for (const Atom& h : r.head) {
      Rule single;
      single.body = r.body;
      single.head.push_back(h);
      single.label = r.label;
      out.push_back(std::move(single));
    }
  }
  return out;
}

/// Applies a substitution to a whole query.
ConjunctiveQuery ApplySubst(const Substitution& s, const ConjunctiveQuery& q) {
  ConjunctiveQuery out;
  out.atoms = s.Apply(q.atoms);
  out.answer_vars.reserve(q.answer_vars.size());
  for (TermId v : q.answer_vars) out.answer_vars.push_back(s.Resolve(v));
  return out;
}

/// One backward-resolution step: resolve q.atoms[i] against `rule`
/// (renamed apart). Returns the rewritten query, or nullopt when the
/// applicability conditions fail.
std::optional<ConjunctiveQuery> ResolveStep(const ConjunctiveQuery& q,
                                            size_t i, const Rule& rule) {
  Substitution mgu;
  if (!UnifyAtoms(q.atoms[i], rule.head[0], &mgu)) return std::nullopt;

  // Applicability of existential variables (Cali–Gottlob–Pieris): each
  // existential variable z must resolve to a variable that (a) is not an
  // answer variable, (b) occurs in no other atom of q, and (c) is not
  // identified with any frontier variable or other existential variable.
  std::vector<TermId> existentials = rule.ExistentialVariables();
  std::vector<TermId> frontier = rule.FrontierVariables();
  for (size_t zi = 0; zi < existentials.size(); ++zi) {
    TermId t = mgu.Resolve(existentials[zi]);
    if (!IsVar(t)) return std::nullopt;  // unified with a constant
    for (TermId av : q.answer_vars) {
      if (mgu.Resolve(av) == t) return std::nullopt;
    }
    for (size_t j = 0; j < q.atoms.size(); ++j) {
      if (j == i) continue;
      for (TermId arg : q.atoms[j].args) {
        if (IsVar(arg) && mgu.Resolve(arg) == t) return std::nullopt;
      }
    }
    for (TermId f : frontier) {
      if (mgu.Resolve(f) == t) return std::nullopt;
    }
    for (size_t zj = zi + 1; zj < existentials.size(); ++zj) {
      if (mgu.Resolve(existentials[zj]) == t) return std::nullopt;
    }
  }

  ConjunctiveQuery rest;
  rest.answer_vars = q.answer_vars;
  for (size_t j = 0; j < q.atoms.size(); ++j) {
    if (j != i) rest.atoms.push_back(q.atoms[j]);
  }
  for (const Atom& b : rule.body) rest.atoms.push_back(b);
  return ApplySubst(mgu, rest);
}

/// Factorization step: unify two same-predicate atoms that share a
/// variable. The result is contained in q (sound to add) and can unblock
/// resolution steps whose shared-variable condition failed.
void Factorizations(const ConjunctiveQuery& q,
                    std::vector<ConjunctiveQuery>* out) {
  for (size_t i = 0; i < q.atoms.size(); ++i) {
    for (size_t j = i + 1; j < q.atoms.size(); ++j) {
      if (q.atoms[i].pred != q.atoms[j].pred) continue;
      bool share = false;
      for (TermId a : q.atoms[i].args) {
        if (IsVar(a) &&
            std::find(q.atoms[j].args.begin(), q.atoms[j].args.end(), a) !=
                q.atoms[j].args.end()) {
          share = true;
          break;
        }
      }
      if (!share) continue;
      Substitution mgu;
      if (!UnifyAtoms(q.atoms[i], q.atoms[j], &mgu)) continue;
      if (mgu.empty()) continue;  // identical atoms: nothing to do
      out->push_back(ApplySubst(mgu, q));
    }
  }
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

size_t RewriteStats::TotalCandidates() const {
  size_t n = 0;
  for (const RewriteLevelStats& l : levels) n += l.candidates;
  return n;
}

size_t RewriteStats::TotalKeyDeduped() const {
  size_t n = 0;
  for (const RewriteLevelStats& l : levels) n += l.key_deduped;
  return n;
}

size_t RewriteStats::TotalSubsumptionPruned() const {
  size_t n = 0;
  for (const RewriteLevelStats& l : levels) n += l.subsumption_pruned;
  return n;
}

double RewriteStats::TotalAccumMs() const {
  double ms = 0;
  for (const RewriteLevelStats& l : levels) ms += l.accum_ms;
  return ms;
}

void RewriteStats::PublishTo(const char* prefix,
                             obs::MetricsRegistry& reg) const {
  if (!reg.enabled()) return;
  // Handles are resolved per call: with per-session registries under the
  // serving layer, a static handle cache would pin the first caller's
  // registry and silently publish every later session's counters there.
  const std::string p(prefix);
  reg.GetCounter(p + ".candidates")->Add(TotalCandidates());
  reg.GetCounter(p + ".key_deduped")->Add(TotalKeyDeduped());
  reg.GetCounter(p + ".subsumption_pruned")->Add(TotalSubsumptionPruned());
  reg.GetCounter(p + ".hom_checks")->Add(hom_checks);
  reg.GetCounter(p + ".hom_checks_skipped")->Add(hom_checks_skipped);
  reg.GetHistogram(p + ".depth")->Record(levels.size());
}

RewriteStats& RewriteStats::operator+=(const RewriteStats& o) {
  if (levels.size() < o.levels.size()) levels.resize(o.levels.size());
  for (size_t i = 0; i < o.levels.size(); ++i) {
    levels[i].candidates += o.levels[i].candidates;
    levels[i].key_deduped += o.levels[i].key_deduped;
    levels[i].subsumption_pruned += o.levels[i].subsumption_pruned;
    // Per-level times accumulate across merged runs (cpu-style): the sum
    // over a thread fan-out exceeds elapsed time by design and is labeled
    // accordingly (accum, not wall).
    levels[i].accum_ms += o.levels[i].accum_ms;
  }
  hom_checks += o.hom_checks;
  hom_checks_skipped += o.hom_checks_skipped;
  // True wall does NOT sum: merged runs overlapped (fan-out) or the caller
  // measures the batch itself (ComputeKappa/ProbeBdd overwrite this). The
  // max of the inputs is a sound lower bound in both cases. The seed
  // summed per-level wall times here, which made ComputeKappa report
  // "wall" time ~threads x the real elapsed time.
  wall_ms = std::max(wall_ms, o.wall_ms);
  return *this;
}

RewriteResult RewriteQuery(const Theory& theory, const ConjunctiveQuery& query,
                           const RewriteOptions& options) {
  RewriteResult result;
  obs::TraceSpan run_span(&ContextTracer(options.context), "rewrite.query");
  const auto run_start = std::chrono::steady_clock::now();
  Result<std::vector<Rule>> prepared = PrepareRules(theory);
  if (!prepared.ok()) {
    result.status = prepared.status();
    return result;
  }
  const std::vector<Rule>& rules = prepared.value();

  // Governed runs charge the exploration state (kept union + frontier) to
  // the shared accountant and release it on return; the estimate is per
  // kept CQ, not per allocation.
  ExecutionContext local_ctx;
  ExecutionContext* ctx =
      options.context != nullptr ? options.context : &local_ctx;
  size_t charged_bytes = 0;
  auto charge_query = [&](const ConjunctiveQuery& q) {
    size_t bytes = 96 + q.atoms.size() * 64;
    charged_bytes += bytes;
    ctx->memory().Charge(bytes);
  };

  ConjunctiveQuery start = query.Normalized();
  std::unordered_set<std::string> seen = {start.CanonicalKey()};
  std::vector<ConjunctiveQuery> all = {start};
  std::vector<ConjunctiveQuery> frontier = {start};
  charge_query(start);
  UcqSubsumptionIndex kept;
  SubsumptionStats probes;
  if (options.prune_subsumed) kept.Add(start);
  result.queries_generated = 1;
  bool budget_hit = false;
  bool governor_trip = false;
  std::string budget_reason;

  for (size_t depth = 1; depth <= options.max_depth && !frontier.empty();
       ++depth) {
    // Level boundary: a trip here (or mid-level below) cuts the union at
    // the last complete level, so the partial result is well defined.
    Status cp = ctx->CheckPoint("rewrite level start");
    if (!cp.ok()) {
      result.status = std::move(cp);
      governor_trip = true;
      break;
    }
    const size_t union_at_level_start = all.size();

    auto level_start = std::chrono::steady_clock::now();
    obs::TraceSpan level_span(&ctx->tracer(), "rewrite.level");
    RewriteLevelStats level;
    std::vector<ConjunctiveQuery> next;
    for (const ConjunctiveQuery& q : frontier) {
      if (ctx->ShouldStop("rewrite frontier")) {
        governor_trip = true;
        break;
      }
      // Rename rule variables apart from q's.
      int32_t next_var = 0;
      for (TermId v : q.Variables()) {
        next_var = std::max(next_var, DecodeVar(v) + 1);
      }

      std::vector<ConjunctiveQuery> candidates;
      for (const Rule& rule : rules) {
        Rule renamed = rule.RenamedApart(&next_var);
        for (size_t i = 0; i < q.atoms.size(); ++i) {
          std::optional<ConjunctiveQuery> step = ResolveStep(q, i, renamed);
          if (step.has_value()) candidates.push_back(std::move(*step));
        }
      }
      // Factorizations (the f-labeled queries of XRewrite) can unblock
      // resolution steps whose shared-variable applicability condition
      // failed on the parent; like every candidate they stay on the
      // frontier, and like every candidate they are dropped from the
      // output union when subsumed (a factorization always is — by its
      // parent, or by whatever subsumed the parent).
      Factorizations(q, &candidates);
      level.candidates += candidates.size();

      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        ConjunctiveQuery n = candidates[ci].Normalized();
        if (options.max_atoms_per_query != 0 &&
            n.atoms.size() > options.max_atoms_per_query) {
          budget_hit = true;
          budget_reason = "max_atoms_per_query";
          continue;
        }
        if (!seen.insert(n.CanonicalKey()).second) {
          ++level.key_deduped;
          continue;
        }
        const bool probing = options.prune_subsumed &&
                             probes.hom_checks < options.max_hom_checks;
        // A subsumed candidate adds nothing to the union, but its
        // rewritings are NOT always covered by the rewritings of the
        // subsuming disjunct (resolving an atom away can break the very
        // hom that witnessed subsumption), so it stays on the frontier:
        // pruning only shrinks the output UCQ, never the exploration.
        const bool subsumed = probing && kept.Subsumes(n, &probes);
        if (subsumed) ++level.subsumption_pruned;
        ++result.queries_generated;
        charge_query(n);
        if (!subsumed) {
          if (probing) kept.Add(n);
          all.push_back(n);
        }
        next.push_back(std::move(n));
        if (result.queries_generated >= options.max_queries) {
          budget_hit = true;
          budget_reason = "max_queries";
          break;
        }
      }
      if (budget_hit && budget_reason == "max_queries") break;
    }
    if (governor_trip) {
      // Discard this level's partial additions: the union stays the
      // last-complete-level prefix.
      all.resize(union_at_level_start);
      result.status = ctx->CheckPoint("rewrite level abort");
      level.accum_ms = MsSince(level_start);
      result.stats.levels.push_back(level);
      break;
    }
    level.accum_ms = MsSince(level_start);
    if (level_span.id() != 0) {
      level_span.set_detail("level " + std::to_string(depth) + ", " +
                            std::to_string(level.candidates) + " candidates");
    }
    result.stats.levels.push_back(level);
    if (budget_hit && budget_reason == "max_queries") {
      result.depth_reached = depth;
      break;
    }
    if (next.empty()) {
      result.depth_reached = depth - 1;
      frontier.clear();
      break;
    }
    result.depth_reached = depth;
    frontier = std::move(next);
  }

  if (!governor_trip && (!frontier.empty() || budget_hit)) {
    // Count budgets are run-local semi-decision outcomes (Unknown), not
    // governed-resource trips: inside a shared fan-out one query maxing
    // out max_queries must not cancel its siblings.
    result.status = Status::Unknown(
        "rewriting did not saturate (budget: " +
        (budget_reason.empty() ? std::string("max_depth") : budget_reason) +
        ")");
  }

  // Pairwise subsumption is quadratic; only minimize complete, reasonably
  // sized rewritings (an incomplete rewriting is diagnostic output anyway).
  const bool minimize =
      options.minimize && result.status.ok() && all.size() <= 1000;
  result.rewriting = minimize ? MinimizeUcq(all, &probes) : all;
  result.stats.hom_checks = probes.hom_checks;
  result.stats.hom_checks_skipped = probes.prefilter_skipped;
  for (const ConjunctiveQuery& q : result.rewriting) {
    result.max_variables = std::max(result.max_variables, q.NumVariables());
  }

  result.report = ctx->report();
  if (governor_trip) {
    result.report.partial_result = !result.rewriting.empty();
  } else if (!result.status.ok() &&
             result.report.exhausted == ResourceKind::kNone) {
    // Note the run-local count budget in this result's report without
    // latching the (possibly shared) context.
    result.report.exhausted = budget_reason == "max_queries"
                                  ? ResourceKind::kQueries
                              : budget_reason == "max_atoms_per_query"
                                  ? ResourceKind::kAtoms
                                  : ResourceKind::kRounds;
    result.report.detail = result.status.message();
    result.report.partial_result = !result.rewriting.empty();
  }
  ctx->memory().Release(charged_bytes);
  result.stats.wall_ms = MsSince(run_start);
  obs::MetricsRegistry& reg = ctx->metrics_registry();
  result.stats.PublishTo("bddfc.rewrite", reg);
  if (reg.enabled()) {
    reg.GetCounter("bddfc.rewrite.runs")->Add(1);
    reg.GetCounter("bddfc.rewrite.queries_generated")
        ->Add(result.queries_generated);
    reg.GetCounter("bddfc.rewrite.disjuncts")->Add(result.rewriting.size());
  }
  return result;
}

namespace {

/// The rewriting probe of a rule body: the body as a CQ whose free
/// variables are the frontier for TGDs (the paper's Ψ(x̄, y)) and the head
/// variables for datalog rules — they must survive the rewriting.
ConjunctiveQuery BodyProbe(const Rule& r) {
  ConjunctiveQuery body;
  body.atoms = r.body;
  body.answer_vars =
      r.IsExistential() ? r.FrontierVariables() : r.HeadVariables();
  return body;
}

/// Rewrites every probe query on options.threads workers. Results are
/// indexed by probe, so any downstream aggregation that scans them in probe
/// order is deterministic regardless of thread count.
std::vector<RewriteResult> RewriteAll(const Theory& theory,
                                      const std::vector<ConjunctiveQuery>& qs,
                                      const RewriteOptions& options) {
  std::vector<RewriteResult> results(qs.size());
  std::vector<char> ran(qs.size(), 0);
  ParallelFor(
      qs.size(), options.threads,
      [&](size_t i) {
        ran[i] = 1;
        results[i] = RewriteQuery(theory, qs[i], options);
        return Status::OK();
      },
      options.context);
  // Tasks drained by a governor trip never ran; without a status their
  // empty slots would read as saturated (empty) rewritings.
  for (size_t i = 0; i < qs.size(); ++i) {
    if (!ran[i] && options.context != nullptr) {
      results[i].status = options.context->CheckPoint("rewrite fan-out");
      results[i].report = options.context->report();
    }
  }
  return results;
}

}  // namespace

KappaResult ComputeKappa(const Theory& theory, const RewriteOptions& options) {
  KappaResult out;
  obs::TraceSpan span(&ContextTracer(options.context), "rewrite.kappa");
  const auto start = std::chrono::steady_clock::now();
  std::vector<ConjunctiveQuery> probes;
  probes.reserve(theory.rules().size());
  for (const Rule& r : theory.rules()) probes.push_back(BodyProbe(r));
  for (const RewriteResult& rr : RewriteAll(theory, probes, options)) {
    if (out.status.ok() && !rr.status.ok()) out.status = rr.status;
    out.kappa = std::max(out.kappa, rr.max_variables);
    out.stats += rr.stats;
  }
  // The merged per-level times are accumulated compute time; the fan-out's
  // true wall is measured here, around the whole batch.
  out.stats.wall_ms = MsSince(start);
  return out;
}

BddProbeResult ProbeBdd(const Theory& theory, const RewriteOptions& options) {
  BddProbeResult out;
  obs::TraceSpan span(&ContextTracer(options.context), "rewrite.probe_bdd");
  const auto start = std::chrono::steady_clock::now();
  // Probe 1: every rule body. Probe 2: one fresh atom per predicate.
  std::vector<ConjunctiveQuery> probes;
  for (const Rule& r : theory.rules()) probes.push_back(BodyProbe(r));
  for (PredId p = 0; p < theory.sig().num_predicates(); ++p) {
    if (theory.sig().IsColor(p)) continue;
    std::vector<TermId> args;
    for (int i = 0; i < theory.sig().arity(p); ++i) {
      args.push_back(MakeVar(i));
    }
    ConjunctiveQuery q;
    q.atoms.push_back(Atom(p, args));
    probes.push_back(std::move(q));
  }

  for (const RewriteResult& rr : RewriteAll(theory, probes, options)) {
    if (out.status.ok() && !rr.status.ok()) out.status = rr.status;
    out.max_depth_seen = std::max(out.max_depth_seen, rr.depth_reached);
    out.total_disjuncts += rr.rewriting.size();
    out.kappa = std::max(out.kappa, rr.max_variables);
    out.queries_generated += rr.queries_generated;
    out.stats += rr.stats;
  }
  out.stats.wall_ms = MsSince(start);
  out.certified = out.status.ok();
  return out;
}

int DerivationDepth(const Theory& theory, const Structure& instance,
                    const ConjunctiveQuery& q, size_t max_rounds) {
  // RunChase requires the theory and instance to share one Signature
  // object. Callers often parse the instance separately; re-intern such an
  // instance into the theory's signature (predicates and constants by
  // name) rather than chasing over mismatched id spaces.
  const Structure* inst = &instance;
  Structure reinterned(theory.signature_ptr());
  if (instance.signature_ptr().get() != theory.signature_ptr().get()) {
    const Signature& from = instance.sig();
    Signature& to = *theory.signature_ptr();
    bool ok = true;
    instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
      Result<PredId> tp =
          to.AddPredicate(from.PredicateName(p), from.arity(p));
      if (!tp.ok()) {
        ok = false;  // same name, different arity: no sensible translation
        return;
      }
      std::vector<TermId> args;
      args.reserve(row.size());
      for (TermId c : row) args.push_back(to.AddConstant(from.ConstantName(c)));
      reinterned.AddFact(tp.value(), args);
    });
    if (!ok) return -1;
    inst = &reinterned;
  }

  ChaseOptions copts;
  copts.max_rounds = max_rounds;
  ChaseResult chase = RunChase(theory, *inst, copts);

  // Replay the facts round by round into a prefix structure and test the
  // query after each round.
  Structure prefix(chase.structure.signature_ptr());
  std::vector<std::vector<Atom>> by_round = chase.FactsByRound();
  for (size_t round = 0; round < by_round.size(); ++round) {
    for (const Atom& a : by_round[round]) prefix.AddFact(a);
    if (Satisfies(prefix, q)) return static_cast<int>(round);
  }
  return -1;
}

}  // namespace bddfc
