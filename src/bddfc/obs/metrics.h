// Process-wide metrics registry: named counters, gauges and histograms
// with cheap thread-sharded hot paths, snapshotted on demand and exported
// as text or JSON.
//
// The repo grew four generations of ad-hoc counters (ChaseStats,
// RewriteStats, the fuzzer's oracle tallies, the governor's
// ResourceReport), each with its own merge rules and its own export
// shape. The registry is the one substrate underneath them: engines keep
// their per-run structs as the *run-scoped view* (they stay cheap plain
// fields in the hot loops and keep their determinism guarantees), and
// publish them into the registry under canonical `bddfc.<engine>.<name>`
// keys exactly once per run. Every export path — `bddfc --metrics-out`,
// `bddfc_fuzz --metrics-out`, bench JSON — reads the same snapshot.
//
// Concurrency and cost:
//   * Counter::Add is one relaxed fetch_add on a cache-line-private shard
//     picked by a thread-local index — safe from any thread, no locks.
//   * Gauge::Set/Max are single relaxed atomics.
//   * Histogram::Record is a relaxed add on a log2 bucket.
//   * Handle resolution (GetCounter/...) takes a mutex and may allocate;
//     resolve handles once, outside hot loops. Handles stay valid for the
//     registry's lifetime (Reset zeroes values, never frees metrics).
//   * A disabled registry (the default for Global()) makes publication a
//     no-op: callers guard with enabled() so the off path allocates
//     nothing and touches one relaxed atomic.

#ifndef BDDFC_OBS_METRICS_H_
#define BDDFC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bddfc::obs {

/// Number of cache-line-private cells a counter is sharded over. Threads
/// pick a cell by a thread-local index, so concurrent increments from up
/// to this many threads never contend on one line.
inline constexpr size_t kCounterShards = 16;

/// Small stable per-thread index in [0, kCounterShards); assigned on
/// first use, reused by everything in obs that shards per thread.
size_t ThisThreadShard();

/// Monotone named counter. Value() sums the shards (racy reads are fine:
/// each shard is monotone, so a snapshot is a consistent lower bound).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kCounterShards];
};

/// Last-write-wins (Set) or monotone-max (Max) named value.
class Gauge {
 public:
  void Set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Max(uint64_t v) {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<uint64_t> v_{0};
};

struct HistogramPoint;

/// Log2-bucketed histogram of non-negative samples (bucket i counts
/// samples in (2^(i-1), 2^i], bucket 0 counts zeros and ones). Tracks
/// count and sum so exports can report a mean without bucket math.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(uint64_t sample);
  /// Adds another histogram's exported state into this one (bucket-wise;
  /// count and sum add). The serve layer folds per-request histograms
  /// into session and server totals with this.
  void MergeFrom(const HistogramPoint& point);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// One named value in a snapshot.
struct MetricPoint {
  std::string name;
  uint64_t value = 0;
};

/// One named histogram in a snapshot (non-empty buckets only).
struct HistogramPoint {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  /// (bucket index, count) pairs for non-empty buckets, ascending.
  std::vector<std::pair<size_t, uint64_t>> buckets;
};

/// A point-in-time copy of every metric, sorted by name — the one shape
/// all export paths share.
struct MetricsSnapshot {
  std::vector<MetricPoint> counters;
  std::vector<MetricPoint> gauges;
  std::vector<HistogramPoint> histograms;

  /// "name value" lines, counters then gauges then histograms, sorted.
  std::string ToText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} with stable key
  /// order (the JSON the CLI writes for --metrics-out).
  std::string ToJson() const;
};

/// Registry of named metrics. Metric objects live as long as the
/// registry; re-resolving a name returns the same object.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance every engine publishes to. Starts
  /// disabled: publication is a guarded no-op until a tool opts in
  /// (--metrics-out) or a test enables it.
  static MetricsRegistry& Global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Adds a snapshot's values into this registry by name: counters and
  /// histograms add, gauges last-write. This is the serve layer's
  /// aggregation primitive — a request-scoped registry is snapshotted
  /// once at request end and folded into the session's cumulative
  /// registry and the server totals, so per-session counters sum to the
  /// server's by construction. Ignores enabled(): aggregation is not a
  /// hot path.
  void MergeFrom(const MetricsSnapshot& snap);

  /// Zeroes every value. Handles stay valid (tests and benchmarks reuse
  /// them across runs).
  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace bddfc::obs

#endif  // BDDFC_OBS_METRICS_H_
