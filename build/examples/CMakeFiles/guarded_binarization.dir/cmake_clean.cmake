file(REMOVE_RECURSE
  "CMakeFiles/guarded_binarization.dir/guarded_binarization.cpp.o"
  "CMakeFiles/guarded_binarization.dir/guarded_binarization.cpp.o.d"
  "guarded_binarization"
  "guarded_binarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_binarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
