// The chase (§1.1): round-based, non-oblivious by default.
//
// Chase^{i+1}(D, T) extends Chase^i(D, T) by simultaneously firing every
// rule whose body matches and (for existential TGDs) whose head is not
// already witnessed — the *non-oblivious* (restricted) chase the paper uses.
// An oblivious variant (create a witness for every trigger) is provided as a
// baseline for experiments.
//
// Within one round, existential triggers are deduplicated per canonicalized
// head pattern (existential positions renumbered order-invariantly): the
// non-oblivious chase demands at most one witness per demanded pattern,
// which is what Lemma 3(iv) relies on.
//
// The default engine is *delta-driven* (semi-naive): from round 2 on, each
// rule body is evaluated only over bindings in which at least one atom
// matches a fact born in the previous round. The delta is a per-relation
// row range recorded by Structure::MarkRoundBoundary — no copied
// structures. Each body atom in turn anchors the delta while atoms before
// the anchor stay on pre-round rows (the old/new split), so every binding
// is derived exactly once per round. Because facts are never deleted, a
// trigger whose body avoids the delta was already handled in an earlier
// round, and the delta engine produces the same rounds and facts as the
// naive full re-enumeration (kept available as ChaseEngine::kNaive for A/B
// testing and ablation baselines).

#ifndef BDDFC_CHASE_CHASE_H_
#define BDDFC_CHASE_CHASE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"
#include "bddfc/eval/match.h"

namespace bddfc {

/// Which round loop RunChase uses. Both produce the same result (same
/// facts, same rounds, same null count); kDelta only enumerates bindings
/// anchored in the previous round's delta.
enum class ChaseEngine {
  kDelta,  ///< semi-naive delta evaluation (default)
  kNaive,  ///< full re-enumeration every round (the seed loop; baseline)
  /// Sharded delta evaluation on a thread pool: each round's anchor scans
  /// split into fixed-size row chunks buffered through striped dedup
  /// tables and merged in canonical order at the round barrier, so the
  /// result — including row order and null naming — is byte-identical to
  /// kDelta at any ChaseOptions::threads (see chase/parallel.h).
  kParallel,
};

/// Deliberate engine faults for the differential fuzzer's self-test
/// (tools/bddfc_fuzz --inject-bug): break one invariant so the oracles must
/// detect a real divergence and the shrinker must minimize it. Always kNone
/// outside that self-test.
enum class ChaseFault {
  kNone,
  /// Skip the per-round canonicalized head-pattern dedup of existential
  /// triggers: every trigger invents its own witnesses (the pre-PR-1
  /// duplicate-witness bug, reintroduced on demand).
  kSkipTriggerDedup,
  /// Break the governed-interruption contract: when the governor trips
  /// mid-round, apply the round's buffered datalog additions anyway
  /// instead of discarding them, leaving a torn (non-prefix) structure.
  /// Exists so the governor-prefix oracle has a real bug to catch.
  kTornExhaust,
  /// Break the vectorized sink's sort-dedup merge: any candidate tuple
  /// derived more than once in a round is dropped entirely instead of
  /// collapsed to one copy, so facts with multiple derivations go missing.
  /// Inactive when vectorized_sink is off — the point is proving the
  /// differential oracles see through the batched path specifically.
  kSinkDropDup,
};

/// Stable lowercase name ("none", "skip-trigger-dedup", "torn-exhaust",
/// "sink-drop-dup") — the spelling used by --inject-bug= flags and by the
/// fault registry's faults::kChaseBug actions.
const char* ChaseFaultName(ChaseFault fault);

/// Inverse of ChaseFaultName; kNone when the name is unknown or "none".
ChaseFault ChaseFaultFromName(std::string_view name);

/// Budgets and variants for a chase run.
struct ChaseOptions {
  /// Maximum number of rounds (Chase^i levels) to run.
  size_t max_rounds = 64;
  /// Fact budget; the run stops with ResourceExhausted when exceeded.
  size_t max_facts = 1000000;
  /// Oblivious (blind) chase: fire every existential trigger regardless of
  /// existing witnesses. Default false = the paper's non-oblivious chase.
  bool oblivious = false;
  /// Fire only the plain datalog rules (the saturation mode of Lemma 5 —
  /// existential TGDs are still *checked* afterwards by CheckModel).
  bool datalog_only = false;
  /// Round-loop implementation (results are identical; speed is not).
  ChaseEngine engine = ChaseEngine::kDelta;
  /// Worker threads for ChaseEngine::kParallel (ignored otherwise);
  /// 0 = ThreadPool::DefaultThreads(). The result does not depend on this
  /// value, only the wall time does. A resolved value <= 1 routes through
  /// the serial round path inside the parallel engine — same bytes, same
  /// stats, none of the pool/striped-table overhead.
  size_t threads = 0;
  /// Evaluate rule bodies through compiled query plans (eval/plan.h) with
  /// vectorized block execution (eval/exec.h) instead of the interpretive
  /// Matcher. Applies to kDelta and kParallel; kNaive always runs the
  /// interpreter so an independent A/B reference survives. The result is
  /// byte-identical either way — only postings_hits/_misses/rows_scanned
  /// may differ (the two backends probe indexes in different orders).
  bool compiled_plans = true;
  /// Buffer each round's head derivations through the vectorized sink
  /// (chase/round.h VectorSink): candidates append raw to flat
  /// per-predicate tuple buffers, duplicates collapse by sort-and-merge,
  /// and frozen-containment is answered by one bulk
  /// Structure::ContainsSorted pass per buffer — instead of one Contains
  /// hash probe plus one dedup-set insert per derived occurrence. Applies
  /// to kDelta and kParallel; kNaive keeps the per-binding hash sink so an
  /// independent A/B reference survives (mirroring compiled_plans). The
  /// result is byte-identical either way, including the dedup counters;
  /// only the sink_* counters are populated exclusively by this path.
  bool vectorized_sink = true;
  /// Fault injection for fuzzer self-tests; kNone in all production paths.
  /// A FaultRegistry fire at faults::kChaseBug (resolved once at RunChase
  /// entry) overrides this when its action names a ChaseFault.
  ChaseFault fault = ChaseFault::kNone;
  /// Runtime invariant checking (DESIGN.md §2.14): kCheap adds O(1)
  /// per-round identity checks (sink counters, index freshness,
  /// round-prefix consistency on trips), kFull re-verifies round buffers
  /// against the frozen structure. Violations surface as kInternal.
  ParanoiaLevel paranoia = ParanoiaLevel::kOff;
  /// Resource governor (not owned; may be null). When set, the run checks
  /// its deadline / memory budget / cancel token at round boundaries and
  /// (strided) inside body enumeration, charges fact storage to its
  /// accountant, and cuts the result at the last complete round on a trip.
  /// max_facts / max_rounds trips are recorded on it too, so the count
  /// knobs behave as views onto the same contract.
  ExecutionContext* context = nullptr;
};

/// Execution counters of one chase run, for benchmarks and the CLI.
struct ChaseStats {
  /// Matcher counters for rule-body enumeration: complete bindings tried
  /// and posting-list hits/misses. Witness-existence probes are not
  /// counted here.
  MatchStats match;
  /// Existential triggers dropped because an equivalent head pattern was
  /// already demanded in the same round.
  size_t triggers_deduped = 0;
  /// Buffered datalog derivations dropped as duplicates within a round.
  size_t datalog_deduped = 0;
  /// Vectorized-sink counters, all zero when vectorized_sink is off.
  /// sink_candidates counts datalog head occurrences buffered (before any
  /// dedup or containment check) and sink_contained the occurrences
  /// dropped because the tuple was already in the frozen structure — both
  /// are functions of the round's derivation multiset, identical across
  /// engines and thread counts. sink_probes counts the distinct tuples
  /// actually submitted to bulk ContainsSorted; like postings_hits it
  /// depends on compaction and shard boundaries, so it is excluded from
  /// byte-identity comparisons.
  size_t sink_candidates = 0;
  size_t sink_contained = 0;
  size_t sink_probes = 0;
  /// Wall time per round in milliseconds (entry 0 = round 1).
  std::vector<double> round_ms;
  /// Peak accounted bytes of the run (0 when ungoverned — accounting runs
  /// only with an attached ExecutionContext).
  size_t peak_bytes = 0;

  /// Merges stats from a concurrent shard of the same run: counters are
  /// additive across shards, but wall times and peak memory are *not* —
  /// shards overlap in time and share one accountant, so round_ms merges
  /// element-wise max (the round is as slow as its slowest shard) and
  /// peak_bytes takes the max. Summing those two double-counts overlap:
  /// the reported per-round time would exceed the measured wall clock.
  ChaseStats& operator+=(const ChaseStats& o) {
    match.bindings_tried += o.match.bindings_tried;
    match.postings_hits += o.match.postings_hits;
    match.postings_misses += o.match.postings_misses;
    match.rows_scanned += o.match.rows_scanned;
    triggers_deduped += o.triggers_deduped;
    datalog_deduped += o.datalog_deduped;
    sink_candidates += o.sink_candidates;
    sink_contained += o.sink_contained;
    sink_probes += o.sink_probes;
    if (o.round_ms.size() > round_ms.size()) {
      round_ms.resize(o.round_ms.size(), 0.0);
    }
    for (size_t i = 0; i < o.round_ms.size(); ++i) {
      round_ms[i] = round_ms[i] > o.round_ms[i] ? round_ms[i] : o.round_ms[i];
    }
    peak_bytes = peak_bytes > o.peak_bytes ? peak_bytes : o.peak_bytes;
    return *this;
  }

  /// Publishes these counters into `reg` under `<prefix>.*` keys
  /// ("bddfc.chase" for RunChase). The registry is the run's — resolved
  /// through the ExecutionContext's RunContext, so concurrent sessions
  /// never interleave counters. Called once at the end of a run; a no-op
  /// (one relaxed load) when the registry is disabled.
  void PublishTo(const char* prefix, obs::MetricsRegistry& reg) const;
};

/// Provenance of a labeled null invented by the chase.
struct NullProvenance {
  int birth_round = 0;
  int rule_index = -1;
  /// The grounded head atom the null was created in.
  Atom head_atom;
};

/// Output of a chase run.
struct ChaseResult {
  /// OK when a fixpoint was reached; ResourceExhausted when a budget ran
  /// out first (the structure is then the Chase^L prefix).
  Status status = Status::OK();
  Structure structure;
  /// True iff no rule was applicable in the last round: structure ⊨ T.
  bool fixpoint_reached = false;
  size_t rounds_run = 0;
  size_t nulls_created = 0;
  /// Birth round per fact (round 0 = the facts of D).
  std::unordered_map<FactHandle, int, FactHandleHash> fact_round;
  /// Provenance per invented null.
  std::unordered_map<TermId, NullProvenance> null_provenance;
  /// |Chase^i| after each round i (index 0 = |D|); for growth experiments.
  std::vector<size_t> facts_per_round;
  /// Execution counters (bindings tried, postings hits/misses, dedups,
  /// per-round wall time).
  ChaseStats stats;
  /// Resource account of the run: what tripped (kNone on a clean run),
  /// peak accounted bytes, deadline slack, check counts. partial_result is
  /// true when a budget cut the run short but the structure holds a valid
  /// Chase^L prefix (it always does — rounds are applied atomically).
  ResourceReport report;

  explicit ChaseResult(SignaturePtr sig) : structure(std::move(sig)) {}

  /// Birth round of an element: 0 for named constants, the creating round
  /// for nulls.
  int ElementBirthRound(TermId e) const {
    auto it = null_provenance.find(e);
    return it == null_provenance.end() ? 0 : it->second.birth_round;
  }

  /// Facts grouped by birth round: entry i holds the ground atoms first
  /// derived in round i (entry 0 = the facts of D), append-ordered within
  /// each relation. Built via fact handles, so it stays valid however the
  /// structure's row storage reallocates. Empty when the structure is.
  std::vector<std::vector<Atom>> FactsByRound() const;
};

/// Runs the chase of `theory` on `instance`. The instance's signature object
/// is shared and mutated (nulls are added to it).
ChaseResult RunChase(const Theory& theory, const Structure& instance,
                     const ChaseOptions& options = {});

/// One violated rule instance found by CheckModel.
struct RuleViolation {
  int rule_index = -1;
  /// The grounded body of the violated rule.
  std::vector<Atom> grounded_body;
  std::string ToString(const Signature& sig) const;
};

/// Checks M ⊨ T: every datalog rule's grounded head is present, and every
/// existential TGD's head has a witness. Returns the first violation found,
/// or nullopt when M is a model of T.
std::optional<RuleViolation> CheckModel(const Structure& m,
                                        const Theory& theory);

}  // namespace bddfc

#endif  // BDDFC_CHASE_CHASE_H_
