// The running examples of the paper, as ready-made programs and structures.
//
// Each ExampleN() returns the theory + database instance (+ queries where
// the paper names one) of the corresponding example. Structure makers build
// the infinite structures of §2 as finite prefixes whose elements are
// labeled nulls (the paper stresses the element names are invisible).

#ifndef BDDFC_WORKLOAD_PAPER_EXAMPLES_H_
#define BDDFC_WORKLOAD_PAPER_EXAMPLES_H_

#include <vector>

#include "bddfc/parser/parser.h"

namespace bddfc {

/// Example 1: E-successor + triangle-to-U rules; Chase is an infinite
/// E-chain; the 3-cycle quotient M' is not a model.
Program Example1();

/// Remark 3's theory: E-successor + transitivity, D = {E(a,a), E(b,c)};
/// satisfies (♠3) but is not ptp-conservative.
Program RemarkThreeTheory();

/// Example 7: E-successor + co-child rule E(x,y), E(x',y) ⇒ R(x,x');
/// the quotient satisfies all TGDs but violates the datalog rule, so the
/// pipeline must saturate after quotienting.
Program Example7();

/// Example 9: the F/G binary branching theory whose quotients contain new
/// undirected (but no directed) cycles.
Program Example9();

/// §5.4's non-binary obstruction: R(x,x',y,z) ⇒ E(y,z) and
/// E(x,y), E(t,y) ⇒ ∃z R(x,t,y,z).
Program Section54();

/// §5.5's "notorious" theory: BDD fails, not FC, yet defines no ordering.
/// The returned program's query is Φ(x, y) = E(x, y) ∧ R(y, y).
Program Section55();

/// A small guarded (non-binary) program for the §5.6 transformation tests.
Program GuardedSample();

/// The infinite E-chain of Example 3, as a prefix of `length` edges over
/// fresh labeled nulls: E(a_0, a_1), ..., E(a_{len-1}, a_len).
/// Returns the structure; `elements` (optional) receives a_0..a_len.
Structure MakeChain(SignaturePtr sig, int length,
                    std::vector<TermId>* elements = nullptr);

/// A directed E-cycle with `length` distinct null elements.
Structure MakeCycle(SignaturePtr sig, int length,
                    std::vector<TermId>* elements = nullptr);

/// A complete binary tree of E-edges with `depth` levels below the root.
Structure MakeBinaryTree(SignaturePtr sig, int depth,
                         std::vector<TermId>* elements = nullptr);

}  // namespace bddfc

#endif  // BDDFC_WORKLOAD_PAPER_EXAMPLES_H_
