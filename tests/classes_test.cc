// Tests for syntactic class recognizers and the VTDAG checker.

#include <gtest/gtest.h>

#include "bddfc/classes/recognizers.h"
#include "bddfc/classes/vtdag.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Theory MustParseTheory(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(std::move(r).value().theory);
}

TEST(RecognizerTest, BinaryTheory) {
  EXPECT_TRUE(IsBinaryTheory(Example1().theory));
  EXPECT_TRUE(IsBinaryTheory(Example9().theory));
  EXPECT_FALSE(IsBinaryTheory(Section54().theory));
}

TEST(RecognizerTest, Linear) {
  Theory linear = MustParseTheory(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y) -> r(Y, X).
  )");
  EXPECT_TRUE(IsLinear(linear));
  EXPECT_FALSE(IsLinear(Example1().theory));  // triangle body has 3 atoms
}

TEST(RecognizerTest, Guarded) {
  EXPECT_TRUE(IsGuarded(GuardedSample().theory));
  // Example 7's co-child rule e(x,y), e(x',y) -> r(x,x') has no guard.
  EXPECT_FALSE(IsGuarded(Example7().theory));
  // Linear theories are trivially guarded.
  EXPECT_TRUE(IsGuarded(MustParseTheory("e(X, Y) -> exists Z: e(Y, Z).")));
}

TEST(RecognizerTest, SingleFrontierVariableHeads) {
  // Theorem 3 form: heads Φ(y, z̄).
  EXPECT_TRUE(HasSingleFrontierVariableHeads(Example1().theory));
  Theory two_frontier = MustParseTheory(R"(
    e(X, Y) -> exists Z: t(X, Y, Z).
  )");
  EXPECT_FALSE(HasSingleFrontierVariableHeads(two_frontier));
}

TEST(RecognizerTest, StickyAcceptsJoinlessPropagation) {
  // The classic sticky example: joins whose variable reaches the head.
  Theory t = MustParseTheory(R"(
    e(X, Y), e(Y, Z) -> exists W: p(Y, W).
  )");
  StickyReport rep = CheckSticky(t);
  EXPECT_TRUE(rep.is_sticky) << rep.violation;
}

TEST(RecognizerTest, StickyRejectsLostJoinVariable) {
  // Join variable Y does not reach the head: both its occurrences are
  // marked, violating stickiness.
  Theory t = MustParseTheory(R"(
    e(X, Y), e(Y, Z) -> exists W: p(X, W).
  )");
  StickyReport rep = CheckSticky(t);
  EXPECT_FALSE(rep.is_sticky);
  EXPECT_FALSE(rep.violation.empty());
}

TEST(RecognizerTest, StickyMarkingPropagatesThroughHeads) {
  // r1 projects Y away when deriving p; r2 joins on a p-position whose
  // variable gets marked transitively.
  Theory t = MustParseTheory(R"(
    e(X, Y) -> p(X, X).
    p(X, Y), p(Y, Z) -> exists W: q(X, W).
  )");
  StickyReport rep = CheckSticky(t);
  // In r2, Y is a join variable not reaching the head: marked twice.
  EXPECT_FALSE(rep.is_sticky);
}

TEST(RecognizerTest, WeaklyAcyclicExamples) {
  // Plain successor rule feeds its own predicate through an existential:
  // special self-loop => not weakly acyclic.
  EXPECT_FALSE(IsWeaklyAcyclic(MustParseTheory(
      "e(X, Y) -> exists Z: e(Y, Z).")));
  // A stratified pipeline is weakly acyclic.
  EXPECT_TRUE(IsWeaklyAcyclic(MustParseTheory(R"(
    a(X, Y) -> exists Z: b(Y, Z).
    b(X, Y) -> exists Z: c(Y, Z).
    c(X, Y), b(Y, X) -> d(X, Y).
  )")));
  // Pure datalog is always weakly acyclic.
  EXPECT_TRUE(IsWeaklyAcyclic(MustParseTheory(
      "e(X, Y), e(Y, Z) -> e(X, Z).")));
}

class VtdagTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sig_ = std::make_shared<Signature>();
    e_ = std::move(sig_->AddPredicate("e", 2)).ValueOrDie();
    f_ = std::move(sig_->AddPredicate("f", 2)).ValueOrDie();
  }

  TermId Null() { return sig_->AddNull(); }

  SignaturePtr sig_;
  PredId e_ = -1, f_ = -1;
};

TEST_F(VtdagTest, ChainIsVtdag) {
  Structure s = MakeChain(sig_, 8);
  VtdagReport rep = CheckVtdag(s);
  EXPECT_TRUE(rep.is_vtdag) << rep.violation;
}

TEST_F(VtdagTest, TreeIsVtdag) {
  Structure s = MakeBinaryTree(sig_, 3);
  VtdagReport rep = CheckVtdag(s);
  EXPECT_TRUE(rep.is_vtdag) << rep.violation;
}

TEST_F(VtdagTest, CycleIsNotVtdag) {
  Structure s = MakeCycle(sig_, 4);
  VtdagReport rep = CheckVtdag(s);
  EXPECT_FALSE(rep.is_vtdag);
  EXPECT_FALSE(rep.nulls_acyclic);
}

TEST_F(VtdagTest, TwoPredecessorsSameRelationViolates) {
  Structure s(sig_);
  TermId a = Null(), b = Null(), c = Null();
  s.AddFact(e_, {a, c});
  s.AddFact(e_, {b, c});
  VtdagReport rep = CheckVtdag(s);
  EXPECT_FALSE(rep.is_vtdag);
  EXPECT_FALSE(rep.unique_predecessor);
}

TEST_F(VtdagTest, TwoPredecessorsDifferentRelationsNeedClique) {
  // e(a, c), f(b, c) with no edge between a and b: P(c) = {a, b, c} is not
  // a directed clique.
  Structure s(sig_);
  TermId a = Null(), b = Null(), c = Null();
  s.AddFact(e_, {a, c});
  s.AddFact(f_, {b, c});
  VtdagReport rep = CheckVtdag(s);
  EXPECT_TRUE(rep.unique_predecessor);
  EXPECT_FALSE(rep.predecessors_form_clique);
  EXPECT_FALSE(rep.is_vtdag);

  // Adding e(a, b) makes {a, b} comparable: now a VTDAG.
  s.AddFact(e_, {a, b});
  VtdagReport rep2 = CheckVtdag(s);
  EXPECT_TRUE(rep2.is_vtdag) << rep2.violation;
}

TEST_F(VtdagTest, ConstantsAreExemptFromConditions) {
  // Named constants may have many predecessors: conditions only apply to
  // non-constants.
  TermId a = sig_->AddConstant("a");
  TermId b = sig_->AddConstant("b");
  TermId c = sig_->AddConstant("c");
  Structure s(sig_);
  s.AddFact(e_, {a, c});
  s.AddFact(e_, {b, c});
  s.AddFact(e_, {c, a});  // even a cycle through constants is fine
  VtdagReport rep = CheckVtdag(s);
  EXPECT_TRUE(rep.is_vtdag) << rep.violation;
}

TEST_F(VtdagTest, PSetOfConstantIsSingleton) {
  TermId a = sig_->AddConstant("a");
  Structure s(sig_);
  TermId n = Null();
  s.AddFact(e_, {n, a});
  auto p = PSet(s, a);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.count(a));
}

TEST_F(VtdagTest, PkSetsGrowAlongChain) {
  std::vector<TermId> elems;
  Structure s = MakeChain(sig_, 6, &elems);
  // P(e) of element i (i>0) = {elems[i-1], elems[i]}.
  auto p0 = PkSet(s, elems[4], 0);
  EXPECT_EQ(p0.size(), 2u);
  auto p2 = PkSet(s, elems[4], 2);
  EXPECT_EQ(p2.size(), 4u);  // elems[1..4]
  EXPECT_TRUE(p2.count(elems[1]));
  auto deep = PkSet(s, elems[4], 10);  // saturates at the root
  EXPECT_EQ(deep.size(), 5u);
}

}  // namespace
}  // namespace bddfc
