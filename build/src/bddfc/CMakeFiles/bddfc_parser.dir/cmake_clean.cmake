file(REMOVE_RECURSE
  "CMakeFiles/bddfc_parser.dir/parser/parser.cc.o"
  "CMakeFiles/bddfc_parser.dir/parser/parser.cc.o.d"
  "CMakeFiles/bddfc_parser.dir/parser/printer.cc.o"
  "CMakeFiles/bddfc_parser.dir/parser/printer.cc.o.d"
  "libbddfc_parser.a"
  "libbddfc_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
