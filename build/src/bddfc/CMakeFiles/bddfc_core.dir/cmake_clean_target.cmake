file(REMOVE_RECURSE
  "libbddfc_core.a"
)
