// Chaos-engineering substrate (DESIGN.md §2.14): one registry of named,
// site-addressed fault points shared by every subsystem.
//
// The repo grew three ad-hoc fault mechanisms — the governor's
// InjectFaultAfterChecks, the chase's ChaseFault behavioral knob, and the
// fuzzer's --inject-bug flag. The FaultRegistry is the substrate under all
// of them: code at a fault site calls Hit("site") (usually via
// ExecutionContext::CheckFault so a fire becomes a governed kInternal
// trip), and tests arm deterministic seeded schedules against any site.
//
// Cost model: a disarmed registry is one relaxed atomic load per guarded
// site — callers check enabled() (or rely on CheckFault doing so) before
// paying the mutex in Hit. Hit itself is mutex-serialized; fault sites sit
// at round/task/phase granularity, never in per-tuple loops.
//
// Determinism: every schedule is a pure function of (spec, per-site hit
// index). The probability schedule draws from a splitmix64 stream keyed on
// the spec's seed and the hit index, so the same plan over the same run
// fires at the same hits on any platform and at any thread count as long
// as per-site hit order is deterministic (which the engines guarantee at
// their site granularity: rounds, refreshes, merges are sequenced; pool
// tasks hit a shared counter, so cross-thread fire *assignment* may vary
// but fire *counts* per N hits do not for after-N/every-N).

#ifndef BDDFC_BASE_FAULTS_H_
#define BDDFC_BASE_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bddfc {

/// Canonical fault-site names. Sites are plain strings so downstream code
/// can add sites without touching this header, but the known ones live
/// here so plans, tests and docs agree on spelling.
namespace faults {
inline constexpr const char kGovernorCheck[] = "governor.check";
inline constexpr const char kChaseRound[] = "chase.round";
inline constexpr const char kChaseAlloc[] = "chase.alloc";
inline constexpr const char kIndexRefresh[] = "index.refresh";
inline constexpr const char kPlanCompile[] = "plan.compile";
inline constexpr const char kSinkMerge[] = "sink.merge";
inline constexpr const char kPoolTask[] = "pool.task";
inline constexpr const char kParserParse[] = "parser.parse";
/// Behavioral site: a fire does not fail-stop but selects a ChaseFault by
/// action name ("skip-trigger-dedup", "sink-drop-dup", "torn-exhaust"),
/// resolved once at RunChase entry.
inline constexpr const char kChaseBug[] = "chase.bug";
}  // namespace faults

/// When a fault fires relative to the per-site hit counter.
enum class FaultSchedule {
  kAfterN,       ///< fires on every hit with index > n (legacy governor shape)
  kEveryN,       ///< fires on hits n, 2n, 3n, ...
  kProbability,  ///< fires on each hit with probability p (seeded stream)
};

/// One armed fault: where, when, how often, and what it does.
struct FaultSpec {
  std::string site;
  FaultSchedule schedule = FaultSchedule::kAfterN;
  uint64_t n = 0;          ///< after-N / every-N parameter
  double p = 0.0;          ///< probability parameter
  uint64_t seed = 0;       ///< stream seed for kProbability
  uint64_t max_fires = 0;  ///< stop firing after this many (0 = unlimited)
  /// Empty = fail-stop (the site aborts with kInternal). Non-empty names a
  /// behavioral fault the site interprets (e.g. a ChaseFault name for
  /// faults::kChaseBug, or "deadline"/"oom"/"cancel" for
  /// faults::kGovernorCheck compatibility trips).
  std::string action;

  /// "site sched=after-n n=2 max-fires=1" style one-liner.
  std::string ToString() const;
};

/// An ordered set of faults armed together — the unit the chaos oracle
/// randomizes and ddmin shrinks.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
  /// One spec per line; stable (used in failure reports and shrinking).
  std::string ToString() const;
};

/// Outcome of one Hit: did a fault fire, and with what action.
struct FaultFire {
  bool fired = false;
  std::string action;
};

/// Thread-safe registry of armed fault points. Zero-cost when disarmed:
/// enabled() is one relaxed load and is false until the first Arm.
class FaultRegistry {
 public:
  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Arms one fault. Multiple specs may target the same site; the first
  /// one whose schedule matches a given hit wins.
  void Arm(FaultSpec spec);
  /// Arms every fault of a plan.
  void ArmPlan(const FaultPlan& plan);
  /// Disarms every fault and clears hit/fire counters.
  void Disarm();

  /// True iff at least one fault is armed. The fast-path guard: sites
  /// skip Hit entirely when this is false.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a hit at `site` and evaluates armed schedules against the
  /// site's hit index (1-based). Hits are counted even for sites with no
  /// armed fault, so tests can assert coverage of instrumented sites.
  FaultFire Hit(std::string_view site);

  /// Hits / fires observed at `site` since the last Disarm.
  uint64_t HitCount(std::string_view site) const;
  uint64_t FireCount(std::string_view site) const;
  /// Sites with at least one armed fault, sorted.
  std::vector<std::string> ArmedSites() const;

  /// Process-wide instance for sites with no ExecutionContext in reach
  /// (the parser). Everything else should use a per-run registry attached
  /// via ExecutionContext::SetFaultRegistry.
  static FaultRegistry& Global();

 private:
  struct Armed {
    FaultSpec spec;
    uint64_t fires = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Armed>, std::less<>> armed_;
  std::map<std::string, uint64_t, std::less<>> hits_;
  std::map<std::string, uint64_t, std::less<>> fires_;
};

/// Every site the library instruments, sorted — the chaos oracle's
/// coverage universe.
const std::vector<std::string>& AllFaultSites();

/// The fail-stop sites on the chase path that the supervisor must recover
/// from (AllFaultSites minus parser.parse, which has no retry loop, and
/// minus the behavioral chase.bug site).
const std::vector<std::string>& RecoverableFaultSites();

/// Deterministic random fault plan over `sites` (default: recoverable
/// sites): 1–3 specs, mixed schedules, and always bounded fail-stop
/// (max_fires in {1,2}, empty action) so a supervised run is guaranteed
/// to recover. Same seed, same plan.
FaultPlan RandomFaultPlan(uint64_t seed);
FaultPlan RandomFaultPlan(uint64_t seed, const std::vector<std::string>& sites);

/// Runtime invariant-checking intensity (DESIGN.md §2.14): kOff pays
/// nothing, kCheap adds O(1)-per-round identities, kFull re-verifies
/// per-round buffers against the frozen structure.
enum class ParanoiaLevel {
  kOff = 0,
  kCheap,
  kFull,
};

/// "off" / "cheap" / "full".
const char* ParanoiaLevelName(ParanoiaLevel level);
/// Parses a level name; returns false (and leaves *out alone) on unknown.
bool ParanoiaLevelFromName(std::string_view name, ParanoiaLevel* out);

}  // namespace bddfc

#endif  // BDDFC_BASE_FAULTS_H_
