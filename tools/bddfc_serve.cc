// bddfc-serve: the multi-tenant reasoning daemon (DESIGN.md §2.15).
//
// Listens on 127.0.0.1, serves the line protocol (and GET /metrics,
// GET /healthz for scrapers), and drains gracefully on SIGTERM/SIGINT:
// the listener closes, in-flight requests finish and fold their metrics,
// then --metrics-out / --trace-out artifacts are written and the process
// exits 0. Prints "listening on 127.0.0.1:<port>" once bound, so scripts
// using --port 0 can scrape the real port from stdout.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"
#include "bddfc/serve/daemon.h"
#include "bddfc/serve/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

int Usage() {
  std::fprintf(
      stderr,
      "usage: bddfc_serve [options]\n"
      "  --port=N             TCP port on 127.0.0.1 (default 0 = auto)\n"
      "  --memory-limit-mb=N  server-wide byte budget (default 256)\n"
      "  --cache-capacity=N   artifact cache entries (default 64)\n"
      "  --max-concurrent=N   in-flight requests before shedding "
      "(default 64)\n"
      "  --deadline-ms=N      per-request deadline (default 30000)\n"
      "  --max-rounds=N       compile chase round budget (default 256)\n"
      "  --max-facts=N        compile chase fact budget (default 1048576)\n"
      "  --threads=N          compile chase shards (default 1)\n"
      "  --trace              record per-session trace rings\n"
      "  --metrics-out=PATH   write server metrics JSON on shutdown\n"
      "  --trace-out=PATH     write a Chrome trace on shutdown "
      "(implies --trace)\n");
  return 2;
}

bool ParseU64(const char* s, uint64_t* out) {
  if (*s == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using bddfc::serve::DaemonOptions;
  using bddfc::serve::ReasoningServer;
  using bddfc::serve::ServerOptions;

  ServerOptions options;
  DaemonOptions daemon;
  const char* metrics_out = nullptr;
  const char* trace_out = nullptr;
  uint64_t v = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto flag = [&](const char* name) -> const char* {
      const size_t n = std::strlen(name);
      return std::strncmp(arg, name, n) == 0 ? arg + n : nullptr;
    };
    if (const char* p = flag("--port=")) {
      if (!ParseU64(p, &v) || v > 65535) return Usage();
      daemon.port = static_cast<uint16_t>(v);
    } else if (const char* p = flag("--memory-limit-mb=")) {
      if (!ParseU64(p, &v)) return Usage();
      options.memory_limit_bytes = static_cast<size_t>(v) << 20;
    } else if (const char* p = flag("--cache-capacity=")) {
      if (!ParseU64(p, &v) || v == 0) return Usage();
      options.cache_capacity = v;
    } else if (const char* p = flag("--max-concurrent=")) {
      if (!ParseU64(p, &v)) return Usage();
      options.max_concurrent = v;
    } else if (const char* p = flag("--deadline-ms=")) {
      if (!ParseU64(p, &v)) return Usage();
      options.request_deadline_ms = static_cast<double>(v);
    } else if (const char* p = flag("--max-rounds=")) {
      if (!ParseU64(p, &v) || v == 0) return Usage();
      options.compile.max_rounds = v;
    } else if (const char* p = flag("--max-facts=")) {
      if (!ParseU64(p, &v) || v == 0) return Usage();
      options.compile.max_facts = v;
    } else if (const char* p = flag("--threads=")) {
      if (!ParseU64(p, &v) || v == 0) return Usage();
      options.compile.threads = v;
    } else if (std::strcmp(arg, "--trace") == 0) {
      options.tracing = true;
    } else if (const char* p = flag("--metrics-out=")) {
      if (*p == '\0') return Usage();
      metrics_out = p;
    } else if (const char* p = flag("--trace-out=")) {
      if (*p == '\0') return Usage();
      trace_out = p;
      options.tracing = true;
    } else {
      return Usage();
    }
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  ReasoningServer server(options);
  std::atomic<uint16_t> bound_port{0};
  daemon.bound_port = &bound_port;

  // The accept loop owns the main thread; a sidecar announces the bound
  // port (scripts parse this line to find a --port 0 daemon).
  std::atomic<bool> done{false};
  std::thread announcer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const uint16_t port = bound_port.load(std::memory_order_acquire);
      if (port != 0) {
        std::printf("listening on 127.0.0.1:%u\n", port);
        std::fflush(stdout);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  const bddfc::Status status = bddfc::serve::Serve(server, daemon, g_stop);
  done.store(true, std::memory_order_relaxed);
  announcer.join();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  // Post-drain artifacts: every request has folded, so these are final.
  if (metrics_out != nullptr) {
    std::ofstream out(metrics_out);
    if (out) out << server.ServerSnapshot().ToJson() << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                   metrics_out);
      return 1;
    }
  }
  if (trace_out != nullptr) {
    // One Chrome trace per shutdown: the first tenant's ring (sessions
    // each own a ring; the smoke script drives one tenant through it).
    std::ofstream out(trace_out);
    std::string json = "{\"traceEvents\":[]}";
    const std::vector<std::string> tenants = server.Tenants();
    if (!tenants.empty()) {
      json = server.GetSession(tenants.front()).tracer.ExportChromeJson();
    }
    if (out) out << json << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n", trace_out);
      return 1;
    }
  }
  return 0;
}
