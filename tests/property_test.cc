// Parameterized property suites: invariants checked across seeds and sizes
// (TEST_P / INSTANTIATE_TEST_SUITE_P sweeps).

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/chase/skeleton.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/classes/vtdag.h"
#include "bddfc/eval/containment.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/model_search.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/parser/parser.h"
#include "bddfc/reductions/reductions.h"
#include "bddfc/rewrite/rewriter.h"
#include "bddfc/types/coloring.h"
#include "bddfc/types/ptype.h"
#include "bddfc/types/quotient.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

// ---------------------------------------------------------------------------
// Chase invariants over random weakly-acyclic binary theories.
// ---------------------------------------------------------------------------

class ChaseProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaseProperty, FixpointImpliesModel) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, 4, 4, 2, GetParam());
  ASSERT_TRUE(IsWeaklyAcyclic(t));  // generator guarantees it
  // Instance: a small random graph over named constants.
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  Rng rng(GetParam() * 7 + 1);
  std::vector<TermId> consts;
  for (int i = 0; i < 4; ++i) {
    consts.push_back(sig->AddConstant("k" + std::to_string(i)));
  }
  for (int i = 0; i < 5; ++i) {
    d.AddFact(b0, {consts[rng.Uniform(4)], consts[rng.Uniform(4)]});
  }
  ChaseOptions opts;
  opts.max_rounds = 128;
  ChaseResult r = RunChase(t, d, opts);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_TRUE(r.fixpoint_reached);
  EXPECT_EQ(CheckModel(r.structure, t), std::nullopt);
  EXPECT_TRUE(r.structure.ContainsAllFactsOf(d));
}

TEST_P(ChaseProperty, FactsPerRoundMonotone) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, 4, 5, 3, GetParam());
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
  d.AddFact(b0, {a, b});
  ChaseResult r = RunChase(t, d);
  for (size_t i = 1; i < r.facts_per_round.size(); ++i) {
    EXPECT_GE(r.facts_per_round[i], r.facts_per_round[i - 1]);
  }
  // Null birth rounds are within the executed rounds.
  for (auto& [null_id, prov] : r.null_provenance) {
    (void)null_id;
    EXPECT_GE(prov.birth_round, 1);
    EXPECT_LE(static_cast<size_t>(prov.birth_round),
              std::max<size_t>(r.rounds_run, 1));
  }
}

TEST_P(ChaseProperty, RestrictedChaseNeverExceedsOblivious) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, 4, 4, 2, GetParam());
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
  d.AddFact(b0, {a, b});
  d.AddFact(b0, {b, a});
  ChaseOptions restricted;
  restricted.max_rounds = 32;
  ChaseOptions oblivious = restricted;
  oblivious.oblivious = true;
  ChaseResult r1 = RunChase(t, d, restricted);
  ChaseResult r2 = RunChase(t, d, oblivious);
  EXPECT_LE(r1.nulls_created, r2.nulls_created);
  // Both derive the same certain atoms over the original signature: the
  // restricted chase result maps homomorphically into the oblivious one
  // and vice versa.
  EXPECT_TRUE(HasHomomorphism(r1.structure, r2.structure));
  EXPECT_TRUE(HasHomomorphism(r2.structure, r1.structure));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Rewriting ≡ chase on terminating theories.
// ---------------------------------------------------------------------------

class RewriteEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalence, CertainAnswersMatchRewriting) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, 4, 4, 0, GetParam());
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  Rng rng(GetParam() + 100);
  std::vector<TermId> consts;
  for (int i = 0; i < 3; ++i) {
    consts.push_back(sig->AddConstant("k" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    d.AddFact(b0, {consts[rng.Uniform(3)], consts[rng.Uniform(3)]});
  }
  ChaseResult chase = RunChase(t, d);
  ASSERT_TRUE(chase.fixpoint_reached);

  // Probe every predicate with a fresh-variable atom query.
  for (PredId p = 0; p < sig->num_predicates(); ++p) {
    if (sig->arity(p) != 2) continue;
    ConjunctiveQuery q;
    q.atoms.push_back(Atom(p, {MakeVar(0), MakeVar(1)}));
    RewriteResult rw = RewriteQuery(t, q);
    if (!rw.status.ok()) continue;  // budget: skip, soundness-only
    EXPECT_EQ(Satisfies(chase.structure, q), SatisfiesUcq(d, rw.rewriting))
        << "pred " << sig->PredicateName(p) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalence,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ---------------------------------------------------------------------------
// Containment algebra on generated queries.
// ---------------------------------------------------------------------------

class ContainmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentProperty, ContainmentIsReflexiveAndTransitiveOnPaths) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  int k = GetParam();
  ConjunctiveQuery a = PathQuery(e, k);
  ConjunctiveQuery b = PathQuery(e, k + 1);
  ConjunctiveQuery c = PathQuery(e, k + 2);
  EXPECT_TRUE(IsContainedIn(a, a));
  EXPECT_TRUE(IsContainedIn(b, a));
  EXPECT_TRUE(IsContainedIn(c, b));
  EXPECT_TRUE(IsContainedIn(c, a));  // transitivity instance
}

TEST_P(ContainmentProperty, CoreIsIdempotentAndEquivalent) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  int k = GetParam();
  // A path with a redundant duplicated edge block.
  ConjunctiveQuery q = PathQuery(e, k);
  for (int i = 0; i < k; ++i) {
    q.atoms.push_back(Atom(e, {MakeVar(10 + i), MakeVar(i + 1)}));
  }
  ConjunctiveQuery core = CoreOf(q);
  EXPECT_TRUE(AreHomEquivalent(q, core));
  ConjunctiveQuery core2 = CoreOf(core);
  EXPECT_EQ(core.Normalized().NormalizedKey(sig),
            core2.Normalized().NormalizedKey(sig));
  // The duplicated block folds away entirely.
  EXPECT_EQ(core.atoms.size(), static_cast<size_t>(k));
}

TEST_P(ContainmentProperty, CycleQueriesFoldByDivisibility) {
  Signature sig;
  PredId e = std::move(sig.AddPredicate("e", 2)).ValueOrDie();
  int k = GetParam();
  // C_{2k} maps onto C_k (wrap twice): C_2k ⊇ ... containment holds one way.
  EXPECT_TRUE(IsContainedIn(CycleQuery(e, k), CycleQuery(e, 2 * k)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ContainmentProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Quotients: Lemma 1 across sizes and n.
// ---------------------------------------------------------------------------

struct QuotientCase {
  int chain;
  int n;
};

class QuotientProperty : public ::testing::TestWithParam<QuotientCase> {};

TEST_P(QuotientProperty, ProjectionIsHomomorphismAndLemma1Holds) {
  auto [len, n] = GetParam();
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, len);
  auto pn = ExactPtpPartition(chain, n);
  auto pn1 = ExactPtpPartition(chain, n - 1);
  ASSERT_TRUE(pn.ok() && pn1.ok());
  // Lemma 1: ≡_n refines ≡_{n-1}.
  EXPECT_TRUE(IsRefinementOf(pn.value(), pn1.value()));
  // The projection is a homomorphism; M_{n-1} is a homomorphic image of M_n.
  Quotient qn = BuildQuotient(chain, pn.value());
  Quotient qn1 = BuildQuotient(chain, pn1.value());
  EXPECT_TRUE(HasHomomorphism(qn.structure, qn1.structure));
  // And C maps onto both.
  EXPECT_TRUE(HasHomomorphism(chain, qn.structure));
}

TEST_P(QuotientProperty, BallRefinesExactAndAncestorIsCoarser) {
  auto [len, n] = GetParam();
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, len);
  auto exact = ExactPtpPartition(chain, n);
  ASSERT_TRUE(exact.ok());
  TypePartition ball = BallPartition(chain, n);
  EXPECT_TRUE(IsRefinementOf(ball, exact.value()));
  TypePartition anc = AncestorPathPartition(chain, n);
  // The ancestor partition ignores the downward direction, so the exact
  // partition refines it on chains.
  EXPECT_TRUE(IsRefinementOf(exact.value(), anc));
}

INSTANTIATE_TEST_SUITE_P(Cases, QuotientProperty,
                         ::testing::Values(QuotientCase{8, 2},
                                           QuotientCase{12, 2},
                                           QuotientCase{8, 3},
                                           QuotientCase{12, 3}),
                         [](const auto& info) {
                           return "chain" + std::to_string(info.param.chain) +
                                  "_n" + std::to_string(info.param.n);
                         });

// ---------------------------------------------------------------------------
// Skeletons of normalized theories are forests (Lemma 3) across seeds.
// ---------------------------------------------------------------------------

class SkeletonProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkeletonProperty, NormalizedSkeletonsAreForests) {
  auto sig = std::make_shared<Signature>();
  Theory raw = RandomAcyclicBinaryTheory(sig, 4, 5, 2, GetParam());
  auto norm = NormalizeSpade5(raw);
  ASSERT_TRUE(norm.ok()) << norm.status().ToString();
  ASSERT_TRUE(norm.value().IsSpade5Normal());
  Structure d(norm.value().signature_ptr());
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
  d.AddFact(b0, {a, b});
  ChaseOptions opts;
  opts.max_rounds = 16;
  ChaseResult chase = RunChase(norm.value(), d, opts);
  Skeleton s = SkeletonOf(norm.value(), d, chase);
  SkeletonAnalysis analysis = AnalyzeSkeleton(s.structure);
  EXPECT_TRUE(analysis.is_forest) << "seed " << GetParam();
  EXPECT_LE(analysis.max_degree, sig->num_predicates() + 1);  // Lemma 3(iv)
  // Colored skeletons admit natural colorings.
  EXPECT_TRUE(NaturalColoring(s.structure, 2).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkeletonProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// ---------------------------------------------------------------------------
// Pipeline vs brute force on tiny falsifiable queries.
// ---------------------------------------------------------------------------

class PipelineAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineAgreement, PipelineModelAlsoFoundByBruteForce) {
  auto parsed = ParseProgram(GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Program& p = parsed.value();
  auto q = ParseQuery("e(X, X)", p.theory.signature_ptr().get());
  ASSERT_TRUE(q.ok());
  const ConjunctiveQuery& query = q.value();
  FiniteModelResult pipeline =
      ConstructFiniteCounterModel(p.theory, p.instance, query);
  ModelSearchResult brute = FindFiniteModel(p.theory, p.instance, &query);
  // On these inputs both approaches must find a counter-model.
  EXPECT_TRUE(pipeline.status.ok()) << pipeline.status.ToString();
  EXPECT_TRUE(brute.found);
}

INSTANTIATE_TEST_SUITE_P(
    Theories, PipelineAgreement,
    ::testing::Values(
        "e(X, Y) -> exists Z: e(Y, Z). e(a, b).",
        "e(X, Y) -> exists Z: e(Y, Z). e(X, Y) -> u(Y). e(a, b).",
        "u(X) -> exists Z: e(X, Z). e(X, Y) -> u(Y). u(a)."));

// ---------------------------------------------------------------------------
// VTDAG invariants across structure families.
// ---------------------------------------------------------------------------

class VtdagProperty : public ::testing::TestWithParam<int> {};

TEST_P(VtdagProperty, ChainsAndTreesAreVtdagsOfAnySize) {
  int size = GetParam();
  auto sig1 = std::make_shared<Signature>();
  EXPECT_TRUE(CheckVtdag(MakeChain(sig1, size)).is_vtdag);
  auto sig2 = std::make_shared<Signature>();
  EXPECT_TRUE(CheckVtdag(MakeBinaryTree(sig2, std::min(size, 6))).is_vtdag);
  auto sig3 = std::make_shared<Signature>();
  EXPECT_FALSE(CheckVtdag(MakeCycle(sig3, size + 2)).is_vtdag);
}

TEST_P(VtdagProperty, PkSetsAreMonotoneInK) {
  int size = GetParam();
  auto sig = std::make_shared<Signature>();
  std::vector<TermId> elems;
  Structure chain = MakeChain(sig, size, &elems);
  TermId deep = elems.back();
  size_t prev = 0;
  for (int k = 0; k <= size + 1; ++k) {
    auto pk = PkSet(chain, deep, k);
    EXPECT_GE(pk.size(), prev);
    prev = pk.size();
  }
  EXPECT_EQ(prev, static_cast<size_t>(size + 1));  // saturates at the root
}

INSTANTIATE_TEST_SUITE_P(Sizes, VtdagProperty,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace bddfc
