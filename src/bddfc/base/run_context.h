// Per-session observability and fault state (DESIGN.md §2.15).
//
// Until the serving layer, MetricsRegistry::Global(), Tracer::Global() and
// FaultRegistry::Global() were process-lifetime singletons threaded
// implicitly through every engine. That is correct for a one-shot CLI and
// wrong for a multi-tenant daemon: two concurrent requests interleave
// their counters in one registry, a supervisor retry's registry reset
// wipes counters owned by other in-flight requests, and a chaos plan
// armed for one tenant fires in another's parse.
//
// A RunContext makes the destination explicit: it bundles the registry,
// tracer and fault registry ONE logical run publishes into. Engines reach
// it through the ExecutionContext they already take
// (ExecutionContext::SetRunContext / metrics_registry() / tracer()), so
// the refactor threads no new parameters through the engine APIs. A null
// field — and a null RunContext, the default — resolves to the process
// globals, which keeps the CLI tools and existing tests byte-identical.
//
// Ownership: a RunContext does not own what it points at. The session (or
// test) that builds it keeps the registries alive for the duration of
// every run that references it.

#ifndef BDDFC_BASE_RUN_CONTEXT_H_
#define BDDFC_BASE_RUN_CONTEXT_H_

#include "bddfc/base/faults.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

/// Where one logical run's observability output goes. Null fields fall
/// back to the process-wide singletons, so `RunContext{}` is exactly the
/// legacy behaviour.
struct RunContext {
  /// Registry the run's engines publish counters into (null = global).
  obs::MetricsRegistry* metrics = nullptr;
  /// Tracer the run's phase / run-level spans record to (null = global).
  obs::Tracer* tracer = nullptr;
  /// Fault registry chaos plans for this run are armed on (null = none;
  /// the governor's CheckFault then only sees a registry attached via
  /// ExecutionContext::SetFaultRegistry or the legacy veneer).
  FaultRegistry* faults = nullptr;

  obs::MetricsRegistry& metrics_or_global() const {
    return metrics != nullptr ? *metrics : obs::MetricsRegistry::Global();
  }
  obs::Tracer& tracer_or_global() const {
    return tracer != nullptr ? *tracer : obs::Tracer::Global();
  }
};

}  // namespace bddfc

#endif  // BDDFC_BASE_RUN_CONTEXT_H_
