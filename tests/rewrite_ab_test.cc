// A/B equivalence suite for the subsumption-pruned, parallel UCQ rewriter:
// on every paper-example theory and the E3 linear / sticky workloads, the
// pruned engine must produce a UCQ hom-equivalent (both containment
// directions) to the unpruned seed engine while keeping no more CQs, and
// ProbeBdd / ComputeKappa must report identical results at 1 and N threads.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "bddfc/classes/recognizers.h"
#include "bddfc/eval/containment.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

RewriteOptions Budget(size_t max_depth, size_t max_queries) {
  RewriteOptions o;
  o.max_depth = max_depth;
  o.max_queries = max_queries;
  return o;
}

/// The probe queries ProbeBdd explores: every rule body (frontier/head
/// variables free) plus one fresh atom per predicate.
std::vector<ConjunctiveQuery> ProbeQueries(const Theory& theory) {
  std::vector<ConjunctiveQuery> out;
  for (const Rule& r : theory.rules()) {
    ConjunctiveQuery body;
    body.atoms = r.body;
    body.answer_vars =
        r.IsExistential() ? r.FrontierVariables() : r.HeadVariables();
    out.push_back(std::move(body));
  }
  for (PredId p = 0; p < theory.sig().num_predicates(); ++p) {
    if (theory.sig().IsColor(p)) continue;
    std::vector<TermId> args;
    for (int i = 0; i < theory.sig().arity(p); ++i) args.push_back(MakeVar(i));
    ConjunctiveQuery q;
    q.atoms.push_back(Atom(p, args));
    out.push_back(std::move(q));
  }
  return out;
}

/// Runs the pruned engine against the unpruned seed engine on one query:
/// same verdict, no more kept CQs, and (when both saturate) hom-equivalent
/// rewritings with the same κ contribution.
void ExpectEnginesAgree(const Theory& theory, const ConjunctiveQuery& q,
                        RewriteOptions base) {
  RewriteOptions pruned = base;
  pruned.prune_subsumed = true;
  RewriteOptions seed = base;
  seed.prune_subsumed = false;
  RewriteResult a = RewriteQuery(theory, q, pruned);
  RewriteResult b = RewriteQuery(theory, q, seed);
  // Both engines explore the same query set (a subsumed candidate stays on
  // the frontier — its rewritings are not always covered by the subsuming
  // disjunct's); pruning only shrinks the output union.
  EXPECT_EQ(a.status.ok(), b.status.ok())
      << "pruned: " << a.status.ToString()
      << " seed: " << b.status.ToString();
  EXPECT_EQ(a.queries_generated, b.queries_generated);
  if (a.status.ok() && b.status.ok()) {
    EXPECT_TRUE(UcqContainedIn(a.rewriting, b.rewriting));
    EXPECT_TRUE(UcqContainedIn(b.rewriting, a.rewriting));
    EXPECT_EQ(a.max_variables, b.max_variables);
  } else if (a.status.ok()) {
    // Seed hit its budget: its partial disjunct set must still be covered
    // by the pruned engine's complete rewriting.
    EXPECT_TRUE(UcqContainedIn(b.rewriting, a.rewriting));
  }
}

void ExpectEnginesAgreeOnAllProbes(const Theory& theory,
                                   RewriteOptions base) {
  size_t i = 0;
  for (const ConjunctiveQuery& q : ProbeQueries(theory)) {
    SCOPED_TRACE("probe " + std::to_string(i++));
    ExpectEnginesAgree(theory, q, base);
  }
}

/// ProbeBdd must report identical (deterministic) results at any thread
/// count; wall times are the only fields allowed to differ.
void ExpectProbeDeterministicAcrossThreads(const Theory& theory,
                                           RewriteOptions base) {
  base.threads = 1;
  BddProbeResult one = ProbeBdd(theory, base);
  for (size_t threads : {2u, 8u}) {
    base.threads = threads;
    BddProbeResult many = ProbeBdd(theory, base);
    EXPECT_EQ(one.status.ToString(), many.status.ToString());
    EXPECT_EQ(one.certified, many.certified);
    EXPECT_EQ(one.kappa, many.kappa);
    EXPECT_EQ(one.max_depth_seen, many.max_depth_seen);
    EXPECT_EQ(one.total_disjuncts, many.total_disjuncts);
    EXPECT_EQ(one.queries_generated, many.queries_generated);
    EXPECT_EQ(one.stats.TotalCandidates(), many.stats.TotalCandidates());
    EXPECT_EQ(one.stats.TotalKeyDeduped(), many.stats.TotalKeyDeduped());
    EXPECT_EQ(one.stats.TotalSubsumptionPruned(),
              many.stats.TotalSubsumptionPruned());
    EXPECT_EQ(one.stats.hom_checks, many.stats.hom_checks);
    EXPECT_EQ(one.stats.hom_checks_skipped, many.stats.hom_checks_skipped);
  }
}

// ---------------------------------------------------------------------------
// Paper-example theories.
// ---------------------------------------------------------------------------

TEST(RewriteAbTest, PaperExampleTheories) {
  struct Case {
    const char* name;
    Program p;
  };
  Case cases[] = {{"Example1", Example1()},
                  {"RemarkThree", RemarkThreeTheory()},
                  {"Example7", Example7()},
                  {"Example9", Example9()},
                  {"Section54", Section54()},
                  {"Section55", Section55()},
                  {"GuardedSample", GuardedSample()}};
  for (Case& c : cases) {
    SCOPED_TRACE(c.name);
    ExpectEnginesAgreeOnAllProbes(c.p.theory, Budget(10, 2000));
  }
}

TEST(RewriteAbTest, PaperExampleProbesAcrossThreads) {
  for (Program p : {Example1(), Example7(), Example9(), Section55()}) {
    ExpectProbeDeterministicAcrossThreads(p.theory, Budget(10, 2000));
  }
}

// ---------------------------------------------------------------------------
// E3 workloads: linear theories, the sticky (non-linear) theory, and path
// queries on the successor theories the E3 table sweeps.
// ---------------------------------------------------------------------------

TEST(RewriteAbTest, E3LinearWorkloads) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto sig = std::make_shared<Signature>();
    Theory t = RandomLinearTheory(sig, 3, 4, seed);
    ASSERT_TRUE(IsLinear(t));
    ExpectEnginesAgreeOnAllProbes(t, Budget(32, 5000));
    ExpectProbeDeterministicAcrossThreads(t, Budget(32, 5000));
  }
}

TEST(RewriteAbTest, E3StickyWorkload) {
  // Sticky but not linear: the join variable Y stays unmarked (it appears
  // in the head), the marked X/Z each occur once.
  Program p = MustParse(R"(
    a(X, Y), b(Y, Z) -> exists W: c(Y, W).
    c(X, Y) -> d(X, Y).
  )");
  ASSERT_TRUE(CheckSticky(p.theory).is_sticky);
  ASSERT_FALSE(IsLinear(p.theory));
  ExpectEnginesAgreeOnAllProbes(p.theory, Budget(16, 4000));
  ExpectProbeDeterministicAcrossThreads(p.theory, Budget(16, 4000));
}

TEST(RewriteAbTest, E3PathQueries) {
  Program succ = MustParse("e(X, Y) -> exists Z: e(Y, Z).");
  Program succ_source = MustParse(R"(
    u(X) -> exists Z: e(X, Z).
    e(X, Y) -> u(Y).
  )");
  for (Program* p : {&succ, &succ_source}) {
    PredId e = std::move(p->theory.sig().FindPredicate("e")).ValueOrDie();
    for (int k = 1; k <= 5; ++k) {
      SCOPED_TRACE("k=" + std::to_string(k));
      ExpectEnginesAgree(p->theory, PathQuery(e, k), Budget(14, 4000));
    }
  }
}

TEST(RewriteAbTest, PrunedEngineKeepsStrictlyFewerDisjunctsOnPaths) {
  // On the E3 transitivity workload every Boolean k-path disjunct folds
  // into the edge disjunct, so pruning keeps the output union tiny. Both
  // engines explore the same query set and exhaust the same budget here
  // (transitive closure is not FO-rewritable): frontier pruning would be
  // unsound — a subsumed candidate's rewritings are not always covered by
  // the subsuming disjunct's — so only the kept set shrinks.
  Program tr = MustParse("e(X, Y), e(Y, Z) -> e(X, Z).");
  PredId e = std::move(tr.theory.sig().FindPredicate("e")).ValueOrDie();
  RewriteOptions pruned = Budget(12, 3000);
  RewriteOptions seed = Budget(12, 3000);
  seed.prune_subsumed = false;
  RewriteResult a = RewriteQuery(tr.theory, PathQuery(e, 4), pruned);
  RewriteResult b = RewriteQuery(tr.theory, PathQuery(e, 4), seed);
  EXPECT_FALSE(a.status.ok());
  EXPECT_FALSE(b.status.ok());
  EXPECT_EQ(a.queries_generated, b.queries_generated);
  EXPECT_LT(a.rewriting.size(), b.rewriting.size());
  EXPECT_GT(a.stats.TotalSubsumptionPruned(), 0u);

  // And the pre-filter must absorb a nontrivial share of the probe pairs
  // on a multi-predicate workload (transitivity is single-predicate, so
  // every pair passes the filter there).
  Program ss = MustParse(R"(
    u(X) -> exists Z: e(X, Z).
    e(X, Y) -> u(Y).
  )");
  PredId e2 = std::move(ss.theory.sig().FindPredicate("e")).ValueOrDie();
  RewriteResult c = RewriteQuery(ss.theory, PathQuery(e2, 4), Budget(14, 4000));
  ASSERT_TRUE(c.status.ok());
  EXPECT_GT(c.stats.hom_checks_skipped, 0u);
}

TEST(RewriteAbTest, NonSaturatingTheoryAgreesOnVerdict) {
  // Transitive closure is not FO-rewritable at bounded depth: both engines
  // must report Unknown, with the pruned engine keeping no more queries.
  Program p = MustParse("e(X, Y), e(Y, Z) -> e(X, Z).");
  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q;
  q.answer_vars = {MakeVar(0), MakeVar(1)};
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  RewriteOptions base = Budget(4, 300);
  ExpectEnginesAgree(p.theory, q, base);

  // On the Boolean edge query every k-path candidate is subsumed by the
  // edge disjunct, so the pruned output union stays that single disjunct
  // even though the frontier (correctly) never dries up.
  RewriteResult boolean_pruned = RewriteQuery(p.theory, PathQuery(e, 1), base);
  EXPECT_FALSE(boolean_pruned.status.ok());
  ASSERT_EQ(boolean_pruned.rewriting.size(), 1u);
  EXPECT_EQ(boolean_pruned.rewriting[0].atoms.size(), 1u);
}

TEST(RewriteAbTest, KappaWallMsBoundedByMeasuredWallClock) {
  // The seed bug: RewriteStats::operator+= summed the per-rule wall times,
  // so a parallel kappa fan-out reported a CPU-style total under a "wall"
  // label — at 8 threads, several times the clock on the wall. Run the
  // fan-out bracketed by a steady_clock interval that strictly encloses
  // it: TotalWallMs() must never exceed the measured elapsed time, at any
  // thread count. TotalAccumMs() keeps the accumulated (summed) view and
  // is allowed to exceed wall when workers overlap.
  for (Program p : {Example7(), Section55()}) {
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      RewriteOptions base = Budget(10, 1500);
      base.threads = threads;
      auto t0 = std::chrono::steady_clock::now();
      KappaResult k = ComputeKappa(p.theory, base);
      double elapsed_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      EXPECT_GT(k.stats.TotalWallMs(), 0.0);
      EXPECT_LE(k.stats.TotalWallMs(), elapsed_ms);
      EXPECT_GE(k.stats.TotalAccumMs(), 0.0);
    }
  }
}

TEST(RewriteAbTest, KappaDeterministicAcrossThreads) {
  for (Program p : {Example7(), Section55()}) {
    RewriteOptions base = Budget(12, 3000);
    base.threads = 1;
    KappaResult one = ComputeKappa(p.theory, base);
    base.threads = 8;
    KappaResult many = ComputeKappa(p.theory, base);
    EXPECT_EQ(one.status.ToString(), many.status.ToString());
    EXPECT_EQ(one.kappa, many.kappa);
    EXPECT_EQ(one.stats.hom_checks, many.stats.hom_checks);
  }
}

}  // namespace
}  // namespace bddfc
