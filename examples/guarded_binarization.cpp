// §5.6: guarded programs are binary in disguise. Transforms a guarded
// non-binary program into an equivalent binary one (parent links F_i,
// witness edges E_r, monadic encodings Q_ī) and reports the blowup.
//
// Build & run:  ./build/examples/guarded_binarization

#include <cstdio>

#include "bddfc/classes/recognizers.h"
#include "bddfc/guarded/binarize.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/paper_examples.h"

int main() {
  using namespace bddfc;

  Program p = GuardedSample();
  std::printf("guarded input (%zu rules, max arity %d):\n%s\n",
              p.theory.size(), p.theory.sig().MaxArity(),
              p.theory.ToString().c_str());
  std::printf("guarded=%s binary=%s\n\n", IsGuarded(p.theory) ? "yes" : "no",
              IsBinaryTheory(p.theory) ? "yes" : "no");

  Result<GuardedBinarization> bin = GuardedToBinary(p.theory);
  if (!bin.ok()) {
    std::printf("transformation failed: %s\n", bin.status().ToString().c_str());
    return 1;
  }
  const GuardedBinarization& g = bin.value();

  int max_arity_out = 0;
  for (const Rule& r : g.theory.rules()) {
    for (const Atom& a : r.body) {
      max_arity_out = std::max(max_arity_out, (int)a.args.size());
    }
    for (const Atom& a : r.head) {
      max_arity_out = std::max(max_arity_out, (int)a.args.size());
    }
  }

  std::printf("binary output: %zu rules (blowup x%.1f), max arity used %d\n",
              g.theory.size(),
              double(g.theory.size()) / double(p.theory.size()),
              max_arity_out);
  std::printf("  parent links: %zu\n", g.parent_links.size() - 1);
  std::printf("  witness edges (one per TGD): %zu\n", g.witness_edge.size());
  std::printf("  TGP markers: %zu\n", g.tgp_marker.size());
  std::printf("  monadic encodings: %zu\n\n", g.monadic.size());

  std::printf("first 12 rules of the binary program:\n");
  size_t shown = 0;
  for (const Rule& r : g.theory.rules()) {
    std::printf("  %s.\n", r.ToString(g.theory.sig()).c_str());
    if (++shown == 12) break;
  }
  if (g.theory.size() > shown) {
    std::printf("  ... (%zu more)\n", g.theory.size() - shown);
  }
  return 0;
}
