// Tests for the retrying pipeline supervisor (DESIGN.md §2.14): recovery
// from injected fail-stop faults must be byte-identical to the fault-free
// run (including invented null TermIds, via signature rollback), the
// degradation ladder must walk plans-off → vsink-off → serial in order,
// an exhausted retry budget must still return a complete Chase^L prefix
// under kInternal, backoff must stay inside the parent deadline, and
// recovered runs must report clean metrics / phase notes (no
// double-counted publications from failed attempts).

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "bddfc/base/faults.h"
#include "bddfc/base/governor.h"
#include "bddfc/base/timescale.h"
#include "bddfc/chase/chase.h"
#include "bddfc/chase/supervisor.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/parser/parser.h"

namespace bddfc {
namespace {

// Terminates in 3 rounds with 3 invented nulls — enough structure that a
// fault after round 1 aborts *after* nulls were interned, so recovery
// byte-identity genuinely exercises the signature rollback.
constexpr char kProgram[] = R"(
  s(X) -> exists Y: e(X, Y).
  e(X, Y) -> r(Y, X).
  s(a). s(b). s(c).
)";

Program Parse() {
  auto parsed = ParseProgram(kProgram);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed.value());
}

/// Richest configuration: every ladder rung below it is a real change.
ChaseOptions RichOptions() {
  ChaseOptions o;
  o.engine = ChaseEngine::kParallel;
  o.threads = 4;
  o.compiled_plans = true;
  o.vectorized_sink = true;
  return o;
}

/// Byte-identity serialization (mirrors chase_ab_test): row order, raw
/// TermIds, null provenance, per-round growth.
std::string Dump(const ChaseResult& r) {
  std::string s;
  s += "status=" + r.status.ToString() + " fixpoint=";
  s += r.fixpoint_reached ? '1' : '0';
  s += " rounds=" + std::to_string(r.rounds_run);
  s += " nulls=" + std::to_string(r.nulls_created);
  s += "\nfacts_per_round:";
  for (size_t n : r.facts_per_round) s += " " + std::to_string(n);
  s += "\n";
  for (PredId p = 0; p < r.structure.NumStoredPredicates(); ++p) {
    s += "pred " + std::to_string(p) + ":";
    for (const auto& row : r.structure.Rows(p)) {
      s += " (";
      for (TermId t : row) s += std::to_string(t) + ",";
      s += ")";
    }
    s += "\n";
  }
  std::map<TermId, NullProvenance> prov(r.null_provenance.begin(),
                                        r.null_provenance.end());
  for (const auto& [null_id, np] : prov) {
    s += "null " + std::to_string(null_id) + ": r" +
         std::to_string(np.birth_round) + " rule" +
         std::to_string(np.rule_index) + "\n";
  }
  return s;
}

TEST(SupervisorTest, FaultFreeRunIsOneAttemptAndMatchesPlainChase) {
  Program a = Parse();
  ChaseResult plain = RunChase(a.theory, a.instance, RichOptions());
  ASSERT_TRUE(plain.status.ok());
  ASSERT_TRUE(plain.fixpoint_reached);
  ASSERT_EQ(plain.nulls_created, 3u);

  Program b = Parse();
  SupervisedChase s =
      RunChaseSupervised(b.theory, b.instance, RichOptions(), {});
  EXPECT_EQ(s.attempts, 1u);
  EXPECT_FALSE(s.recovered);
  EXPECT_TRUE(s.degradations.empty());
  EXPECT_EQ(Dump(s.result), Dump(plain));
}

TEST(SupervisorTest, RecoversByteIdenticallyIncludingNullTermIds) {
  Program a = Parse();
  ChaseResult plain = RunChase(a.theory, a.instance, RichOptions());
  ASSERT_TRUE(plain.status.ok());

  // after-n=1 fires at the round-2 boundary: round 1 has already interned
  // 3 nulls, so the retry must roll the signature back or every null in
  // the recovered run would shift by 3.
  Program b = Parse();
  ExecutionContext ctx;
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound,
           .schedule = FaultSchedule::kAfterN,
           .n = 1,
           .max_fires = 1});
  ctx.SetFaultRegistry(&reg);
  SupervisorOptions sup;
  sup.context = &ctx;
  sup.backoff_ms = 0.0;
  SupervisedChase s = RunChaseSupervised(b.theory, b.instance, RichOptions(), sup);

  EXPECT_EQ(reg.FireCount(faults::kChaseRound), 1u);
  EXPECT_EQ(s.attempts, 2u);
  EXPECT_TRUE(s.recovered);
  ASSERT_EQ(s.degradations.size(), 1u);
  EXPECT_EQ(s.degradations[0], "plans-off");
  EXPECT_TRUE(s.result.status.ok());
  EXPECT_EQ(Dump(s.result), Dump(plain));
  // The parent context stays clean: the fault tripped only child attempts.
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kNone);
  EXPECT_TRUE(ctx.report().open_phases.empty());
}

TEST(SupervisorTest, DegradationLadderWalksEveryRungInOrder) {
  Program a = Parse();
  ChaseResult plain = RunChase(a.theory, a.instance, RichOptions());

  // Three fires: attempts 1-3 each trip at the first round boundary, so
  // attempt 4 runs fully degraded (interpretive Matcher, hash sink,
  // serial engine) and must still be byte-identical.
  Program b = Parse();
  ExecutionContext ctx;
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound,
           .schedule = FaultSchedule::kAfterN,
           .n = 0,
           .max_fires = 3});
  ctx.SetFaultRegistry(&reg);
  SupervisorOptions sup;
  sup.context = &ctx;
  sup.backoff_ms = 0.0;
  SupervisedChase s = RunChaseSupervised(b.theory, b.instance, RichOptions(), sup);

  EXPECT_EQ(s.attempts, 4u);
  EXPECT_TRUE(s.recovered);
  ASSERT_EQ(s.degradations.size(), 3u);
  EXPECT_EQ(s.degradations[0], "plans-off");
  EXPECT_EQ(s.degradations[1], "vsink-off");
  EXPECT_EQ(s.degradations[2], "serial");
  EXPECT_TRUE(s.result.status.ok());
  EXPECT_EQ(Dump(s.result), Dump(plain));
}

TEST(SupervisorTest, ExhaustedRetryBudgetReturnsCompletePrefix) {
  // Unlimited fires past hit 2 of the (cross-attempt) chase.round hit
  // counter: attempt 1 completes rounds 1-2 and trips at the round-3
  // boundary; every retry's first round boundary is already past n, so no
  // attempt can recover. The supervisor gives up after max_retries and
  // must hand back the last attempt's complete prefix (here: just the
  // instance facts) under kInternal — never a torn half-round.
  Program p = Parse();
  ExecutionContext ctx;
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound,
           .schedule = FaultSchedule::kAfterN,
           .n = 2,
           .max_fires = 0});
  ctx.SetFaultRegistry(&reg);
  SupervisorOptions sup;
  sup.context = &ctx;
  sup.max_retries = 2;
  sup.backoff_ms = 0.0;
  SupervisedChase s = RunChaseSupervised(p.theory, p.instance, RichOptions(), sup);

  EXPECT_EQ(s.attempts, 3u);
  EXPECT_FALSE(s.recovered);
  EXPECT_EQ(s.result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(s.result.report.exhausted, ResourceKind::kFault);
  EXPECT_TRUE(s.result.report.partial_result);
  EXPECT_EQ(s.result.rounds_run, 0u);
  ASSERT_EQ(s.result.facts_per_round.size(), 1u);
  EXPECT_EQ(s.result.structure.NumFacts(), s.result.facts_per_round.back());
  EXPECT_EQ(s.result.structure.NumFacts(), 3u);
}

TEST(SupervisorTest, RetryBackoffStaysInsideTheParentDeadline) {
  // A fault that fires at every round boundary forever, a huge retry
  // budget, and aggressive backoff growth: the only thing that may stop
  // the loop is the deadline, and backoff is carved from the remaining
  // budget (remaining/4 cap), so the whole supervised run must end within
  // a small multiple of the deadline instead of sleeping past it.
  const int deadline_ms = ScaledMs(300);
  Program p = Parse();
  ExecutionContext ctx;
  ctx.SetDeadlineAfterMs(deadline_ms);
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound,
           .schedule = FaultSchedule::kAfterN,
           .n = 0,
           .max_fires = 0});
  ctx.SetFaultRegistry(&reg);
  SupervisorOptions sup;
  sup.context = &ctx;
  sup.max_retries = 1000000;
  sup.backoff_ms = 50.0;
  sup.max_backoff_ms = 1e9;

  auto t0 = std::chrono::steady_clock::now();
  SupervisedChase s = RunChaseSupervised(p.theory, p.instance, RichOptions(), sup);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  EXPECT_GT(s.attempts, 1u);
  EXPECT_FALSE(s.result.status.ok());
  EXPECT_LT(elapsed_ms, 3.0 * deadline_ms)
      << "supervisor slept past the deadline";
}

TEST(SupervisorTest, RecoveredRunPublishesCleanMetricsAndPhases) {
  // Regression test: the failed attempt publishes chase counters before
  // its trip surfaces; the per-retry metrics reset must wipe them so a
  // recovered run reports exactly one chase, and the supervisor's own
  // counters must be published after the loop (a reset inside the loop
  // must not eat them).
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  metrics.Reset();

  Program p = Parse();
  ExecutionContext ctx;
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound,
           .schedule = FaultSchedule::kAfterN,
           .n = 1,
           .max_fires = 1});
  ctx.SetFaultRegistry(&reg);
  SupervisorOptions sup;
  sup.context = &ctx;
  sup.backoff_ms = 0.0;
  SupervisedChase s = RunChaseSupervised(p.theory, p.instance, RichOptions(), sup);
  ASSERT_TRUE(s.recovered);
  ASSERT_EQ(s.attempts, 2u);

  EXPECT_EQ(metrics.GetCounter("bddfc.chase.runs")->Value(), 1u)
      << "failed attempt's publication leaked through the retry reset";
  EXPECT_EQ(metrics.GetCounter("bddfc.supervisor.retries")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("bddfc.supervisor.recoveries")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("bddfc.supervisor.degradations")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("bddfc.supervisor.gave_up")->Value(), 0u);

  metrics.set_enabled(false);
  metrics.Reset();

  // The parent report carries one retry note and no dangling open phase —
  // a recovered run must not read as a half-finished one.
  ResourceReport report = ctx.report();
  EXPECT_TRUE(report.open_phases.empty());
  size_t retry_notes = 0;
  for (const PhaseProgress& phase : report.phases) {
    if (phase.phase == "supervisor.retry") ++retry_notes;
  }
  EXPECT_EQ(retry_notes, 1u);
}

TEST(SupervisorTest, RetryResetIsScopedToTheRunsRegistry) {
  // Serving regression (DESIGN.md §2.15): the per-retry metrics reset
  // wipes the RUN's registry, resolved through the context's RunContext —
  // never the process-wide one. A retry storm in one session must not
  // erase counters a concurrent session is accumulating. (With the old
  // Global()-based reset this test races: the supervised thread's resets
  // interleave with the plain thread's publications.)
  constexpr int kPlainRuns = 8;

  // Serial baseline for what one clean chase publishes.
  obs::MetricsRegistry baseline;
  baseline.set_enabled(true);
  {
    Program p = Parse();
    ExecutionContext ctx;
    RunContext rc;
    rc.metrics = &baseline;
    ctx.SetRunContext(&rc);
    ChaseOptions o = RichOptions();
    o.context = &ctx;
    RunChase(p.theory, p.instance, o);
  }
  const uint64_t runs_per_chase = baseline.GetCounter("bddfc.chase.runs")->Value();
  const uint64_t rounds_per_chase =
      baseline.GetCounter("bddfc.chase.rounds")->Value();
  ASSERT_EQ(runs_per_chase, 1u);

  obs::MetricsRegistry session_a, session_b;
  session_a.set_enabled(true);
  session_b.set_enabled(true);

  std::thread supervised([&] {
    // Session A: every chase attempt fails round 2 once, so the
    // supervisor retries (and resets session A's registry) repeatedly.
    for (int i = 0; i < 4; ++i) {
      Program p = Parse();
      ExecutionContext ctx;
      FaultRegistry faults;
      faults.Arm({.site = faults::kChaseRound,
                  .schedule = FaultSchedule::kAfterN,
                  .n = 1,
                  .max_fires = 1});
      RunContext rc;
      rc.metrics = &session_a;
      rc.faults = &faults;
      ctx.SetRunContext(&rc);
      SupervisorOptions sup;
      sup.context = &ctx;
      sup.backoff_ms = 0.0;
      SupervisedChase s =
          RunChaseSupervised(p.theory, p.instance, RichOptions(), sup);
      EXPECT_TRUE(s.recovered);
    }
  });
  std::thread plain([&] {
    // Session B: clean chases publishing into its own registry.
    for (int i = 0; i < kPlainRuns; ++i) {
      Program p = Parse();
      ExecutionContext ctx;
      RunContext rc;
      rc.metrics = &session_b;
      ctx.SetRunContext(&rc);
      ChaseOptions o = RichOptions();
      o.context = &ctx;
      RunChase(p.theory, p.instance, o);
    }
  });
  supervised.join();
  plain.join();

  // Session B kept every publication: nothing was reset out from under it.
  EXPECT_EQ(session_b.GetCounter("bddfc.chase.runs")->Value(),
            kPlainRuns * runs_per_chase);
  EXPECT_EQ(session_b.GetCounter("bddfc.chase.rounds")->Value(),
            kPlainRuns * rounds_per_chase);
  // Session A's last supervised run left exactly one clean chase (the
  // reset wiped the failed attempt, then the recovery published once).
  EXPECT_EQ(session_a.GetCounter("bddfc.chase.runs")->Value(), 1u);
}

TEST(SupervisorTest, GivingUpIsCountedOnce) {
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.set_enabled(true);
  metrics.Reset();

  Program p = Parse();
  ExecutionContext ctx;
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound,
           .schedule = FaultSchedule::kAfterN,
           .n = 0,
           .max_fires = 0});
  ctx.SetFaultRegistry(&reg);
  SupervisorOptions sup;
  sup.context = &ctx;
  sup.max_retries = 3;
  sup.backoff_ms = 0.0;
  SupervisedChase s = RunChaseSupervised(p.theory, p.instance, RichOptions(), sup);

  EXPECT_EQ(s.result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(metrics.GetCounter("bddfc.supervisor.gave_up")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("bddfc.supervisor.retries")->Value(), 3u);
  EXPECT_EQ(metrics.GetCounter("bddfc.supervisor.recoveries")->Value(), 0u);

  metrics.set_enabled(false);
  metrics.Reset();
}

}  // namespace
}  // namespace bddfc
