// Positive first-order (UCQ) rewriting and the BDD property (Def. 2).
//
// A theory T is BDD iff every CQ Φ has a UCQ rewriting Φ′ with
// Chase(D, T) ⊨ Φ  ⇔  D ⊨ Φ′ for all instances D. We compute Φ′ by
// backward-chaining over the rules (the standard procedure for single-head
// TGDs, in the style of Cali–Gottlob–Pieris' XRewrite): a rewriting step
// resolves a query atom against a rule head under an applicability
// condition on existential variables; a factorization step unifies two
// query atoms to unblock further rewritings.
//
// BDD is undecidable, so the API is a budgeted semi-decision: when the
// exploration saturates, the finite UCQ is a *certificate* that the input
// query is rewritable (and, probed over all rule bodies, evidence of BDD);
// when a budget trips, the result is Unknown.

#ifndef BDDFC_REWRITE_REWRITER_H_
#define BDDFC_REWRITE_REWRITER_H_

#include <cstddef>

#include "bddfc/base/status.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// Budgets for the rewriting exploration.
struct RewriteOptions {
  /// Maximum BFS depth (number of rewriting levels).
  size_t max_depth = 24;
  /// Maximum number of distinct CQs to generate.
  size_t max_queries = 20000;
  /// Drop generated CQs with more atoms than this (0 = unlimited). A CQ
  /// that would exceed the cap makes the result Unknown rather than
  /// silently incomplete.
  size_t max_atoms_per_query = 0;
  /// Minimize the final UCQ by pairwise subsumption.
  bool minimize = true;
};

/// Outcome of a rewriting run.
struct RewriteResult {
  /// OK: exploration saturated; `rewriting` is the complete UCQ Φ′.
  /// Unknown: a budget tripped; `rewriting` is sound but maybe incomplete.
  Status status = Status::OK();
  UnionOfCQs rewriting;
  /// Number of BFS levels until saturation — a derivation-depth bound
  /// certificate k_Φ (each level undoes one chase step).
  size_t depth_reached = 0;
  /// Distinct CQs generated during exploration (before minimization).
  size_t queries_generated = 0;
  /// Maximum number of variables over the disjuncts of `rewriting`
  /// (the §3.3 κ contribution of this query).
  int max_variables = 0;
};

/// Computes the UCQ rewriting of `query` under `theory`.
RewriteResult RewriteQuery(const Theory& theory, const ConjunctiveQuery& query,
                           const RewriteOptions& options = {});

/// §3.3's κ for a theory: rewrite the body of every rule (as a Boolean CQ
/// over its body variables) and take the maximum variable count across all
/// disjuncts of all rewritings.
struct KappaResult {
  Status status = Status::OK();  ///< Unknown when any body rewriting tripped
  int kappa = 0;
};
KappaResult ComputeKappa(const Theory& theory,
                         const RewriteOptions& options = {});

/// Budgeted BDD probe: rewrites every rule body and a set of probe queries
/// (single atoms per predicate). All saturated => "BDD-certified at this
/// budget"; any Unknown => Unknown.
struct BddProbeResult {
  Status status = Status::OK();
  bool certified = false;
  int kappa = 0;
  size_t max_depth_seen = 0;
  size_t total_disjuncts = 0;
};
BddProbeResult ProbeBdd(const Theory& theory,
                        const RewriteOptions& options = {});

/// Empirical derivation depth: the smallest i with Chase^i(D, T) ⊨ q, or
/// -1 if not derived within `max_rounds`.
int DerivationDepth(const Theory& theory, const Structure& instance,
                    const ConjunctiveQuery& q, size_t max_rounds = 64);

}  // namespace bddfc

#endif  // BDDFC_REWRITE_REWRITER_H_
