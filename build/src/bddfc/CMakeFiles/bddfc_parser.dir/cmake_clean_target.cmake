file(REMOVE_RECURSE
  "libbddfc_parser.a"
)
