// Conjunctive queries (CQs) and unions of conjunctive queries (UCQs).
//
// All queries in the paper are positive Boolean CQs; we additionally keep an
// optional tuple of answer variables so the same type serves rule bodies,
// rewritings Φ′ and typed queries Ψ(x̄, y).

#ifndef BDDFC_CORE_QUERY_H_
#define BDDFC_CORE_QUERY_H_

#include <string>
#include <vector>

#include "bddfc/core/atom.h"
#include "bddfc/core/signature.h"
#include "bddfc/core/term.h"

namespace bddfc {

/// A conjunction of atoms, existentially closed except for `answer_vars`.
struct ConjunctiveQuery {
  std::vector<Atom> atoms;
  /// Free (answer) variables; empty for Boolean queries.
  std::vector<TermId> answer_vars;

  ConjunctiveQuery() = default;
  explicit ConjunctiveQuery(std::vector<Atom> a,
                            std::vector<TermId> free = {})
      : atoms(std::move(a)), answer_vars(std::move(free)) {}

  bool operator==(const ConjunctiveQuery& o) const {
    return atoms == o.atoms && answer_vars == o.answer_vars;
  }

  /// All distinct variables in first-occurrence order (answer vars first).
  std::vector<TermId> Variables() const;

  /// Number of distinct variables.
  int NumVariables() const { return static_cast<int>(Variables().size()); }

  /// All distinct constants appearing in the query.
  std::vector<TermId> Constants() const;

  /// A copy whose variables are renamed to fresh ids drawn from
  /// *next_var, *next_var+1, ... (increments the counter).
  ConjunctiveQuery RenamedApart(int32_t* next_var) const;

  /// A normalized copy: atoms sorted and variables renumbered by first
  /// occurrence, iterated to a fixpoint. Equal normalized copies imply
  /// equivalent queries (the converse needs homomorphic equivalence).
  ConjunctiveQuery Normalized() const;

  /// Key usable for hashing/dedup of normalized queries.
  std::string NormalizedKey(const Signature& sig) const;

  /// Signature-independent dedup key: a numeric serialization of the
  /// Normalized() form. Equal keys iff the normal forms are identical.
  /// Cheaper than NormalizedKey (no name lookups) and safe to compute
  /// concurrently (touches no shared state).
  std::string CanonicalKey() const;

  std::string ToString(const Signature& sig) const;
};

/// A union of conjunctive queries (e.g. a positive FO rewriting Φ′).
using UnionOfCQs = std::vector<ConjunctiveQuery>;

/// Renders a UCQ as "CQ1  OR  CQ2  OR ...".
std::string UcqToString(const UnionOfCQs& ucq, const Signature& sig);

}  // namespace bddfc

#endif  // BDDFC_CORE_QUERY_H_
