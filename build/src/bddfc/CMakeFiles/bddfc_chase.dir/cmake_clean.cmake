file(REMOVE_RECURSE
  "CMakeFiles/bddfc_chase.dir/chase/chase.cc.o"
  "CMakeFiles/bddfc_chase.dir/chase/chase.cc.o.d"
  "CMakeFiles/bddfc_chase.dir/chase/seminaive.cc.o"
  "CMakeFiles/bddfc_chase.dir/chase/seminaive.cc.o.d"
  "CMakeFiles/bddfc_chase.dir/chase/skeleton.cc.o"
  "CMakeFiles/bddfc_chase.dir/chase/skeleton.cc.o.d"
  "libbddfc_chase.a"
  "libbddfc_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
