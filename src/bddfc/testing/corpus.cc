#include "bddfc/testing/corpus.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace bddfc {

namespace {

/// Strips leading/trailing whitespace.
std::string Trim(std::string_view v) {
  size_t b = v.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) return "";
  size_t e = v.find_last_not_of(" \t\r\n");
  return std::string(v.substr(b, e - b + 1));
}

/// The note is one header line: newlines collapse to "; ".
std::string OneLine(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\n' || c == '\r') {
      if (!out.empty() && out.back() != ' ') out += "; ";
    } else {
      out += c;
    }
  }
  return Trim(out);
}

}  // namespace

std::string CorpusEntryToText(const CorpusEntry& entry) {
  std::string out = "% bddfc-corpus\n";
  out += "% oracle: " + entry.oracle + "\n";
  if (!entry.family.empty()) out += "% family: " + entry.family + "\n";
  if (entry.seed != 0) {
    out += "% seed: " + std::to_string(entry.seed) + "\n";
  }
  if (!entry.fault.empty()) out += "% fault: " + entry.fault + "\n";
  if (entry.chaos != 0) {
    out += "% chaos: " + std::to_string(entry.chaos) + "\n";
    if (entry.chaos_seed != 0) {
      out += "% chaos-seed: " + std::to_string(entry.chaos_seed) + "\n";
    }
  }
  if (!entry.note.empty()) out += "% note: " + OneLine(entry.note) + "\n";
  out += entry.program;
  if (!entry.program.empty() && entry.program.back() != '\n') out += "\n";
  return out;
}

Result<CorpusEntry> ParseCorpusText(std::string_view text) {
  CorpusEntry entry;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] != '%' && trimmed[0] != '#') {
      // First program statement: everything from here on is the program.
      break;
    }
    std::string_view body = std::string_view(trimmed).substr(1);
    size_t colon = body.find(':');
    if (colon == std::string_view::npos) continue;
    std::string key = Trim(body.substr(0, colon));
    std::string value = Trim(body.substr(colon + 1));
    if (key == "oracle") {
      entry.oracle = value;
    } else if (key == "family") {
      entry.family = value;
    } else if (key == "seed") {
      entry.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "fault") {
      entry.fault = value;
    } else if (key == "chaos") {
      entry.chaos = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "chaos-seed") {
      entry.chaos_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "note") {
      entry.note = value;
    }
  }
  if (entry.oracle.empty()) {
    return Status::InvalidArgument("corpus file has no '% oracle:' header");
  }
  // Comments are transparent to the parser: keep the whole text as the
  // program so line numbers in parse errors match the file.
  entry.program = std::string(text);
  return entry;
}

Result<CorpusEntry> LoadCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseCorpusText(buf.str());
}

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    if (e.is_regular_file() && e.path().extension() == ".dlg") {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

OracleOutcome ReplayCorpusEntry(const CorpusEntry& entry,
                                const OracleConfig& config) {
  const Oracle* oracle = FindOracle(entry.oracle);
  if (oracle == nullptr) {
    return OracleOutcome::Fail("unknown oracle '" + entry.oracle + "'");
  }
  Result<Scenario> scenario = ParseScenario(
      entry.program, entry.family.empty() ? "corpus" : entry.family,
      entry.seed);
  if (!scenario.ok()) {
    return OracleOutcome::Fail("corpus program does not parse: " +
                               scenario.status().ToString());
  }
  // A '% fault:' header arms the governor's deterministic fault injection
  // so interruption oracles (governor-prefix) exercise their trip path on
  // replay instead of skipping.
  OracleConfig replay_config = config;
  if (!entry.fault.empty()) {
    InjectedFault fault = InjectedFaultFromName(entry.fault);
    if (fault == InjectedFault::kNone) {
      return OracleOutcome::Fail("unknown '% fault:' value '" + entry.fault +
                                 "'");
    }
    replay_config.inject_fault = fault;
  }
  // Likewise '% chaos:' re-arms the recorded fault-plan count (and seed
  // stream) so chaos-recovery entries replay their supervised recovery
  // instead of skipping under the default chaos-off config.
  if (entry.chaos != 0) {
    replay_config.chaos_plans = entry.chaos;
    if (entry.chaos_seed != 0) replay_config.chaos_seed = entry.chaos_seed;
  }
  return oracle->Check(scenario.value(), replay_config);
}

}  // namespace bddfc
