// Substitutions: partial maps from variables to terms, with chain following.

#ifndef BDDFC_CORE_SUBSTITUTION_H_
#define BDDFC_CORE_SUBSTITUTION_H_

#include <unordered_map>
#include <vector>

#include "bddfc/core/atom.h"
#include "bddfc/core/term.h"

namespace bddfc {

/// A substitution σ: variables → terms. Bindings may chain (x → y → c);
/// Resolve() follows chains to the representative term.
class Substitution {
 public:
  /// Binds `var` to `term`. Precondition: var is a variable and currently
  /// unbound (after resolution). Returns false if binding would be circular.
  bool Bind(TermId var, TermId term) {
    TermId v = Resolve(var);
    TermId t = Resolve(term);
    if (v == t) return true;  // already identical
    if (!IsVar(v)) {
      // var resolved to a constant: binding succeeds only if terms agree.
      return v == t;
    }
    map_[v] = t;
    return true;
  }

  /// Follows binding chains from `t` to its representative.
  TermId Resolve(TermId t) const {
    while (IsVar(t)) {
      auto it = map_.find(t);
      if (it == map_.end()) break;
      t = it->second;
    }
    return t;
  }

  /// True iff the (resolved) variable has a binding.
  bool IsBound(TermId var) const { return Resolve(var) != var || !IsVar(var); }

  /// Applies the substitution to an atom.
  Atom Apply(const Atom& a) const {
    Atom out;
    out.pred = a.pred;
    out.args.reserve(a.args.size());
    for (TermId t : a.args) out.args.push_back(Resolve(t));
    return out;
  }

  /// Applies the substitution to a vector of atoms.
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const {
    std::vector<Atom> out;
    out.reserve(atoms.size());
    for (const Atom& a : atoms) out.push_back(Apply(a));
    return out;
  }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  const std::unordered_map<TermId, TermId>& raw() const { return map_; }

 private:
  std::unordered_map<TermId, TermId> map_;
};

/// Computes a most general unifier of two atoms into `mgu` (which may carry
/// pre-existing bindings). Returns false if the atoms do not unify.
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* mgu);

}  // namespace bddfc

#endif  // BDDFC_CORE_SUBSTITUTION_H_
