
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bddfc/core/atom.cc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/atom.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/atom.cc.o.d"
  "/root/repo/src/bddfc/core/query.cc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/query.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/query.cc.o.d"
  "/root/repo/src/bddfc/core/rule.cc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/rule.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/rule.cc.o.d"
  "/root/repo/src/bddfc/core/signature.cc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/signature.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/signature.cc.o.d"
  "/root/repo/src/bddfc/core/structure.cc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/structure.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/structure.cc.o.d"
  "/root/repo/src/bddfc/core/substitution.cc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/substitution.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/substitution.cc.o.d"
  "/root/repo/src/bddfc/core/theory.cc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/theory.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_core.dir/core/theory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
