file(REMOVE_RECURSE
  "CMakeFiles/bench_finite_model.dir/bench_finite_model.cc.o"
  "CMakeFiles/bench_finite_model.dir/bench_finite_model.cc.o.d"
  "bench_finite_model"
  "bench_finite_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finite_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
