// Tests for the differential-testing subsystem (DESIGN.md §2.8): scenario
// generation determinism and stratification, oracle agreement on seeded
// batches, fault-injection self-test (the fuzzer must catch a deliberately
// broken delta chase and shrink it to a handful of components), shrinker
// determinism, and corpus round-trips.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bddfc/testing/corpus.h"
#include "bddfc/testing/fuzzer.h"
#include "bddfc/testing/oracles.h"
#include "bddfc/testing/scenario.h"
#include "bddfc/testing/shrinker.h"
#include "bddfc/workload/generators.h"

namespace bddfc {
namespace {

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (uint64_t seed : {1ull, 42ull, 987654321ull}) {
    Scenario a = GenerateScenario(seed);
    Scenario b = GenerateScenario(seed);
    EXPECT_EQ(ScenarioToText(a), ScenarioToText(b)) << "seed " << seed;
  }
}

TEST(ScenarioTest, FamiliesAreAllHit) {
  std::set<std::string> hit;
  for (uint64_t i = 0; i < 40; ++i) {
    hit.insert(GenerateScenario(Rng::Mix(7, i)).family);
  }
  for (const std::string& family : ScenarioFamilies()) {
    EXPECT_TRUE(hit.count(family)) << "family " << family
                                   << " never generated in 40 scenarios";
  }
}

TEST(ScenarioTest, TextRoundTripIsLossless) {
  for (uint64_t i = 0; i < 10; ++i) {
    Scenario s = GenerateScenario(Rng::Mix(13, i));
    std::string text = ScenarioToText(s);
    Result<Scenario> back = ParseScenario(text);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(ScenarioToText(back.value()), text);
  }
}

TEST(OracleTest, RegistryIsConsistent) {
  ASSERT_GE(AllOracles().size(), 5u);
  for (const Oracle* oracle : AllOracles()) {
    EXPECT_EQ(FindOracle(oracle->name()), oracle);
  }
  EXPECT_EQ(FindOracle("no-such-oracle"), nullptr);
}

TEST(OracleTest, AllOraclesPassOnSeededBatch) {
  const OracleConfig config;
  for (uint64_t i = 0; i < 40; ++i) {
    Scenario s = GenerateScenario(Rng::Mix(1, i));
    for (const Oracle* oracle : AllOracles()) {
      OracleOutcome out = oracle->Check(s, config);
      EXPECT_FALSE(out.failed())
          << oracle->name() << " failed on seed " << s.seed << " ("
          << s.family << "): " << out.detail << "\n"
          << ScenarioToText(s);
    }
  }
}

TEST(FuzzerTest, InjectedChaseDedupBugIsCaughtAndShrinks) {
  FuzzOptions options;
  options.seed = 1;
  options.runs = 50;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSkipTriggerDedup;
  FuzzReport report = RunFuzzer(options);
  ASSERT_FALSE(report.ok()) << "the injected bug went undetected over "
                            << report.runs_executed << " runs";
  const FuzzFailure& f = report.failures[0];
  EXPECT_EQ(f.oracle, "chase-agreement");
  // The acceptance bar: a minimized reproducer of at most 5 components.
  size_t components =
      f.minimized.theory.rules().size() + f.minimized.instance.NumFacts();
  EXPECT_LE(components, 5u) << f.corpus_text;
  EXPECT_GE(f.minimized.theory.rules().size(), 1u);

  // The reproducer replays as a failing corpus entry under the fault...
  Result<CorpusEntry> entry = ParseCorpusText(f.corpus_text);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  OracleConfig faulty;
  faulty.chase_fault = ChaseFault::kSkipTriggerDedup;
  EXPECT_TRUE(ReplayCorpusEntry(entry.value(), faulty).failed());
  // ...and passes once the fault is gone (the bug is in the engine knob,
  // not the scenario).
  OracleOutcome healthy = ReplayCorpusEntry(entry.value(), OracleConfig{});
  EXPECT_FALSE(healthy.failed()) << healthy.detail;
}

TEST(FuzzerTest, InjectedSinkDropDupBugIsCaughtAndShrinks) {
  // kSinkDropDup makes the vectorized sink drop every duplicate-derived
  // tuple group. The kNaive baseline keeps the hash sink (immune by
  // construction), so chase-agreement must flag the divergence — proof
  // that a silently broken sort-dedup sink cannot survive the oracles.
  FuzzOptions options;
  options.seed = 1;
  options.runs = 80;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSinkDropDup;
  FuzzReport report = RunFuzzer(options);
  ASSERT_FALSE(report.ok()) << "the injected sink bug went undetected over "
                            << report.runs_executed << " runs";
  const FuzzFailure& f = report.failures[0];
  EXPECT_EQ(f.oracle, "chase-agreement");
  EXPECT_GE(f.minimized.theory.rules().size(), 1u);

  // The reproducer replays as a failing corpus entry under the fault and
  // passes without it (the bug is in the sink knob, not the scenario).
  Result<CorpusEntry> entry = ParseCorpusText(f.corpus_text);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  OracleConfig faulty;
  faulty.chase_fault = ChaseFault::kSinkDropDup;
  EXPECT_TRUE(ReplayCorpusEntry(entry.value(), faulty).failed());
  OracleOutcome healthy = ReplayCorpusEntry(entry.value(), OracleConfig{});
  EXPECT_FALSE(healthy.failed()) << healthy.detail;
}

TEST(FuzzerTest, ShrinkingIsDeterministic) {
  FuzzOptions options;
  options.seed = 1;
  options.runs = 50;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSkipTriggerDedup;
  FuzzReport a = RunFuzzer(options);
  FuzzReport b = RunFuzzer(options);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.failures[0].corpus_text, b.failures[0].corpus_text);
  EXPECT_EQ(a.failures[0].shrink_stats.attempts,
            b.failures[0].shrink_stats.attempts);
}

TEST(FuzzerTest, MaxFailuresZeroCollectsEverything) {
  FuzzOptions options;
  options.seed = 1;
  options.runs = 12;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSkipTriggerDedup;
  options.max_failures = 0;
  options.shrink = false;
  FuzzReport report = RunFuzzer(options);
  EXPECT_EQ(report.runs_executed, 12u);
  EXPECT_GE(report.failures.size(), 2u);
}

TEST(FuzzerTest, UnknownOracleReportsFailure) {
  FuzzOptions options;
  options.oracle = "no-such-oracle";
  FuzzReport report = RunFuzzer(options);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.runs_executed, 0u);
}

TEST(ShrinkerTest, PassingScenarioIsReturnedUnchanged) {
  Scenario s = GenerateScenario(Rng::Mix(1, 0));
  const Oracle* oracle = FindOracle("chase-agreement");
  ASSERT_NE(oracle, nullptr);
  ShrinkStats stats;
  Scenario out = ShrinkScenario(s, *oracle, OracleConfig{}, 100, &stats);
  EXPECT_EQ(ScenarioToText(out), ScenarioToText(s));
  EXPECT_EQ(stats.removals, 0u);
}

TEST(CorpusTest, EntryTextRoundTrips) {
  CorpusEntry entry;
  entry.oracle = "parser-roundtrip";
  entry.family = "guarded";
  entry.seed = 99;
  entry.note = "two\nlines";
  entry.program = "p(a).\n?- p(V0).\n";
  std::string text = CorpusEntryToText(entry);
  Result<CorpusEntry> back = ParseCorpusText(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().oracle, "parser-roundtrip");
  EXPECT_EQ(back.value().family, "guarded");
  EXPECT_EQ(back.value().seed, 99u);
  EXPECT_EQ(back.value().note, "two; lines");
  // The program keeps the header comments (they are comments to the
  // parser), so replay sees the full file.
  EXPECT_EQ(back.value().program, text);
}

TEST(CorpusTest, MissingOracleHeaderIsRejected) {
  EXPECT_FALSE(ParseCorpusText("p(a).\n").ok());
  CorpusEntry entry;
  entry.oracle = "no-such-oracle";
  entry.program = "p(a).\n";
  EXPECT_TRUE(ReplayCorpusEntry(entry).failed());
}

}  // namespace
}  // namespace bddfc
