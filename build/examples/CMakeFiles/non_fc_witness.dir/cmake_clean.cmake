file(REMOVE_RECURSE
  "CMakeFiles/non_fc_witness.dir/non_fc_witness.cpp.o"
  "CMakeFiles/non_fc_witness.dir/non_fc_witness.cpp.o.d"
  "non_fc_witness"
  "non_fc_witness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/non_fc_witness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
