// Retrying chase supervisor with a graceful-degradation ladder
// (DESIGN.md §2.14).
//
// RunChaseSupervised runs RunChase under a parent ExecutionContext and,
// when an attempt fails with kInternal (an injected FaultRegistry fault or
// a paranoia invariant trip — never a budget exhaustion and never a
// semantic error), retries it under progressively more conservative
// configurations: compiled plans fall back to the interpretive Matcher,
// the vectorized sink to the hash sink, the parallel engine to the serial
// delta engine. Every engine configuration is byte-identical by contract,
// so degrading never changes the answer — only the speed.
//
// Isolation per attempt:
//   * each attempt runs under a fresh child context, so its fault latch
//     dies with the child and the parent's report stays clean;
//   * the shared Signature is marked before each attempt and rolled back
//     after a failed one, so labeled nulls invented by an aborted attempt
//     never shift the TermIds of the retry — recovery is byte-identical
//     to a fault-free run, raw ids included;
//   * the run's MetricsRegistry — whatever the parent context resolves
//     through its RunContext chain, the process-wide registry only as the
//     unattached fallback — is reset before each retry (when enabled), so
//     a recovered run publishes one clean set of counters (plus the
//     supervisor's own bddfc.supervisor.* series) and a retry in one
//     session never wipes another session's numbers.
//
// Backoff is carved out of the parent's *remaining* deadline (never more
// than a quarter of it per retry), so a supervised run respects the
// original --deadline-ms exactly like an unsupervised one. When the retry
// budget or the deadline is exhausted, the last attempt's result — a
// complete-prefix partial, per the chase's round-atomic contract — is
// returned as-is.

#ifndef BDDFC_CHASE_SUPERVISOR_H_
#define BDDFC_CHASE_SUPERVISOR_H_

#include <string>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/chase/chase.h"

namespace bddfc {

/// Retry policy of one supervised chase.
struct SupervisorOptions {
  /// Parent context the attempts are children of (not owned; may be null —
  /// the supervisor then creates a local ungoverned parent). Attach the
  /// FaultRegistry and deadline here.
  ExecutionContext* context = nullptr;
  /// Attempts after the first (0 = plain RunChase with child isolation).
  /// The default covers the worst bounded chaos plan: three specs at two
  /// fires each, one fire consumed per failed attempt.
  size_t max_retries = 6;
  /// Exponential backoff base and cap, in milliseconds of wall sleep
  /// before each retry. The effective backoff is additionally capped at a
  /// quarter of the remaining deadline.
  double backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
  /// Byte budget of each attempt's child accountant (0 = uncapped child;
  /// the parent's limit still governs).
  size_t child_memory_limit = 0;
};

/// A supervised run's result plus its recovery history.
struct SupervisedChase {
  ChaseResult result;
  /// Attempts executed (1 = no retry was needed).
  size_t attempts = 0;
  /// Degradation-ladder rungs applied, in order ("plans-off",
  /// "vsink-off", "serial"). Empty when the original configuration
  /// recovered on its own.
  std::vector<std::string> degradations;
  /// True when a retry (not the first attempt) produced the final OK or
  /// budget-exhausted result.
  bool recovered = false;
};

/// Runs the chase under the supervisor. Retries only on kInternal
/// failures; OK, ResourceExhausted and semantic errors return immediately
/// with the attempt's result.
SupervisedChase RunChaseSupervised(const Theory& theory,
                                   const Structure& instance,
                                   const ChaseOptions& chase_options,
                                   const SupervisorOptions& sup_options = {});

}  // namespace bddfc

#endif  // BDDFC_CHASE_SUPERVISOR_H_
