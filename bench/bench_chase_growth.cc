// E1 — Chase growth |Chase^i(D, T)| per depth, restricted (non-oblivious)
// vs oblivious, on the paper's example theories. Expected shapes: Example 1
// and Example 7 grow linearly (one chain), Example 9 exponentially (binary
// tree); the oblivious chase never reuses witnesses so it dominates the
// restricted one wherever witnesses pre-exist.
//
// Also compares the delta-driven engine against the naive full
// re-enumeration loop on generator workloads (equal outputs, wall-clock
// speedup) and exports ChaseStats counters into the google-benchmark
// counter set (visible in --benchmark_format=json output).

#include "bench_common.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

/// Copies a ChaseResult's execution counters into benchmark counters so
/// they land in the JSON report.
void ExportChaseStats(benchmark::State& state, const ChaseResult& r) {
  state.counters["facts"] = static_cast<double>(r.structure.NumFacts());
  state.counters["rounds"] = static_cast<double>(r.rounds_run);
  state.counters["bindings_tried"] =
      static_cast<double>(r.stats.match.bindings_tried);
  state.counters["postings_hits"] =
      static_cast<double>(r.stats.match.postings_hits);
  state.counters["postings_misses"] =
      static_cast<double>(r.stats.match.postings_misses);
  state.counters["triggers_deduped"] =
      static_cast<double>(r.stats.triggers_deduped);
  state.counters["datalog_deduped"] =
      static_cast<double>(r.stats.datalog_deduped);
  // Governor account: all zero / absent-deadline on ungoverned runs, but
  // exported unconditionally so JSON consumers see a stable counter set.
  state.counters["peak_accounted_bytes"] =
      static_cast<double>(r.report.peak_bytes);
  state.counters["deadline_slack_ms"] =
      std::isfinite(r.report.deadline_slack_ms) ? r.report.deadline_slack_ms
                                                : 0.0;
  state.counters["cancel_checks"] =
      static_cast<double>(r.report.cancel_checks);
}

/// A weakly acyclic generator workload: RandomAcyclicBinaryTheory over a
/// random b0-graph on `nodes` named constants. TC-style datalog rules plus
/// up-pointing TGDs make the naive loop pay a full join every round.
struct GeneratorWorkload {
  SignaturePtr sig;
  Theory theory;
  Structure instance;
};

GeneratorWorkload MakeGeneratorWorkload(int nodes, int edges, uint64_t seed) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, /*preds=*/6, /*tgds=*/8,
                                       /*datalog_rules=*/10, seed);
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  Rng rng(seed * 101 + 7);
  std::vector<TermId> consts;
  consts.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    consts.push_back(sig->AddConstant("k" + std::to_string(i)));
  }
  for (int i = 0; i < edges; ++i) {
    d.AddFact(b0, {consts[rng.Uniform(nodes)], consts[rng.Uniform(nodes)]});
  }
  return {std::move(sig), std::move(t), std::move(d)};
}

ChaseResult TimedChase(const GeneratorWorkload& w, ChaseEngine engine,
                       double* ms, bool plans = true, bool vsink = true) {
  ChaseOptions opts;
  opts.max_rounds = 256;
  opts.max_facts = 5000000;
  opts.engine = engine;
  opts.compiled_plans = plans;
  opts.vectorized_sink = vsink;
  auto t0 = std::chrono::steady_clock::now();
  ChaseResult r = RunChase(w.theory, w.instance, opts);
  *ms = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  return r;
}

void PrintEngineComparison() {
  bddfc_bench::Banner(
      "E1b", "delta-driven vs naive chase engine (generator workloads)");
  std::printf("%-8s %-8s %-8s %-8s %-12s %-12s %-10s %-18s %-6s\n", "nodes",
              "edges", "facts", "rounds", "naive ms", "delta ms", "speedup",
              "bindings n/d", "equal");
  const int sizes[][2] = {{50, 150}, {100, 300}, {200, 600}, {400, 1200}};
  for (auto [nodes, edges] : sizes) {
    GeneratorWorkload w = MakeGeneratorWorkload(nodes, edges, /*seed=*/42);
    double naive_ms = 0, delta_ms = 0;
    ChaseResult naive = TimedChase(w, ChaseEngine::kNaive, &naive_ms);
    ChaseResult delta = TimedChase(w, ChaseEngine::kDelta, &delta_ms);
    const bool equal = naive.structure.NumFacts() ==
                           delta.structure.NumFacts() &&
                       naive.facts_per_round == delta.facts_per_round &&
                       naive.nulls_created == delta.nulls_created &&
                       naive.fixpoint_reached == delta.fixpoint_reached;
    std::printf("%-8d %-8d %-8zu %-8zu %-12.2f %-12.2f %-10.2f %9zu/%-8zu %-6s\n",
                nodes, edges, delta.structure.NumFacts(), delta.rounds_run,
                naive_ms, delta_ms, naive_ms / std::max(delta_ms, 1e-9),
                naive.stats.match.bindings_tried,
                delta.stats.match.bindings_tried, equal ? "yes" : "NO");
  }
}

ChaseResult TimedParallelChase(const GeneratorWorkload& w, size_t threads,
                               double* ms, bool plans = true,
                               bool vsink = true) {
  ChaseOptions opts;
  opts.max_rounds = 256;
  opts.max_facts = 5000000;
  opts.engine = ChaseEngine::kParallel;
  opts.threads = threads;
  opts.compiled_plans = plans;
  opts.vectorized_sink = vsink;
  auto t0 = std::chrono::steady_clock::now();
  ChaseResult r = RunChase(w.theory, w.instance, opts);
  *ms = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  return r;
}

/// True iff the two results are byte-identical: same rows in the same
/// append order with the same raw TermIds (valid because each run chased
/// a freshly generated workload, so null numbering starts equal).
bool ByteIdentical(const ChaseResult& a, const ChaseResult& b) {
  if (a.structure.NumStoredPredicates() != b.structure.NumStoredPredicates())
    return false;
  for (PredId p = 0; p < a.structure.NumStoredPredicates(); ++p) {
    if (a.structure.Rows(p) != b.structure.Rows(p)) return false;
  }
  return a.facts_per_round == b.facts_per_round &&
         a.nulls_created == b.nulls_created && a.rounds_run == b.rounds_run;
}

/// One measured configuration of E15, also a row of BENCH_chase.json.
struct ScalingRow {
  const char* family;  // "scaling" (generator) or "tc-saturation"
  int nodes;
  int edges;
  std::string engine;  // "delta" or "parallel"
  size_t threads;      // 0 for the delta baseline
  bool plans;          // compiled query plans vs the interpretive matcher
  double ms;
  size_t facts;
  size_t rounds;
  bool identical;  // byte-identical to the delta interpreter baseline
  bool vsink = true;  // vectorized round sink vs the per-binding hash sink
};

/// Order-independent execution counters two equivalent runs must agree on
/// (the parallel-at-one-thread parity contract rides on this too).
bool StatsParity(const ChaseResult& a, const ChaseResult& b) {
  return a.stats.match.bindings_tried == b.stats.match.bindings_tried &&
         a.stats.triggers_deduped == b.stats.triggers_deduped &&
         a.stats.datalog_deduped == b.stats.datalog_deduped;
}

/// Writes the perf-trajectory artifact consumed by CI. The path defaults
/// to BENCH_chase.json in the working directory (CI runs from the repo
/// root); override with BDDFC_BENCH_JSON.
void WriteBenchJson(const std::vector<ScalingRow>& rows) {
  const char* path = std::getenv("BDDFC_BENCH_JSON");
  if (path == nullptr) path = "BENCH_chase.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "E15: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"chase\",\n  \"experiment\": \"E15\",\n");
  std::fprintf(f, "  \"workload\": \"RandomAcyclicBinaryTheory seed=42\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"nodes\": %d, \"edges\": %d, "
                 "\"engine\": \"%s\", "
                 "\"threads\": %zu, \"plans\": %s, \"vsink\": %s, "
                 "\"ms\": %.3f, "
                 "\"facts\": %zu, \"rounds\": %zu, \"identical\": %s}%s\n",
                 r.family, r.nodes, r.edges, r.engine.c_str(), r.threads,
                 r.plans ? "true" : "false", r.vsink ? "true" : "false",
                 r.ms, r.facts, r.rounds,
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, rows.size());
}

/// Transitive closure of a c0 -> c1 -> ... -> c(n-1) path under the
/// composition rule e(X,Y), e(Y,Z) -> e(X,Z): the join-dominated datalog
/// saturation load (O(n^2) facts, O(n^3) bindings over ~log n rounds)
/// where per-binding evaluation cost, not sink cost, decides the wall
/// clock — the workload the compiled executor exists for.
GeneratorWorkload MakeTcWorkload(int n) {
  Program p = ParseProgram("e(X, Y), e(Y, Z) -> e(X, Z).").ValueOrDie();
  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  TermId prev = p.theory.mutable_sig().AddConstant("c0");
  for (int i = 1; i < n; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    TermId next = p.theory.mutable_sig().AddConstant(name);
    p.instance.AddFact(e, {prev, next});
    prev = next;
  }
  return {nullptr, std::move(p.theory), std::move(p.instance)};
}

void PrintPlanSaturation(std::vector<ScalingRow>* json_rows) {
  bddfc_bench::Banner(
      "E15b", "compiled plans vs interpretive matcher on datalog "
              "saturation (path transitive closure, byte-identical "
              "output required)");
  std::printf("%-8s %-8s %-8s %-10s %-10s %-9s %-10s %-9s\n", "n", "facts",
              "rounds", "interp ms", "plans ms", "planspd", "t=4 plans",
              "identical");
  for (int n : {48, 96, 144}) {
    double interp_ms = 0, plans_ms = 0, t4_ms = 0;
    GeneratorWorkload ref_w = MakeTcWorkload(n);
    ChaseResult ref = TimedChase(ref_w, ChaseEngine::kDelta, &interp_ms,
                                 /*plans=*/false);
    GeneratorWorkload plan_w = MakeTcWorkload(n);
    ChaseResult pr = TimedChase(plan_w, ChaseEngine::kDelta, &plans_ms);
    GeneratorWorkload par_w = MakeTcWorkload(n);
    ChaseResult t4 = TimedParallelChase(par_w, 4, &t4_ms);
    const bool plans_ok = ByteIdentical(pr, ref) && StatsParity(pr, ref);
    const bool t4_ok = ByteIdentical(t4, ref);
    json_rows->push_back({"tc-saturation", n, n - 1, "delta", 0, false,
                          interp_ms, ref.structure.NumFacts(),
                          ref.rounds_run, true});
    json_rows->push_back({"tc-saturation", n, n - 1, "delta", 0, true,
                          plans_ms, pr.structure.NumFacts(), pr.rounds_run,
                          plans_ok});
    json_rows->push_back({"tc-saturation", n, n - 1, "parallel", 4, true,
                          t4_ms, t4.structure.NumFacts(), t4.rounds_run,
                          t4_ok});
    std::printf("%-8d %-8zu %-8zu %-10.2f %-10.2f %-9.2f %-10.2f %-9s\n", n,
                ref.structure.NumFacts(), ref.rounds_run, interp_ms,
                plans_ms, interp_ms / std::max(plans_ms, 1e-9), t4_ms,
                plans_ok && t4_ok ? "yes" : "NO");
  }
}

void PrintSinkSaturation(std::vector<ScalingRow>* json_rows) {
  bddfc_bench::Banner(
      "E15c", "vectorized round sink vs per-binding hash sink on datalog "
              "saturation (path transitive closure; byte-identical output "
              "and dedup counters required)");
  std::printf("%-8s %-8s %-8s %-11s %-10s %-9s %-10s %-11s %-10s %-9s\n",
              "n", "facts", "rounds", "hashsink", "vsink ms", "sinkspd",
              "t=4 vsink", "candidates", "contained", "identical");
  for (int n : {48, 96, 144}) {
    double hash_ms = 0, vsink_ms = 0, t4_ms = 0;
    GeneratorWorkload ref_w = MakeTcWorkload(n);
    ChaseResult ref = TimedChase(ref_w, ChaseEngine::kDelta, &hash_ms,
                                 /*plans=*/true, /*vsink=*/false);
    GeneratorWorkload vs_w = MakeTcWorkload(n);
    ChaseResult vs = TimedChase(vs_w, ChaseEngine::kDelta, &vsink_ms);
    GeneratorWorkload par_w = MakeTcWorkload(n);
    ChaseResult t4 = TimedParallelChase(par_w, 4, &t4_ms);
    const bool vs_ok = ByteIdentical(vs, ref) && StatsParity(vs, ref);
    const bool t4_ok = ByteIdentical(t4, ref) &&
                       t4.stats.sink_candidates == vs.stats.sink_candidates &&
                       t4.stats.sink_contained == vs.stats.sink_contained;
    json_rows->push_back({"tc-sink", n, n - 1, "delta", 0, true, hash_ms,
                          ref.structure.NumFacts(), ref.rounds_run, true,
                          /*vsink=*/false});
    json_rows->push_back({"tc-sink", n, n - 1, "delta", 0, true, vsink_ms,
                          vs.structure.NumFacts(), vs.rounds_run, vs_ok,
                          /*vsink=*/true});
    json_rows->push_back({"tc-sink", n, n - 1, "parallel", 4, true, t4_ms,
                          t4.structure.NumFacts(), t4.rounds_run, t4_ok,
                          /*vsink=*/true});
    std::printf("%-8d %-8zu %-8zu %-11.2f %-10.2f %-9.2f %-10.2f %-11zu "
                "%-10zu %-9s\n",
                n, vs.structure.NumFacts(), vs.rounds_run, hash_ms,
                vsink_ms, hash_ms / std::max(vsink_ms, 1e-9), t4_ms,
                vs.stats.sink_candidates, vs.stats.sink_contained,
                vs_ok && t4_ok ? "yes" : "NO");
  }
}

void PrintParallelScaling(std::vector<ScalingRow>* out_rows) {
  bddfc_bench::Banner(
      "E15", "parallel sharded chase scaling and compiled-plan speedup "
             "(byte-identical across engines, thread counts and plans "
             "on/off; thread scaling needs real cores)");
  std::printf("%-8s %-8s %-8s %-8s %-9s %-9s %-8s %-8s %-8s %-8s %-8s "
              "%-9s %-9s\n",
              "nodes", "edges", "facts", "rounds", "interp", "plans",
              "planspd", "t=1", "t=2", "t=4", "t=8", "speedup4",
              "identical");
  const int sizes[][2] = {{100, 300}, {200, 600}, {400, 1200}};
  const size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<ScalingRow> json_rows;
  for (auto [nodes, edges] : sizes) {
    // Each run chases a freshly generated workload: the chase interns
    // nulls into the workload's signature, so reusing one instance would
    // shift the TermIds of the second run and break the byte comparison.
    // Reference: the delta engine on the interpretive matcher.
    double interp_ms = 0;
    GeneratorWorkload ref_w = MakeGeneratorWorkload(nodes, edges, 42);
    ChaseResult ref = TimedChase(ref_w, ChaseEngine::kDelta, &interp_ms,
                                 /*plans=*/false);
    json_rows.push_back({"scaling", nodes, edges, "delta", 0, false,
                         interp_ms,
                         ref.structure.NumFacts(), ref.rounds_run, true});
    double plans_ms = 0;
    {
      GeneratorWorkload w = MakeGeneratorWorkload(nodes, edges, 42);
      ChaseResult r = TimedChase(w, ChaseEngine::kDelta, &plans_ms);
      json_rows.push_back({"scaling", nodes, edges, "delta", 0, true,
                           plans_ms,
                           r.structure.NumFacts(), r.rounds_run,
                           ByteIdentical(r, ref) && StatsParity(r, ref)});
    }
    double ms[4] = {0, 0, 0, 0};
    bool all_identical = true;
    for (int i = 0; i < 4; ++i) {
      GeneratorWorkload w = MakeGeneratorWorkload(nodes, edges, 42);
      ChaseResult r = TimedParallelChase(w, thread_counts[i], &ms[i]);
      // The t=1 row is the serial-route parity contract: kParallel at one
      // thread takes the sequential round path, so bytes *and* stats must
      // match the delta engine exactly.
      bool identical = ByteIdentical(r, ref);
      if (thread_counts[i] == 1) identical = identical && StatsParity(r, ref);
      all_identical = all_identical && identical;
      json_rows.push_back({"scaling", nodes, edges, "parallel",
                           thread_counts[i], true,
                           ms[i], r.structure.NumFacts(), r.rounds_run,
                           identical});
    }
    {
      // Interpreter parity of the serial route as well (plans off).
      GeneratorWorkload w = MakeGeneratorWorkload(nodes, edges, 42);
      double t1_interp_ms = 0;
      ChaseResult r = TimedParallelChase(w, 1, &t1_interp_ms,
                                         /*plans=*/false);
      json_rows.push_back({"scaling", nodes, edges, "parallel", 1, false,
                           t1_interp_ms,
                           r.structure.NumFacts(), r.rounds_run,
                           ByteIdentical(r, ref) && StatsParity(r, ref)});
    }
    std::printf(
        "%-8d %-8d %-8zu %-8zu %-9.2f %-9.2f %-8.2f %-8.2f %-8.2f %-8.2f "
        "%-8.2f %-9.2f %-9s\n",
        nodes, edges, ref.structure.NumFacts(), ref.rounds_run, interp_ms,
        plans_ms, interp_ms / std::max(plans_ms, 1e-9), ms[0], ms[1], ms[2],
        ms[3], ms[0] / std::max(ms[2], 1e-9), all_identical ? "yes" : "NO");
  }
  out_rows->insert(out_rows->end(), json_rows.begin(), json_rows.end());
}

void PrintTable() {
  bddfc_bench::Banner("E1", "chase growth per depth (facts)");
  struct Row {
    const char* name;
    Program program;
  };
  // cyclic-db: witnesses pre-exist, so the restricted chase stops at once
  // while the blind chase keeps inventing (the defining difference).
  Result<Program> cyclic = ParseProgram(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b). e(b, a).
  )");
  Row rows[] = {{"example1", Example1()},
                {"example7", Example7()},
                {"example9", Example9()},
                {"section5.5", Section55()},
                {"cyclic-db", std::move(cyclic).ValueOrDie()}};
  std::printf("%-12s %-10s", "theory", "mode");
  for (int d = 2; d <= 10; d += 2) std::printf(" d=%-6d", d);
  std::printf("\n");
  for (Row& row : rows) {
    for (bool oblivious : {false, true}) {
      std::printf("%-12s %-10s", row.name,
                  oblivious ? "oblivious" : "restricted");
      for (int d = 2; d <= 10; d += 2) {
        ChaseOptions opts;
        opts.max_rounds = static_cast<size_t>(d);
        opts.max_facts = 1000000;
        opts.oblivious = oblivious;
        ChaseResult r = RunChase(row.program.theory, row.program.instance,
                                 opts);
        std::printf(" %-8zu", r.structure.NumFacts());
      }
      std::printf("\n");
    }
  }
}

void BM_RestrictedChase(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = Example9();
    state.ResumeTiming();
    ChaseOptions opts;
    opts.max_rounds = static_cast<size_t>(state.range(0));
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportChaseStats(state, r);
  }
}
BENCHMARK(BM_RestrictedChase)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_DeltaChaseGenerator(benchmark::State& state) {
  GeneratorWorkload w =
      MakeGeneratorWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 3, 42);
  ChaseOptions opts;
  opts.max_rounds = 256;
  opts.max_facts = 5000000;
  for (auto _ : state) {
    ChaseResult r = RunChase(w.theory, w.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportChaseStats(state, r);
  }
}
BENCHMARK(BM_DeltaChaseGenerator)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_NaiveChaseGenerator(benchmark::State& state) {
  GeneratorWorkload w =
      MakeGeneratorWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 3, 42);
  ChaseOptions opts;
  opts.max_rounds = 256;
  opts.max_facts = 5000000;
  opts.engine = ChaseEngine::kNaive;
  for (auto _ : state) {
    ChaseResult r = RunChase(w.theory, w.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportChaseStats(state, r);
  }
}
BENCHMARK(BM_NaiveChaseGenerator)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_ParallelChaseGenerator(benchmark::State& state) {
  GeneratorWorkload w =
      MakeGeneratorWorkload(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 3, 42);
  ChaseOptions opts;
  opts.max_rounds = 256;
  opts.max_facts = 5000000;
  opts.engine = ChaseEngine::kParallel;
  opts.threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    ChaseResult r = RunChase(w.theory, w.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportChaseStats(state, r);
  }
}
BENCHMARK(BM_ParallelChaseGenerator)
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({200, 4})
    ->Args({200, 8});

void BM_ObliviousChase(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = Example9();
    state.ResumeTiming();
    ChaseOptions opts;
    opts.max_rounds = static_cast<size_t>(state.range(0));
    opts.oblivious = true;
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportChaseStats(state, r);
  }
}
BENCHMARK(BM_ObliviousChase)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_DatalogSaturation(benchmark::State& state) {
  // Transitive closure of a path: the classic datalog saturation load.
  for (auto _ : state) {
    state.PauseTiming();
    auto parsed = ParseProgram("e(X, Y), e(Y, Z) -> e(X, Z).");
    Program& p = parsed.value();
    TermId prev = p.theory.mutable_sig().AddConstant("c0");
    PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
    for (int i = 1; i <= state.range(0); ++i) {
      TermId next = p.theory.mutable_sig().AddConstant(
          "c" + std::to_string(i));
      p.instance.AddFact(e, {prev, next});
      prev = next;
    }
    state.ResumeTiming();
    ChaseResult r = RunChase(p.theory, p.instance);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportChaseStats(state, r);
  }
}
BENCHMARK(BM_DatalogSaturation)->Arg(16)->Arg(32)->Arg(64);

void PrintAllTables() {
  PrintTable();
  PrintEngineComparison();
  std::vector<ScalingRow> json_rows;
  PrintParallelScaling(&json_rows);
  PrintPlanSaturation(&json_rows);
  PrintSinkSaturation(&json_rows);
  WriteBenchJson(json_rows);
}

}  // namespace

BDDFC_BENCH_MAIN(PrintAllTables)
