file(REMOVE_RECURSE
  "CMakeFiles/bench_guarded.dir/bench_guarded.cc.o"
  "CMakeFiles/bench_guarded.dir/bench_guarded.cc.o.d"
  "bench_guarded"
  "bench_guarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
