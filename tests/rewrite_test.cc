// Tests for the UCQ rewriting engine, κ computation, BDD probing and
// derivation depth — including the end-to-end soundness/completeness
// property Chase(D, T) ⊨ Φ ⇔ D ⊨ Φ′ on generated instances.

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(RewriteTest, SuccessorTheoryCollapsesPathQueries) {
  // T: e(x, y) -> ∃z e(y, z). Rewriting of the k-path query must include
  // the single-edge query (any edge grows a path in the chase).
  Program p = MustParse("e(X, Y) -> exists Z: e(Y, Z).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();

  RewriteResult rr = RewriteQuery(p.theory, PathQuery(e, 3));
  ASSERT_TRUE(rr.status.ok()) << rr.status.ToString();
  // Minimized rewriting: exactly the single-edge CQ.
  ASSERT_EQ(rr.rewriting.size(), 1u);
  EXPECT_EQ(rr.rewriting[0].atoms.size(), 1u);
}

TEST(RewriteTest, RewritingIsSoundAndCompleteOnInstances) {
  Program p = MustParse("e(X, Y) -> exists Z: e(Y, Z).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, 4);
  RewriteResult rr = RewriteQuery(p.theory, q);
  ASSERT_TRUE(rr.status.ok());

  // On random instances: D ⊨ Φ′ iff Chase(D, T) ⊨ Φ. The chase is infinite
  // here, but 4-path derivability needs at most 4 rounds beyond |D|.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto inst_sig = std::make_shared<Signature>(*p.theory.signature_ptr());
    Structure d = RandomGraph(inst_sig, 5, 6, seed);
    // RandomGraph adds predicate e0; rebuild over e directly instead.
    Structure d2(p.theory.signature_ptr());
    d.ForEachFact([&](PredId, const std::vector<TermId>& row) {
      std::vector<TermId> named;
      for (TermId t : row) {
        named.push_back(p.theory.signature_ptr()->AddConstant(
            "c" + std::to_string(t)));
      }
      d2.AddFact(e, named);
    });
    ChaseOptions copts;
    copts.max_rounds = 12;
    ChaseResult chase = RunChase(p.theory, d2, copts);
    bool certain = Satisfies(chase.structure, q);
    bool rewritten = SatisfiesUcq(d2, rr.rewriting);
    EXPECT_EQ(certain, rewritten) << "seed " << seed;
  }
}

TEST(RewriteTest, DatalogRulesRewriteThroughHeads) {
  // Transitivity: the rewriting of e(x, y) under transitive closure is
  // infinite (all path queries) => Unknown at small budget.
  Program p = MustParse("e(X, Y), e(Y, Z) -> e(X, Z).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  RewriteOptions opts;
  opts.max_depth = 4;
  opts.max_queries = 200;
  // Keep raw disjuncts: minimization would (correctly) fold every k-path
  // into the 1-edge disjunct, and online subsumption pruning would
  // (equally correctly) never generate them in the first place.
  opts.minimize = false;
  opts.prune_subsumed = false;
  RewriteResult rr = RewriteQuery(p.theory, PathQuery(e, 1), opts);
  EXPECT_FALSE(rr.status.ok());
  EXPECT_EQ(rr.status.code(), StatusCode::kUnknown);
  // But the produced disjuncts are sound: they include 2-paths.
  bool has_two_path = false;
  for (const auto& d : rr.rewriting) {
    if (d.atoms.size() == 2) has_two_path = true;
  }
  EXPECT_TRUE(has_two_path);
}

TEST(RewriteTest, ConstantsBlockUnification) {
  Program p = MustParse(R"(
    u(X) -> exists Z: e(X, Z).
    u(a).
  )");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  TermId b = p.theory.mutable_sig().AddConstant("b");
  // Query e(x, b): the witness position holds a constant => the TGD is not
  // applicable; rewriting stays the query itself.
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(e, {MakeVar(0), b}));
  RewriteResult rr = RewriteQuery(p.theory, q);
  ASSERT_TRUE(rr.status.ok());
  ASSERT_EQ(rr.rewriting.size(), 1u);
  EXPECT_EQ(rr.rewriting[0].atoms.size(), 1u);
  EXPECT_EQ(rr.rewriting[0].atoms[0].pred, e);
}

TEST(RewriteTest, SharedVariableBlocksExistentialUnification) {
  Program p = MustParse("u(X) -> exists Z: e(X, Z).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  // Query e(x, y), e(y2, y): y occurs in two atoms — without factorization
  // the TGD could not resolve either atom; with factorization the atoms
  // unify first. The rewriting then contains u(x).
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  q.atoms.push_back(Atom(e, {MakeVar(2), MakeVar(1)}));
  RewriteResult rr = RewriteQuery(p.theory, q);
  ASSERT_TRUE(rr.status.ok());
  PredId u = std::move(sig.FindPredicate("u")).ValueOrDie();
  bool has_u = false;
  for (const auto& d : rr.rewriting) {
    if (d.atoms.size() == 1 && d.atoms[0].pred == u) has_u = true;
  }
  EXPECT_TRUE(has_u);
}

TEST(RewriteTest, AnswerVariablesSurviveRewriting) {
  Program p = MustParse("u(X) -> exists Z: e(X, Z).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  // Φ(y) = e(x, y): y is an answer variable, so the TGD (whose existential
  // lands on y) must NOT apply.
  ConjunctiveQuery q;
  q.answer_vars.push_back(MakeVar(1));
  q.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  RewriteResult rr = RewriteQuery(p.theory, q);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_EQ(rr.rewriting.size(), 1u);
  // Whereas Φ(x) = e(x, y) does rewrite to u(x).
  ConjunctiveQuery q2;
  q2.answer_vars.push_back(MakeVar(0));
  q2.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(1)}));
  RewriteResult rr2 = RewriteQuery(p.theory, q2);
  ASSERT_TRUE(rr2.status.ok());
  EXPECT_EQ(rr2.rewriting.size(), 2u);
}

TEST(RewriteTest, MultiHeadExistentialIsRejected) {
  Program p = MustParse("u(X) -> e(X, Z), u(Z).");
  const Signature& sig = p.theory.sig();
  PredId u = std::move(sig.FindPredicate("u")).ValueOrDie();
  ConjunctiveQuery q;
  q.atoms.push_back(Atom(u, {MakeVar(0)}));
  RewriteResult rr = RewriteQuery(p.theory, q);
  EXPECT_EQ(rr.status.code(), StatusCode::kFailedPrecondition);
}

TEST(RewriteTest, LinearTheoriesSaturate) {
  // Random linear theories are BDD; the rewriting must saturate for
  // single-atom queries at a generous budget.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto sig = std::make_shared<Signature>();
    Theory t = RandomLinearTheory(sig, 3, 4, seed);
    RewriteOptions opts;
    opts.max_depth = 32;
    opts.max_queries = 5000;
    BddProbeResult probe = ProbeBdd(t, opts);
    EXPECT_TRUE(probe.certified)
        << "seed " << seed << ": " << probe.status.ToString();
  }
}

TEST(RewriteTest, KappaOfSuccessorTheory) {
  Program p = MustParse("e(X, Y) -> exists Z: e(Y, Z).");
  KappaResult k = ComputeKappa(p.theory);
  ASSERT_TRUE(k.status.ok()) << k.status.ToString();
  EXPECT_EQ(k.kappa, 2);  // the body e(x, y) rewrites only to itself
}

TEST(RewriteTest, ProbeBddFlagsNonBddTheory) {
  // Transitive closure is not BDD (nor first-order rewritable).
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
  )");
  RewriteOptions opts;
  opts.max_depth = 5;
  opts.max_queries = 500;
  BddProbeResult probe = ProbeBdd(p.theory, opts);
  EXPECT_FALSE(probe.certified);
}

TEST(RewriteTest, ProbeBddCertifiesExample7) {
  // Example 7's theory is stated BDD in the paper.
  Program p = Example7();
  RewriteOptions opts;
  opts.max_depth = 16;
  opts.max_queries = 4000;
  BddProbeResult probe = ProbeBdd(p.theory, opts);
  EXPECT_TRUE(probe.certified) << probe.status.ToString();
  EXPECT_GE(probe.kappa, 2);
}

TEST(RewriteTest, DerivationDepthMatchesChaseLevels) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  // A (k+1)-path from a exists first at chase level k.
  for (int k = 0; k <= 4; ++k) {
    EXPECT_EQ(DerivationDepth(p.theory, p.instance, PathQuery(e, k + 1), 16),
              k);
  }
  // A directed cycle never appears.
  EXPECT_EQ(DerivationDepth(p.theory, p.instance, CycleQuery(e, 3), 8), -1);
}

TEST(RewriteTest, RewritingDepthBoundsDerivationDepth) {
  // The saturation depth of the rewriting is a k_Φ-style bound: on the
  // instances where Φ is certain, it is derived within that many rounds.
  Program p = MustParse("u(X) -> exists Z: e(X, Z). e(X, Y) -> u(Y).");
  const Signature& sig = p.theory.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, 2);
  RewriteResult rr = RewriteQuery(p.theory, q);
  ASSERT_TRUE(rr.status.ok());
  Program d = MustParse("u(a).");
  // Rewriting saturated at some depth; the query's derivation depth on this
  // instance is within a small factor (each level undoes one rule).
  int depth = DerivationDepth(p.theory, d.instance, q, 16);
  ASSERT_GE(depth, 0);
  EXPECT_LE(static_cast<size_t>(depth), rr.depth_reached + 1);
}

}  // namespace
}  // namespace bddfc
