// Tests for the chase engine, model checking and skeleton extraction.

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/chase/seminaive.h"
#include "bddfc/chase/skeleton.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ChaseTest, TerminatingChaseReachesFixpoint) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: r(Y, Z).
    e(a, b).
  )");
  ChaseResult res = RunChase(p.theory, p.instance);
  ASSERT_TRUE(res.status.ok()) << res.status.ToString();
  EXPECT_TRUE(res.fixpoint_reached);
  EXPECT_EQ(res.nulls_created, 1u);
  EXPECT_EQ(res.structure.NumFacts(), 2u);
  EXPECT_EQ(CheckModel(res.structure, p.theory), std::nullopt);
}

TEST(ChaseTest, NonObliviousChaseReusesWitnesses) {
  // r(a, b) already provides the witness: the TGD must not fire.
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: r(Y, Z).
    e(a, b).
    r(b, c).
  )");
  ChaseResult res = RunChase(p.theory, p.instance);
  EXPECT_TRUE(res.fixpoint_reached);
  EXPECT_EQ(res.nulls_created, 0u);
}

TEST(ChaseTest, ObliviousChaseAlwaysInvents) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: r(Y, Z).
    e(a, b).
    r(b, c).
  )");
  ChaseOptions opts;
  opts.oblivious = true;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  EXPECT_EQ(res.nulls_created, 1u);
}

TEST(ChaseTest, InfiniteChaseHitsRoundBudget) {
  Program p = Example1();  // infinite E-chain
  ChaseOptions opts;
  opts.max_rounds = 10;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  EXPECT_FALSE(res.fixpoint_reached);
  EXPECT_EQ(res.status.code(), StatusCode::kResourceExhausted);
  // One new chain element per round.
  EXPECT_EQ(res.nulls_created, 10u);
  EXPECT_EQ(res.rounds_run, 10u);
}

TEST(ChaseTest, FactBudgetStopsRun) {
  Program p = Example9();  // binary tree: 2^i growth
  ChaseOptions opts;
  opts.max_rounds = 64;
  opts.max_facts = 100;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  EXPECT_EQ(res.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(res.structure.NumFacts(), 100u);
  EXPECT_LT(res.structure.NumFacts(), 400u);  // stops shortly after
}

TEST(ChaseTest, DatalogSaturationTerminates) {
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, b).
    e(b, c).
    e(c, d).
  )");
  ChaseResult res = RunChase(p.theory, p.instance);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.fixpoint_reached);
  // Transitive closure of a 3-edge path: 3+2+1 = 6 facts.
  EXPECT_EQ(res.structure.NumFacts(), 6u);
}

TEST(ChaseTest, ChaseLevelsAreRecorded) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  ChaseOptions opts;
  opts.max_rounds = 5;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  // facts_per_round: 1, 2, 3, 4, 5, 6.
  ASSERT_EQ(res.facts_per_round.size(), 6u);
  for (size_t i = 0; i < res.facts_per_round.size(); ++i) {
    EXPECT_EQ(res.facts_per_round[i], i + 1);
  }
  // Null provenance carries creating rounds 1..5.
  std::vector<int> rounds;
  for (auto& [null_id, prov] : res.null_provenance) {
    (void)null_id;
    rounds.push_back(prov.birth_round);
  }
  std::sort(rounds.begin(), rounds.end());
  EXPECT_EQ(rounds, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ChaseTest, FactsByRoundPartitionsAllFacts) {
  // Alternating e/u derivations: e facts land in even rounds, u facts in
  // odd ones, and the per-round groups must partition the final structure
  // (round 0 = the input instance).
  Program p = MustParse(R"(
    u(X) -> exists Z: e(X, Z).
    e(X, Y) -> u(Y).
    u(a).
  )");
  ChaseOptions opts;
  opts.max_rounds = 4;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  std::vector<std::vector<Atom>> by_round = res.FactsByRound();
  ASSERT_EQ(by_round.size(), 5u);

  size_t total = 0;
  for (const auto& round : by_round) total += round.size();
  EXPECT_EQ(total, res.structure.NumFacts());

  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  PredId u = std::move(p.theory.sig().FindPredicate("u")).ValueOrDie();
  ASSERT_EQ(by_round[0].size(), 1u);
  EXPECT_EQ(by_round[0][0].pred, u);
  for (size_t r = 1; r < by_round.size(); ++r) {
    ASSERT_EQ(by_round[r].size(), 1u) << "round " << r;
    EXPECT_EQ(by_round[r][0].pred, r % 2 == 1 ? e : u) << "round " << r;
  }
}

TEST(ChaseTest, WithinRoundTriggersAreDeduplicated) {
  // Two body matches demanding the same head pattern must create one
  // witness (the non-oblivious chase invariant behind Lemma 3(iv)).
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: r(Y, Z).
    e(a, b).
    e(c, b).
  )");
  ChaseResult res = RunChase(p.theory, p.instance);
  EXPECT_TRUE(res.fixpoint_reached);
  EXPECT_EQ(res.nulls_created, 1u);
}

TEST(ChaseTest, HeadPatternDedupIsAtomOrderInvariant) {
  // Two rules demand the same two-atom head pattern with the atoms listed
  // in opposite orders. The seed PatternKey renumbered existential
  // variables by first occurrence *before* sorting atoms, so the two
  // arrivals hashed apart and spawned duplicate witnesses; the canonical
  // key must merge them into one trigger (two nulls, not four).
  const char* orders[] = {R"(
    e(X, Y) -> exists U, V: p(Y, U), q(Y, V).
    f(X, Y) -> exists U, V: q(Y, V), p(Y, U).
    e(a, b).
    f(a, b).
  )",
                          R"(
    f(X, Y) -> exists U, V: q(Y, V), p(Y, U).
    e(X, Y) -> exists U, V: p(Y, U), q(Y, V).
    e(a, b).
    f(a, b).
  )"};
  for (const char* text : orders) {
    Program p = MustParse(text);
    ChaseResult res = RunChase(p.theory, p.instance);
    EXPECT_TRUE(res.fixpoint_reached);
    EXPECT_EQ(res.nulls_created, 2u);
    EXPECT_EQ(res.stats.triggers_deduped, 1u);
  }
}

TEST(ChaseTest, StatsRecordBindingsAndRoundTimes) {
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, b). e(b, c). e(c, d).
  )");
  ChaseResult res = RunChase(p.theory, p.instance);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.fixpoint_reached);
  EXPECT_GT(res.stats.match.bindings_tried, 0u);
  // One timing entry per executed round plus the final fixpoint round.
  EXPECT_EQ(res.stats.round_ms.size(), res.rounds_run + 1);
}

TEST(ChaseTest, DeltaEngineEnumeratesFewerBindings) {
  // Transitive closure of an 8-path: the naive loop re-enumerates every
  // body binding each round, the delta engine only delta-anchored ones.
  std::string text = "e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for (int i = 0; i < 8; ++i) {
    text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) +
            ").\n";
  }
  Program p = MustParse(text.c_str());
  ChaseOptions naive;
  naive.engine = ChaseEngine::kNaive;
  ChaseResult rn = RunChase(p.theory, p.instance, naive);
  ChaseResult rd = RunChase(p.theory, p.instance);
  EXPECT_EQ(rd.structure.NumFacts(), rn.structure.NumFacts());
  EXPECT_EQ(rd.facts_per_round, rn.facts_per_round);
  EXPECT_LT(rd.stats.match.bindings_tried, rn.stats.match.bindings_tried);
}

TEST(ChaseTest, DatalogAdditionsAreDedupedWithinARound) {
  // Two distinct bindings derive the same head fact in round 1; the
  // addition buffer must keep one copy and count the duplicate.
  Program p = MustParse(R"(
    e(X, Y) -> t(Y, Y).
    e(a, b). e(c, b).
  )");
  ChaseResult res = RunChase(p.theory, p.instance);
  EXPECT_TRUE(res.fixpoint_reached);
  EXPECT_EQ(res.stats.datalog_deduped, 1u);
  PredId t = std::move(res.structure.sig().FindPredicate("t")).ValueOrDie();
  EXPECT_EQ(res.structure.Rows(t).size(), 1u);
}

TEST(SeminaiveTest, DeltaBindingsAreNotDoubleCounted) {
  // Both body atoms of the single derivation lie in the round-1 delta; the
  // old/new split must enumerate the binding once, not once per anchor.
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> t(X, Z).
    e(a, b). e(b, c).
  )");
  SaturateResult r = SaturateDatalog(p.theory, p.instance);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.facts_derived, 1u);   // t(a, c)
  EXPECT_EQ(r.bindings_tried, 1u);  // the seed engine counted 2
}

TEST(ChaseStatsTest, ShardMergeSumsCountersButMaxesTimesAndPeaks) {
  // Shards of one round overlap in time and share one memory accountant:
  // counters are additive, round_ms merges element-wise max and
  // peak_bytes takes the max. The pre-fix merge summed all three, so a
  // 4-shard round reported ~4x its wall time.
  ChaseStats a;
  a.match.bindings_tried = 10;
  a.match.postings_hits = 100;
  a.match.postings_misses = 7;
  a.triggers_deduped = 1;
  a.datalog_deduped = 3;
  a.round_ms = {2.0, 8.0};
  a.peak_bytes = 100;

  ChaseStats b;
  b.match.bindings_tried = 5;
  b.match.postings_hits = 50;
  b.match.postings_misses = 2;
  b.triggers_deduped = 2;
  b.datalog_deduped = 4;
  b.round_ms = {5.0, 1.0, 7.0};
  b.peak_bytes = 250;

  a += b;
  EXPECT_EQ(a.match.bindings_tried, 15u);
  EXPECT_EQ(a.match.postings_hits, 150u);
  EXPECT_EQ(a.match.postings_misses, 9u);
  EXPECT_EQ(a.triggers_deduped, 3u);
  EXPECT_EQ(a.datalog_deduped, 7u);
  EXPECT_EQ(a.round_ms, (std::vector<double>{5.0, 8.0, 7.0}));
  EXPECT_EQ(a.peak_bytes, 250u);
}

TEST(ChaseTest, ParallelEngineDedupsTriggersAndHonorsFaultInjection) {
  // The striped trigger table must preserve the head-pattern dedup
  // invariant, and the kSkipTriggerDedup fault must still break it (the
  // fuzzer self-test depends on the fault reaching the parallel path).
  const char* text = R"(
    e(X, Y) -> exists U, V: p(Y, U), q(Y, V).
    f(X, Y) -> exists U, V: q(Y, V), p(Y, U).
    e(a, b).
    f(a, b).
  )";
  ChaseOptions opts;
  opts.engine = ChaseEngine::kParallel;
  opts.threads = 4;
  {
    Program p = MustParse(text);
    ChaseResult res = RunChase(p.theory, p.instance, opts);
    EXPECT_TRUE(res.fixpoint_reached);
    EXPECT_EQ(res.nulls_created, 2u);
    EXPECT_EQ(res.stats.triggers_deduped, 1u);
  }
  {
    Program p = MustParse(text);
    ChaseOptions faulty = opts;
    faulty.fault = ChaseFault::kSkipTriggerDedup;
    ChaseResult res = RunChase(p.theory, p.instance, faulty);
    EXPECT_EQ(res.nulls_created, 4u);  // one witness pair per trigger
  }
}

TEST(SeminaiveTest, ClosureMatchesNaiveChase) {
  std::string text = "e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for (int i = 0; i < 6; ++i) {
    text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) +
            ").\n";
  }
  Program p = MustParse(text.c_str());
  SaturateResult sn = SaturateDatalog(p.theory, p.instance);
  ChaseOptions naive;
  naive.engine = ChaseEngine::kNaive;
  ChaseResult nr = RunChase(p.theory, p.instance, naive);
  ASSERT_TRUE(sn.status.ok());
  EXPECT_EQ(sn.structure.NumFacts(), nr.structure.NumFacts());
  EXPECT_TRUE(sn.structure.ContainsAllFactsOf(nr.structure));
  EXPECT_TRUE(nr.structure.ContainsAllFactsOf(sn.structure));
}

TEST(SeminaiveTest, ShardedSaturationMatchesSerialByteForByte) {
  // The pool path buffers through a striped set and applies in sorted
  // order — the closure must match the serial loop row-for-row (same
  // append order, same counters) at every thread count.
  std::string text = "e(X, Y), e(Y, Z) -> e(X, Z).\ne(h, c0).\n";
  for (int i = 0; i < 10; ++i) {
    text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) +
            ").\n";
  }
  Program p = MustParse(text.c_str());
  SaturateOptions serial_opts;  // threads = 1
  SaturateResult serial = SaturateDatalog(p.theory, p.instance, serial_opts);
  ASSERT_TRUE(serial.status.ok());

  for (size_t threads : {2u, 4u, 8u}) {
    SaturateOptions opts;
    opts.threads = threads;
    SaturateResult sharded = SaturateDatalog(p.theory, p.instance, opts);
    ASSERT_TRUE(sharded.status.ok()) << "threads " << threads;
    EXPECT_EQ(sharded.rounds_run, serial.rounds_run) << threads;
    EXPECT_EQ(sharded.facts_derived, serial.facts_derived) << threads;
    EXPECT_EQ(sharded.bindings_tried, serial.bindings_tried) << threads;
    ASSERT_EQ(sharded.structure.NumStoredPredicates(),
              serial.structure.NumStoredPredicates());
    for (PredId pred = 0; pred < serial.structure.NumStoredPredicates();
         ++pred) {
      EXPECT_EQ(sharded.structure.Rows(pred), serial.structure.Rows(pred))
          << "pred " << pred << " threads " << threads;
    }
  }
}

TEST(ChaseTest, Example7DerivesReflexiveRAtoms) {
  Program p = Example7();
  ChaseOptions opts;
  opts.max_rounds = 6;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  // Every element with an e-successor gets r(e, e)... more precisely every
  // x with e(x, y) pairs only with itself, so only r(x, x) atoms exist.
  const Signature& sig = res.structure.sig();
  PredId r = std::move(sig.FindPredicate("r")).ValueOrDie();
  for (const auto& row : res.structure.Rows(r)) {
    EXPECT_EQ(row[0], row[1]);
  }
  EXPECT_GT(res.structure.Rows(r).size(), 0u);
}

TEST(ChaseTest, CertainAnswerViaChase) {
  // Transitivity theory: certain answer e(a, d) holds.
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, b). e(b, c). e(c, d).
    ?- e(a, d).
  )");
  ChaseResult res = RunChase(p.theory, p.instance);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(Satisfies(res.structure, p.queries[0]));
}

TEST(CheckModelTest, DetectsDatalogViolation) {
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, b). e(b, c).
  )");
  auto violation = CheckModel(p.instance, p.theory);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->rule_index, 0);
  EXPECT_EQ(violation->grounded_body.size(), 2u);
}

TEST(CheckModelTest, DetectsMissingWitness) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )");
  EXPECT_TRUE(CheckModel(p.instance, p.theory).has_value());
  // A loop at b provides all witnesses.
  Program q = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b). e(b, b).
  )");
  EXPECT_EQ(CheckModel(q.instance, q.theory), std::nullopt);
}

TEST(CheckModelTest, RepeatedVariableInHeadNeedsTheDiagonal) {
  // p(X) -> q(X, X): only the diagonal fact q(a, a) satisfies the head;
  // q(a, b) does not, even though it mentions a.
  Program bad = MustParse(R"(
    p(X) -> q(X, X).
    p(a). q(a, b).
  )");
  auto violation = CheckModel(bad.instance, bad.theory);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->rule_index, 0);

  Program good = MustParse(R"(
    p(X) -> q(X, X).
    p(a). q(a, a).
  )");
  EXPECT_EQ(CheckModel(good.instance, good.theory), std::nullopt);
}

TEST(CheckModelTest, RepeatedVariableInExistentialHead) {
  // p(X) -> exists Z: r(X, Z, Z): the witness must repeat; r(a, b, c)
  // is not one, r(a, b, b) is.
  Program bad = MustParse(R"(
    p(X) -> r(X, Z, Z).
    p(a). r(a, b, c).
  )");
  EXPECT_TRUE(CheckModel(bad.instance, bad.theory).has_value());

  Program good = MustParse(R"(
    p(X) -> r(X, Z, Z).
    p(a). r(a, b, b).
  )");
  EXPECT_EQ(CheckModel(good.instance, good.theory), std::nullopt);
}

TEST(CheckModelTest, ConstantInHeadMustAppearLiterally) {
  // p(X) -> q(X, c): the head grounds to q(a, c) exactly; q(a, d) does
  // not satisfy it.
  Program bad = MustParse(R"(
    p(X) -> q(X, c).
    p(a). q(a, d).
  )");
  auto violation = CheckModel(bad.instance, bad.theory);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->rule_index, 0);

  Program good = MustParse(R"(
    p(X) -> q(X, c).
    p(a). q(a, c).
  )");
  EXPECT_EQ(CheckModel(good.instance, good.theory), std::nullopt);

  // And the chase itself produces the constant-carrying fact.
  Program chased = MustParse(R"(
    p(X) -> q(X, c).
    p(a).
  )");
  ChaseResult res = RunChase(chased.theory, chased.instance);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(CheckModel(res.structure, chased.theory), std::nullopt);
}

TEST(CheckModelTest, Example1QuotientIsNotAModel) {
  // The 3-cycle M' of Example 1 triggers the triangle rule.
  Program p = Example1();
  auto sig = p.theory.signature_ptr();
  PredId e = std::move(sig->FindPredicate("e")).ValueOrDie();
  TermId a = sig->AddConstant("a");
  TermId b = sig->AddConstant("b");
  TermId c = sig->AddConstant("c");
  Structure m_prime(sig);
  m_prime.AddFact(e, {a, b});
  m_prime.AddFact(e, {b, c});
  m_prime.AddFact(e, {c, a});
  auto violation = CheckModel(m_prime, p.theory);
  ASSERT_TRUE(violation.has_value());
  // The violated rule is the triangle rule (index 1).
  EXPECT_EQ(violation->rule_index, 1);
  // And chasing M' diverges (paper: Chase(M', T) is infinite): the u-chain.
  ChaseOptions opts;
  opts.max_rounds = 8;
  ChaseResult res = RunChase(p.theory, m_prime, opts);
  EXPECT_FALSE(res.fixpoint_reached);
}

TEST(SkeletonTest, SkeletonKeepsTgpAtomsAndDAtoms) {
  Program p = Example7();
  ChaseOptions opts;
  opts.max_rounds = 6;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  Skeleton s = SkeletonOf(p.theory, p.instance, res);
  const Signature& sig = s.structure.sig();
  PredId e = std::move(sig.FindPredicate("e")).ValueOrDie();
  PredId r = std::move(sig.FindPredicate("r")).ValueOrDie();
  EXPECT_TRUE(s.tgps.count(e));
  EXPECT_FALSE(s.tgps.count(r));
  // No r (flesh) atoms in the skeleton.
  EXPECT_EQ(s.structure.Rows(r).size(), 0u);
  // All chase elements present.
  EXPECT_EQ(s.structure.Domain().size(), res.structure.Domain().size());
  // e-atoms: the D atom plus one per new null.
  EXPECT_EQ(s.structure.Rows(e).size(), 1u + res.nulls_created);
}

TEST(SkeletonTest, Lemma3ForestProperties) {
  Program p = Example9();
  ChaseOptions opts;
  opts.max_rounds = 5;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  Skeleton s = SkeletonOf(p.theory, p.instance, res);
  SkeletonAnalysis a = AnalyzeSkeleton(s.structure);
  EXPECT_TRUE(a.acyclic);
  EXPECT_TRUE(a.indegree_at_most_one);
  EXPECT_TRUE(a.is_forest);
  // Lemma 3(iv): degree bounded by |Σ| + 1.
  EXPECT_LE(a.max_degree, s.structure.sig().num_predicates() + 1);
  // Depths are assigned to every null.
  size_t nulls = 0;
  for (TermId t : s.structure.Domain()) {
    if (s.structure.sig().IsNull(t)) ++nulls;
  }
  EXPECT_EQ(a.depth.size(), nulls);
}

TEST(SkeletonTest, RootsAreRoundOneNulls) {
  Program p = Example1();
  ChaseOptions opts;
  opts.max_rounds = 6;
  ChaseResult res = RunChase(p.theory, p.instance, opts);
  Skeleton s = SkeletonOf(p.theory, p.instance, res);
  SkeletonAnalysis a = AnalyzeSkeleton(s.structure);
  ASSERT_EQ(a.roots.size(), 1u);  // the single chain grows from b
  EXPECT_EQ(res.ElementBirthRound(a.roots[0]), 1);
}

}  // namespace
}  // namespace bddfc
