// CQ evaluation over structures: index-backed backtracking joins.

#ifndef BDDFC_EVAL_MATCH_H_
#define BDDFC_EVAL_MATCH_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"

namespace bddfc {

/// A variable binding produced by matching: variable id → constant id.
using Binding = std::unordered_map<TermId, TermId>;

/// Execution counters a Matcher (or the plan executor — both backends
/// share these semantics so A/B stats comparisons are meaningful)
/// accumulates across calls when one is attached. The chase aggregates
/// these into its ChaseStats.
///
/// Counting contract: each *atom instantiation* (one attempt to extend a
/// partial binding through one atom) contributes at most one hit or one
/// miss — a hit when it proceeded through a chosen index probe, a miss
/// when a probe pruned it with no candidate rows in the atom's band.
/// Probing several positions for one instantiation and keeping the
/// smallest list is still ONE hit, never one per lookup.
struct MatchStats {
  size_t bindings_tried = 0;   ///< complete bindings delivered to callbacks
  size_t postings_hits = 0;    ///< instantiations that used an index probe
  size_t postings_misses = 0;  ///< instantiations pruned by an index probe
  size_t rows_scanned = 0;     ///< candidate rows examined (probe or scan)
};

/// Restricts one atom of a conjunction to a row range [begin, end) of its
/// relation (rows are append-ordered, so a range is a point-in-time slice).
/// The delta-driven chase uses bands to split a body into "old" rows,
/// the last round's delta, and the full relation.
struct RowBand {
  uint32_t begin = 0;
  uint32_t end = UINT32_MAX;  // clamped to the relation size

  static RowBand All() { return {}; }
};

/// Evaluates conjunctions of atoms against one structure.
///
/// The matcher holds only a reference to the structure; it is cheap to
/// construct and safe to use while the structure grows (the chase constructs
/// one per round). When `stats` is non-null the matcher increments its
/// counters on every call.
class Matcher {
 public:
  explicit Matcher(const Structure& s, MatchStats* stats = nullptr)
      : s_(s), stats_(stats) {}

  /// True iff some extension of `partial` maps every variable of `atoms` to
  /// a domain constant such that all atoms hold in the structure.
  bool Exists(const std::vector<Atom>& atoms,
              const Binding& partial = {}) const;

  /// Enumerates all total matches extending `partial`. The callback returns
  /// false to stop enumeration early. Bindings passed to the callback cover
  /// every variable of `atoms` (plus the entries of `partial`).
  void Enumerate(const std::vector<Atom>& atoms, const Binding& partial,
                 const std::function<bool(const Binding&)>& on_match) const;

  /// Like Enumerate, but atom i may only match rows in bands[i] of its
  /// relation. `bands` must have one entry per atom. Used for semi-naive
  /// delta evaluation: anchor the delta, keep earlier atoms on pre-round
  /// rows, and let later atoms range over everything.
  void EnumerateBanded(const std::vector<Atom>& atoms,
                       const std::vector<RowBand>& bands,
                       const Binding& partial,
                       const std::function<bool(const Binding&)>& on_match)
      const;

  /// Counts total matches (distinct bindings of all variables).
  size_t CountMatches(const std::vector<Atom>& atoms,
                      const Binding& partial = {}) const;

 private:
  const Structure& s_;
  MatchStats* stats_;
};

/// C ⊨ ∃x̄ Q(x̄) for a Boolean CQ (answer variables treated as existential).
bool Satisfies(const Structure& s, const ConjunctiveQuery& q);

/// C ⊨ Φ for a UCQ: some disjunct holds.
bool SatisfiesUcq(const Structure& s, const UnionOfCQs& ucq);

/// C ⊨ Q(e): satisfaction with the first answer variable bound to `e`.
/// Used for positive types ptp_n(C, e, Σ) membership tests (Def. 3).
bool SatisfiesAt(const Structure& s, const ConjunctiveQuery& q, TermId e);

/// Converts a structure to a Boolean CQ: labeled nulls become variables,
/// named constants stay. The canonical-query view of an instance.
ConjunctiveQuery StructureToQuery(const Structure& s);

/// True iff there is a homomorphism from `a` to `b` fixing named (non-null)
/// constants. Labeled nulls of `a` may map anywhere.
bool HasHomomorphism(const Structure& a, const Structure& b);

}  // namespace bddfc

#endif  // BDDFC_EVAL_MATCH_H_
