// E2 — CQ evaluation throughput of the index-backed backtracking matcher:
// random graphs of growing size, path/star/cycle queries of growing width.
// Expected shape: boolean satisfaction stays fast (first-match exit);
// match counting grows with the number of embeddings; cycle queries are
// the most selective.

#include "bench_common.h"

#include "bddfc/eval/match.h"
#include "bddfc/workload/generators.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E2", "CQ evaluation on random graphs");
  std::printf("%-8s %-8s %-7s %-9s %-12s\n", "nodes", "edges", "query",
              "decide", "matches");
  for (int nodes : {100, 1000, 10000}) {
    auto sig = std::make_shared<Signature>();
    Structure g = RandomGraph(sig, nodes, nodes * 4, /*seed=*/7);
    PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
    Matcher m(g);
    struct Q {
      const char* name;
      ConjunctiveQuery q;
    } queries[] = {{"path3", PathQuery(e, 3)},
                   {"star3", StarQuery(e, 3)},
                   {"cycle3", CycleQuery(e, 3)}};
    for (auto& [name, q] : queries) {
      bool sat = Satisfies(g, q);
      size_t count = nodes <= 1000 ? m.CountMatches(q.atoms) : 0;
      std::printf("%-8d %-8d %-7s %-9s %-12s\n", nodes, nodes * 4, name,
                  sat ? "true" : "false",
                  nodes <= 1000 ? std::to_string(count).c_str() : "(skipped)");
    }
  }
}

void BM_Decide(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure g = RandomGraph(sig, static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 4, 7);
  PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Satisfies(g, q));
  }
}
BENCHMARK(BM_Decide)
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 2})
    ->Args({10000, 4});

void BM_CountMatches(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure g = RandomGraph(sig, static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 4, 7);
  PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
  Matcher m(g);
  ConjunctiveQuery q = PathQuery(e, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.CountMatches(q.atoms));
  }
}
BENCHMARK(BM_CountMatches)->Arg(100)->Arg(300)->Arg(1000);

void BM_CycleDetection(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure g = RandomGraph(sig, 1000, 4000, 7);
  PredId e = std::move(sig->FindPredicate("e0")).ValueOrDie();
  ConjunctiveQuery q = CycleQuery(e, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Satisfies(g, q));
  }
}
BENCHMARK(BM_CycleDetection)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
