#include "bddfc/chase/chase.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "bddfc/eval/match.h"

namespace bddfc {

namespace {

/// Adds a fact and records its birth round. Returns true when new.
bool AddFactTracked(ChaseResult* out, PredId pred,
                    const std::vector<TermId>& args, int round) {
  uint32_t row = static_cast<uint32_t>(out->structure.NumFacts(pred));
  if (!out->structure.AddFact(pred, args)) return false;
  out->fact_round.emplace(FactHandle{pred, row}, round);
  return true;
}

/// A pending existential trigger: the rule's head with frontier variables
/// grounded and existential variables still symbolic. Keyed for per-round
/// deduplication (one witness per demanded head pattern).
struct PendingExistential {
  int rule_index;
  std::vector<Atom> head_pattern;   // grounded except existential vars
  std::vector<TermId> existentials; // the symbolic witness variables
};

/// Canonical key of a head pattern: existential variables renumbered by
/// first occurrence, atoms sorted, then serialized.
std::string PatternKey(const std::vector<Atom>& pattern) {
  std::unordered_map<TermId, TermId> ren;
  int32_t next = 0;
  std::vector<Atom> key = pattern;
  for (Atom& a : key) {
    for (TermId& t : a.args) {
      if (IsVar(t)) {
        auto it = ren.find(t);
        if (it == ren.end()) it = ren.emplace(t, MakeVar(next++)).first;
        t = it->second;
      }
    }
  }
  std::sort(key.begin(), key.end());
  std::string s;
  for (const Atom& a : key) {
    s += std::to_string(a.pred);
    for (TermId t : a.args) s += "," + std::to_string(t);
    s += "|";
  }
  return s;
}

}  // namespace

ChaseResult RunChase(const Theory& theory, const Structure& instance,
                     const ChaseOptions& options) {
  assert(theory.signature_ptr().get() == instance.signature_ptr().get() &&
         "theory and instance must share one Signature object");
  ChaseResult out(instance.signature_ptr());

  // Round 0: copy the instance, tagging every fact with round 0.
  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    AddFactTracked(&out, p, row, 0);
  });
  for (TermId c : instance.Domain()) out.structure.AddDomainElement(c);
  out.facts_per_round.push_back(out.structure.NumFacts());

  // Oblivious mode: remember fired (rule, body-binding) pairs so each
  // trigger fires exactly once over the whole run (the blind chase creates
  // one witness per trigger, not one per round).
  std::unordered_set<std::string> fired;

  for (size_t round = 1; round <= options.max_rounds; ++round) {
    Matcher matcher(out.structure);

    // Buffered additions, evaluated against the Chase^{i} snapshot.
    std::vector<Atom> datalog_additions;
    std::map<std::string, PendingExistential> existential_triggers;

    for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
      const Rule& rule = theory.rules()[ri];
      const bool existential = rule.IsExistential();
      if (existential && options.datalog_only) continue;

      matcher.Enumerate(rule.body, {}, [&](const Binding& b) {
        auto ground = [&](const Atom& a) {
          Atom g = a;
          for (TermId& t : g.args) {
            if (IsVar(t)) {
              auto it = b.find(t);
              if (it != b.end()) t = it->second;
            }
          }
          return g;
        };
        if (!existential) {
          for (const Atom& h : rule.head) {
            Atom g = ground(h);
            assert(g.IsGround() && "datalog rule with unbound head variable");
            if (!out.structure.Contains(g)) datalog_additions.push_back(g);
          }
          return true;
        }
        // Existential TGD: the non-oblivious check — is the head already
        // witnessed in Chase^i under this frontier binding?
        std::vector<Atom> pattern;
        pattern.reserve(rule.head.size());
        for (const Atom& h : rule.head) pattern.push_back(ground(h));
        std::string key;
        if (options.oblivious) {
          // Blind chase: one witness per (rule, body binding), ever.
          key = std::to_string(ri);
          for (const Atom& a : rule.body) {
            Atom g = ground(a);
            key += "|" + std::to_string(g.pred);
            for (TermId t : g.args) key += "," + std::to_string(t);
          }
          if (!fired.insert(key).second) return true;
        } else {
          if (matcher.Exists(pattern, {})) return true;
          key = PatternKey(pattern);
        }
        PendingExistential pe;
        pe.rule_index = static_cast<int>(ri);
        pe.head_pattern = pattern;
        pe.existentials = rule.ExistentialVariables();
        existential_triggers.emplace(std::move(key), std::move(pe));
        return true;
      });
    }

    if (datalog_additions.empty() && existential_triggers.empty()) {
      out.fixpoint_reached = true;
      break;
    }

    size_t added = 0;
    for (const Atom& g : datalog_additions) {
      if (AddFactTracked(&out, g.pred, g.args, static_cast<int>(round))) {
        ++added;
      }
    }
    for (auto& [key, pe] : existential_triggers) {
      (void)key;
      // Invent one null per existential variable of this trigger.
      std::unordered_map<TermId, TermId> witness;
      for (TermId v : pe.existentials) {
        TermId null_id = out.structure.mutable_sig().AddNull();
        witness.emplace(v, null_id);
        ++out.nulls_created;
      }
      for (Atom g : pe.head_pattern) {
        for (TermId& t : g.args) {
          if (IsVar(t)) t = witness.at(t);
        }
        if (AddFactTracked(&out, g.pred, g.args, static_cast<int>(round))) {
          ++added;
        }
        // Record provenance on each fresh null (one shared head atom each).
        for (auto [v, null_id] : witness) {
          (void)v;
          auto it = out.null_provenance.find(null_id);
          if (it == out.null_provenance.end()) {
            NullProvenance np;
            np.birth_round = static_cast<int>(round);
            np.rule_index = pe.rule_index;
            np.head_atom = g;
            out.null_provenance.emplace(null_id, std::move(np));
          }
        }
      }
    }

    out.rounds_run = round;
    out.facts_per_round.push_back(out.structure.NumFacts());

    if (added == 0) {
      // Buffered additions all turned out to be duplicates: fixpoint.
      out.fixpoint_reached = true;
      break;
    }
    if (out.structure.NumFacts() > options.max_facts) {
      out.status = Status::ResourceExhausted(
          "chase exceeded max_facts=" + std::to_string(options.max_facts) +
          " at round " + std::to_string(round));
      return out;
    }
  }

  if (!out.fixpoint_reached) {
    out.status = Status::ResourceExhausted(
        "chase did not reach a fixpoint within max_rounds=" +
        std::to_string(options.max_rounds));
  }
  return out;
}

std::string RuleViolation::ToString(const Signature& sig) const {
  std::string s = "rule #" + std::to_string(rule_index) + " violated by ";
  for (size_t i = 0; i < grounded_body.size(); ++i) {
    if (i) s += ", ";
    s += grounded_body[i].ToString(sig);
  }
  return s;
}

std::optional<RuleViolation> CheckModel(const Structure& m,
                                        const Theory& theory) {
  Matcher matcher(m);
  std::optional<RuleViolation> violation;
  for (size_t ri = 0; ri < theory.rules().size() && !violation; ++ri) {
    const Rule& rule = theory.rules()[ri];
    matcher.Enumerate(rule.body, {}, [&](const Binding& b) {
      // Check head satisfaction: grounded atoms for bound variables,
      // existential variables free for the matcher.
      std::vector<Atom> head = rule.head;
      for (Atom& a : head) {
        for (TermId& t : a.args) {
          if (IsVar(t)) {
            auto it = b.find(t);
            if (it != b.end()) t = it->second;
          }
        }
      }
      if (!matcher.Exists(head, {})) {
        RuleViolation v;
        v.rule_index = static_cast<int>(ri);
        for (const Atom& a : rule.body) {
          Atom g = a;
          for (TermId& t : g.args) {
            auto it = b.find(t);
            if (it != b.end()) t = it->second;
          }
          v.grounded_body.push_back(std::move(g));
        }
        violation = std::move(v);
        return false;
      }
      return true;
    });
  }
  return violation;
}

}  // namespace bddfc
