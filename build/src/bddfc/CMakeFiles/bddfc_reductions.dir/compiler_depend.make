# Empty compiler generated dependencies file for bddfc_reductions.
# This may be replaced when dependencies are built.
