// Differential and metamorphic oracles (DESIGN.md §2.8).
//
// Each oracle cross-checks two independent routes to the same semantic
// answer on one scenario, using the paper's own constructions as ground
// truth: chase-engine agreement (Chase is engine-independent), the Def. 2
// equivalence Chase(D, T) ⊨ Φ ⇔ D ⊨ Φ′ on rewritable theories, rewriter
// thread-count determinism, Parse ∘ Print identity, and independent
// re-certification of Theorem-2 counter-models (M ⊨ D, T₀ and M ⊭ Q).
// An oracle returns kSkip when a scenario is outside its sound fragment or
// a budget trips — only kFail means a real disagreement.

#ifndef BDDFC_TESTING_ORACLES_H_
#define BDDFC_TESTING_ORACLES_H_

#include <string>
#include <string_view>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/chase/chase.h"
#include "bddfc/rewrite/rewriter.h"
#include "bddfc/testing/scenario.h"

namespace bddfc {

/// Shared budgets for oracle checks. Small by default: scenarios are small
/// and CI wants throughput; every budget miss is a skip, never a failure.
struct OracleConfig {
  /// Chase budgets for every chase an oracle runs.
  size_t max_rounds = 24;
  size_t max_facts = 20000;
  /// Rewriter budgets (kept tight; Unknown results are skipped). The atom
  /// cap matters: without it, datalog closures rewritten with a free
  /// answer variable grow disjuncts to ~2^depth atoms and a single
  /// subsumption hom-check backtracks exponentially.
  RewriteOptions rewrite{.max_depth = 8,
                         .max_queries = 600,
                         .max_atoms_per_query = 10,
                         .max_hom_checks = 30000};
  /// Thread counts the determinism oracle compares against threads=1.
  std::vector<size_t> determinism_threads = {4};
  /// Fault injected into the *delta* chase run of the chase-agreement
  /// oracle (the fuzzer's self-test); kNone in normal operation.
  /// kTornExhaust instead targets the governor-prefix oracle: the governed
  /// chase applies a torn round on exhaustion, which that oracle must
  /// flag as a prefix-consistency violation.
  ChaseFault chase_fault = ChaseFault::kNone;
  /// Deterministic governor fault for the governor-prefix oracle
  /// (--inject-fault): each interrupted chase run injects this exhaustion
  /// after a fixed number of cooperative checks and is compared against
  /// the uninterrupted baseline. kNone disables the oracle (skip).
  InjectedFault inject_fault = InjectedFault::kNone;
  /// Paranoia level (--paranoia) for the chase runs *under test* — never
  /// the naive baseline, so an injected corruption the paranoia checks
  /// catch surfaces as a status divergence against the immune baseline.
  ParanoiaLevel paranoia = ParanoiaLevel::kOff;
  /// Chaos-recovery oracle (--chaos): random fault plans per scenario to
  /// run under the supervisor and compare byte-for-byte against the
  /// fault-free run. 0 disables the oracle (skip).
  size_t chaos_plans = 0;
  /// Stream seed for the chaos fault plans (--chaos-seed); combined with
  /// the scenario seed so every scenario sees different plans.
  uint64_t chaos_seed = 0;
};

/// Outcome of one oracle check.
struct OracleOutcome {
  enum class Kind {
    kPass,  ///< both routes agreed
    kSkip,  ///< scenario outside the oracle's fragment, or budget tripped
    kFail,  ///< genuine disagreement — a bug in at least one engine
  };
  Kind kind = Kind::kPass;
  /// Failure diagnosis (which quantity diverged, both values), or the skip
  /// reason. Empty on pass.
  std::string detail;

  static OracleOutcome Pass() { return {}; }
  static OracleOutcome Skip(std::string why) {
    return {Kind::kSkip, std::move(why)};
  }
  static OracleOutcome Fail(std::string why) {
    return {Kind::kFail, std::move(why)};
  }
  bool failed() const { return kind == Kind::kFail; }
};

/// One pluggable cross-check.
class Oracle {
 public:
  virtual ~Oracle() = default;
  /// Stable CLI/corpus name ("chase-agreement", ...).
  virtual std::string_view name() const = 0;
  virtual OracleOutcome Check(const Scenario& s,
                              const OracleConfig& config) const = 0;
};

/// All registered oracles, in a stable order.
const std::vector<const Oracle*>& AllOracles();

/// Looks up an oracle by name; nullptr when unknown.
const Oracle* FindOracle(std::string_view name);

}  // namespace bddfc

#endif  // BDDFC_TESTING_ORACLES_H_
