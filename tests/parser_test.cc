// Tests for the Datalog± text parser.

#include <gtest/gtest.h>

#include "bddfc/parser/parser.h"

namespace bddfc {
namespace {

TEST(ParserTest, ParsesFactsRulesAndQueries) {
  auto r = ParseProgram(R"(
    % a program
    e(a, b).
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z) -> e(X, Z).
    ?- e(X, X).
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Program& p = r.value();
  EXPECT_EQ(p.instance.NumFacts(), 1u);
  EXPECT_EQ(p.theory.size(), 2u);
  ASSERT_EQ(p.queries.size(), 1u);
  EXPECT_EQ(p.queries[0].atoms.size(), 1u);
  EXPECT_TRUE(p.theory.rules()[0].IsExistential());
  EXPECT_TRUE(p.theory.rules()[1].IsDatalog());
}

TEST(ParserTest, ImplicitExistentialsWithoutKeyword) {
  auto r = ParseProgram("e(X, Y) -> e(Y, Z).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Rule& rule = r.value().theory.rules()[0];
  EXPECT_TRUE(rule.IsExistential());
  EXPECT_EQ(rule.ExistentialVariables().size(), 1u);
}

TEST(ParserTest, MultiHeadRule) {
  auto r = ParseProgram("p(X) -> q(X, Y), s(Y).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Rule& rule = r.value().theory.rules()[0];
  EXPECT_EQ(rule.head.size(), 2u);
  EXPECT_EQ(rule.ExistentialVariables().size(), 1u);
}

TEST(ParserTest, ZeroAryAtoms) {
  auto r = ParseProgram("p(X) -> goal. p(a).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().theory.rules()[0].head[0].args.size(), 0u);
}

TEST(ParserTest, VariablesScopePerStatement) {
  auto r = ParseProgram(R"(
    p(X) -> q(X).
    q(X) -> p(X).
  )");
  ASSERT_TRUE(r.ok());
  // Each statement's X gets a fresh id, so the rules don't share variables.
  TermId x0 = r.value().theory.rules()[0].body[0].args[0];
  TermId x1 = r.value().theory.rules()[1].body[0].args[0];
  EXPECT_NE(x0, x1);
}

TEST(ParserTest, ArityMismatchIsRejected) {
  auto r = ParseProgram("e(a, b). e(a).");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(ParserTest, NonGroundFactIsRejected) {
  auto r = ParseProgram("e(a, X).");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ExistentialDeclaredInBodyIsRejected) {
  auto r = ParseProgram("e(X, Y) -> exists Y: e(X, Y).");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, SyntaxErrorsCarryLineInfo) {
  auto r = ParseProgram("e(a, b)\ne(b, c).");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, CommentsAndWhitespaceIgnored) {
  auto r = ParseProgram(R"(
    % comment with -> arrows and (parens
    # hash comment
    e(a, b).   % trailing
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().instance.NumFacts(), 1u);
}

TEST(ParserTest, ParseQueryHelper) {
  Signature sig;
  auto q = ParseQuery("e(X, Y), e(Y, X)", &sig);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().atoms.size(), 2u);
  EXPECT_EQ(q.value().NumVariables(), 2);
}

TEST(ParserTest, RoundTripThroughToString) {
  auto r = ParseProgram("e(X, Y), u(Y) -> exists Z: e(Y, Z).");
  ASSERT_TRUE(r.ok());
  std::string printed = r.value().theory.ToString();
  // Re-parse the printed form; variable names ?0 etc. are not valid input,
  // so just check shape here.
  EXPECT_NE(printed.find("->"), std::string::npos);
  EXPECT_NE(printed.find("exists"), std::string::npos);
}

TEST(ParserTest, SharedSignatureAcrossPrograms) {
  auto sig = std::make_shared<Signature>();
  auto r1 = ParseProgram("e(a, b).", sig);
  ASSERT_TRUE(r1.ok());
  auto r2 = ParseProgram("e(b, c).", sig);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(sig->num_predicates(), 1);
  EXPECT_EQ(sig->num_constants(), 3);
}

}  // namespace
}  // namespace bddfc
