// Shared helpers for the experiment benchmarks (E1–E10, see DESIGN.md).
//
// Each bench binary prints its experiment table (the deterministic
// "figure/table" reproduction recorded in EXPERIMENTS.md) before running
// the google-benchmark timing cases.

#ifndef BDDFC_BENCH_BENCH_COMMON_H_
#define BDDFC_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bddfc/parser/parser.h"

namespace bddfc_bench {

/// Prints the experiment banner.
inline void Banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("================================================================\n");
}

/// Runs the table printer, then the google-benchmark cases.
#define BDDFC_BENCH_MAIN(table_fn)                        \
  int main(int argc, char** argv) {                       \
    table_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }

}  // namespace bddfc_bench

#endif  // BDDFC_BENCH_BENCH_COMMON_H_
