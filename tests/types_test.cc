// Tests for positive types (pebble games), quotients, colorings and
// conservativity — the machinery of §2 and §4, validated against the
// paper's Examples 2–6.

#include <gtest/gtest.h>

#include "bddfc/chase/skeleton.h"
#include "bddfc/eval/match.h"
#include "bddfc/types/coloring.h"
#include "bddfc/types/conservativity.h"
#include "bddfc/types/ptype.h"
#include "bddfc/types/quotient.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

TypePartition MustPartition(const Structure& c, int n) {
  auto r = ExactPtpPartition(c, n);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(PtypeTest, Section22ExamplePositiveTypesCoincide) {
  // §2.2: C = {R(a,b), R(a,c), E(a,c), E(d,e), R(d,e)}. The positive
  // 2-types of a and d coincide although their FO 2-types differ (positive
  // queries cannot express y ≠ z).
  auto sig = std::make_shared<Signature>();
  PredId r = std::move(sig->AddPredicate("r", 2)).ValueOrDie();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  TermId a = sig->AddNull(), b = sig->AddNull(), c = sig->AddNull();
  TermId d = sig->AddNull(), e5 = sig->AddNull();
  Structure s(sig);
  s.AddFact(r, {a, b});
  s.AddFact(r, {a, c});
  s.AddFact(e, {a, c});
  s.AddFact(e, {d, e5});
  s.AddFact(r, {d, e5});

  for (int n = 2; n <= 3; ++n) {
    TypeOracleOptions opts;
    opts.num_variables = n;
    TypeOracle oracle(s, s, opts);
    EXPECT_TRUE(oracle.TypeContained(a, d)) << "n=" << n;
    EXPECT_TRUE(oracle.TypeContained(d, a)) << "n=" << n;
    // But b (a sink with an R-predecessor only) differs from a.
    EXPECT_FALSE(oracle.TypeContained(a, b)) << "n=" << n;
  }
}

TEST(PtypeTest, ChainTypeClassesMatchExample3) {
  // On a finite E-chain, ≡_n distinguishes elements by their distance to
  // either endpoint up to n-1: 2(n-1) + 1 classes (chain long enough).
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 10);
  EXPECT_EQ(MustPartition(chain, 1).num_classes, 1);
  EXPECT_EQ(MustPartition(chain, 2).num_classes, 3);
  EXPECT_EQ(MustPartition(chain, 3).num_classes, 5);
}

TEST(PtypeTest, NamedConstantsAreSingletons) {
  // Remark 1: a constant's positive 1-type contains y = c.
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  TermId a = sig->AddConstant("a");
  TermId n1 = sig->AddNull(), n2 = sig->AddNull();
  Structure s(sig);
  s.AddFact(e, {a, n1});
  s.AddFact(e, {a, n2});
  TypePartition p = MustPartition(s, 2);
  // a alone; n1 and n2 equivalent.
  EXPECT_EQ(p.num_classes, 2);
  EXPECT_NE(p.ClassOf(a), p.ClassOf(n1));
  EXPECT_EQ(p.ClassOf(n1), p.ClassOf(n2));
}

TEST(PtypeTest, ConstantsInAtomsConstrainTypes) {
  // e(c, x) acts like a unary predicate on x: nulls with and without the
  // c-edge have different 1-types... detected at n >= 1.
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  TermId c = sig->AddConstant("c");
  TermId x = sig->AddNull(), y = sig->AddNull(), z = sig->AddNull();
  Structure s(sig);
  s.AddFact(e, {c, x});
  s.AddFact(e, {x, y});
  s.AddFact(e, {z, y});
  // x has an edge from the constant; z does not.
  TypePartition p = MustPartition(s, 1);
  EXPECT_NE(p.ClassOf(x), p.ClassOf(z));
}

TEST(PtypeTest, TypeContainmentIsDirectional) {
  // In a chain, an interior element's type strictly contains an endpoint's.
  auto sig = std::make_shared<Signature>();
  std::vector<TermId> elems;
  Structure chain = MakeChain(sig, 6, &elems);
  TypeOracleOptions opts;
  opts.num_variables = 2;
  TypeOracle oracle(chain, chain, opts);
  // Everything true at the start (only "has successor") holds at interior
  // elements; the converse fails ("has predecessor").
  EXPECT_TRUE(oracle.TypeContained(elems[0], elems[3]));
  EXPECT_FALSE(oracle.TypeContained(elems[3], elems[0]));
}

TEST(PtypeTest, SignatureRestrictionChangesTypes) {
  // Over Θ = {e} two elements agree; over Θ = {e, u} they differ.
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  PredId u = std::move(sig->AddPredicate("u", 1)).ValueOrDie();
  TermId a = sig->AddNull(), b = sig->AddNull();
  TermId c = sig->AddNull(), d = sig->AddNull();
  Structure s(sig);
  s.AddFact(e, {a, b});
  s.AddFact(e, {c, d});
  s.AddFact(u, {a});
  TypeOracleOptions over_e;
  over_e.num_variables = 2;
  over_e.predicates = {e};
  TypeOracle oracle_e(s, s, over_e);
  EXPECT_TRUE(oracle_e.TypeContained(a, c));
  TypeOracleOptions all;
  all.num_variables = 2;
  TypeOracle oracle_all(s, s, all);
  EXPECT_FALSE(oracle_all.TypeContained(a, c));
  EXPECT_TRUE(oracle_all.TypeContained(c, a));
}

TEST(PtypeTest, BallPartitionRefinesExactOnChains) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 8);
  for (int n = 2; n <= 3; ++n) {
    TypePartition exact = MustPartition(chain, n);
    TypePartition ball = BallPartition(chain, n);
    EXPECT_TRUE(IsRefinementOf(ball, exact)) << "n=" << n;
    // On chains the two coincide.
    EXPECT_EQ(ball.num_classes, exact.num_classes) << "n=" << n;
  }
}

TEST(PtypeTest, BallPartitionRefinesExactOnTrees) {
  auto sig = std::make_shared<Signature>();
  Structure tree = MakeBinaryTree(sig, 3);
  TypePartition exact = MustPartition(tree, 2);
  TypePartition ball = BallPartition(tree, 2);
  EXPECT_TRUE(IsRefinementOf(ball, exact));
}

TEST(QuotientTest, Lemma1PartitionsRefineDownward) {
  // q_n(d) = q_n(e) implies q_{n-1}(d) = q_{n-1}(e): ≡_n refines ≡_{n-1}.
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 9);
  TypePartition p3 = MustPartition(chain, 3);
  TypePartition p2 = MustPartition(chain, 2);
  TypePartition p1 = MustPartition(chain, 1);
  EXPECT_TRUE(IsRefinementOf(p3, p2));
  EXPECT_TRUE(IsRefinementOf(p2, p1));
  EXPECT_FALSE(IsRefinementOf(p1, p3));  // strictly coarser here
}

TEST(QuotientTest, ProjectionIsHomomorphism) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 10);
  Quotient q = BuildQuotient(chain, MustPartition(chain, 2));
  // Every fact of C projects to a fact of M (q_n is a homomorphism).
  bool all_mapped = true;
  chain.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    std::vector<TermId> image;
    for (TermId t : row) image.push_back(q.Project(t));
    if (!q.structure.Contains(p, image)) all_mapped = false;
  });
  EXPECT_TRUE(all_mapped);
}

TEST(QuotientTest, ChainQuotientHasExample3Shape) {
  // The finite analogue of Example 3: M_2(chain) is start -> middle(loop)
  // -> end.
  auto sig = std::make_shared<Signature>();
  std::vector<TermId> elems;
  Structure chain = MakeChain(sig, 10, &elems);
  Quotient q = BuildQuotient(chain, MustPartition(chain, 2));
  PredId e = std::move(sig->FindPredicate("e")).ValueOrDie();
  EXPECT_EQ(q.structure.Domain().size(), 3u);
  EXPECT_EQ(q.structure.Rows(e).size(), 3u);
  // Self-loop on the middle class — the new positive-type of Example 3.
  TermId mid = q.Project(elems[5]);
  EXPECT_TRUE(q.structure.Contains(e, {mid, mid}));
  ConjunctiveQuery loop;
  loop.atoms.push_back(Atom(e, {MakeVar(0), MakeVar(0)}));
  EXPECT_FALSE(Satisfies(chain, loop));
  EXPECT_TRUE(Satisfies(q.structure, loop));
}

TEST(ColoringTest, NaturalColoringExistsForForests) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 12);
  auto col = NaturalColoring(chain, 2);
  ASSERT_TRUE(col.ok()) << col.status().ToString();
  // Every element got exactly one color.
  EXPECT_EQ(col.value().color_of.size(), chain.Domain().size());
  EXPECT_TRUE(IsNaturalColoring(col.value(), chain, 2));
  // Hues cycle with period m+2 = 4 (plus reserve hue 0 for constants).
  EXPECT_LE(col.value().num_hues, 5);
}

TEST(ColoringTest, NaturalColoringRejectsNonForest) {
  // Example 6's obstruction: a (finite prefix of a) total order is not a
  // forest — in-degrees exceed 1.
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  std::vector<TermId> v;
  for (int i = 0; i < 5; ++i) v.push_back(sig->AddNull());
  Structure order(sig);
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = i + 1; j < v.size(); ++j) order.AddFact(e, {v[i], v[j]});
  }
  auto col = NaturalColoring(order, 1);
  EXPECT_FALSE(col.ok());
  EXPECT_EQ(col.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ColoringTest, TreeColoringSeparatesAncestors) {
  auto sig = std::make_shared<Signature>();
  std::vector<TermId> elems;
  Structure tree = MakeBinaryTree(sig, 4, &elems);
  auto col = NaturalColoring(tree, 2);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE(IsNaturalColoring(col.value(), tree, 2));
}

TEST(ConservativityTest, UncoloredChainQuotientIsNotConservative) {
  // Example 3: without colors, M_n(C) invents the self-loop query, so even
  // size-1 types are not preserved.
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 10);
  Quotient q = BuildQuotient(chain, MustPartition(chain, 2));
  std::vector<PredId> sigma = {
      std::move(sig->FindPredicate("e")).ValueOrDie()};
  ConservativityReport rep = CheckConservativeUpTo(chain, q, 1, sigma);
  ASSERT_TRUE(rep.status.ok()) << rep.status.ToString();
  EXPECT_FALSE(rep.conservative);
  EXPECT_NE(rep.failing_element, -1);
}

TEST(ConservativityTest, ColoredChainIsConservativePerExample5) {
  // Example 5: coloring with hue window m and n = m + 2 makes the chain
  // n-conservative up to size m.
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 12);
  ConservativityProbe probe = ProbeConservativity(chain, /*m=*/1, /*n=*/3);
  ASSERT_TRUE(probe.status.ok()) << probe.status.ToString();
  EXPECT_TRUE(probe.conservative);
  // The quotient is a bounded-size structure even though chains grow.
  EXPECT_LT(probe.quotient_size, 13);
}

TEST(ConservativityTest, TooSmallNFailsPerExample4) {
  // Example 4 (end of §2.4): with n < m the element a_n is identified with
  // too-shallow elements and long-path queries appear. m = 3, n = 2: not
  // conservative up to size 3.
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, 12);
  ConservativityProbe probe = ProbeConservativity(chain, /*m=*/3, /*n=*/2);
  ASSERT_TRUE(probe.status.ok()) << probe.status.ToString();
  EXPECT_FALSE(probe.conservative);
}

TEST(ConservativityTest, BinaryTreeIsPtpConservative) {
  // Lemma 2 instance: trees are ptp-conservative; probe (m=1, n=3).
  auto sig = std::make_shared<Signature>();
  Structure tree = MakeBinaryTree(sig, 3);
  ConservativityProbe probe = ProbeConservativity(tree, 1, 3);
  ASSERT_TRUE(probe.status.ok()) << probe.status.ToString();
  EXPECT_TRUE(probe.conservative);
}

TEST(ConservativityTest, Lemma12SuccessorTypesPropagate) {
  // Lemma 12: in a VTDAG, R(a, b), R(c, d) and b ≡_n d imply a ≡_{n-1} c.
  auto sig = std::make_shared<Signature>();
  std::vector<TermId> elems;
  Structure chain = MakeChain(sig, 8, &elems);
  PredId e = std::move(sig->FindPredicate("e")).ValueOrDie();
  (void)e;
  for (int n = 2; n <= 3; ++n) {
    TypePartition pn = MustPartition(chain, n);
    TypePartition pn1 = MustPartition(chain, n - 1);
    for (size_t b = 1; b < elems.size(); ++b) {
      for (size_t d = 1; d < elems.size(); ++d) {
        if (pn.ClassOf(elems[b]) == pn.ClassOf(elems[d])) {
          EXPECT_EQ(pn1.ClassOf(elems[b - 1]), pn1.ClassOf(elems[d - 1]))
              << "n=" << n << " b=" << b << " d=" << d;
        }
      }
    }
  }
}

}  // namespace
}  // namespace bddfc
