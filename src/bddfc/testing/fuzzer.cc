#include "bddfc/testing/fuzzer.h"

#include <chrono>
#include <utility>

#include "bddfc/workload/generators.h"

namespace bddfc {

namespace {

void Log(const FuzzOptions& options, const std::string& line) {
  if (options.log != nullptr) options.log(line);
}

}  // namespace

FuzzReport RunFuzzer(const FuzzOptions& options) {
  FuzzReport report;

  std::vector<const Oracle*> oracles;
  if (options.oracle.empty()) {
    oracles = AllOracles();
  } else {
    const Oracle* oracle = FindOracle(options.oracle);
    if (oracle == nullptr) {
      FuzzFailure failure;
      failure.oracle = options.oracle;
      failure.detail = "unknown oracle '" + options.oracle + "'";
      report.failures.push_back(std::move(failure));
      return report;
    }
    oracles.push_back(oracle);
  }

  const auto start = std::chrono::steady_clock::now();
  auto out_of_time = [&] {
    if (options.time_budget_s <= 0) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.time_budget_s;
  };

  for (size_t i = 0; i < options.runs; ++i) {
    if (out_of_time()) {
      report.time_budget_hit = true;
      Log(options, "time budget hit after " + std::to_string(i) + " runs");
      break;
    }
    const uint64_t scenario_seed = Rng::Mix(options.seed, i);
    Scenario scenario = GenerateScenario(scenario_seed);
    ++report.runs_executed;
    ++report.runs_by_family[scenario.family];

    for (const Oracle* oracle : oracles) {
      OracleOutcome outcome = oracle->Check(scenario, options.config);
      const std::string name(oracle->name());
      switch (outcome.kind) {
        case OracleOutcome::Kind::kPass:
          ++report.checks_passed;
          ++report.passes_by_oracle[name];
          break;
        case OracleOutcome::Kind::kSkip:
          ++report.checks_skipped;
          ++report.skips_by_oracle[name];
          break;
        case OracleOutcome::Kind::kFail: {
          Log(options, "FAIL " + name + " seed=" +
                           std::to_string(scenario_seed) + " family=" +
                           scenario.family + ": " + outcome.detail);
          FuzzFailure failure;
          failure.scenario_seed = scenario_seed;
          failure.oracle = name;
          failure.family = scenario.family;
          failure.detail = outcome.detail;
          failure.minimized =
              options.shrink
                  ? ShrinkScenario(scenario, *oracle, options.config,
                                   options.shrink_max_attempts,
                                   &failure.shrink_stats)
                  : scenario;
          if (options.shrink) {
            Log(options,
                "shrunk to " +
                    std::to_string(failure.minimized.theory.rules().size()) +
                    " rules, " +
                    std::to_string(failure.minimized.instance.NumFacts()) +
                    " facts (" + std::to_string(failure.shrink_stats.attempts) +
                    " attempts)");
          }
          CorpusEntry entry;
          entry.oracle = name;
          entry.family = scenario.family;
          entry.seed = scenario_seed;
          if (options.config.inject_fault != InjectedFault::kNone) {
            entry.fault = InjectedFaultName(options.config.inject_fault);
          }
          if (options.config.chaos_plans != 0) {
            entry.chaos = options.config.chaos_plans;
            entry.chaos_seed = options.config.chaos_seed;
          }
          entry.note = outcome.detail;
          entry.program = ScenarioToText(failure.minimized);
          failure.corpus_text = CorpusEntryToText(entry);
          report.failures.push_back(std::move(failure));
          if (options.max_failures != 0 &&
              report.failures.size() >= options.max_failures) {
            return report;
          }
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace bddfc
