file(REMOVE_RECURSE
  "CMakeFiles/bddfc_types.dir/types/coloring.cc.o"
  "CMakeFiles/bddfc_types.dir/types/coloring.cc.o.d"
  "CMakeFiles/bddfc_types.dir/types/conservativity.cc.o"
  "CMakeFiles/bddfc_types.dir/types/conservativity.cc.o.d"
  "CMakeFiles/bddfc_types.dir/types/ptype.cc.o"
  "CMakeFiles/bddfc_types.dir/types/ptype.cc.o.d"
  "CMakeFiles/bddfc_types.dir/types/quotient.cc.o"
  "CMakeFiles/bddfc_types.dir/types/quotient.cc.o.d"
  "libbddfc_types.a"
  "libbddfc_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
