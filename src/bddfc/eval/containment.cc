#include "bddfc/eval/containment.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <vector>

namespace bddfc {

namespace {

/// Backtracking search for query-to-query homomorphisms.
struct QHomSearch {
  const ConjunctiveQuery& from;
  const ConjunctiveQuery& to;
  const std::function<bool(const QueryHom&)>* on_hom;
  QueryHom hom;
  bool stopped = false;
  /// Atoms of `to` grouped by predicate for candidate lookup.
  std::unordered_map<PredId, std::vector<const Atom*>> to_by_pred;

  QHomSearch(const ConjunctiveQuery& f, const ConjunctiveQuery& t,
             const std::function<bool(const QueryHom&)>* cb)
      : from(f), to(t), on_hom(cb) {
    for (const Atom& a : to.atoms) to_by_pred[a.pred].push_back(&a);
  }

  TermId Map(TermId t) const {
    if (IsConst(t)) return t;
    auto it = hom.find(t);
    return it == hom.end() ? t : it->second;
  }

  bool TryAtom(const Atom& src, const Atom& dst,
               std::vector<TermId>* newly_bound) {
    if (src.pred != dst.pred || src.args.size() != dst.args.size()) {
      return false;
    }
    for (size_t i = 0; i < src.args.size(); ++i) {
      TermId t = Map(src.args[i]);
      if (IsConst(t) || hom.count(src.args[i])) {
        if (t != dst.args[i]) return false;
      } else {
        hom.emplace(src.args[i], dst.args[i]);
        newly_bound->push_back(src.args[i]);
      }
    }
    return true;
  }

  void Search(size_t depth) {
    if (stopped) return;
    if (depth == from.atoms.size()) {
      if (!(*on_hom)(hom)) stopped = true;
      return;
    }
    const Atom& src = from.atoms[depth];
    auto it = to_by_pred.find(src.pred);
    if (it == to_by_pred.end()) return;
    std::vector<TermId> newly_bound;
    for (const Atom* dst : it->second) {
      newly_bound.clear();
      if (TryAtom(src, *dst, &newly_bound)) Search(depth + 1);
      for (TermId v : newly_bound) hom.erase(v);
      if (stopped) return;
    }
  }
};

}  // namespace

void EnumerateQueryHoms(const ConjunctiveQuery& from,
                        const ConjunctiveQuery& to,
                        const std::function<bool(const QueryHom&)>& on_hom) {
  // Queries with answer interfaces of different lengths are non-comparable
  // (a Boolean query is never hom-related to a non-Boolean one); pin answer
  // terms pairwise otherwise.
  if (from.answer_vars.size() != to.answer_vars.size()) return;
  QHomSearch search(from, to, &on_hom);
  for (size_t i = 0; i < from.answer_vars.size(); ++i) {
    TermId src = from.answer_vars[i];
    TermId dst = to.answer_vars[i];
    if (IsVar(src)) {
      auto [it, inserted] = search.hom.emplace(src, dst);
      if (!inserted && it->second != dst) return;
    } else if (src != dst) {
      return;
    }
  }
  search.Search(0);
}

bool HasQueryHom(const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  bool found = false;
  EnumerateQueryHoms(from, to, [&](const QueryHom&) {
    found = true;
    return false;
  });
  return found;
}

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return HasQueryHom(q2, q1);
}

bool AreHomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return HasQueryHom(a, b) && HasQueryHom(b, a);
}

ConjunctiveQuery CoreOf(const ConjunctiveQuery& q) {
  ConjunctiveQuery cur = q;
  // Drop duplicate atoms first.
  std::sort(cur.atoms.begin(), cur.atoms.end());
  cur.atoms.erase(std::unique(cur.atoms.begin(), cur.atoms.end()),
                  cur.atoms.end());

  bool changed = true;
  while (changed) {
    changed = false;
    // A proper retraction is a hom from cur to cur whose image misses some
    // variable; folding through it yields a smaller equivalent query.
    std::vector<TermId> vars = cur.Variables();
    std::unordered_set<TermId> answers(cur.answer_vars.begin(),
                                       cur.answer_vars.end());
    QueryHom retraction;
    bool found = false;
    EnumerateQueryHoms(cur, cur, [&](const QueryHom& h) {
      std::unordered_set<TermId> image;
      for (TermId v : vars) {
        auto it = h.find(v);
        TermId img = it == h.end() ? v : it->second;
        if (IsVar(img)) image.insert(img);
      }
      if (image.size() < vars.size()) {
        // Answer variables must be fixed by the retraction.
        for (TermId v : cur.answer_vars) {
          auto it = h.find(v);
          if (it != h.end() && it->second != v) return true;  // keep looking
        }
        retraction = h;
        found = true;
        return false;
      }
      return true;
    });
    if (found) {
      ConjunctiveQuery next;
      next.answer_vars = cur.answer_vars;
      for (const Atom& a : cur.atoms) {
        Atom b = a;
        for (TermId& t : b.args) {
          if (IsVar(t)) {
            auto it = retraction.find(t);
            if (it != retraction.end()) t = it->second;
          }
        }
        next.atoms.push_back(std::move(b));
      }
      std::sort(next.atoms.begin(), next.atoms.end());
      next.atoms.erase(std::unique(next.atoms.begin(), next.atoms.end()),
                       next.atoms.end());
      cur = std::move(next);
      changed = true;
    }
  }
  return cur;
}

bool UcqContainedIn(const UnionOfCQs& a, const UnionOfCQs& b) {
  return std::all_of(a.begin(), a.end(), [&](const ConjunctiveQuery& qa) {
    return std::any_of(b.begin(), b.end(), [&](const ConjunctiveQuery& qb) {
      return IsContainedIn(qa, qb);
    });
  });
}

namespace {

/// 64-bit bloom bit for an id (predicate or constant).
uint64_t MaskBit(int64_t id) {
  return uint64_t{1} << (static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL >>
                         58);
}

}  // namespace

CqFilterSignature MakeFilterSignature(const ConjunctiveQuery& q) {
  CqFilterSignature sig;
  sig.num_atoms = q.atoms.size();
  sig.num_answer_vars = q.answer_vars.size();
  sig.pred_counts.reserve(q.atoms.size());
  for (const Atom& a : q.atoms) {
    sig.pred_mask |= MaskBit(a.pred);
    auto it = std::lower_bound(
        sig.pred_counts.begin(), sig.pred_counts.end(),
        std::make_pair(a.pred, uint32_t{0}),
        [](const auto& x, const auto& y) { return x.first < y.first; });
    if (it != sig.pred_counts.end() && it->first == a.pred) {
      ++it->second;
    } else {
      sig.pred_counts.insert(it, {a.pred, 1});
    }
    for (TermId t : a.args) {
      if (IsConst(t)) sig.const_mask |= MaskBit(t);
    }
  }
  for (TermId t : q.answer_vars) {
    if (IsConst(t)) sig.const_mask |= MaskBit(t);
  }
  return sig;
}

bool HomPossible(const CqFilterSignature& from, const CqFilterSignature& to) {
  if (from.num_answer_vars != to.num_answer_vars) return false;
  // Homs may map several atoms onto one, so only *presence* of each
  // predicate (and constant) of `from` in `to` is necessary, not counts.
  if ((from.pred_mask & ~to.pred_mask) != 0) return false;
  if ((from.const_mask & ~to.const_mask) != 0) return false;
  auto it = to.pred_counts.begin();
  for (const auto& [pred, count] : from.pred_counts) {
    (void)count;
    while (it != to.pred_counts.end() && it->first < pred) ++it;
    if (it == to.pred_counts.end() || it->first != pred) return false;
  }
  return true;
}

bool UcqSubsumptionIndex::Subsumes(const ConjunctiveQuery& q,
                                   SubsumptionStats* stats) const {
  CqFilterSignature qsig = MakeFilterSignature(q);
  for (const Entry& e : entries_) {
    if (e.dead) continue;
    // q ⊆ e.q needs a hom from e.q into q.
    if (!HomPossible(e.sig, qsig)) {
      if (stats != nullptr) ++stats->prefilter_skipped;
      continue;
    }
    if (stats != nullptr) ++stats->hom_checks;
    if (HasQueryHom(e.q, q)) return true;
  }
  return false;
}

std::vector<size_t> UcqSubsumptionIndex::SubsumedBy(
    const ConjunctiveQuery& q, SubsumptionStats* stats) const {
  CqFilterSignature qsig = MakeFilterSignature(q);
  std::vector<size_t> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.dead) continue;
    // e.q ⊆ q needs a hom from q into e.q.
    if (!HomPossible(qsig, e.sig)) {
      if (stats != nullptr) ++stats->prefilter_skipped;
      continue;
    }
    if (stats != nullptr) ++stats->hom_checks;
    if (HasQueryHom(q, e.q)) out.push_back(i);
  }
  return out;
}

size_t UcqSubsumptionIndex::Add(ConjunctiveQuery q) {
  Entry e;
  e.sig = MakeFilterSignature(q);
  e.q = std::move(q);
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

UnionOfCQs MinimizeUcq(const UnionOfCQs& ucq, SubsumptionStats* stats) {
  // Core each disjunct so equivalence classes collapse toward canonical
  // minimal representatives, and group by canonical key: syntactically
  // identical normal forms keep one (the earliest) representative without
  // any hom search.
  UnionOfCQs reps;
  reps.reserve(ucq.size());
  {
    std::unordered_set<std::string> seen_keys;
    for (const ConjunctiveQuery& q : ucq) {
      ConjunctiveQuery cored = CoreOf(q);
      if (seen_keys.insert(cored.CanonicalKey()).second) {
        reps.push_back(std::move(cored));
      }
    }
  }

  // One ordered sweep through the index: a representative subsumed by an
  // earlier kept one is dropped (equivalent disjuncts keep the earliest);
  // otherwise it retires every kept disjunct it strictly subsumes. Each
  // surviving pair is probed in at most one direction per sweep step.
  UcqSubsumptionIndex index;
  for (ConjunctiveQuery& q : reps) {
    if (index.Subsumes(q, stats)) continue;
    for (size_t victim : index.SubsumedBy(q, stats)) index.Retire(victim);
    index.Add(std::move(q));
  }
  UnionOfCQs out;
  for (size_t i = 0; i < index.size(); ++i) {
    if (!index.dead(i)) out.push_back(index.at(i));
  }
  return out;
}

}  // namespace bddfc
