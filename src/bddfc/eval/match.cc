#include "bddfc/eval/match.h"

#include <algorithm>
#include <cassert>

#include "bddfc/eval/exec.h"

namespace bddfc {

namespace {

/// Backtracking state shared across the recursion.
struct SearchState {
  const Structure& s;
  std::vector<Atom> atoms;         // remaining atoms are atoms[depth..]
  std::vector<RowBand> bands;      // parallel to atoms; reordered with them
  Binding binding;
  const std::function<bool(const Binding&)>* on_match;
  MatchStats* stats;
  bool stopped = false;

  SearchState(const Structure& s_, std::vector<Atom> a,
              std::vector<RowBand> b,
              const std::function<bool(const Binding&)>* cb,
              MatchStats* st)
      : s(s_), atoms(std::move(a)), bands(std::move(b)), on_match(cb),
        stats(st) {
    if (bands.empty()) bands.resize(atoms.size());
  }

  /// Width of atom i's band once clamped to its relation (its row count).
  size_t BandWidth(size_t i) const {
    size_t n = s.Rows(atoms[i].pred).size();
    size_t hi = std::min<size_t>(bands[i].end, n);
    size_t lo = bands[i].begin;
    return lo < hi ? hi - lo : 0;
  }

  TermId ResolveTerm(TermId t) const {
    if (IsConst(t)) return t;
    auto it = binding.find(t);
    return it == binding.end() ? t : it->second;
  }

  /// Number of bound argument positions of atom i (selectivity heuristic).
  int BoundPositions(size_t i) const {
    int n = 0;
    for (TermId t : atoms[i].args) {
      if (IsConst(ResolveTerm(t))) ++n;
    }
    return n;
  }

  /// Picks the most constrained remaining atom and swaps it to `depth`
  /// (band width stands in for the row count, so a narrow delta band is
  /// preferred over a wide full-relation scan).
  void SelectAtom(size_t depth) {
    size_t best = depth;
    int best_bound = -1;
    size_t best_rows = 0;
    for (size_t i = depth; i < atoms.size(); ++i) {
      int b = BoundPositions(i);
      size_t rows = BandWidth(i);
      if (b > best_bound || (b == best_bound && rows < best_rows)) {
        best_bound = b;
        best_rows = rows;
        best = i;
      }
    }
    std::swap(atoms[depth], atoms[best]);
    std::swap(bands[depth], bands[best]);
  }

  /// Tries to unify atom `a`'s pattern with a stored row; on success binds
  /// newly bound variables and records them in `newly_bound`.
  bool TryRow(const Atom& a, const std::vector<TermId>& row,
              std::vector<TermId>* newly_bound) {
    for (size_t i = 0; i < a.args.size(); ++i) {
      TermId t = ResolveTerm(a.args[i]);
      if (IsConst(t)) {
        if (t != row[i]) {
          return false;
        }
      } else {
        auto [it, inserted] = binding.emplace(t, row[i]);
        if (inserted) {
          newly_bound->push_back(t);
        } else if (it->second != row[i]) {
          return false;
        }
      }
    }
    return true;
  }

  void UndoBindings(const std::vector<TermId>& newly_bound) {
    for (TermId v : newly_bound) binding.erase(v);
  }

  void Search(size_t depth) {
    if (stopped) return;
    if (depth == atoms.size()) {
      if (stats != nullptr) ++stats->bindings_tried;
      if (!(*on_match)(binding)) stopped = true;
      return;
    }
    SelectAtom(depth);
    const Atom& a = atoms[depth];
    const auto& rows = s.Rows(a.pred);
    const uint32_t lo = bands[depth].begin;
    const uint32_t hi =
        std::min<uint32_t>(bands[depth].end, static_cast<uint32_t>(rows.size()));
    if (lo >= hi) return;  // empty band: nothing can match

    // Choose candidate rows: the posting list of the most selective bound
    // position, else the band of the relation. This instantiation counts
    // as at most ONE hit or ONE miss no matter how many positions are
    // probed while picking the smallest list (the counter contract shared
    // with the plan executor — see MatchStats).
    const std::vector<uint32_t>* postings = nullptr;
    for (size_t i = 0; i < a.args.size(); ++i) {
      TermId t = ResolveTerm(a.args[i]);
      if (IsConst(t)) {
        const std::vector<uint32_t>* p =
            s.Postings(a.pred, static_cast<int>(i), t);
        if (p == nullptr) {
          if (stats != nullptr) ++stats->postings_misses;
          return;  // no row matches this constant
        }
        if (postings == nullptr || p->size() < postings->size()) postings = p;
      }
    }

    std::vector<TermId> newly_bound;
    if (postings != nullptr) {
      // Posting lists are append-ordered, so the band is a contiguous slice.
      auto it = std::lower_bound(postings->begin(), postings->end(), lo);
      if (it == postings->end() || *it >= hi) {
        if (stats != nullptr) ++stats->postings_misses;
        return;  // the probe found no candidate rows inside the band
      }
      if (stats != nullptr) ++stats->postings_hits;
      for (; it != postings->end() && *it < hi; ++it) {
        if (stats != nullptr) ++stats->rows_scanned;
        newly_bound.clear();
        if (TryRow(a, rows[*it], &newly_bound)) Search(depth + 1);
        UndoBindings(newly_bound);
        if (stopped) return;
      }
    } else {
      for (uint32_t r = lo; r < hi; ++r) {
        if (stats != nullptr) ++stats->rows_scanned;
        newly_bound.clear();
        if (TryRow(a, rows[r], &newly_bound)) Search(depth + 1);
        UndoBindings(newly_bound);
        if (stopped) return;
      }
    }
  }
};

}  // namespace

bool Matcher::Exists(const std::vector<Atom>& atoms,
                     const Binding& partial) const {
  bool found = false;
  std::function<bool(const Binding&)> cb = [&](const Binding&) {
    found = true;
    return false;  // stop at first match
  };
  SearchState st(s_, atoms, {}, &cb, stats_);
  st.binding = partial;
  st.Search(0);
  return found;
}

void Matcher::Enumerate(const std::vector<Atom>& atoms, const Binding& partial,
                        const std::function<bool(const Binding&)>& on_match)
    const {
  SearchState st(s_, atoms, {}, &on_match, stats_);
  st.binding = partial;
  st.Search(0);
}

void Matcher::EnumerateBanded(
    const std::vector<Atom>& atoms, const std::vector<RowBand>& bands,
    const Binding& partial,
    const std::function<bool(const Binding&)>& on_match) const {
  assert(bands.size() == atoms.size());
  SearchState st(s_, atoms, bands, &on_match, stats_);
  st.binding = partial;
  st.Search(0);
}

size_t Matcher::CountMatches(const std::vector<Atom>& atoms,
                             const Binding& partial) const {
  size_t n = 0;
  Enumerate(atoms, partial, [&](const Binding&) {
    ++n;
    return true;
  });
  return n;
}

bool Satisfies(const Structure& s, const ConjunctiveQuery& q) {
  // Plan-backed since the compiled join backend landed: a Boolean result
  // is enumeration-order-independent, so the rewriter's certain-answer
  // path and every other caller gets the vectorized executor for free.
  return PlanExists(s, q.atoms);
}

bool SatisfiesUcq(const Structure& s, const UnionOfCQs& ucq) {
  return std::any_of(ucq.begin(), ucq.end(), [&](const ConjunctiveQuery& q) {
    return Satisfies(s, q);
  });
}

bool SatisfiesAt(const Structure& s, const ConjunctiveQuery& q, TermId e) {
  assert(!q.answer_vars.empty());
  Binding partial;
  partial.emplace(q.answer_vars[0], e);
  return PlanExists(s, q.atoms, partial);
}

ConjunctiveQuery StructureToQuery(const Structure& s) {
  std::unordered_map<TermId, TermId> null_to_var;
  int32_t next_var = 0;
  ConjunctiveQuery q;
  s.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    Atom a;
    a.pred = p;
    a.args.reserve(row.size());
    for (TermId c : row) {
      if (s.sig().IsNull(c)) {
        auto it = null_to_var.find(c);
        if (it == null_to_var.end()) {
          it = null_to_var.emplace(c, MakeVar(next_var++)).first;
        }
        a.args.push_back(it->second);
      } else {
        a.args.push_back(c);
      }
    }
    q.atoms.push_back(std::move(a));
  });
  return q;
}

bool HasHomomorphism(const Structure& a, const Structure& b) {
  return Satisfies(b, StructureToQuery(a));
}

}  // namespace bddfc
