// E4 — Quotient structures M_n(C) on the E-chain (Examples 3–5): size of
// the quotient versus n, uncolored vs naturally colored, and across the
// three partitioners (exact ≡_n, neighborhood ball, ancestor path).
// Expected shapes: uncolored quotients have 2n-1 classes regardless of
// chain length (Example 3); coloring with window m multiplies classes by
// roughly the hue period (Example 4); all partitions agree on chains.

#include "bench_common.h"

#include "bddfc/types/coloring.h"
#include "bddfc/types/ptype.h"
#include "bddfc/types/quotient.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E4", "quotient size |M_n(chain)| vs n");
  const int kChain = 512;
  std::printf("chain length: %d edges (ball/ancestor partitions); exact on "
              "64 edges\n\n", kChain);
  std::printf("%-10s %-4s %-12s %-12s %-14s %-12s\n", "coloring", "n",
              "exact(64)", "ball(512)", "ancestor(512)", "classes==");

  for (int m : {0, 1, 2}) {  // 0 = uncolored
    auto sig_small = std::make_shared<Signature>();
    Structure small = MakeChain(sig_small, 64);
    auto sig_big = std::make_shared<Signature>();
    Structure big = MakeChain(sig_big, kChain);

    const Structure* small_c = &small;
    const Structure* big_c = &big;
    Result<Coloring> col_small = NaturalColoring(small, std::max(m, 1));
    Result<Coloring> col_big = NaturalColoring(big, std::max(m, 1));
    if (m > 0) {
      small_c = &col_small.value().colored;
      big_c = &col_big.value().colored;
    }

    for (int n = 2; n <= 4; ++n) {
      Result<TypePartition> exact = ExactPtpPartition(*small_c, n, {}, 5000000);
      TypePartition ball = BallPartition(*big_c, n);
      TypePartition anc = AncestorPathPartition(*big_c, n);
      std::printf("%-10s %-4d %-12s %-12d %-14d %-12s\n",
                  m == 0 ? "none" : ("m=" + std::to_string(m)).c_str(), n,
                  exact.ok() ? std::to_string(exact.value().num_classes).c_str()
                             : "(budget)",
                  ball.num_classes, anc.num_classes,
                  ball.num_classes == anc.num_classes ? "ball=anc" : "differ");
    }
  }
}

void BM_ExactPartition(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto p = ExactPtpPartition(chain, static_cast<int>(state.range(1)));
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_ExactPartition)->Args({16, 2})->Args({32, 2})->Args({16, 3});

void BM_BallPartition(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TypePartition p = BallPartition(chain, 3);
    benchmark::DoNotOptimize(p.num_classes);
  }
}
BENCHMARK(BM_BallPartition)->Arg(128)->Arg(512)->Arg(2048);

void BM_BuildQuotient(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Structure chain = MakeChain(sig, static_cast<int>(state.range(0)));
  TypePartition p = BallPartition(chain, 3);
  for (auto _ : state) {
    Quotient q = BuildQuotient(chain, p);
    benchmark::DoNotOptimize(q.structure.NumFacts());
  }
}
BENCHMARK(BM_BuildQuotient)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
