// Certain answers to non-Boolean conjunctive queries.
//
// A tuple ā of named constants is a certain answer to Q(x̄) over (D, T)
// iff Chase(D, T) ⊨ Q(ā) (§1.1) iff D ⊨ Φ′(ā) for a rewriting Φ′ (Def. 2).
// Both routes are provided; answers binding labeled nulls are never
// reported (nulls are not database values).

#ifndef BDDFC_EVAL_ANSWERS_H_
#define BDDFC_EVAL_ANSWERS_H_

#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/chase/chase.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"
#include "bddfc/rewrite/rewriter.h"

namespace bddfc {

/// Certain answers plus a completeness marker.
struct CertainAnswersResult {
  Status status = Status::OK();
  /// Distinct answer tuples (one entry per answer variable), sorted.
  std::vector<std::vector<TermId>> answers;
  /// True when the result is provably complete: the chase reached a
  /// fixpoint (chase route) or the rewriting saturated (rewriting route).
  /// Otherwise `answers` is a sound subset.
  bool complete = false;
};

/// Certain answers via the chase. `query.answer_vars` must be non-empty.
CertainAnswersResult CertainAnswers(const Theory& theory,
                                    const Structure& instance,
                                    const ConjunctiveQuery& query,
                                    const ChaseOptions& chase_options = {});

/// Certain answers via a UCQ rewriting evaluated directly on the instance.
CertainAnswersResult CertainAnswersViaRewriting(
    const Theory& theory, const Structure& instance,
    const ConjunctiveQuery& query, const RewriteOptions& options = {});

}  // namespace bddfc

#endif  // BDDFC_EVAL_ANSWERS_H_
