# CMake generated Testfile for 
# Source directory: /root/repo/src/bddfc
# Build directory: /root/repo/build/src/bddfc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
