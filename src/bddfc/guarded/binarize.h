// §5.6: Guarded Datalog∃ programs are "binary in disguise".
//
// The transformation realizes the paper's steps (ii)–(vii):
//  * parent links F_i(x, y) — "x is the i-th parent of y" (binary);
//  * per-TGD witness edges E_r(y, z) — "the TGD r fired on a tuple led by
//    y and created z" — plus monadic markers R^m(z) replacing the wide TGP
//    atom R(x̄, z);
//  * the (♦) rules F_j(x, y) ∧ E_r(y, z) ⇒ F_i(x, z) teaching each new
//    element who its parents are;
//  * monadic encodings Q_{i1...il}(y) of every non-TGP atom — y remembers
//    which of its parents are involved — with transfer rules propagating
//    the knowledge between elements sharing parents. Index 0 denotes y
//    itself.
//
// Preconditions (the paper's steps (i) and (iv), assumed established by the
// caller): the theory is guarded, single-head, each TGP occurs in the head
// of exactly one TGD, TGDs have exactly one existential variable in the
// last head position, and TGPs do not occur in datalog heads.

#ifndef BDDFC_GUARDED_BINARIZE_H_
#define BDDFC_GUARDED_BINARIZE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// Output of the guarded→binary transformation.
struct GuardedBinarization {
  Theory theory;  ///< the binary program T′
  /// Parent-link predicates F_1..F_K (index 1-based; [0] unused).
  std::vector<PredId> parent_links;
  /// Per original TGD rule index: the witness-edge predicate E_r.
  std::unordered_map<int, PredId> witness_edge;
  /// Per TGP: the monadic marker R^m.
  std::unordered_map<PredId, PredId> tgp_marker;
  /// Monadic encodings: (non-TGP predicate, parent-index tuple) → Q_ī.
  std::map<std::pair<PredId, std::vector<int>>, PredId> monadic;

  explicit GuardedBinarization(SignaturePtr sig) : theory(std::move(sig)) {}
};

/// Runs the transformation. Every predicate of the output theory is unary
/// or binary.
Result<GuardedBinarization> GuardedToBinary(const Theory& theory);

}  // namespace bddfc

#endif  // BDDFC_GUARDED_BINARIZE_H_
