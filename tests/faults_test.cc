// Unit tests of the chaos substrate (base/faults.h): schedule semantics,
// fire bounds, hit/fire accounting, random-plan determinism and the
// governor's registry integration (CheckFault, InjectFaultAfterChecks as
// a veneer, RecordInvariantViolation).

#include "bddfc/base/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bddfc/base/governor.h"

namespace bddfc {
namespace {

TEST(FaultRegistryTest, DisarmedIsInertAndCountsNothing) {
  FaultRegistry reg;
  EXPECT_FALSE(reg.enabled());
  FaultFire fire = reg.Hit(faults::kChaseRound);
  EXPECT_FALSE(fire.fired);
  // A disarmed registry skips even hit accounting (the zero-cost path).
  EXPECT_EQ(reg.HitCount(faults::kChaseRound), 0u);
  EXPECT_TRUE(reg.ArmedSites().empty());
}

TEST(FaultRegistryTest, AfterNFiresOnEveryHitPastN) {
  FaultRegistry reg;
  reg.Arm({.site = faults::kSinkMerge, .schedule = FaultSchedule::kAfterN,
           .n = 2});
  EXPECT_TRUE(reg.enabled());
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(reg.Hit(faults::kSinkMerge).fired);
  // 1-based hits: 1, 2 pass; 3, 4, 5 fire (legacy "after N checks" shape).
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
  EXPECT_EQ(reg.HitCount(faults::kSinkMerge), 5u);
  EXPECT_EQ(reg.FireCount(faults::kSinkMerge), 3u);
}

TEST(FaultRegistryTest, EveryNFiresOnMultiples) {
  FaultRegistry reg;
  reg.Arm({.site = faults::kPoolTask, .schedule = FaultSchedule::kEveryN,
           .n = 3});
  std::vector<bool> fired;
  for (int i = 0; i < 7; ++i) fired.push_back(reg.Hit(faults::kPoolTask).fired);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false}));
}

TEST(FaultRegistryTest, MaxFiresBoundsTheBlastRadius) {
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound, .schedule = FaultSchedule::kAfterN,
           .n = 0, .max_fires = 2});
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += reg.Hit(faults::kChaseRound).fired;
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(reg.FireCount(faults::kChaseRound), 2u);
  EXPECT_EQ(reg.HitCount(faults::kChaseRound), 10u);
}

TEST(FaultRegistryTest, ProbabilityScheduleIsDeterministicAndSeeded) {
  auto run = [](uint64_t seed) {
    FaultRegistry reg;
    reg.Arm({.site = faults::kIndexRefresh,
             .schedule = FaultSchedule::kProbability, .p = 0.5, .seed = seed});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(reg.Hit(faults::kIndexRefresh).fired);
    }
    return fired;
  };
  // Same seed => same firing pattern; different seed => (almost surely)
  // different; p=0.5 over 64 draws fires at least once and spares at
  // least once.
  std::vector<bool> a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultRegistryTest, HitsAreCountedForUnarmedSitesWhenEnabled) {
  // Coverage accounting: once any fault is armed, every instrumented site
  // that executes records its hits — tests assert site coverage this way.
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound, .schedule = FaultSchedule::kAfterN,
           .n = 1000});
  (void)reg.Hit(faults::kSinkMerge);
  (void)reg.Hit(faults::kSinkMerge);
  EXPECT_EQ(reg.HitCount(faults::kSinkMerge), 2u);
  EXPECT_EQ(reg.FireCount(faults::kSinkMerge), 0u);
  EXPECT_EQ(reg.ArmedSites(), std::vector<std::string>{faults::kChaseRound});
}

TEST(FaultRegistryTest, DisarmClearsEverything) {
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound, .schedule = FaultSchedule::kAfterN});
  (void)reg.Hit(faults::kChaseRound);
  reg.Disarm();
  EXPECT_FALSE(reg.enabled());
  EXPECT_EQ(reg.HitCount(faults::kChaseRound), 0u);
  EXPECT_EQ(reg.FireCount(faults::kChaseRound), 0u);
  EXPECT_TRUE(reg.ArmedSites().empty());
}

TEST(FaultRegistryTest, HitIsThreadSafe) {
  FaultRegistry reg;
  reg.Arm({.site = faults::kPoolTask, .schedule = FaultSchedule::kEveryN,
           .n = 2, .max_fires = 100});
  constexpr int kThreads = 8, kHitsEach = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kHitsEach; ++i) (void)reg.Hit(faults::kPoolTask);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.HitCount(faults::kPoolTask), uint64_t{kThreads * kHitsEach});
  // every-2 over 2000 hits capped at 100 fires.
  EXPECT_EQ(reg.FireCount(faults::kPoolTask), 100u);
}

TEST(FaultRegistryTest, SiteListsAreConsistent) {
  const std::vector<std::string>& all = AllFaultSites();
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(std::set<std::string>(all.begin(), all.end()).size(), all.size());
  // Recoverable = all minus the parser (no retry loop) and the behavioral
  // chase.bug site.
  std::set<std::string> recoverable(RecoverableFaultSites().begin(),
                                    RecoverableFaultSites().end());
  EXPECT_EQ(recoverable.size(), all.size() - 2);
  for (const std::string& s : recoverable) {
    EXPECT_NE(std::find(all.begin(), all.end(), s), all.end()) << s;
  }
  EXPECT_EQ(recoverable.count(faults::kParserParse), 0u);
  EXPECT_EQ(recoverable.count(faults::kChaseBug), 0u);
}

TEST(RandomFaultPlanTest, DeterministicBoundedAndRecoverable) {
  std::set<std::string> plans_seen;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultPlan a = RandomFaultPlan(seed);
    FaultPlan b = RandomFaultPlan(seed);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
    ASSERT_FALSE(a.empty());
    ASSERT_LE(a.faults.size(), 3u);
    for (const FaultSpec& spec : a.faults) {
      // Always bounded fail-stop: that is what guarantees a supervised run
      // recovers (the retry budget covers 3 specs x 2 fires).
      EXPECT_TRUE(spec.action.empty()) << spec.ToString();
      EXPECT_GE(spec.max_fires, 1u);
      EXPECT_LE(spec.max_fires, 2u);
      EXPECT_NE(std::find(RecoverableFaultSites().begin(),
                          RecoverableFaultSites().end(), spec.site),
                RecoverableFaultSites().end())
          << spec.ToString();
      if (spec.schedule == FaultSchedule::kProbability) {
        EXPECT_GE(spec.p, 0.3);
        EXPECT_LE(spec.p, 0.9);
      }
    }
    plans_seen.insert(a.ToString());
  }
  // The stream actually varies across seeds.
  EXPECT_GT(plans_seen.size(), 100u);
}

TEST(RandomFaultPlanTest, SiteRestrictionIsHonored) {
  std::vector<std::string> only = {faults::kSinkMerge};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    for (const FaultSpec& spec : RandomFaultPlan(seed, only).faults) {
      EXPECT_EQ(spec.site, faults::kSinkMerge);
    }
  }
}

TEST(ParanoiaLevelTest, NamesRoundTrip) {
  for (ParanoiaLevel level :
       {ParanoiaLevel::kOff, ParanoiaLevel::kCheap, ParanoiaLevel::kFull}) {
    ParanoiaLevel parsed = ParanoiaLevel::kOff;
    EXPECT_TRUE(ParanoiaLevelFromName(ParanoiaLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  ParanoiaLevel out = ParanoiaLevel::kFull;
  EXPECT_FALSE(ParanoiaLevelFromName("paranoid", &out));
  EXPECT_EQ(out, ParanoiaLevel::kFull);  // left alone on failure
}

TEST(GovernorFaultTest, CheckFaultTripsOnlyTheCheckingContext) {
  FaultRegistry reg;
  reg.Arm({.site = faults::kChaseRound, .schedule = FaultSchedule::kAfterN,
           .n = 0, .max_fires = 1});
  ExecutionContext parent;
  parent.SetFaultRegistry(&reg);
  std::unique_ptr<ExecutionContext> child = parent.CreateChild(0);
  Status st = child->CheckFault(faults::kChaseRound);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_TRUE(child->Exhausted());
  // The parent stays clean — the supervisor's isolation contract.
  EXPECT_FALSE(parent.Exhausted());
  EXPECT_TRUE(parent.CheckPoint("after child trip").ok());
  // A fresh child starts clean too (and the fault's budget is spent).
  std::unique_ptr<ExecutionContext> retry = parent.CreateChild(0);
  EXPECT_TRUE(retry->CheckFault(faults::kChaseRound).ok());
}

TEST(GovernorFaultTest, LegacyInjectFaultIsARegistryVeneer) {
  // InjectFaultAfterChecks must behave exactly as before the registry:
  // the chosen exhaustion after N checks, with the legacy message shape.
  ExecutionContext ctx;
  ctx.InjectFaultAfterChecks(InjectedFault::kDeadline, 2);
  EXPECT_TRUE(ctx.CheckPoint("one").ok());
  EXPECT_TRUE(ctx.CheckPoint("two").ok());
  Status st = ctx.CheckPoint("three");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("injected fault after 2 checks"),
            std::string::npos)
      << st.ToString();
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kDeadline);
}

TEST(GovernorFaultTest, EmptyActionAtGovernorCheckIsFailStop) {
  FaultRegistry reg;
  reg.Arm({.site = faults::kGovernorCheck, .schedule = FaultSchedule::kAfterN,
           .n = 0, .max_fires = 1});
  ExecutionContext ctx;
  ctx.SetFaultRegistry(&reg);
  Status st = ctx.CheckPoint("somewhere");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kFault);
}

TEST(GovernorFaultTest, InvariantViolationIsNeverMasked) {
  ExecutionContext ctx;
  // An earlier governed trip latches first...
  ctx.InjectFaultAfterChecks(InjectedFault::kCancel, 0);
  EXPECT_EQ(ctx.CheckPoint("warmup").code(), StatusCode::kResourceExhausted);
  // ...but a corruption found while unwinding still reports as kInternal
  // with its own detail: data corruption must outrank budget exhaustion.
  Status st = ctx.RecordInvariantViolation("paranoia: rows vanished");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("rows vanished"), std::string::npos);
}

}  // namespace
}  // namespace bddfc
