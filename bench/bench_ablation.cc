// E11 — Ablations of the pipeline's design choices.
//
// (a) Coloring: quotient the Example 7 skeleton with and without the
//     natural coloring and try to certify. Without colors the quotient
//     collapses too much (Example 3's parasite types) and certification
//     fails; with colors it succeeds. Coloring is load-bearing.
// (b) Saturation strategy: naive round-based datalog chase vs the
//     semi-naive delta engine on transitive closure workloads.

#include "bench_common.h"

#include "bddfc/chase/chase.h"
#include "bddfc/chase/seminaive.h"
#include "bddfc/chase/skeleton.h"
#include "bddfc/eval/match.h"
#include "bddfc/reductions/reductions.h"
#include "bddfc/types/coloring.h"
#include "bddfc/types/ptype.h"
#include "bddfc/types/quotient.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

/// Runs skeleton→quotient→saturate→certify on Example 7 with or without
/// coloring; returns "certified" / the failure stage.
std::string TryExample7(bool with_coloring, int n, size_t depth) {
  Program p = Example7();
  auto q = std::move(
      ParseQuery("e(X, X)", p.theory.signature_ptr().get())).ValueOrDie();
  auto hidden = HideQuery(p.theory, q);
  auto norm = NormalizeSpade5(std::move(hidden).value().theory);
  ChaseOptions copts;
  copts.max_rounds = depth;
  ChaseResult chase = RunChase(norm.value(), p.instance, copts);
  Skeleton s = SkeletonOf(norm.value(), p.instance, chase);

  const Structure* base = &s.structure;
  Result<Coloring> col = NaturalColoring(s.structure, 3);
  if (with_coloring) base = &col.value().colored;

  TypePartition part = AncestorPathPartition(*base, n);
  Quotient quotient = BuildQuotient(*base, part);
  ChaseOptions sat;
  sat.datalog_only = true;
  sat.max_rounds = 512;
  ChaseResult saturated = RunChase(norm.value(), quotient.structure, sat);
  if (!saturated.status.ok()) return "saturation-budget";
  if (!saturated.structure.ContainsAllFactsOf(p.instance)) return "lost-D";
  if (CheckModel(saturated.structure, p.theory).has_value()) {
    return "not-a-model";
  }
  if (Satisfies(saturated.structure, q)) return "query-holds";
  return "certified";
}

void PrintTable() {
  bddfc_bench::Banner("E11", "ablations: coloring and saturation strategy");
  std::printf("(a) Example 7 quotient certification, chase depth 32:\n");
  std::printf("%-12s %-4s %-16s\n", "coloring", "n", "outcome");
  for (bool colored : {false, true}) {
    for (int n : {2, 3}) {
      std::printf("%-12s %-4d %-16s\n", colored ? "natural" : "none", n,
                  TryExample7(colored, n, 32).c_str());
    }
  }

  std::printf("\n(b) datalog saturation: naive vs delta-driven chase vs "
              "semi-naive engine, transitive closure of a k-path:\n");
  std::printf("%-6s %-12s %-14s %-16s %-16s %-16s\n", "k", "closure",
              "naive rounds", "naive bindings", "delta bindings",
              "semi-naive bindings");
  for (int k : {8, 16, 32, 64}) {
    std::string text = "e(X, Y), e(Y, Z) -> e(X, Z).\n";
    for (int i = 0; i < k; ++i) {
      text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) +
              ").\n";
    }
    Program p = std::move(ParseProgram(text.c_str())).ValueOrDie();
    ChaseOptions naive_opts;
    naive_opts.engine = ChaseEngine::kNaive;
    ChaseResult naive = RunChase(p.theory, p.instance, naive_opts);
    ChaseResult delta = RunChase(p.theory, p.instance);
    SaturateResult sn = SaturateDatalog(p.theory, p.instance);
    std::printf("%-6d %-12zu %-14zu %-16zu %-16zu %-16zu\n", k,
                sn.structure.NumFacts(), naive.rounds_run,
                naive.stats.match.bindings_tried,
                delta.stats.match.bindings_tried, sn.bindings_tried);
  }
}

void BM_NaiveSaturation(benchmark::State& state) {
  std::string text = "e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for (int i = 0; i < state.range(0); ++i) {
    text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) + ").\n";
  }
  for (auto _ : state) {
    state.PauseTiming();
    Program p = std::move(ParseProgram(text.c_str())).ValueOrDie();
    state.ResumeTiming();
    ChaseOptions opts;
    opts.engine = ChaseEngine::kNaive;
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    state.counters["bindings_tried"] =
        static_cast<double>(r.stats.match.bindings_tried);
  }
}
BENCHMARK(BM_NaiveSaturation)->Arg(16)->Arg(32)->Arg(64);

void BM_SeminaiveSaturation(benchmark::State& state) {
  std::string text = "e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for (int i = 0; i < state.range(0); ++i) {
    text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) + ").\n";
  }
  for (auto _ : state) {
    state.PauseTiming();
    Program p = std::move(ParseProgram(text.c_str())).ValueOrDie();
    state.ResumeTiming();
    SaturateResult r = SaturateDatalog(p.theory, p.instance);
    benchmark::DoNotOptimize(r.structure.NumFacts());
  }
}
BENCHMARK(BM_SeminaiveSaturation)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
