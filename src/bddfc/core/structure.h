// Relational structures (database instances): ground facts with indexes.
//
// A Structure stores ground atoms per predicate, deduplicated, with
// per-(predicate, position, value) posting lists used by the backtracking
// join in eval/ and by the chase. Insertion is incremental and rows are
// append-only, which matches the chase's access pattern (facts are never
// deleted; new rounds only add).
//
// Two index families serve the two evaluation backends:
//
//   * hash postings (by_pos) — maintained eagerly inside AddFact, always
//     current, used by the interpretive Matcher and as the plan executor's
//     fallback;
//   * columnar storage plus per-(predicate, position) sorted row indexes —
//     the column mirror is appended eagerly (contiguous per-position value
//     arrays for block-at-a-time scans), the sorted indexes are built on
//     the first RefreshIndexes() call and extended incrementally by
//     subsequent calls. RefreshIndexes is NOT thread-safe against readers:
//     engines call it only at round boundaries, the single-threaded point
//     of a chase, and the executor falls back to hash postings whenever
//     IndexedRows lags the row count.

#ifndef BDDFC_CORE_STRUCTURE_H_
#define BDDFC_CORE_STRUCTURE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/interner.h"
#include "bddfc/core/atom.h"
#include "bddfc/core/signature.h"
#include "bddfc/core/term.h"

namespace bddfc {

/// A contiguous row range [begin, end) of one relation — the unit the
/// parallel chase shards delta scans by.
struct RowRange {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
  bool operator==(const RowRange& o) const {
    return begin == o.begin && end == o.end;
  }
};

/// Identifies one stored fact: predicate plus row index within it.
struct FactHandle {
  PredId pred = -1;
  uint32_t row = 0;

  bool operator==(const FactHandle& o) const {
    return pred == o.pred && row == o.row;
  }
};

struct FactHandleHash {
  size_t operator()(const FactHandle& h) const {
    size_t seed = std::hash<int32_t>()(h.pred);
    HashCombine(seed, std::hash<uint32_t>()(h.row));
    return seed;
  }
};

/// A finite relational structure over a shared Signature.
class Structure {
 public:
  explicit Structure(SignaturePtr sig) : sig_(std::move(sig)) {}

  const SignaturePtr& signature_ptr() const { return sig_; }
  const Signature& sig() const { return *sig_; }
  Signature& mutable_sig() { return *sig_; }

  /// Inserts a ground fact; returns true iff it was new.
  /// Preconditions: all args are constants known to the signature and the
  /// arity matches (checked by assert in debug builds).
  bool AddFact(PredId pred, const std::vector<TermId>& args);
  bool AddFact(const Atom& ground_atom) {
    return AddFact(ground_atom.pred, ground_atom.args);
  }

  /// Registers a constant as a domain element even if it occurs in no fact.
  void AddDomainElement(TermId c);

  /// Attaches a memory accountant: every subsequent successful AddFact
  /// charges ApproxFactBytes(arity) to it. The accountant is run-scoped
  /// state, not part of the structure's value — engines attach it for the
  /// duration of a governed run and detach (nullptr) before returning, so
  /// results never carry dangling accountant pointers.
  void SetAccountant(MemoryAccountant* accountant) {
    accountant_ = accountant;
  }
  MemoryAccountant* accountant() const { return accountant_; }

  /// Estimated heap footprint of one stored fact of the given arity: the
  /// row vector, the dedup-map entry (key copy + node), one posting per
  /// position, the columnar mirror, and one sorted-index entry per
  /// position. An accounting estimate, not an allocator measurement.
  static size_t ApproxFactBytes(size_t arity) {
    return 96 + arity * (3 * sizeof(TermId) + 2 * sizeof(uint32_t) + 16);
  }

  /// Sum of ApproxFactBytes over every stored fact — exactly what an
  /// accountant was charged while building this structure. Callers that
  /// discard an accounted structure Release() this amount to return its
  /// allowance to the budget.
  size_t ApproxAccountedBytes() const;

  /// True iff the ground fact is present.
  bool Contains(PredId pred, const std::vector<TermId>& args) const;
  bool Contains(const Atom& ground_atom) const {
    return Contains(ground_atom.pred, ground_atom.args);
  }

  /// Row id of the exact ground tuple, or kNoRow when absent. One hash
  /// lookup — the plan executor's fast path for fully-bound steps (e.g.
  /// closing a cycle), where probing per-position postings would be wasted
  /// work. The id is also the tuple's position in Rows()/Column(), so
  /// band checks are a comparison.
  static constexpr uint32_t kNoRow = UINT32_MAX;
  uint32_t FindRow(PredId pred, const std::vector<TermId>& args) const;

  /// All rows of `pred` (each row is one ground tuple), append-ordered.
  ///
  /// The returned reference is invalidated by AddFact on a predicate not
  /// stored yet (the relation table may reallocate). Callers that hold a
  /// reference across insertions — the chase holds one inside match
  /// callbacks — must buffer additions and apply them between rounds.
  const std::vector<std::vector<TermId>>& Rows(PredId pred) const;

  /// Posting list of rows of `pred` whose argument `pos` equals `value`,
  /// or nullptr when empty.
  const std::vector<uint32_t>* Postings(PredId pred, int pos,
                                        TermId value) const;

  /// Columnar view of argument position `pos` of `pred`: element r equals
  /// Rows(pred)[r][pos], stored contiguously so block-at-a-time scans read
  /// one flat array per position instead of chasing a heap pointer per
  /// row. Returns nullptr when the relation is absent or `pos` is out of
  /// range. Invalidation matches Rows().
  const std::vector<TermId>* Column(PredId pred, int pos) const;

  /// Number of rows of `pred` covered by the sorted per-position indexes —
  /// equal to NumFacts(pred) right after RefreshIndexes(), smaller (stale)
  /// once facts were added since. 0 before the first refresh.
  uint32_t IndexedRows(PredId pred) const;

  /// Rows of `pred` whose argument `pos` equals `value`, as a [begin, end)
  /// slice of the sorted index, ascending by row id. Covers only the first
  /// IndexedRows(pred) rows; callers must check IndexedRows against their
  /// band's upper bound and fall back to Postings() when the index is
  /// stale. Returns an empty slice when no indexed row matches.
  std::pair<const uint32_t*, const uint32_t*> SortedEqualRange(
      PredId pred, int pos, TermId value) const;

  /// Number of distinct values at (pred, pos) — the selectivity estimate
  /// plan compilation divides row counts by.
  size_t DistinctValues(PredId pred, int pos) const;

  /// Bulk membership for a lexicographically sorted batch of tuples — the
  /// vectorized round sink's containment pass. `tuples` holds `count`
  /// tuples of `arity` TermIds each, flat and sorted ascending (duplicates
  /// allowed). Sets (*contained)[i] to 1/0 per tuple and returns how many
  /// were present. Instead of `count` independent hash probes, a single
  /// cursor gallops forward through the position-0 sorted (value, row)
  /// index — the batch is sorted, so first-column values never move
  /// backwards — and the equal-value slice is verified against the column
  /// mirrors. Wide slices and rows past the index watermark fall back to
  /// the exact-tuple hash lookup, so the answer is correct at any index
  /// staleness (including never-refreshed); fresh indexes only make it
  /// faster.
  size_t ContainsSorted(PredId pred, size_t arity, const TermId* tuples,
                        size_t count, std::vector<char>* contained) const;

  /// Builds (first call) or incrementally extends (later calls) the sorted
  /// per-(predicate, position) row indexes: new rows are sorted by
  /// (value, row) and merged into the existing runs. Not thread-safe
  /// against concurrent readers — call only at round boundaries or before
  /// handing the structure to parallel scans. Structures that are only
  /// ever read through the interpretive Matcher never need to call this
  /// (the executor falls back to hash postings).
  void RefreshIndexes();

  /// The tuple of a fact handle.
  const std::vector<TermId>& Tuple(FactHandle h) const {
    return Rows(h.pred)[h.row];
  }

  /// Number of stored facts (all predicates).
  size_t NumFacts() const { return num_facts_; }
  size_t NumFacts(PredId pred) const { return Rows(pred).size(); }

  /// Upper bound (exclusive) on PredIds with stored rows. May exceed the
  /// signature's predicate count: facts can be added for predicates interned
  /// in a signature other than this structure's (e.g. a chase over a theory
  /// whose signature is richer than the instance's).
  PredId NumStoredPredicates() const;

  /// Domain: every constant occurring in some fact or explicitly added,
  /// in first-appearance order.
  const std::vector<TermId>& Domain() const { return domain_; }
  bool InDomain(TermId c) const {
    return c >= 0 && static_cast<size_t>(c) < in_domain_.size() &&
           in_domain_[c];
  }

  /// Round-boundary bookkeeping for delta-driven evaluation: records the
  /// current per-relation row counts. After the call, rows of `pred` at
  /// index >= WatermarkRows(pred) are exactly the facts inserted since —
  /// the delta is a row range, not a copied structure.
  void MarkRoundBoundary();

  /// Number of rows of `pred` present at the last MarkRoundBoundary()
  /// (0 before the first mark, or for predicates unseen at the mark).
  uint32_t WatermarkRows(PredId pred) const {
    return pred >= 0 && static_cast<size_t>(pred) < watermark_.size()
               ? watermark_[pred]
               : 0;
  }

  /// Total facts present at the last MarkRoundBoundary() (0 before it).
  size_t NumFactsAtWatermark() const { return facts_at_watermark_; }

  /// Splits the delta of `pred` — rows in [WatermarkRows(pred),
  /// NumFacts(pred)) — into contiguous chunks of at most `max_chunk_rows`
  /// rows, for sharded anchor scans. Chunk boundaries depend only on the
  /// watermark and the row count, never on the reader's thread count, so a
  /// parallel scan enumerates the same row partition at any parallelism
  /// (the determinism anchor of the parallel chase). Empty when the delta
  /// is. A skewed relation whose delta dwarfs the others simply yields
  /// more chunks — load balancing falls out of chunking plus stealing.
  std::vector<RowRange> DeltaChunks(PredId pred,
                                    uint32_t max_chunk_rows) const;

  /// Calls fn(pred, tuple) for every stored fact.
  void ForEachFact(
      const std::function<void(PredId, const std::vector<TermId>&)>& fn) const;

  /// C ↾ P: the substructure over exactly the predicates in `preds`
  /// (same signature object).
  Structure RestrictToPredicates(const std::unordered_set<PredId>& preds) const;

  /// C ↾ A: all facts whose arguments lie entirely inside `elements`.
  Structure RestrictToElements(
      const std::unordered_set<TermId>& elements) const;

  /// True iff every fact of `other` is a fact of *this (C1 |= C2).
  bool ContainsAllFactsOf(const Structure& other) const;

  /// Multi-line sorted dump "R(a, b)" — for tests and debugging.
  std::string ToString() const;

 private:
  struct TupleHash {
    size_t operator()(const std::vector<TermId>& v) const {
      return HashRange(v.begin(), v.end());
    }
  };

  struct Relation {
    int arity = 0;
    std::vector<std::vector<TermId>> rows;
    std::unordered_map<std::vector<TermId>, uint32_t, TupleHash> lookup;
    /// by_pos[pos][value] -> row indexes.
    std::vector<std::unordered_map<TermId, std::vector<uint32_t>>> by_pos;
    /// Columnar mirror: cols[pos][row] == rows[row][pos].
    std::vector<std::vector<TermId>> cols;
    /// Per-position row ids sorted by (value, row); covers rows
    /// [0, sorted_rows). Built/extended by RefreshIndexes only.
    std::vector<std::vector<uint32_t>> sorted;
    uint32_t sorted_rows = 0;
  };

  Relation& GetRelation(PredId pred);
  const Relation* FindRelation(PredId pred) const;

  SignaturePtr sig_;
  std::vector<Relation> relations_;  // indexed by PredId; grown lazily
  std::vector<TermId> domain_;
  std::vector<char> in_domain_;  // indexed by constant id
  size_t num_facts_ = 0;
  std::vector<uint32_t> watermark_;  // per-relation rows at the last mark
  size_t facts_at_watermark_ = 0;
  MemoryAccountant* accountant_ = nullptr;  // unowned; run-scoped
};

}  // namespace bddfc

#endif  // BDDFC_CORE_STRUCTURE_H_
