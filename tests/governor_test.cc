// Tests for the unified resource governor (base/governor.h) and its
// integration across the engines: deadlines, memory accounting,
// cooperative cancellation, deterministic fault injection, and the
// prefix-consistency contract of interrupted runs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bddfc/base/governor.h"
#include "bddfc/base/thread_pool.h"
#include "bddfc/base/timescale.h"
#include "bddfc/chase/chase.h"
#include "bddfc/chase/seminaive.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"
#include "bddfc/types/ptype.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// A theory whose chase never terminates: transitive closure plus an
// existential successor rule growing an infinite e-chain.
constexpr const char* kInfiniteTc = R"(
  e(X, Y), e(Y, Z) -> e(X, Z).
  e(X, Y) -> exists W: e(Y, W).
  e(a, b).
  ?- e(X, X).
)";

// A datalog theory whose UCQ rewriting diverges (recursive reachability):
// the rewriter only ever stops on a budget.
constexpr const char* kDivergingRewrite = R"(
  e(X, Y), p(Y) -> p(X).
  e(a, b).
  p(b).
  ?- p(X).
)";

// ---------------------------------------------------------------------------
// MemoryAccountant
// ---------------------------------------------------------------------------

TEST(MemoryAccountantTest, ChargeReleaseTracksUsedAndPeak) {
  MemoryAccountant acc(1000);
  acc.Charge(400);
  acc.Charge(300);
  EXPECT_EQ(acc.used(), 700u);
  EXPECT_EQ(acc.peak(), 700u);
  acc.Release(500);
  EXPECT_EQ(acc.used(), 200u);
  EXPECT_EQ(acc.peak(), 700u);
  EXPECT_FALSE(acc.OverBudget());
  acc.Charge(900);
  EXPECT_TRUE(acc.OverBudget());
}

TEST(MemoryAccountantTest, ChildChargesPropagateToAncestors) {
  MemoryAccountant root(1000);
  MemoryAccountant child(0, &root);  // unlimited child, capped root
  child.Charge(600);
  EXPECT_EQ(child.used(), 600u);
  EXPECT_EQ(root.used(), 600u);
  EXPECT_FALSE(child.OverBudget());
  child.Charge(600);
  // The child has no limit of its own but the root is over: OverBudget
  // walks ancestors.
  EXPECT_TRUE(child.OverBudget());
  EXPECT_TRUE(root.OverBudget());
}

TEST(MemoryAccountantTest, ChildLimitIsAPhaseCarveOut) {
  MemoryAccountant root(0);  // unlimited root
  MemoryAccountant child(100, &root);
  child.Charge(150);
  EXPECT_TRUE(child.OverBudget());
  EXPECT_FALSE(root.OverBudget());
  EXPECT_EQ(root.used(), 150u);
}

// ---------------------------------------------------------------------------
// CancelToken / ExecutionContext basics
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, CopiesAliasTheSameFlagAcrossThreads) {
  CancelToken token;
  CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  std::thread flipper([&token] { token.Cancel(); });
  flipper.join();
  EXPECT_TRUE(copy.cancelled());
}

TEST(ExecutionContextTest, ExpiredDeadlineTripsAndLatches) {
  ExecutionContext ctx;
  ctx.SetDeadlineAfterMs(0);
  Status s = ctx.CheckPoint("test");
  ASSERT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kDeadline);
  EXPECT_TRUE(ctx.Exhausted());
  // Latched: the second check fails without re-evaluating anything.
  EXPECT_EQ(ctx.CheckPoint("again").code(), StatusCode::kResourceExhausted);
}

TEST(ExecutionContextTest, MemoryWatermarkTrips) {
  ExecutionContext ctx;
  ctx.SetMemoryLimitBytes(100);
  ctx.memory().Charge(200);
  EXPECT_EQ(ctx.CheckPoint("test").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kMemory);
}

TEST(ExecutionContextTest, CancellationTrips) {
  ExecutionContext ctx;
  CancelToken token = ctx.cancel_token();
  token.Cancel();  // e.g. from a SIGINT handler
  EXPECT_EQ(ctx.CheckPoint("test").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kCancelled);
}

TEST(ExecutionContextTest, InjectedFaultFiresAfterExactCheckCount) {
  ExecutionContext ctx;
  ctx.InjectFaultAfterChecks(InjectedFault::kOom, 2);
  EXPECT_TRUE(ctx.CheckPoint("1").ok());
  EXPECT_TRUE(ctx.CheckPoint("2").ok());
  EXPECT_EQ(ctx.CheckPoint("3").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kMemory);
}

TEST(ExecutionContextTest, ChildSeesParentTripButNotViceVersa) {
  ExecutionContext parent;
  std::unique_ptr<ExecutionContext> child = parent.CreateChild(0);

  // A count-budget trip recorded on the child stays local: the parent can
  // retry the phase (the pipeline's depth-doubling loop depends on this).
  child->RecordExhaustion(ResourceKind::kRounds, "child max_rounds");
  EXPECT_TRUE(child->Exhausted());
  EXPECT_FALSE(parent.Exhausted());
  EXPECT_TRUE(parent.CheckPoint("after child").ok());

  // A governed trip on the parent is visible to (new) children.
  parent.RequestCancel();
  EXPECT_EQ(parent.CheckPoint("cancel").code(),
            StatusCode::kResourceExhausted);
  std::unique_ptr<ExecutionContext> child2 = parent.CreateChild(0);
  EXPECT_TRUE(child2->Exhausted());
  EXPECT_EQ(child2->CheckPoint("child2").code(),
            StatusCode::kResourceExhausted);
}

TEST(ExecutionContextTest, ChildReportInheritsParentTrip) {
  ExecutionContext parent;
  std::unique_ptr<ExecutionContext> child = parent.CreateChild(0);
  parent.RequestCancel();
  (void)parent.CheckPoint("latch");
  ResourceReport report = child->report();
  EXPECT_EQ(report.exhausted, ResourceKind::kCancelled);
}

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor cancellation
// ---------------------------------------------------------------------------

TEST(ThreadPoolGovernorTest, CancelledTokenDrainsQueuedTasks) {
  // One thread = tasks run inline in Wait(): with the token already
  // flipped every queued task is drained deterministically.
  ThreadPool pool(1);
  CancelToken token;
  pool.SetCancelToken(token);
  token.Cancel();
  std::atomic<int> executed{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&executed] {
      ++executed;
      return Status::OK();
    });
  }
  Status s = pool.Wait();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(executed.load(), 0);

  // The pool is reusable with a fresh token.
  pool.SetCancelToken(CancelToken());
  pool.Submit([&executed] {
    ++executed;
    return Status::OK();
  });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(executed.load(), 1);
}

TEST(ThreadPoolGovernorTest, ParallelForSkipsWorkOnTrippedContext) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ExecutionContext ctx;
    ctx.RequestCancel();
    (void)ctx.CheckPoint("latch");  // latch the trip before the fan-out
    std::atomic<int> executed{0};
    Status s = ParallelFor(
        16, threads,
        [&executed](size_t) {
          ++executed;
          return Status::OK();
        },
        &ctx);
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
        << "threads=" << threads;
    EXPECT_EQ(executed.load(), 0) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Chase under injected faults: clean ResourceExhausted, non-torn prefix.
// ---------------------------------------------------------------------------

struct FaultCase {
  InjectedFault fault;
  ResourceKind kind;
};
const FaultCase kFaults[] = {
    {InjectedFault::kDeadline, ResourceKind::kDeadline},
    {InjectedFault::kOom, ResourceKind::kMemory},
    {InjectedFault::kCancel, ResourceKind::kCancelled},
};

TEST(GovernedChaseTest, InjectedFaultsCutAtLastCompleteRound) {
  for (const FaultCase& fc : kFaults) {
    Program p = MustParse(kInfiniteTc);
    ExecutionContext ctx;
    ctx.InjectFaultAfterChecks(fc.fault, 3);
    ChaseOptions opts;
    opts.max_rounds = 64;
    opts.context = &ctx;
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
        << ResourceKindName(fc.kind);
    EXPECT_EQ(r.report.exhausted, fc.kind);
    EXPECT_FALSE(r.fixpoint_reached);
    // Non-torn: every stored fact belongs to a completed round.
    ASSERT_FALSE(r.facts_per_round.empty());
    EXPECT_EQ(r.structure.NumFacts(), r.facts_per_round.back());
    EXPECT_EQ(r.facts_per_round.size(), r.rounds_run + 1);
    EXPECT_TRUE(r.report.partial_result);
    EXPECT_GT(r.report.cancel_checks, 0u);
  }
}

TEST(GovernedChaseTest, ImmediateCancelStopsBeforeRoundOne) {
  Program p = MustParse(kInfiniteTc);
  ExecutionContext ctx;
  ctx.RequestCancel();
  ChaseOptions opts;
  opts.context = &ctx;
  ChaseResult r = RunChase(p.theory, p.instance, opts);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.report.exhausted, ResourceKind::kCancelled);
  EXPECT_EQ(r.rounds_run, 0u);
}

TEST(GovernedChaseTest, InterruptedPrefixIsByteIdenticalToUnbudgetedRun) {
  // Run governed with an injected trip, then re-run an *ungoverned* chase
  // (fresh parse, fresh signature → same deterministic null names) bounded
  // to the interrupted run's completed rounds: the structures must print
  // byte-identically.
  Program governed_p = MustParse(kInfiniteTc);
  ExecutionContext ctx;
  ctx.InjectFaultAfterChecks(InjectedFault::kDeadline, 5);
  ChaseOptions gopts;
  gopts.max_rounds = 64;
  gopts.context = &ctx;
  ChaseResult interrupted = RunChase(governed_p.theory, governed_p.instance,
                                     gopts);
  ASSERT_EQ(interrupted.status.code(), StatusCode::kResourceExhausted);
  ASSERT_GT(interrupted.rounds_run, 0u);

  Program plain_p = MustParse(kInfiniteTc);
  ChaseOptions popts;
  popts.max_rounds = interrupted.rounds_run;
  ChaseResult baseline = RunChase(plain_p.theory, plain_p.instance, popts);
  EXPECT_EQ(baseline.rounds_run, interrupted.rounds_run);
  EXPECT_EQ(baseline.structure.NumFacts(), interrupted.structure.NumFacts());
  EXPECT_EQ(baseline.structure.ToString(), interrupted.structure.ToString());
  EXPECT_EQ(baseline.facts_per_round, interrupted.facts_per_round);
}

TEST(GovernedChaseTest, NaiveEngineHonorsTheSameContract) {
  for (const FaultCase& fc : kFaults) {
    Program p = MustParse(kInfiniteTc);
    ExecutionContext ctx;
    ctx.InjectFaultAfterChecks(fc.fault, 3);
    ChaseOptions opts;
    opts.engine = ChaseEngine::kNaive;
    opts.max_rounds = 64;
    opts.context = &ctx;
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(r.report.exhausted, fc.kind);
    ASSERT_FALSE(r.facts_per_round.empty());
    EXPECT_EQ(r.structure.NumFacts(), r.facts_per_round.back());
  }
}

TEST(GovernedChaseTest, MemoryBudgetTripsOnAccountedFacts) {
  Program p = MustParse(kInfiniteTc);
  ExecutionContext ctx;
  ctx.SetMemoryLimitBytes(16 * 1024);
  ChaseOptions opts;
  opts.max_rounds = 10000;
  opts.max_facts = 10000000;
  opts.context = &ctx;
  ChaseResult r = RunChase(p.theory, p.instance, opts);
  ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.report.exhausted, ResourceKind::kMemory);
  EXPECT_GT(r.report.peak_bytes, 16u * 1024);
  EXPECT_EQ(r.report.limit_bytes, 16u * 1024);
  EXPECT_EQ(r.structure.NumFacts(), r.facts_per_round.back());
}

TEST(GovernedChaseTest, CountBudgetsReportThroughTheGovernor) {
  Program p = MustParse(kInfiniteTc);
  ExecutionContext ctx;
  ChaseOptions opts;
  opts.max_rounds = 3;
  opts.context = &ctx;
  ChaseResult r = RunChase(p.theory, p.instance, opts);
  ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.report.exhausted, ResourceKind::kRounds);
}

TEST(GovernedSaturateTest, InjectedFaultCutsClosureAtCompleteRound) {
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a1, a2). e(a2, a3). e(a3, a4). e(a4, a5). e(a5, a6). e(a6, a7).
  )");
  ExecutionContext ctx;
  ctx.InjectFaultAfterChecks(InjectedFault::kCancel, 1);
  SaturateOptions opts;
  opts.context = &ctx;
  SaturateResult r = SaturateDatalog(p.theory, p.instance, opts);
  ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.report.exhausted, ResourceKind::kCancelled);
  // The closure prefix is still closed under "no torn rounds": re-running
  // saturation on the prefix with the same round budget reproduces it.
  SaturateOptions replay;
  replay.max_rounds = r.rounds_run;
  SaturateResult again = SaturateDatalog(p.theory, p.instance, replay);
  EXPECT_EQ(again.structure.NumFacts(), r.structure.NumFacts());
}

// ---------------------------------------------------------------------------
// Rewriter under injected faults: truncation at the last complete level.
// ---------------------------------------------------------------------------

TEST(GovernedRewriteTest, InjectedFaultsTruncateAtLastCompleteLevel) {
  for (const FaultCase& fc : kFaults) {
    Program p = MustParse(kDivergingRewrite);
    ASSERT_FALSE(p.queries.empty());
    ExecutionContext ctx;
    ctx.InjectFaultAfterChecks(fc.fault, 3);
    RewriteOptions opts;
    opts.max_depth = 64;
    opts.max_queries = 100000;
    opts.context = &ctx;
    RewriteResult r = RewriteQuery(p.theory, p.queries[0], opts);
    ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
        << ResourceKindName(fc.kind);
    EXPECT_EQ(r.report.exhausted, fc.kind);
    // The partial union holds complete levels only, and always includes
    // the original query (level 0).
    EXPECT_GE(r.rewriting.size(), 1u);
    EXPECT_TRUE(r.report.partial_result);
  }
}

TEST(GovernedRewriteTest, CountBudgetsStayRunLocalUnknown) {
  // max_queries trips must stay Unknown and must NOT latch a shared
  // context: a sibling query in a fan-out would otherwise be cancelled.
  Program p = MustParse(kDivergingRewrite);
  ExecutionContext ctx;
  RewriteOptions opts;
  opts.max_queries = 5;
  opts.context = &ctx;
  RewriteResult r = RewriteQuery(p.theory, p.queries[0], opts);
  EXPECT_EQ(r.status.code(), StatusCode::kUnknown) << r.status.ToString();
  EXPECT_FALSE(ctx.Exhausted());
  EXPECT_TRUE(ctx.CheckPoint("sibling").ok());
}

// ---------------------------------------------------------------------------
// Type oracle under a tripped governor.
// ---------------------------------------------------------------------------

TEST(GovernedPtypeTest, TrippedContextMakesPartitionInconclusive) {
  Program p = MustParse(kInfiniteTc);
  ChaseOptions copts;
  copts.max_rounds = 4;
  ChaseResult chase = RunChase(p.theory, p.instance, copts);
  ASSERT_GT(chase.structure.NumFacts(), 0u);

  ExecutionContext ctx;
  ctx.RequestCancel();
  (void)ctx.CheckPoint("latch");
  Result<TypePartition> partition =
      ExactPtpPartition(chase.structure, 2, {}, 5000000, &ctx);
  ASSERT_FALSE(partition.ok());
  EXPECT_EQ(partition.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.report().exhausted, ResourceKind::kCancelled);
}

TEST(GovernedPtypeTest, OracleReportsGovernorTripAsBudgetExhausted) {
  Program p = MustParse(kInfiniteTc);
  ChaseOptions copts;
  copts.max_rounds = 4;
  ChaseResult chase = RunChase(p.theory, p.instance, copts);

  ExecutionContext ctx;
  ctx.RequestCancel();
  (void)ctx.CheckPoint("latch");
  TypeOracleOptions topts;
  topts.num_variables = 2;
  topts.context = &ctx;
  TypeOracle oracle(chase.structure, chase.structure, topts);
  std::vector<TermId> domain = chase.structure.Domain();
  ASSERT_GE(domain.size(), 2u);
  // Self-containment of an element must evaluate at least one pattern
  // (distinct named constants short-circuit without probing anything), so
  // it is guaranteed to hit the tripped ShouldStop and turn inconclusive.
  (void)oracle.TypeContained(domain[0], domain[0]);
  EXPECT_TRUE(oracle.budget_exhausted());
}

// ---------------------------------------------------------------------------
// PhaseScope: RAII phase bookkeeping.
// ---------------------------------------------------------------------------

TEST(PhaseScopeTest, ClosesOnEveryExitAndTracksOpenStack) {
  ExecutionContext ctx;
  {
    PhaseScope outer(&ctx, "outer");
    {
      PhaseScope inner(&ctx, "inner");
      inner.set_progress("halfway");
      ResourceReport mid = ctx.report();
      ASSERT_EQ(mid.open_phases.size(), 2u);
      EXPECT_EQ(mid.open_phases[0], "outer");  // outermost first
      EXPECT_EQ(mid.open_phases[1], "inner");
      EXPECT_TRUE(mid.phases.empty());
    }
    ResourceReport after_inner = ctx.report();
    ASSERT_EQ(after_inner.open_phases.size(), 1u);
    EXPECT_EQ(after_inner.open_phases[0], "outer");
    ASSERT_EQ(after_inner.phases.size(), 1u);
    EXPECT_EQ(after_inner.phases[0].phase, "inner");
    EXPECT_EQ(after_inner.phases[0].progress, "halfway");
  }
  ResourceReport done = ctx.report();
  EXPECT_TRUE(done.open_phases.empty());
  ASSERT_EQ(done.phases.size(), 2u);
  EXPECT_EQ(done.phases[1].phase, "outer");
  EXPECT_EQ(done.phases[1].progress, "done");  // default note
}

TEST(PhaseScopeTest, MidPhaseTripShowsOpenThenNotesAborted) {
  // A report taken while a tripped phase is still unwinding must list the
  // phase as open; once the scope closes the note says "aborted" — the
  // stale/missing-entry failure mode of the old NotePhase-at-end pattern.
  ExecutionContext ctx;
  ctx.InjectFaultAfterChecks(InjectedFault::kCancel, 0);
  {
    PhaseScope scope(&ctx, "doomed");
    EXPECT_FALSE(ctx.CheckPoint("test").ok());
    ResourceReport mid = ctx.report();
    ASSERT_EQ(mid.open_phases.size(), 1u);
    EXPECT_EQ(mid.open_phases[0], "doomed");
  }
  ResourceReport r = ctx.report();
  EXPECT_TRUE(r.open_phases.empty());
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_EQ(r.phases[0].phase, "doomed");
  EXPECT_EQ(r.phases[0].progress, "aborted");
}

TEST(PhaseScopeTest, NullContextIsSafe) {
  PhaseScope scope(nullptr, "untracked");  // must not crash
  scope.set_progress("ignored");
}

// ---------------------------------------------------------------------------
// Pipeline under injected faults and a real deadline.
// ---------------------------------------------------------------------------

TEST(GovernedPipelineTest, InjectedFaultsAbortWithPartialChasePrefix) {
  for (const FaultCase& fc : kFaults) {
    Program p = MustParse(kInfiniteTc);
    ASSERT_FALSE(p.queries.empty());
    ExecutionContext ctx;
    ctx.InjectFaultAfterChecks(fc.fault, 4);
    PipelineOptions opts;
    opts.m_override = 2;  // skip the kappa rewriting: reach the chase phase
    opts.context = &ctx;
    FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance,
                                                      p.queries[0], opts);
    ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
        << ResourceKindName(fc.kind) << ": " << r.status.ToString();
    EXPECT_EQ(r.report.exhausted, fc.kind);
    EXPECT_FALSE(r.query_certainly_true);
    // The best partial result: the chase prefix computed before the trip.
    EXPECT_TRUE(r.report.partial_result);
    EXPECT_GT(r.partial_chase.NumFacts(), 0u);
  }
}

TEST(GovernedPipelineTest, FiftyMsDeadlineOnNonTerminatingChase) {
  // The acceptance scenario: a 50 ms deadline on a theory whose chase
  // diverges must return ResourceExhausted with a populated report and a
  // usable partial chase prefix — and must not hang. The constants scale
  // under sanitizers (see timescale.h) where every check is 2-20x slower.
  Program p = MustParse(kInfiniteTc);
  ExecutionContext ctx;
  ctx.SetDeadlineAfterMs(ScaledMs(50));
  PipelineOptions opts;
  opts.m_override = 2;
  opts.max_chase_depth = size_t{1} << 40;  // effectively unbounded rounds
  opts.max_chase_facts = size_t{1} << 40;  // effectively unbounded facts
  opts.context = &ctx;
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance,
                                                    p.queries[0], opts);
  ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
      << r.status.ToString();
  EXPECT_EQ(r.report.exhausted, ResourceKind::kDeadline);
  EXPECT_GT(r.report.cancel_checks, 0u);
  EXPECT_LE(r.report.deadline_slack_ms, 1.0 * TimeScale());
  EXPECT_TRUE(r.report.partial_result);
  EXPECT_GT(r.partial_chase.NumFacts(), 0u);
  EXPECT_FALSE(r.report.phases.empty());
}

TEST(GovernedPipelineTest, UngovernedRunsAreUnaffected) {
  // A terminating scenario without a context behaves exactly as before:
  // the single internal code path must not change results.
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
    ?- e(X, X).
  )");
  FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance,
                                                    p.queries[0]);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.report.exhausted, ResourceKind::kNone);
  EXPECT_FALSE(r.report.partial_result);
}

TEST(RunContextTest, ResolutionIsNearestAncestorWins) {
  // The serving layer hangs every request off one shared server root,
  // each request child carrying its own RunContext. Resolution must pick
  // the nearest attachment up the parent chain — siblings never clobber
  // each other, and an unattached child falls through to its ancestor's.
  obs::MetricsRegistry root_reg, child_reg;
  obs::Tracer root_tracer, child_tracer;
  FaultRegistry root_faults, child_faults;
  RunContext root_rc{&root_reg, &root_tracer, &root_faults};
  RunContext child_rc{&child_reg, &child_tracer, &child_faults};

  ExecutionContext root;
  root.SetRunContext(&root_rc);
  std::unique_ptr<ExecutionContext> with_own = root.CreateChild(0);
  with_own->SetRunContext(&child_rc);
  std::unique_ptr<ExecutionContext> plain = root.CreateChild(0);
  std::unique_ptr<ExecutionContext> grandchild = with_own->CreateChild(0);

  EXPECT_EQ(&root.metrics_registry(), &root_reg);
  EXPECT_EQ(&with_own->metrics_registry(), &child_reg);
  EXPECT_EQ(&with_own->tracer(), &child_tracer);
  EXPECT_EQ(with_own->fault_registry(), &child_faults);
  // A sibling without its own RunContext resolves the root's, unaffected
  // by the other child's attachment.
  EXPECT_EQ(&plain->metrics_registry(), &root_reg);
  EXPECT_EQ(&plain->tracer(), &root_tracer);
  EXPECT_EQ(plain->fault_registry(), &root_faults);
  // Depth-2: the nearest attachment is the parent's, not the root's.
  EXPECT_EQ(&grandchild->metrics_registry(), &child_reg);
  EXPECT_EQ(grandchild->fault_registry(), &child_faults);

  // Detaching one child must not disturb the others.
  with_own->SetRunContext(nullptr);
  EXPECT_EQ(&with_own->metrics_registry(), &root_reg);
  EXPECT_EQ(&plain->metrics_registry(), &root_reg);
}

TEST(RunContextTest, UnattachedContextFallsBackToGlobals) {
  ExecutionContext ctx;
  EXPECT_EQ(&ctx.metrics_registry(), &obs::MetricsRegistry::Global());
  EXPECT_EQ(&ctx.tracer(), &obs::Tracer::Global());
  EXPECT_EQ(ctx.fault_registry(), nullptr);
  // A RunContext with null members also resolves to the globals.
  RunContext empty;
  ctx.SetRunContext(&empty);
  EXPECT_EQ(&ctx.metrics_registry(), &obs::MetricsRegistry::Global());
  EXPECT_EQ(&ctx.tracer(), &obs::Tracer::Global());
}

}  // namespace
}  // namespace bddfc
