// Ontology-mediated query answering under the open-world assumption: the
// scenario the paper's introduction motivates. A binary (description-logic
// flavored) ontology about an org chart, incomplete data, and three ways to
// answer queries: chase, rewriting, and a certified finite counter-model
// for a non-certain query.
//
// Build & run:  ./build/examples/ontology_reasoning

#include <cstdio>

#include "bddfc/chase/chase.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"

int main() {
  using namespace bddfc;

  const char* ontology = R"(
    % Every employee reports to someone.
    emp(X) -> exists Y: reports_to(X, Y).
    % Whoever is reported to is a manager, and managers are employees.
    reports_to(X, Y) -> mgr(Y).
    mgr(X) -> emp(X).
    % Mentorship: every new hire gets a mentor, who is an employee.
    newhire(X) -> exists Y: mentor_of(Y, X).
    mentor_of(Y, X) -> emp(Y).

    % The (incomplete) database.
    emp(ann).
    newhire(bo).
    reports_to(cy, ann).
  )";

  Program p = std::move(ParseProgram(ontology)).ValueOrDie();
  std::printf("ontology: %zu rules; binary=%s linear=%s guarded=%s "
              "weakly-acyclic=%s sticky=%s\n",
              p.theory.size(), IsBinaryTheory(p.theory) ? "y" : "n",
              IsLinear(p.theory) ? "y" : "n", IsGuarded(p.theory) ? "y" : "n",
              IsWeaklyAcyclic(p.theory) ? "y" : "n",
              CheckSticky(p.theory).is_sticky ? "y" : "n");

  BddProbeResult bdd = ProbeBdd(p.theory);
  std::printf("BDD probe: %s (kappa=%d)\n\n",
              bdd.certified ? "certified" : "unknown", bdd.kappa);

  Signature* sig = p.theory.signature_ptr().get();
  struct Q {
    const char* text;
    const char* label;
  } queries[] = {
      {"mgr(X)", "is anyone certainly a manager?"},
      {"reports_to(bo, Y)", "does bo certainly report to someone?"},
      {"mentor_of(X, bo), mgr(X)", "is bo's mentor certainly a manager?"},
  };

  ChaseOptions copts;
  copts.max_rounds = 16;
  ChaseResult chase = RunChase(p.theory, p.instance, copts);

  for (const Q& q : queries) {
    ConjunctiveQuery cq = std::move(ParseQuery(q.text, sig)).ValueOrDie();
    bool via_chase = Satisfies(chase.structure, cq);
    RewriteResult rw = RewriteQuery(p.theory, cq);
    bool via_rewriting = SatisfiesUcq(p.instance, rw.rewriting);
    std::printf("%-45s chase=%-5s rewriting=%-5s (%zu disjuncts)\n", q.label,
                via_chase ? "true" : "false",
                via_rewriting ? "true" : "false", rw.rewriting.size());
  }

  // The mentor query is not certain: produce a concrete finite
  // counter-model the user can inspect (open-world "no").
  ConjunctiveQuery mentor_mgr =
      std::move(ParseQuery("mentor_of(X, bo), mgr(X)", sig)).ValueOrDie();
  FiniteModelResult cm =
      ConstructFiniteCounterModel(p.theory, p.instance, mentor_mgr);
  if (cm.status.ok()) {
    std::printf(
        "\ncounter-model witnessing non-certainty (%zu elements):\n%s",
        cm.model.Domain().size(), cm.model.ToString().c_str());
  } else {
    std::printf("\ncounter-model: %s\n", cm.status.ToString().c_str());
  }
  return 0;
}
