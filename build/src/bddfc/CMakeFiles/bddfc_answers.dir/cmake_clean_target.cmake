file(REMOVE_RECURSE
  "libbddfc_answers.a"
)
