// Tests for the Datalog± text parser.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "bddfc/base/faults.h"
#include "bddfc/parser/parser.h"
#include "bddfc/parser/printer.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

TEST(ParserTest, ParsesFactsRulesAndQueries) {
  auto r = ParseProgram(R"(
    % a program
    e(a, b).
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z) -> e(X, Z).
    ?- e(X, X).
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Program& p = r.value();
  EXPECT_EQ(p.instance.NumFacts(), 1u);
  EXPECT_EQ(p.theory.size(), 2u);
  ASSERT_EQ(p.queries.size(), 1u);
  EXPECT_EQ(p.queries[0].atoms.size(), 1u);
  EXPECT_TRUE(p.theory.rules()[0].IsExistential());
  EXPECT_TRUE(p.theory.rules()[1].IsDatalog());
}

TEST(ParserTest, ImplicitExistentialsWithoutKeyword) {
  auto r = ParseProgram("e(X, Y) -> e(Y, Z).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Rule& rule = r.value().theory.rules()[0];
  EXPECT_TRUE(rule.IsExistential());
  EXPECT_EQ(rule.ExistentialVariables().size(), 1u);
}

TEST(ParserTest, MultiHeadRule) {
  auto r = ParseProgram("p(X) -> q(X, Y), s(Y).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Rule& rule = r.value().theory.rules()[0];
  EXPECT_EQ(rule.head.size(), 2u);
  EXPECT_EQ(rule.ExistentialVariables().size(), 1u);
}

TEST(ParserTest, ZeroAryAtoms) {
  auto r = ParseProgram("p(X) -> goal. p(a).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().theory.rules()[0].head[0].args.size(), 0u);
}

TEST(ParserTest, VariablesScopePerStatement) {
  auto r = ParseProgram(R"(
    p(X) -> q(X).
    q(X) -> p(X).
  )");
  ASSERT_TRUE(r.ok());
  // Each statement's X gets a fresh id, so the rules don't share variables.
  TermId x0 = r.value().theory.rules()[0].body[0].args[0];
  TermId x1 = r.value().theory.rules()[1].body[0].args[0];
  EXPECT_NE(x0, x1);
}

TEST(ParserTest, ArityMismatchIsRejected) {
  auto r = ParseProgram("e(a, b). e(a).");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(ParserTest, NonGroundFactIsRejected) {
  auto r = ParseProgram("e(a, X).");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ExistentialDeclaredInBodyIsRejected) {
  auto r = ParseProgram("e(X, Y) -> exists Y: e(X, Y).");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, SyntaxErrorsCarryLineInfo) {
  auto r = ParseProgram("e(a, b)\ne(b, c).");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, CommentsAndWhitespaceIgnored) {
  auto r = ParseProgram(R"(
    % comment with -> arrows and (parens
    # hash comment
    e(a, b).   % trailing
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().instance.NumFacts(), 1u);
}

TEST(ParserTest, ParseQueryHelper) {
  Signature sig;
  auto q = ParseQuery("e(X, Y), e(Y, X)", &sig);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().atoms.size(), 2u);
  EXPECT_EQ(q.value().NumVariables(), 2);
}

TEST(ParserTest, RoundTripThroughToString) {
  auto r = ParseProgram("e(X, Y), u(Y) -> exists Z: e(Y, Z).");
  ASSERT_TRUE(r.ok());
  std::string printed = r.value().theory.ToString();
  // Re-parse the printed form; variable names ?0 etc. are not valid input,
  // so just check shape here.
  EXPECT_NE(printed.find("->"), std::string::npos);
  EXPECT_NE(printed.find("exists"), std::string::npos);
}

TEST(ParserTest, SharedSignatureAcrossPrograms) {
  auto sig = std::make_shared<Signature>();
  auto r1 = ParseProgram("e(a, b).", sig);
  ASSERT_TRUE(r1.ok());
  auto r2 = ParseProgram("e(b, c).", sig);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(sig->num_predicates(), 1);
  EXPECT_EQ(sig->num_constants(), 3);
}

// Reparse-and-reprint: on already-canonical output this must be the
// identity, which is what the fuzzer's parser-roundtrip oracle checks.
std::string Reprint(const std::string& text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << text;
  if (!r.ok()) return "";
  const Program& p = r.value();
  return ToProgramText(p.theory, &p.instance, &p.queries);
}

TEST(PrinterRoundTripTest, QuotedNamesSurviveReparse) {
  auto r = ParseProgram(R"(e("Foo", b). e("exists", a). "Upper"(a, "with space").)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string printed = ToProgramText(r.value().theory, &r.value().instance,
                                      &r.value().queries);
  // Names that would not lex as plain identifiers stay quoted...
  EXPECT_NE(printed.find("\"Foo\""), std::string::npos);
  EXPECT_NE(printed.find("\"exists\""), std::string::npos);
  EXPECT_NE(printed.find("\"with space\""), std::string::npos);
  // ...and plain ones stay bare.
  EXPECT_EQ(printed.find("\"a\""), std::string::npos);
  EXPECT_EQ(Reprint(printed), printed);
}

TEST(PrinterRoundTripTest, EscapesSurviveReparse) {
  auto r = ParseProgram(R"(p("say \"hi\"", "back\\slash").)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Signature& sig = r.value().instance.sig();
  EXPECT_EQ(sig.num_constants(), 2);
  EXPECT_EQ(sig.ConstantName(0), "say \"hi\"");
  EXPECT_EQ(sig.ConstantName(1), "back\\slash");
  std::string printed = ToProgramText(r.value().theory, &r.value().instance,
                                      &r.value().queries);
  EXPECT_EQ(Reprint(printed), printed);
}

TEST(PrinterRoundTripTest, EmptyQuotedNameIsRejected) {
  EXPECT_FALSE(ParseProgram(R"(p("").)").ok());
  EXPECT_FALSE(ParseProgram(R"(""(a).)").ok());
}

TEST(PrinterRoundTripTest, UnterminatedQuoteIsRejected) {
  EXPECT_FALSE(ParseProgram("p(\"oops).\n").ok());
}

TEST(PrinterRoundTripTest, FactOrderIsCanonical) {
  // The same facts in two different source orders print identically, so a
  // printed program is a canonical form independent of internal fact ids.
  std::string a = Reprint("z(c). a(b). m(b, c). ?- a(V0).");
  std::string b = Reprint("m(b, c). z(c). a(b). ?- a(V0).");
  EXPECT_EQ(a, b);
  EXPECT_LT(a.find("a(b)"), a.find("m(b, c)"));
  EXPECT_LT(a.find("m(b, c)"), a.find("z(c)"));
}

TEST(PrinterRoundTripTest, PrintParsePrintIsAFixpoint) {
  const char* programs[] = {
      "e(a, b). e(X, Y) -> exists Z: e(Y, Z). ?- e(X, X).",
      "p(X) -> q(X, Y), s(Y). p(a).",
      R"(e("V0", "with space"). "Upper"(a, b). ?- e(V0, V1).)",
      "t(X, Y), t(Y, Z) -> t(X, Z). t(a, b). t(b, c).",
  };
  for (const char* text : programs) {
    std::string once = Reprint(text);
    EXPECT_EQ(Reprint(once), once) << text;
  }
}

TEST(PrinterRoundTripTest, CorpusFilesAreDoubleRoundTripStable) {
  // Every checked-in fuzz reproducer must survive a *double* round-trip:
  // print(parse(text)) is canonical, so a second parse-print is the
  // identity on it. A single round-trip can mask a printer defect that a
  // drifting canonical form would re-expose on replay.
  namespace fs = std::filesystem;
  size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(BDDFC_CORPUS_DIR)) {
    if (entry.path().extension() != ".dlg") continue;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string once = Reprint(text);
    ASSERT_FALSE(once.empty());
    EXPECT_EQ(Reprint(once), once);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(PrinterRoundTripTest, PaperExamplesAreDoubleRoundTripStable) {
  struct Case {
    const char* name;
    Program p;
  };
  Case cases[] = {{"Example1", Example1()},
                  {"RemarkThree", RemarkThreeTheory()},
                  {"Example7", Example7()},
                  {"Example9", Example9()},
                  {"Section54", Section54()},
                  {"Section55", Section55()},
                  {"GuardedSample", GuardedSample()}};
  for (Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::string once =
        ToProgramText(c.p.theory, &c.p.instance, &c.p.queries);
    EXPECT_EQ(Reprint(once), once);
  }
}

TEST(ParserFaultTest, ChaosSiteIsScopedToTheCallersRegistry) {
  // Serving regression (DESIGN.md §2.15): the parser's chaos site routes
  // through the registry the caller passes, so two sessions parsing
  // concurrently under disjoint fault plans never see each other's
  // chaos. Thread A's plan kills every parse; thread B parses clean.
  constexpr int kIters = 200;
  FaultRegistry reg_a;
  reg_a.Arm({.site = faults::kParserParse,
             .schedule = FaultSchedule::kAfterN,
             .n = 0});
  FaultRegistry reg_b;  // enabled by arming an unrelated site only
  reg_b.Arm({.site = faults::kChaseRound,
             .schedule = FaultSchedule::kAfterN,
             .n = 0});

  std::atomic<int> a_ok{0}, b_failed{0};
  std::thread chaos([&] {
    for (int i = 0; i < kIters; ++i) {
      auto r = ParseProgram("e(a, b).", nullptr, &reg_a);
      if (r.ok() || r.status().code() != StatusCode::kInternal) {
        a_ok.fetch_add(1);
      }
    }
  });
  std::thread clean([&] {
    for (int i = 0; i < kIters; ++i) {
      if (!ParseProgram("e(a, b).", nullptr, &reg_b).ok()) {
        b_failed.fetch_add(1);
      }
    }
  });
  chaos.join();
  clean.join();

  EXPECT_EQ(a_ok.load(), 0) << "armed parser fault failed to fire";
  EXPECT_EQ(b_failed.load(), 0) << "another session's fault plan leaked in";
  EXPECT_EQ(reg_a.FireCount(faults::kParserParse), uint64_t{kIters});
  EXPECT_EQ(reg_b.FireCount(faults::kParserParse), 0u);
  EXPECT_EQ(reg_b.HitCount(faults::kParserParse), uint64_t{kIters});
  // The process-global registry was never consulted.
  EXPECT_EQ(FaultRegistry::Global().FireCount(faults::kParserParse), 0u);
}

}  // namespace
}  // namespace bddfc
