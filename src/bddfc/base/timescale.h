#ifndef BDDFC_BASE_TIMESCALE_H_
#define BDDFC_BASE_TIMESCALE_H_

/// Real-time scaling for tests and benchmarks that assert on wall-clock
/// behavior (deadline trips, signal latency). Sanitizer instrumentation
/// slows the instrumented sections 2-20x, so a "50 ms deadline fires with
/// <1 ms slack" assertion that is robust natively becomes flaky under
/// ASan/TSan. Multiply every such constant by TimeScale() instead of
/// hardcoding it; the factor is 1 natively, 10 under a sanitizer, and can
/// be overridden via BDDFC_TIME_SCALE for unusually slow machines.

#include <cstdlib>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BDDFC_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define BDDFC_UNDER_SANITIZER 1
#endif
#endif
#ifndef BDDFC_UNDER_SANITIZER
#define BDDFC_UNDER_SANITIZER 0
#endif

namespace bddfc {

/// Multiplier for wall-clock constants in real-time assertions.
/// BDDFC_TIME_SCALE (a positive decimal) overrides the built-in default.
inline double TimeScale() {
  static const double scale = [] {
    if (const char* env = std::getenv("BDDFC_TIME_SCALE")) {
      char* end = nullptr;
      double v = std::strtod(env, &end);
      if (end != env && v > 0) return v;
    }
    return BDDFC_UNDER_SANITIZER ? 10.0 : 1.0;
  }();
  return scale;
}

/// `ms` scaled by TimeScale(), rounded to a whole millisecond (min 1).
inline int ScaledMs(int ms) {
  double v = static_cast<double>(ms) * TimeScale();
  return v < 1.0 ? 1 : static_cast<int>(v);
}

}  // namespace bddfc

#endif  // BDDFC_BASE_TIMESCALE_H_
