// E8 — §5.6 guarded→binary blowup: output rules, parent links and monadic
// predicates versus input rules and maximum arity. Expected shape: rules
// multiply by ~K^(vars-1) (the parent-index assignments) plus a quadratic
// number of transfer rules in the monadic encodings.

#include "bench_common.h"

#include "bddfc/guarded/binarize.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E8", "guarded -> binary transformation blowup");
  std::printf("%-16s %-8s %-8s %-10s %-10s %-10s\n", "input", "rules",
              "arity", "out-rules", "monadic", "status");
  // The paper's sample plus generated guarded theories.
  {
    Program p = GuardedSample();
    auto bin = GuardedToBinary(p.theory);
    std::printf("%-16s %-8zu %-8d %-10s %-10s %-10s\n", "paper-sample",
                p.theory.size(), p.theory.sig().MaxArity(),
                bin.ok() ? std::to_string(bin.value().theory.size()).c_str()
                         : "-",
                bin.ok() ? std::to_string(bin.value().monadic.size()).c_str()
                         : "-",
                bin.ok() ? "ok" : StatusCodeName(bin.status().code()));
  }
  for (int arity : {2, 3}) {
    for (int rules : {2, 4, 8}) {
      // Find a seed that satisfies the step-(iv) preconditions.
      for (uint64_t seed = 1; seed <= 50; ++seed) {
        auto sig = std::make_shared<Signature>();
        Theory t = RandomGuardedTheory(sig, arity, rules, seed);
        auto bin = GuardedToBinary(t);
        if (!bin.ok()) continue;
        std::printf("%-16s %-8zu %-8d %-10zu %-10zu %-10s\n",
                    ("rand-a" + std::to_string(arity) + "-r" +
                     std::to_string(rules))
                        .c_str(),
                    t.size(), arity, bin.value().theory.size(),
                    bin.value().monadic.size(), "ok");
        break;
      }
    }
  }
}

void BM_GuardedToBinary(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = GuardedSample();
    state.ResumeTiming();
    auto bin = GuardedToBinary(p.theory);
    benchmark::DoNotOptimize(bin.ok());
  }
}
BENCHMARK(BM_GuardedToBinary);

void BM_GuardedToBinaryRandom(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto sig = std::make_shared<Signature>();
    Theory t = RandomGuardedTheory(sig, 3, static_cast<int>(state.range(0)),
                                   17);
    state.ResumeTiming();
    auto bin = GuardedToBinary(t);
    benchmark::DoNotOptimize(bin.ok());
  }
}
BENCHMARK(BM_GuardedToBinaryRandom)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
