file(REMOVE_RECURSE
  "CMakeFiles/bddfc_reductions.dir/reductions/reductions.cc.o"
  "CMakeFiles/bddfc_reductions.dir/reductions/reductions.cc.o.d"
  "libbddfc_reductions.a"
  "libbddfc_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
