// bddfc-serve: the multi-tenant reasoning server (DESIGN.md §2.15).
//
// ReasoningServer is the transport-independent core of the daemon: an
// in-process Handle(Request) -> Response API the socket loop (daemon.h),
// the load generator and the tests all drive the same way. Each request:
//
//   1. resolves (or creates) the tenant's Session;
//   2. passes admission control — concurrent-request cap and server-wide
//      memory budget; a shed request is answered immediately with
//      kResourceExhausted and counted on the session AND the server
//      (equally, so the reconciliation invariant holds for sheds too);
//   3. runs under its own ExecutionContext: a child of the server root
//      (its accountant carves the request's allowance out of the
//      server-wide budget) with a request deadline, carrying a RunContext
//      that points engines at a request-scoped MetricsRegistry, the
//      session's trace ring and the session's fault registry;
//   4. dispatches: LOAD compiles/fetches an artifact (artifact_cache.h),
//      QUERY/REWRITE evaluate against a cached artifact under its mutex;
//   5. folds the request registry's snapshot into the session's
//      cumulative registry and the server totals.
//
// Determinism: artifacts are compiled from canonical text with
// artifact-owned signatures and queried under mark/rollback, so the
// response to any request is a pure function of (artifact key, request
// payload) — byte-identical across thread interleavings and equal to a
// one-shot CLI run over the same canonical program.

#ifndef BDDFC_SERVE_SERVER_H_
#define BDDFC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"
#include "bddfc/serve/artifact_cache.h"
#include "bddfc/serve/session.h"

namespace bddfc::serve {

/// Server-wide knobs (one per daemon).
struct ServerOptions {
  /// Server-wide accounted byte budget (0 = unlimited). Cached artifacts
  /// and in-flight requests charge against it.
  size_t memory_limit_bytes = size_t{256} << 20;
  /// Artifact cache capacity (entries).
  size_t cache_capacity = 64;
  /// Concurrent in-flight requests before load-shedding (0 = unlimited).
  size_t max_concurrent = 64;
  /// Per-request deadline (0 = none). Requests may lower, never raise it.
  double request_deadline_ms = 30000;
  /// Per-request child accountant cap (0 = only the server budget governs).
  size_t request_memory_limit_bytes = 0;
  /// Compile budgets (forwarded to the chase).
  CompileOptions compile;
  /// Rewriter budgets for REWRITE requests.
  RewriteOptions rewrite;
  /// Record per-session trace rings (serve.compile / chase spans).
  bool tracing = false;
  size_t trace_capacity = size_t{1} << 14;
};

/// One parsed request.
struct Request {
  enum class Kind {
    kLoad,     ///< compile (or fetch) a theory; payload = program text
    kQuery,    ///< Boolean certain answer; payload = CQ body text
    kRewrite,  ///< UCQ rewriting; payload = CQ body text
    kMetrics,  ///< metrics export; tenant "" = server totals
    kHealth,   ///< liveness probe
  };
  Kind kind = Kind::kHealth;
  std::string tenant;
  /// Artifact key (hex from LOAD's response) for kQuery / kRewrite.
  uint64_t key = 0;
  std::string payload;
  /// Request deadline override in ms; 0 = the server default.
  double deadline_ms = 0;
};

/// One response. `body` is the protocol payload ("true", "key=... ...",
/// an error message, or a metrics export).
struct Response {
  Status status = Status::OK();
  std::string body;
  bool ok() const { return status.ok(); }
};

class ReasoningServer {
 public:
  explicit ReasoningServer(const ServerOptions& options);

  ReasoningServer(const ReasoningServer&) = delete;
  ReasoningServer& operator=(const ReasoningServer&) = delete;

  /// Serves one request. Thread-safe; blocks for the request's duration.
  Response Handle(const Request& request);

  /// The tenant's session, created on first use.
  Session& GetSession(const std::string& tenant);
  /// Snapshot of one session's cumulative registry (empty snapshot for an
  /// unknown tenant).
  obs::MetricsSnapshot SessionSnapshot(const std::string& tenant);
  /// Tenants with sessions, sorted.
  std::vector<std::string> Tenants();

  /// Server-total registry (per-request snapshots folded in, plus the
  /// serve.* counters).
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::MetricsSnapshot ServerSnapshot() const { return metrics_.Snapshot(); }
  /// The /metrics export body (text exposition of the server snapshot).
  std::string MetricsText() const { return ServerSnapshot().ToText(); }

  ArtifactCache& cache() { return cache_; }
  /// The server-wide accountant (cache charges + in-flight requests);
  /// admission sheds while it is over budget.
  MemoryAccountant& memory() { return root_ctx_.memory(); }
  const ServerOptions& options() const { return options_; }
  /// Requests currently in flight (admission-accepted, not yet folded).
  size_t active_requests() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  Response Dispatch(const Request& request, Session& session,
                    ExecutionContext* ctx, obs::MetricsRegistry& req_metrics);

  ServerOptions options_;
  /// Root of every request context: owns the server-wide accountant.
  ExecutionContext root_ctx_;
  ArtifactCache cache_;
  obs::MetricsRegistry metrics_;

  std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;

  std::atomic<size_t> active_{0};
};

}  // namespace bddfc::serve

#endif  // BDDFC_SERVE_SERVER_H_
