// Theory transformations: query hiding (♠4), the (♠5) normal form, and the
// reductions of §5.1 (binary heads), §5.2 (ternary encoding) and §5.3
// (multi-head elimination). Each transformation preserves the theory's BDD
// and FC status, per the paper.

#ifndef BDDFC_REDUCTIONS_REDUCTIONS_H_
#define BDDFC_REDUCTIONS_REDUCTIONS_H_

#include "bddfc/base/status.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// (♠4): extends T with Q(x̄, y) ⇒ ∃z F(y, z) for a fresh predicate F. A
/// finite model of T₀, D avoiding Q exists iff a finite model of T, D
/// avoiding F does (§3.1).
struct HiddenQuery {
  Theory theory;
  PredId f = -1;

  explicit HiddenQuery(SignaturePtr sig) : theory(std::move(sig)) {}
};
Result<HiddenQuery> HideQuery(const Theory& theory,
                              const ConjunctiveQuery& query);

/// (♠5) normal form: every existential TGD's head is a single binary atom
/// ∃z R(y, z) with the witness second and y a body variable, and no TGP
/// occurs in a datalog rule head. Implements the paper's hint (auxiliary
/// predicates R', R'' plus projection datalog rules), extended to heads
/// with no frontier variable or several existential variables (chained
/// auxiliary TGPs). Requires single-head rules with binary-or-smaller heads
/// on existential TGDs (apply BinarizeHeads/SingleHeadify first otherwise).
Result<Theory> NormalizeSpade5(const Theory& theory);

/// §5.3: replaces each multi-head TGD by a single-head TGD over a join
/// predicate plus datalog projection rules. Needs unrestricted arity (the
/// join predicate's arity is the number of distinct head variables).
Result<Theory> SingleHeadify(const Theory& theory);

/// §5.1: rewrites every existential TGD with head Φ(y, z̄) — at most one
/// frontier variable — into TGDs with binary heads R^i_Φ(y, z_i) plus a
/// datalog rule R^1_Φ(y, z_1) ∧ ... ∧ R^n_Φ(y, z_n) → Φ(y, z̄).
/// Fails if some TGD head has two or more frontier variables.
Result<Theory> BinarizeHeads(const Theory& theory);

/// §5.2 (Theorem 4): encodes an arbitrary theory into a ternary one by
/// naming argument-list prefixes "in the good old Prolog way". Predicates
/// of arity <= 3 are kept; wider atoms become chains of ternary
/// list-builder predicates.
struct ChainEncoding {
  /// Ternary list-builder cells P_1(t1, t2, w1), P_i(w_{i-1}, t_{i+1}, w_i).
  std::vector<PredId> cells;
  /// Final binary predicate P'(w_{k-2}, t_k).
  PredId final_pred = -1;
};

struct TernaryReduction {
  Theory theory;
  /// For each original predicate of arity > 3: its chain encoding.
  std::unordered_map<PredId, ChainEncoding> chains;

  explicit TernaryReduction(SignaturePtr sig) : theory(std::move(sig)) {}
};
Result<TernaryReduction> TernarizeTheory(const Theory& theory);

/// Encodes an instance into the ternary signature: every wide fact
/// materializes its chain cells over fresh labeled nulls; narrow facts are
/// copied.
Structure TernarizeInstance(const TernaryReduction& reduction,
                            const Structure& instance);

}  // namespace bddfc

#endif  // BDDFC_REDUCTIONS_REDUCTIONS_H_
