#include "bddfc/core/atom.h"

namespace bddfc {

std::string TermToString(const Signature& sig, TermId t) {
  if (IsVar(t)) return "?" + std::to_string(DecodeVar(t));
  return sig.ConstantName(t);
}

std::string Atom::ToString(const Signature& sig) const {
  std::string s = sig.PredicateName(pred);
  s += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) s += ", ";
    s += TermToString(sig, args[i]);
  }
  s += ")";
  return s;
}

}  // namespace bddfc
