# Empty compiler generated dependencies file for finitemodel_test.
# This may be replaced when dependencies are built.
