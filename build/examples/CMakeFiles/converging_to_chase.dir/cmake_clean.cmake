file(REMOVE_RECURSE
  "CMakeFiles/converging_to_chase.dir/converging_to_chase.cpp.o"
  "CMakeFiles/converging_to_chase.dir/converging_to_chase.cpp.o.d"
  "converging_to_chase"
  "converging_to_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converging_to_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
