
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/converging_to_chase.cpp" "examples/CMakeFiles/converging_to_chase.dir/converging_to_chase.cpp.o" "gcc" "examples/CMakeFiles/converging_to_chase.dir/converging_to_chase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_classes.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_guarded.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_finitemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_answers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
