// A/B equivalence suite: the delta-driven and parallel sharded chase
// engines must produce the same result as the seed naive
// full-re-enumeration loop — same facts, same per-round growth, same
// nulls, same fixpoint verdict — on every workload generator family and
// every paper-example program. The parallel engine is additionally held
// to *byte identity* with kDelta (row order, raw TermIds, provenance) at
// 1, 2, 4 and 8 threads — and, since the compiled join backend landed,
// with query plans on and off: the interpretive Matcher (plans off) is
// the reference, so the identity sweep cross-validates the plan executor
// against it on every workload here.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/parser/parser.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace bddfc {
namespace {

/// Per-predicate multiset of fact birth rounds — a strong cheap invariant
/// that is independent of row order and null naming.
std::map<PredId, std::vector<int>> BirthRoundsByPredicate(
    const ChaseResult& r) {
  std::map<PredId, std::vector<int>> out;
  for (const auto& [handle, round] : r.fact_round) {
    out[handle.pred].push_back(round);
  }
  for (auto& [pred, rounds] : out) {
    (void)pred;
    std::sort(rounds.begin(), rounds.end());
  }
  return out;
}

/// Runs the delta and parallel engines against the naive baseline with
/// identical options and asserts equivalence for each.
/// `check_isomorphism` additionally requires homomorphisms both ways
/// (exact up to null renaming); keep it off for large random structures
/// where the whole-structure CQ gets expensive.
void ExpectEnginesAgree(const Theory& theory, const Structure& instance,
                        ChaseOptions options, bool check_isomorphism = true) {
  options.engine = ChaseEngine::kNaive;
  ChaseResult naive = RunChase(theory, instance, options);

  for (ChaseEngine engine : {ChaseEngine::kDelta, ChaseEngine::kParallel}) {
    options.engine = engine;
    options.threads = engine == ChaseEngine::kParallel ? 4 : 0;
    ChaseResult got = RunChase(theory, instance, options);
    const char* label =
        engine == ChaseEngine::kParallel ? "parallel" : "delta";

    EXPECT_EQ(got.structure.NumFacts(), naive.structure.NumFacts()) << label;
    EXPECT_EQ(got.facts_per_round, naive.facts_per_round) << label;
    EXPECT_EQ(got.nulls_created, naive.nulls_created) << label;
    EXPECT_EQ(got.fixpoint_reached, naive.fixpoint_reached) << label;
    EXPECT_EQ(got.rounds_run, naive.rounds_run) << label;
    EXPECT_EQ(got.status.code(), naive.status.code()) << label;
    EXPECT_EQ(BirthRoundsByPredicate(got), BirthRoundsByPredicate(naive))
        << label;
    if (check_isomorphism) {
      EXPECT_TRUE(HasHomomorphism(got.structure, naive.structure)) << label;
      EXPECT_TRUE(HasHomomorphism(naive.structure, got.structure)) << label;
    }
  }
}

/// Serializes everything the determinism contract covers: rows in append
/// order with raw TermIds, per-round growth, null provenance and fact
/// birth rounds. Two runs with equal dumps are byte-identical — same row
/// order, same null *names*, not just isomorphic.
std::string ExactDump(const ChaseResult& r) {
  std::string s;
  s += "status=" + r.status.ToString() + " fixpoint=";
  s += r.fixpoint_reached ? '1' : '0';
  s += " rounds=" + std::to_string(r.rounds_run);
  s += " nulls=" + std::to_string(r.nulls_created);
  s += " bindings=" + std::to_string(r.stats.match.bindings_tried);
  s += " tdedup=" + std::to_string(r.stats.triggers_deduped);
  s += " ddedup=" + std::to_string(r.stats.datalog_deduped);
  s += "\nfacts_per_round:";
  for (size_t n : r.facts_per_round) s += " " + std::to_string(n);
  s += "\n";
  for (PredId p = 0; p < r.structure.NumStoredPredicates(); ++p) {
    s += "pred " + std::to_string(p) + ":";
    for (const auto& row : r.structure.Rows(p)) {
      s += " (";
      for (TermId t : row) s += std::to_string(t) + ",";
      s += ")";
    }
    s += "\n";
  }
  std::map<TermId, NullProvenance> prov(r.null_provenance.begin(),
                                        r.null_provenance.end());
  for (const auto& [null_id, np] : prov) {
    s += "null " + std::to_string(null_id) + ": r" +
         std::to_string(np.birth_round) + " rule" +
         std::to_string(np.rule_index) + " head p" +
         std::to_string(np.head_atom.pred) + "(";
    for (TermId t : np.head_atom.args) s += std::to_string(t) + ",";
    s += ")\n";
  }
  std::map<std::pair<PredId, uint32_t>, int> births;
  for (const auto& [handle, round] : r.fact_round) {
    births[{handle.pred, handle.row}] = round;
  }
  for (const auto& [key, round] : births) {
    s += "fact p" + std::to_string(key.first) + "#" +
         std::to_string(key.second) + "=r" + std::to_string(round) + "\n";
  }
  return s;
}

/// The delta-family engines' core contract: byte-identical output across
/// kDelta/kParallel, every thread count, compiled plans on/off, and the
/// vectorized round sink on/off. The reference run is kDelta on the
/// interpretive Matcher with the per-binding hash sink (plans off, sink
/// off), so every comparison against a plans-on run doubles as an A/B
/// check of the plan executor, and every vsink-on run as an A/B check of
/// the sort-dedup sink — dedup counters included (they are part of the
/// dump). `make` must build a fresh Program per call — runs share a
/// Signature otherwise, and the nulls the first run interns would shift
/// the TermIds of the second.
void ExpectByteIdentical(const std::function<Program()>& make,
                         ChaseOptions options) {
  options.engine = ChaseEngine::kDelta;
  options.compiled_plans = false;
  options.vectorized_sink = false;
  Program ref_program = make();
  const std::string ref =
      ExactDump(RunChase(ref_program.theory, ref_program.instance, options));
  for (bool vsink : {true, false}) {
    for (bool plans : {true, false}) {
      {
        Program p = make();
        ChaseOptions o = options;
        o.compiled_plans = plans;
        o.vectorized_sink = vsink;
        EXPECT_EQ(ExactDump(RunChase(p.theory, p.instance, o)), ref)
            << "delta plans=" << plans << " vsink=" << vsink;
      }
      for (size_t threads : {1u, 2u, 4u, 8u}) {
        Program p = make();
        ChaseOptions o = options;
        o.engine = ChaseEngine::kParallel;
        o.threads = threads;
        o.compiled_plans = plans;
        o.vectorized_sink = vsink;
        EXPECT_EQ(ExactDump(RunChase(p.theory, p.instance, o)), ref)
            << "threads=" << threads << " plans=" << plans
            << " vsink=" << vsink;
      }
    }
  }
}

ChaseOptions Depth(size_t rounds) {
  ChaseOptions o;
  o.max_rounds = rounds;
  return o;
}

// ---------------------------------------------------------------------------
// Paper-example programs (workload/paper_examples.cc).
// ---------------------------------------------------------------------------

TEST(ChaseAbTest, Example1) {
  Program p = Example1();  // diverges: compare bounded prefixes
  ExpectEnginesAgree(p.theory, p.instance, Depth(6));
}

TEST(ChaseAbTest, RemarkThreeTheory) {
  Program p = RemarkThreeTheory();
  ExpectEnginesAgree(p.theory, p.instance, Depth(6));
}

TEST(ChaseAbTest, Example7) {
  Program p = Example7();
  ExpectEnginesAgree(p.theory, p.instance, Depth(6));
}

TEST(ChaseAbTest, Example9) {
  Program p = Example9();  // binary tree growth
  ExpectEnginesAgree(p.theory, p.instance, Depth(5));
}

TEST(ChaseAbTest, Section54) {
  Program p = Section54();
  ExpectEnginesAgree(p.theory, p.instance, Depth(5));
}

TEST(ChaseAbTest, Section55) {
  Program p = Section55();
  ExpectEnginesAgree(p.theory, p.instance, Depth(5));
}

TEST(ChaseAbTest, GuardedSample) {
  Program p = GuardedSample();
  ExpectEnginesAgree(p.theory, p.instance, Depth(8));
}

TEST(ChaseAbTest, PaperExamplesOblivious) {
  for (Program p : {Example1(), Example7(), Example9(), Section55()}) {
    ChaseOptions o = Depth(4);
    o.oblivious = true;
    ExpectEnginesAgree(p.theory, p.instance, o);
  }
}

TEST(ChaseAbTest, CyclicWitnessReuse) {
  // Witnesses pre-exist: the restricted chase must stop immediately under
  // both engines.
  auto parsed = ParseProgram(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b). e(b, a).
  )");
  ASSERT_TRUE(parsed.ok());
  Program& p = parsed.value();
  ExpectEnginesAgree(p.theory, p.instance, Depth(8));
}

// ---------------------------------------------------------------------------
// Generator families (workload/generators.cc), swept over seeds.
// ---------------------------------------------------------------------------

class ChaseAbGenerators : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaseAbGenerators, RandomGraphTransitiveClosure) {
  auto sig = std::make_shared<Signature>();
  Structure d = RandomGraph(sig, /*nodes=*/14, /*edges=*/30, GetParam());
  PredId e0 = std::move(sig->FindPredicate("e0")).ValueOrDie();
  Theory t(sig);
  TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
  ASSERT_TRUE(t.AddRule(Rule({Atom(e0, {x, y}), Atom(e0, {y, z})},
                             {Atom(e0, {x, z})}))
                  .ok());
  ExpectEnginesAgree(t, d, Depth(64), /*check_isomorphism=*/false);
}

TEST_P(ChaseAbGenerators, RandomLinearTheory) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomLinearTheory(sig, /*preds=*/4, /*rules=*/6, GetParam());
  Structure d(sig);
  PredId p0 = std::move(sig->FindPredicate("p0")).ValueOrDie();
  PredId p1 = std::move(sig->FindPredicate("p1")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b"),
         c = sig->AddConstant("c");
  d.AddFact(p0, {a, b});
  d.AddFact(p1, {b, c});
  ExpectEnginesAgree(t, d, Depth(6));
}

TEST_P(ChaseAbGenerators, RandomGuardedTheory) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomGuardedTheory(sig, /*max_arity=*/3, /*rules=*/5,
                                 GetParam());
  Structure d(sig);
  PredId g2 = std::move(sig->FindPredicate("g2_0")).ValueOrDie();
  PredId g3 = std::move(sig->FindPredicate("g3_0")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
  d.AddFact(g2, {a, b});
  d.AddFact(g3, {b, a, a});
  ExpectEnginesAgree(t, d, Depth(5));
}

TEST_P(ChaseAbGenerators, RandomAcyclicBinaryTheory) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, /*preds=*/5, /*tgds=*/5,
                                       /*datalog_rules=*/4, GetParam());
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  Rng rng(GetParam() * 31 + 5);
  std::vector<TermId> consts;
  for (int i = 0; i < 4; ++i) {
    consts.push_back(sig->AddConstant("k" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    d.AddFact(b0, {consts[rng.Uniform(4)], consts[rng.Uniform(4)]});
  }
  // Weakly acyclic: both engines must reach the same fixpoint.
  ExpectEnginesAgree(t, d, Depth(128));
}

TEST_P(ChaseAbGenerators, RandomAcyclicBinaryTheoryDatalogOnly) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomAcyclicBinaryTheory(sig, /*preds=*/5, /*tgds=*/3,
                                       /*datalog_rules=*/6, GetParam());
  Structure d(sig);
  PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
  TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
  d.AddFact(b0, {a, b});
  d.AddFact(b0, {b, a});
  ChaseOptions o = Depth(128);
  o.datalog_only = true;
  ExpectEnginesAgree(t, d, o);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseAbGenerators,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------------
// Parallel engine byte-identity: not just isomorphic — identical row
// order, identical null TermIds, identical provenance at every thread
// count (the determinism contract of chase/parallel.h).
// ---------------------------------------------------------------------------

TEST(ChaseParallelIdentity, PaperExamples) {
  ExpectByteIdentical([] { return Example1(); }, Depth(6));
  ExpectByteIdentical([] { return Example9(); }, Depth(5));
  ExpectByteIdentical([] { return GuardedSample(); }, Depth(8));
  ExpectByteIdentical([] { return Section54(); }, Depth(5));
}

TEST(ChaseParallelIdentity, ObliviousMode) {
  ChaseOptions o = Depth(4);
  o.oblivious = true;
  ExpectByteIdentical([] { return Example7(); }, o);
  ExpectByteIdentical([] { return Example1(); }, o);
}

TEST(ChaseParallelIdentity, DatalogTransitiveClosure) {
  // Large enough that one relation spans multiple 1024-row chunks is
  // impractical here; instead exercise many rounds and heavy dedup.
  auto make = [] {
    std::string text = "e(X, Y), e(Y, Z) -> e(X, Z).\n";
    for (int i = 0; i < 24; ++i) {
      text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) +
              ").\n";
    }
    auto r = ParseProgram(text);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };
  ExpectByteIdentical(make, Depth(64));
}

TEST(ChaseParallelIdentity, GeneratorWorkloads) {
  for (uint64_t seed : {3u, 7u, 11u}) {
    ExpectByteIdentical(
        [seed] {
          auto sig = std::make_shared<Signature>();
          Structure d = RandomGraph(sig, /*nodes=*/14, /*edges=*/30, seed);
          PredId e0 = std::move(sig->FindPredicate("e0")).ValueOrDie();
          Program p(sig);
          TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
          EXPECT_TRUE(
              p.theory
                  .AddRule(Rule({Atom(e0, {x, y}), Atom(e0, {y, z})},
                                {Atom(e0, {x, z})}))
                  .ok());
          p.instance = std::move(d);
          return p;
        },
        Depth(64));
    ExpectByteIdentical(
        [seed] {
          auto sig = std::make_shared<Signature>();
          Program p(sig);
          p.theory = RandomGuardedTheory(sig, /*max_arity=*/3, /*rules=*/5,
                                         seed);
          PredId g2 = std::move(sig->FindPredicate("g2_0")).ValueOrDie();
          PredId g3 = std::move(sig->FindPredicate("g3_0")).ValueOrDie();
          TermId a = sig->AddConstant("a"), b = sig->AddConstant("b");
          p.instance.AddFact(g2, {a, b});
          p.instance.AddFact(g3, {b, a, a});
          return p;
        },
        Depth(5));
  }
}

TEST(ChaseParallelIdentity, DivergentRunCutByRoundBudget) {
  // A budget-cut (non-fixpoint) run must be byte-identical too: the
  // parallel engine's round barriers make the prefix deterministic.
  ChaseOptions o = Depth(8);
  ExpectByteIdentical([] { return Example1(); }, o);
  ChaseOptions facts = Depth(64);
  facts.max_facts = 100;
  ExpectByteIdentical([] { return Example9(); }, facts);
}

// ---------------------------------------------------------------------------
// Stats-merge regression (the parallel ChaseStats bugfix): per-round
// times must merge max across shards, so the reported round times can
// never exceed the measured wall clock of the whole run.
// ---------------------------------------------------------------------------

TEST(ChaseParallelStats, ReportedRoundTimesStayUnderMeasuredWallClock) {
  for (bool vsink : {true, false}) {
    for (size_t threads : {1u, 4u, 8u}) {
      auto sig = std::make_shared<Signature>();
      Structure d = RandomGraph(sig, /*nodes=*/18, /*edges=*/48, /*seed=*/5);
      PredId e0 = std::move(sig->FindPredicate("e0")).ValueOrDie();
      Theory t(sig);
      TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
      ASSERT_TRUE(t.AddRule(Rule({Atom(e0, {x, y}), Atom(e0, {y, z})},
                                 {Atom(e0, {x, z})}))
                      .ok());
      ChaseOptions o;
      o.max_rounds = 64;
      o.engine = ChaseEngine::kParallel;
      o.threads = threads;
      o.vectorized_sink = vsink;

      const auto wall_start = std::chrono::steady_clock::now();
      ChaseResult r = RunChase(t, d, o);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - wall_start)
                                 .count();

      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_TRUE(r.fixpoint_reached);
      // Same stats shape as the sequential engines: one entry per executed
      // round plus the final (empty) fixpoint round.
      EXPECT_EQ(r.stats.round_ms.size(), r.rounds_run + 1)
          << "threads=" << threads << " vsink=" << vsink;
      // Rounds are disjoint sub-intervals of the run: with shard times
      // max-merged their sum is bounded by the wall clock. A sum-merge
      // would overshoot on any multi-core box. Small slack for clock
      // granularity.
      const double reported = std::accumulate(r.stats.round_ms.begin(),
                                              r.stats.round_ms.end(), 0.0);
      EXPECT_LE(reported, wall_ms + 0.5)
          << "threads=" << threads << " vsink=" << vsink;
    }
  }
}

// ---------------------------------------------------------------------------
// Vectorized-sink counter parity: the deterministic sink counters
// (candidates buffered, occurrences dropped by bulk containment) must be
// identical across engines, thread counts, and plan modes — only
// sink_probes may vary (compaction boundaries move with sharding). With
// the sink off they must all stay zero.
// ---------------------------------------------------------------------------

TEST(ChaseSinkStats, SinkCountersAreEngineAndThreadInvariant) {
  auto make_workload = [](SignaturePtr* sig_out) {
    auto sig = std::make_shared<Signature>();
    Structure d = RandomGraph(sig, /*nodes=*/16, /*edges=*/40, /*seed=*/11);
    *sig_out = sig;
    return d;
  };
  SignaturePtr ref_sig;
  Structure ref_d = make_workload(&ref_sig);
  PredId e0 = std::move(ref_sig->FindPredicate("e0")).ValueOrDie();
  Theory t(ref_sig);
  TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
  ASSERT_TRUE(t.AddRule(Rule({Atom(e0, {x, y}), Atom(e0, {y, z})},
                             {Atom(e0, {x, z})}))
                  .ok());
  ChaseOptions base;
  base.max_rounds = 64;

  ChaseResult ref = RunChase(t, ref_d, base);  // kDelta, vsink on (default)
  ASSERT_TRUE(ref.status.ok());
  EXPECT_GT(ref.stats.sink_candidates, 0u);
  // Conservation: every candidate is contained, deduped, or a new fact.
  EXPECT_EQ(ref.stats.sink_candidates - ref.stats.sink_contained -
                ref.stats.datalog_deduped,
            ref.structure.NumFacts() - ref_d.NumFacts());

  for (bool plans : {true, false}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ChaseOptions o = base;
      o.engine = ChaseEngine::kParallel;
      o.threads = threads;
      o.compiled_plans = plans;
      ChaseResult r = RunChase(t, ref_d, o);
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.stats.sink_candidates, ref.stats.sink_candidates)
          << "threads=" << threads << " plans=" << plans;
      EXPECT_EQ(r.stats.sink_contained, ref.stats.sink_contained)
          << "threads=" << threads << " plans=" << plans;
      EXPECT_EQ(r.stats.datalog_deduped, ref.stats.datalog_deduped)
          << "threads=" << threads << " plans=" << plans;
    }
  }

  ChaseOptions off = base;
  off.vectorized_sink = false;
  ChaseResult r = RunChase(t, ref_d, off);
  EXPECT_EQ(r.stats.sink_candidates, 0u);
  EXPECT_EQ(r.stats.sink_contained, 0u);
  EXPECT_EQ(r.stats.sink_probes, 0u);
  EXPECT_EQ(r.stats.datalog_deduped, ref.stats.datalog_deduped);
}

}  // namespace
}  // namespace bddfc
