// Fuzzing driver (DESIGN.md §2.8).
//
// RunFuzzer generates `runs` scenarios from a base seed, checks each
// against every registered oracle (or one selected oracle), shrinks every
// failure to a 1-minimal reproducer and renders it as a replayable corpus
// entry. Per-scenario seeds derive from the base seed via Rng::Mix, so
// `--seed=S --runs=N` is a stable, platform-independent test suite and any
// single failure replays as `--seed=<scenario_seed> --runs=1`.

#ifndef BDDFC_TESTING_FUZZER_H_
#define BDDFC_TESTING_FUZZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bddfc/testing/corpus.h"
#include "bddfc/testing/oracles.h"
#include "bddfc/testing/scenario.h"
#include "bddfc/testing/shrinker.h"

namespace bddfc {

/// Knobs of one fuzzing campaign.
struct FuzzOptions {
  uint64_t seed = 1;       ///< base seed; scenario i uses Mix(seed, i)
  size_t runs = 100;       ///< scenarios to generate
  double time_budget_s = 0;  ///< wall-clock cap; 0 = unlimited
  /// Restrict to one oracle by name; empty = all oracles.
  std::string oracle;
  /// Shrink failures to 1-minimal reproducers (disable for triage speed).
  bool shrink = true;
  size_t shrink_max_attempts = 4000;
  /// Stop after this many distinct failures (0 = never stop early).
  size_t max_failures = 1;
  /// Budgets handed to every oracle (including the injected chase fault
  /// for self-tests).
  OracleConfig config;
  /// Progress callback sink: one line per event, empty = silent.
  void (*log)(const std::string& line) = nullptr;
};

/// One oracle failure, minimized and ready to file.
struct FuzzFailure {
  uint64_t scenario_seed = 0;  ///< replay with --seed=<this> --runs=1
  std::string oracle;          ///< which oracle disagreed
  std::string family;          ///< generator family of the scenario
  std::string detail;          ///< the oracle's failure diagnosis
  Scenario minimized;          ///< shrunken reproducer
  std::string corpus_text;     ///< CorpusEntryToText of the reproducer
  ShrinkStats shrink_stats;
};

/// Aggregate result of a campaign.
struct FuzzReport {
  size_t runs_executed = 0;
  size_t checks_passed = 0;
  size_t checks_skipped = 0;
  bool time_budget_hit = false;
  /// Per-oracle pass/skip counters (diagnosing a silent oracle that only
  /// ever skips).
  std::map<std::string, size_t> passes_by_oracle;
  std::map<std::string, size_t> skips_by_oracle;
  std::map<std::string, size_t> runs_by_family;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Runs one campaign. Deterministic given (seed, runs, oracle selection)
/// except for the time budget cutoff.
FuzzReport RunFuzzer(const FuzzOptions& options);

}  // namespace bddfc

#endif  // BDDFC_TESTING_FUZZER_H_
