file(REMOVE_RECURSE
  "libbddfc_chase.a"
)
