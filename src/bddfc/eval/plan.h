// Compiled query plans: a per-body join order chosen once from index
// selectivity, replacing the interpretive Matcher's per-call SelectAtom
// heuristic on the hot paths (chase rounds, saturation, certain answers).
//
// A plan maps the body's variables onto dense slots (0..num_slots-1) and
// fixes one join order over the atoms. Each step records, per argument
// position, whether the executor must compare against a constant, compare
// against an already-filled slot, or fill a fresh slot — so execution never
// touches a hash map per argument the way the interpreter's ResolveTerm
// does. Plans are pure orderings: they hold no row data and stay valid as
// the structure grows, which is what makes the per-run PlanCache sound
// (selectivity estimates are sampled at compile time; the *order* may age,
// the results cannot).
//
// Byte-identity: a plan may enumerate a body's bindings in a different
// order than the Matcher, but the binding *set* is identical, and every
// engine output downstream (ApplyRound's sorted application, trigger
// keying, dedup counters) is a function of the set alone — see the
// determinism notes in chase/round.h.

#ifndef BDDFC_EVAL_PLAN_H_
#define BDDFC_EVAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"

namespace bddfc {

/// How the executor treats one argument position of a step.
struct PlanArg {
  enum Kind : uint8_t {
    kConst,  ///< compare the row value against `value`
    kBound,  ///< compare against slot `slot` (filled earlier, possibly by
             ///< an earlier position of this same step)
    kNew,    ///< first occurrence of the variable: fill slot `slot`
  };
  Kind kind = kConst;
  TermId value = 0;   // kConst only
  uint16_t slot = 0;  // kBound / kNew
};

/// One join step: match one body atom against its relation.
struct PlanStep {
  PredId pred = -1;
  /// Index of this atom in the *original* body — bands are per original
  /// atom, so banded execution looks the clamp up through this.
  size_t atom_index = 0;
  std::vector<PlanArg> args;
  /// Positions whose value is known *before* a candidate row is chosen
  /// (kConst, or kBound to a slot filled by an earlier step or the seed
  /// binding): the executor probes the smallest index among these.
  /// Positions bound to a slot first filled within this step are re-check
  /// only — their value is unknown until the row is read.
  std::vector<uint8_t> probe_positions;
};

/// A compiled body: slot layout plus ordered steps.
struct QueryPlan {
  size_t num_slots = 0;
  /// Slot -> variable id of the body the plan was compiled from. Cached
  /// plans are shared across alpha-equivalent bodies whose variable names
  /// differ; executors recover the caller's mapping with PlanSlotVars.
  std::vector<TermId> slot_vars;
  std::vector<PlanStep> steps;
};

/// Sentinel for CompilePlan: no delta anchor, order all atoms freely.
inline constexpr size_t kNoAnchor = static_cast<size_t>(-1);

/// Compiles `atoms` into a join plan against `s`. When `anchor` names an
/// atom index it is pinned to the front of the join order (the semi-naive
/// delta anchor — its band is the narrow one). Remaining atoms are ordered
/// greedily by the interpreter's primary key (most known argument
/// positions first) with estimated result cardinality — row count divided
/// by the distinct-value counts of the known positions — as the
/// tie-breaker, which is where index selectivity replaces the Matcher's
/// band-width heuristic. `prebound` lists variables the caller will seed
/// through a partial binding; they occupy slots 0..prebound.size()-1 in
/// order and count as bound from step 0.
QueryPlan CompilePlan(const Structure& s, const std::vector<Atom>& atoms,
                      size_t anchor = kNoAnchor,
                      const std::vector<TermId>& prebound = {});

/// Canonical cache key of (body, anchor): the body serialized with
/// variables renumbered by first occurrence — the same canonicalization
/// the chase's PatternKey machinery uses — so alpha-equivalent rule bodies
/// share one compiled plan per anchor.
std::string PlanCacheKey(const std::vector<Atom>& atoms, size_t anchor);

/// Recovers the slot -> variable mapping of a (possibly shared) plan for
/// the caller's own atom list: kNew args name the defining position of
/// each slot, prebound slots come first. `atoms` must be alpha-equivalent
/// to the body the plan was compiled from (same PlanCacheKey).
std::vector<TermId> PlanSlotVars(const QueryPlan& plan,
                                 const std::vector<Atom>& atoms,
                                 const std::vector<TermId>& prebound = {});

/// Thread-safe per-run plan cache. Get() compiles on miss; concurrent
/// misses on the same key may compile twice but publish one winner.
/// Engines create one per run (chase, saturation) so plans are compiled
/// once per rule body x anchor, not once per round or per chunk.
class PlanCache {
 public:
  std::shared_ptr<const QueryPlan> Get(const Structure& s,
                                       const std::vector<Atom>& atoms,
                                       size_t anchor = kNoAnchor);
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const QueryPlan>> plans_;
};

}  // namespace bddfc

#endif  // BDDFC_EVAL_PLAN_H_
