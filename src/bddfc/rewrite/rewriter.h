// Positive first-order (UCQ) rewriting and the BDD property (Def. 2).
//
// A theory T is BDD iff every CQ Φ has a UCQ rewriting Φ′ with
// Chase(D, T) ⊨ Φ  ⇔  D ⊨ Φ′ for all instances D. We compute Φ′ by
// backward-chaining over the rules (the standard procedure for single-head
// TGDs, in the style of Cali–Gottlob–Pieris' XRewrite): a rewriting step
// resolves a query atom against a rule head under an applicability
// condition on existential variables; a factorization step unifies two
// query atoms to unblock further rewritings.
//
// The BFS prunes by homomorphic subsumption (DESIGN.md §2.7): a candidate
// CQ contained in an already-kept disjunct is dropped — it adds nothing to
// the union, and its own rewritings are covered by the rewritings of the
// subsuming disjunct (the standard query-elimination argument: any
// chase-derivation discharged through the candidate is discharged through
// the disjunct that subsumes it at the same chase level). Containment
// probes go through a predicate-multiset/answer-arity pre-filter index so
// most pairs never reach the exponential hom search; per-level counters are
// reported in RewriteStats.
//
// BDD is undecidable, so the API is a budgeted semi-decision: when the
// exploration saturates, the finite UCQ is a *certificate* that the input
// query is rewritable (and, probed over all rule bodies, evidence of BDD);
// when a budget trips, the result is Unknown.

#ifndef BDDFC_REWRITE_REWRITER_H_
#define BDDFC_REWRITE_REWRITER_H_

#include <cstddef>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// Budgets and variants for the rewriting exploration.
struct RewriteOptions {
  /// Maximum BFS depth (number of rewriting levels).
  size_t max_depth = 24;
  /// Maximum number of distinct CQs to generate.
  size_t max_queries = 20000;
  /// Drop generated CQs with more atoms than this (0 = unlimited). A CQ
  /// that would exceed the cap makes the result Unknown rather than
  /// silently incomplete.
  size_t max_atoms_per_query = 0;
  /// Minimize the final UCQ by pairwise subsumption.
  bool minimize = true;
  /// Drop candidates homomorphically subsumed by a kept disjunct from the
  /// output UCQ (pre-filtered containment probes). Off = the seed
  /// behaviour: dedup by normalized key only. The final UCQ is
  /// hom-equivalent either way; pruning keeps the kept set (and
  /// MinimizeUcq's input) small. Subsumed candidates still get explored:
  /// their rewritings are not always covered by the subsuming disjunct's,
  /// so pruning the frontier itself would lose completeness.
  bool prune_subsumed = true;
  /// Budget on subsumption-probe hom checks per RewriteQuery. Probing a
  /// candidate costs O(kept disjuncts) hom checks, so on a diverging
  /// theory the total is quadratic in max_queries; once this budget is
  /// spent the engine stops probing (pruning becomes a no-op for the rest
  /// of the run, which only costs pruning opportunities, never
  /// completeness). Saturating workloads keep small disjunct sets and
  /// never come close. The cutoff is deterministic: RewriteQuery is
  /// single-threaded, so the same exploration hits it at the same point
  /// for any thread count.
  size_t max_hom_checks = 100000;
  /// Worker threads for the independent per-query rewritings fanned out by
  /// ProbeBdd and ComputeKappa (1 = serial; results are deterministic and
  /// identical for any thread count). RewriteQuery itself is single-threaded.
  size_t threads = 1;
  /// Resource governor (not owned; may be null). Deadline / memory /
  /// cancellation are checked at BFS-level boundaries and (strided) inside
  /// candidate generation; frontier storage is charged to its accountant
  /// for the duration of the run. On a trip the run returns
  /// ResourceExhausted with `rewriting` cut at the last *complete* level —
  /// a sound partial union. The count budgets above stay run-local
  /// (Unknown), so one query tripping max_queries inside a shared fan-out
  /// does not cancel its siblings; the shared context is thread-safe.
  ExecutionContext* context = nullptr;
};

/// Per-BFS-level execution counters of one rewriting run.
struct RewriteLevelStats {
  size_t candidates = 0;          ///< raw candidates generated at this level
  size_t key_deduped = 0;         ///< dropped: normalized key already seen
  size_t subsumption_pruned = 0;  ///< dropped: contained in a kept disjunct
  /// Compute time spent on this level in milliseconds. For a single run
  /// this is the level's wall time; merging stats (operator+=) sums it, so
  /// in aggregated fan-out stats it is *accumulated* (cpu-style) time
  /// across runs, not elapsed time.
  double accum_ms = 0;
};

/// Execution counters of one rewriting run (BFS levels + containment
/// probing), for the CLI and benchmark observability.
struct RewriteStats {
  /// Entry d-1 describes BFS level d (level 0, the start query, is free).
  std::vector<RewriteLevelStats> levels;
  /// Full hom searches performed (BFS pruning + final minimization).
  size_t hom_checks = 0;
  /// Candidate pairs rejected by the signature pre-filter instead.
  size_t hom_checks_skipped = 0;
  /// True elapsed wall time of the run. operator+= takes the max (runs
  /// merged into one stats object overlapped or ran back-to-back; the max
  /// is a sound lower bound either way), and ComputeKappa/ProbeBdd
  /// overwrite it with the measured wall time of the whole fan-out — so
  /// unlike the accumulated per-level sums it never exceeds real time.
  double wall_ms = 0;

  size_t TotalCandidates() const;
  size_t TotalKeyDeduped() const;
  size_t TotalSubsumptionPruned() const;
  /// Accumulated compute time over all levels (sums across merged runs;
  /// can exceed elapsed time under a thread fan-out — compare with
  /// TotalWallMs to read parallel speedup).
  double TotalAccumMs() const;
  /// True elapsed wall time: never exceeds the caller's measured wall
  /// clock, for any thread count.
  double TotalWallMs() const { return wall_ms; }

  /// Publishes these counters into `reg` under `<prefix>.*` keys
  /// ("bddfc.rewrite" for RewriteQuery). Callers pass the run's registry
  /// (ContextMetrics) so concurrent sessions never share series. No-op
  /// when the registry is disabled.
  void PublishTo(const char* prefix, obs::MetricsRegistry& reg) const;

  RewriteStats& operator+=(const RewriteStats& o);
};

/// Outcome of a rewriting run.
struct RewriteResult {
  /// OK: exploration saturated; `rewriting` is the complete UCQ Φ′.
  /// Unknown: a budget tripped; `rewriting` is sound but maybe incomplete.
  Status status = Status::OK();
  UnionOfCQs rewriting;
  /// Number of BFS levels until saturation — a derivation-depth bound
  /// certificate k_Φ (each level undoes one chase step).
  size_t depth_reached = 0;
  /// Distinct CQs kept during exploration (after key dedup and subsumption
  /// pruning, before minimization).
  size_t queries_generated = 0;
  /// Maximum number of variables over the disjuncts of `rewriting`
  /// (the §3.3 κ contribution of this query).
  int max_variables = 0;
  /// Execution counters (per-level candidates/dedup/pruning, hom probes).
  RewriteStats stats;
  /// Resource account: a governor trip (deadline/memory/cancel) or the
  /// run-local count budget that made the result Unknown; partial_result
  /// is true when `rewriting` is a usable level-prefix union.
  ResourceReport report;
};

/// Computes the UCQ rewriting of `query` under `theory`.
RewriteResult RewriteQuery(const Theory& theory, const ConjunctiveQuery& query,
                           const RewriteOptions& options = {});

/// §3.3's κ for a theory: rewrite the body of every rule (as a CQ with the
/// rule's frontier/head variables free) and take the maximum variable count
/// across all disjuncts of all rewritings. The per-rule rewritings are
/// independent and fan out over options.threads; the aggregate (and the
/// reported status: the first non-OK in rule order) is identical for any
/// thread count.
struct KappaResult {
  Status status = Status::OK();  ///< Unknown when any body rewriting tripped
  int kappa = 0;
  /// Aggregated rewriting counters over all rule bodies.
  RewriteStats stats;
};
KappaResult ComputeKappa(const Theory& theory,
                         const RewriteOptions& options = {});

/// Budgeted BDD probe: rewrites every rule body and a set of probe queries
/// (single atoms per predicate). All saturated => "BDD-certified at this
/// budget"; any Unknown => Unknown. The independent rewritings fan out over
/// options.threads; every output field is aggregated in probe order and is
/// identical for any thread count.
struct BddProbeResult {
  Status status = Status::OK();
  bool certified = false;
  int kappa = 0;
  size_t max_depth_seen = 0;
  size_t total_disjuncts = 0;
  /// Distinct CQs kept across all probe rewritings.
  size_t queries_generated = 0;
  /// Aggregated rewriting counters over all probes.
  RewriteStats stats;
};
BddProbeResult ProbeBdd(const Theory& theory,
                        const RewriteOptions& options = {});

/// Empirical derivation depth: the smallest i with Chase^i(D, T) ⊨ q, or
/// -1 if not derived within `max_rounds`.
int DerivationDepth(const Theory& theory, const Structure& instance,
                    const ConjunctiveQuery& q, size_t max_rounds = 64);

}  // namespace bddfc

#endif  // BDDFC_REWRITE_REWRITER_H_
