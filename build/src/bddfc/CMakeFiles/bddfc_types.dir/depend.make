# Empty dependencies file for bddfc_types.
# This may be replaced when dependencies are built.
