#include "bddfc/eval/plan.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bddfc {

namespace {

/// Estimated result rows of matching `atom` given the variables already in
/// `slot_of`: the relation's row count divided by the distinct-value count
/// of every position whose value will be known. The classic independence
/// estimate — coarse, but it only has to rank atoms.
double EstimateRows(const Structure& s, const Atom& atom,
                    const std::unordered_map<TermId, uint16_t>& slot_of) {
  double est = static_cast<double>(s.NumFacts(atom.pred));
  for (size_t pos = 0; pos < atom.args.size(); ++pos) {
    TermId t = atom.args[pos];
    const bool known = IsConst(t) || slot_of.count(t) > 0;
    if (!known) continue;
    const size_t distinct = s.DistinctValues(atom.pred, static_cast<int>(pos));
    est /= static_cast<double>(std::max<size_t>(distinct, 1));
  }
  return est;
}

int KnownPositions(const Atom& atom,
                   const std::unordered_map<TermId, uint16_t>& slot_of) {
  int n = 0;
  for (TermId t : atom.args) {
    if (IsConst(t) || slot_of.count(t) > 0) ++n;
  }
  return n;
}

}  // namespace

QueryPlan CompilePlan(const Structure& s, const std::vector<Atom>& atoms,
                      size_t anchor, const std::vector<TermId>& prebound) {
  QueryPlan plan;
  std::unordered_map<TermId, uint16_t> slot_of;
  for (TermId v : prebound) {
    assert(IsVar(v));
    if (slot_of.emplace(v, static_cast<uint16_t>(slot_of.size())).second) {
      plan.slot_vars.push_back(v);
    }
  }

  auto append_step = [&](size_t i) {
    const Atom& a = atoms[i];
    PlanStep st;
    st.pred = a.pred;
    st.atom_index = i;
    st.args.reserve(a.args.size());
    // Slots filled by this very step: later positions bound to them are
    // re-check only (their value is unknown until the row is read).
    std::vector<uint16_t> new_here;
    for (size_t pos = 0; pos < a.args.size(); ++pos) {
      TermId t = a.args[pos];
      PlanArg arg;
      if (IsConst(t)) {
        arg.kind = PlanArg::kConst;
        arg.value = t;
        st.probe_positions.push_back(static_cast<uint8_t>(pos));
      } else {
        auto it = slot_of.find(t);
        if (it == slot_of.end()) {
          assert(slot_of.size() < std::numeric_limits<uint16_t>::max());
          arg.kind = PlanArg::kNew;
          arg.slot = static_cast<uint16_t>(slot_of.size());
          slot_of.emplace(t, arg.slot);
          plan.slot_vars.push_back(t);
          new_here.push_back(arg.slot);
        } else {
          arg.kind = PlanArg::kBound;
          arg.slot = it->second;
          const bool filled_here =
              std::find(new_here.begin(), new_here.end(), arg.slot) !=
              new_here.end();
          if (!filled_here) {
            st.probe_positions.push_back(static_cast<uint8_t>(pos));
          }
        }
      }
      st.args.push_back(arg);
    }
    plan.steps.push_back(std::move(st));
  };

  std::vector<char> used(atoms.size(), 0);
  size_t remaining = atoms.size();
  if (anchor != kNoAnchor) {
    assert(anchor < atoms.size());
    append_step(anchor);
    used[anchor] = 1;
    --remaining;
  }
  while (remaining > 0) {
    size_t best = atoms.size();
    int best_known = -1;
    double best_est = 0.0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      const int known = KnownPositions(atoms[i], slot_of);
      const double est = EstimateRows(s, atoms[i], slot_of);
      if (best == atoms.size() || known > best_known ||
          (known == best_known && est < best_est)) {
        best = i;
        best_known = known;
        best_est = est;
      }
    }
    append_step(best);
    used[best] = 1;
    --remaining;
  }
  plan.num_slots = slot_of.size();
  return plan;
}

std::string PlanCacheKey(const std::vector<Atom>& atoms, size_t anchor) {
  std::unordered_map<TermId, TermId> ren;
  int32_t next = 0;
  std::string s = "a";
  s += std::to_string(anchor);
  s += ";";
  for (const Atom& a : atoms) {
    s += std::to_string(a.pred);
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.find(t);
        if (it == ren.end()) it = ren.emplace(t, MakeVar(next++)).first;
        t = it->second;
      }
      s += ",";
      s += std::to_string(t);
    }
    s += "|";
  }
  return s;
}

std::vector<TermId> PlanSlotVars(const QueryPlan& plan,
                                 const std::vector<Atom>& atoms,
                                 const std::vector<TermId>& prebound) {
  std::vector<TermId> slot_vars(plan.num_slots, 0);
  for (size_t i = 0; i < prebound.size() && i < slot_vars.size(); ++i) {
    slot_vars[i] = prebound[i];
  }
  for (const PlanStep& st : plan.steps) {
    const Atom& a = atoms[st.atom_index];
    for (size_t pos = 0; pos < st.args.size(); ++pos) {
      if (st.args[pos].kind == PlanArg::kNew) {
        slot_vars[st.args[pos].slot] = a.args[pos];
      }
    }
  }
  return slot_vars;
}

std::shared_ptr<const QueryPlan> PlanCache::Get(const Structure& s,
                                               const std::vector<Atom>& atoms,
                                               size_t anchor) {
  std::string key = PlanCacheKey(atoms, anchor);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) return it->second;
  }
  // Compile outside the lock: concurrent misses may compile the same plan
  // twice, but only one is published and both are identical.
  auto plan = std::make_shared<QueryPlan>(CompilePlan(s, atoms, anchor));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = plans_.emplace(std::move(key), std::move(plan));
  (void)inserted;
  return it->second;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

}  // namespace bddfc
