// Program printing: renders theories/instances/queries back into the text
// format accepted by ParseProgram (round-trip capable — variables become
// V0, V1, ...; Rule::ToString's ?N form is for diagnostics only).

#ifndef BDDFC_PARSER_PRINTER_H_
#define BDDFC_PARSER_PRINTER_H_

#include <string>

#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// Renders one rule as a parseable statement (without trailing newline).
std::string RuleToProgramText(const Rule& rule, const Signature& sig);

/// Renders a full program: rules, then facts, then queries. The output
/// reparses to an equivalent program (labeled nulls in the instance are
/// printed by their generated names and become ordinary constants on
/// reparse). Printing is canonical: rules keep their stable theory order,
/// facts are emitted in sorted rendered order (independent of internal id
/// numbering), and names that would not lex as plain identifiers are
/// quoted — so print ∘ parse ∘ print is a fixpoint, which the fuzzer's
/// parser-roundtrip oracle relies on.
std::string ToProgramText(const Theory& theory, const Structure* instance,
                          const std::vector<ConjunctiveQuery>* queries);

}  // namespace bddfc

#endif  // BDDFC_PARSER_PRINTER_H_
