// bddfc command-line tool.
//
// Usage:
//   bddfc chase    <program.dlg> [max_rounds]
//   bddfc rewrite  <program.dlg>            (rewrites each ?- query)
//   bddfc classify <program.dlg>            (class membership + BDD probe)
//   bddfc model    <program.dlg>            (Theorem 2 counter-model per query)
//   bddfc search   <program.dlg> [extra]    (brute-force counter-model)
//
// The program file uses the Datalog± syntax of parser/parser.h: facts,
// rules (with optional 'exists V:' clauses) and '?-' queries.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bddfc/chase/chase.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/model_search.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"

namespace {

using namespace bddfc;

int Usage() {
  std::fprintf(stderr,
               "usage: bddfc <chase|rewrite|classify|model|search> "
               "<program.dlg> [arg]\n");
  return 2;
}

Result<Program> Load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + std::string(path) + "'");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseProgram(buf.str());
}

int CmdChase(Program& p, size_t max_rounds) {
  ChaseOptions opts;
  opts.max_rounds = max_rounds;
  ChaseResult r = RunChase(p.theory, p.instance, opts);
  std::printf("rounds=%zu facts=%zu nulls=%zu fixpoint=%s status=%s\n",
              r.rounds_run, r.structure.NumFacts(), r.nulls_created,
              r.fixpoint_reached ? "yes" : "no", r.status.ToString().c_str());
  double total_ms = 0;
  for (double ms : r.stats.round_ms) total_ms += ms;
  std::printf("stats: bindings=%zu postings_hits=%zu postings_misses=%zu "
              "triggers_deduped=%zu datalog_deduped=%zu chase_ms=%.2f\n",
              r.stats.match.bindings_tried, r.stats.match.postings_hits,
              r.stats.match.postings_misses, r.stats.triggers_deduped,
              r.stats.datalog_deduped, total_ms);
  std::printf("%s", r.structure.ToString().c_str());
  for (size_t i = 0; i < p.queries.size(); ++i) {
    std::printf("query %zu: %s\n", i,
                Satisfies(r.structure, p.queries[i]) ? "certain (at this "
                                                       "depth)"
                                                     : "not derived");
  }
  return 0;
}

int CmdRewrite(Program& p) {
  if (p.queries.empty()) {
    std::printf("no ?- queries in the program\n");
    return 1;
  }
  for (size_t i = 0; i < p.queries.size(); ++i) {
    RewriteResult r = RewriteQuery(p.theory, p.queries[i]);
    std::printf("query %zu: %s\n  disjuncts=%zu depth=%zu generated=%zu\n",
                i, r.status.ToString().c_str(), r.rewriting.size(),
                r.depth_reached, r.queries_generated);
    std::printf("  %s\n", UcqToString(r.rewriting, p.theory.sig()).c_str());
    std::printf("  D |= rewriting: %s\n",
                SatisfiesUcq(p.instance, r.rewriting) ? "true" : "false");
  }
  return 0;
}

int CmdClassify(Program& p) {
  std::printf("rules=%zu predicates=%d max_arity=%d\n", p.theory.size(),
              p.theory.sig().num_predicates(), p.theory.sig().MaxArity());
  std::printf("binary:          %s\n", IsBinaryTheory(p.theory) ? "yes" : "no");
  std::printf("linear:          %s\n", IsLinear(p.theory) ? "yes" : "no");
  std::printf("guarded:         %s\n", IsGuarded(p.theory) ? "yes" : "no");
  StickyReport sticky = CheckSticky(p.theory);
  std::printf("sticky:          %s%s%s\n", sticky.is_sticky ? "yes" : "no",
              sticky.violation.empty() ? "" : "  -- ",
              sticky.violation.c_str());
  std::printf("weakly acyclic:  %s\n",
              IsWeaklyAcyclic(p.theory) ? "yes" : "no");
  std::printf("theorem-3 heads: %s\n",
              HasSingleFrontierVariableHeads(p.theory) ? "yes" : "no");
  BddProbeResult probe = ProbeBdd(p.theory);
  std::printf("BDD probe:       %s (kappa=%d, max rewrite depth=%zu)\n",
              probe.certified ? "certified" : "unknown at budget",
              probe.kappa, probe.max_depth_seen);
  return 0;
}

int CmdModel(Program& p) {
  if (p.queries.empty()) {
    std::printf("no ?- queries in the program\n");
    return 1;
  }
  int rc = 0;
  for (size_t i = 0; i < p.queries.size(); ++i) {
    FiniteModelResult r =
        ConstructFiniteCounterModel(p.theory, p.instance, p.queries[i]);
    if (r.status.ok()) {
      std::printf("query %zu: counter-model with %zu elements "
                  "(kappa=%d n=%d depth=%zu):\n%s",
                  i, r.model.Domain().size(), r.kappa, r.n_used,
                  r.chase_depth_used, r.model.ToString().c_str());
    } else if (r.query_certainly_true) {
      std::printf("query %zu: certainly true (no counter-model exists)\n", i);
    } else {
      std::printf("query %zu: %s\n", i, r.status.ToString().c_str());
      rc = 1;
    }
  }
  return rc;
}

int CmdSearch(Program& p, int extra) {
  const ConjunctiveQuery* avoid =
      p.queries.empty() ? nullptr : &p.queries[0];
  ModelSearchOptions opts;
  opts.max_extra_elements = extra;
  ModelSearchResult r = FindFiniteModel(p.theory, p.instance, avoid, opts);
  std::printf("checked %zu structures; %s\n", r.structures_checked,
              r.status.ToString().c_str());
  if (r.found) {
    std::printf("model:\n%s", r.model->ToString().c_str());
    return 0;
  }
  std::printf("no finite model%s within the domain budget\n",
              avoid != nullptr ? " avoiding the first query" : "");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<Program> loaded = Load(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Program& p = loaded.value();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "chase") == 0) {
    return CmdChase(p, argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 32);
  }
  if (std::strcmp(cmd, "rewrite") == 0) return CmdRewrite(p);
  if (std::strcmp(cmd, "classify") == 0) return CmdClassify(p);
  if (std::strcmp(cmd, "model") == 0) return CmdModel(p);
  if (std::strcmp(cmd, "search") == 0) {
    return CmdSearch(p, argc > 3 ? std::atoi(argv[3]) : 1);
  }
  return Usage();
}
