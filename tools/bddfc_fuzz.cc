// Differential / metamorphic fuzzer for the bddfc engines.
//
// Usage:
//   bddfc_fuzz [--runs=N] [--seed=S] [--time-budget=120s]
//              [--oracle=NAME]
//              [--inject-bug=chase-dedup|torn-exhaust|sink-drop-dup]
//              [--inject-fault=deadline|oom|cancel]
//              [--chaos=N] [--chaos-seed=S] [--paranoia=off|cheap|full]
//              [--corpus-out=DIR] [--no-shrink] [--max-failures=K]
//              [--replay=FILE-or-DIR] [--list-oracles] [-v]
//              [--trace-out=FILE] [--metrics-out=FILE]
//
// Default mode generates N seeded scenarios and cross-checks each against
// every registered oracle (see testing/oracles.h). Failures are shrunk to
// 1-minimal reproducers and printed as replayable corpus entries; with
// --corpus-out they are also written as .dlg files. --replay loads one
// corpus file (or every .dlg in a directory) and re-runs the oracle named
// in its header.
//
// --inject-fault=deadline|oom|cancel arms the governor-prefix oracle: on
// each scenario it deterministically interrupts the chase after K
// cooperative checks and asserts the interrupted run is prefix-consistent
// with the uninterrupted one. --inject-bug deliberately breaks an engine
// invariant — the fuzzer's own self-test: the campaign must then fail and
// minimize. chase-dedup breaks trigger dedup in the delta chase;
// torn-exhaust makes a governed exhaustion apply a torn half-round, which
// governor-prefix (run with --inject-fault) must catch. sink-drop-dup
// makes the vectorized sink drop every duplicate-derived tuple group
// entirely, which chase-agreement must catch.
//
// --chaos=N arms the chaos-recovery oracle: per scenario, N random seeded
// fault plans (base/faults.h RandomFaultPlan) run under the retrying
// supervisor and must end byte-identical to the fault-free run; failing
// plans are ddmin-minimized. --paranoia promotes the chase's test-only
// invariants to runtime checks on the engines under test.
//
// Exit status: 0 = clean, 1 = oracle failures, 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"
#include "bddfc/testing/corpus.h"
#include "bddfc/testing/fuzzer.h"

namespace {

using namespace bddfc;

int Usage() {
  std::fprintf(
      stderr,
      "usage: bddfc_fuzz [--runs=N] [--seed=S] [--time-budget=SECS[s]]\n"
      "                  [--oracle=NAME]\n"
      "                  [--inject-bug=chase-dedup|torn-exhaust|"
      "sink-drop-dup]\n"
      "                  [--inject-fault=deadline|oom|cancel]\n"
      "                  [--chaos=N] [--chaos-seed=S]\n"
      "                  [--paranoia=off|cheap|full]\n"
      "                  [--corpus-out=DIR] [--no-shrink]\n"
      "                  [--max-failures=K] [--replay=FILE-or-DIR]\n"
      "                  [--list-oracles] [-v]\n"
      "                  [--trace-out=FILE] [--metrics-out=FILE]\n");
  return 2;
}

bool verbose = false;

void LogLine(const std::string& line) {
  if (verbose) std::fprintf(stderr, "[fuzz] %s\n", line.c_str());
}

/// Parses "120", "120s" or "2.5" (seconds). Returns false on junk.
bool ParseSeconds(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || v < 0) return false;
  if (*end == 's') ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

int Replay(const std::string& path, const OracleConfig& config) {
  std::vector<std::string> files;
  if (std::filesystem::is_directory(path)) {
    files = ListCorpusFiles(path);
    if (files.empty()) {
      std::fprintf(stderr, "no .dlg files under '%s'\n", path.c_str());
      return 2;
    }
  } else {
    files.push_back(path);
  }
  size_t failures = 0;
  for (const std::string& file : files) {
    Result<CorpusEntry> entry = LoadCorpusFile(file);
    if (!entry.ok()) {
      std::printf("%-50s LOAD-ERROR %s\n", file.c_str(),
                  entry.status().ToString().c_str());
      ++failures;
      continue;
    }
    OracleOutcome outcome = ReplayCorpusEntry(entry.value(), config);
    const char* verdict =
        outcome.kind == OracleOutcome::Kind::kPass   ? "PASS"
        : outcome.kind == OracleOutcome::Kind::kSkip ? "SKIP"
                                                     : "FAIL";
    std::printf("%-50s %s %s%s\n", file.c_str(), verdict,
                entry.value().oracle.c_str(),
                outcome.detail.empty() ? ""
                                       : ("  (" + outcome.detail + ")").c_str());
    if (outcome.failed()) ++failures;
  }
  std::printf("replayed %zu file(s), %zu failure(s)\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  options.max_failures = 1;
  std::string corpus_out;
  std::string replay_path;
  std::string trace_out;
  std::string metrics_out;
  bool list_oracles = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--runs=")) {
      options.runs = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--time-budget=")) {
      if (!ParseSeconds(v, &options.time_budget_s)) return Usage();
    } else if (const char* v = value("--oracle=")) {
      options.oracle = v;
    } else if (const char* v = value("--inject-bug=")) {
      if (std::strcmp(v, "chase-dedup") == 0) {
        options.config.chase_fault = ChaseFault::kSkipTriggerDedup;
      } else if (std::strcmp(v, "torn-exhaust") == 0) {
        options.config.chase_fault = ChaseFault::kTornExhaust;
      } else if (std::strcmp(v, "sink-drop-dup") == 0) {
        options.config.chase_fault = ChaseFault::kSinkDropDup;
      } else {
        std::fprintf(stderr,
                     "unknown bug '%s' (have: chase-dedup, torn-exhaust, "
                     "sink-drop-dup)\n",
                     v);
        return 2;
      }
    } else if (const char* v = value("--inject-fault=")) {
      if (std::strcmp(v, "deadline") == 0) {
        options.config.inject_fault = InjectedFault::kDeadline;
      } else if (std::strcmp(v, "oom") == 0) {
        options.config.inject_fault = InjectedFault::kOom;
      } else if (std::strcmp(v, "cancel") == 0) {
        options.config.inject_fault = InjectedFault::kCancel;
      } else {
        std::fprintf(stderr,
                     "unknown fault '%s' (have: deadline, oom, cancel)\n", v);
        return 2;
      }
    } else if (const char* v = value("--chaos=")) {
      options.config.chaos_plans = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--chaos-seed=")) {
      options.config.chaos_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--paranoia=")) {
      if (!ParanoiaLevelFromName(v, &options.config.paranoia)) {
        std::fprintf(stderr, "unknown paranoia level '%s' (off, cheap, full)\n",
                     v);
        return 2;
      }
    } else if (const char* v = value("--corpus-out=")) {
      corpus_out = v;
    } else if (const char* v = value("--trace-out=")) {
      if (*v == '\0') return Usage();
      trace_out = v;
    } else if (const char* v = value("--metrics-out=")) {
      if (*v == '\0') return Usage();
      metrics_out = v;
    } else if (const char* v = value("--max-failures=")) {
      options.max_failures = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--replay=")) {
      replay_path = v;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--list-oracles") {
      list_oracles = true;
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else {
      return Usage();
    }
  }

  if (list_oracles) {
    for (const Oracle* oracle : AllOracles()) {
      std::printf("%s\n", std::string(oracle->name()).c_str());
    }
    return 0;
  }
  // Observability is off by default; enabling costs a ring allocation
  // (trace) and per-run publication (metrics).
  if (!trace_out.empty()) obs::Tracer::Global().Enable();
  if (!metrics_out.empty()) obs::MetricsRegistry::Global().set_enabled(true);
  auto write_observability = [&] {
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      out << obs::Tracer::Global().ExportChromeJson() << '\n';
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      out << obs::MetricsRegistry::Global().Snapshot().ToJson() << '\n';
    }
  };

  if (!replay_path.empty()) {
    int rc = Replay(replay_path, options.config);
    write_observability();
    return rc;
  }
  if (!options.oracle.empty() && FindOracle(options.oracle) == nullptr) {
    std::fprintf(stderr, "unknown oracle '%s' (--list-oracles)\n",
                 options.oracle.c_str());
    return 2;
  }

  options.log = LogLine;
  FuzzReport report = RunFuzzer(options);

  std::printf("runs=%zu passed=%zu skipped=%zu failures=%zu%s\n",
              report.runs_executed, report.checks_passed,
              report.checks_skipped, report.failures.size(),
              report.time_budget_hit ? " (time budget hit)" : "");
  for (const auto& [name, passes] : report.passes_by_oracle) {
    size_t skips = 0;
    if (auto it = report.skips_by_oracle.find(name);
        it != report.skips_by_oracle.end()) {
      skips = it->second;
    }
    std::printf("  %-20s pass=%zu skip=%zu\n", name.c_str(), passes, skips);
  }
  for (const auto& [family, n] : report.runs_by_family) {
    std::printf("  family %-18s runs=%zu\n", family.c_str(), n);
  }

  if (!corpus_out.empty() && !report.failures.empty()) {
    std::filesystem::create_directories(corpus_out);
  }
  size_t file_idx = 0;
  for (const FuzzFailure& failure : report.failures) {
    std::printf("\nFAIL oracle=%s seed=%llu family=%s\n  %s\n",
                failure.oracle.c_str(),
                static_cast<unsigned long long>(failure.scenario_seed),
                failure.family.c_str(), failure.detail.c_str());
    std::printf("--- minimized reproducer ---\n%s----------------------------\n",
                failure.corpus_text.c_str());
    if (!corpus_out.empty()) {
      std::string path = corpus_out + "/" + failure.oracle + "-" +
                         std::to_string(failure.scenario_seed) + "-" +
                         std::to_string(file_idx++) + ".dlg";
      std::ofstream out(path);
      out << failure.corpus_text;
      std::printf("wrote %s\n", path.c_str());
    }
  }
  write_observability();
  return report.ok() ? 0 : 1;
}
