// Tests for the differential-testing subsystem (DESIGN.md §2.8): scenario
// generation determinism and stratification, oracle agreement on seeded
// batches, fault-injection self-test (the fuzzer must catch a deliberately
// broken delta chase and shrink it to a handful of components), shrinker
// determinism, and corpus round-trips. Plus the chaos harness (§2.14):
// hundreds of random seeded fault plans must recover byte-identically
// under the supervisor, every recoverable fault site must actually fire
// and recover, and paranoia checks must turn silent sink corruption into
// a structured kInternal error.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "bddfc/base/faults.h"
#include "bddfc/base/governor.h"
#include "bddfc/chase/chase.h"
#include "bddfc/chase/supervisor.h"
#include "bddfc/parser/parser.h"
#include "bddfc/testing/corpus.h"
#include "bddfc/testing/fuzzer.h"
#include "bddfc/testing/oracles.h"
#include "bddfc/testing/scenario.h"
#include "bddfc/testing/shrinker.h"
#include "bddfc/workload/generators.h"

namespace bddfc {
namespace {

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (uint64_t seed : {1ull, 42ull, 987654321ull}) {
    Scenario a = GenerateScenario(seed);
    Scenario b = GenerateScenario(seed);
    EXPECT_EQ(ScenarioToText(a), ScenarioToText(b)) << "seed " << seed;
  }
}

TEST(ScenarioTest, FamiliesAreAllHit) {
  std::set<std::string> hit;
  for (uint64_t i = 0; i < 40; ++i) {
    hit.insert(GenerateScenario(Rng::Mix(7, i)).family);
  }
  for (const std::string& family : ScenarioFamilies()) {
    EXPECT_TRUE(hit.count(family)) << "family " << family
                                   << " never generated in 40 scenarios";
  }
}

TEST(ScenarioTest, TextRoundTripIsLossless) {
  for (uint64_t i = 0; i < 10; ++i) {
    Scenario s = GenerateScenario(Rng::Mix(13, i));
    std::string text = ScenarioToText(s);
    Result<Scenario> back = ParseScenario(text);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(ScenarioToText(back.value()), text);
  }
}

TEST(OracleTest, RegistryIsConsistent) {
  ASSERT_GE(AllOracles().size(), 5u);
  for (const Oracle* oracle : AllOracles()) {
    EXPECT_EQ(FindOracle(oracle->name()), oracle);
  }
  EXPECT_EQ(FindOracle("no-such-oracle"), nullptr);
}

TEST(OracleTest, AllOraclesPassOnSeededBatch) {
  const OracleConfig config;
  for (uint64_t i = 0; i < 40; ++i) {
    Scenario s = GenerateScenario(Rng::Mix(1, i));
    for (const Oracle* oracle : AllOracles()) {
      OracleOutcome out = oracle->Check(s, config);
      EXPECT_FALSE(out.failed())
          << oracle->name() << " failed on seed " << s.seed << " ("
          << s.family << "): " << out.detail << "\n"
          << ScenarioToText(s);
    }
  }
}

TEST(FuzzerTest, InjectedChaseDedupBugIsCaughtAndShrinks) {
  FuzzOptions options;
  options.seed = 1;
  options.runs = 50;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSkipTriggerDedup;
  FuzzReport report = RunFuzzer(options);
  ASSERT_FALSE(report.ok()) << "the injected bug went undetected over "
                            << report.runs_executed << " runs";
  const FuzzFailure& f = report.failures[0];
  EXPECT_EQ(f.oracle, "chase-agreement");
  // The acceptance bar: a minimized reproducer of at most 5 components.
  size_t components =
      f.minimized.theory.rules().size() + f.minimized.instance.NumFacts();
  EXPECT_LE(components, 5u) << f.corpus_text;
  EXPECT_GE(f.minimized.theory.rules().size(), 1u);

  // The reproducer replays as a failing corpus entry under the fault...
  Result<CorpusEntry> entry = ParseCorpusText(f.corpus_text);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  OracleConfig faulty;
  faulty.chase_fault = ChaseFault::kSkipTriggerDedup;
  EXPECT_TRUE(ReplayCorpusEntry(entry.value(), faulty).failed());
  // ...and passes once the fault is gone (the bug is in the engine knob,
  // not the scenario).
  OracleOutcome healthy = ReplayCorpusEntry(entry.value(), OracleConfig{});
  EXPECT_FALSE(healthy.failed()) << healthy.detail;
}

TEST(FuzzerTest, InjectedSinkDropDupBugIsCaughtAndShrinks) {
  // kSinkDropDup makes the vectorized sink drop every duplicate-derived
  // tuple group. The kNaive baseline keeps the hash sink (immune by
  // construction), so chase-agreement must flag the divergence — proof
  // that a silently broken sort-dedup sink cannot survive the oracles.
  FuzzOptions options;
  options.seed = 1;
  options.runs = 80;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSinkDropDup;
  FuzzReport report = RunFuzzer(options);
  ASSERT_FALSE(report.ok()) << "the injected sink bug went undetected over "
                            << report.runs_executed << " runs";
  const FuzzFailure& f = report.failures[0];
  EXPECT_EQ(f.oracle, "chase-agreement");
  EXPECT_GE(f.minimized.theory.rules().size(), 1u);

  // The reproducer replays as a failing corpus entry under the fault and
  // passes without it (the bug is in the sink knob, not the scenario).
  Result<CorpusEntry> entry = ParseCorpusText(f.corpus_text);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  OracleConfig faulty;
  faulty.chase_fault = ChaseFault::kSinkDropDup;
  EXPECT_TRUE(ReplayCorpusEntry(entry.value(), faulty).failed());
  OracleOutcome healthy = ReplayCorpusEntry(entry.value(), OracleConfig{});
  EXPECT_FALSE(healthy.failed()) << healthy.detail;
}

TEST(FuzzerTest, ShrinkingIsDeterministic) {
  FuzzOptions options;
  options.seed = 1;
  options.runs = 50;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSkipTriggerDedup;
  FuzzReport a = RunFuzzer(options);
  FuzzReport b = RunFuzzer(options);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.failures[0].corpus_text, b.failures[0].corpus_text);
  EXPECT_EQ(a.failures[0].shrink_stats.attempts,
            b.failures[0].shrink_stats.attempts);
}

TEST(FuzzerTest, MaxFailuresZeroCollectsEverything) {
  FuzzOptions options;
  options.seed = 1;
  options.runs = 12;
  options.oracle = "chase-agreement";
  options.config.chase_fault = ChaseFault::kSkipTriggerDedup;
  options.max_failures = 0;
  options.shrink = false;
  FuzzReport report = RunFuzzer(options);
  EXPECT_EQ(report.runs_executed, 12u);
  EXPECT_GE(report.failures.size(), 2u);
}

TEST(FuzzerTest, UnknownOracleReportsFailure) {
  FuzzOptions options;
  options.oracle = "no-such-oracle";
  FuzzReport report = RunFuzzer(options);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.runs_executed, 0u);
}

TEST(ShrinkerTest, PassingScenarioIsReturnedUnchanged) {
  Scenario s = GenerateScenario(Rng::Mix(1, 0));
  const Oracle* oracle = FindOracle("chase-agreement");
  ASSERT_NE(oracle, nullptr);
  ShrinkStats stats;
  Scenario out = ShrinkScenario(s, *oracle, OracleConfig{}, 100, &stats);
  EXPECT_EQ(ScenarioToText(out), ScenarioToText(s));
  EXPECT_EQ(stats.removals, 0u);
}

TEST(CorpusTest, EntryTextRoundTrips) {
  CorpusEntry entry;
  entry.oracle = "parser-roundtrip";
  entry.family = "guarded";
  entry.seed = 99;
  entry.note = "two\nlines";
  entry.program = "p(a).\n?- p(V0).\n";
  std::string text = CorpusEntryToText(entry);
  Result<CorpusEntry> back = ParseCorpusText(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().oracle, "parser-roundtrip");
  EXPECT_EQ(back.value().family, "guarded");
  EXPECT_EQ(back.value().seed, 99u);
  EXPECT_EQ(back.value().note, "two; lines");
  // The program keeps the header comments (they are comments to the
  // parser), so replay sees the full file.
  EXPECT_EQ(back.value().program, text);
}

TEST(CorpusTest, MissingOracleHeaderIsRejected) {
  EXPECT_FALSE(ParseCorpusText("p(a).\n").ok());
  CorpusEntry entry;
  entry.oracle = "no-such-oracle";
  entry.program = "p(a).\n";
  EXPECT_TRUE(ReplayCorpusEntry(entry).failed());
}

// ---------------------------------------------------------------------------
// Chaos harness (DESIGN.md §2.14).
// ---------------------------------------------------------------------------

/// Byte-identity serialization of a chase result (raw TermIds, row order,
/// per-round growth, null provenance) — the chaos recovery contract.
std::string ExactChaseDump(const ChaseResult& r) {
  std::string s;
  s += "status=" + r.status.ToString() + " fixpoint=";
  s += r.fixpoint_reached ? '1' : '0';
  s += " rounds=" + std::to_string(r.rounds_run);
  s += " nulls=" + std::to_string(r.nulls_created);
  s += "\nfacts_per_round:";
  for (size_t n : r.facts_per_round) s += " " + std::to_string(n);
  s += "\n";
  for (PredId p = 0; p < r.structure.NumStoredPredicates(); ++p) {
    s += "pred " + std::to_string(p) + ":";
    for (const auto& row : r.structure.Rows(p)) {
      s += " (";
      for (TermId t : row) s += std::to_string(t) + ",";
      s += ")";
    }
    s += "\n";
  }
  std::map<TermId, NullProvenance> prov(r.null_provenance.begin(),
                                        r.null_provenance.end());
  for (const auto& [null_id, np] : prov) {
    s += "null " + std::to_string(null_id) + ": r" +
         std::to_string(np.birth_round) + "\n";
  }
  return s;
}

/// Chases a fresh clone of `s` (print+parse clones intern identically, so
/// dumps are byte-comparable) under the supervisor, with an optional
/// single armed fault. Reports whether the fault actually fired and how
/// the supervisor fared.
std::string SupervisedDump(const Scenario& s, const FaultSpec* spec,
                           bool* fired, bool* recovered, size_t* attempts) {
  Result<Scenario> clone = CloneScenario(s);
  EXPECT_TRUE(clone.ok()) << clone.status().ToString();
  ChaseOptions opts;
  opts.max_rounds = 24;
  opts.max_facts = 20000;
  opts.engine = ChaseEngine::kParallel;
  opts.threads = 4;
  opts.compiled_plans = true;
  opts.vectorized_sink = true;
  ExecutionContext ctx;
  FaultRegistry reg;
  if (spec != nullptr) {
    reg.Arm(*spec);
    ctx.SetFaultRegistry(&reg);
  }
  SupervisorOptions sup;
  sup.context = &ctx;
  sup.backoff_ms = 0.0;
  SupervisedChase got = RunChaseSupervised(clone.value().theory,
                                           clone.value().instance, opts, sup);
  if (fired != nullptr) {
    *fired = spec != nullptr && reg.FireCount(spec->site) > 0;
  }
  if (recovered != nullptr) *recovered = got.recovered;
  if (attempts != nullptr) *attempts = got.attempts;
  return ExactChaseDump(got.result);
}

// The acceptance bar for the chaos harness: >= 200 random seeded fault
// plans across seeded scenarios, every one of which must end
// byte-identical to the fault-free run (nightly CI runs the same sweep
// through bddfc_fuzz --chaos).
TEST(ChaosTest, TwoHundredRandomFaultPlansRecoverByteIdentically) {
  const Oracle* oracle = FindOracle("chaos-recovery");
  ASSERT_NE(oracle, nullptr);
  OracleConfig config;
  config.chaos_plans = 8;
  config.chaos_seed = 7;
  config.paranoia = ParanoiaLevel::kCheap;
  size_t plans = 0;
  for (uint64_t i = 0; plans < 200; ++i) {
    ASSERT_LT(i, 100u) << "scenario generator starved the plan budget";
    Scenario s = GenerateScenario(Rng::Mix(31, i));
    OracleOutcome out = oracle->Check(s, config);
    ASSERT_FALSE(out.failed())
        << "chaos plan diverged on seed " << s.seed << " (" << s.family
        << "): " << out.detail;
    if (out.kind == OracleOutcome::Kind::kPass) plans += config.chaos_plans;
  }
  EXPECT_GE(plans, 200u);
}

// Coverage half of the chaos contract: every recoverable fault site must
// actually fire at least once over the scenario sweep, and each fire must
// recover to the fault-free bytes. A site that never fires is dead
// instrumentation the random plans only *appear* to exercise.
TEST(ChaosTest, EveryRecoverableSiteFiresAndRecovers) {
  std::set<std::string> uncovered(RecoverableFaultSites().begin(),
                                  RecoverableFaultSites().end());
  ASSERT_EQ(uncovered.size(), 7u);
  for (uint64_t i = 0; i < 40 && !uncovered.empty(); ++i) {
    Scenario s = GenerateScenario(Rng::Mix(53, i));
    std::string reference =
        SupervisedDump(s, nullptr, nullptr, nullptr, nullptr);
    for (auto it = uncovered.begin(); it != uncovered.end();) {
      FaultSpec spec{.site = *it,
                     .schedule = FaultSchedule::kAfterN,
                     .n = 0,
                     .max_fires = 1};
      bool fired = false;
      bool recovered = false;
      size_t attempts = 0;
      std::string dump = SupervisedDump(s, &spec, &fired, &recovered, &attempts);
      EXPECT_EQ(dump, reference)
          << "site " << *it << " diverged on seed " << s.seed;
      if (fired) {
        EXPECT_TRUE(recovered) << *it;
        EXPECT_GE(attempts, 2u) << *it;
        it = uncovered.erase(it);
      } else {
        ++it;
      }
    }
  }
  EXPECT_TRUE(uncovered.empty())
      << "site never fired over 40 scenarios: " << *uncovered.begin();
}

TEST(ParanoiaTest, CheapChecksTurnSinkCorruptionIntoInternalError) {
  // t(b) is derived twice in round 1; kSinkDropDup drops the whole
  // duplicate group, which breaks the sink counter identity. With
  // paranoia off the corruption is silent (only cross-engine agreement
  // would notice); at kCheap the run itself fails with a structured
  // kInternal naming the violated invariant.
  constexpr char kDup[] = "e(a, b). e(c, b). e(X, Y) -> t(Y).";
  auto silent = ParseProgram(kDup);
  ASSERT_TRUE(silent.ok());
  ChaseOptions opts;
  opts.vectorized_sink = true;
  opts.fault = ChaseFault::kSinkDropDup;
  ChaseResult off =
      RunChase(silent.value().theory, silent.value().instance, opts);
  EXPECT_TRUE(off.status.ok()) << off.status.ToString();

  auto caught = ParseProgram(kDup);
  ASSERT_TRUE(caught.ok());
  opts.paranoia = ParanoiaLevel::kCheap;
  ChaseResult on =
      RunChase(caught.value().theory, caught.value().instance, opts);
  EXPECT_EQ(on.status.code(), StatusCode::kInternal);
  EXPECT_NE(on.status.ToString().find("paranoia"), std::string::npos)
      << on.status.ToString();
}

}  // namespace
}  // namespace bddfc
