#include "bddfc/chase/chase.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <unordered_set>

#include "bddfc/base/thread_pool.h"
#include "bddfc/chase/parallel.h"
#include "bddfc/chase/round.h"
#include "bddfc/eval/match.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

const char* ChaseFaultName(ChaseFault fault) {
  switch (fault) {
    case ChaseFault::kNone: return "none";
    case ChaseFault::kSkipTriggerDedup: return "skip-trigger-dedup";
    case ChaseFault::kTornExhaust: return "torn-exhaust";
    case ChaseFault::kSinkDropDup: return "sink-drop-dup";
  }
  return "?";
}

ChaseFault ChaseFaultFromName(std::string_view name) {
  if (name == "skip-trigger-dedup") return ChaseFault::kSkipTriggerDedup;
  if (name == "torn-exhaust") return ChaseFault::kTornExhaust;
  if (name == "sink-drop-dup") return ChaseFault::kSinkDropDup;
  return ChaseFault::kNone;
}

void ChaseStats::PublishTo(const char* prefix,
                           obs::MetricsRegistry& reg) const {
  if (!reg.enabled()) return;
  // Handles are resolved per call: registries are per-session now
  // (DESIGN.md §2.15), so a static cache keyed on the first caller's
  // registry would silently publish one session's counters into
  // another's — the exact cross-request interleaving bug the RunContext
  // refactor removes. Publication happens once per run, so the string
  // assembly and map lookups are off every hot loop.
  struct Handles {
    std::string prefix;
    obs::Counter* bindings_tried;
    obs::Counter* postings_hits;
    obs::Counter* postings_misses;
    obs::Counter* rows_scanned;
    obs::Counter* triggers_deduped;
    obs::Counter* datalog_deduped;
    obs::Counter* sink_candidates;
    obs::Counter* sink_contained;
    obs::Counter* sink_probes;
    obs::Histogram* round_us;
  };
  auto resolve = [&reg](const char* pfx) {
    const std::string p(pfx);
    return Handles{p,
                   reg.GetCounter(p + ".bindings_tried"),
                   reg.GetCounter(p + ".postings_hits"),
                   reg.GetCounter(p + ".postings_misses"),
                   reg.GetCounter(p + ".rows_scanned"),
                   reg.GetCounter(p + ".triggers_deduped"),
                   reg.GetCounter(p + ".datalog_deduped"),
                   reg.GetCounter(p + ".sink_candidates"),
                   reg.GetCounter(p + ".sink_contained"),
                   reg.GetCounter(p + ".sink_probes"),
                   reg.GetHistogram(p + ".round_us")};
  };
  auto publish = [this](const Handles& h) {
    h.bindings_tried->Add(match.bindings_tried);
    h.postings_hits->Add(match.postings_hits);
    h.postings_misses->Add(match.postings_misses);
    h.rows_scanned->Add(match.rows_scanned);
    h.triggers_deduped->Add(triggers_deduped);
    h.datalog_deduped->Add(datalog_deduped);
    h.sink_candidates->Add(sink_candidates);
    h.sink_contained->Add(sink_contained);
    h.sink_probes->Add(sink_probes);
    for (double ms : round_ms) {
      h.round_us->Record(static_cast<uint64_t>(ms * 1000.0));
    }
  };
  publish(resolve(prefix));
}

using chase_internal::AddFactTracked;
using chase_internal::ApplyRound;
using chase_internal::EnumerateRoundParallel;
using chase_internal::EnumerateRoundSequential;
using chase_internal::RoundBuffer;
using chase_internal::RoundInputs;

ChaseResult RunChase(const Theory& theory, const Structure& instance,
                     const ChaseOptions& options) {
  assert(theory.signature_ptr().get() == instance.signature_ptr().get() &&
         "theory and instance must share one Signature object");
  ChaseResult out(instance.signature_ptr());
  obs::TraceSpan run_span(&ContextTracer(options.context),
                          options.datalog_only ? "chase.datalog"
                                               : "chase.run");

  // Ungoverned runs get a cheap local context (no deadline, no limits, no
  // accountant attached) so the loop below has a single code path; its
  // checks are a handful of relaxed atomic loads per round.
  ExecutionContext local_ctx;
  ExecutionContext* ctx =
      options.context != nullptr ? options.context : &local_ctx;
  const bool governed = options.context != nullptr;
  if (governed) out.structure.SetAccountant(&ctx->memory());

  // Resolve the effective behavioral fault once per run: the options knob,
  // or a registry fire at the chase.bug site whose action names one.
  ChaseFault fault = options.fault;
  if (FaultRegistry* freg = ctx->fault_registry();
      freg != nullptr && freg->enabled()) {
    FaultFire fire = freg->Hit(faults::kChaseBug);
    if (fire.fired) {
      ChaseFault named = ChaseFaultFromName(fire.action);
      if (named != ChaseFault::kNone) fault = named;
    }
  }
  const ParanoiaLevel paranoia = options.paranoia;

  // Detaches the run-scoped accountant and snapshots the resource report;
  // called before every return so results never carry dangling pointers.
  auto finalize = [&] {
    out.structure.SetAccountant(nullptr);
    std::string progress =
        "round " + std::to_string(out.rounds_run) + ", " +
        std::to_string(out.structure.NumFacts()) + " facts" +
        (out.fixpoint_reached ? ", fixpoint" : "");
    run_span.set_detail(progress);
    ctx->NotePhase("chase", std::move(progress));
    out.report = ctx->report();
    out.report.partial_result =
        !out.status.ok() && out.structure.NumFacts() > 0;
    // Stats carry the run's peak accounted bytes so shard merges (which
    // max, never sum — one accountant is shared) have a single source.
    out.stats.peak_bytes = out.report.peak_bytes;
    // The run publishes into its context's registry (a per-request one
    // under the serving layer, the process registry otherwise). No static
    // handle cache: handles are registry-specific.
    obs::MetricsRegistry& reg = ctx->metrics_registry();
    out.stats.PublishTo("bddfc.chase", reg);
    if (reg.enabled()) {
      reg.GetCounter("bddfc.chase.runs")->Add(1);
      reg.GetCounter("bddfc.chase.rounds")->Add(out.rounds_run);
      reg.GetCounter("bddfc.chase.nulls_created")->Add(out.nulls_created);
      reg.GetGauge("bddfc.chase.last_facts")->Set(out.structure.NumFacts());
    }
  };

  // Round 0: copy the instance, tagging every fact with round 0.
  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    AddFactTracked(&out, p, row, 0);
  });
  for (TermId c : instance.Domain()) out.structure.AddDomainElement(c);
  out.facts_per_round.push_back(out.structure.NumFacts());

  // Oblivious mode: remember fired (rule, body-binding) pairs so each
  // trigger fires exactly once over the whole run (the blind chase creates
  // one witness per trigger, not one per round).
  std::unordered_set<std::string> fired;

  // kParallel with one resolved worker thread routes through the serial
  // delta round path: a pool plus striped tables buys nothing at
  // parallelism 1 and used to cost up to 2x against kDelta. Same bytes
  // (both funnel through ApplyRound's canonical order), same stats.
  const size_t pool_threads =
      options.threads != 0 ? options.threads : ThreadPool::DefaultThreads();
  const bool parallel =
      options.engine == ChaseEngine::kParallel && pool_threads > 1;
  std::unique_ptr<ThreadPool> pool;
  if (parallel) {
    pool = std::make_unique<ThreadPool>(pool_threads);
    pool->SetCancelToken(ctx->cancel_token());
  }

  // Compiled query plans: one cache per run, shared by every round (and
  // every shard task — PlanCache is thread-safe). kNaive stays on the
  // interpretive Matcher as the independent A/B reference.
  const bool use_plans =
      options.compiled_plans && options.engine != ChaseEngine::kNaive;
  // The vectorized sink's bulk containment pass gallops the same sorted
  // indexes the plans use, so it needs them fresh even on the
  // interpretive path (kNaive keeps the hash sink — see ChaseOptions).
  const bool use_vsink =
      options.vectorized_sink && options.engine != ChaseEngine::kNaive;
  PlanCache plan_cache;

  for (size_t round = 1; round <= options.max_rounds; ++round) {
    // Round boundary: the structure holds exactly Chase^{round-1}, so a
    // trip here returns a clean prefix.
    Status cp = ctx->CheckPoint("chase round start");
    if (cp.ok()) cp = ctx->CheckFault(faults::kChaseRound);
    if (!cp.ok()) {
      out.status = std::move(cp);
      finalize();
      return out;
    }

    const auto round_start = std::chrono::steady_clock::now();
    obs::TraceSpan round_span(&ctx->tracer(), "chase.round");

    // Round boundaries are the single-threaded point of the run: extend
    // the sorted per-position indexes over the previous round's additions
    // before any (possibly parallel) scan starts reading them.
    if (use_plans || use_vsink) {
      Status fs = ctx->CheckFault(faults::kIndexRefresh);
      if (!fs.ok()) {
        out.status = std::move(fs);
        finalize();
        return out;
      }
      out.structure.RefreshIndexes();
      if (paranoia != ParanoiaLevel::kOff) {
        // Index watermark freshness: every scan this round assumes the
        // sorted indexes cover every stored row.
        for (PredId p = 0; p < out.structure.NumStoredPredicates(); ++p) {
          if (out.structure.IndexedRows(p) != out.structure.Rows(p).size()) {
            out.status = ctx->RecordInvariantViolation(
                "paranoia: stale sorted index for pred " + std::to_string(p) +
                " after refresh (" +
                std::to_string(out.structure.IndexedRows(p)) + " of " +
                std::to_string(out.structure.Rows(p).size()) +
                " rows covered) at round " + std::to_string(round));
            finalize();
            return out;
          }
        }
      }
    }

    // Enumerate this round's derivations against the Chase^{round-1}
    // snapshot into a buffer; the structure is not touched until the
    // buffer is applied, so every engine sees one frozen instance.
    RoundBuffer buf;
    RoundInputs inputs{theory,
                       out.structure,
                       options,
                       ctx,
                       &fired,
                       use_plans ? &plan_cache : nullptr,
                       fault};
    Status barrier = Status::OK();
    if (parallel) {
      barrier = EnumerateRoundParallel(inputs, pool.get(), &buf);
    } else {
      EnumerateRoundSequential(inputs, options.engine != ChaseEngine::kNaive,
                               &buf);
    }

    auto elapsed_ms = [&round_start] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - round_start)
          .count();
    };
    // Fold the round's counters into the run stats. Per-task wall times
    // were already max-merged inside the buffer (shards overlap; summing
    // them would report more time than the wall clock shows); the run
    // records the measured barrier-to-barrier round time below instead.
    buf.stats.round_ms.clear();
    out.stats += buf.stats;

    // A non-OK barrier means queued shard tasks were drained unrun
    // (cancellation raced the round): the buffer is incomplete even if no
    // probe latched the trip yet, so the round must be discarded too.
    if (ctx->Exhausted() || !barrier.ok()) {
      // The governor tripped mid-enumeration: the buffered additions are
      // an incomplete round. Discard them so the structure stays the
      // Chase^{round-1} prefix (unless the torn-exhaust fault is injected,
      // which applies them to give the prefix oracle a bug to catch).
      if (fault == ChaseFault::kTornExhaust) {
        std::sort(buf.datalog.begin(), buf.datalog.end());
        for (const Atom& g : buf.datalog) {
          AddFactTracked(&out, g.pred, g.args, static_cast<int>(round));
        }
      }
      Status abort_status = ctx->CheckPoint("chase round abort");
      out.status = !abort_status.ok() ? std::move(abort_status)
                                      : std::move(barrier);
      // Round-prefix consistency: an interrupted run must still hold
      // exactly Chase^{round-1}. A mismatch means a torn (non-atomic)
      // round application leaked into the result — corruption, not a
      // budget trip, so it overrides the exhaustion status.
      if (paranoia != ParanoiaLevel::kOff &&
          out.structure.NumFacts() != out.facts_per_round.back()) {
        out.status = ctx->RecordInvariantViolation(
            "paranoia: torn round prefix on trip at round " +
            std::to_string(round) + " (" +
            std::to_string(out.structure.NumFacts()) + " facts vs " +
            std::to_string(out.facts_per_round.back()) +
            " at the last round boundary)");
      }
      out.stats.round_ms.push_back(elapsed_ms());
      finalize();
      return out;
    }

    // Sink counter identity (paranoia): every buffered datalog occurrence
    // is either contained in the frozen structure, collapsed as an
    // in-round duplicate, or emitted as a fresh tuple. A sink that drops
    // or double-counts tuples breaks this identity. Only the vectorized
    // sink populates sink_candidates, so the check is gated on it.
    if (paranoia != ParanoiaLevel::kOff && use_vsink &&
        buf.stats.sink_candidates != buf.stats.sink_contained +
                                         buf.stats.datalog_deduped +
                                         buf.datalog.size()) {
      out.status = ctx->RecordInvariantViolation(
          "paranoia: sink counter identity violated at round " +
          std::to_string(round) + " (candidates=" +
          std::to_string(buf.stats.sink_candidates) + " contained=" +
          std::to_string(buf.stats.sink_contained) + " deduped=" +
          std::to_string(buf.stats.datalog_deduped) + " new=" +
          std::to_string(buf.datalog.size()) + ")");
      out.stats.round_ms.push_back(elapsed_ms());
      finalize();
      return out;
    }

    // Full paranoia re-verifies the buffer against the frozen structure:
    // emitted tuples must be pairwise distinct and absent from
    // Chase^{round-1} (the guarantees the sink's sort-dedup and bulk
    // containment pass claim to have enforced).
    if (paranoia == ParanoiaLevel::kFull) {
      std::vector<Atom> sorted = buf.datalog;
      std::sort(sorted.begin(), sorted.end());
      Status verify = Status::OK();
      for (size_t i = 0; i < sorted.size() && verify.ok(); ++i) {
        if (i > 0 && sorted[i] == sorted[i - 1]) {
          verify = ctx->RecordInvariantViolation(
              "paranoia: duplicate tuple in round buffer at round " +
              std::to_string(round));
        } else if (out.structure.Contains(sorted[i].pred, sorted[i].args)) {
          verify = ctx->RecordInvariantViolation(
              "paranoia: round buffer re-derives a frozen fact at round " +
              std::to_string(round));
        }
      }
      if (!verify.ok()) {
        out.status = std::move(verify);
        out.stats.round_ms.push_back(elapsed_ms());
        finalize();
        return out;
      }
    }

    if (buf.empty()) {
      out.stats.round_ms.push_back(elapsed_ms());
      out.fixpoint_reached = true;
      break;
    }

    // Last abort point with the buffer still unapplied: a fault here
    // discards the whole round, so the structure stays a clean prefix.
    Status alloc_cp = ctx->CheckFault(faults::kChaseAlloc);
    if (!alloc_cp.ok()) {
      out.status = std::move(alloc_cp);
      out.stats.round_ms.push_back(elapsed_ms());
      finalize();
      return out;
    }

    // Record the round boundary *before* applying this round's additions:
    // the rows inserted below form the delta of the next round.
    out.structure.MarkRoundBoundary();
    const size_t added = ApplyRound(&buf, round, &out);

    out.rounds_run = round;
    out.facts_per_round.push_back(out.structure.NumFacts());
    out.stats.round_ms.push_back(elapsed_ms());

    if (added == 0) {
      // Buffered additions all turned out to be duplicates: fixpoint.
      out.fixpoint_reached = true;
      break;
    }
    if (out.structure.NumFacts() > options.max_facts) {
      out.status = ctx->RecordExhaustion(
          ResourceKind::kFacts,
          "chase exceeded max_facts=" + std::to_string(options.max_facts) +
              " at round " + std::to_string(round));
      finalize();
      return out;
    }
  }

  if (!out.fixpoint_reached) {
    out.status = ctx->RecordExhaustion(
        ResourceKind::kRounds,
        "chase did not reach a fixpoint within max_rounds=" +
            std::to_string(options.max_rounds));
  }
  finalize();
  return out;
}

std::vector<std::vector<Atom>> ChaseResult::FactsByRound() const {
  std::vector<std::vector<Atom>> out;
  if (structure.NumFacts() == 0) return out;
  int max_round = 0;
  for (const auto& [handle, round] : fact_round) {
    (void)handle;
    max_round = std::max(max_round, round);
  }
  out.resize(static_cast<size_t>(max_round) + 1);
  for (PredId p = 0; p < structure.NumStoredPredicates(); ++p) {
    const auto& rows = structure.Rows(p);
    for (uint32_t row = 0; row < rows.size(); ++row) {
      auto it = fact_round.find(FactHandle{p, row});
      int round = it == fact_round.end() ? 0 : it->second;
      out[static_cast<size_t>(round)].emplace_back(p, rows[row]);
    }
  }
  return out;
}

std::string RuleViolation::ToString(const Signature& sig) const {
  std::string s = "rule #" + std::to_string(rule_index) + " violated by ";
  for (size_t i = 0; i < grounded_body.size(); ++i) {
    if (i) s += ", ";
    s += grounded_body[i].ToString(sig);
  }
  return s;
}

std::optional<RuleViolation> CheckModel(const Structure& m,
                                        const Theory& theory) {
  Matcher matcher(m);
  std::optional<RuleViolation> violation;
  for (size_t ri = 0; ri < theory.rules().size() && !violation; ++ri) {
    const Rule& rule = theory.rules()[ri];
    matcher.Enumerate(rule.body, {}, [&](const Binding& b) {
      // Check head satisfaction: grounded atoms for bound variables,
      // existential variables free for the matcher.
      std::vector<Atom> head = rule.head;
      for (Atom& a : head) {
        for (TermId& t : a.args) {
          if (IsVar(t)) {
            auto it = b.find(t);
            if (it != b.end()) t = it->second;
          }
        }
      }
      if (!matcher.Exists(head, {})) {
        RuleViolation v;
        v.rule_index = static_cast<int>(ri);
        for (const Atom& a : rule.body) {
          Atom g = a;
          for (TermId& t : g.args) {
            auto it = b.find(t);
            if (it != b.end()) t = it->second;
          }
          v.grounded_body.push_back(std::move(g));
        }
        violation = std::move(v);
        return false;
      }
      return true;
    });
  }
  return violation;
}

}  // namespace bddfc
