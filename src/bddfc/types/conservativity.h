// Conservativity of colorings (§2.5, Def. 8–9).
//
// A coloring C̄ is n-conservative up to size m when the projection q_n onto
// M_n(C̄) preserves every element's positive m-type over the base signature
// Σ (condition ♠2). One inclusion is free (q_n is a homomorphism); the
// checker decides the other — ptp_m(M, q(e), Σ) ⊆ ptp_m(C, e, Σ) — with the
// existential-positive pebble game for every element.

#ifndef BDDFC_TYPES_CONSERVATIVITY_H_
#define BDDFC_TYPES_CONSERVATIVITY_H_

#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/core/structure.h"
#include "bddfc/types/coloring.h"
#include "bddfc/types/ptype.h"
#include "bddfc/types/quotient.h"

namespace bddfc {

/// Result of a conservativity check.
struct ConservativityReport {
  /// OK, or ResourceExhausted when the pebble game tripped its cap.
  Status status = Status::OK();
  bool conservative = false;
  /// When not conservative: an element whose positive m-type grew under
  /// the projection (the e of Remark 2).
  TermId failing_element = -1;
  size_t patterns_checked = 0;
};

/// Checks (♠2) for the quotient `q` of `c`: every element's positive m-type
/// over `sigma` is preserved. `sigma` is the base signature (colors
/// excluded); pass Coloring::base_predicates.
///
/// A non-null `context` governs the pebble game (deadline/memory/cancel);
/// both a governed trip and a max_positions trip surface as a non-OK
/// status — `conservative` is then false *and meaningless*, so callers
/// must consult `status` before trusting it. The max_positions trip is
/// reported on the return value only (the context is not latched), so a
/// caller may retry with different parameters.
ConservativityReport CheckConservativeUpTo(const Structure& c,
                                           const Quotient& q, int m,
                                           const std::vector<PredId>& sigma,
                                           size_t max_positions = 2000000,
                                           ExecutionContext* context = nullptr);

/// End-to-end Def. 9 probe for one (m, n) pair: color `c` naturally with
/// window m, quotient by ≡_n over the colored signature (exact pebble
/// partition when feasible, ball partition otherwise), and check (♠2).
struct ConservativityProbe {
  Status status = Status::OK();
  bool conservative = false;
  int quotient_size = 0;     ///< |M_n(C̄)| domain size
  int num_classes = 0;
  bool used_exact_partition = false;
};
ConservativityProbe ProbeConservativity(const Structure& c, int m, int n,
                                        size_t max_positions = 2000000,
                                        ExecutionContext* context = nullptr);

}  // namespace bddfc

#endif  // BDDFC_TYPES_CONSERVATIVITY_H_
