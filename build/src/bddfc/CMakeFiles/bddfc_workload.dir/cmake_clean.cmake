file(REMOVE_RECURSE
  "CMakeFiles/bddfc_workload.dir/workload/generators.cc.o"
  "CMakeFiles/bddfc_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/bddfc_workload.dir/workload/paper_examples.cc.o"
  "CMakeFiles/bddfc_workload.dir/workload/paper_examples.cc.o.d"
  "libbddfc_workload.a"
  "libbddfc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
