#include "bddfc/chase/round.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>

#include "bddfc/eval/exec.h"

namespace bddfc {
namespace chase_internal {

namespace {

/// Serializes `pattern` with variables renumbered by first occurrence.
std::string SerializeRenumbered(const std::vector<Atom>& pattern) {
  std::unordered_map<TermId, TermId> ren;
  int32_t next = 0;
  std::string s;
  for (const Atom& a : pattern) {
    s += std::to_string(a.pred);
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.find(t);
        if (it == ren.end()) it = ren.emplace(t, MakeVar(next++)).first;
        t = it->second;
      }
      s += "," + std::to_string(t);
    }
    s += "|";
  }
  return s;
}

}  // namespace

/// Canonical key of a head pattern, invariant under existential-variable
/// renaming *and* atom reordering: the same demanded pattern gets the same
/// key no matter which rule (or head-atom order) produced it.
///
/// Renumbering variables by first occurrence before sorting (the seed
/// behavior) bakes the incoming atom order into the variable names, so
/// logically identical patterns hashed apart and spawned duplicate
/// witnesses. Instead, atoms are sorted under a name-independent local key
/// (predicate + per-position constant/within-atom variable shape); among
/// atoms whose local keys tie, every arrangement is tried and the
/// lexicographically least renumbered serialization wins. Ties are rare
/// (heads are small), but a cap falls back to the sorted order — still
/// deterministic and never merging inequivalent patterns, as the key is the
/// serialized pattern itself.
std::string PatternKey(const std::vector<Atom>& pattern) {
  auto local_key = [](const Atom& a) {
    std::unordered_map<TermId, int32_t> ren;
    std::string s = std::to_string(a.pred);
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.emplace(t, static_cast<int32_t>(ren.size())).first;
        s += ",v" + std::to_string(it->second);
      } else {
        s += ",c" + std::to_string(t);
      }
    }
    return s;
  };

  std::vector<std::pair<std::string, Atom>> keyed;
  keyed.reserve(pattern.size());
  for (const Atom& a : pattern) keyed.emplace_back(local_key(a), a);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  // Group atoms with equal local keys and bound the number of arrangements.
  std::vector<std::vector<Atom>> groups;
  size_t arrangements = 1;
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i == 0 || keyed[i].first != keyed[i - 1].first) groups.emplace_back();
    groups.back().push_back(keyed[i].second);
    arrangements *= groups.back().size();  // running product of factorials
  }

  std::vector<Atom> cand;
  cand.reserve(pattern.size());
  if (arrangements > 5040) {  // cap: fall back to the sorted order
    for (const auto& g : groups) cand.insert(cand.end(), g.begin(), g.end());
    return SerializeRenumbered(cand);
  }

  std::string best;
  std::function<void(size_t)> rec = [&](size_t gi) {
    if (gi == groups.size()) {
      cand.clear();
      for (const auto& g : groups) cand.insert(cand.end(), g.begin(), g.end());
      std::string s = SerializeRenumbered(cand);
      if (best.empty() || s < best) best = std::move(s);
      return;
    }
    auto& g = groups[gi];
    std::sort(g.begin(), g.end());
    do {
      rec(gi + 1);
    } while (std::next_permutation(g.begin(), g.end()));
  };
  rec(0);
  return best;
}

bool AddFactTracked(ChaseResult* out, PredId pred,
                    const std::vector<TermId>& args, int round) {
  uint32_t row = static_cast<uint32_t>(out->structure.NumFacts(pred));
  if (!out->structure.AddFact(pred, args)) return false;
  out->fact_round.emplace(FactHandle{pred, row}, round);
  return true;
}

std::string ObliviousKey(size_t ri, const Rule& rule, const Binding& b) {
  std::string key = std::to_string(ri);
  for (const Atom& a : rule.body) {
    Atom g = a;
    for (TermId& t : g.args) {
      if (IsVar(t)) {
        auto it = b.find(t);
        if (it != b.end()) t = it->second;
      }
    }
    key += "|" + std::to_string(g.pred);
    for (TermId t : g.args) key += "," + std::to_string(t);
  }
  return key;
}

std::vector<RowBand> AnchorBands(const Structure& s, const Rule& rule,
                                 size_t di, uint32_t begin, uint32_t end) {
  const size_t k = rule.body.size();
  std::vector<RowBand> bands(k);
  for (size_t j = 0; j < k; ++j) {
    if (j < di) {
      bands[j] = {0, s.WatermarkRows(rule.body[j].pred)};
    } else if (j == di) {
      bands[j] = {begin, end};
    } else {
      bands[j] = RowBand::All();
    }
  }
  return bands;
}

namespace {

/// The sequential engines' buffer operations: plain containers, dedup
/// counted on the way in.
struct SerialSink {
  const RoundInputs& in;
  RoundBuffer* buf;
  std::unordered_set<Atom, AtomHash> datalog_seen;
  std::map<std::string, PendingExistential> triggers;
  size_t fault_seq = 0;

  bool BufferDatalog(Atom g) {
    if (!datalog_seen.insert(g).second) {
      ++buf->stats.datalog_deduped;
      return false;
    }
    buf->datalog.push_back(std::move(g));
    return true;
  }
  bool ObliviousPreFilter(const std::string& key) {
    return !in.fired->insert(key).second;
  }
  void BufferTrigger(std::string key, PendingExistential pe) {
    auto [it, inserted] = triggers.try_emplace(std::move(key), std::move(pe));
    if (!inserted) {
      ++buf->stats.triggers_deduped;
      if (TriggerLess(pe, it->second)) it->second = std::move(pe);
    }
  }
  size_t FaultSeq() { return fault_seq++; }
};

}  // namespace

void EnumerateRoundSequential(const RoundInputs& in, bool delta,
                              RoundBuffer* buf) {
  Matcher matcher(in.frozen, &buf->stats.match);
  // Witness-existence probes go through a stats-less matcher so
  // bindings_tried counts rule-body bindings only.
  Matcher witness(in.frozen);
  SerialSink sink{in, buf, {}, {}, 0};

  for (size_t ri = 0; ri < in.theory.rules().size(); ++ri) {
    if (in.ctx->Exhausted()) break;  // a trip mid-rule skips the rest
    const Rule& rule = in.theory.rules()[ri];
    if (rule.IsExistential() && in.options.datalog_only) continue;

    auto on_binding = [&](const Binding& b) {
      return HandleBinding(in, ri, b, witness, sink);
    };

    if (delta) {
      // Semi-naive: rotate a delta anchor over the body; each binding that
      // touches the delta is enumerated exactly once, with the anchor at
      // its first delta atom. Before the first MarkRoundBoundary (round 1)
      // all watermarks are 0, so only anchor 0 fires and it performs one
      // full enumeration.
      for (size_t di = 0; di < rule.body.size(); ++di) {
        const PredId anchor_pred = rule.body[di].pred;
        const uint32_t wm = in.frozen.WatermarkRows(anchor_pred);
        if (wm >= in.frozen.NumFacts(anchor_pred)) {
          continue;  // this relation gained nothing last round
        }
        // An anchor whose pre-watermark prefix is vacuous (some earlier
        // body atom has watermark 0) contributes no bindings. The matcher
        // discovers this for free — it enumerates in body order and the
        // empty band kills the walk before reaching the anchor — but the
        // plan executor pins the anchor first and would scan its whole
        // delta before probing the empty band. Skip it up front, matching
        // the parallel engine's shard-submission filter, so the effort
        // counters agree across all three paths.
        bool empty_prefix = false;
        for (size_t j = 0; j < di; ++j) {
          if (in.frozen.WatermarkRows(rule.body[j].pred) == 0) {
            empty_prefix = true;
            break;
          }
        }
        if (empty_prefix) continue;
        const std::vector<RowBand> bands =
            AnchorBands(in.frozen, rule, di, wm, UINT32_MAX);
        if (in.plans != nullptr) {
          // Compiled path: per-(body, anchor) plan from the run cache,
          // vectorized banded execution. The binding *set* matches the
          // interpreter's, which is all ApplyRound depends on.
          const std::function<bool()> block_stop = [&in] {
            return in.ctx->ShouldStop("plan block");
          };
          ExecuteBandedPlan(in.frozen, *in.plans, rule.body, di, bands,
                            on_binding, &buf->stats.match, &block_stop);
        } else {
          matcher.EnumerateBanded(rule.body, bands, {}, on_binding);
        }
      }
    } else {
      matcher.Enumerate(rule.body, {}, on_binding);
    }
  }

  // The sink's keep-min map already holds unique keys; move it out.
  buf->triggers.reserve(sink.triggers.size());
  for (auto& [key, pe] : sink.triggers) {
    buf->triggers.emplace_back(key, std::move(pe));
  }
}

size_t ApplyRound(RoundBuffer* buf, size_t round, ChaseResult* out) {
  // Canonical application order (see the header): sorted datalog atoms
  // first, then triggers in key order. Every engine funnels through this,
  // so row order and null naming are functions of the round's derivation
  // set alone.
  std::sort(buf->datalog.begin(), buf->datalog.end());
  std::sort(buf->triggers.begin(), buf->triggers.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  size_t added = 0;
  for (const Atom& g : buf->datalog) {
    if (AddFactTracked(out, g.pred, g.args, static_cast<int>(round))) {
      ++added;
    }
  }
  for (auto& [key, pe] : buf->triggers) {
    (void)key;
    // Invent one null per existential variable of this trigger.
    std::unordered_map<TermId, TermId> witness;
    for (TermId v : pe.existentials) {
      TermId null_id = out->structure.mutable_sig().AddNull();
      witness.emplace(v, null_id);
      ++out->nulls_created;
    }
    for (Atom g : pe.head_pattern) {
      for (TermId& t : g.args) {
        if (IsVar(t)) t = witness.at(t);
      }
      if (AddFactTracked(out, g.pred, g.args, static_cast<int>(round))) {
        ++added;
      }
      // Record provenance on each fresh null (one shared head atom each).
      for (auto [v, null_id] : witness) {
        (void)v;
        auto it = out->null_provenance.find(null_id);
        if (it == out->null_provenance.end()) {
          NullProvenance np;
          np.birth_round = static_cast<int>(round);
          np.rule_index = pe.rule_index;
          np.head_atom = g;
          out->null_provenance.emplace(null_id, std::move(np));
        }
      }
    }
  }
  return added;
}

}  // namespace chase_internal
}  // namespace bddfc
